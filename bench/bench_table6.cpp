/**
 * @file
 * Table VI reproduction: LUT utilization and throughput of the AMT
 * building blocks (mergers, couplers, FIFO) for 32-bit and 128-bit
 * records — the paper's synthesized values next to our structural
 * estimates, plus the paper's record-width observation (a 128-bit
 * 4-merger matches a 32-bit 16-merger's throughput at ~50% the LUTs).
 */

#include <cmath>
#include <cstdio>

#include "amt/synth_estimate.hpp"
#include "bench_util.hpp"
#include "model/merger_costs.hpp"

namespace
{

using namespace bonsai;

void
widthTable(const char *name, const model::MergerCosts &table,
           unsigned bits)
{
    bench::title(name);
    const double gbps_per_rec = 250e6 * (bits / 8) / 1e9;
    std::printf("%-12s %10s %12s %12s %8s\n", "Element", "Thpt",
                "paper LUT", "struct LUT", "err");
    bench::rule(60);
    for (unsigned k = 1; k <= 32; k *= 2) {
        const std::uint64_t est = amt::mergerStructLut(k, bits);
        std::printf("%2u-merger    %6.0fGB/s %12llu %12llu %7.1f%%\n",
                    k, k * gbps_per_rec,
                    static_cast<unsigned long long>(table.mergerLut(k)),
                    static_cast<unsigned long long>(est),
                    100.0 *
                        (static_cast<double>(est) -
                         static_cast<double>(table.mergerLut(k))) /
                        static_cast<double>(table.mergerLut(k)));
    }
    for (unsigned k = 2; k <= 32; k *= 2) {
        const std::uint64_t est = amt::couplerStructLut(k, bits);
        std::printf("%2u-coupler   %6.0fGB/s %12llu %12llu %7.1f%%\n",
                    k, k * gbps_per_rec / 2,
                    static_cast<unsigned long long>(
                        table.couplerLut(k)),
                    static_cast<unsigned long long>(est),
                    100.0 *
                        (static_cast<double>(est) -
                         static_cast<double>(table.couplerLut(k))) /
                        static_cast<double>(table.couplerLut(k)));
    }
    std::printf("FIFO         %6.0fGB/s %12llu %12llu %7.1f%%\n",
                gbps_per_rec,
                static_cast<unsigned long long>(table.fifo),
                static_cast<unsigned long long>(
                    amt::fifoStructLut(bits)),
                100.0 *
                    (static_cast<double>(amt::fifoStructLut(bits)) -
                     static_cast<double>(table.fifo)) /
                    static_cast<double>(table.fifo));
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace bonsai;
    widthTable("Table VI(a): building blocks, 32-bit records",
               model::costs32(), 32);
    widthTable("Table VI(b): building blocks, 128-bit records",
               model::costs128(), 128);

    bench::title("Record-width scalability (Section VI-F)");
    const auto t32 = model::costs32();
    const auto t128 = model::costs128();
    std::printf("32-bit 16-merger: 16 GB/s at %llu LUTs\n",
                static_cast<unsigned long long>(t32.mergerLut(16)));
    std::printf("128-bit 4-merger: 16 GB/s at %llu LUTs (%.0f%% of "
                "the 32-bit design; paper: ~50%% less logic)\n",
                static_cast<unsigned long long>(t128.mergerLut(4)),
                100.0 * t128.mergerLut(4) / t32.mergerLut(16));
    return 0;
}
