/**
 * @file
 * Live CPU microbenchmarks (google-benchmark): the in-process CPU
 * baselines (std::sort, LSD radix, PARADIS-style parallel radix,
 * sample sort) and the Bonsai behavioral engine on this machine.
 * These ground the CPU side of the comparisons with measured numbers
 * (the paper-scale CPU figures in Table I come from the publications;
 * see bench_table1).
 */

#include <benchmark/benchmark.h>

#include "baseline/cpu_sorters.hpp"
#include "common/random.hpp"
#include "sorter/behavioral.hpp"

namespace
{

using namespace bonsai;

std::vector<Record>
workload(std::size_t n)
{
    return makeRecords(n, Distribution::UniformRandom, 1234);
}

void
reportRate(benchmark::State &state, std::size_t n)
{
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
}

void
BM_StdSort(benchmark::State &state)
{
    const auto input = workload(state.range(0));
    for (auto _ : state) {
        auto data = input;
        baseline::stdSort(data);
        benchmark::DoNotOptimize(data.data());
    }
    reportRate(state, input.size());
}

void
BM_LsdRadix(benchmark::State &state)
{
    const auto input = workload(state.range(0));
    for (auto _ : state) {
        auto data = input;
        baseline::lsdRadixSort(data);
        benchmark::DoNotOptimize(data.data());
    }
    reportRate(state, input.size());
}

void
BM_ParallelMsdRadix(benchmark::State &state)
{
    const auto input = workload(state.range(0));
    for (auto _ : state) {
        auto data = input;
        baseline::parallelMsdRadixSort(data);
        benchmark::DoNotOptimize(data.data());
    }
    reportRate(state, input.size());
}

void
BM_SampleSort(benchmark::State &state)
{
    const auto input = workload(state.range(0));
    for (auto _ : state) {
        auto data = input;
        baseline::sampleSortCpu(data);
        benchmark::DoNotOptimize(data.data());
    }
    reportRate(state, input.size());
}

void
BM_BonsaiBehavioral(benchmark::State &state)
{
    const auto input = workload(state.range(0));
    sorter::BehavioralSorter<Record> sorter(
        static_cast<unsigned>(state.range(1)), 16,
        static_cast<unsigned>(state.range(2)));
    for (auto _ : state) {
        auto data = input;
        sorter.sort(data);
        benchmark::DoNotOptimize(data.data());
    }
    reportRate(state, input.size());
}

BENCHMARK(BM_StdSort)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);
BENCHMARK(BM_LsdRadix)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);
BENCHMARK(BM_ParallelMsdRadix)
    ->Arg(1 << 16)
    ->Arg(1 << 20)
    ->Arg(1 << 22);
BENCHMARK(BM_SampleSort)->Arg(1 << 16)->Arg(1 << 20)->Arg(1 << 22);
BENCHMARK(BM_BonsaiBehavioral)
    ->Args({1 << 20, 16, 1})
    ->Args({1 << 20, 64, 1})
    ->Args({1 << 20, 256, 1})
    ->Args({1 << 22, 256, 1})
    ->Args({1 << 22, 256, 4})
    ->Args({1 << 22, 256, 8});

} // namespace

BENCHMARK_MAIN();
