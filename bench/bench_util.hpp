/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: fixed
 * column formatting and byte-size labels so every bench prints rows
 * in the paper's layout.
 */

#ifndef BONSAI_BENCH_BENCH_UTIL_HPP
#define BONSAI_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace bonsai::bench
{

/**
 * "4 GB", "2 TB", "512 MB" style labels.  Branches are ordered
 * largest-unit-first: everything at or above 10 TB rounds to whole
 * terabytes, smaller terabyte sizes keep one decimal unless exact, and
 * only sub-terabyte sizes fall through to GB/MB labels.
 */
inline std::string
sizeLabel(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= 10 * kTB)
        std::snprintf(buf, sizeof(buf), "%.0f TB",
                      static_cast<double>(bytes) /
                          static_cast<double>(kTB));
    else if (bytes >= kTB && bytes % kTB == 0)
        std::snprintf(buf, sizeof(buf), "%llu TB",
                      static_cast<unsigned long long>(bytes / kTB));
    else if (bytes >= kTB)
        std::snprintf(buf, sizeof(buf), "%.1f TB",
                      static_cast<double>(bytes) /
                          static_cast<double>(kTB));
    else if (bytes >= kGB && bytes % kGB == 0)
        std::snprintf(buf, sizeof(buf), "%llu GB",
                      static_cast<unsigned long long>(bytes / kGB));
    else if (bytes >= kMB)
        std::snprintf(buf, sizeof(buf), "%llu MB",
                      static_cast<unsigned long long>(bytes / kMB));
    else
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

/**
 * Machine-readable companion to the printed tables: accumulates the
 * bench configuration and one row per measured point, then writes
 * `BENCH_<name>.json` so plots and regression tooling can consume the
 * numbers (cycles, seconds, model residuals, ...) without scraping
 * stdout.  Keys keep insertion order; values are strings or doubles.
 */
class JsonReporter
{
  public:
    explicit JsonReporter(std::string name) : name_(std::move(name)) {}

    /** Record a configuration entry (shape, bandwidth, dataset, ...). */
    void
    config(const std::string &key, const std::string &value)
    {
        config_.emplace_back(key, quoted(value));
    }

    void
    config(const std::string &key, double value)
    {
        config_.emplace_back(key, number(value));
    }

    void
    config(const std::string &key, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        config_.emplace_back(key, buf);
    }

    /** Start a new measurement point; fields attach to the last one. */
    void beginPoint() { points_.emplace_back(); }

    void
    field(const std::string &key, const std::string &value)
    {
        points_.back().emplace_back(key, quoted(value));
    }

    void
    field(const std::string &key, double value)
    {
        points_.back().emplace_back(key, number(value));
    }

    void
    field(const std::string &key, std::uint64_t value)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(value));
        points_.back().emplace_back(key, buf);
    }

    /** Write BENCH_<name>.json in @p directory; false on I/O error. */
    bool
    write(const std::string &directory = ".") const
    {
        const std::string path =
            directory + "/BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        std::fprintf(f, "{\n  \"bench\": %s,\n  \"config\": {",
                     quoted(name_).c_str());
        writeEntries(f, config_, "    ");
        std::fprintf(f, "},\n  \"points\": [");
        for (std::size_t i = 0; i < points_.size(); ++i) {
            std::fprintf(f, "%s\n    {", i == 0 ? "" : ",");
            writeEntries(f, points_[i], "      ");
            std::fprintf(f, "}");
        }
        std::fprintf(f, "%s]\n}\n", points_.empty() ? "" : "\n  ");
        return std::fclose(f) == 0;
    }

  private:
    using Entries = std::vector<std::pair<std::string, std::string>>;

    static std::string
    quoted(const std::string &raw)
    {
        std::string out = "\"";
        for (const char c : raw) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out + "\"";
    }

    static std::string
    number(double value)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.12g", value);
        return buf;
    }

    static void
    writeEntries(std::FILE *f, const Entries &entries,
                 const char *indent)
    {
        for (std::size_t i = 0; i < entries.size(); ++i) {
            std::fprintf(f, "%s\n%s%s: %s", i == 0 ? "" : ",", indent,
                         quoted(entries[i].first).c_str(),
                         entries[i].second.c_str());
        }
        if (!entries.empty())
            std::fprintf(f, "\n%.*s",
                         static_cast<int>(std::string(indent).size()) -
                             2,
                         indent);
    }

    std::string name_;
    Entries config_;
    std::vector<Entries> points_;
};

/** Print a header rule. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a centered bench title block. */
inline void
title(const char *text)
{
    rule();
    std::printf("%s\n", text);
    rule();
}

} // namespace bonsai::bench

#endif // BONSAI_BENCH_BENCH_UTIL_HPP
