/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: fixed
 * column formatting and byte-size labels so every bench prints rows
 * in the paper's layout.
 */

#ifndef BONSAI_BENCH_BENCH_UTIL_HPP
#define BONSAI_BENCH_BENCH_UTIL_HPP

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/units.hpp"

namespace bonsai::bench
{

/** "4 GB", "2 TB", "512 MB" style labels. */
inline std::string
sizeLabel(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= kTB && bytes % kTB == 0)
        std::snprintf(buf, sizeof(buf), "%llu TB",
                      static_cast<unsigned long long>(bytes / kTB));
    else if (bytes >= 10 * kTB)
        std::snprintf(buf, sizeof(buf), "%.0f TB",
                      static_cast<double>(bytes) /
                          static_cast<double>(kTB));
    else if (bytes >= kGB && bytes % kGB == 0)
        std::snprintf(buf, sizeof(buf), "%llu GB",
                      static_cast<unsigned long long>(bytes / kGB));
    else if (bytes >= kMB)
        std::snprintf(buf, sizeof(buf), "%llu MB",
                      static_cast<unsigned long long>(bytes / kMB));
    else
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    return buf;
}

/** Print a header rule. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a centered bench title block. */
inline void
title(const char *text)
{
    rule();
    std::printf("%s\n", text);
    rule();
}

} // namespace bonsai::bench

#endif // BONSAI_BENCH_BENCH_UTIL_HPP
