/**
 * @file
 * Ablation: input-distribution sensitivity.  A core property of merge
 * trees (and the reason the paper can model sort time with Equation 1
 * at all) is that the datapath's timing is essentially
 * data-independent: every stage streams all N records through the
 * tree regardless of key distribution.  This study runs the
 * cycle-accurate simulator across six distributions — uniform,
 * pre-sorted, reverse-sorted, all-equal, few-distinct, nearly-sorted —
 * and reports the spread, contrasting with the CPU comparators
 * (radix/sample sort) whose time moves with the distribution.
 */

#include <chrono>
#include <cstdio>

#include "baseline/cpu_sorters.hpp"
#include "bench_util.hpp"
#include "common/random.hpp"
#include "sorter/sim_sorter.hpp"

namespace
{

using namespace bonsai;

const char *
distName(Distribution dist)
{
    switch (dist) {
      case Distribution::UniformRandom: return "uniform";
      case Distribution::Sorted: return "sorted";
      case Distribution::Reverse: return "reverse";
      case Distribution::AllEqual: return "all-equal";
      case Distribution::FewDistinct: return "few-distinct";
      case Distribution::NearlySorted: return "nearly-sorted";
    }
    return "?";
}

double
cpuSeconds(void (*fn)(std::vector<Record> &), std::vector<Record> data)
{
    const auto start = std::chrono::steady_clock::now();
    fn(data);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main()
{
    using namespace bonsai;
    bench::title("Ablation: input-distribution sensitivity "
                 "(4 MB, AMT(8, 16) cycle-accurate vs CPU sorters)");

    const std::size_t n = (4 * kMB) / 4;
    std::printf("%-14s %14s %16s %16s\n", "Distribution",
                "AMT cycles", "parallel radix", "sample sort");
    bench::rule(64);

    std::uint64_t min_cycles = ~0ULL, max_cycles = 0;
    for (Distribution dist :
         {Distribution::UniformRandom, Distribution::Sorted,
          Distribution::Reverse, Distribution::AllEqual,
          Distribution::FewDistinct, Distribution::NearlySorted}) {
        sorter::SimSorter<Record>::Options o;
        o.config = amt::AmtConfig{8, 16, 1, 1};
        o.mem.bankBytesPerCycle = 32.0;
        auto data = makeRecords(n, dist);
        sorter::SimSorter<Record> sim(o);
        const auto stats = sim.sort(data);
        min_cycles = std::min(min_cycles, stats.totalCycles);
        max_cycles = std::max(max_cycles, stats.totalCycles);

        const auto sample = makeRecords(n, dist);
        const double radix_s = cpuSeconds(
            [](std::vector<Record> &d) {
                baseline::parallelMsdRadixSort(d);
            },
            sample);
        const double sort_s = cpuSeconds(
            [](std::vector<Record> &d) {
                baseline::sampleSortCpu(d);
            },
            sample);
        std::printf("%-14s %14llu %13.1f ms %13.1f ms\n",
                    distName(dist),
                    static_cast<unsigned long long>(stats.totalCycles),
                    radix_s * 1e3, sort_s * 1e3);
    }
    std::printf("\nAMT cycle spread across distributions: %.1f%% "
                "(merge trees are data-oblivious;\nEquation 1 needs "
                "no distribution term — radix/sample sorters vary "
                "far more)\n",
                100.0 * (max_cycles - min_cycles) / min_cycles);
    return 0;
}
