/**
 * @file
 * HBM sorter study (Sections IV-B and VI-D): the optimal unrolled
 * configuration on a 512 GB/s HBM, the halving combine schedule, and
 * the paper's verification that unrolling scales linearly — two
 * p = 16 trees or four p = 8 trees saturate the F1's 32 GB/s DRAM
 * exactly like one p = 32 tree, reproduced here on the cycle-accurate
 * simulator.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "sorter/sim_sorter.hpp"
#include "sorter/stage_sim.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("HBM sorter (Sections IV-B, VI-D)");

    // 1. Bonsai's pick for a 512 GB/s, 16 GB HBM part.
    model::BonsaiInputs in;
    in.array = {16ULL * kGB / 4, 4};
    in.hw = core::hbmU50();
    core::SearchSpace space;
    space.withPresorter = false; // per-tree presorters exceed C_LUT
    core::Optimizer opt(in, space);
    const auto best = opt.best(core::Objective::Latency);
    if (best) {
        std::printf("Bonsai-optimal for 512 GB/s HBM, 16 GB input:\n");
        std::printf("  %u x AMT(%u, %u), %u stages, %.2f s "
                    "(paper: 16 x AMT(32, 2))\n\n",
                    best->config.lambdaUnrl, best->config.p,
                    best->config.ell, best->perf.stages,
                    best->perf.latencySeconds);
    }

    // 2. Unrolling scales linearly: aggregate throughput of unrolled
    // configurations saturating the same 32 GB/s DRAM (paper VI-D
    // verified 2 x p=16 and 4 x p=8 on the F1's four banks).
    std::printf("Unrolling linearity on the F1 (cycle-accurate, "
                "4 MB input):\n");
    std::printf("%-22s %12s %14s\n", "Configuration", "cycles",
                "vs 1 x p=32");
    bench::rule(52);
    const std::size_t n = (4 * kMB) / 4;
    std::uint64_t base_cycles = 0;
    struct Case
    {
        const char *name;
        unsigned p, ell, unroll;
    };
    for (const Case c : {Case{"1 x AMT(32, 4)", 32, 4, 1},
                         Case{"2 x AMT(16, 4)", 16, 4, 2},
                         Case{"4 x AMT(8, 4)", 8, 4, 4}}) {
        sorter::SimSorter<Record>::Options o;
        o.config = amt::AmtConfig{c.p, c.ell, c.unroll, 1};
        o.mem.numBanks = 4;
        o.mem.bankBytesPerCycle = 32.0; // 4 x 8 GB/s
        o.batchBytes = 1024;
        auto data = makeRecords(n, Distribution::UniformRandom,
                                c.unroll);
        sorter::SimSorter<Record> sim(o);
        const auto stats = sim.sort(data);
        if (base_cycles == 0)
            base_cycles = stats.totalCycles;
        std::printf("%-22s %12llu %13.2fx\n", c.name,
                    static_cast<unsigned long long>(stats.totalCycles),
                    static_cast<double>(stats.totalCycles) /
                        static_cast<double>(base_cycles));
    }
    std::printf("(equal-throughput unrolled configurations track the "
                "single tree,\n demonstrating linear scaling of "
                "unrolling; paper Section VI-D)\n\n");

    // 3. The halving combine schedule at HBM scale (stage-level sim).
    std::printf("Halving schedule, 16 x AMT(32, 2) on 512 GB/s, "
                "16 GB input:\n");
    sorter::StageSimulator::Options o;
    o.config = amt::AmtConfig{32, 2, 16, 1};
    o.array = {16ULL * kGB / 4, 4};
    o.betaDram = 512.0 * kGB;
    o.rangePartitioned = false; // address-range + combine (IV-B)
    const auto result = sorter::StageSimulator(o).run();
    std::printf("  %u stages total (last 4 are combine stages on "
                "8/4/2/1 trees), %.3f s\n",
                result.stages, result.totalSeconds);
    return 0;
}
