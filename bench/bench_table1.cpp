/**
 * @file
 * Table I reproduction: sorting time in ms per GB across 4 GB - 100 TB
 * for the best published CPU/GPU/FPGA sorters (reported values) vs
 * Bonsai (regenerated from the scalability model of the as-built
 * sorters: ell = 64 DRAM sorter at the measured 29 GB/s, two-phase
 * SSD sorter at 8 GB/s).
 */

#include <cstdio>

#include "baseline/published.hpp"
#include "bench_util.hpp"
#include "core/scalability.hpp"

int
main()
{
    using namespace bonsai;
    bench::title(
        "Table I: sorting time in ms per GB (lower is better)");

    std::printf("%-28s", "System");
    for (std::uint64_t bytes : baseline::kTable1Sizes)
        std::printf("%9s", bench::sizeLabel(bytes).c_str());
    std::printf("\n");
    bench::rule(28 + 9 * 9);

    for (const auto &row : baseline::kTable1Rows) {
        std::printf("%-5s %-22s", std::string(row.platform).c_str(),
                    std::string(row.name).c_str());
        for (double v : row.msPerGb) {
            if (v == baseline::kNoResult)
                std::printf("%9s", "-");
            else
                std::printf("%9.0f", v);
        }
        std::printf("\n");
    }

    // Bonsai row, regenerated from the model of the deployed sorters.
    core::ScalabilityParams params;
    params.dramEll = 64; // as-implemented DRAM sorter (Section VI-C1)
    std::printf("%-5s %-22s", "FPGA", "Bonsai (this work)");
    for (std::size_t i = 0; i < baseline::kTable1Sizes.size(); ++i) {
        const auto pt =
            core::scalabilityAt(params, baseline::kTable1Sizes[i]);
        std::printf("%9.0f", pt.msPerGb);
    }
    std::printf("\n");
    std::printf("%-5s %-22s", "", "  (paper reported)");
    for (double v : baseline::kTable1Bonsai)
        std::printf("%9.0f", v);
    std::printf("\n\n");

    // Headline: speedup of Bonsai over the best alternative per size.
    std::printf("Speedup over best published alternative per column:\n");
    for (std::size_t i = 0; i < baseline::kTable1Sizes.size(); ++i) {
        double best = 1e300;
        std::string_view who = "-";
        for (const auto &row : baseline::kTable1Rows) {
            if (row.msPerGb[i] != baseline::kNoResult &&
                row.msPerGb[i] < best) {
                best = row.msPerGb[i];
                who = row.name;
            }
        }
        const auto pt = core::scalabilityAt(
            params, baseline::kTable1Sizes[i]);
        std::printf("  %-7s: %5.2fx vs %s\n",
                    bench::sizeLabel(baseline::kTable1Sizes[i]).c_str(),
                    best / pt.msPerGb, std::string(who).c_str());
    }
    return 0;
}
