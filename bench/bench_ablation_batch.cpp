/**
 * @file
 * Ablation: read-batch size b (Sections II and III-B2).  Larger
 * batches keep DRAM at peak bandwidth but cost b * ell bytes of
 * on-chip buffer (Equation 10): this sweep shows the batch size vs
 * BRAM trade and the bandwidth loss of small batches on the
 * cycle-accurate simulator with a request-latency-dominated memory.
 */

#include <cstdio>

#include "amt/synth_estimate.hpp"
#include "bench_util.hpp"
#include "common/random.hpp"
#include "core/platforms.hpp"
#include "model/resource_model.hpp"
#include "sorter/sim_sorter.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Ablation: batch size b vs bandwidth and BRAM");

    std::printf("BRAM blocks needed (Equation 10, calibrated "
                "blocks/leaf; F1 capacity 1600):\n");
    std::printf("%-10s %10s %10s %10s %10s\n", "b \\ ell", "64", "128",
                "256", "512");
    bench::rule(54);
    for (std::uint64_t b : {1024u, 2048u, 4096u}) {
        std::printf("%-10llu", static_cast<unsigned long long>(b));
        for (unsigned ell : {64u, 128u, 256u, 512u}) {
            std::printf("%10llu",
                        static_cast<unsigned long long>(
                            amt::dataLoaderBramBlocks(ell, b)));
        }
        std::printf("\n");
    }
    std::printf("(ell = 256 fits only at b = 1 KB; ell = 512 never "
                "fits: the paper's ell <= 256 wall)\n\n");

    std::printf("Cycle-accurate bandwidth sensitivity (4 MB, "
                "AMT(16, 16), request latency 24 cycles):\n");
    std::printf("%-10s %12s %14s\n", "b (bytes)", "cycles",
                "vs b = 4096");
    bench::rule(40);
    const std::size_t n = (4 * kMB) / 4;
    std::uint64_t base = 0;
    std::vector<std::uint64_t> batches = {4096, 2048, 1024, 512, 256,
                                          128};
    for (std::uint64_t b : batches) {
        sorter::SimSorter<Record>::Options o;
        o.config = amt::AmtConfig{16, 16, 1, 1};
        o.mem.numBanks = 4;
        o.mem.bankBytesPerCycle = 16.0; // bandwidth-bound
        o.mem.requestLatency = 24;
        o.mem.requestOverhead = 8; // DDR turnaround per burst
        o.batchBytes = b;
        auto data = makeRecords(n, Distribution::UniformRandom);
        sorter::SimSorter<Record> sim(o);
        const auto stats = sim.sort(data);
        if (base == 0)
            base = stats.totalCycles;
        std::printf("%-10llu %12llu %13.2fx\n",
                    static_cast<unsigned long long>(b),
                    static_cast<unsigned long long>(stats.totalCycles),
                    static_cast<double>(stats.totalCycles) /
                        static_cast<double>(base));
    }
    std::printf("\n(small batches cannot amortize per-request "
                "activation latency; 1-4 KB batches\n run at peak "
                "bandwidth, matching Section II's guidance)\n");
    return 0;
}
