/**
 * @file
 * Figure 11 reproduction: the Bonsai DRAM sorter vs the best published
 * CPU (PARADIS), GPU (HRS) and FPGA (SampleSort) sorters at 4-32 GB,
 * in sorting time per GB.  Bonsai numbers come from the scalability
 * model of the as-built AMT(32, 64) sorter at the measured 29 GB/s
 * DRAM bandwidth; comparators are the papers' reported values.
 */

#include <cstdio>

#include "baseline/published.hpp"
#include "bench_util.hpp"
#include "core/scalability.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Figure 11: DRAM sorter vs state of the art "
                 "(ms/GB, lower is better)");

    core::ScalabilityParams params;
    params.dramEll = 64;

    std::printf("%-8s %10s %12s %10s %14s\n", "Input", "Bonsai",
                "PARADIS", "HRS", "SampleSort");
    bench::rule(60);
    for (std::uint64_t gb : {4u, 8u, 16u, 32u}) {
        const std::uint64_t bytes = gb * kGB;
        const auto bonsai = core::scalabilityAt(params, bytes);
        const auto cpu =
            baseline::publishedMsPerGb("PARADIS [20]", bytes);
        const auto gpu = baseline::publishedMsPerGb("HRS [18]", bytes);
        const auto fpga =
            baseline::publishedMsPerGb("SampleSort [19]", bytes);
        std::printf("%-8s %10.0f %12.0f %10.0f %14.0f\n",
                    bench::sizeLabel(bytes).c_str(), bonsai.msPerGb,
                    *cpu, *gpu, *fpga);
    }

    std::printf("\nSpeedups at 32 GB (paper: 2.3x CPU, 3.7x FPGA, "
                "1.3x GPU):\n");
    const auto at32 = core::scalabilityAt(params, 32 * kGB);
    std::printf("  vs PARADIS    : %.1fx\n",
                *baseline::publishedMsPerGb("PARADIS [20]", 32 * kGB) /
                    at32.msPerGb);
    std::printf("  vs SampleSort : %.1fx\n",
                *baseline::publishedMsPerGb("SampleSort [19]",
                                            32 * kGB) /
                    at32.msPerGb);
    std::printf("  vs HRS        : %.1fx\n",
                *baseline::publishedMsPerGb("HRS [18]", 32 * kGB) /
                    at32.msPerGb);
    return 0;
}
