/**
 * @file
 * Figure 5 reproduction: sorting time of Bonsai-optimal AMT
 * configurations as a function of off-chip memory bandwidth, for a
 * 16 GB input of 32-bit records, against the best published CPU, GPU
 * and FPGA sorters and the I/O lower bound (one read + one write of
 * the whole array).
 */

#include <cstdio>

#include "baseline/published.hpp"
#include "bench_util.hpp"
#include "core/optimizer.hpp"
#include "core/platforms.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Figure 5: sort time vs off-chip bandwidth "
                 "(16 GB, 32-bit records)");

    const std::uint64_t bytes = 16 * kGB;
    const double paradis =
        *baseline::publishedMsPerGb("PARADIS [20]", bytes) * 16 / 1e3;
    const double hrs =
        *baseline::publishedMsPerGb("HRS [18]", bytes) * 16 / 1e3;
    const double samplesort =
        *baseline::publishedMsPerGb("SampleSort [19]", bytes) * 16 /
        1e3;

    std::printf("%-10s %-18s %10s %10s %9s %9s %9s %9s\n", "BW(GB/s)",
                "Bonsai config", "stages", "Bonsai(s)", "I/O-LB(s)",
                "CPU(s)", "GPU(s)", "FPGA(s)");
    bench::rule(92);

    for (double bw : {4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0}) {
        model::BonsaiInputs in;
        in.array = {bytes / 4, 4};
        in.hw = core::awsF1();
        in.hw.betaDram = bw * kGB;
        core::Optimizer opt(in);
        const auto best = opt.best(core::Objective::Latency);
        if (!best) {
            std::printf("%-10.0f (no feasible configuration)\n", bw);
            continue;
        }
        char cfg[32];
        std::snprintf(cfg, sizeof(cfg), "AMT(%u,%u) x%u",
                      best->config.p, best->config.ell,
                      best->config.lambdaUnrl);
        const double io_lb = 16.0 / bw; // one pass read+write overlap
        std::printf("%-10.0f %-18s %10u %10.2f %9.2f %9.2f %9.2f %9.2f\n",
                    bw, cfg, best->perf.stages,
                    best->perf.latencySeconds, io_lb, paradis, hrs,
                    samplesort);
    }
    std::printf(
        "\nBonsai tracks the I/O lower bound within its stage count;\n"
        "CPU/GPU/FPGA comparators are bandwidth-independent reported "
        "values.\n");
    return 0;
}
