/**
 * @file
 * Table V reproduction: execution-time breakdown of sorting 2 TB on
 * the two-phase SSD sorter (phase one at I/O line rate, FPGA
 * reprogramming, phase two as one SSD round trip).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/checks.hpp"
#include "common/random.hpp"
#include "core/ssd_planner.hpp"
#include "sorter/pipeline_sim.hpp"
#include "sorter/sim_sorter.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Table V: 2 TB SSD sort execution breakdown");

    model::ArrayParams array{2 * kTB / 4, 4};
    const auto plan = core::planSsdSort(array, core::awsF1(), {},
                                        core::SsdParams{});
    if (!plan) {
        std::printf("no feasible plan\n");
        return 1;
    }

    std::printf("%-16s %10s %12s   (paper: 256 s / 4.3 s / 256 s)\n",
                "Phase", "Time (s)", "Share");
    bench::rule(70);
    const double total = plan->totalSeconds();
    std::printf("%-16s %10.1f %11.1f%%\n", "Phase one",
                plan->phase1Seconds, 100.0 * plan->phase1Seconds / total);
    std::printf("%-16s %10.1f %11.1f%%\n", "Reprogramming",
                plan->reprogramSeconds,
                100.0 * plan->reprogramSeconds / total);
    std::printf("%-16s %10.1f %11.1f%%\n", "Phase two",
                plan->phase2Seconds, 100.0 * plan->phase2Seconds / total);
    bench::rule(70);
    std::printf("%-16s %10.1f   (paper: 516.3 s on 2 TiB)\n", "Total",
                total);

    std::printf("\nPlan details:\n");
    std::printf("  phase 1: %u-deep pipeline of AMT(%u, %u), "
                "%.1f GB/s, %llu-record chunks\n",
                plan->phase1.config.lambdaPipe, plan->phase1.config.p,
                plan->phase1.config.ell,
                plan->phase1.perf.throughputBytesPerSec / kGB,
                static_cast<unsigned long long>(plan->chunkRecords));
    std::printf("  phase 2: AMT(%u, %u), %u SSD round trip(s)\n",
                plan->phase2.config.p, plan->phase2.config.ell,
                plan->phase2Stages);
    std::printf("  end-to-end rate: %.2f GB/s "
                "(17.3x faster than TerabyteSort's 4347 ms/GB)\n",
                2 * kTB / total / kGB);

    // ---- Section VI-E style cycle-accurate validation, scaled down.
    std::printf("\nCycle-accurate validation (Section VI-E, scaled):\n");
    {
        // Phase 1: 4-deep pipeline of AMT(8, 64) against an
        // 8 GB/s-equivalent I/O bus (32 B/cycle at 250 MHz).
        sorter::PipelineSimSorter<Record>::Options o;
        o.config = amt::AmtConfig{8, 64, 1, 4};
        o.dram.numBanks = 4;
        o.dram.bankBytesPerCycle = 32.0;
        o.io.numBanks = 1;
        o.io.bankBytesPerCycle = 32.0;
        std::vector<std::vector<Record>> chunks;
        for (int c = 0; c < 6; ++c) {
            chunks.push_back(makeRecords(
                1 << 16, Distribution::UniformRandom, 70 + c));
        }
        sorter::PipelineSimSorter<Record> sim(o);
        const auto stats = sim.sortChunks(chunks);
        bool sorted = stats.completed;
        for (const auto &chunk : chunks)
            sorted = sorted && isSorted(std::span<const Record>(chunk));
        const double gbps = stats.throughput(250e6) / kGB;
        std::printf("  phase 1 pipeline: %.2f GB/s sustained "
                    "(bus line rate 8, pipeline occupancy %.0f%%) "
                    "- output %s\n",
                    gbps, 100.0 * 6 / (6 + 3),
                    sorted ? "sorted" : "INVALID");
    }
    {
        // Phase 2: AMT(8, 256) with DRAM throttled to 8 GB/s
        // ("we again throttle the DRAM to operate at 8 GB/s").
        sorter::SimSorter<Record>::Options o;
        o.config = amt::AmtConfig{8, 256, 1, 1};
        o.mem.numBanks = 4;
        o.mem.bankBytesPerCycle = 8.0; // 32 B/cycle total = 8 GB/s
        o.presortRun = 1 << 12;        // phase-1 output run length
        o.inputPresorted = true;       // runs arrive sorted from SSD
        auto data =
            makeRecords(1 << 20, Distribution::UniformRandom, 99);
        // Pre-sort the 256 runs, as phase 1 would have.
        for (std::size_t lo = 0; lo < data.size(); lo += 1 << 12) {
            std::sort(data.begin() + lo,
                      data.begin() + lo + (1 << 12));
        }
        sorter::SimSorter<Record> sim(o);
        const auto stats = sim.sort(data);
        const double gbps = 4.0 * (1 << 20) * stats.stages /
            stats.totalCycles * 250e6 / kGB;
        std::printf("  phase 2 merge   : %.2f GB/s at the throttled "
                    "8 GB/s DRAM, %u stage(s) - output %s\n",
                    gbps, stats.stages,
                    stats.completed &&
                            isSorted(std::span<const Record>(data))
                        ? "sorted" : "INVALID");
    }
    return 0;
}
