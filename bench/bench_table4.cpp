/**
 * @file
 * Table IV reproduction: resource utilization breakdown of the
 * latency-optimized DRAM sorter (AMT(32, 64) + 16-record presorter +
 * data loader) on the AWS F1's VU9P, from the calibrated resource
 * models, against the paper's synthesized numbers.
 */

#include <cstdio>

#include "amt/synth_estimate.hpp"
#include "bench_util.hpp"
#include "core/platforms.hpp"
#include "model/resource_model.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Table IV: DRAM sorter resource breakdown "
                 "(AMT(32,64), AWS F1)");

    model::BonsaiInputs in;
    in.array = {4ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    const amt::AmtConfig cfg{32, 64, 1, 1};
    const auto est = model::predictResources(in, cfg);

    struct Row
    {
        const char *component;
        std::uint64_t lut, ff, bram;
        std::uint64_t paperLut, paperFf, paperBram;
    };
    const Row rows[] = {
        {"Data loader", est.dataLoaderLut, est.dataLoaderFf,
         est.bramBlocks, 110102, 604550, 960},
        {"Merge tree", est.treeLut, est.treeFf, 0, 102158, 100264, 0},
        {"Presorter", est.presorterLut, est.presorterFf, 0, 75412,
         64092, 0},
    };

    std::printf("%-14s %22s %22s %14s\n", "Component", "LUT (ours/paper)",
                "FF (ours/paper)", "BRAM (o/p)");
    bench::rule(78);
    std::uint64_t lut = 0, ff = 0, bram = 0;
    for (const Row &row : rows) {
        std::printf("%-14s %10llu /%10llu %10llu /%10llu %6llu /%6llu\n",
                    row.component,
                    static_cast<unsigned long long>(row.lut),
                    static_cast<unsigned long long>(row.paperLut),
                    static_cast<unsigned long long>(row.ff),
                    static_cast<unsigned long long>(row.paperFf),
                    static_cast<unsigned long long>(row.bram),
                    static_cast<unsigned long long>(row.paperBram));
        lut += row.lut;
        ff += row.ff;
        bram += row.bram;
    }
    bench::rule(78);
    std::printf("%-14s %10llu /%10u %10llu /%10u %6llu /%6u\n", "Total",
                static_cast<unsigned long long>(lut), 287672,
                static_cast<unsigned long long>(ff), 768906,
                static_cast<unsigned long long>(bram), 960);
    std::printf("%-14s %10llu %21u %17llu\n", "Available",
                static_cast<unsigned long long>(in.hw.cLut), 1761817,
                static_cast<unsigned long long>(
                    model::bramBlockCapacity(in.hw)));
    std::printf("%-14s %9.1f%% %20.1f%% %16.1f%%\n", "Utilization",
                100.0 * lut / in.hw.cLut, 100.0 * ff / 1761817.0,
                100.0 * bram / model::bramBlockCapacity(in.hw));
    return 0;
}
