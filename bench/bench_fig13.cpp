/**
 * @file
 * Figure 13 reproduction: latency per GB of the latency-optimized
 * Bonsai sorters across 0.5 GB - 8192 TB, with the four annotated
 * latency steps: the extra DRAM stage above 1 GB, the switch to the
 * SSD sorter above DRAM capacity, and the extra phase-2 round trips
 * above chunk*256 and chunk*256^2 bytes.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "core/scalability.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Figure 13: latency per GB, 0.5 GB - 8192 TB "
                 "(latency-optimized sorters)");

    core::ScalabilityParams params; // model-optimal ell = 256 DRAM tree

    std::printf("%-10s %10s %8s  %-44s\n", "Input", "ms/GB", "stages",
                "regime");
    bench::rule(78);

    double prev = 0.0;
    for (std::uint64_t bytes = kGB / 2; bytes <= 16384 * kTB;
         bytes *= 2) {
        const auto pt = core::scalabilityAt(params, bytes);
        const char *marker = "";
        if (prev > 0.0 && pt.msPerGb > prev * 1.01)
            marker = "  <-- latency step";
        std::printf("%-10s %10.1f %8u  %-40s%s\n",
                    bench::sizeLabel(bytes).c_str(), pt.msPerGb,
                    pt.stages, pt.regime.c_str(), marker);
        prev = pt.msPerGb;
    }

    std::printf(
        "\nPaper's annotated steps: extra stage @2 GB (1.33x), switch "
        "to SSD @128 GB,\nextra phase-2 stage @32 TB (1.5x), extra "
        "phase-2 stage @8192 TB (1.33x).\n");
    return 0;
}
