/**
 * @file
 * Figure 12 reproduction: bandwidth-efficiency (sorter throughput /
 * available off-chip memory bandwidth) at 16 GB input size.  Bonsai
 * appears twice: on a single 8 GB/s DRAM bank ("Bonsai 8") and on the
 * full 4-bank 32 GB/s system ("Bonsai 32"); comparator throughputs
 * follow from Table I, their memory bandwidths are reconstructed from
 * the respective publications (see EXPERIMENTS.md).
 */

#include <cstdio>

#include "baseline/published.hpp"
#include "bench_util.hpp"
#include "core/scalability.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Figure 12: bandwidth-efficiency at 16 GB "
                 "(throughput / memory bandwidth)");

    const std::uint64_t bytes = 16 * kGB;

    std::printf("%-18s %14s %14s %12s\n", "System", "Thpt (GB/s)",
                "Mem BW (GB/s)", "Efficiency");
    bench::rule(62);

    double best_other = 0.0;
    for (const auto &entry : baseline::figure12Comparators()) {
        std::printf("%-18s %14.2f %14.1f %12.3f\n",
                    std::string(entry.name).c_str(),
                    entry.throughput / kGB, entry.memBandwidth / kGB,
                    entry.efficiency());
        best_other = std::max(best_other, entry.efficiency());
    }

    // Bonsai 8: single bank; Bonsai 32: four banks (as-built ell=64).
    core::ScalabilityParams b8;
    b8.dramEll = 64;
    b8.dramBandwidth = 8.0 * kGB;
    const auto pt8 = core::scalabilityAt(b8, bytes);
    const double thpt8 = static_cast<double>(bytes) / pt8.latencySeconds;
    std::printf("%-18s %14.2f %14.1f %12.3f\n", "Bonsai 8",
                thpt8 / kGB, 8.0, thpt8 / (8.0 * kGB));

    core::ScalabilityParams b32;
    b32.dramEll = 64; // measured 29 of 32 GB/s nominal
    const auto pt32 = core::scalabilityAt(b32, bytes);
    const double thpt32 =
        static_cast<double>(bytes) / pt32.latencySeconds;
    std::printf("%-18s %14.2f %14.1f %12.3f\n", "Bonsai 32",
                thpt32 / kGB, 32.0, thpt32 / (32.0 * kGB));

    std::printf("\nBonsai 8 vs best comparator: %.1fx "
                "(paper: 3.3x)\n",
                thpt8 / (8.0 * kGB) / best_other);
    std::printf("Bonsai 32 vs best comparator: %.1fx "
                "(paper: 2.25x)\n",
                thpt32 / (32.0 * kGB) / best_other);
    return 0;
}
