/**
 * @file
 * Engine-mode benchmark: wall-clock of the cycle-level sorter under
 * the naive Reference loop (every component ticked every cycle) vs
 * the activity-driven FastForward engine, on a stall-heavy
 * bandwidth-starved configuration where most cycles are provably
 * idle.  The two runs must agree cycle-for-cycle (cross-checked
 * here); the point of fast-forward is purely host wall-clock.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "sorter/sim_sorter.hpp"

namespace
{

using namespace bonsai;

struct ModeResult
{
    sorter::SimSortStats stats;
    double wallSeconds = 0.0;
};

ModeResult
runMode(sim::EngineMode mode, double bank_bytes_per_cycle,
        std::uint64_t latency, std::size_t n)
{
    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{8, 16, 1, 1};
    o.mem.numBanks = 4;
    o.mem.bankBytesPerCycle = bank_bytes_per_cycle;
    o.mem.requestLatency = latency;
    o.batchBytes = 1024;
    o.presortRun = 16;
    o.engine = mode;
    auto data = makeRecords(n, Distribution::UniformRandom);
    sorter::SimSorter<Record> sim(o);
    ModeResult result;
    const auto start = std::chrono::steady_clock::now();
    result.stats = sim.sort(data);
    result.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return result;
}

} // namespace

int
main()
{
    using namespace bonsai;
    bench::title("Engine study: reference loop vs quiescence "
                 "fast-forward");

    // Bandwidth-starved shape: 4 banks x 0.25 B/cycle against an
    // 8 rec/cycle tree leaves the datapath stalled on memory for the
    // vast majority of cycles — the fast-forward sweet spot.
    const double bw = 0.25;
    const std::uint64_t latency = 64;
    const std::size_t n = kMB / 4;

    std::printf("config: AMT(8, 16), 4 banks x %.2f B/cycle, "
                "latency %llu, %s input\n\n",
                bw, static_cast<unsigned long long>(latency),
                bench::sizeLabel(n * 4).c_str());

    const ModeResult ref =
        runMode(sim::EngineMode::Reference, bw, latency, n);
    const ModeResult ff =
        runMode(sim::EngineMode::FastForward, bw, latency, n);

    if (!ref.stats.completed || !ff.stats.completed) {
        std::printf("simulation did not complete\n");
        return 1;
    }
    if (ff.stats.totalCycles != ref.stats.totalCycles ||
        ff.stats.mergerStallCycles != ref.stats.mergerStallCycles) {
        std::printf("ENGINE MISMATCH: reference %llu cycles / %llu "
                    "stalls, fast-forward %llu / %llu\n",
                    static_cast<unsigned long long>(
                        ref.stats.totalCycles),
                    static_cast<unsigned long long>(
                        ref.stats.mergerStallCycles),
                    static_cast<unsigned long long>(
                        ff.stats.totalCycles),
                    static_cast<unsigned long long>(
                        ff.stats.mergerStallCycles));
        return 1;
    }

    const double speedup = ref.wallSeconds / ff.wallSeconds;
    std::printf("%-14s %14s %12s\n", "Engine", "sim cycles",
                "wall time");
    bench::rule(44);
    std::printf("%-14s %14llu %10.3f s\n", "reference",
                static_cast<unsigned long long>(ref.stats.totalCycles),
                ref.wallSeconds);
    std::printf("%-14s %14llu %10.3f s\n", "fast-forward",
                static_cast<unsigned long long>(ff.stats.totalCycles),
                ff.wallSeconds);
    std::printf("\nspeedup: %.2fx (identical cycle counts and stall "
                "statistics)\n",
                speedup);

    bench::JsonReporter report("sim_engine");
    report.config("p", std::uint64_t{8});
    report.config("ell", std::uint64_t{16});
    report.config("banks", std::uint64_t{4});
    report.config("bank_bytes_per_cycle", bw);
    report.config("request_latency", latency);
    report.config("input_bytes", std::uint64_t{n * 4});
    for (const auto *entry : {&ref, &ff}) {
        report.beginPoint();
        report.field("engine",
                     std::string(entry == &ref ? "reference"
                                               : "fast_forward"));
        report.field("sim_cycles", entry->stats.totalCycles);
        report.field("merger_stall_cycles",
                     entry->stats.mergerStallCycles);
        report.field("wall_seconds", entry->wallSeconds);
    }
    report.beginPoint();
    report.field("engine", std::string("speedup"));
    report.field("wall_speedup", speedup);
    report.write();
    std::printf("wrote BENCH_sim_engine.json\n");
    return speedup >= 2.0 ? 0 : 1;
}
