/**
 * @file
 * Thread-scaling ablation for the behavioral sorter (google-benchmark).
 *
 * The headline measurement is the *final merge stage*: a StagePlan of
 * ell sorted runs collapsing into one group — the stage that ran on a
 * single core before Merge Path intra-group parallelism, because
 * group-level parallelism has exactly one group to hand out.  On a
 * multi-core host BM_FinalStageMerge at 8 threads should run >= 3x
 * faster than at 1 thread for the 256 MiB input (1 << 24 records of
 * 16 bytes); every threaded run is checked byte-for-byte against the
 * serial merge before timing starts.
 *
 * BM_FullSortScaling covers the end-to-end sort (presort + all
 * stages) at the same thread counts, and BM_PartitionOverhead prices
 * the Merge Path cut computation itself.
 *
 * Run:  ./build/bench/bench_ablation_threads
 *       [--benchmark_filter=FinalStage]
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/random.hpp"
#include "common/thread_pool.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/merge_path.hpp"
#include "sorter/stage_plan.hpp"

namespace
{

using namespace bonsai;

constexpr unsigned kEll = 16; // fan-in of the measured final stage

/** n records pre-partitioned into kEll sorted runs (a final-stage
 *  input), cached across benchmark registrations. */
const std::vector<Record> &
finalStageInput(std::size_t n)
{
    static std::map<std::size_t, std::vector<Record>> cache;
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    auto data = makeRecords(n, Distribution::UniformRandom, 4242);
    for (const RunSpan &run : chunkRuns(n, (n + kEll - 1) / kEll))
        std::sort(data.begin() + run.offset,
                  data.begin() + run.offset + run.length);
    return cache.emplace(n, std::move(data)).first->second;
}

std::vector<RunSpan>
finalStageRuns(std::size_t n)
{
    return chunkRuns(n, (n + kEll - 1) / kEll);
}

void
BM_FinalStageMerge(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const unsigned threads = static_cast<unsigned>(state.range(1));
    const std::vector<Record> &src = finalStageInput(n);
    const sorter::StagePlan plan(finalStageRuns(n), kEll);
    const sorter::BehavioralSorter<Record> sorter(kEll, 16, threads);
    std::vector<Record> dst(n);

    // Determinism gate: the threaded stage must be byte-identical to
    // the serial stage before its timing means anything.
    {
        std::vector<Record> serial(n);
        ThreadPool one(1);
        sorter.runStage(plan, src, serial, one);
        ThreadPool pool(threads);
        sorter.runStage(plan, src, dst, pool);
        if (std::memcmp(serial.data(), dst.data(),
                        n * sizeof(Record)) != 0) {
            state.SkipWithError(
                "threaded final stage is not byte-identical");
            return;
        }
    }

    ThreadPool pool(threads);
    for (auto _ : state)
        sorter.runStage(plan, src, dst, pool);
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
    state.counters["threads"] = threads;
}

void
BM_FullSortScaling(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const unsigned threads = static_cast<unsigned>(state.range(1));
    const auto input =
        makeRecords(n, Distribution::UniformRandom, 99);
    const sorter::BehavioralSorter<Record> sorter(64, 16, threads);
    for (auto _ : state) {
        auto data = input;
        sorter.sort(data);
        benchmark::DoNotOptimize(data.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
    state.counters["threads"] = threads;
}

void
BM_PartitionOverhead(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const unsigned parts = static_cast<unsigned>(state.range(1));
    const std::vector<Record> &src = finalStageInput(n);
    std::vector<std::span<const Record>> inputs;
    for (const RunSpan &run : finalStageRuns(n))
        inputs.emplace_back(src.data() + run.offset, run.length);
    const sorter::MergePath<Record> path(std::move(inputs));
    for (auto _ : state) {
        auto bounds = path.partition(parts);
        benchmark::DoNotOptimize(bounds.data());
    }
}

// 64 MiB and the acceptance-scale 256 MiB final-stage inputs.
BENCHMARK(BM_FinalStageMerge)
    ->Args({1 << 22, 1})
    ->Args({1 << 22, 2})
    ->Args({1 << 22, 4})
    ->Args({1 << 22, 8})
    ->Args({1 << 24, 1})
    ->Args({1 << 24, 2})
    ->Args({1 << 24, 4})
    ->Args({1 << 24, 8})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

BENCHMARK(BM_FullSortScaling)
    ->Args({1 << 22, 1})
    ->Args({1 << 22, 2})
    ->Args({1 << 22, 4})
    ->Args({1 << 22, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_PartitionOverhead)
    ->Args({1 << 22, 8})
    ->Args({1 << 24, 8})
    ->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
