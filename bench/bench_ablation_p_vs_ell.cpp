/**
 * @file
 * Ablation: the p vs ell trade-off (Sections II, VI-B2).  Paper
 * observations reproduced: (1) at equal p, more leaves never hurts;
 * (2) at equal ell, higher p helps until DRAM bandwidth saturates;
 * (3) past saturation only ell reduces time; (4) the optimal
 * single-AMT design has p just saturating bandwidth and maximal ell.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "model/perf_model.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Ablation: p vs ell trade-off (16 GB, 32 GB/s DRAM) "
                 "- model latency in seconds");

    model::BonsaiInputs in;
    in.array = {16ULL * kGB / 4, 4};
    in.hw = core::awsF1();

    std::printf("%-8s", "p \\ ell");
    for (unsigned ell : {16u, 32u, 64u, 128u, 256u})
        std::printf("%10u", ell);
    std::printf("\n");
    bench::rule(58);
    for (unsigned p : {4u, 8u, 16u, 32u}) {
        std::printf("%-8u", p);
        for (unsigned ell : {16u, 32u, 64u, 128u, 256u}) {
            const auto est = model::latencyEstimate(
                in, amt::AmtConfig{p, ell, 1, 1});
            std::printf("%10.2f", est.latencySeconds);
        }
        std::printf("\n");
    }

    std::printf("\nLUT cost of the same grid (Equation 8 + presorter "
                "+ loader):\n");
    std::printf("%-8s", "p \\ ell");
    for (unsigned ell : {16u, 32u, 64u, 128u, 256u})
        std::printf("%10u", ell);
    std::printf("\n");
    bench::rule(58);
    for (unsigned p : {4u, 8u, 16u, 32u}) {
        std::printf("%-8u", p);
        for (unsigned ell : {16u, 32u, 64u, 128u, 256u}) {
            const auto est = model::predictResources(
                in, amt::AmtConfig{p, ell, 1, 1});
            std::printf("%9lluk",
                        static_cast<unsigned long long>(
                            est.totalLut() / 1000));
        }
        std::printf("\n");
    }

    core::Optimizer opt(in);
    const auto best = opt.best(core::Objective::Latency);
    if (best) {
        std::printf("\nBonsai's pick: AMT(%u, %u) — p saturates the "
                    "32 GB/s DRAM, ell maximal within\nC_LUT/C_BRAM "
                    "(paper Section VI-B2's rule).\n",
                    best->config.p, best->config.ell);
    }

    // Routing congestion (Section VI-C1): the reason the as-built
    // sorter stops at ell = 64.
    std::printf("\nWith the routing-congestion frequency derate "
                "(single tree):\n");
    std::printf("%-8s %12s %14s %12s\n", "ell", "clock MHz",
                "stages@16GB", "latency (s)");
    bench::rule(50);
    in.arch.routingDerate = true;
    for (unsigned ell : {64u, 128u, 256u}) {
        const auto est = model::latencyEstimate(
            in, amt::AmtConfig{32, ell, 1, 1});
        std::printf("%-8u %12.0f %14u %12.2f\n", ell,
                    model::effectiveFrequency(in.arch, ell) / 1e6,
                    est.stages, est.latencySeconds);
    }
    core::SearchSpace single_tree;
    single_tree.maxUnroll = 1;
    core::Optimizer derated(in, single_tree);
    const auto built = derated.best(core::Objective::Latency);
    if (built) {
        std::printf("-> derated pick: AMT(%u, %u), the paper's "
                    "as-implemented design (VI-C1)\n", built->config.p,
                    built->config.ell);
    }
    return 0;
}
