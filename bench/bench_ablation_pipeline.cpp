/**
 * @file
 * Ablation: AMT pipelining in the SSD sorter's first phase
 * (Section III-A3).  The paper: "using pipelining with lambda_pipe = 4
 * lowers the execution time of the first phase of the SSD sorter by
 * 2x".
 *
 * Baseline (no pipelining): each 8 GB chunk is streamed in over the
 * I/O bus, sorted in DRAM, and streamed back out — the bus idles while
 * the chunk sorts, so each byte occupies the bus for two serialized
 * transits: throughput beta_io / 2.  A lambda_pipe-deep pipeline
 * dedicates one AMT per merge stage so the bus never idles
 * (Equation 3), until the DRAM share beta/lambda_pipe binds.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "core/platforms.hpp"
#include "model/perf_model.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Ablation: phase-1 pipelining (2 TB in 8 GB chunks, "
                 "8 GB/s I/O, AMT(8, 64))");

    const double total_bytes = 2.0 * kTB;
    const double beta_io = 8.0 * kGB;

    std::printf("%-24s %16s %14s %10s\n", "Configuration",
                "throughput GB/s", "phase-1 (s)", "speedup");
    bench::rule(70);

    // Unpipelined baseline: bus in-transit + idle-while-sorting +
    // out-transit; full-duplex in/out of adjacent chunks overlap, so
    // each chunk costs one inbound + one outbound serialized with its
    // own sort: effective bus rate beta_io / 2.
    const double base_thpt = beta_io / 2.0;
    const double base_secs = total_bytes / base_thpt;
    std::printf("%-24s %16.2f %14.1f %10s\n",
                "no pipeline (1 AMT)", base_thpt / kGB, base_secs,
                "1.00x");

    for (unsigned pipe : {2u, 4u, 8u}) {
        model::BonsaiInputs in;
        in.array = {8ULL * kGB / 4, 4};
        in.hw = core::awsF1();
        in.arch.presortRunLength = 256;
        const amt::AmtConfig cfg{8, 64, 1, pipe};
        const auto est = model::pipelineEstimate(in, cfg);
        double thpt = est.throughputBytesPerSec;
        // A pipeline shallower than the required stage count must
        // recirculate: each byte crosses the bus stages/pipe times.
        const unsigned needed =
            model::mergeStages(in.array.n, cfg.ell, 256);
        if (pipe < needed)
            thpt = thpt * pipe / needed;
        const double secs = total_bytes / thpt;
        char label[32];
        std::snprintf(label, sizeof(label), "lambda_pipe = %u", pipe);
        std::printf("%-24s %16.2f %14.1f %9.2fx\n", label, thpt / kGB,
                    secs, base_secs / secs);
    }
    std::printf("\n(paper: lambda_pipe = 4 halves phase-1 time; "
                "lambda_pipe = 8 loses to the\n DRAM bandwidth share "
                "beta/lambda_pipe, Equation 3)\n");
    return 0;
}
