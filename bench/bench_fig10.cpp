/**
 * @file
 * Figure 10 reproduction: LUT utilization of every synthesizable AMT
 * (p <= 32, ell <= 256) — the structural ("synthesis") estimate vs the
 * Equation 8 model prediction.  The paper reports the model within 5%
 * of Vivado's numbers across this space.
 */

#include <cmath>
#include <cstdio>

#include "amt/synth_estimate.hpp"
#include "bench_util.hpp"
#include "model/merger_costs.hpp"
#include "model/resource_model.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Figure 10: AMT LUT utilization, structural "
                 "(synth-like) vs Equation 8 prediction, 32-bit "
                 "records");

    const auto costs = model::costs32();
    std::printf("%-14s %14s %14s %9s\n", "AMT(p, ell)", "structural",
                "Eq.8 model", "error");
    bench::rule(56);

    double worst = 0.0;
    for (unsigned p = 1; p <= 32; p *= 2) {
        for (unsigned ell = 4; ell <= 256; ell *= 2) {
            const amt::TreeShape shape = amt::makeTreeShape(p, ell);
            const std::uint64_t synth = amt::treeStructLut(shape, 32);
            const std::uint64_t predicted =
                model::predictTreeLut(p, ell, costs);
            const double err =
                100.0 *
                std::abs(static_cast<double>(synth) -
                         static_cast<double>(predicted)) /
                static_cast<double>(predicted);
            if (err > worst)
                worst = err;
            std::printf("AMT(%2u, %3u)  %14llu %14llu %8.1f%%\n", p,
                        ell, static_cast<unsigned long long>(synth),
                        static_cast<unsigned long long>(predicted),
                        err);
        }
    }
    std::printf("\nworst-case disagreement: %.1f%% "
                "(paper: model within 5%% of synthesis)\n",
                worst);
    return 0;
}
