/**
 * @file
 * Figures 8 & 9 reproduction: sorting time per GB of various AMT
 * configurations on the AWS F1 memory system ("measured" = the
 * stage-level streaming simulation of the datapath) against the
 * performance model's prediction (Equation 1), for input sizes
 * 512 MB - 16 GB.  The paper's claim: all measurements within 10% of
 * the model.  A cycle-accurate cross-check at 16 MB closes the loop
 * between the two simulators.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "core/platforms.hpp"
#include "model/perf_model.hpp"
#include "sorter/sim_sorter.hpp"
#include "sorter/stage_sim.hpp"

namespace
{

using namespace bonsai;

void
sweep(const char *name, const std::vector<amt::AmtConfig> &configs,
      bench::JsonReporter &report)
{
    bench::title(name);
    std::printf("%-14s", "Input");
    for (const auto &cfg : configs)
        std::printf("  AMT(%2u,%3u) meas/pred", cfg.p, cfg.ell);
    std::printf("\n");
    bench::rule(14 + 24 * static_cast<int>(configs.size()));

    for (std::uint64_t bytes :
         {512 * kMB, 1 * kGB, 2 * kGB, 4 * kGB, 8 * kGB, 16 * kGB}) {
        std::printf("%-14s", bench::sizeLabel(bytes).c_str());
        for (const auto &cfg : configs) {
            sorter::StageSimulator::Options o;
            o.config = cfg;
            o.array = {bytes / 4, 4};
            o.betaDram = core::awsF1().betaDram;
            const auto measured = sorter::StageSimulator(o).run();

            model::BonsaiInputs in;
            in.array = o.array;
            in.hw = core::awsF1();
            const auto predicted = model::latencyEstimate(in, cfg);

            const double m_ms =
                toMs(measured.totalSeconds) / toGb(bytes);
            const double p_ms =
                toMs(predicted.latencySeconds) / toGb(bytes);
            std::printf("   %8.1f / %-8.1f ", m_ms, p_ms);

            report.beginPoint();
            report.field("p", std::uint64_t{cfg.p});
            report.field("ell", std::uint64_t{cfg.ell});
            report.field("input_bytes", bytes);
            report.field("measured_seconds", measured.totalSeconds);
            report.field("predicted_seconds",
                         predicted.latencySeconds);
            report.field("model_residual",
                         (measured.totalSeconds -
                          predicted.latencySeconds) /
                             predicted.latencySeconds);
        }
        std::printf("\n");
    }

    std::printf("\nmax |measured - predicted| / predicted: ");
    double worst = 0.0;
    for (std::uint64_t bytes :
         {512 * kMB, 1 * kGB, 2 * kGB, 4 * kGB, 8 * kGB, 16 * kGB}) {
        for (const auto &cfg : configs) {
            sorter::StageSimulator::Options o;
            o.config = cfg;
            o.array = {bytes / 4, 4};
            o.betaDram = core::awsF1().betaDram;
            const double measured =
                sorter::StageSimulator(o).run().totalSeconds;
            model::BonsaiInputs in;
            in.array = o.array;
            in.hw = core::awsF1();
            const double predicted =
                model::latencyEstimate(in, cfg).latencySeconds;
            const double err =
                std::abs(measured - predicted) / predicted;
            if (err > worst)
                worst = err;
        }
    }
    std::printf("%.1f%% (paper bound: 10%%)\n\n", 100.0 * worst);
}

} // namespace

int
main()
{
    using namespace bonsai;

    bench::JsonReporter report("fig8_9");
    report.config("platform", std::string("aws_f1"));
    report.config("record_bytes", std::uint64_t{4});

    sweep("Figure 8: sort time per GB, AMT(p, 64) sweep "
          "(ms/GB, measured/predicted)",
          {amt::AmtConfig{4, 64, 1, 1}, amt::AmtConfig{8, 64, 1, 1},
           amt::AmtConfig{16, 64, 1, 1},
           amt::AmtConfig{32, 64, 1, 1}},
          report);

    sweep("Figure 9: sort time per GB, AMT(32, ell) sweep "
          "(ms/GB, measured/predicted)",
          {amt::AmtConfig{32, 16, 1, 1}, amt::AmtConfig{32, 64, 1, 1},
           amt::AmtConfig{32, 128, 1, 1},
           amt::AmtConfig{32, 256, 1, 1}},
          report);

    // Cycle-accurate cross-check at 16 MB (4M records): the
    // cycle-level datapath vs the same model.
    bench::title("Cycle-accurate cross-check (16 MB, AMT(8, 64))");
    const std::size_t n = (16 * kMB) / 4;
    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{8, 64, 1, 1};
    o.mem.numBanks = 4;
    o.mem.bankBytesPerCycle = 32.0;
    o.batchBytes = 1024;
    auto data = makeRecords(n, Distribution::UniformRandom);
    sorter::SimSorter<Record> sim(o);
    const auto stats = sim.sort(data);
    model::BonsaiInputs in;
    in.array = {n, 4};
    in.hw = core::awsF1();
    const auto predicted =
        model::latencyEstimate(in, amt::AmtConfig{8, 64, 1, 1});
    const double measured_s = stats.seconds(250e6);
    std::printf("cycle-sim: %.3f ms   model: %.3f ms   error: %.1f%%\n",
                toMs(measured_s), toMs(predicted.latencySeconds),
                100.0 * std::abs(measured_s -
                                 predicted.latencySeconds) /
                    predicted.latencySeconds);

    report.beginPoint();
    report.field("p", std::uint64_t{8});
    report.field("ell", std::uint64_t{64});
    report.field("input_bytes", std::uint64_t{16 * kMB});
    report.field("cycles", stats.totalCycles);
    report.field("measured_seconds", measured_s);
    report.field("predicted_seconds", predicted.latencySeconds);
    report.field("model_residual",
                 (measured_s - predicted.latencySeconds) /
                     predicted.latencySeconds);
    report.write();
    std::printf("wrote BENCH_fig8_9.json\n");
    return 0;
}
