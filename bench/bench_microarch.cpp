/**
 * @file
 * Microarchitecture study (paper Section V): per-stage behaviour of
 * the cycle-accurate datapath — memory-channel utilization, merger
 * stalls, merge-group counts — for the DRAM sorter shape at MB scale,
 * plus the per-block latency/throughput characteristics of the
 * building blocks.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "hw/bitonic.hpp"
#include "sorter/sim_sorter.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Microarchitecture study (Section V)");

    std::printf("Building-block pipeline characteristics:\n");
    std::printf("%-12s %10s %14s %12s\n", "Element", "latency",
                "CAS units", "CAS (16-srt)");
    bench::rule(52);
    for (unsigned k = 1; k <= 32; k *= 2) {
        std::printf("%2u-merger    %7llu cyc %14llu %12s\n", k,
                    static_cast<unsigned long long>(
                        hw::mergerLatency(k)),
                    static_cast<unsigned long long>(
                        2 * hw::casCountHalfMerger(k)),
                    k == 16 ? "80" : "");
    }

    std::printf("\nPer-stage datapath behaviour "
                "(8 MB, AMT(8, 64), 4 banks x 32 B/cycle):\n");
    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{8, 64, 1, 1};
    o.mem.numBanks = 4;
    o.mem.bankBytesPerCycle = 32.0;
    o.batchBytes = 1024;
    const std::size_t n = (8 * kMB) / 4;
    auto data = makeRecords(n, Distribution::UniformRandom);
    sorter::SimSorter<Record> sim(o);
    const auto stats = sim.sort(data);
    if (!stats.completed) {
        std::printf("simulation did not complete\n");
        return 1;
    }

    bench::JsonReporter json("microarch");
    json.config("p", std::uint64_t{o.config.p});
    json.config("ell", std::uint64_t{o.config.ell});
    json.config("banks", std::uint64_t{o.mem.numBanks});
    json.config("bank_bytes_per_cycle", o.mem.bankBytesPerCycle);
    json.config("input_bytes", std::uint64_t{8 * kMB});

    std::printf("%-8s %10s %10s %10s %12s %10s\n", "Stage", "cycles",
                "groups", "read MB", "read util", "stalls/merger");
    bench::rule(66);
    const unsigned mergers = o.config.ell - 1;
    for (std::size_t s = 0; s < stats.stageReports.size(); ++s) {
        const auto &report = stats.stageReports[s];
        std::printf("%-8zu %10llu %10llu %10.2f %11.1f%% %10.0f\n", s,
                    static_cast<unsigned long long>(report.cycles),
                    static_cast<unsigned long long>(report.groups),
                    report.bytesRead / 1e6,
                    100.0 * report.readUtilization,
                    static_cast<double>(report.mergerStallCycles) /
                        mergers);
        json.beginPoint();
        json.field("stage", static_cast<std::uint64_t>(s));
        json.field("cycles", report.cycles);
        json.field("seconds",
                   static_cast<double>(report.cycles) / 250e6);
        json.field("groups", report.groups);
        json.field("bytes_read", report.bytesRead);
        json.field("read_utilization", report.readUtilization);
        json.field("merger_stall_cycles", report.mergerStallCycles);
    }
    json.write();
    std::printf("\ntotal: %llu cycles = %.3f ms at 250 MHz "
                "(%u stages, %.1f MB moved each way)\n",
                static_cast<unsigned long long>(stats.totalCycles),
                toMs(stats.seconds(250e6)), stats.stages,
                stats.bytesRead / 1e6 / stats.stages);
    std::printf("\nNote: the tree is compute-bound here (8 rec/cycle "
                "= 32 B/cycle of the 128 B/cycle\nchannel), so read "
                "utilization sits near 25%% by design; "
                "bandwidth-bound\nconfigurations reach ~100%% (see "
                "cross-validation tests).\n");
    return 0;
}
