/**
 * @file
 * Ablation: the 16-record bitonic presorter (Section VI-C1).  The
 * paper: presorting into 16-record runs before the first merge stage
 * "reduces the total number of stages by one, and the total execution
 * time by 10-20%, depending on input size".  Reproduced with the
 * closed-form model across sizes and cross-checked on the
 * cycle-accurate simulator at MB scale.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "core/platforms.hpp"
#include "model/perf_model.hpp"
#include "sorter/sim_sorter.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Ablation: presorter on/off (AMT(32, 64), AWS F1)");

    std::printf("%-10s %8s %8s %12s   (paper: 10-20%% saved)\n",
                "Input", "stages", "stages", "time saved");
    std::printf("%-10s %8s %8s\n", "", "w/o", "with");
    bench::rule(56);
    const amt::AmtConfig cfg{32, 64, 1, 1};
    for (std::uint64_t bytes :
         {512 * kMB, 1 * kGB, 4 * kGB, 16 * kGB, 64 * kGB}) {
        model::BonsaiInputs in;
        in.array = {bytes / 4, 4};
        in.hw = core::awsF1();
        in.arch.presortRunLength = 1;
        const auto without = model::latencyEstimate(in, cfg);
        in.arch.presortRunLength = 16;
        const auto with = model::latencyEstimate(in, cfg);
        std::printf("%-10s %8u %8u %11.1f%%\n",
                    bench::sizeLabel(bytes).c_str(), without.stages,
                    with.stages,
                    100.0 *
                        (without.latencySeconds - with.latencySeconds) /
                        without.latencySeconds);
    }

    std::printf("\nCycle-accurate check (4 MB, AMT(8, 16)):\n");
    const std::size_t n = (4 * kMB) / 4;
    for (std::uint64_t presort : {1u, 16u}) {
        sorter::SimSorter<Record>::Options o;
        o.config = amt::AmtConfig{8, 16, 1, 1};
        o.mem.bankBytesPerCycle = 32.0;
        o.presortRun = presort;
        auto data = makeRecords(n, Distribution::UniformRandom);
        sorter::SimSorter<Record> sim(o);
        const auto stats = sim.sort(data);
        std::printf("  presort=%-2llu: %u stages, %llu cycles\n",
                    static_cast<unsigned long long>(presort),
                    stats.stages,
                    static_cast<unsigned long long>(stats.totalCycles));
    }
    return 0;
}
