/**
 * @file
 * Ablation: non-overlapping (range) vs address-based partitioning for
 * unrolled configurations — the comparison the paper explicitly left
 * "for future work" (Section III-A2, footnote 1).
 *
 * Range partitioning skips the combining stages entirely but pays the
 * skew of imperfect splitters (the slowest range bounds every stage);
 * address-based partitioning is perfectly balanced but must fold the
 * lambda sorted regions back together with a halving tree count.
 * Both modes run on the cycle-accurate simulator (4 MB) and the
 * stage-level simulator (16 GB, HBM).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "sorter/range_partitioner.hpp"
#include "sorter/sim_sorter.hpp"
#include "sorter/stage_sim.hpp"

int
main()
{
    using namespace bonsai;
    bench::title("Ablation: range vs address partitioning of "
                 "unrolled trees (paper's future work)");

    // ---- Cycle-accurate, 4 MB, 4 x AMT(8, 4).
    std::printf("Cycle-accurate (4 MB, 4 x AMT(8, 4), 32 GB/s):\n");
    std::printf("%-18s %12s %8s\n", "Mode", "cycles", "stages");
    bench::rule(42);
    const std::size_t n = (4 * kMB) / 4;
    for (auto mode : {sorter::UnrollMode::AddressRange,
                      sorter::UnrollMode::RangePartitioned}) {
        sorter::SimSorter<Record>::Options o;
        o.config = amt::AmtConfig{8, 4, 4, 1};
        o.mem.bankBytesPerCycle = 32.0;
        o.batchBytes = 1024;
        o.unrollMode = mode;
        auto data = makeRecords(n, Distribution::UniformRandom);
        sorter::SimSorter<Record> sim(o);
        const auto stats = sim.sort(data);
        std::printf("%-18s %12llu %8u\n",
                    mode == sorter::UnrollMode::AddressRange
                        ? "address-range" : "range-partitioned",
                    static_cast<unsigned long long>(stats.totalCycles),
                    stats.stages);
    }

    // ---- Measured splitter skew of the bundled sampler.
    std::printf("\nSplitter skew of the sampling partitioner "
                "(200k uniform records):\n");
    const auto input =
        makeRecords(200'000, Distribution::UniformRandom);
    for (unsigned ranges : {2u, 4u, 8u, 16u}) {
        sorter::RangePartitioner<Record> partitioner(ranges);
        const auto part = partitioner.partition(input);
        std::printf("  lambda = %-3u largest/ideal = %.3f\n", ranges,
                    part.skew);
    }

    // ---- Stage-level, 16 GB on 512 GB/s HBM, 16 x AMT(32, 4).
    std::printf("\nStage-level (16 GB, 16 x AMT(32, 4), 512 GB/s "
                "HBM):\n");
    std::printf("%-26s %10s %8s\n", "Mode", "seconds", "stages");
    bench::rule(48);
    for (int mode = 0; mode < 2; ++mode) {
        sorter::StageSimulator::Options o;
        o.config = amt::AmtConfig{32, 4, 16, 1};
        o.array = {16ULL * kGB / 4, 4};
        o.betaDram = 512.0 * kGB;
        o.rangePartitioned = (mode == 1);
        o.rangeSkew = 1.10; // measured above at lambda = 16
        const auto result = sorter::StageSimulator(o).run();
        std::printf("%-26s %10.3f %8u\n",
                    mode ? "range-partitioned (skew 1.10)"
                         : "address-range + combine",
                    result.totalSeconds, result.stages);
    }
    std::printf("\n(range partitioning wins whenever skew < the "
                "combine-stage overhead —\n on HBM the final combine "
                "stages run on 1-8 of 16 trees and dominate)\n");
    return 0;
}
