/**
 * @file
 * Out-of-core streaming sort benchmarks (google-benchmark).
 *
 * BM_StreamedVsInMemory prices what the streaming layer costs over the
 * in-memory adapter on the same records and engine options: the
 * streamed run sorts through two spill files and the bounded buffer
 * pool, the in-memory run through the zero-copy Merge Path passes.
 * The gap is the spill I/O plus whatever prefetch/write-back overlap
 * fails to hide (the stall telemetry on the counters shows which).
 *
 * BM_StreamBatchSize sweeps the batch size b at a fixed pool budget —
 * larger b means fewer, bigger I/O calls but a smaller effective
 * fan-in (Equation 10's b * ell trade), so ms/GB is U-shaped.
 *
 * Run:  ./build/bench/bench_external_sort
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/external.hpp"

namespace
{

using namespace bonsai;

sorter::StreamEngine<Record>::Options
engineOptions(std::uint64_t batch_records)
{
    sorter::StreamEngine<Record>::Options opt;
    opt.phase1Ell = 16;
    opt.phase2Ell = 16;
    opt.chunkRecords = 1 << 16; // 1 MiB chunks
    opt.batchRecords = batch_records;
    opt.bufferBudgetBytes = 4ULL << 20;
    opt.threads = 2;
    return opt;
}

void
BM_StreamedVsInMemory(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const bool streamed = state.range(1) != 0;
    const auto input =
        makeRecords(n, Distribution::UniformRandom, 1234);
    const sorter::StreamEngine<Record> engine(engineOptions(1 << 12));

    sorter::StreamStats last;
    for (auto _ : state) {
        if (streamed) {
            io::MemorySource<Record> source{
                std::span<const Record>(input)};
            std::vector<Record> out;
            out.reserve(n);
            io::MemorySink<Record> sink(out);
            io::FileRunStore<Record> front;
            io::FileRunStore<Record> back;
            last = engine.sortStream(source, sink, front, back);
            benchmark::DoNotOptimize(out.data());
        } else {
            auto data = input;
            last = engine.sortInPlace(data);
            benchmark::DoNotOptimize(data.data());
        }
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
    state.counters["merge_passes"] =
        static_cast<double>(last.mergePasses);
    state.counters["read_stall_ms"] = last.readStallSeconds * 1e3;
    state.counters["write_stall_ms"] = last.writeStallSeconds * 1e3;
}

void
BM_StreamBatchSize(benchmark::State &state)
{
    const std::size_t n = 1 << 21; // 32 MiB of records
    const std::uint64_t batch =
        static_cast<std::uint64_t>(state.range(0));
    const auto input =
        makeRecords(n, Distribution::UniformRandom, 77);
    const sorter::StreamEngine<Record> engine(engineOptions(batch));

    sorter::StreamStats last;
    for (auto _ : state) {
        io::MemorySource<Record> source{
            std::span<const Record>(input)};
        std::vector<Record> out;
        out.reserve(n);
        io::MemorySink<Record> sink(out);
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        last = engine.sortStream(source, sink, front, back);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
    state.counters["batch_records"] = static_cast<double>(batch);
    state.counters["effective_ell"] =
        static_cast<double>(last.effectiveEll);
}

BENCHMARK(BM_StreamedVsInMemory)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1})
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_StreamBatchSize)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 15) // 8-buffer pool: fan-in squeezed to 3
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

BENCHMARK_MAIN();
