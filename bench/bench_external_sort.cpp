/**
 * @file
 * Out-of-core streaming sort benchmarks (google-benchmark).
 *
 * BM_StreamedVsInMemory prices what the streaming layer costs over the
 * in-memory adapter on the same records and engine options: the
 * streamed run sorts through two spill files and the bounded buffer
 * pool, the in-memory run through the zero-copy Merge Path passes.
 * The gap is the spill I/O plus whatever prefetch/write-back overlap
 * fails to hide (the stall telemetry on the counters shows which).
 *
 * BM_StreamBatchSize sweeps the batch size b at a fixed pool budget —
 * larger b means fewer, bigger I/O calls but a smaller effective
 * fan-in (Equation 10's b * ell trade), so ms/GB is U-shaped.
 *
 * BM_StreamThreads sweeps the thread count on memory-backed run
 * stores (so storage bandwidth does not mask compute), splitting the
 * wall clock into phase-1 and phase-2 seconds — the axis that shows
 * whether the parallel phase-2 merge (concurrent groups + the
 * splitter-partitioned final pass) actually scales.  Before the
 * google-benchmark suite runs, main() executes one deterministic
 * threads sweep and writes it to BENCH_external_sort.json so the
 * streamed-sort trajectory is tracked across commits.
 *
 * Run:  ./build/bench/bench_external_sort
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/external.hpp"

namespace
{

using namespace bonsai;

sorter::StreamEngine<Record>::Options
engineOptions(std::uint64_t batch_records)
{
    sorter::StreamEngine<Record>::Options opt;
    opt.phase1Ell = 16;
    opt.phase2Ell = 16;
    opt.chunkRecords = 1 << 16; // 1 MiB chunks
    opt.batchRecords = batch_records;
    opt.bufferBudgetBytes = 4ULL << 20;
    opt.threads = 2;
    return opt;
}

void
BM_StreamedVsInMemory(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const bool streamed = state.range(1) != 0;
    const auto input =
        makeRecords(n, Distribution::UniformRandom, 1234);
    const sorter::StreamEngine<Record> engine(engineOptions(1 << 12));

    sorter::StreamStats last;
    for (auto _ : state) {
        if (streamed) {
            io::MemorySource<Record> source{
                std::span<const Record>(input)};
            std::vector<Record> out;
            out.reserve(n);
            io::MemorySink<Record> sink(out);
            io::FileRunStore<Record> front;
            io::FileRunStore<Record> back;
            last = engine.sortStream(source, sink, front, back);
            benchmark::DoNotOptimize(out.data());
        } else {
            auto data = input;
            last = engine.sortInPlace(data);
            benchmark::DoNotOptimize(data.data());
        }
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
    state.counters["merge_passes"] =
        static_cast<double>(last.mergePasses);
    state.counters["read_stall_ms"] = last.readStallSeconds * 1e3;
    state.counters["write_stall_ms"] = last.writeStallSeconds * 1e3;
    // Retry telemetry: nonzero on a healthy device means the spill
    // path is absorbing real transient faults (and paying backoff).
    state.counters["io_transient_retries"] =
        static_cast<double>(last.ioTransientRetries);
    state.counters["io_eintr_retries"] =
        static_cast<double>(last.ioEintrRetries);
    state.counters["io_short_transfers"] =
        static_cast<double>(last.ioShortTransfers);
}

void
BM_StreamBatchSize(benchmark::State &state)
{
    const std::size_t n = 1 << 21; // 32 MiB of records
    const std::uint64_t batch =
        static_cast<std::uint64_t>(state.range(0));
    const auto input =
        makeRecords(n, Distribution::UniformRandom, 77);
    const sorter::StreamEngine<Record> engine(engineOptions(batch));

    sorter::StreamStats last;
    for (auto _ : state) {
        io::MemorySource<Record> source{
            std::span<const Record>(input)};
        std::vector<Record> out;
        out.reserve(n);
        io::MemorySink<Record> sink(out);
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        last = engine.sortStream(source, sink, front, back);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
    state.counters["batch_records"] = static_cast<double>(batch);
    state.counters["effective_ell"] =
        static_cast<double>(last.effectiveEll);
}

/** One streamed sort over memory-backed run stores at @p threads.
 *  Fan-in 8 with a 16 MiB pool: 256 buffers hold up to 14 lanes of
 *  2*8 + 2 buffers, so the budget never caps the thread axis. */
sorter::StreamStats
streamOnMemoryStores(const std::vector<Record> &input, unsigned threads,
                     std::vector<Record> &out)
{
    auto opt = engineOptions(1 << 12);
    opt.phase2Ell = 8;
    opt.bufferBudgetBytes = 16ULL << 20;
    opt.threads = threads;
    const sorter::StreamEngine<Record> engine(opt);
    io::MemorySource<Record> source{std::span<const Record>(input)};
    out.clear();
    out.reserve(input.size());
    io::MemorySink<Record> sink(out);
    std::vector<Record> fbuf(input.size());
    std::vector<Record> bbuf(input.size());
    io::MemoryRunStore<Record> front({fbuf.data(), fbuf.size()});
    io::MemoryRunStore<Record> back({bbuf.data(), bbuf.size()});
    return engine.sortStream(source, sink, front, back);
}

void
BM_StreamThreads(benchmark::State &state)
{
    const std::size_t n = 1 << 21; // 32 MiB of records
    const unsigned threads = static_cast<unsigned>(state.range(0));
    const auto input =
        makeRecords(n, Distribution::UniformRandom, 4242);

    sorter::StreamStats last;
    std::vector<Record> out;
    for (auto _ : state) {
        last = streamOnMemoryStores(input, threads, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n *
        sizeof(Record));
    state.counters["threads"] = static_cast<double>(threads);
    state.counters["phase1_ms"] = last.phase1Seconds * 1e3;
    state.counters["phase2_ms"] = last.phase2Seconds * 1e3;
    state.counters["lanes"] =
        static_cast<double>(last.concurrentGroups);
    state.counters["final_slices"] =
        static_cast<double>(last.finalSlices);
}

/** Deterministic threads sweep written to BENCH_external_sort.json:
 *  one warm-up plus one measured run per thread count, phase-split,
 *  so the scaling trajectory is tracked without benchmark-runner
 *  noise filtering. */
void
runThreadsSweep()
{
    const std::size_t n = 1 << 21;
    const auto input =
        makeRecords(n, Distribution::UniformRandom, 4242);

    bench::JsonReporter json("external_sort");
    json.config("records", static_cast<std::uint64_t>(n));
    json.config("record_bytes",
                static_cast<std::uint64_t>(sizeof(Record)));
    json.config("store", "memory");
    json.config("batch_records",
                static_cast<std::uint64_t>(1 << 12));

    bench::title("streamed sort: threads sweep (memory-backed "
                 "stores, phase split)");
    std::printf("%8s %10s %10s %10s %6s %7s\n", "threads",
                "total_ms", "phase1_ms", "phase2_ms", "lanes",
                "slices");
    std::vector<Record> out;
    double serial_phase2 = 0.0;
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        streamOnMemoryStores(input, threads, out); // warm-up
        const sorter::StreamStats s =
            streamOnMemoryStores(input, threads, out);
        if (threads == 1)
            serial_phase2 = s.phase2Seconds;
        json.beginPoint();
        json.field("threads", static_cast<std::uint64_t>(threads));
        json.field("phase1_seconds", s.phase1Seconds);
        json.field("phase2_seconds", s.phase2Seconds);
        json.field("lanes",
                   static_cast<std::uint64_t>(s.concurrentGroups));
        json.field("final_slices",
                   static_cast<std::uint64_t>(s.finalSlices));
        json.field("phase2_speedup",
                   s.phase2Seconds > 0.0
                       ? serial_phase2 / s.phase2Seconds
                       : 0.0);
        std::printf("%8u %10.2f %10.2f %10.2f %6u %7u\n", threads,
                    (s.phase1Seconds + s.phase2Seconds) * 1e3,
                    s.phase1Seconds * 1e3, s.phase2Seconds * 1e3,
                    s.concurrentGroups, s.finalSlices);
    }
    json.write();
    bench::rule();
}

BENCHMARK(BM_StreamedVsInMemory)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1})
    ->Args({1 << 22, 0})
    ->Args({1 << 22, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_StreamBatchSize)
    ->Arg(1 << 10)
    ->Arg(1 << 12)
    ->Arg(1 << 14)
    ->Arg(1 << 15) // 8-buffer pool: fan-in squeezed to 3
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_StreamThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

int
main(int argc, char **argv)
{
    runThreadsSweep();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
