#!/usr/bin/env python3
"""Project-specific style gate (no external tools required).

Rules enforced over src/ (and, where noted, tests/):

  1. Header guards: every src header's include guard must be derived
     from its repo-relative path (src/sim/fifo.hpp ->
     BONSAI_SIM_FIFO_HPP), with matching #define and a trailing
     "#endif // GUARD" comment.
  2. Concurrency primitives: std::thread and std::this_thread are
     confined to common/thread_pool.hpp; everything else goes through
     bonsai::ThreadPool so the simulator has one choke point for
     threading behavior.
  3. Deterministic randomness: rand()/srand()/time() are banned
     outside common/random.hpp|.cpp; simulations must be reproducible
     from an explicit seed.
  4. No <iostream> in library headers: pulling the global stream
     objects into every translation unit costs init order and compile
     time; headers needing stream types use <ostream>/<istream>.
  5. No raw assert() in src/: contract macros (BONSAI_REQUIRE /
     ENSURE / INVARIANT) replace it, so checks can ride into
     optimized builds via -DBONSAI_CHECKED=ON.
  6. Raw std synchronization primitives (std::mutex,
     std::condition_variable, std::lock_guard, std::unique_lock,
     std::scoped_lock, ...) are confined to common/sync.hpp; all
     other code locks through the annotated bonsai::Mutex /
     ScopedLock / CondVar capabilities so Clang's -Wthread-safety
     analysis sees every critical section.
  7. Every bonsai::Mutex member must sit adjacent to at least one
     BONSAI_GUARDED_BY annotation: a mutex that guards nothing the
     analyzer can see is a mutex the analyzer cannot check.
  8. NOLINT discipline: every NOLINT/NOLINTNEXTLINE must name the
     suppressed check(s) and carry a reason after a colon, e.g.
     "// NOLINT(bugprone-empty-catch): error has no consumer".
     Bare or unexplained suppressions fail the gate; NOLINTBEGIN
     block suppressions are banned outright.

Rule matching runs on text with comments AND string/character
literals neutralized (see strip_comments), so an error message
containing "assert(" or "std::mutex" cannot trip a rule.  NOLINT
markers live in comments, so rule 8 alone scans the raw text.

Run with --self-test to exercise the stripper and the rules against
embedded fixtures (the lint gate runs this first).

Exit status 0 when clean, 1 with a per-violation report otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

THREAD_ALLOWED = {"src/common/thread_pool.hpp"}
RANDOM_ALLOWED = {"src/common/random.hpp", "src/common/random.cpp"}
SYNC_ALLOWED = {"src/common/sync.hpp"}

THREAD_RE = re.compile(r"\bstd::(this_)?thread\b")
RANDOM_RE = re.compile(r"(?<![\w:.])(?:s?rand|time)\s*\(")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
SYNC_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|condition_variable(?:_any)?"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock)\b")
SYNC_INCLUDE_RE = re.compile(
    r"#\s*include\s*<(?:mutex|condition_variable|shared_mutex)>")
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:bonsai::)?Mutex\s+\w+_?\s*;")
NOLINT_RE = re.compile(r"NOLINT\w*")
NOLINT_OK_RE = re.compile(
    r"NOLINT(?:NEXTLINE)?\([A-Za-z0-9_.\-, ]+\):\s*\S")

# How many lines after a bonsai::Mutex member declaration may separate
# it from the first BONSAI_GUARDED_BY before rule 7 fires.  Guarded
# members conventionally follow their mutex immediately; the slack
# covers an interleaved condition variable or a doc comment.
GUARDED_BY_WINDOW = 12


def guard_for(rel: Path) -> str:
    """src/sim/fifo.hpp -> BONSAI_SIM_FIFO_HPP."""
    parts = rel.with_suffix("").parts[1:]  # drop leading "src"
    return "BONSAI_" + "_".join(p.upper() for p in parts) + "_HPP"


def strip_comments(text: str) -> str:
    """Neutralize comments AND string/character literals.

    Comments (// and /* */) are removed; string and character literal
    *contents* are blanked (the quotes stay, so the line still parses
    as "something string-shaped"), including raw strings.  Line
    structure is preserved throughout so violation line numbers match
    the file.  A single pass tracks which context it is in, so a //
    inside a string is not a comment and a quote inside a comment is
    not a string.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j  # keep the newline itself
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == '"' and _raw_prefix_at(text, i):
            i = _skip_raw_string(text, i, out)
        elif c == '"':
            i = _skip_quoted(text, i, '"', out)
        elif c == "'" and not (i > 0 and
                               (text[i - 1].isalnum()
                                or text[i - 1] == "_")):
            # A real character literal; ' after an alnum is a C++14
            # digit separator (1'000'000) or part of an identifier.
            i = _skip_quoted(text, i, "'", out)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _raw_prefix_at(text: str, i: int) -> bool:
    """True when the quote at text[i] opens a raw string (R"...)."""
    j = i - 1
    while j >= 0 and text[j] in "uUL8":
        j -= 1
    return j >= 0 and text[j] == "R" and (
        j == 0 or not (text[j - 1].isalnum() or text[j - 1] == "_"))


def _skip_raw_string(text: str, i: int, out: list) -> int:
    """Blank a raw string literal R"delim( ... )delim"."""
    open_paren = text.find("(", i)
    if open_paren == -1:  # malformed; treat as plain quote
        return _skip_quoted(text, i, '"', out)
    delim = text[i + 1:open_paren]
    close = text.find(")" + delim + '"', open_paren)
    end = len(text) if close == -1 else close + len(delim) + 2
    out.append('""')
    out.append("\n" * text.count("\n", i, end))
    return end


def _skip_quoted(text: str, i: int, quote: str, out: list) -> int:
    """Blank a quoted literal, honoring backslash escapes."""
    out.append(quote + quote)
    i += 1
    n = len(text)
    while i < n:
        if text[i] == "\\":
            i += 2
            continue
        if text[i] == quote:
            return i + 1
        if text[i] == "\n":  # unterminated; keep line structure
            out.append("\n")
            return i + 1
        i += 1
    return n


def check_header_guard(rel: Path, text: str, problems: list) -> None:
    guard = guard_for(rel)
    if f"#ifndef {guard}" not in text:
        problems.append(f"{rel}: missing '#ifndef {guard}'")
        return
    if f"#define {guard}" not in text:
        problems.append(f"{rel}: missing '#define {guard}'")
    if f"#endif // {guard}" not in text:
        problems.append(f"{rel}: missing '#endif // {guard}' trailer")


def check_guarded_mutexes(rel_str: str, lines: list,
                          problems: list) -> None:
    """Rule 7: each bonsai::Mutex member needs a nearby GUARDED_BY."""
    for i, line in enumerate(lines, 1):
        if not MUTEX_MEMBER_RE.match(line):
            continue
        window = lines[i - 1:i - 1 + GUARDED_BY_WINDOW]
        if not any("BONSAI_GUARDED_BY(" in w for w in window):
            problems.append(
                f"{rel_str}:{i}: bonsai::Mutex member without an "
                "adjacent BONSAI_GUARDED_BY annotation (within "
                f"{GUARDED_BY_WINDOW} lines); an unguarded mutex is "
                "invisible to -Wthread-safety")


def check_nolint(rel_str: str, raw_lines: list, problems: list) -> None:
    """Rule 8: suppressions must name checks and carry a reason."""
    for i, line in enumerate(raw_lines, 1):
        markers = NOLINT_RE.findall(line)
        if not markers:
            continue
        if any(m.startswith("NOLINTBEGIN") or m.startswith("NOLINTEND")
               for m in markers):
            problems.append(
                f"{rel_str}:{i}: NOLINTBEGIN/END block suppression "
                "(suppress single lines, with named checks and a "
                "reason)")
            continue
        if not NOLINT_OK_RE.search(line):
            problems.append(
                f"{rel_str}:{i}: bare or unexplained NOLINT (use "
                "'NOLINT(<check>): <reason>')")


def scan_text(rel_str: str, raw: str, problems: list) -> None:
    """Run every rule against one file's content."""
    rel = Path(rel_str)
    text = strip_comments(raw)
    lines = text.splitlines()

    if rel.suffix == ".hpp":
        check_header_guard(rel, raw, problems)
        for i, line in enumerate(lines, 1):
            if IOSTREAM_RE.search(line):
                problems.append(
                    f"{rel_str}:{i}: <iostream> in a library header "
                    "(use <ostream>/<istream>)")

    for i, line in enumerate(lines, 1):
        if rel_str not in THREAD_ALLOWED and THREAD_RE.search(line):
            problems.append(
                f"{rel_str}:{i}: std::thread outside "
                "common/thread_pool.hpp (use bonsai::ThreadPool)")
        if rel_str not in RANDOM_ALLOWED and RANDOM_RE.search(line):
            problems.append(
                f"{rel_str}:{i}: rand()/srand()/time() outside "
                "common/random.* (use the seeded RNG)")
        if "static_assert" not in line and ASSERT_RE.search(line):
            problems.append(
                f"{rel_str}:{i}: raw assert() (use BONSAI_REQUIRE/"
                "ENSURE/INVARIANT from common/contract.hpp)")
        if rel_str not in SYNC_ALLOWED:
            if SYNC_RE.search(line):
                problems.append(
                    f"{rel_str}:{i}: raw std sync primitive outside "
                    "common/sync.hpp (use bonsai::Mutex/ScopedLock/"
                    "CondVar so -Wthread-safety sees the lock)")
            if SYNC_INCLUDE_RE.search(line):
                problems.append(
                    f"{rel_str}:{i}: <mutex>/<condition_variable> "
                    "include outside common/sync.hpp (include "
                    "common/sync.hpp instead)")

    check_guarded_mutexes(rel_str, lines, problems)
    check_nolint(rel_str, raw.splitlines(), problems)


def scan(path: Path, problems: list) -> None:
    rel_str = path.relative_to(REPO).as_posix()
    scan_text(rel_str, path.read_text(encoding="utf-8"), problems)


def self_test() -> int:
    """Exercise the stripper and the rules on embedded fixtures."""
    failures = []

    def expect(name, cond):
        if not cond:
            failures.append(name)

    # --- strip_comments: comments go away, line structure survives.
    s = strip_comments("a; // std::mutex\n/* assert( */ b;\n")
    expect("line-comment removed", "std::mutex" not in s)
    expect("block-comment removed", "assert(" not in s)
    expect("line structure kept", s.count("\n") == 2)
    s = strip_comments("x = 1; /* multi\nline\ncomment */ y = 2;\n")
    expect("multiline comment keeps newlines", s.count("\n") == 3)
    expect("code after comment survives", "y = 2;" in s)

    # --- string literals are neutralized before rule matching.
    s = strip_comments('throw std::runtime_error("assert( fired");\n')
    expect("assert( inside string neutralized", "assert(" not in s)
    s = strip_comments('const char *m = "use std::mutex here";\n')
    expect("std::mutex inside string neutralized",
           "std::mutex" not in s)
    s = strip_comments('p("// not a comment"); q();\n')
    expect("// inside string is not a comment", "q();" in s)
    s = strip_comments('a("she said \\"assert(\\" loudly"); b();\n')
    expect("escaped quotes handled", "assert(" not in s and "b();" in s)
    s = strip_comments("R\"(raw assert( std::mutex)\" tail();\n")
    expect("raw string neutralized",
           "assert(" not in s and "tail();" in s)
    s = strip_comments("R\"xy(assert()xy\" tail();\n")
    expect("delimited raw string neutralized",
           "assert(" not in s and "tail();" in s)
    s = strip_comments("char c = '\"'; after();\n")
    expect("char literal quote does not open a string", "after()" in s)
    s = strip_comments("n = 1'000'000; time(0);\n")
    expect("digit separators are not char literals", "time(0)" in s)
    s = strip_comments('/* comment with " quote */ keep();\n')
    expect("quote inside comment is not a string", "keep();" in s)

    # --- rules on synthetic sources (virtual paths under src/).
    def violations(rel, content):
        probs = []
        scan_text(rel, content, probs)
        return probs

    hdr = ("#ifndef BONSAI_FOO_BAR_HPP\n#define BONSAI_FOO_BAR_HPP\n"
           "{}\n#endif // BONSAI_FOO_BAR_HPP\n")

    # Raw std::mutex outside common/sync.hpp is rejected...
    probs = violations("src/foo/bar.hpp", hdr.format("std::mutex m_;"))
    expect("std::mutex outside sync.hpp rejected",
           any("raw std sync primitive" in p for p in probs))
    # ... including via its include ...
    probs = violations("src/foo/bar.hpp", hdr.format("#include <mutex>"))
    expect("<mutex> include outside sync.hpp rejected",
           any("include outside common/sync.hpp" in p for p in probs))
    # ... but common/sync.hpp itself may hold the raw primitives,
    probs = violations(
        "src/common/sync.hpp",
        "#ifndef BONSAI_COMMON_SYNC_HPP\n#define BONSAI_COMMON_SYNC_HPP\n"
        "#include <mutex>\nstd::mutex raw_;\n"
        "#endif // BONSAI_COMMON_SYNC_HPP\n")
    expect("sync.hpp itself is exempt", probs == [])
    # and a std::mutex mentioned in an error-message string is fine.
    probs = violations(
        "src/foo/bar.hpp",
        hdr.format('void f() { fail("never use std::mutex, '
                   'assert( or std::thread"); }'))
    expect("primitives named in strings do not trip rules",
           probs == [])

    # bonsai::Mutex without an adjacent BONSAI_GUARDED_BY is rejected;
    probs = violations("src/foo/bar.hpp",
                       hdr.format("Mutex mutex_;\nint x_ = 0;"))
    expect("unguarded bonsai::Mutex rejected",
           any("BONSAI_GUARDED_BY" in p for p in probs))
    # with an adjacent guarded member it passes.
    probs = violations(
        "src/foo/bar.hpp",
        hdr.format("mutable Mutex mutex_;\n"
                   "int x_ BONSAI_GUARDED_BY(mutex_) = 0;"))
    expect("guarded bonsai::Mutex accepted", probs == [])

    # NOLINT discipline.
    probs = violations("src/foo/bar.hpp",
                       hdr.format("int x; // NOLINT"))
    expect("bare NOLINT rejected",
           any("bare or unexplained NOLINT" in p for p in probs))
    probs = violations("src/foo/bar.hpp",
                       hdr.format("int x; // NOLINT(foo-check)"))
    expect("reasonless NOLINT rejected",
           any("bare or unexplained NOLINT" in p for p in probs))
    probs = violations("src/foo/bar.hpp", hdr.format("// NOLINTBEGIN"))
    expect("NOLINTBEGIN rejected",
           any("NOLINTBEGIN" in p for p in probs))
    probs = violations(
        "src/foo/bar.hpp",
        hdr.format("int x; // NOLINT(foo-check): x is fine here"))
    expect("explained NOLINT accepted", probs == [])

    # Pre-existing rules still fire on neutralized text.
    probs = violations("src/foo/bar.hpp",
                       hdr.format("std::thread t;"))
    expect("std::thread rule still fires",
           any("std::thread" in p for p in probs))
    probs = violations("src/foo/bar.cpp", "assert(x);\n")
    expect("assert rule still fires",
           any("raw assert()" in p for p in probs))

    if failures:
        print(f"check_style --self-test: {len(failures)} failure(s):")
        for f in failures:
            print(f"  FAIL: {f}")
        return 1
    print("check_style --self-test: all checks passed")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    problems: list = []
    files = sorted(
        p for p in SRC.rglob("*")
        if p.suffix in (".hpp", ".cpp") and p.is_file())
    if not files:
        print("check_style: no sources found under src/", file=sys.stderr)
        return 1
    for path in files:
        scan(path, problems)
    if problems:
        print(f"check_style: {len(problems)} violation(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"check_style: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
