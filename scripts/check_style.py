#!/usr/bin/env python3
"""Project-specific style gate (no external tools required).

Rules enforced over src/ (and, where noted, tests/):

  1. Header guards: every src header's include guard must be derived
     from its repo-relative path (src/sim/fifo.hpp ->
     BONSAI_SIM_FIFO_HPP), with matching #define and a trailing
     "#endif // GUARD" comment.
  2. Concurrency primitives: std::thread and std::this_thread are
     confined to common/thread_pool.hpp; everything else goes through
     bonsai::ThreadPool so the simulator has one choke point for
     threading behavior.
  3. Deterministic randomness: rand()/srand()/time() are banned
     outside common/random.hpp|.cpp; simulations must be reproducible
     from an explicit seed.
  4. No <iostream> in library headers: pulling the global stream
     objects into every translation unit costs init order and compile
     time; headers needing stream types use <ostream>/<istream>.
  5. No raw assert() in src/: contract macros (BONSAI_REQUIRE /
     ENSURE / INVARIANT) replace it, so checks can ride into
     optimized builds via -DBONSAI_CHECKED=ON.

Exit status 0 when clean, 1 with a per-violation report otherwise.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

THREAD_ALLOWED = {"src/common/thread_pool.hpp"}
RANDOM_ALLOWED = {"src/common/random.hpp", "src/common/random.cpp"}

THREAD_RE = re.compile(r"\bstd::(this_)?thread\b")
RANDOM_RE = re.compile(r"(?<![\w:.])(?:s?rand|time)\s*\(")
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')


def guard_for(rel: Path) -> str:
    """src/sim/fifo.hpp -> BONSAI_SIM_FIFO_HPP."""
    parts = rel.with_suffix("").parts[1:]  # drop leading "src"
    return "BONSAI_" + "_".join(p.upper() for p in parts) + "_HPP"


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments (keeps line structure)."""
    text = re.sub(r"/\*.*?\*/", lambda m: "\n" * m.group().count("\n"),
                  text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def check_header_guard(rel: Path, text: str, problems: list) -> None:
    guard = guard_for(rel)
    if f"#ifndef {guard}" not in text:
        problems.append(f"{rel}: missing '#ifndef {guard}'")
        return
    if f"#define {guard}" not in text:
        problems.append(f"{rel}: missing '#define {guard}'")
    if f"#endif // {guard}" not in text:
        problems.append(f"{rel}: missing '#endif // {guard}' trailer")


def scan(path: Path, problems: list) -> None:
    rel = path.relative_to(REPO)
    rel_str = rel.as_posix()
    raw = path.read_text(encoding="utf-8")
    text = strip_comments(raw)
    lines = text.splitlines()

    if path.suffix == ".hpp":
        check_header_guard(rel, raw, problems)
        for i, line in enumerate(lines, 1):
            if IOSTREAM_RE.search(line):
                problems.append(
                    f"{rel_str}:{i}: <iostream> in a library header "
                    "(use <ostream>/<istream>)")

    for i, line in enumerate(lines, 1):
        if rel_str not in THREAD_ALLOWED and THREAD_RE.search(line):
            problems.append(
                f"{rel_str}:{i}: std::thread outside "
                "common/thread_pool.hpp (use bonsai::ThreadPool)")
        if rel_str not in RANDOM_ALLOWED and RANDOM_RE.search(line):
            problems.append(
                f"{rel_str}:{i}: rand()/srand()/time() outside "
                "common/random.* (use the seeded RNG)")
        if "static_assert" not in line and ASSERT_RE.search(line):
            problems.append(
                f"{rel_str}:{i}: raw assert() (use BONSAI_REQUIRE/"
                "ENSURE/INVARIANT from common/contract.hpp)")


def main() -> int:
    problems: list = []
    files = sorted(
        p for p in SRC.rglob("*")
        if p.suffix in (".hpp", ".cpp") and p.is_file())
    if not files:
        print("check_style: no sources found under src/", file=sys.stderr)
        return 1
    for path in files:
        scan(path, problems)
    if problems:
        print(f"check_style: {len(problems)} violation(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"check_style: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
