#!/usr/bin/env bash
# Build, test, and regenerate every table/figure of the paper.
# Usage: scripts/run_all.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

echo "== tests =="
ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt | tail -3

echo "== benches (tables & figures) =="
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo; echo "################ $(basename "$b") ################"
    "$b"
done 2>&1 | tee bench_output.txt | grep '################'

echo
echo "Full outputs: test_output.txt, bench_output.txt"
