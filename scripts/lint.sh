#!/usr/bin/env bash
# Lint gate: project style rules + (when the tools exist) clang-tidy
# and clang-format.
#
# Usage: scripts/lint.sh [--strict] [build-dir]
#
#   --strict    missing clang tools are an error instead of a skip
#               (CI installs them; developer boxes may not have them).
#   build-dir   CMake build directory containing compile_commands.json
#               (default: build).
#
# Exit 0 = clean. The python style checker always runs; clang-tidy
# needs a configured build dir (CMAKE_EXPORT_COMPILE_COMMANDS is on by
# default in CMakeLists.txt).

set -u -o pipefail

cd "$(dirname "$0")/.."

strict=0
build_dir=build
for arg in "$@"; do
    case "$arg" in
    --strict) strict=1 ;;
    *) build_dir="$arg" ;;
    esac
done

failures=0
skipped=0

note() { printf '%s\n' "$*"; }

require_tool() {
    local tool="$1"
    if command -v "$tool" >/dev/null 2>&1; then
        return 0
    fi
    if [ "$strict" -eq 1 ]; then
        note "lint: $tool not found (required in --strict mode)"
        failures=$((failures + 1))
    else
        note "lint: $tool not found, skipping (install it or use CI)"
        skipped=$((skipped + 1))
    fi
    return 1
}

# 1. Project style rules (pure python, always available).  The
#    self-test proves the checker itself still rejects what it must
#    (e.g. a raw std::mutex outside common/sync.hpp) before its
#    verdict on the real tree is trusted.
note "lint: running scripts/check_style.py --self-test"
if ! python3 scripts/check_style.py --self-test; then
    failures=$((failures + 1))
fi
note "lint: running scripts/check_style.py"
if ! python3 scripts/check_style.py; then
    failures=$((failures + 1))
fi

# 2. Header self-containment: every public header under src/ must
#    compile alone (-fsyntax-only), so no header depends on what its
#    includer happened to include first.  Any available C++ compiler
#    can check this; prefer $CXX, then clang++, then g++.
header_cxx=""
for candidate in "${CXX:-}" clang++ g++; do
    [ -n "$candidate" ] || continue
    if command -v "$candidate" >/dev/null 2>&1; then
        header_cxx="$candidate"
        break
    fi
done
if [ -z "$header_cxx" ]; then
    if [ "$strict" -eq 1 ]; then
        note "lint: no C++ compiler for header self-containment" \
             "(required in --strict mode)"
        failures=$((failures + 1))
    else
        note "lint: no C++ compiler found, skipping header" \
             "self-containment"
        skipped=$((skipped + 1))
    fi
else
    note "lint: checking header self-containment with $header_cxx"
    header_failures=0
    while IFS= read -r hdr; do
        if ! "$header_cxx" -std=c++20 -fsyntax-only -I src \
                -x c++ "$hdr"; then
            note "lint: header not self-contained: $hdr"
            header_failures=$((header_failures + 1))
        fi
    done < <(find src -name '*.hpp' | sort)
    if [ "$header_failures" -ne 0 ]; then
        note "lint: $header_failures header(s) not self-contained"
        failures=$((failures + 1))
    fi
fi

# 3. clang-tidy over the compilation database.
if require_tool clang-tidy; then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        note "lint: $build_dir/compile_commands.json missing;" \
             "configure with cmake -B $build_dir -S . first"
        failures=$((failures + 1))
    else
        note "lint: running clang-tidy"
        mapfile -t tidy_sources < <(find src -name '*.cpp' | sort)
        if ! clang-tidy -p "$build_dir" --quiet "${tidy_sources[@]}"; then
            failures=$((failures + 1))
        fi
    fi
fi

# 4. clang-format (check-only; never rewrites).
if require_tool clang-format; then
    note "lint: running clang-format --dry-run"
    mapfile -t fmt_sources < \
        <(find src tests -name '*.hpp' -o -name '*.cpp' | sort)
    if ! clang-format --dry-run --Werror "${fmt_sources[@]}"; then
        failures=$((failures + 1))
    fi
fi

if [ "$failures" -ne 0 ]; then
    note "lint: FAILED ($failures check(s) failed, $skipped skipped)"
    exit 1
fi
note "lint: OK ($skipped check(s) skipped)"
exit 0
