/**
 * @file
 * AMT configuration parameters (paper Table III).
 */

#ifndef BONSAI_AMT_CONFIG_HPP
#define BONSAI_AMT_CONFIG_HPP

#include <cstdint>
#include <ostream>
#include <string>

namespace bonsai::amt
{

/**
 * An adaptive-merge-tree configuration: AMT(p, ell) replicated
 * lambda_pipe deep (pipelining) and lambda_unrl wide (unrolling).
 */
struct AmtConfig
{
    unsigned p = 1;          ///< records output per cycle (power of 2)
    unsigned ell = 2;        ///< number of input leaves (power of 2, >=2)
    unsigned lambdaUnrl = 1; ///< independent parallel trees
    unsigned lambdaPipe = 1; ///< trees chained stage-to-stage

    friend bool operator==(const AmtConfig &, const AmtConfig &) = default;
};

inline std::ostream &
operator<<(std::ostream &os, const AmtConfig &c)
{
    os << "AMT(" << c.p << ", " << c.ell << ")";
    if (c.lambdaUnrl > 1)
        os << " x" << c.lambdaUnrl << " unrolled";
    if (c.lambdaPipe > 1)
        os << " x" << c.lambdaPipe << " pipelined";
    return os;
}

/** Total number of trees instantiated by a configuration. */
constexpr unsigned
treeCount(const AmtConfig &c)
{
    return c.lambdaUnrl * c.lambdaPipe;
}

} // namespace bonsai::amt

#endif // BONSAI_AMT_CONFIG_HPP
