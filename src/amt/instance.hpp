/**
 * @file
 * AmtInstance: instantiates the simulation components of one AMT(p, ell)
 * — mergers, couplers and inter-level FIFOs — wired per the structural
 * TreeShape, exposing the ell leaf buffers (filled by a DataLoader) and
 * the root output FIFO (drained by a DataWriter).
 *
 * With `checked` enabled the instance also wires a sim::ProtocolChecker
 * over every channel: each FIFO is monitored for over-push/under-pop,
 * sorted-run monotonicity and terminal counts, and every merger's
 * quiescent() claim is cross-checked against its observed traffic.  The
 * checker runs every cycle, so a broken stream contract surfaces at the
 * offending cycle instead of as wrong output at the end of a stage.
 */

#ifndef BONSAI_AMT_INSTANCE_HPP
#define BONSAI_AMT_INSTANCE_HPP

#include <memory>
#include <string>
#include <vector>

#include "amt/tree.hpp"
#include "common/contract.hpp"
#include "hw/coupler.hpp"
#include "hw/merger.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/protocol_checker.hpp"

namespace bonsai::amt
{

template <typename RecordT>
class AmtInstance
{
  public:
    /**
     * @param shape Structural description from makeTreeShape().
     * @param leaf_capacity Leaf buffer capacity in records (the data
     *        loader's double-buffered batch store, Section V-A).
     * @param checked Wire a ProtocolChecker over every channel.
     */
    AmtInstance(std::string name, const TreeShape &shape,
                std::size_t leaf_capacity, bool checked = false)
        : shape_(shape)
    {
        BONSAI_REQUIRE(!shape.levels.empty(),
                       "tree shape must have at least one level");
        BONSAI_REQUIRE(leaf_capacity > 0,
                       "leaf buffers must hold at least one record");
        if (checked)
            checker_ = std::make_unique<sim::ProtocolChecker>(
                name + ".check");

        const unsigned depth_count =
            static_cast<unsigned>(shape.levels.size());

        // Leaf buffers, one per tree input.
        for (unsigned i = 0; i < shape.ell; ++i) {
            leafBuffers_.push_back(makeFifo(
                name + ".leaf" + std::to_string(i), leaf_capacity));
        }

        // Build levels deepest-first so children exist before parents.
        // outputs[d][i] is the output FIFO of merger (d, i).
        std::vector<std::vector<sim::Fifo<RecordT> *>> outputs(
            depth_count);
        for (unsigned d = depth_count; d-- > 0;) {
            const TreeLevel &lvl = shape.levels[d];
            outputs[d].resize(lvl.nodeCount);
            for (unsigned i = 0; i < lvl.nodeCount; ++i) {
                const std::string node = std::to_string(d) + "_" +
                    std::to_string(i);
                sim::Fifo<RecordT> *in_a = nullptr;
                sim::Fifo<RecordT> *in_b = nullptr;
                if (d + 1 == depth_count) {
                    in_a = leafBuffers_[2 * i];
                    in_b = leafBuffers_[2 * i + 1];
                } else {
                    // Couplers adapt each child's stream to this
                    // merger's input port.
                    const TreeLevel &child = shape.levels[d + 1];
                    in_a = makeFifo(name + ".port" + node + "a",
                                    fifoDepth(lvl.mergerK));
                    in_b = makeFifo(name + ".port" + node + "b",
                                    fifoDepth(lvl.mergerK));
                    addCoupler(name, d, 2 * i, child.mergerK,
                               *outputs[d + 1][2 * i], *in_a);
                    addCoupler(name, d, 2 * i + 1, child.mergerK,
                               *outputs[d + 1][2 * i + 1], *in_b);
                }
                outputs[d][i] = makeFifo(name + ".out" + node,
                                         fifoDepth(lvl.mergerK));
                auto merger = std::make_unique<hw::Merger<RecordT>>(
                    name + ".m" + node, lvl.mergerK, *in_a, *in_b,
                    *outputs[d][i]);
                if (checker_) {
                    checker_->watchQuiescence<RecordT>(
                        *merger, {in_a, in_b},
                        {monitors_.back()});
                }
                mergers_.push_back(merger.get());
                components_.push_back(std::move(merger));
            }
        }
        root_ = outputs[0][0];
    }

    /** The ell leaf input buffers, left to right. */
    const std::vector<sim::Fifo<RecordT> *> &
    leafBuffers() const
    {
        return leafBuffers_;
    }

    /** Root output FIFO (runs separated by terminals). */
    sim::Fifo<RecordT> &rootOutput() { return *root_; }

    /** Register every component with the engine.  The checker (when
     *  present) registers first so its clock leads the components it
     *  observes within each cycle.  Internal registration order
     *  (couplers before their parent merger) also matters to the
     *  activity-driven engine: wake hints are evaluated in this same
     *  order, so a merger's hint always sees the port FIFOs its
     *  couplers just filled — exactly what its naive tick would see. */
    void
    registerWith(sim::SimEngine &engine)
    {
        if (checker_)
            engine.add(checker_.get());
        for (auto &c : components_)
            engine.add(c.get());
    }

    /** True when no merger holds buffered state. */
    bool
    quiescent() const
    {
        for (const auto &c : components_) {
            if (!c->quiescent())
                return false;
        }
        return true;
    }

    /** Sum of merger stall cycles (starvation / back-pressure). */
    std::uint64_t
    totalStallCycles() const
    {
        std::uint64_t total = 0;
        for (const hw::Merger<RecordT> *m : mergers_)
            total += m->stallCycles();
        return total;
    }

    /**
     * Declare the number of runs (= terminal records) every channel
     * carries this stage: the stage plan pads each leaf to exactly G
     * runs, each merger pairs and re-emits them, so every channel in
     * the tree sees exactly G terminals.  No-op when unchecked.
     */
    void
    expectRunsPerChannel(std::uint64_t runs)
    {
        if (!checker_)
            return;
        for (sim::ChannelMonitor<RecordT> *monitor : monitors_)
            monitor->expectTerminals(runs);
    }

    /** The wired protocol checker, or nullptr when unchecked. */
    sim::ProtocolChecker *checker() { return checker_.get(); }

    /** Verify end-of-stage protocol state (no-op when unchecked). */
    void
    finalizeChecks() const
    {
        if (checker_)
            checker_->finalize();
    }

    const TreeShape &shape() const { return shape_; }

  private:
    static std::size_t
    fifoDepth(unsigned k)
    {
        // Sized to absorb head-selection jitter: a burst of same-side
        // picks drains one input port at twice its refill rate, so
        // several tuples of slack are needed to keep the parent fed.
        return 16 * (static_cast<std::size_t>(k) + 1);
    }

    sim::Fifo<RecordT> *
    makeFifo(const std::string &channel_name, std::size_t capacity)
    {
        fifos_.push_back(
            std::make_unique<sim::Fifo<RecordT>>(capacity));
        sim::Fifo<RecordT> *fifo = fifos_.back().get();
        if (checker_) {
            monitors_.push_back(&checker_->watch(
                channel_name, *fifo, sim::ChannelKind::SortedRuns));
        } else {
            monitors_.push_back(nullptr);
        }
        return fifo;
    }

    void
    addCoupler(const std::string &name, unsigned depth, unsigned idx,
               unsigned width, sim::Fifo<RecordT> &from,
               sim::Fifo<RecordT> &to)
    {
        components_.push_back(std::make_unique<hw::Coupler<RecordT>>(
            name + ".c" + std::to_string(depth) + "_" +
                std::to_string(idx),
            width, from, to));
    }

    TreeShape shape_;
    std::unique_ptr<sim::ProtocolChecker> checker_;
    std::vector<std::unique_ptr<sim::Fifo<RecordT>>> fifos_;
    /** One entry per fifos_ element; null when unchecked. */
    std::vector<sim::ChannelMonitor<RecordT> *> monitors_;
    std::vector<std::unique_ptr<sim::Component>> components_;
    std::vector<hw::Merger<RecordT> *> mergers_;
    std::vector<sim::Fifo<RecordT> *> leafBuffers_;
    sim::Fifo<RecordT> *root_ = nullptr;
};

} // namespace bonsai::amt

#endif // BONSAI_AMT_INSTANCE_HPP
