/**
 * @file
 * First-principles ("synthesis-like") resource estimates of the AMT
 * building blocks, playing the role of Vivado's synthesis reports in
 * the paper's Figure 10 / Table IV validation.
 *
 * A k-merger contains two 2k-record bitonic half-mergers — 2k*log2(2k)
 * compare-and-exchange (CAS) units — plus head-selection logic and
 * per-tuple control.  Costs below are derived from CAS counts with
 * per-CAS LUT cost proportional to record width, calibrated against
 * the paper's Table VI (32- and 128-bit synthesis numbers land within
 * ~10% per block; see tests/model/synth_estimate_test.cpp).
 */

#ifndef BONSAI_AMT_SYNTH_ESTIMATE_HPP
#define BONSAI_AMT_SYNTH_ESTIMATE_HPP

#include <cmath>
#include <cstdint>

#include "amt/tree.hpp"
#include "hw/bitonic.hpp"

namespace bonsai::amt
{

/** LUTs of one w-bit compare-and-exchange unit (compare + swap mux). */
constexpr std::uint64_t
casLut(unsigned record_bits)
{
    return (3 * record_bits) / 2 + 2;
}

/** Structural LUT estimate of a k-merger on w-bit records. */
constexpr std::uint64_t
mergerStructLut(unsigned k, unsigned record_bits)
{
    const std::uint64_t cas =
        2 * hw::casCountHalfMerger(k); // two half-mergers
    const std::uint64_t control =
        5ULL * record_bits + (5ULL * k * record_bits) / 8;
    return cas * casLut(record_bits) + control;
}

/** Structural LUT estimate of a k-coupler (tuple concatenation regs). */
constexpr std::uint64_t
couplerStructLut(unsigned k, unsigned record_bits)
{
    // ~2.03 LUT per record-bit of concatenation width.
    return (203ULL * k * record_bits + 50) / 100;
}

/** Structural LUT estimate of a 512-bit leaf FIFO. */
constexpr std::uint64_t
fifoStructLut(unsigned record_bits)
{
    return (105ULL * record_bits) / 100 + 16;
}

/** Structural flip-flop estimate of a k-merger (pipeline registers). */
constexpr std::uint64_t
mergerStructFf(unsigned k, unsigned record_bits)
{
    // Each CAS stage latches its outputs; calibrated against the
    // paper's Table IV merge-tree flip-flop count (2.33 FF/CAS-bit).
    const std::uint64_t cas = 2 * hw::casCountHalfMerger(k);
    return cas * record_bits * 233 / 100;
}

/**
 * Structural presorter estimates.  The paper's 16-record presorter at
 * p = 32 records/cycle uses 75,412 LUTs and 64,092 FFs (Table IV);
 * costs scale with lane count p and record width.
 */
constexpr std::uint64_t
presorterStructLut(unsigned p, unsigned record_bits)
{
    return (2357ULL * p * record_bits) / 32;
}

constexpr std::uint64_t
presorterStructFf(unsigned p, unsigned record_bits)
{
    return (2003ULL * p * record_bits) / 32;
}

/**
 * Structural data-loader estimates, linear in leaf count (per-leaf
 * pointer/mux/FIFO control; calibrated against Table IV at ell = 64,
 * b = 4 KB: 110,102 LUTs, 604,550 FFs, 960 BRAM blocks).
 */
constexpr std::uint64_t
dataLoaderStructLut(unsigned ell)
{
    return 1720ULL * ell;
}

constexpr std::uint64_t
dataLoaderStructFf(unsigned ell)
{
    return 9446ULL * ell;
}

/** 36 Kb BRAM blocks used by the per-leaf double-buffered batches:
 *  15 blocks per leaf at b = 4 KB (Table IV: 960 blocks at ell = 64),
 *  scaling with the batch size.  With the F1's 1,600 available blocks
 *  this reproduces the paper's feasibility wall: ell = 256 fits only
 *  with b reduced to 1 KB, ell = 512 would need b < 1 KB (the minimum
 *  batch that still reaches peak DRAM bandwidth, Section II), hence
 *  "ell cannot be made larger than 256". */
constexpr std::uint64_t
dataLoaderBramBlocks(unsigned ell, std::uint64_t batch_bytes)
{
    const std::uint64_t scaled = (15ULL * batch_bytes + 4095) / 4096;
    return ell * (scaled < 1 ? 1 : scaled);
}

/** Structural LUT estimate of a whole tree (mergers + couplers +
 *  leaf FIFOs), mirroring what synthesis would report for the
 *  instantiated netlist. */
inline std::uint64_t
treeStructLut(const TreeShape &shape, unsigned record_bits)
{
    std::uint64_t total = 0;
    for (const TreeLevel &lvl : shape.levels) {
        total += static_cast<std::uint64_t>(lvl.nodeCount) *
            mergerStructLut(lvl.mergerK, record_bits);
        // Two input couplers per merger; at k = 1 they degenerate to
        // plain FIFOs (deepest level inputs are the leaf buffers).
        const std::uint64_t per_input = lvl.couplerK > 1
            ? couplerStructLut(lvl.couplerK, record_bits)
            : fifoStructLut(record_bits);
        total += 2ULL * lvl.nodeCount * per_input;
    }
    return total;
}

/** Structural flip-flop estimate of a whole tree. */
inline std::uint64_t
treeStructFf(const TreeShape &shape, unsigned record_bits)
{
    std::uint64_t total = 0;
    for (const TreeLevel &lvl : shape.levels) {
        total += static_cast<std::uint64_t>(lvl.nodeCount) *
            mergerStructFf(lvl.mergerK, record_bits);
    }
    return total;
}

} // namespace bonsai::amt

#endif // BONSAI_AMT_SYNTH_ESTIMATE_HPP
