/**
 * @file
 * Structural description of a single AMT(p, ell): which mergers and
 * couplers exist at which tree level (paper Section II, Figure 1).
 * Shared by the simulator builder and the resource estimator so both
 * views of the hardware agree by construction.
 */

#ifndef BONSAI_AMT_TREE_HPP
#define BONSAI_AMT_TREE_HPP

#include <cstdint>
#include <vector>

#include "common/contract.hpp"

#include "hw/bitonic.hpp"

namespace bonsai::amt
{

/** One tree level of identical mergers. */
struct TreeLevel
{
    unsigned depth = 0;       ///< 0 = root
    unsigned nodeCount = 1;   ///< 2^depth mergers
    unsigned mergerK = 1;     ///< k of each merger: max(p / 2^depth, 1)
    /** Width of each coupler feeding this level's merger inputs
     *  (the child's throughput); equals mergerK for the paper's
     *  k-coupler naming.  1 at the deepest levels, where the "coupler"
     *  degenerates to a plain FIFO. */
    unsigned couplerK = 1;
};

/** Structural tree description for AMT(p, ell). */
struct TreeShape
{
    unsigned p = 1;
    unsigned ell = 2;
    std::vector<TreeLevel> levels; ///< root first

    /** Number of mergers in the tree (= ell - 1). */
    unsigned
    mergerCount() const
    {
        unsigned n = 0;
        for (const TreeLevel &lvl : levels)
            n += lvl.nodeCount;
        return n;
    }
};

/**
 * Build the level structure of AMT(p, ell): a p-merger at the root,
 * p/2-mergers as its children, and so on, floored at 1-mergers; the
 * binary tree has log2(ell) levels.
 */
inline TreeShape
makeTreeShape(unsigned p, unsigned ell)
{
    BONSAI_REQUIRE(hw::isPow2(p), "tree throughput p must be a power of two");
    BONSAI_REQUIRE(hw::isPow2(ell) && ell >= 2,
                   "leaf count ell must be a power of two >= 2");
    TreeShape shape;
    shape.p = p;
    shape.ell = ell;
    const unsigned depth_count = hw::log2Exact(ell);
    for (unsigned d = 0; d < depth_count; ++d) {
        TreeLevel lvl;
        lvl.depth = d;
        lvl.nodeCount = 1u << d;
        lvl.mergerK = std::max(p >> d, 1u);
        lvl.couplerK = lvl.mergerK;
        shape.levels.push_back(lvl);
    }
    return shape;
}

} // namespace bonsai::amt

#endif // BONSAI_AMT_TREE_HPP
