/**
 * @file
 * Timing-only off-chip memory model for the cycle simulator.
 *
 * Models what the paper's analysis depends on: aggregate bandwidth
 * split across banks (AWS F1: 4 DDR4 banks x 8 GB/s concurrent read and
 * write), address-interleaved bank selection, and batched transfers
 * (1-4 KB reads are required for peak bandwidth, Section II).  Data
 * never lives here — the simulator keeps record payloads in host
 * vectors; this model answers only "when does this transfer finish".
 *
 * Requests are scheduled in closed form the moment they reach the head
 * of their bank queue: activation latency elapses from arrival
 * (pipelined, so it hides under earlier transfers), the non-pipelined
 * turnaround occupies the bank for requestOverhead cycles, and the
 * transfer then drains at bankBytesPerCycle.  Because every future
 * event is precomputed, the model advances lazily — tick() and
 * onIdleCycles() both just move the synced-to cycle forward — and
 * nextWake() hands the engine the exact cycle of the next head
 * completion, which is what makes stall-heavy simulations fast-
 * forwardable.  Byte counters are exact: after k drain cycles a
 * request has served min(bytes, floor(k * rate)) bytes, and the
 * completion cycle credits the exact remainder, so totals always equal
 * the requested bytes (no fractional truncation loss).
 */

#ifndef BONSAI_MEM_TIMING_HPP
#define BONSAI_MEM_TIMING_HPP

#include <cmath>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "sim/component.hpp"

namespace bonsai::mem
{

/** How requests are assigned to banks. */
enum class BankMapping
{
    /** bank = (addr / interleaveBytes) % numBanks — the bank-striped
     *  placement a streaming design uses.  Streams hitting the same
     *  stripe contend for the same bank. */
    AddressInterleaved,
    /** Ignore the address; spread requests round-robin per direction
     *  (idealized perfectly balanced placement). */
    RoundRobin,
};

/** Static timing parameters of one off-chip memory. */
struct MemTimingConfig
{
    unsigned numBanks = 4;
    /** Per-bank, per-direction service rate in bytes per cycle.
     *  8 GB/s at 250 MHz = 32 bytes/cycle. */
    double bankBytesPerCycle = 32.0;
    /** Stripe granularity the streams are laid out at; selects the
     *  serving bank under BankMapping::AddressInterleaved. */
    std::uint64_t interleaveBytes = 4096;
    /** Fixed per-request latency (command/activation), cycles.
     *  Pipelined: it overlaps with earlier transfers on the bank. */
    std::uint64_t requestLatency = 16;
    /** Per-request bank-occupancy overhead (turnaround/precharge),
     *  cycles.  NOT pipelined — this is what batched 1-4 KB accesses
     *  amortize to reach peak bandwidth (Section II). */
    std::uint64_t requestOverhead = 2;
    /** Bank selection policy (address-interleaved by default;
     *  round-robin kept as an idealized opt-in fallback). */
    BankMapping bankMapping = BankMapping::AddressInterleaved;
};

/**
 * Bandwidth/bank/batch memory timing model.
 *
 * Each bank has independent read and write service queues drained at
 * bankBytesPerCycle; a request completes when all of its bytes have
 * been transferred plus a fixed request latency.
 */
class MemoryTiming : public sim::Component
{
  public:
    using Ticket = std::uint64_t;
    static constexpr Ticket kInvalidTicket = 0;

    MemoryTiming(std::string name, const MemTimingConfig &cfg)
        : Component(std::move(name)), cfg_(cfg), banks_(cfg.numBanks)
    {
        BONSAI_REQUIRE(cfg.numBanks > 0, "need at least one bank");
        BONSAI_REQUIRE(cfg.bankBytesPerCycle > 0.0,
                       "bank service rate must be positive");
        BONSAI_REQUIRE(cfg.bankMapping != BankMapping::AddressInterleaved ||
                           cfg.interleaveBytes > 0,
                       "address interleaving needs a stripe size");
    }

    /** Enqueue a batched read of @p bytes at @p addr. */
    Ticket
    requestRead(std::uint64_t addr, std::uint64_t bytes)
    {
        return enqueue(bankFor(addr, readCursor_), false, bytes);
    }

    /** Enqueue a batched write of @p bytes at @p addr. */
    Ticket
    requestWrite(std::uint64_t addr, std::uint64_t bytes)
    {
        return enqueue(bankFor(addr, writeCursor_), true, bytes);
    }

    /** True once the ticket's transfer has fully completed. */
    bool
    complete(Ticket t) const
    {
        BONSAI_REQUIRE(t != kInvalidTicket && t <= nextTicket_,
                       "unknown transfer ticket");
        return completed_[t - 1];
    }

    /**
     * Lower bound on the cycle during which @p t's completion becomes
     * visible (exact when @p t heads its queue; its queue head's
     * completion otherwise).  Strictly in the future while the ticket
     * is incomplete and the model is synced to the current cycle, so
     * consumers can use it directly as a wake hint.  Returns 0 for a
     * completed ticket.
     */
    sim::Cycle
    completionCycle(Ticket t) const
    {
        BONSAI_REQUIRE(t != kInvalidTicket && t <= nextTicket_,
                       "unknown transfer ticket");
        if (completed_[t - 1])
            return 0;
        const Queue &q = queueOf(ticketQueue_[t - 1]);
        BONSAI_INVARIANT(!q.requests.empty(),
                         "incomplete ticket must be queued");
        return q.requests.front().complete;
    }

    void
    tick(sim::Cycle now) override
    {
        advanceTo(now + 1);
    }

    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        sim::Cycle wake = sim::kNeverWake;
        for (const Bank &bank : banks_) {
            if (!bank.read.requests.empty())
                wake = std::min(wake,
                                bank.read.requests.front().complete);
            if (!bank.write.requests.empty())
                wake = std::min(wake,
                                bank.write.requests.front().complete);
        }
        return wake <= now ? now : wake;
    }

    void
    onIdleCycles(sim::Cycle first, sim::Cycle count) override
    {
        advanceTo(first + count);
    }

    bool
    quiescent() const override
    {
        for (const Bank &bank : banks_) {
            if (!bank.read.requests.empty() ||
                !bank.write.requests.empty()) {
                return false;
            }
        }
        return true;
    }

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    struct Request
    {
        Ticket ticket = kInvalidTicket;
        std::uint64_t bytes = 0;
        /** First cycle the model could serve the request (enqueue
         *  visibility): latency elapses from here, pipelined. */
        sim::Cycle arrival = 0;
        /** First drain cycle (valid once scheduled at queue head). */
        sim::Cycle drainStart = 0;
        /** Cycle during which the last byte transfers. */
        sim::Cycle complete = 0;
        /** Bytes already credited to the direction counter. */
        std::uint64_t counted = 0;
    };

    struct Queue
    {
        std::deque<Request> requests;
        /** Earliest cycle the next head may start its turnaround
         *  (previous completion + 1; bank serialization). */
        sim::Cycle nextStart = 0;
    };

    struct Bank
    {
        Queue read;
        Queue write;
    };

    std::size_t
    bankFor(std::uint64_t addr, std::size_t &cursor) const
    {
        if (cfg_.bankMapping == BankMapping::RoundRobin)
            return cursor++ % banks_.size();
        return static_cast<std::size_t>(
            (addr / cfg_.interleaveBytes) % banks_.size());
    }

    Queue &
    queueOf(std::uint32_t id)
    {
        Bank &bank = banks_[id >> 1];
        return (id & 1u) != 0 ? bank.write : bank.read;
    }

    const Queue &
    queueOf(std::uint32_t id) const
    {
        const Bank &bank = banks_[id >> 1];
        return (id & 1u) != 0 ? bank.write : bank.read;
    }

    /** Drain cycles needed: smallest k with floor(k * rate) >= bytes
     *  (consistent with the served-bytes formula). */
    std::uint64_t
    drainCycles(std::uint64_t bytes) const
    {
        const double rate = cfg_.bankBytesPerCycle;
        auto served = [&](std::uint64_t k) {
            return static_cast<std::uint64_t>(
                std::floor(static_cast<double>(k) * rate));
        };
        std::uint64_t k = static_cast<std::uint64_t>(
            std::ceil(static_cast<double>(bytes) / rate));
        if (k == 0)
            k = 1;
        while (served(k) < bytes)
            ++k;
        while (k > 1 && served(k - 1) >= bytes)
            --k;
        return k;
    }

    /** Bytes served after @p k drain cycles. */
    std::uint64_t
    servedAfter(const Request &req, std::uint64_t k) const
    {
        const std::uint64_t by_rate = static_cast<std::uint64_t>(
            std::floor(static_cast<double>(k) * cfg_.bankBytesPerCycle));
        return by_rate < req.bytes ? by_rate : req.bytes;
    }

    /** Fix the head request's turnaround/drain/completion schedule. */
    void
    schedule(Queue &q, Request &req) const
    {
        const sim::Cycle ready = req.arrival + cfg_.requestLatency;
        const sim::Cycle start =
            ready > q.nextStart ? ready : q.nextStart;
        req.drainStart = start + cfg_.requestOverhead;
        req.complete = req.drainStart + drainCycles(req.bytes) - 1;
    }

    Ticket
    enqueue(std::size_t bank_idx, bool is_write, std::uint64_t bytes)
    {
        BONSAI_REQUIRE(bytes > 0, "zero-byte transfer request");
        Bank &bank = banks_[bank_idx];
        Queue &q = is_write ? bank.write : bank.read;
        const Ticket t = ++nextTicket_;
        completed_.push_back(false);
        ticketQueue_.push_back(static_cast<std::uint32_t>(
            (bank_idx << 1) | (is_write ? 1u : 0u)));
        Request req;
        req.ticket = t;
        req.bytes = bytes;
        req.arrival = syncedTo_;
        if (q.requests.empty())
            schedule(q, req);
        q.requests.push_back(req);
        return req.ticket;
    }

    /** Simulate all cycles < @p t (completions, byte accounting). */
    void
    advanceTo(sim::Cycle t)
    {
        if (t <= syncedTo_)
            return;
        for (Bank &bank : banks_) {
            serveQueue(bank.read, t, bytesRead_);
            serveQueue(bank.write, t, bytesWritten_);
        }
        syncedTo_ = t;
    }

    void
    serveQueue(Queue &q, sim::Cycle t, std::uint64_t &bytes_counter)
    {
        while (!q.requests.empty() && q.requests.front().complete < t) {
            Request &head = q.requests.front();
            bytes_counter += head.bytes - head.counted;
            completed_[head.ticket - 1] = true;
            q.nextStart = head.complete + 1;
            q.requests.pop_front();
            if (!q.requests.empty())
                schedule(q, q.requests.front());
        }
        if (q.requests.empty())
            return;
        // Partial progress of the in-flight head, so byte counters are
        // exact at any observation cycle.
        Request &head = q.requests.front();
        if (t <= head.drainStart)
            return;
        const std::uint64_t served =
            servedAfter(head, t - head.drainStart);
        bytes_counter += served - head.counted;
        head.counted = served;
    }

    MemTimingConfig cfg_;
    std::vector<Bank> banks_;
    std::vector<bool> completed_;
    std::vector<std::uint32_t> ticketQueue_; ///< per-ticket queue id
    Ticket nextTicket_ = 0;
    std::size_t readCursor_ = 0;
    std::size_t writeCursor_ = 0;
    /** Next cycle not yet simulated; all events < syncedTo_ applied. */
    sim::Cycle syncedTo_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace bonsai::mem

#endif // BONSAI_MEM_TIMING_HPP
