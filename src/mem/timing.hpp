/**
 * @file
 * Timing-only off-chip memory model for the cycle simulator.
 *
 * Models what the paper's analysis depends on: aggregate bandwidth
 * split across banks (AWS F1: 4 DDR4 banks x 8 GB/s concurrent read and
 * write), address-interleaved bank selection, and batched transfers
 * (1-4 KB reads are required for peak bandwidth, Section II).  Data
 * never lives here — the simulator keeps record payloads in host
 * vectors; this model answers only "when does this transfer finish".
 */

#ifndef BONSAI_MEM_TIMING_HPP
#define BONSAI_MEM_TIMING_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "sim/component.hpp"

namespace bonsai::mem
{

/** Static timing parameters of one off-chip memory. */
struct MemTimingConfig
{
    unsigned numBanks = 4;
    /** Per-bank, per-direction service rate in bytes per cycle.
     *  8 GB/s at 250 MHz = 32 bytes/cycle. */
    double bankBytesPerCycle = 32.0;
    /** Stripe granularity the streams are laid out at.  Requests are
     *  assigned to banks round-robin per channel, modeling the
     *  bank-striped placement a streaming sorter uses to balance its
     *  sequential batches across DIMMs. */
    std::uint64_t interleaveBytes = 4096;
    /** Fixed per-request latency (command/activation), cycles.
     *  Pipelined: it overlaps with earlier transfers on the bank. */
    std::uint64_t requestLatency = 16;
    /** Per-request bank-occupancy overhead (turnaround/precharge),
     *  cycles.  NOT pipelined — this is what batched 1-4 KB accesses
     *  amortize to reach peak bandwidth (Section II). */
    std::uint64_t requestOverhead = 2;
};

/**
 * Bandwidth/bank/batch memory timing model.
 *
 * Each bank has independent read and write service queues drained at
 * bankBytesPerCycle; a request completes when all of its bytes have
 * been transferred plus a fixed request latency.
 */
class MemoryTiming : public sim::Component
{
  public:
    using Ticket = std::uint64_t;
    static constexpr Ticket kInvalidTicket = 0;

    MemoryTiming(std::string name, const MemTimingConfig &cfg)
        : Component(std::move(name)), cfg_(cfg),
          banks_(cfg.numBanks)
    {
        BONSAI_REQUIRE(cfg.numBanks > 0, "need at least one bank");
        BONSAI_REQUIRE(cfg.bankBytesPerCycle > 0.0,
                       "bank service rate must be positive");
    }

    /** Enqueue a batched read of @p bytes at @p addr. */
    Ticket
    requestRead(std::uint64_t addr, std::uint64_t bytes)
    {
        return enqueue(banks_[readCursor_++ % banks_.size()].read,
                       bytes, addr);
    }

    /** Enqueue a batched write of @p bytes at @p addr. */
    Ticket
    requestWrite(std::uint64_t addr, std::uint64_t bytes)
    {
        return enqueue(banks_[writeCursor_++ % banks_.size()].write,
                       bytes, addr);
    }

    /** True once the ticket's transfer has fully completed. */
    bool
    complete(Ticket t) const
    {
        BONSAI_REQUIRE(t != kInvalidTicket && t <= nextTicket_,
                       "unknown transfer ticket");
        return completed_[t - 1];
    }

    void
    tick(sim::Cycle now) override
    {
        for (Bank &bank : banks_) {
            serveQueue(bank.read, bytesRead_);
            serveQueue(bank.write, bytesWritten_);
        }
        (void)now;
    }

    bool
    quiescent() const override
    {
        for (const Bank &bank : banks_) {
            if (!bank.read.requests.empty() ||
                !bank.write.requests.empty()) {
                return false;
            }
        }
        return true;
    }

    std::uint64_t bytesRead() const { return bytesRead_; }
    std::uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    struct Request
    {
        Ticket ticket;
        double bytesLeft;
        std::uint64_t latencyLeft;
        std::uint64_t occupancyLeft;
    };

    struct Queue
    {
        std::deque<Request> requests;
        double credit = 0.0; ///< fractional bytes/cycle accumulator
    };

    struct Bank
    {
        Queue read;
        Queue write;
    };

    Ticket
    enqueue(Queue &q, std::uint64_t bytes, std::uint64_t)
    {
        const Ticket t = ++nextTicket_;
        completed_.push_back(false);
        q.requests.push_back({t, static_cast<double>(bytes),
                              cfg_.requestLatency,
                              cfg_.requestOverhead});
        return t;
    }

    void
    serveQueue(Queue &q, std::uint64_t &bytes_counter)
    {
        if (q.requests.empty()) {
            q.credit = 0.0;
            return;
        }
        // Activation latency elapses for every queued request in
        // parallel (command pipelining): under streaming load the
        // latency is fully hidden behind the previous transfer; an
        // isolated request still waits the full latency.
        const bool head_ready = q.requests.front().latencyLeft == 0;
        for (Request &req : q.requests) {
            if (req.latencyLeft > 0)
                --req.latencyLeft;
        }
        if (!head_ready) {
            q.credit = 0.0;
            return;
        }
        // Bank turnaround: not overlapped with anything.
        if (q.requests.front().occupancyLeft > 0) {
            --q.requests.front().occupancyLeft;
            q.credit = 0.0;
            return;
        }
        q.credit += cfg_.bankBytesPerCycle;
        while (!q.requests.empty()) {
            Request &req = q.requests.front();
            if (req.latencyLeft > 0 || req.occupancyLeft > 0)
                return; // next request not yet activated
            if (q.credit < req.bytesLeft) {
                req.bytesLeft -= q.credit;
                bytes_counter += static_cast<std::uint64_t>(q.credit);
                q.credit = 0.0;
                return;
            }
            q.credit -= req.bytesLeft;
            bytes_counter += static_cast<std::uint64_t>(req.bytesLeft);
            completed_[req.ticket - 1] = true;
            q.requests.pop_front();
        }
        q.credit = 0.0; // no pending work, discard leftover credit
    }

    MemTimingConfig cfg_;
    std::vector<Bank> banks_;
    std::vector<bool> completed_;
    Ticket nextTicket_ = 0;
    std::size_t readCursor_ = 0;
    std::size_t writeCursor_ = 0;
    std::uint64_t bytesRead_ = 0;
    std::uint64_t bytesWritten_ = 0;
};

} // namespace bonsai::mem

#endif // BONSAI_MEM_TIMING_HPP
