/**
 * @file
 * PipelineExecutor: runs the stages of one dataflow pipeline
 * concurrently with first-error-wins unwind.
 *
 * Scheduling: the executor owns a bonsai::ThreadPool sized to the
 * stage count, so parallelFor(n) hands every stage its own thread
 * (the claiming loop assigns one unclaimed index per idle thread, and
 * a thread only takes a second index after finishing its first —
 * which for pipeline stages means that stage completed).  That makes
 * blocking stage bodies safe: a stage blocked on a queue is always
 * waiting on a stage that either runs already or will be claimed by
 * an idle pool thread.  The engine's compute pool is a *different*
 * pool, so stage bodies may parallelFor on it freely (only nested
 * parallelism on one pool is banned).
 *
 * Error contract: the first stage to throw anything other than
 * PipelineAborted becomes the primary error — it is stored in the
 * caller's ErrorTrap and the caller-supplied abort hook runs (its job:
 * poison every queue of the pipeline).  The remaining stages then
 * unwind on PipelineAborted, which the executor absorbs silently: an
 * abort echo is not a new failure, so ErrorTrap::secondaryCount()
 * stays meaningful (a genuine second device error, thrown before the
 * poison reached that stage, is stored too and counted secondary by
 * the trap).  run() itself never throws pipeline errors — callers
 * decide when to rethrow via trap.rethrowIfSet().
 */

#ifndef BONSAI_PIPELINE_EXECUTOR_HPP
#define BONSAI_PIPELINE_EXECUTOR_HPP

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "pipeline/queue.hpp"
#include "pipeline/stage.hpp"

namespace bonsai::pipeline
{

class PipelineExecutor
{
  public:
    /**
     * Run every stage in @p stages to completion, one thread each.
     *
     * @param stages The pipeline's vertices; the queues wiring them
     *        are owned by the caller (and by the stages by reference).
     * @param trap   Sort-wide first-error latch; the primary failure
     *        lands here.  Not rethrown — callers rethrowIfSet() at
     *        the boundary where the unwind is complete.
     * @param abort  Poison hook, called (once per failing stage) when
     *        a primary error is trapped; must poison every queue so
     *        blocked stages wake and unwind.
     * @return Per-stage telemetry, index-aligned with @p stages.
     */
    static std::vector<StageStats>
    run(std::span<Stage *const> stages, ErrorTrap &trap,
        const std::function<void()> &abort)
    {
        std::vector<StageStats> stats(stages.size());
        if (stages.empty())
            return stats;
        // One thread per stage — see the file comment for why the
        // width must match the stage count exactly.
        ThreadPool pool(static_cast<unsigned>(stages.size()));
        pool.parallelFor(
            stages.size(), [&stages, &stats, &trap,
                            &abort](std::uint64_t i) {
                StageStats &s = stats[i];
                s.name = stages[i]->name();
                const auto t0 = std::chrono::steady_clock::now();
                try {
                    stages[i]->run(s);
                } catch (const PipelineAborted &) {
                    // Unwind behind the primary error; absorbed.
                } catch (...) {
                    trap.store(std::current_exception());
                    abort();
                }
                s.activeSeconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            });
        return stats;
    }
};

} // namespace bonsai::pipeline

#endif // BONSAI_PIPELINE_EXECUTOR_HPP
