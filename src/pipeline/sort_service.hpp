/**
 * @file
 * SortService: several concurrent out-of-core sorts over one shared
 * executor and one global buffer-pool budget.
 *
 * Each SortJob is an independent {source, sink, run-store pair}; the
 * service runs every job as a stage of one PipelineExecutor (one
 * thread per job) against a single BufferPool whose budget is the
 * service-wide memory bound.  Fair lane leasing falls out of the
 * Equation-10 shape derivation: each job plans its phase-2 shape
 * against an equal allowance of floor(buffers / jobs) pool buffers,
 * and a job's concurrent holdings never exceed its shape's
 * lanes * (2 ell + 2) <= allowance buffers — so the per-job maxima
 * sum to at most the pool supply and blocking acquires cannot
 * deadlock across jobs, while every job always owns enough budget to
 * make progress.  Too many jobs for the budget (allowance < 6
 * buffers) fails loudly up front instead of deadlocking mid-sort.
 *
 * Output equivalence: the augmented (key, run index, position) merge
 * order makes each job's output byte-identical to the same sort run
 * serially with a private pool — the shape only changes the pass
 * structure, never the emitted sequence.
 *
 * Error contract: first error wins across jobs.  A failing job does
 * not poison the others (they share no queues, only the pool, whose
 * unwind discipline returns every buffer) — surviving jobs complete,
 * then the first failure is rethrown; later failures are counted as
 * that trap's secondary errors.  After all jobs finish, the shared
 * pool must have zero outstanding buffers.
 */

#ifndef BONSAI_PIPELINE_SORT_SERVICE_HPP
#define BONSAI_PIPELINE_SORT_SERVICE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/sync.hpp"
#include "io/buffer_pool.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/stage.hpp"
#include "sorter/external.hpp"

namespace bonsai::pipeline
{

/** One sort's endpoints: all referenced objects must outlive
 *  SortService::run and belong to this job alone.
 *
 *  A job with a non-empty checkpointDir runs crash-consistently: its
 *  spills live in named files under that directory (front/back are
 *  ignored and may be null) and a rerun of the service resumes the
 *  job from its last committed chunk or merge pass.  Checkpoint
 *  directories must be distinct across jobs — the job directory IS
 *  the job's identity on disk. */
template <typename RecordT>
struct SortJob
{
    io::RecordSource<RecordT> *source = nullptr;
    io::RecordSink<RecordT> *sink = nullptr;
    io::RunStore<RecordT> *front = nullptr;
    io::RunStore<RecordT> *back = nullptr;
    std::string checkpointDir; ///< "" = classic anonymous spills
    /** Fail (instead of falling back fresh) when the checkpoint is
     *  missing or invalid.  Only meaningful with checkpointDir. */
    bool resume = false;
};

template <typename RecordT>
class SortService
{
  public:
    using Options = typename sorter::StreamEngine<RecordT>::Options;

    /** @p opt applies to every job; bufferBudgetBytes is the GLOBAL
     *  budget shared by all concurrent jobs, threads the per-job
     *  compute width. */
    explicit SortService(Options opt) : opt_(opt) {}

    /**
     * Run all of @p jobs concurrently; returns per-job telemetry,
     * index-aligned with @p jobs.  Throws the first job failure after
     * every job has finished (survivors are not cancelled — their
     * results are valid).
     */
    std::vector<sorter::StreamStats>
    run(const std::vector<SortJob<RecordT>> &jobs) const
    {
        std::vector<sorter::StreamStats> results(jobs.size());
        if (jobs.empty())
            return results;
        io::BufferPool<RecordT> bufs(opt_.batchRecords,
                                     opt_.bufferBudgetBytes);
        // Equal allowances: phase2Shape fails loudly inside a job if
        // its slice of the budget cannot hold one 2-way merge lane.
        const std::uint64_t allowance = bufs.buffers() / jobs.size();

        // One engine per job: an engine's post-mortem atomics are
        // per-sort state, and a shared instance would interleave them.
        std::vector<std::unique_ptr<sorter::StreamEngine<RecordT>>>
            engines;
        std::vector<std::unique_ptr<FnStage>> stages;
        std::vector<Stage *> vertices;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            engines.push_back(
                std::make_unique<sorter::StreamEngine<RecordT>>(
                    opt_));
            const SortJob<RecordT> &job = jobs[i];
            sorter::StreamEngine<RecordT> &engine = *engines.back();
            sorter::StreamStats &result = results[i];
            stages.push_back(std::make_unique<FnStage>(
                "sort-job-" + std::to_string(i),
                [&engine, &job, &result, &bufs,
                 allowance](StageStats &) {
                    if (!job.checkpointDir.empty()) {
                        typename sorter::StreamEngine<
                            RecordT>::DurableOptions durable;
                        durable.dir = job.checkpointDir;
                        durable.policy =
                            job.resume
                                ? sorter::ResumePolicy::ResumeStrict
                                : sorter::ResumePolicy::ResumeOrFresh;
                        result = engine.sortStreamSharedDurable(
                            *job.source, *job.sink, bufs, allowance,
                            /* exclusive_pool = */ false, durable);
                        return;
                    }
                    result = engine.sortStreamShared(
                        *job.source, *job.sink, *job.front,
                        *job.back, bufs, allowance,
                        /* exclusive_pool = */ false);
                }));
            vertices.push_back(stages.back().get());
        }

        ErrorTrap trap;
        // The abort hook is a no-op: jobs share no queues, and a
        // failed job must not cancel its siblings.
        PipelineExecutor::run(vertices, trap, [] {});
        trap.rethrowIfSet();
        BONSAI_ENSURE(bufs.outstanding() == 0,
                      "shared buffer pool has outstanding buffers "
                      "after all sort jobs finished");
        return results;
    }

  private:
    Options opt_;
};

} // namespace bonsai::pipeline

#endif // BONSAI_PIPELINE_SORT_SERVICE_HPP
