/**
 * @file
 * Bounded blocking queue connecting pipeline stages.
 *
 * A BoundedQueue is the only edge type in a dataflow pipeline: the
 * producer stage push()es, the consumer pop()s, and the bounded
 * capacity is the pipeline's backpressure — a producer that outruns
 * its consumer blocks instead of buffering unboundedly, so resident
 * memory stays at capacity() items no matter how lopsided the stage
 * speeds are.  Seeded with recycled buffers and drained/refilled in a
 * cycle, the same queue doubles as a free list (the buffer-pool
 * pattern of the stream engine's phase-1 chunk ring).
 *
 * Lifecycle: the producer close()s when done, after which pop()
 * drains the remaining items and then reports end-of-stream.  On
 * error, the pipeline's unwind path poison()s every queue: all
 * blocked and future operations throw PipelineAborted, which the
 * PipelineExecutor treats as unwind (not a new error), so exactly one
 * primary failure surfaces no matter how many stages were mid-push.
 *
 * Locking: the queue mutex is a leaf lock like every other in the
 * tree (see common/sync.hpp) — held only around the deque and flag
 * accesses, never across user code, item destruction on clear, or
 * another lock.
 */

#ifndef BONSAI_PIPELINE_QUEUE_HPP
#define BONSAI_PIPELINE_QUEUE_HPP

#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <optional>
#include <utility>

#include "common/contract.hpp"
#include "common/sync.hpp"

namespace bonsai::pipeline
{

/**
 * Thrown by queue operations after poison(): the pipeline is
 * unwinding behind a primary error.  Stages let it propagate; the
 * executor absorbs it without recording a secondary error.
 */
class PipelineAborted : public std::exception
{
  public:
    const char *
    what() const noexcept override
    {
        return "pipeline aborted behind a primary error";
    }
};

template <typename T>
class BoundedQueue
{
  public:
    /** A queue holding at most @p capacity items. */
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        BONSAI_REQUIRE(capacity >= 1,
                       "a bounded queue needs capacity for at least "
                       "one item");
    }

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    /**
     * Enqueue @p item, blocking while the queue is full.  Returns the
     * seconds spent blocked (the producer's backpressure stall).
     * Throws PipelineAborted once poisoned; pushing after close() is
     * a contract violation (the producer owns the close).
     */
    double
    push(T item) BONSAI_EXCLUDES(mutex_)
    {
        double stall = 0.0;
        ScopedLock lock(mutex_);
        if (items_.size() >= capacity_ && !poisoned_) {
            const auto t0 = std::chrono::steady_clock::now();
            while (items_.size() >= capacity_ && !poisoned_)
                notFull_.wait(mutex_);
            stall = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        }
        if (poisoned_)
            throw PipelineAborted();
        BONSAI_REQUIRE(!closed_, "push on a closed queue");
        items_.push_back(std::move(item));
        notEmpty_.notifyOne();
        return stall;
    }

    /**
     * Dequeue the oldest item, blocking while the queue is empty and
     * not yet closed.  Returns std::nullopt when the queue is closed
     * and drained (end of stream).  Seconds spent blocked (the
     * consumer's starvation stall) are added to @p stall_seconds.
     * Throws PipelineAborted once poisoned.
     */
    std::optional<T>
    pop(double &stall_seconds) BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        if (items_.empty() && !closed_ && !poisoned_) {
            const auto t0 = std::chrono::steady_clock::now();
            while (items_.empty() && !closed_ && !poisoned_)
                notEmpty_.wait(mutex_);
            stall_seconds += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        }
        if (poisoned_)
            throw PipelineAborted();
        if (items_.empty())
            return std::nullopt; // closed and drained
        T out = std::move(items_.front());
        items_.pop_front();
        notFull_.notifyOne();
        return out;
    }

    /** Producer is done: pops drain the backlog, then end-of-stream.
     *  Idempotent. */
    void
    close() BONSAI_EXCLUDES(mutex_)
    {
        {
            ScopedLock lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notifyAll();
    }

    /**
     * Error unwind: wake every blocked producer/consumer and make all
     * operations throw PipelineAborted.  Pending items are destroyed
     * outside the lock (RAII items — e.g. pool-buffer leases — thus
     * return their resources even mid-unwind).  Idempotent.
     */
    void
    poison() BONSAI_EXCLUDES(mutex_)
    {
        std::deque<T> doomed;
        {
            ScopedLock lock(mutex_);
            poisoned_ = true;
            doomed.swap(items_);
        }
        notFull_.notifyAll();
        notEmpty_.notifyAll();
        // doomed unwinds here, invoking item destructors lock-free.
    }

    /** The backpressure bound: items the queue may hold at once. */
    std::size_t capacity() const { return capacity_; }

    /** Items currently queued (racy by nature; telemetry only). */
    std::size_t
    size() const BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        return items_.size();
    }

  private:
    const std::size_t capacity_;
    mutable Mutex mutex_;
    CondVar notFull_;
    CondVar notEmpty_;
    std::deque<T> items_ BONSAI_GUARDED_BY(mutex_);
    bool closed_ BONSAI_GUARDED_BY(mutex_) = false;
    bool poisoned_ BONSAI_GUARDED_BY(mutex_) = false;
};

} // namespace bonsai::pipeline

#endif // BONSAI_PIPELINE_QUEUE_HPP
