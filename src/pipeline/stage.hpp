/**
 * @file
 * Pipeline stages and their telemetry.
 *
 * A Stage is one vertex of a dataflow pipeline: a named body that
 * runs once, start to finish, on its own executor thread, consuming
 * items from upstream BoundedQueues and producing into downstream
 * ones.  Stages hold typed queue references themselves (the queues
 * are the edges; the executor never sees them) — the pull()/emit()
 * helpers below wire a queue operation to the stage's stall and
 * throughput counters so every stage reports where its time went.
 *
 * Error contract: a stage that throws anything but PipelineAborted is
 * the pipeline's primary failure; the executor traps it and poisons
 * the queues, after which the remaining stages unwind on
 * PipelineAborted without being counted as new errors.  A stage that
 * holds resources across a pull/emit (pool buffers, open files) must
 * hold them in RAII wrappers, so the unwind releases them.
 */

#ifndef BONSAI_PIPELINE_STAGE_HPP
#define BONSAI_PIPELINE_STAGE_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "pipeline/queue.hpp"

namespace bonsai::pipeline
{

/** Per-stage telemetry, filled in by the executor and the
 *  pull()/emit() helpers. */
struct StageStats
{
    std::string name;
    std::uint64_t itemsIn = 0;  ///< items pulled from upstream
    std::uint64_t itemsOut = 0; ///< items emitted downstream
    /** Seconds blocked on an empty upstream queue (starved). */
    double inStallSeconds = 0.0;
    /** Seconds blocked on a full downstream queue (backpressured). */
    double outStallSeconds = 0.0;
    /** Wall-clock seconds of the whole stage body. */
    double activeSeconds = 0.0;
};

/** One vertex of a pipeline: run() is called exactly once, on a
 *  thread of its own. */
class Stage
{
  public:
    explicit Stage(std::string name) : name_(std::move(name)) {}
    virtual ~Stage() = default;

    Stage(const Stage &) = delete;
    Stage &operator=(const Stage &) = delete;

    /** Stage name, for telemetry and error reports. */
    const std::string &name() const { return name_; }

    /** The stage body: loop over the queues until the upstream edge
     *  reports end-of-stream, then close the downstream edge. */
    virtual void run(StageStats &stats) = 0;

  private:
    std::string name_;
};

/** A stage from a callable — test fixtures and one-off adapters. */
class FnStage : public Stage
{
  public:
    FnStage(std::string name, std::function<void(StageStats &)> body)
        : Stage(std::move(name)), body_(std::move(body))
    {
    }

    void run(StageStats &stats) override { body_(stats); }

  private:
    std::function<void(StageStats &)> body_;
};

/** Pop from @p in, counting the wait against @p stats; std::nullopt
 *  means the upstream stage closed the edge and it has drained. */
template <typename T>
std::optional<T>
pull(BoundedQueue<T> &in, StageStats &stats)
{
    std::optional<T> item = in.pop(stats.inStallSeconds);
    if (item)
        ++stats.itemsIn;
    return item;
}

/** Push onto @p out, counting backpressure against @p stats. */
template <typename T>
void
emit(BoundedQueue<T> &out, T item, StageStats &stats)
{
    stats.outStallSeconds += out.push(std::move(item));
    ++stats.itemsOut;
}

} // namespace bonsai::pipeline

#endif // BONSAI_PIPELINE_STAGE_HPP
