/**
 * @file
 * k-merger: merges two sorted record streams at k records per cycle.
 *
 * Architecture (paper Section "Hardware Mergers"): the merger expects
 * k-record tuples on its two input ports and emits one k-record tuple
 * per cycle, using a pipeline of two 2k-record bitonic half-mergers.
 *
 * Selection logic modeled here (the standard accumulator scheme behind
 * such mergers): keep a k-record sorted accumulator; each cycle pick the
 * input whose head record is smaller, pop one tuple from it, half-merge
 * it with the accumulator, emit all but the k largest records and keep
 * those k as the new accumulator.  Invariant: every accumulator record
 * that came from stream S is <= S's next unread record (stream
 * sortedness), so emitted records never exceed any future record.
 *
 * Run protocol (Section V-B): streams carry sorted runs separated by a
 * single reserved *terminal* record.  When both inputs of a run pair
 * have delivered their terminal, the merger drains its accumulator,
 * emits one terminal downstream and resets — the single-cycle flush the
 * paper's zero-append/zero-filter scheme provides.
 */

#ifndef BONSAI_HW_MERGER_HPP
#define BONSAI_HW_MERGER_HPP

#include <algorithm>
#include <deque>
#include <vector>

#include "common/contract.hpp"
#include "hw/bitonic.hpp"
#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::hw
{

template <typename RecordT>
class Merger : public sim::Component
{
  public:
    /**
     * @param name Instance name.
     * @param k Records merged per cycle (power of two).
     * @param in_a,in_b Input FIFOs carrying run-separated record streams.
     * @param out Output FIFO; must hold at least 2*(k+1) records.
     */
    Merger(std::string name, unsigned k, sim::Fifo<RecordT> &in_a,
           sim::Fifo<RecordT> &in_b, sim::Fifo<RecordT> &out)
        : Component(std::move(name)), k_(k), inA_(in_a), inB_(in_b),
          out_(out), latency_(mergerLatency(k))
    {
        BONSAI_REQUIRE(isPow2(k), "merger width k must be a power of two");
        // A flush of a full accumulator plus a terminal must always be
        // able to leave the network, or the tree deadlocks.
        BONSAI_REQUIRE(out.capacity() >= 2 * (std::size_t{k} + 1),
                       "output FIFO must hold at least 2*(k+1) records");
        acc_.reserve(2 * k);
        scratch_.reserve(2 * k);
    }

    void
    tick(sim::Cycle now) override
    {
        if (!drainPipeline(now))
            return; // downstream stall propagates through the pipeline
        consumeLeadingTerminals();
        if (aEnded_ && bEnded_) {
            flushStep(now);
        } else if (aEnded_) {
            drainStep(now, inB_, bEnded_);
        } else if (bEnded_) {
            drainStep(now, inA_, aEnded_);
        } else {
            mergeStep(now);
        }
    }

    bool
    quiescent() const override
    {
        return pipeline_.empty() && acc_.empty() && !aEnded_ && !bEnded_;
    }

    /**
     * Wake/sleep hint (sim/component.hpp).  The merger can act when a
     * due pipeline group can drain, or when the intake path has work
     * (a tuple/terminal to consume, or a run-pair flush in progress).
     * Starved with a group in flight, the next self-timed event is
     * that group's ready cycle; starved with an empty pipeline (or
     * blocked on output space), only external traffic can wake it.
     */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        if (!pipeline_.empty() && pipeline_.front().ready <= now) {
            const Group &g = pipeline_.front();
            const std::size_t need =
                g.records.size() + (g.terminal ? 1 : 0);
            // Due group blocked on output space: tick() returns from
            // drainPipeline() without reaching the intake path, so it
            // is a pure no-op until downstream pops.
            return out_.freeSpace() >= need ? now : sim::kNeverWake;
        }
        if (intakeActive())
            return now;
        return pipeline_.empty() ? sim::kNeverWake
                                 : pipeline_.front().ready;
    }

    /**
     * Credit skipped cycles to the stall counter exactly as the naive
     * ticks would have: every starved cycle stalls, except when a due
     * group is blocked on output space (tick() bails out before the
     * stall branch in that state).
     */
    void
    onIdleCycles(sim::Cycle first, sim::Cycle count) override
    {
        if (!pipeline_.empty() && pipeline_.front().ready <= first)
            return; // output-blocked, not starved
        stallCycles_ += count;
    }

    /** Cycles in which no tuple could be produced (starvation/stall). */
    std::uint64_t stallCycles() const { return stallCycles_; }

    /** Total records emitted downstream (terminals excluded). */
    std::uint64_t recordsOut() const { return recordsOut_; }

    /** Run-pair flushes performed (terminal emissions). */
    std::uint64_t flushes() const { return flushes_; }

    unsigned k() const { return k_; }

  private:
    struct Group
    {
        sim::Cycle ready;
        std::vector<RecordT> records;
        bool terminal = false; ///< emit a terminal after the records
    };

    /**
     * Advance the output end of the pipeline: at most one group
     * leaves the network per cycle.  Returns whether the network can
     * accept a new input tuple this cycle — true when nothing was due
     * to leave or the due group left (one out, one in), false only
     * when the due group is stuck on output space.  During a stall
     * ready groups back up behind the blocked head; returning true as
     * soon as the head drains means the backlog empties at one group
     * per cycle *while intake continues*, so a transient downstream
     * stall costs exactly the stalled cycles rather than stalled
     * cycles plus a full backlog drain.
     */
    bool
    drainPipeline(sim::Cycle now)
    {
        if (pipeline_.empty() || pipeline_.front().ready > now)
            return true;
        Group &g = pipeline_.front();
        const std::size_t need = g.records.size() + (g.terminal ? 1 : 0);
        if (out_.freeSpace() < need)
            return false;
        for (const RecordT &r : g.records) {
            out_.push(r);
            ++recordsOut_;
        }
        if (g.terminal)
            out_.push(RecordT::terminal());
        pipeline_.pop_front();
        return true;
    }

    /** True when the post-drain part of tick() would make progress
     *  (consume a terminal, absorb a tuple, or flush). */
    bool
    intakeActive() const
    {
        if (!aEnded_ && !inA_.empty() && inA_.front().isTerminal())
            return true;
        if (!bEnded_ && !inB_.empty() && inB_.front().isTerminal())
            return true;
        if (aEnded_ && bEnded_)
            return true; // flushStep always progresses
        if (aEnded_)
            return tupleReady(inB_);
        if (bEnded_)
            return tupleReady(inA_);
        return tupleReady(inA_) && tupleReady(inB_);
    }

    void
    consumeLeadingTerminals()
    {
        if (!aEnded_ && !inA_.empty() && inA_.front().isTerminal()) {
            inA_.pop();
            aEnded_ = true;
        }
        if (!bEnded_ && !inB_.empty() && inB_.front().isTerminal()) {
            inB_.pop();
            bEnded_ = true;
        }
    }

    /**
     * A tuple is ready on @p in when k records are visible or a
     * terminal appears among the first k (short tuple at run end).
     */
    bool
    tupleReady(const sim::Fifo<RecordT> &in) const
    {
        const std::size_t limit = std::min<std::size_t>(in.size(), k_);
        for (std::size_t i = 0; i < limit; ++i) {
            if (in.peek(i).isTerminal())
                return true;
        }
        return in.size() >= k_;
    }

    /** Pop up to k records (stopping at / consuming a terminal). */
    std::vector<RecordT>
    popTuple(sim::Fifo<RecordT> &in, bool &ended)
    {
        std::vector<RecordT> tuple;
        tuple.reserve(k_);
        while (tuple.size() < k_ && !in.empty()) {
            if (in.front().isTerminal()) {
                in.pop();
                ended = true;
                break;
            }
            tuple.push_back(in.pop());
        }
        return tuple;
    }

    /** Merge @p tuple into the accumulator, emit all but the k largest. */
    void
    absorb(sim::Cycle now, std::vector<RecordT> &&tuple)
    {
        scratch_.clear();
        scratch_.insert(scratch_.end(), acc_.begin(), acc_.end());
        const std::size_t mid = scratch_.size();
        scratch_.insert(scratch_.end(), tuple.begin(), tuple.end());
        std::inplace_merge(scratch_.begin(), scratch_.begin() + mid,
                           scratch_.end());
        const std::size_t total = scratch_.size();
        const std::size_t emit = total > k_ ? total - k_ : 0;
        Group g;
        g.ready = now + latency_;
        g.records.assign(scratch_.begin(), scratch_.begin() + emit);
        acc_.assign(scratch_.begin() + emit, scratch_.end());
        BONSAI_INVARIANT(acc_.size() <= k_,
                         "accumulator never exceeds k records");
        if (!g.records.empty())
            pipeline_.push_back(std::move(g));
    }

    void
    mergeStep(sim::Cycle now)
    {
        const bool ready_a = tupleReady(inA_);
        const bool ready_b = tupleReady(inB_);
        if (!ready_a || !ready_b) {
            ++stallCycles_;
            return;
        }
        // Equal heads alternate sides: a fixed tie-break would drain
        // one input at twice its refill rate on low-entropy keys
        // (long equal-key runs) and stall the tree on starvation.
        bool pick_a;
        if (inA_.front() < inB_.front()) {
            pick_a = true;
        } else if (inB_.front() < inA_.front()) {
            pick_a = false;
        } else {
            pick_a = tieToggle_;
            tieToggle_ = !tieToggle_;
        }
        sim::Fifo<RecordT> &src = pick_a ? inA_ : inB_;
        bool &ended = pick_a ? aEnded_ : bEnded_;
        absorb(now, popTuple(src, ended));
    }

    void
    drainStep(sim::Cycle now, sim::Fifo<RecordT> &src, bool &ended)
    {
        if (!tupleReady(src)) {
            ++stallCycles_;
            return;
        }
        absorb(now, popTuple(src, ended));
    }

    void
    flushStep(sim::Cycle now)
    {
        Group g;
        g.ready = now + latency_;
        const std::size_t emit = std::min<std::size_t>(acc_.size(), k_);
        g.records.assign(acc_.begin(), acc_.begin() + emit);
        acc_.erase(acc_.begin(), acc_.begin() + emit);
        if (acc_.empty()) {
            g.terminal = true;
            aEnded_ = false;
            bEnded_ = false;
            ++flushes_;
        }
        pipeline_.push_back(std::move(g));
    }

    const unsigned k_;
    sim::Fifo<RecordT> &inA_;
    sim::Fifo<RecordT> &inB_;
    sim::Fifo<RecordT> &out_;
    const sim::Cycle latency_;

    std::vector<RecordT> acc_;     ///< sorted leftover records (<= k)
    std::vector<RecordT> scratch_; ///< merge workspace
    std::deque<Group> pipeline_;   ///< models the half-merger latency
    bool aEnded_ = false;
    bool bEnded_ = false;
    bool tieToggle_ = true; ///< alternating equal-key side selection

    std::uint64_t stallCycles_ = 0;
    std::uint64_t recordsOut_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace bonsai::hw

#endif // BONSAI_HW_MERGER_HPP
