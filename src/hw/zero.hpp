/**
 * @file
 * Zero-append and zero-filter blocks (paper Section V-B, Figure 7).
 *
 * The zero-append inserts the reserved terminal record after each sorted
 * run entering a leaf buffer; the zero-filter removes terminal records
 * from the tree root's output stream while reporting run boundaries to
 * the writer.  In this simulator the data loader performs the append
 * inline (it knows run boundaries), so ZeroAppend is provided for unit
 * tests and resource accounting; ZeroFilter sits on the root output.
 */

#ifndef BONSAI_HW_ZERO_HPP
#define BONSAI_HW_ZERO_HPP

#include <string>

#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::hw
{

/**
 * Appends one terminal record after every @p run_length records.
 * Forwards up to @p width records per cycle.
 */
template <typename RecordT>
class ZeroAppend : public sim::Component
{
  public:
    ZeroAppend(std::string name, unsigned width, std::uint64_t run_length,
               sim::Fifo<RecordT> &in, sim::Fifo<RecordT> &out)
        : Component(std::move(name)), width_(width),
          runLength_(run_length), in_(in), out_(out)
    {
    }

    void
    tick(sim::Cycle) override
    {
        for (unsigned i = 0; i < width_; ++i) {
            if (out_.full())
                return;
            if (sinceTerminal_ == runLength_) {
                out_.push(RecordT::terminal());
                sinceTerminal_ = 0;
                continue;
            }
            if (in_.empty())
                return;
            out_.push(in_.pop());
            ++sinceTerminal_;
        }
    }

    /** Active when it can emit a due terminal or forward a record. */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        if (out_.full())
            return sim::kNeverWake;
        if (sinceTerminal_ == runLength_ || !in_.empty())
            return now;
        return sim::kNeverWake;
    }

  private:
    const unsigned width_;
    const std::uint64_t runLength_;
    sim::Fifo<RecordT> &in_;
    sim::Fifo<RecordT> &out_;
    std::uint64_t sinceTerminal_ = 0;
};

/**
 * Strips terminal records from the root output stream, counting run
 * boundaries; forwards up to @p width records per cycle.
 */
template <typename RecordT>
class ZeroFilter : public sim::Component
{
  public:
    ZeroFilter(std::string name, unsigned width, sim::Fifo<RecordT> &in,
               sim::Fifo<RecordT> &out)
        : Component(std::move(name)), width_(width), in_(in), out_(out)
    {
    }

    void
    tick(sim::Cycle) override
    {
        for (unsigned i = 0; i < width_; ++i) {
            if (in_.empty() || out_.full())
                return;
            RecordT r = in_.pop();
            if (r.isTerminal()) {
                ++runsSeen_;
                continue;
            }
            out_.push(r);
        }
    }

    /** Pure forwarder: active exactly when a record can move. */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        return !in_.empty() && !out_.full() ? now : sim::kNeverWake;
    }

    /** Number of terminal records filtered (= completed runs). */
    std::uint64_t runsSeen() const { return runsSeen_; }

  private:
    const unsigned width_;
    sim::Fifo<RecordT> &in_;
    sim::Fifo<RecordT> &out_;
    std::uint64_t runsSeen_ = 0;
};

} // namespace bonsai::hw

#endif // BONSAI_HW_ZERO_HPP
