/**
 * @file
 * Data loader: feeds the AMT's leaf input buffers from off-chip memory
 * (paper Section V-A).
 *
 * Behaviour reproduced from the paper:
 *  - each leaf has a FIFO input buffer holding two full read batches;
 *  - the loader scans leaves round-robin; whenever a buffer has room
 *    for a batch it issues a batched (1-4 KB) sequential read, keeping
 *    a per-leaf pointer to the last loaded address;
 *  - reads are timed by the MemoryTiming model, so the tree stalls if
 *    a buffer runs empty and DRAM runs at peak bandwidth otherwise;
 *  - the zero-append role is performed inline: a terminal record is
 *    pushed after every run (Section V-B);
 *  - during the first merge stage the loader can presort fixed-size
 *    chunks with a bitonic network (the presorter of Section VI-C1),
 *    turning unsorted input into 16-record runs on the fly.
 */

#ifndef BONSAI_HW_DATA_LOADER_HPP
#define BONSAI_HW_DATA_LOADER_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "hw/bitonic.hpp"
#include "mem/timing.hpp"
#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::hw
{

template <typename RecordT>
class DataLoader : public sim::Component
{
  public:
    /** Per-leaf feed description. */
    struct LeafFeed
    {
        sim::Fifo<RecordT> *buffer = nullptr;
        /** Runs this leaf must deliver, in group order; empty runs
         *  (length 0) emit a bare terminal. */
        std::vector<RunSpan> runs;
    };

    /**
     * @param source Stage input buffer (read-only during the stage).
     * @param feeds One entry per leaf; all leaves must have the same
     *              number of runs (pad with empty runs).
     * @param batch_records Read batch size in records (b / r).
     * @param presort_chunk If nonzero, each delivered run is bitonic-
     *              sorted in chunks of this many records (stage one
     *              with the presorter; run length must equal the chunk
     *              size or be the final shorter chunk).
     * @param base_addr Byte address of the source buffer in the memory
     *              model's address space (for bank interleaving).
     * @param record_bytes Modeled record width r.
     * @param bus_bytes_per_cycle Per-leaf delivery bus width (the
     *              512-bit FIFO + unpacker path of Figure 7); caps
     *              how many records can land in a buffer per cycle.
     */
    DataLoader(std::string name, std::span<const RecordT> source,
               std::vector<LeafFeed> feeds, mem::MemoryTiming &memory,
               std::uint64_t batch_records, std::uint64_t presort_chunk,
               std::uint64_t base_addr, std::uint64_t record_bytes,
               std::uint64_t bus_bytes_per_cycle = 64)
        : Component(std::move(name)), source_(source),
          memory_(memory), batchRecords_(batch_records),
          presortChunk_(presort_chunk), baseAddr_(base_addr),
          recordBytes_(record_bytes),
          busRecordsPerCycle_(std::max<std::uint64_t>(
              bus_bytes_per_cycle / record_bytes, 1))
    {
        BONSAI_REQUIRE(batch_records > 0,
                       "read batch must cover at least one record");
        // The presorter network sorts chunks as they stream by; a
        // chunk split across batches would be silently mis-sorted.
        BONSAI_REQUIRE(presort_chunk == 0 ||
                           presort_chunk <= batch_records,
                       "presort chunk must fit within one batch");
        BONSAI_REQUIRE(presort_chunk == 0 ||
                           batch_records % presort_chunk == 0,
                       "batches must hold whole presort chunks");
        leaves_.reserve(feeds.size());
        for (LeafFeed &feed : feeds) {
            BONSAI_REQUIRE(feed.buffer != nullptr,
                           "every leaf feed needs a buffer");
            // canIssue() waits for 2*batch+2 free records; a smaller
            // buffer would never accept a batch and deadlock the tree.
            BONSAI_REQUIRE(feed.buffer->capacity() >=
                               2 * batch_records + 2,
                           "leaf buffer must hold two batches plus "
                           "terminals");
            leaves_.push_back(LeafState{std::move(feed), {}, 0, 0, 0,
                                        mem::MemoryTiming::kInvalidTicket});
        }
    }

    void
    tick(sim::Cycle) override
    {
        deliverCompleted();
        issueOne();
    }

    bool
    quiescent() const override
    {
        for (const LeafState &leaf : leaves_) {
            if (!leafDone(leaf))
                return false;
        }
        return true;
    }

    /** All assigned data issued, delivered and pushed. */
    bool
    finished() const
    {
        return quiescent();
    }

    /**
     * Wake hint: active when any leaf can deliver a completed batch,
     * push staged records, or issue a new read.  A leaf whose batch is
     * still in flight contributes the memory model's completion bound
     * for its ticket; a leaf waiting on buffer space (or done) wakes
     * only through external traffic.
     */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        sim::Cycle wake = sim::kNeverWake;
        for (const LeafState &leaf : leaves_) {
            if (leaf.pending != mem::MemoryTiming::kInvalidTicket) {
                if (memory_.complete(leaf.pending))
                    return now;
                wake = std::min(
                    wake, memory_.completionCycle(leaf.pending));
                continue;
            }
            if (leaf.stagedPos < leaf.staged.size()) {
                if (!leaf.feed.buffer->full())
                    return now;
                continue; // waiting on downstream pops
            }
            if (canIssue(leaf))
                return now;
        }
        return wake <= now ? now : wake;
    }

    std::uint64_t batchesIssued() const { return batchesIssued_; }

  private:
    struct LeafState
    {
        LeafFeed feed;
        std::vector<RecordT> staged; ///< records awaiting FIFO space
        std::size_t runIdx = 0;      ///< next run to read from
        std::uint64_t runPos = 0;    ///< records already read of it
        std::uint64_t stagedPos = 0; ///< next staged record to push
        mem::MemoryTiming::Ticket pending =
            mem::MemoryTiming::kInvalidTicket;
    };

    bool
    leafDone(const LeafState &leaf) const
    {
        return leaf.runIdx >= leaf.feed.runs.size() &&
            leaf.pending == mem::MemoryTiming::kInvalidTicket &&
            leaf.stagedPos >= leaf.staged.size();
    }

    /** Move completed batches into leaf FIFOs (as space allows). */
    void
    deliverCompleted()
    {
        for (LeafState &leaf : leaves_) {
            if (leaf.pending != mem::MemoryTiming::kInvalidTicket &&
                memory_.complete(leaf.pending)) {
                leaf.pending = mem::MemoryTiming::kInvalidTicket;
            }
            if (leaf.pending != mem::MemoryTiming::kInvalidTicket)
                continue;
            // The unpacker extracts at most one 512-bit word's worth
            // of records per cycle into each leaf buffer (Figure 7).
            std::uint64_t quota = busRecordsPerCycle_;
            while (quota > 0 && leaf.stagedPos < leaf.staged.size() &&
                   !leaf.feed.buffer->full()) {
                leaf.feed.buffer->push(leaf.staged[leaf.stagedPos]);
                ++leaf.stagedPos;
                --quota;
            }
            if (leaf.stagedPos >= leaf.staged.size()) {
                leaf.staged.clear();
                leaf.stagedPos = 0;
            }
        }
    }

    /** Round-robin scan; issue at most one batched read per cycle. */
    void
    issueOne()
    {
        const std::size_t n = leaves_.size();
        for (std::size_t scan = 0; scan < n; ++scan) {
            LeafState &leaf = leaves_[(cursor_ + scan) % n];
            if (!canIssue(leaf))
                continue;
            issueBatch(leaf);
            cursor_ = (cursor_ + scan + 1) % n;
            return;
        }
    }

    bool
    canIssue(const LeafState &leaf) const
    {
        if (leaf.pending != mem::MemoryTiming::kInvalidTicket)
            return false;
        if (!leaf.staged.empty())
            return false; // previous batch not fully pushed yet
        if (leaf.runIdx >= leaf.feed.runs.size())
            return false;
        // Buffer holds two batches; issue when one batch fits.  A batch
        // of b records can carry up to b terminals in the worst case
        // (single-record runs), hence the 2x headroom.
        return leaf.feed.buffer->freeSpace() >= 2 * batchRecords_ + 2;
    }

    void
    issueBatch(LeafState &leaf)
    {
        std::uint64_t budget = batchRecords_;
        const std::uint64_t start_offset =
            leaf.feed.runs[leaf.runIdx].offset + leaf.runPos;
        while (budget > 0 && leaf.runIdx < leaf.feed.runs.size()) {
            const RunSpan &run = leaf.feed.runs[leaf.runIdx];
            const std::uint64_t left = run.length - leaf.runPos;
            const std::uint64_t take = std::min(budget, left);
            stageRun(leaf, run.offset + leaf.runPos, take);
            leaf.runPos += take;
            budget -= take;
            if (leaf.runPos == run.length) {
                leaf.staged.push_back(RecordT::terminal());
                ++leaf.runIdx;
                leaf.runPos = 0;
                // Batched reads are sequential within a leaf region;
                // runs of one leaf are contiguous, so keep filling the
                // batch from the next run.
            }
        }
        const std::uint64_t took = batchRecords_ - budget;
        if (took == 0) {
            // Only empty runs were consumed; no memory traffic.
            return;
        }
        leaf.pending = memory_.requestRead(
            baseAddr_ + start_offset * recordBytes_, took * recordBytes_);
        ++batchesIssued_;
    }

    /** Copy @p count records starting at @p offset into the staging
     *  buffer, presorting chunks when configured. */
    void
    stageRun(LeafState &leaf, std::uint64_t offset, std::uint64_t count)
    {
        const std::size_t begin = leaf.staged.size();
        for (std::uint64_t i = 0; i < count; ++i)
            leaf.staged.push_back(source_[offset + i]);
        if (presortChunk_ == 0)
            return;
        // The presorter network sorts each chunk as it streams by.
        for (std::size_t pos = begin; pos < leaf.staged.size();
             pos += presortChunk_) {
            const std::size_t len =
                std::min<std::size_t>(presortChunk_,
                                      leaf.staged.size() - pos);
            std::span<RecordT> chunk(leaf.staged.data() + pos, len);
            if (isPow2(len)) {
                bitonicSortNetwork(chunk);
            } else {
                std::sort(chunk.begin(), chunk.end());
            }
        }
    }

    std::span<const RecordT> source_;
    mem::MemoryTiming &memory_;
    const std::uint64_t batchRecords_;
    const std::uint64_t presortChunk_;
    const std::uint64_t baseAddr_;
    const std::uint64_t recordBytes_;
    const std::uint64_t busRecordsPerCycle_;

    std::vector<LeafState> leaves_;
    std::size_t cursor_ = 0;
    std::uint64_t batchesIssued_ = 0;
};

} // namespace bonsai::hw

#endif // BONSAI_HW_DATA_LOADER_HPP
