/**
 * @file
 * Bitonic sorting / merging networks (Batcher 1968).
 *
 * These model the combinational networks inside the hardware blocks:
 *
 *  - a 2k-record bitonic *half-merger* merges two sorted k-record arrays
 *    per cycle; it has log2(2k) compare-and-exchange stages of k CAS
 *    units each (paper Section "Hardware Mergers");
 *  - a k-record bitonic *sorting network* is the presorter that forms
 *    16-record runs before the first merge stage (Section VI-C1).
 *
 * The functions here execute the exact network (same sequence of
 * compare-and-exchange operations the hardware wires up), so unit tests
 * can validate them with the 0-1 principle, and the resource estimator
 * can count CAS units from the same stage structure.
 */

#ifndef BONSAI_HW_BITONIC_HPP
#define BONSAI_HW_BITONIC_HPP

#include <cstdint>
#include <span>
#include <utility>

#include "common/contract.hpp"

namespace bonsai::hw
{

/** True iff @p n is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t n)
{
    BONSAI_REQUIRE(isPow2(n), "log2Exact needs a power of two");
    unsigned l = 0;
    while (n > 1) {
        n >>= 1;
        ++l;
    }
    return l;
}

/** One compare-and-exchange: after the call data[lo] <= data[hi]. */
template <typename RecordT>
void
compareExchange(std::span<RecordT> data, std::size_t lo, std::size_t hi)
{
    if (data[hi] < data[lo])
        std::swap(data[lo], data[hi]);
}

/**
 * Bitonic merge network on @p data (size must be a power of two).
 * Sorts any *bitonic* input sequence ascending.  This is the
 * half-merger datapath: log2(n) stages, n/2 CAS per stage.
 */
template <typename RecordT>
void
bitonicMergeNetwork(std::span<RecordT> data)
{
    const std::size_t n = data.size();
    BONSAI_REQUIRE(isPow2(n), "merge network width must be a power of two");
    for (std::size_t stride = n / 2; stride >= 1; stride /= 2) {
        for (std::size_t i = 0; i < n; ++i) {
            if ((i & stride) == 0)
                compareExchange(data, i, i + stride);
        }
    }
}

/**
 * Merge two ascending sorted halves in place: data = [a | b] with both
 * halves sorted ascending; on return data is fully sorted.  Implemented
 * by reversing b to form a bitonic sequence and running the merge
 * network, exactly as the hardware half-merger does.
 */
template <typename RecordT>
void
mergeSortedHalves(std::span<RecordT> data)
{
    const std::size_t n = data.size();
    BONSAI_REQUIRE(isPow2(n) && n >= 2,
                   "half-merge needs a power-of-two width >= 2");
    for (std::size_t i = 0; i < n / 4; ++i)
        std::swap(data[n / 2 + i], data[n - 1 - i]);
    bitonicMergeNetwork(data);
}

/**
 * Full bitonic sorting network on @p data (size must be a power of
 * two).  Used by the presorter (16-record network in the paper).
 */
template <typename RecordT>
void
bitonicSortNetwork(std::span<RecordT> data)
{
    const std::size_t n = data.size();
    BONSAI_REQUIRE(isPow2(n), "sort network width must be a power of two");
    for (std::size_t block = 2; block <= n; block *= 2) {
        // Descending/ascending alternation realised by direction bit.
        for (std::size_t stride = block / 2; stride >= 1; stride /= 2) {
            for (std::size_t i = 0; i < n; ++i) {
                if ((i & stride) != 0)
                    continue;
                const bool ascending = ((i & block) == 0);
                if (ascending) {
                    compareExchange(data, i, i + stride);
                } else {
                    if (data[i] < data[i + stride])
                        std::swap(data[i], data[i + stride]);
                }
            }
        }
    }
}

/**
 * Number of compare-and-exchange units in a 2k-record bitonic
 * half-merger: log2(2k) stages x k CAS (paper: "log k steps, k
 * compare-and-exchange operations", with logic Theta(k log k)).
 */
constexpr std::uint64_t
casCountHalfMerger(std::uint64_t k)
{
    BONSAI_REQUIRE(isPow2(k), "half-merger width must be a power of two");
    return k * log2Exact(2 * k);
}

/** Number of CAS units in an n-record bitonic sorting network. */
constexpr std::uint64_t
casCountSorter(std::uint64_t n)
{
    BONSAI_REQUIRE(isPow2(n), "sorter width must be a power of two");
    const std::uint64_t stages =
        log2Exact(n) * (log2Exact(n) + 1) / 2;
    return stages * (n / 2);
}

/** Pipeline latency (cycles) of a k-merger: two 2k-record half-mergers
 *  in sequence, each with log2(2k) stages. */
constexpr std::uint64_t
mergerLatency(std::uint64_t k)
{
    BONSAI_REQUIRE(isPow2(k), "merger width must be a power of two");
    return 2 * log2Exact(2 * k);
}

} // namespace bonsai::hw

#endif // BONSAI_HW_BITONIC_HPP
