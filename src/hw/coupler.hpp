/**
 * @file
 * p-coupler: concatenates adjacent p/2-record tuples from a child
 * merger into p-record tuples for the parent merger (paper Figure 1).
 *
 * In the record-stream simulation this is a rate-matched forwarder: it
 * moves up to `width` records per cycle from its input FIFO to its
 * output FIFO (terminals included — run boundaries pass through
 * unchanged).  Its resource cost is what matters for the models; its
 * timing contribution is one FIFO hop.
 */

#ifndef BONSAI_HW_COUPLER_HPP
#define BONSAI_HW_COUPLER_HPP

#include <string>

#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::hw
{

template <typename RecordT>
class Coupler : public sim::Component
{
  public:
    /**
     * @param width Records forwarded per cycle (the child throughput,
     *              i.e. p/2 for a p-coupler feeding a p-merger).
     */
    Coupler(std::string name, unsigned width, sim::Fifo<RecordT> &in,
            sim::Fifo<RecordT> &out)
        : Component(std::move(name)), width_(width), in_(in), out_(out)
    {
    }

    void
    tick(sim::Cycle) override
    {
        for (unsigned i = 0; i < width_; ++i) {
            if (in_.empty() || out_.full())
                return;
            out_.push(in_.pop());
            ++recordsForwarded_;
        }
    }

    /** Pure forwarder: active exactly when a record can move. */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        return !in_.empty() && !out_.full() ? now : sim::kNeverWake;
    }

    std::uint64_t recordsForwarded() const { return recordsForwarded_; }

  private:
    const unsigned width_;
    sim::Fifo<RecordT> &in_;
    sim::Fifo<RecordT> &out_;
    std::uint64_t recordsForwarded_ = 0;
};

} // namespace bonsai::hw

#endif // BONSAI_HW_COUPLER_HPP
