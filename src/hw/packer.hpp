/**
 * @file
 * Packer / Unpacker blocks (paper Figure 7): "the communication
 * between the sorting kernel and the DDR controller is always through
 * a 512-bit wide AXI-4 interface, regardless of the record width: the
 * Unpacker will extract one record from the 512-bit FIFOs per cycle
 * automatically once the record width is set by the user and the
 * packer will concatenate the output of the merge tree into 512-bit
 * wide data."
 *
 * The simulator models the AXI word stream as a count of words; the
 * record payloads ride alongside.  Unpacker: words in, records out at
 * the configured records-per-word rate.  Packer: records in, words
 * out, flushing a partial word at each run boundary (terminals pass
 * through as boundary markers so the writer can still see runs).
 */

#ifndef BONSAI_HW_PACKER_HPP
#define BONSAI_HW_PACKER_HPP

#include <string>

#include "common/contract.hpp"
#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::hw
{

/**
 * Unpacker: consumes one 512-bit word per cycle from the word-stream
 * FIFO, emitting its records.  The word FIFO carries the records of
 * each word contiguously; @p records_per_word of them form one word.
 */
template <typename RecordT>
class Unpacker : public sim::Component
{
  public:
    Unpacker(std::string name, unsigned records_per_word,
             sim::Fifo<RecordT> &in, sim::Fifo<RecordT> &out)
        : Component(std::move(name)),
          recordsPerWord_(records_per_word), in_(in), out_(out)
    {
        BONSAI_REQUIRE(records_per_word >= 1,
                       "a word carries at least one record");
    }

    void
    tick(sim::Cycle) override
    {
        // One word per cycle, and only when the whole word fits.
        if (out_.freeSpace() < recordsPerWord_)
            return;
        for (unsigned i = 0; i < recordsPerWord_; ++i) {
            if (in_.empty())
                return;
            out_.push(in_.pop());
            ++recordsMoved_;
        }
        ++wordsMoved_;
    }

    /** Needs room for a whole word downstream and data upstream. */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        return out_.freeSpace() >= recordsPerWord_ && !in_.empty()
            ? now
            : sim::kNeverWake;
    }

    std::uint64_t wordsMoved() const { return wordsMoved_; }
    std::uint64_t recordsMoved() const { return recordsMoved_; }

  private:
    const unsigned recordsPerWord_;
    sim::Fifo<RecordT> &in_;
    sim::Fifo<RecordT> &out_;
    std::uint64_t wordsMoved_ = 0;
    std::uint64_t recordsMoved_ = 0;
};

/**
 * Packer: concatenates tree-output records into 512-bit words, one
 * word per cycle.  A terminal record flushes the partial word (the
 * run boundary must not straddle words on the way to DRAM) and is
 * forwarded so the writer can record the boundary.
 */
template <typename RecordT>
class Packer : public sim::Component
{
  public:
    Packer(std::string name, unsigned records_per_word,
           sim::Fifo<RecordT> &in, sim::Fifo<RecordT> &out)
        : Component(std::move(name)),
          recordsPerWord_(records_per_word), in_(in), out_(out)
    {
        BONSAI_REQUIRE(records_per_word >= 1,
                       "a word carries at least one record");
    }

    void
    tick(sim::Cycle) override
    {
        if (out_.freeSpace() < recordsPerWord_ + 1)
            return;
        // Fill the current word; a word may take several cycles to
        // fill when the tree output is slower than one word/cycle.
        while (fill_ < recordsPerWord_ && !in_.empty()) {
            const RecordT r = in_.pop();
            if (r.isTerminal()) {
                // Flush the partial word and emit the boundary.
                out_.push(r);
                if (fill_ > 0)
                    ++wordsMoved_; // padded partial word
                fill_ = 0;
                ++flushes_;
                return;
            }
            out_.push(r);
            ++recordsMoved_;
            ++fill_;
        }
        if (fill_ == recordsPerWord_) {
            ++wordsMoved_;
            fill_ = 0;
        }
    }

    std::uint64_t wordsMoved() const { return wordsMoved_; }
    std::uint64_t recordsMoved() const { return recordsMoved_; }
    std::uint64_t flushes() const { return flushes_; }

    bool quiescent() const override { return fill_ == 0; }

    /** fill_ < recordsPerWord_ holds between ticks, so the tick is a
     *  no-op exactly when input is dry or the word + a potential
     *  boundary marker cannot fit downstream. */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        return out_.freeSpace() >= recordsPerWord_ + 1 && !in_.empty()
            ? now
            : sim::kNeverWake;
    }

  private:
    const unsigned recordsPerWord_;
    sim::Fifo<RecordT> &in_;
    sim::Fifo<RecordT> &out_;
    std::uint64_t wordsMoved_ = 0;
    std::uint64_t recordsMoved_ = 0;
    std::uint64_t flushes_ = 0;
    unsigned fill_ = 0;
};

} // namespace bonsai::hw

#endif // BONSAI_HW_PACKER_HPP
