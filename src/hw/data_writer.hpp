/**
 * @file
 * Data writer: drains the AMT root, strips terminal records (the
 * zero-filter role, Section V-B), records output run boundaries, and
 * writes batched sequential stores through the memory timing model so
 * write bandwidth is accounted like read bandwidth.
 */

#ifndef BONSAI_HW_DATA_WRITER_HPP
#define BONSAI_HW_DATA_WRITER_HPP

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "mem/timing.hpp"
#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::hw
{

template <typename RecordT>
class DataWriter : public sim::Component
{
  public:
    /**
     * @param in Root output FIFO (runs separated by terminals).
     * @param dest Stage output buffer (records land here immediately;
     *             timing is modeled by the write tickets).
     * @param width Records consumed per cycle (= tree throughput p).
     * @param expected_records Total data records this stage produces.
     * @param expected_runs Total runs (terminals) this stage produces.
     * @param batch_records Write batch size in records.
     */
    DataWriter(std::string name, sim::Fifo<RecordT> &in,
               std::span<RecordT> dest, mem::MemoryTiming &memory,
               unsigned width, std::uint64_t expected_records,
               std::uint64_t expected_runs, std::uint64_t batch_records,
               std::uint64_t base_addr, std::uint64_t record_bytes)
        : Component(std::move(name)), in_(in), dest_(dest),
          memory_(memory), width_(width),
          expectedRecords_(expected_records),
          expectedRuns_(expected_runs), batchRecords_(batch_records),
          baseAddr_(base_addr), recordBytes_(record_bytes)
    {
        BONSAI_REQUIRE(dest.size() >= expected_records,
                       "destination buffer smaller than the stage "
                       "output");
        runs_.push_back(RunSpan{0, 0});
    }

    void
    tick(sim::Cycle) override
    {
        retireTickets();
        consume();
        maybeFlushBatch(false);
    }

    /** All records and run terminals seen, all writes retired. */
    bool
    finished()
    {
        if (written_ == expectedRecords_ && runsSeen_ == expectedRuns_) {
            maybeFlushBatch(true);
            retireTickets();
            return tickets_.empty();
        }
        return false;
    }

    bool quiescent() const override { return tickets_.empty(); }

    /**
     * Wake hint: active when input records can be consumed (write
     * port not saturated) or the oldest outstanding write completed;
     * otherwise the next self-timed event is that write's completion
     * bound.  batchFill_ < batchRecords_ holds between ticks (full
     * batches flush inside consume()), so the trailing
     * maybeFlushBatch(false) is never the reason to wake.
     */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        if (!in_.empty() && tickets_.size() < kMaxOutstanding)
            return now;
        if (!tickets_.empty()) {
            if (memory_.complete(tickets_.front()))
                return now;
            const sim::Cycle wake =
                memory_.completionCycle(tickets_.front());
            return wake <= now ? now : wake;
        }
        return sim::kNeverWake;
    }

    /** Output run boundaries, valid once finished(). */
    const std::vector<RunSpan> &
    runs() const
    {
        return runs_;
    }

    std::uint64_t recordsWritten() const { return written_; }

  private:
    void
    retireTickets()
    {
        while (!tickets_.empty() && memory_.complete(tickets_.front()))
            tickets_.pop_front();
    }

    void
    consume()
    {
        for (unsigned i = 0; i < width_; ++i) {
            if (in_.empty())
                return;
            if (tickets_.size() >= kMaxOutstanding)
                return; // write port saturated: back-pressure the tree
            RecordT r = in_.pop();
            if (r.isTerminal()) {
                ++runsSeen_;
                // Start the next run unless the stream is finished.
                if (runsSeen_ < expectedRuns_)
                    runs_.push_back(RunSpan{written_, 0});
                continue;
            }
            BONSAI_INVARIANT(written_ < expectedRecords_,
                             "tree delivered more records than the "
                             "stage plan promised");
            dest_[written_] = r;
            ++written_;
            ++runs_.back().length;
            ++batchFill_;
            if (batchFill_ >= batchRecords_)
                maybeFlushBatch(true);
        }
    }

    void
    maybeFlushBatch(bool force)
    {
        if (batchFill_ == 0)
            return;
        if (!force && batchFill_ < batchRecords_)
            return;
        tickets_.push_back(memory_.requestWrite(
            baseAddr_ + (written_ - batchFill_) * recordBytes_,
            batchFill_ * recordBytes_));
        batchFill_ = 0;
    }

    static constexpr std::size_t kMaxOutstanding = 16;

    sim::Fifo<RecordT> &in_;
    std::span<RecordT> dest_;
    mem::MemoryTiming &memory_;
    const unsigned width_;
    const std::uint64_t expectedRecords_;
    const std::uint64_t expectedRuns_;
    const std::uint64_t batchRecords_;
    const std::uint64_t baseAddr_;
    const std::uint64_t recordBytes_;

    std::vector<RunSpan> runs_;
    std::deque<mem::MemoryTiming::Ticket> tickets_;
    std::uint64_t written_ = 0;
    std::uint64_t runsSeen_ = 0;
    std::uint64_t batchFill_ = 0;
};

} // namespace bonsai::hw

#endif // BONSAI_HW_DATA_WRITER_HPP
