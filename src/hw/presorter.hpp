/**
 * @file
 * Presorter: a w-record bitonic sorting network that turns the unsorted
 * input stream into w-record sorted runs before the first merge stage
 * (paper Section VI-C1; w = 16 in the DRAM sorter).  Saves one merge
 * stage and 10-20% of total sort time.
 *
 * The end-to-end simulator applies presorting inside the data loader
 * (where the stream forms); this standalone component exists for unit
 * tests and mirrors the hardware block for resource accounting.
 */

#ifndef BONSAI_HW_PRESORTER_HPP
#define BONSAI_HW_PRESORTER_HPP

#include <algorithm>
#include <string>
#include <vector>

#include "common/contract.hpp"

#include "hw/bitonic.hpp"
#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::hw
{

template <typename RecordT>
class Presorter : public sim::Component
{
  public:
    /**
     * @param width Records consumed/produced per cycle.
     * @param chunk Run size formed (power of two, e.g. 16).
     * @param append_terminals Emit a terminal after each chunk.
     */
    Presorter(std::string name, unsigned width, unsigned chunk,
              sim::Fifo<RecordT> &in, sim::Fifo<RecordT> &out,
              bool append_terminals = true)
        : Component(std::move(name)), width_(width), chunk_(chunk),
          in_(in), out_(out), appendTerminals_(append_terminals)
    {
        BONSAI_REQUIRE(isPow2(chunk),
                       "presort chunk must be a power of two");
        pending_.reserve(chunk);
    }

    void
    tick(sim::Cycle) override
    {
        for (unsigned i = 0; i < width_; ++i) {
            // Emit staged sorted output first (same-rate pipeline).
            if (!staged_.empty()) {
                if (out_.full())
                    return;
                out_.push(staged_.front());
                staged_.erase(staged_.begin());
                continue;
            }
            if (in_.empty())
                return;
            pending_.push_back(in_.pop());
            if (pending_.size() == chunk_)
                flushChunk();
        }
    }

    /** Sort and stage whatever is pending (for stream tails). */
    void
    flushTail()
    {
        if (!pending_.empty())
            flushChunk();
    }

    bool
    quiescent() const override
    {
        return pending_.empty() && staged_.empty();
    }

    /** Active when staged output can drain or fresh input can be
     *  consumed; otherwise only external traffic wakes it. */
    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        if (!staged_.empty())
            return out_.full() ? sim::kNeverWake : now;
        return in_.empty() ? sim::kNeverWake : now;
    }

  private:
    void
    flushChunk()
    {
        if (isPow2(pending_.size())) {
            bitonicSortNetwork(std::span<RecordT>(pending_));
        } else {
            std::sort(pending_.begin(), pending_.end());
        }
        staged_.insert(staged_.end(), pending_.begin(), pending_.end());
        if (appendTerminals_)
            staged_.push_back(RecordT::terminal());
        pending_.clear();
    }

    const unsigned width_;
    const unsigned chunk_;
    sim::Fifo<RecordT> &in_;
    sim::Fifo<RecordT> &out_;
    const bool appendTerminals_;

    std::vector<RecordT> pending_;
    std::vector<RecordT> staged_;
};

} // namespace bonsai::hw

#endif // BONSAI_HW_PRESORTER_HPP
