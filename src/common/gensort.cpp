#include "common/gensort.hpp"

#include "common/random.hpp"

namespace bonsai
{

std::uint64_t
hash48(const std::uint8_t *data, std::size_t len)
{
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001B3ULL;
    }
    return h & 0xFFFFFFFFFFFFULL;
}

std::vector<GensortRecord>
GensortGenerator::generate(std::uint64_t first, std::uint64_t count) const
{
    std::vector<GensortRecord> out(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        GensortRecord &rec = out[i];
        // Each record gets its own stream so generation is
        // position-independent (gensort's skip-ahead property).
        SplitMix64 rng(seed_ ^ (first + i) * 0x9E3779B97F4A7C15ULL);
        for (std::size_t b = 0; b < GensortRecord::kKeyBytes; ++b)
            rec.bytes[b] = static_cast<std::uint8_t>(rng.next() >> 56);
        if (rec.bytes[0] == 0)
            rec.bytes[0] = 1; // keep packed record distinct from terminal
        // Value: 8-byte record number, then generator bytes.
        std::uint64_t idx = first + i;
        for (std::size_t b = 0; b < 8; ++b) {
            rec.bytes[GensortRecord::kKeyBytes + b] =
                static_cast<std::uint8_t>(idx >> (8 * (7 - b)));
        }
        for (std::size_t b = GensortRecord::kKeyBytes + 8;
             b < GensortRecord::kBytes; ++b) {
            rec.bytes[b] = static_cast<std::uint8_t>(rng.next() >> 56);
        }
    }
    return out;
}

Record128
packGensort(const GensortRecord &rec)
{
    Record128 r;
    for (std::size_t b = 0; b < 8; ++b)
        r.keyHi = (r.keyHi << 8) | rec.bytes[b];
    r.keyLo = (static_cast<std::uint64_t>(rec.bytes[8]) << 8) |
        rec.bytes[9];
    r.value = hash48(rec.bytes.data() + GensortRecord::kKeyBytes,
                     GensortRecord::kValueBytes);
    return r;
}

void
ValsortAccumulator::feed(const GensortRecord *recs, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        const GensortRecord &rec = recs[i];
        std::uint64_t rec_sum = 0;
        for (std::uint8_t b : rec.bytes)
            rec_sum = rec_sum * 31 + b;
        summary_.checksum += rec_sum;
        ++summary_.records;
        if (havePrev_) {
            if (rec < prev_ && summary_.sorted) {
                summary_.sorted = false;
                summary_.unorderedAt = summary_.records;
            }
            if (!(prev_ < rec) && !(rec < prev_))
                ++summary_.duplicateKeys;
        }
        prev_ = rec;
        havePrev_ = true;
    }
}

ValsortSummary
valsortSummary(const std::vector<GensortRecord> &recs)
{
    ValsortAccumulator acc;
    acc.feed(recs.data(), recs.size());
    return acc.summary();
}

std::vector<Record128>
packGensort(const std::vector<GensortRecord> &recs)
{
    std::vector<Record128> out;
    out.reserve(recs.size());
    for (const GensortRecord &rec : recs)
        out.push_back(packGensort(rec));
    return out;
}

} // namespace bonsai
