/**
 * @file
 * gensort-compatible workload generator (Jim Gray sort benchmark).
 *
 * The paper benchmarks 100-byte records (10-byte key, 90-byte value)
 * produced by gensort, then hashes the 90-byte value down to a 6-byte
 * index so that a (10-byte key, 6-byte value) pair fits a 16-byte AMT
 * record (Section VI-A).  We reproduce that flow: generate 100-byte
 * records, hash the payload to 48 bits, and pack into Record128
 * (80-bit key in two limbs, 48-bit value).
 */

#ifndef BONSAI_COMMON_GENSORT_HPP
#define BONSAI_COMMON_GENSORT_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/record.hpp"

namespace bonsai
{

/** One 100-byte sort-benchmark record: 10-byte key, 90-byte value. */
struct GensortRecord
{
    static constexpr std::size_t kKeyBytes = 10;
    static constexpr std::size_t kValueBytes = 90;
    static constexpr std::size_t kBytes = kKeyBytes + kValueBytes;

    std::array<std::uint8_t, kBytes> bytes{};

    /** Lexicographic key comparison, as valsort does. */
    friend bool
    operator<(const GensortRecord &a, const GensortRecord &b)
    {
        for (std::size_t i = 0; i < kKeyBytes; ++i) {
            if (a.bytes[i] != b.bytes[i])
                return a.bytes[i] < b.bytes[i];
        }
        return false;
    }

    /** The reserved all-zero record (Section V-B flush sentinel) —
     *  lets 100-byte records flow through the streaming sorter, whose
     *  boundary rejects terminals in user data. */
    bool
    isTerminal() const
    {
        for (const std::uint8_t b : bytes) {
            if (b != 0)
                return false;
        }
        return true;
    }
};

/** FNV-1a hash of a byte range, truncated to 48 bits (the paper's
 *  90-byte-value to 6-byte-index reduction). */
std::uint64_t hash48(const std::uint8_t *data, std::size_t len);

/**
 * Deterministic generator of gensort-style records.  Keys are uniform
 * random bytes (never all-zero, so the packed record is never the
 * reserved terminal); values embed the record index followed by
 * generator output, mimicking gensort's binary mode.
 */
class GensortGenerator
{
  public:
    explicit GensortGenerator(std::uint64_t seed) : seed_(seed) {}

    /** Generate records [first, first + count). */
    std::vector<GensortRecord> generate(std::uint64_t first,
                                        std::uint64_t count) const;

  private:
    std::uint64_t seed_;
};

/**
 * Pack a 100-byte record into the 16-byte AMT record: 80-bit key split
 * into keyHi (first 8 bytes, big-endian) and keyLo (last 2 key bytes),
 * value = 48-bit payload hash.  Ordering of packed records equals
 * lexicographic ordering of the original 10-byte keys.
 */
Record128 packGensort(const GensortRecord &rec);

/** Pack a whole vector. */
std::vector<Record128> packGensort(const std::vector<GensortRecord> &recs);

/**
 * valsort-style output summary: record count, order check, duplicate
 * count, and an order-independent checksum over all record bytes (so a
 * sorted output can be validated against the input's summary).
 */
struct ValsortSummary
{
    std::uint64_t records = 0;
    std::uint64_t checksum = 0;     ///< sum of per-record byte sums
    std::uint64_t duplicateKeys = 0; ///< adjacent equal keys (sorted)
    std::uint64_t unorderedAt = 0;  ///< first out-of-order index + 1
    bool sorted = true;
};

/** Compute the summary of @p recs (duplicates meaningful if sorted). */
ValsortSummary valsortSummary(const std::vector<GensortRecord> &recs);

/**
 * Incremental valsort computation: feed record batches in file order
 * and read the summary at any point.  The order and duplicate checks
 * only ever compare adjacent records, so one carried record is all
 * the state a whole-file validation needs — a validator can stream
 * through a bounded batch buffer instead of materializing the file.
 */
class ValsortAccumulator
{
  public:
    /** Fold the next @p count records (in file order) in. */
    void feed(const GensortRecord *recs, std::uint64_t count);

    /** Summary over everything fed so far. */
    const ValsortSummary &summary() const { return summary_; }

  private:
    ValsortSummary summary_;
    GensortRecord prev_; ///< last record of the previous feed()
    bool havePrev_ = false;
};

} // namespace bonsai

#endif // BONSAI_COMMON_GENSORT_HPP
