/**
 * @file
 * Persistent work-stealing thread pool for the software sorters.
 *
 * The behavioral sorter used to spawn and join a fresh std::thread set
 * for every merge stage; this pool replaces that churn with workers
 * that persist across all stages of a sort.  Work is published as a
 * *parallel-for job*: a task count plus a task function.  Workers (and
 * the submitting thread, which always participates) steal the next
 * unclaimed task index from the shared index space with a single
 * atomic fetch-add, so load balances dynamically no matter how uneven
 * the individual tasks are — the scheme FLiMS/Merge Path style slice
 * decomposition relies on to keep every core busy through both the
 * many-small-group early stages and the single-group final stage.
 *
 * Guarantees:
 *  - every index in [0, count) is executed exactly once;
 *  - parallelFor() returns only after all indices have finished AND
 *    every worker that observed the job has left the claiming loop
 *    (the active_ count below) — so a worker preempted between
 *    reading the job and its first claim can never claim indices of
 *    a later job or run a retired job's function;
 *  - a pool with threads() == 1 runs jobs inline with zero overhead
 *    (no workers are spawned);
 *  - jobs are data-race-free: claiming is a single acq_rel fetch-add
 *    and completion is released through the job mutex/condition
 *    variable — checked dynamically by TSan and statically by Clang's
 *    -Wthread-safety over the common/sync.hpp annotations (every
 *    job-state member is BONSAI_GUARDED_BY the pool mutex).
 *
 * Jobs must not themselves call parallelFor on the same pool (no
 * nested parallelism); the sorter flattens group x slice work into one
 * task list per stage instead.  Lock discipline: the pool mutex is a
 * leaf lock — parallelFor and the worker loop never hold it while
 * running user tasks (see docs/ARCHITECTURE.md).
 */

#ifndef BONSAI_COMMON_THREAD_POOL_HPP
#define BONSAI_COMMON_THREAD_POOL_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/contract.hpp"
#include "common/sync.hpp"

namespace bonsai
{

class ThreadPool
{
  public:
    /** Execution width to use when the caller doesn't care: the
     *  hardware concurrency, with a small fallback when unknown. */
    static unsigned
    defaultThreads()
    {
        const unsigned hc = std::thread::hardware_concurrency();
        return hc == 0 ? 4 : hc;
    }

    /**
     * @param threads Total execution width, including the thread that
     *        calls parallelFor(); the pool spawns threads-1 workers.
     *        0 is treated as 1 (fully inline).
     */
    explicit ThreadPool(unsigned threads)
        : width_(threads == 0 ? 1 : threads)
    {
        workers_.reserve(width_ - 1);
        for (unsigned t = 0; t + 1 < width_; ++t)
            workers_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            ScopedLock lock(mutex_);
            stop_ = true;
        }
        wake_.notifyAll();
        for (std::thread &worker : workers_)
            worker.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution width (worker count + the participating caller). */
    unsigned threads() const { return width_; }

    /**
     * Run @p fn(i) for every i in [0, count); blocks until all tasks
     * are done.  The caller participates, so the pool makes progress
     * even with zero workers.
     */
    void
    parallelFor(std::uint64_t count,
                const std::function<void(std::uint64_t)> &fn)
        BONSAI_EXCLUDES(mutex_)
    {
        if (count == 0)
            return;
        if (width_ == 1 || count == 1) {
            for (std::uint64_t i = 0; i < count; ++i)
                fn(i);
            return;
        }
        {
            ScopedLock lock(mutex_);
            fn_ = &fn;
            count_ = count;
            next_.store(0, std::memory_order_relaxed);
            pending_ = count;
            ++generation_;
        }
        wake_.notifyAll();
        runTasks(fn, count);
        {
            ScopedLock lock(mutex_);
            // Wait for all indices to finish AND all workers to leave
            // runTasks.  pending_ == 0 alone is not enough: a worker
            // that read this job but was preempted before its first
            // claim would otherwise survive into the next job's index
            // space, running this (by then dangling) fn against the
            // next job's indices.
            while (pending_ != 0 || active_ != 0)
                done_.wait(mutex_);
            fn_ = nullptr; // job retired; workers are back to waiting
        }
        BONSAI_ENSURE(next_.load(std::memory_order_relaxed) >= count,
                      "every task index must have been claimed");
    }

  private:
    /** Steal and run task indices until the index space is empty. */
    void
    runTasks(const std::function<void(std::uint64_t)> &fn,
             std::uint64_t count) BONSAI_EXCLUDES(mutex_)
    {
        std::uint64_t finished = 0;
        for (;;) {
            const std::uint64_t i =
                next_.fetch_add(1, std::memory_order_acq_rel);
            if (i >= count)
                break;
            fn(i);
            ++finished;
        }
        if (finished == 0)
            return;
        ScopedLock lock(mutex_);
        pending_ -= finished;
        if (pending_ == 0 && active_ == 0)
            done_.notifyAll();
    }

    void
    workerLoop() BONSAI_EXCLUDES(mutex_)
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::uint64_t)> *fn = nullptr;
            std::uint64_t count = 0;
            {
                ScopedLock lock(mutex_);
                while (!stop_ && !(generation_ != seen && fn_))
                    wake_.wait(mutex_);
                if (stop_)
                    return;
                seen = generation_;
                fn = fn_;
                count = count_;
                ++active_; // in runTasks from the caller's viewpoint
            }
            runTasks(*fn, count);
            {
                ScopedLock lock(mutex_);
                --active_;
                if (pending_ == 0 && active_ == 0)
                    done_.notifyAll();
            }
        }
    }

    const unsigned width_;
    std::vector<std::thread> workers_;

    Mutex mutex_;
    CondVar wake_; ///< job published / shutdown
    CondVar done_; ///< all tasks of the job finished
    const std::function<void(std::uint64_t)> *fn_
        BONSAI_GUARDED_BY(mutex_) = nullptr;
    std::uint64_t count_ BONSAI_GUARDED_BY(mutex_) = 0;
    std::uint64_t pending_ BONSAI_GUARDED_BY(mutex_) = 0;
    /** Workers currently inside runTasks. */
    std::uint64_t active_ BONSAI_GUARDED_BY(mutex_) = 0;
    std::uint64_t generation_ BONSAI_GUARDED_BY(mutex_) = 0;
    std::atomic<std::uint64_t> next_{0}; ///< shared task index space
    bool stop_ BONSAI_GUARDED_BY(mutex_) = false;
};

/**
 * One persistent background thread executing posted closures in FIFO
 * order — the I/O side of the streaming sorter's double buffering.
 * The out-of-core engine (sorter/external.hpp) posts spill writes and
 * run prefetches here so storage traffic overlaps merge compute on
 * the submitting thread; completion of an individual task is signaled
 * through state owned by the closure itself (see io::TaskGate).
 *
 * Tasks should not throw: an escaped exception is captured and
 * rethrown from the next drain() call (the destructor discards it),
 * but any completion signal the task was supposed to raise is lost —
 * closures that gate a waiter must catch and forward errors through
 * the gate instead.
 *
 * Shutdown contract: the destructor runs every task still queued
 * before joining (tasks are never dropped), then discards any trapped
 * error; call drain() first when errors must surface.
 */
class BackgroundWorker
{
  public:
    BackgroundWorker() : thread_([this] { loop(); }) {}

    ~BackgroundWorker()
    {
        {
            ScopedLock lock(mutex_);
            stop_ = true;
        }
        wake_.notifyAll();
        thread_.join();
    }

    BackgroundWorker(const BackgroundWorker &) = delete;
    BackgroundWorker &operator=(const BackgroundWorker &) = delete;

    /** Enqueue @p task; runs after everything posted before it. */
    void
    post(std::function<void()> task) BONSAI_EXCLUDES(mutex_)
    {
        {
            ScopedLock lock(mutex_);
            BONSAI_REQUIRE(!stop_, "post to a stopped BackgroundWorker");
            queue_.push_back(std::move(task));
        }
        wake_.notifyAll();
    }

    /** Block until the queue is empty and the worker is idle, then
     *  rethrow the first exception any task leaked (if any). */
    void
    drain() BONSAI_EXCLUDES(mutex_)
    {
        std::exception_ptr err;
        {
            ScopedLock lock(mutex_);
            while (!queue_.empty() || busy_)
                idle_.wait(mutex_);
            err = error_;
            error_ = nullptr;
        }
        if (err)
            std::rethrow_exception(err);
    }

  private:
    void
    loop() BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        for (;;) {
            while (!stop_ && queue_.empty())
                wake_.wait(mutex_);
            if (queue_.empty()) // stop_ and nothing left to run
                return;
            std::function<void()> task = std::move(queue_.front());
            queue_.pop_front();
            busy_ = true;
            lock.unlock();
            try {
                task();
            } catch (...) {
                lock.lock();
                if (!error_)
                    error_ = std::current_exception();
                lock.unlock();
            }
            lock.lock();
            busy_ = false;
            if (queue_.empty())
                idle_.notifyAll();
        }
    }

    Mutex mutex_;
    CondVar wake_; ///< task posted / shutdown
    CondVar idle_; ///< queue empty and worker idle
    std::deque<std::function<void()>> queue_ BONSAI_GUARDED_BY(mutex_);
    std::exception_ptr error_ BONSAI_GUARDED_BY(mutex_);
    bool busy_ BONSAI_GUARDED_BY(mutex_) = false;
    bool stop_ BONSAI_GUARDED_BY(mutex_) = false;
    std::thread thread_; ///< last member: starts after state is ready
};

} // namespace bonsai

#endif // BONSAI_COMMON_THREAD_POOL_HPP
