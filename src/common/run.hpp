/**
 * @file
 * Sorted-run bookkeeping shared by the data loader, writer and the
 * stage planners: a run is a contiguous, ascending-sorted region of a
 * memory buffer, identified by record offset and length.
 */

#ifndef BONSAI_COMMON_RUN_HPP
#define BONSAI_COMMON_RUN_HPP

#include <cstdint>
#include <vector>

namespace bonsai
{

/** A contiguous sorted run inside a record buffer. */
struct RunSpan
{
    std::uint64_t offset = 0; ///< first record index
    std::uint64_t length = 0; ///< number of records (0 = empty run)

    friend bool operator==(const RunSpan &, const RunSpan &) = default;
};

/**
 * Split @p total records into @p count runs of @p run_length (the last
 * one possibly shorter).  Used to describe stage-one inputs.
 */
inline std::vector<RunSpan>
chunkRuns(std::uint64_t total, std::uint64_t run_length)
{
    std::vector<RunSpan> runs;
    for (std::uint64_t off = 0; off < total; off += run_length) {
        runs.push_back({off, std::min(run_length, total - off)});
    }
    if (runs.empty())
        runs.push_back({0, 0});
    return runs;
}

} // namespace bonsai

#endif // BONSAI_COMMON_RUN_HPP
