#include "common/random.hpp"

#include <algorithm>

namespace bonsai
{

std::vector<Record>
makeRecords(std::size_t n, Distribution dist, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Record> out(n);
    switch (dist) {
      case Distribution::UniformRandom:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = Record{rng.next() | 1ULL, i};
        break;
      case Distribution::Sorted:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = Record{i + 1, i};
        break;
      case Distribution::Reverse:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = Record{n - i, i};
        break;
      case Distribution::AllEqual:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = Record{7, i};
        break;
      case Distribution::FewDistinct:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = Record{1 + rng.nextBounded(16), i};
        break;
      case Distribution::NearlySorted:
        for (std::size_t i = 0; i < n; ++i)
            out[i] = Record{i + 1, i};
        for (std::size_t s = 0; s < n / 100; ++s) {
            std::size_t a = rng.nextBounded(n);
            std::size_t b = rng.nextBounded(n);
            std::swap(out[a].key, out[b].key);
        }
        break;
    }
    return out;
}

std::vector<Record128>
makeRecords128(std::size_t n, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Record128> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = Record128{rng.next(), rng.next() | 1ULL, i};
    return out;
}

} // namespace bonsai
