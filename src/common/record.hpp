/**
 * @file
 * Record types flowing through the merge-tree datapath.
 *
 * The paper's AMT moves fixed-width records (32-bit integers in most
 * experiments, 16-byte key/value pairs for the gensort benchmark, and up
 * to 512-bit records in general).  The simulator represents a record as a
 * 64-bit key plus a 64-bit value; the *modeled* record width in bytes is
 * an independent model parameter (ArrayParams::record_width), so the same
 * simulated datapath can stand in for any width up to 512 bits.
 *
 * Following the paper (Section V-B), one reserved "terminal" record is fed
 * between adjacent sorted runs to flush merger state in a single cycle.
 * The paper reserves the value zero; we do the same: the all-zero record
 * is the terminal record and must not appear in user data (the bundled
 * generators never produce it).
 */

#ifndef BONSAI_COMMON_RECORD_HPP
#define BONSAI_COMMON_RECORD_HPP

#include <array>
#include <compare>
#include <cstdint>
#include <ostream>

namespace bonsai
{

/**
 * A 16-byte key/value record.  Ordering compares the key only; the value
 * is an opaque payload (e.g. the 6-byte hashed gensort payload).
 */
struct Record
{
    std::uint64_t key = 0;
    std::uint64_t value = 0;

    /** The reserved run-separator record (paper Section V-B). */
    static constexpr Record
    terminal()
    {
        return Record{0, 0};
    }

    /** True iff this is the reserved terminal record. */
    constexpr bool isTerminal() const { return key == 0 && value == 0; }

    friend constexpr bool
    operator==(const Record &a, const Record &b)
    {
        return a.key == b.key && a.value == b.value;
    }

    /** Key-only ordering, as in the hardware compare-and-exchange units. */
    friend constexpr bool
    operator<(const Record &a, const Record &b)
    {
        return a.key < b.key;
    }

    friend constexpr bool
    operator<=(const Record &a, const Record &b)
    {
        return a.key <= b.key;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Record &r)
{
    return os << "{" << r.key << "," << r.value << "}";
}

/**
 * A record with a 128-bit key (two 64-bit limbs), used for the gensort
 * 10-byte-key path and the wide-record scalability experiments.
 */
struct Record128
{
    std::uint64_t keyHi = 0;
    std::uint64_t keyLo = 0;
    std::uint64_t value = 0;

    static constexpr Record128
    terminal()
    {
        return Record128{0, 0, 0};
    }

    constexpr bool
    isTerminal() const
    {
        return keyHi == 0 && keyLo == 0 && value == 0;
    }

    friend constexpr bool
    operator==(const Record128 &a, const Record128 &b)
    {
        return a.keyHi == b.keyHi && a.keyLo == b.keyLo &&
            a.value == b.value;
    }

    friend constexpr bool
    operator<(const Record128 &a, const Record128 &b)
    {
        if (a.keyHi != b.keyHi)
            return a.keyHi < b.keyHi;
        return a.keyLo < b.keyLo;
    }

    friend constexpr bool
    operator<=(const Record128 &a, const Record128 &b)
    {
        return !(b < a);
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Record128 &r)
{
    return os << "{" << r.keyHi << ":" << r.keyLo << "," << r.value << "}";
}

/**
 * A record with an arbitrary-width key (KeyWords x 64 bits), for the
 * paper's widest-record path: up to 512-bit records flow through the
 * parallel comparators unchanged, and "even wider records can be
 * implemented by using bit-serial comparators" (Section II) — the
 * performance model charges those a serialization factor
 * (model::serialFactor).
 */
template <unsigned KeyWords>
struct WideRecord
{
    static_assert(KeyWords >= 1);

    std::array<std::uint64_t, KeyWords> key{};
    std::uint64_t value = 0;

    static constexpr WideRecord
    terminal()
    {
        return WideRecord{};
    }

    constexpr bool
    isTerminal() const
    {
        for (std::uint64_t w : key) {
            if (w != 0)
                return false;
        }
        return value == 0;
    }

    friend constexpr bool
    operator==(const WideRecord &a, const WideRecord &b)
    {
        return a.key == b.key && a.value == b.value;
    }

    /** Lexicographic over the key words, most-significant first. */
    friend constexpr bool
    operator<(const WideRecord &a, const WideRecord &b)
    {
        for (unsigned w = 0; w < KeyWords; ++w) {
            if (a.key[w] != b.key[w])
                return a.key[w] < b.key[w];
        }
        return false;
    }

    friend constexpr bool
    operator<=(const WideRecord &a, const WideRecord &b)
    {
        return !(b < a);
    }
};

} // namespace bonsai

#endif // BONSAI_COMMON_RECORD_HPP
