/**
 * @file
 * Contract checking: preconditions, postconditions and invariants.
 *
 * The simulator's correctness rests on a web of stream contracts that
 * the code used to state only in comments ("the caller must have
 * checked freeSpace()").  These macros turn those sentences into
 * machine-checked claims:
 *
 *  - BONSAI_REQUIRE(cond, msg)   — precondition on the caller;
 *  - BONSAI_ENSURE(cond, msg)    — postcondition on the callee;
 *  - BONSAI_INVARIANT(cond, msg) — internal consistency of a data
 *    structure or algorithm step.
 *
 * A failed check throws bonsai::ContractViolation (a std::logic_error)
 * carrying the kind, the stringified expression, the source location
 * and the message, so a violation surfaces at the offending call
 * instead of as corrupt output megabytes later.
 *
 * Checked builds: the macros are compiled in when BONSAI_CHECKED is
 * nonzero.  By default that follows the build type (on unless NDEBUG,
 * i.e. on in Debug, off in Release); the CMake option -DBONSAI_CHECKED=ON
 * forces checking into optimized builds so the full test suite can run
 * under verification at speed.  When compiled out a check costs
 * nothing — the condition is not evaluated.
 */

#ifndef BONSAI_COMMON_CONTRACT_HPP
#define BONSAI_COMMON_CONTRACT_HPP

#include <stdexcept>
#include <string>

#if !defined(BONSAI_CHECKED)
#if defined(NDEBUG)
#define BONSAI_CHECKED 0
#else
#define BONSAI_CHECKED 1
#endif
#endif

namespace bonsai
{

/** Thrown when a BONSAI_REQUIRE / ENSURE / INVARIANT check fails. */
class ContractViolation : public std::logic_error
{
  public:
    ContractViolation(const char *kind, const char *expression,
                      const char *file, long line,
                      const std::string &message)
        : std::logic_error(std::string(kind) + " violated: " + message +
                           " [" + expression + "] at " + file + ":" +
                           std::to_string(line)),
          kind_(kind), expression_(expression), file_(file), line_(line)
    {
    }

    /** "precondition", "postcondition" or "invariant". */
    const char *kind() const { return kind_; }
    /** The stringified failing expression. */
    const char *expression() const { return expression_; }
    const char *file() const { return file_; }
    long line() const { return line_; }

  private:
    const char *kind_;
    const char *expression_;
    const char *file_;
    long line_;
};

namespace contracts
{

/** True when contract checks are compiled into this build. */
constexpr bool
enabled()
{
    return BONSAI_CHECKED != 0;
}

/** Throw a ContractViolation (out of line of the check macro). */
[[noreturn]] inline void
fail(const char *kind, const char *expression, const char *file,
     long line, const std::string &message)
{
    throw ContractViolation(kind, expression, file, line, message);
}

} // namespace contracts
} // namespace bonsai

#if BONSAI_CHECKED
#define BONSAI_CONTRACT_CHECK_(kind, cond, msg)                          \
    do {                                                                 \
        if (!(cond))                                                     \
            ::bonsai::contracts::fail(kind, #cond, __FILE__, __LINE__,   \
                                      msg);                              \
    } while (false)
#else
#define BONSAI_CONTRACT_CHECK_(kind, cond, msg)                          \
    do {                                                                 \
    } while (false)
#endif

/** Precondition: what the caller owes the callee. */
#define BONSAI_REQUIRE(cond, msg)                                        \
    BONSAI_CONTRACT_CHECK_("precondition", cond, msg)

/** Postcondition: what the callee owes the caller. */
#define BONSAI_ENSURE(cond, msg)                                         \
    BONSAI_CONTRACT_CHECK_("postcondition", cond, msg)

/** Internal consistency that must hold at this point. */
#define BONSAI_INVARIANT(cond, msg)                                      \
    BONSAI_CONTRACT_CHECK_("invariant", cond, msg)

#endif // BONSAI_COMMON_CONTRACT_HPP
