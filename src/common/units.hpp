/**
 * @file
 * Byte/size/time unit helpers.
 *
 * The paper quotes capacities and bandwidths in decimal units (GB, GB/s);
 * we follow that convention throughout so that model outputs line up with
 * the paper's numbers (e.g. a p=32 tree at 250 MHz on 4-byte records is
 * exactly 32 GB/s).
 */

#ifndef BONSAI_COMMON_UNITS_HPP
#define BONSAI_COMMON_UNITS_HPP

#include <cstdint>

namespace bonsai
{

inline constexpr std::uint64_t kKB = 1000ULL;
inline constexpr std::uint64_t kMB = 1000ULL * kKB;
inline constexpr std::uint64_t kGB = 1000ULL * kMB;
inline constexpr std::uint64_t kTB = 1000ULL * kGB;

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** Gigabytes (decimal) to bytes. */
constexpr std::uint64_t
gb(double n)
{
    return static_cast<std::uint64_t>(n * static_cast<double>(kGB));
}

/** Terabytes (decimal) to bytes. */
constexpr std::uint64_t
tb(double n)
{
    return static_cast<std::uint64_t>(n * static_cast<double>(kTB));
}

/** Bytes to (decimal) gigabytes. */
constexpr double
toGb(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / static_cast<double>(kGB);
}

/** Seconds to milliseconds. */
constexpr double
toMs(double seconds)
{
    return seconds * 1e3;
}

} // namespace bonsai

#endif // BONSAI_COMMON_UNITS_HPP
