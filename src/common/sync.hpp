/**
 * @file
 * Annotated synchronization layer: the one place raw std primitives
 * are allowed, wrapped as Clang thread-safety *capabilities*.
 *
 * Every mutex-holding type in the tree (ThreadPool, BackgroundWorker,
 * TaskGate, BufferPool, LaneLeases, ...) declares its lock as a
 * bonsai::Mutex, its guarded members with BONSAI_GUARDED_BY, and its
 * locking methods with BONSAI_ACQUIRE / BONSAI_RELEASE /
 * BONSAI_REQUIRES / BONSAI_EXCLUDES.  Under Clang's -Wthread-safety
 * analysis (the `thread-safety` CI job builds with
 * -Wthread-safety -Wthread-safety-beta promoted to errors) that turns
 * the locking discipline from a runtime property TSan has to catch on
 * a lucky schedule into a structural property proven on every build:
 * unlocked access to a guarded member, double-acquire, releasing a
 * lock that is not held, waiting on a condition variable without its
 * mutex, and acquired_before order violations all *fail to compile*
 * (tests/static/ pins each diagnostic).  On non-Clang toolchains the
 * macros compile to nothing and the wrappers are zero-cost veneers
 * over the std primitives.
 *
 * Lock discipline (see docs/ARCHITECTURE.md, "Lock hierarchy & static
 * concurrency verification"): every lock in the tree is a *leaf* —
 * public entry points are annotated BONSAI_EXCLUDES(their mutex) and
 * no critical section acquires a second lock, so no cross-object
 * lock-order cycle can exist by construction.  Blocking *resource*
 * acquisition still has an order (thread pool -> lane lease -> buffer
 * pool -> task gate); the analyzer enforces intra-object edges
 * declared with BONSAI_ACQUIRED_BEFORE, and the hierarchy itself is
 * documented there.
 *
 * Style gate: scripts/check_style.py confines std::mutex,
 * std::condition_variable, std::lock_guard, std::unique_lock and
 * std::scoped_lock to this header, and requires every bonsai::Mutex
 * member elsewhere to sit adjacent to at least one BONSAI_GUARDED_BY
 * annotation.
 */

#ifndef BONSAI_COMMON_SYNC_HPP
#define BONSAI_COMMON_SYNC_HPP

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>

/*
 * Annotation macros.  Clang spells these as GNU attributes; other
 * compilers see empty token soup.  The names follow the "modern"
 * capability vocabulary of the Clang docs (capability / acquire /
 * release) rather than the legacy lockable / lock_function spelling.
 */
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BONSAI_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef BONSAI_THREAD_ANNOTATION_
#define BONSAI_THREAD_ANNOTATION_(x)
#endif

/** Type is a capability (a lock); diagnostics call it @p x. */
#define BONSAI_CAPABILITY(x) BONSAI_THREAD_ANNOTATION_(capability(x))

/** RAII type that acquires a capability for its own lifetime. */
#define BONSAI_SCOPED_CAPABILITY BONSAI_THREAD_ANNOTATION_(scoped_lockable)

/** Member readable/writable only while holding capability @p x. */
#define BONSAI_GUARDED_BY(x) BONSAI_THREAD_ANNOTATION_(guarded_by(x))

/** Pointee readable/writable only while holding capability @p x. */
#define BONSAI_PT_GUARDED_BY(x) BONSAI_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function acquires the capability (must not be held at the call). */
#define BONSAI_ACQUIRE(...)                                              \
    BONSAI_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function releases the capability (must be held at the call). */
#define BONSAI_RELEASE(...)                                              \
    BONSAI_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Caller must hold the capability across the call (e.g. CondVar
 *  wait, which releases and re-acquires it internally). */
#define BONSAI_REQUIRES(...)                                             \
    BONSAI_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Caller must NOT hold the capability: the leaf-lock discipline —
 *  annotating every public locking entry point with this is what
 *  makes self-deadlock (re-entry) a compile error. */
#define BONSAI_EXCLUDES(...)                                             \
    BONSAI_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Declares a lock-order edge: this capability is acquired before
 *  the listed ones; wrong-order acquisition is rejected under
 *  -Wthread-safety-beta. */
#define BONSAI_ACQUIRED_BEFORE(...)                                      \
    BONSAI_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

/** Reverse spelling of BONSAI_ACQUIRED_BEFORE. */
#define BONSAI_ACQUIRED_AFTER(...)                                       \
    BONSAI_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/** Function returns a reference to the capability guarding it. */
#define BONSAI_RETURN_CAPABILITY(x)                                      \
    BONSAI_THREAD_ANNOTATION_(lock_returned(x))

/** Escape hatch: body is not analyzed.  Used only inside this header,
 *  where the wrappers manipulate the raw std primitives that the
 *  analysis cannot see through; the interface attributes still hold
 *  for every caller. */
#define BONSAI_NO_THREAD_SAFETY_ANALYSIS                                 \
    BONSAI_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace bonsai
{

class CondVar;

/**
 * Annotated exclusive mutex — a std::mutex the analyzer can track.
 * Prefer ScopedLock over calling lock()/unlock() directly.
 */
class BONSAI_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() BONSAI_ACQUIRE() BONSAI_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.lock();
    }

    void unlock() BONSAI_RELEASE() BONSAI_NO_THREAD_SAFETY_ANALYSIS
    {
        raw_.unlock();
    }

  private:
    friend class CondVar;
    std::mutex raw_;
};

/**
 * RAII lock over a Mutex, relockable like std::unique_lock: lock()
 * and unlock() let a critical section open around a long operation
 * (the BackgroundWorker task loop) while the analyzer still checks
 * that every path re-establishes the expected lock state.
 */
class BONSAI_SCOPED_CAPABILITY ScopedLock
{
  public:
    explicit ScopedLock(Mutex &mutex)
        BONSAI_ACQUIRE(mutex) BONSAI_NO_THREAD_SAFETY_ANALYSIS
        : mutex_(mutex), held_(true)
    {
        mutex_.lock();
    }

    ~ScopedLock() BONSAI_RELEASE() BONSAI_NO_THREAD_SAFETY_ANALYSIS
    {
        if (held_)
            mutex_.unlock();
    }

    ScopedLock(const ScopedLock &) = delete;
    ScopedLock &operator=(const ScopedLock &) = delete;

    /** Re-acquire after unlock(). */
    void lock() BONSAI_ACQUIRE() BONSAI_NO_THREAD_SAFETY_ANALYSIS
    {
        mutex_.lock();
        held_ = true;
    }

    /** Release before the scope ends (the destructor then no-ops). */
    void unlock() BONSAI_RELEASE() BONSAI_NO_THREAD_SAFETY_ANALYSIS
    {
        mutex_.unlock();
        held_ = false;
    }

  private:
    Mutex &mutex_;
    bool held_;
};

/**
 * Condition variable bound to a Mutex at each wait.  wait() carries
 * BONSAI_REQUIRES(mutex): waiting without holding the mutex is a
 * compile error, not a lost-wakeup heisenbug.  Waits can wake
 * spuriously — callers always loop on their predicate:
 *
 *     ScopedLock lock(mutex_);
 *     while (!ready_)
 *         cv_.wait(mutex_);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically release @p mutex, sleep, re-acquire.  The caller
     *  must hold @p mutex (and, per the ScopedLock idiom above, holds
     *  it through a ScopedLock whose scope spans the wait). */
    void wait(Mutex &mutex)
        BONSAI_REQUIRES(mutex) BONSAI_NO_THREAD_SAFETY_ANALYSIS
    {
        std::unique_lock<std::mutex> relock(mutex.raw_,
                                            std::adopt_lock);
        cv_.wait(relock);
        relock.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

/**
 * First-error latch for parallel tasks.  ThreadPool::parallelFor
 * tasks must not throw (a leaked exception kills a pool worker), so
 * concurrent tasks trap the first failure here and the submitting
 * thread rethrows it after the join.
 *
 * The latch distinguishes *primary* failures (the task that broke)
 * from *secondary* ones observed while unwinding — a quiesce wait in
 * a destructor, a cleanup release that itself failed.  First error
 * wins: exactly one exception comes out of rethrowIfSet; everything
 * suppressed behind it is counted for telemetry instead of being
 * silently dropped.
 */
class ErrorTrap
{
  public:
    /** Record @p err if no earlier task already failed. */
    void
    store(std::exception_ptr err) BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        if (error_ && primary_) {
            ++secondary_; // an earlier failure won; count this one
            return;
        }
        if (error_)
            ++secondary_; // demote the held cleanup error
        error_ = err;
        primary_ = true;
    }

    /**
     * Record an error observed during cleanup/unwind.  Never displaces
     * a primary failure: if nothing failed yet the error is held (a
     * cleanup failure on an otherwise clean path still fails the
     * operation), otherwise it is only counted.
     */
    void
    storeSecondary(std::exception_ptr err) BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        if (error_) {
            ++secondary_;
            return;
        }
        error_ = err;
        primary_ = false;
    }

    /** Rethrow the trapped error, if any (consuming it). */
    void
    rethrowIfSet() BONSAI_EXCLUDES(mutex_)
    {
        std::exception_ptr err;
        {
            ScopedLock lock(mutex_);
            err = error_;
            error_ = nullptr;
            primary_ = false;
        }
        if (err)
            std::rethrow_exception(err);
    }

    /** Errors suppressed behind the winning one (telemetry). */
    std::uint64_t
    secondaryCount() const BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        return secondary_;
    }

  private:
    mutable Mutex mutex_;
    std::exception_ptr error_ BONSAI_GUARDED_BY(mutex_);
    bool primary_ BONSAI_GUARDED_BY(mutex_) = false;
    std::uint64_t secondary_ BONSAI_GUARDED_BY(mutex_) = 0;
};

} // namespace bonsai

#endif // BONSAI_COMMON_SYNC_HPP
