/**
 * @file
 * Deterministic pseudo-random generators and record-vector builders.
 *
 * All experiments use seeded generators so that every table/figure in the
 * benchmark harness is exactly reproducible run to run.
 */

#ifndef BONSAI_COMMON_RANDOM_HPP
#define BONSAI_COMMON_RANDOM_HPP

#include <cstdint>
#include <vector>

#include "common/record.hpp"

namespace bonsai
{

/**
 * SplitMix64 generator (Steele, Lea, Flood; JDK 8).  Small state, passes
 * BigCrush, ideal for seeding and bulk data generation.
 */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64-bit value. */
    constexpr std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). Requires bound > 0. */
    constexpr std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    constexpr double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state_;
};

/** Input distributions used by the test/benchmark workload generators. */
enum class Distribution
{
    UniformRandom,  ///< Uniform random keys (paper's main benchmark).
    Sorted,         ///< Already ascending.
    Reverse,        ///< Descending (worst case for adaptive sorts).
    AllEqual,       ///< Single repeated key (duplicate handling).
    FewDistinct,    ///< 16 distinct keys.
    NearlySorted,   ///< Sorted with 1% random swaps.
};

/**
 * Generate @p n records with the given key @p dist.  Keys are guaranteed
 * nonzero so the reserved terminal record never appears in user data;
 * values carry the original index (useful for permutation checks).
 */
std::vector<Record> makeRecords(std::size_t n, Distribution dist,
                                std::uint64_t seed = 42);

/** Generate @p n uniform-random 128-bit-key records (nonzero keys). */
std::vector<Record128> makeRecords128(std::size_t n,
                                      std::uint64_t seed = 42);

} // namespace bonsai

#endif // BONSAI_COMMON_RANDOM_HPP
