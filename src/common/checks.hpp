/**
 * @file
 * Output-validation helpers (the valsort side of the sort benchmark):
 * sortedness checks and order-independent fingerprints for permutation
 * checks at scales where keeping a copy is undesirable.
 */

#ifndef BONSAI_COMMON_CHECKS_HPP
#define BONSAI_COMMON_CHECKS_HPP

#include <cstdint>
#include <span>

#include "common/record.hpp"

namespace bonsai
{

/** True iff keys are non-decreasing. */
template <typename RecordT>
bool
isSorted(std::span<const RecordT> recs)
{
    for (std::size_t i = 1; i < recs.size(); ++i) {
        if (recs[i] < recs[i - 1])
            return false;
    }
    return true;
}

/**
 * Order-independent fingerprint of a record multiset.  Two vectors have
 * equal fingerprints iff (with overwhelming probability) one is a
 * permutation of the other.  Combines a sum and a xor of per-record
 * mixes so both insertion and substitution errors are caught.
 */
struct Fingerprint
{
    std::uint64_t sum = 0;
    std::uint64_t xorMix = 0;
    std::uint64_t count = 0;

    friend bool
    operator==(const Fingerprint &a, const Fingerprint &b) = default;
};

namespace detail
{

constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

constexpr std::uint64_t
mixRecord(const Record &r)
{
    return mix64(r.key ^ mix64(r.value));
}

constexpr std::uint64_t
mixRecord(const Record128 &r)
{
    return mix64(r.keyHi ^ mix64(r.keyLo ^ mix64(r.value)));
}

} // namespace detail

template <typename RecordT>
Fingerprint
fingerprint(std::span<const RecordT> recs)
{
    Fingerprint fp;
    for (const RecordT &r : recs) {
        std::uint64_t m = detail::mixRecord(r);
        fp.sum += m;
        fp.xorMix ^= m;
        ++fp.count;
    }
    return fp;
}

} // namespace bonsai

#endif // BONSAI_COMMON_CHECKS_HPP
