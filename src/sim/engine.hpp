/**
 * @file
 * Cycle-driven simulation engine.
 *
 * The engine owns nothing; it advances registered components in
 * registration order, one cycle at a time, until a user-supplied
 * completion predicate holds (or a cycle budget is exhausted, which is
 * reported as a deadlock/runaway error to the caller).
 *
 * Two execution strategies produce cycle-identical results:
 *
 *  - runReference(): the naive loop — tick every component every
 *    cycle, evaluate the predicate after every cycle.
 *  - run(): activity-driven.  Per cycle, each component's nextWake()
 *    hint is evaluated *in registration order, interleaved with
 *    ticking*, so a hint always sees exactly the state the naive tick
 *    would have seen; components hinting past the current cycle are
 *    credited via onIdleCycles() instead of ticked.  When every
 *    component is dormant (and completion sources are declared, see
 *    addCompletionSource()), the engine fast-forwards now_ to the
 *    minimum pending wake in one step, crediting the skipped span.
 *    The completion predicate is evaluated only on cycles where a
 *    completion source ticked (plus the first cycle of the run) —
 *    sound because a predicate's value can only change when one of
 *    its sources acts.
 *
 * With no completion sources declared, run() never fast-forwards and
 * evaluates the predicate every cycle (predicates with side effects,
 * e.g. tests that drain a FIFO inside the lambda, keep their exact
 * naive semantics); per-cycle skipping still applies and is exact by
 * the component contract (sim/component.hpp).
 */

#ifndef BONSAI_SIM_ENGINE_HPP
#define BONSAI_SIM_ENGINE_HPP

#include <algorithm>
#include <functional>
#include <vector>

#include "common/contract.hpp"
#include "sim/component.hpp"

namespace bonsai::sim
{

/** Which run loop a harness drives (see SimEngine::run /
 *  runReference).  Both produce identical results; FastForward skips
 *  provably idle cycles. */
enum class EngineMode
{
    FastForward,
    Reference,
};

class SimEngine
{
  public:
    /** Register a component; ticked in registration order. */
    void add(Component *c) { components_.push_back({c, false}); }

    /**
     * Declare an already-registered component as a *completion
     * source*: the completion predicate passed to run() may only
     * change value when one of the declared sources ticks (typically
     * the data writers).  Declaring at least one source enables
     * predicate gating and all-dormant fast-forwarding.
     */
    void
    addCompletionSource(Component *c)
    {
        for (Entry &e : components_) {
            if (e.component == c) {
                if (!e.source) {
                    e.source = true;
                    ++sources_;
                }
                return;
            }
        }
        BONSAI_REQUIRE(false,
                       "completion source must be registered first");
    }

    /** Current cycle count. */
    Cycle now() const { return now_; }

    /** Idle cycles skipped by fast-forward jumps so far. */
    Cycle idleCyclesSkipped() const { return idleSkipped_; }

    /** Result of a run() call. */
    struct RunResult
    {
        Cycle cycles = 0;      ///< Cycles elapsed during this run.
        bool finished = false; ///< Completion predicate became true.
    };

    /**
     * Advance components until @p finished returns true, skipping
     * cycles no component can act in (activity-driven; see file
     * comment for the equivalence argument).
     *
     * @param finished Completion predicate.  With completion sources
     *        declared it is evaluated after cycles where a source
     *        ticked (and after the first cycle); otherwise after
     *        every cycle, exactly like runReference().
     * @param max_cycles Budget; exceeding it returns finished = false
     *        with cycles == max_cycles (never overshoots, even when a
     *        fast-forward jump would cross the budget).
     */
    RunResult
    run(const std::function<bool()> &finished, Cycle max_cycles)
    {
        const Cycle start = now_;
        while (now_ - start < max_cycles) {
            bool any_active = false;
            bool source_active = (sources_ == 0) || (now_ == start);
            Cycle wake = kNeverWake;
            for (Entry &e : components_) {
                const Cycle w = e.component->nextWake(now_);
                if (w <= now_) {
                    e.component->tick(now_);
                    any_active = true;
                    source_active |= e.source;
                } else {
                    e.component->onIdleCycles(now_, 1);
                    wake = std::min(wake, w);
                }
            }
            ++now_;
            if (source_active && finished())
                return {now_ - start, true};
            if (any_active || sources_ == 0)
                continue;
            // Every component dormant and the predicate cannot change
            // until a source acts: jump to the earliest pending wake
            // (or burn the rest of the budget when nothing is
            // self-timed — the naive loop would idle to the budget
            // too).
            const Cycle horizon = start + max_cycles;
            const Cycle target =
                wake == kNeverWake ? horizon : std::min(wake, horizon);
            if (target > now_) {
                const Cycle span = target - now_;
                for (Entry &e : components_)
                    e.component->onIdleCycles(now_, span);
                idleSkipped_ += span;
                now_ = target;
            }
        }
        return {now_ - start, false};
    }

    /**
     * The naive loop: tick all components every cycle, evaluate the
     * predicate after each cycle.  Kept as the behavioural reference
     * for the fast-forward equivalence harness.
     */
    RunResult
    runReference(const std::function<bool()> &finished, Cycle max_cycles)
    {
        const Cycle start = now_;
        while (now_ - start < max_cycles) {
            for (Entry &e : components_)
                e.component->tick(now_);
            ++now_;
            if (finished())
                return {now_ - start, true};
        }
        return {now_ - start, false};
    }

    /** Dispatch on @p mode (harness convenience). */
    RunResult
    run(const std::function<bool()> &finished, Cycle max_cycles,
        EngineMode mode)
    {
        return mode == EngineMode::Reference
            ? runReference(finished, max_cycles)
            : run(finished, max_cycles);
    }

  private:
    struct Entry
    {
        Component *component = nullptr;
        bool source = false;
    };

    std::vector<Entry> components_;
    std::size_t sources_ = 0;
    Cycle now_ = 0;
    Cycle idleSkipped_ = 0;
};

} // namespace bonsai::sim

#endif // BONSAI_SIM_ENGINE_HPP
