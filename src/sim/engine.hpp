/**
 * @file
 * Cycle-driven simulation engine.
 *
 * The engine owns nothing; it ticks registered components in
 * registration order, one cycle at a time, until a user-supplied
 * completion predicate holds (or a cycle budget is exhausted, which is
 * reported as a deadlock/runaway error to the caller).
 */

#ifndef BONSAI_SIM_ENGINE_HPP
#define BONSAI_SIM_ENGINE_HPP

#include <functional>
#include <vector>

#include "sim/component.hpp"

namespace bonsai::sim
{

class SimEngine
{
  public:
    /** Register a component; ticked in registration order. */
    void add(Component *c) { components_.push_back(c); }

    /** Current cycle count. */
    Cycle now() const { return now_; }

    /** Result of a run() call. */
    struct RunResult
    {
        Cycle cycles = 0;     ///< Cycles elapsed during this run.
        bool finished = false; ///< Completion predicate became true.
    };

    /**
     * Tick all components until @p finished returns true.
     *
     * @param finished Completion predicate, evaluated after each cycle.
     * @param max_cycles Budget; exceeding it returns finished = false.
     */
    RunResult
    run(const std::function<bool()> &finished, Cycle max_cycles)
    {
        Cycle start = now_;
        while (now_ - start < max_cycles) {
            for (Component *c : components_)
                c->tick(now_);
            ++now_;
            if (finished())
                return {now_ - start, true};
        }
        return {now_ - start, false};
    }

  private:
    std::vector<Component *> components_;
    Cycle now_ = 0;
};

} // namespace bonsai::sim

#endif // BONSAI_SIM_ENGINE_HPP
