/**
 * @file
 * Bounded FIFO channel between clocked components.
 *
 * Models the 512-bit-wide record FIFOs of the design (Figure 7).  The
 * capacity is expressed in records; producers check freeSpace() before
 * pushing and consumers check size() before popping, which is how
 * back-pressure (AMT stalls on empty input buffers, Section V-A) arises
 * in the simulation.
 */

#ifndef BONSAI_SIM_FIFO_HPP
#define BONSAI_SIM_FIFO_HPP

#include <cassert>
#include <cstddef>
#include <deque>

namespace bonsai::sim
{

template <typename T>
class Fifo
{
  public:
    /** @param capacity Maximum number of elements held. */
    explicit Fifo(std::size_t capacity) : capacity_(capacity)
    {
        assert(capacity > 0);
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return items_.size(); }
    std::size_t freeSpace() const { return capacity_ - items_.size(); }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() == capacity_; }

    /** Push one element; the caller must have checked freeSpace(). */
    void
    push(const T &item)
    {
        assert(!full());
        items_.push_back(item);
    }

    /** Front element; the caller must have checked !empty(). */
    const T &
    front() const
    {
        assert(!empty());
        return items_.front();
    }

    /** Element at offset @p i from the front (for tuple peeking). */
    const T &
    peek(std::size_t i) const
    {
        assert(i < items_.size());
        return items_[i];
    }

    /** Pop and return the front element. */
    T
    pop()
    {
        assert(!empty());
        T item = items_.front();
        items_.pop_front();
        return item;
    }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
};

} // namespace bonsai::sim

#endif // BONSAI_SIM_FIFO_HPP
