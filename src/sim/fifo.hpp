/**
 * @file
 * Bounded FIFO channel between clocked components.
 *
 * Models the 512-bit-wide record FIFOs of the design (Figure 7).  The
 * capacity is expressed in records; producers check freeSpace() before
 * pushing and consumers check size() before popping, which is how
 * back-pressure (AMT stalls on empty input buffers, Section V-A) arises
 * in the simulation.
 *
 * The caller-checks discipline is enforced: push on a full channel and
 * pop/front/peek past the buffered contents are contract violations
 * (silently growing past capacity would falsify every back-pressure
 * measurement downstream).  An optional FifoObserver receives every
 * push and pop before it takes effect — the hook the protocol checker
 * (sim/protocol_checker.hpp) uses to watch stream invariants per
 * channel without changing component code.
 */

#ifndef BONSAI_SIM_FIFO_HPP
#define BONSAI_SIM_FIFO_HPP

#include <cstddef>
#include <deque>

#include "common/contract.hpp"

namespace bonsai::sim
{

template <typename T>
class Fifo;

/**
 * Passive observer of one channel's traffic.  Callbacks run before the
 * operation mutates the FIFO, so the observer sees the pre-state (a
 * full FIFO in onPush is a protocol violation it can report with
 * channel context that the FIFO itself doesn't have).
 */
template <typename T>
class FifoObserver
{
  public:
    virtual ~FifoObserver() = default;
    virtual void onPush(const Fifo<T> &fifo, const T &item) = 0;
    virtual void onPop(const Fifo<T> &fifo) = 0;
};

template <typename T>
class Fifo
{
  public:
    /** @param capacity Maximum number of elements held; must be > 0. */
    explicit Fifo(std::size_t capacity) : capacity_(capacity)
    {
        BONSAI_REQUIRE(capacity > 0, "FIFO capacity must be positive");
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return items_.size(); }
    std::size_t freeSpace() const { return capacity_ - items_.size(); }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() == capacity_; }

    /** Attach (or with nullptr detach) a traffic observer. */
    void setObserver(FifoObserver<T> *observer) { observer_ = observer; }

    /** Push one element; the caller must have checked freeSpace(). */
    void
    push(const T &item)
    {
        if (observer_)
            observer_->onPush(*this, item);
        BONSAI_REQUIRE(!full(), "push on a full FIFO");
        items_.push_back(item);
    }

    /** Front element; the caller must have checked !empty(). */
    const T &
    front() const
    {
        BONSAI_REQUIRE(!empty(), "front of an empty FIFO");
        return items_.front();
    }

    /** Element at offset @p i from the front (for tuple peeking). */
    const T &
    peek(std::size_t i) const
    {
        BONSAI_REQUIRE(i < items_.size(), "peek past buffered contents");
        return items_[i];
    }

    /** Pop and return the front element. */
    T
    pop()
    {
        if (observer_)
            observer_->onPop(*this);
        BONSAI_REQUIRE(!empty(), "pop from an empty FIFO");
        T item = items_.front();
        items_.pop_front();
        return item;
    }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
    FifoObserver<T> *observer_ = nullptr;
};

} // namespace bonsai::sim

#endif // BONSAI_SIM_FIFO_HPP
