/**
 * @file
 * Runtime protocol monitor for the cycle-level simulation.
 *
 * The AMT's correctness argument (docs/ARCHITECTURE.md) rests on
 * per-channel stream contracts: bounded FIFOs are never over-pushed or
 * under-popped, sorted-run channels carry non-decreasing keys between
 * terminals, every run is closed by exactly one terminal record
 * (Section V-B's zero-append / zero-filter scheme), and a component
 * that reports quiescent() with starved inputs must not produce
 * output.  This header turns those contracts into always-on runtime
 * checks that fire at the *offending cycle*, not as wrong output
 * megabytes later:
 *
 *  - ChannelMonitor: a FifoObserver that validates one channel's
 *    traffic as it happens;
 *  - CheckedFifo: a Fifo with a built-in monitor, for unit tests and
 *    hand-wired pipelines;
 *  - ProtocolChecker: a Component that owns monitors for a whole
 *    instance, stamps them with the current cycle, cross-checks
 *    quiescence claims against observed traffic, and verifies final
 *    terminal counts / emptiness at end of run.
 *
 * Unlike the contract macros (common/contract.hpp), these checks are
 * not compiled out in release builds: constructing a checker is the
 * opt-in (the `checked` flags on AmtInstance and the sim sorters), so
 * unchecked simulations pay nothing but a null observer test per
 * push/pop.
 */

#ifndef BONSAI_SIM_PROTOCOL_CHECKER_HPP
#define BONSAI_SIM_PROTOCOL_CHECKER_HPP

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/component.hpp"
#include "sim/fifo.hpp"

namespace bonsai::sim
{

/** Thrown by a monitor at the cycle a stream contract is broken. */
class ProtocolViolation : public std::runtime_error
{
  public:
    ProtocolViolation(std::string channel, Cycle cycle,
                      const std::string &message)
        : std::runtime_error("protocol violation on '" + channel +
                             "' at cycle " + std::to_string(cycle) +
                             ": " + message),
          channel_(std::move(channel)), cycle_(cycle)
    {
    }

    /** Name of the offending channel or component. */
    const std::string &channel() const { return channel_; }
    /** Cycle at which the violation was detected. */
    Cycle cycle() const { return cycle_; }

  private:
    std::string channel_;
    Cycle cycle_;
};

/** What a channel is expected to carry. */
enum class ChannelKind
{
    /** Sorted runs separated by single terminal records: keys must be
     *  non-decreasing between terminals (the stream sortedness every
     *  merger's selection logic relies on). */
    SortedRuns,
    /** No ordering expectation; only occupancy is checked. */
    Raw,
};

/** Sentinel: no expectation on a channel's terminal count. */
inline constexpr std::uint64_t kNoTerminalExpectation =
    static_cast<std::uint64_t>(-1);

namespace detail
{

/** Type-erased base so ProtocolChecker can own mixed-type monitors. */
class MonitorBase
{
  public:
    virtual ~MonitorBase() = default;
    /** Verify end-of-run state (emptiness, exact terminal count). */
    virtual void finalize() const = 0;
    virtual const std::string &channelName() const = 0;
};

} // namespace detail

/**
 * Watches one FIFO channel.  Install on a Fifo via setObserver() (or
 * use CheckedFifo / ProtocolChecker::watch, which do it for you).
 * Violations throw ProtocolViolation from the offending push/pop.
 */
template <typename T>
class ChannelMonitor final : public FifoObserver<T>,
                             public detail::MonitorBase
{
  public:
    ChannelMonitor(std::string name, ChannelKind kind,
                   const Cycle *clock = nullptr)
        : name_(std::move(name)), kind_(kind), clock_(clock)
    {
    }

    /** Expect exactly @p n terminals over the channel's lifetime. */
    void
    expectTerminals(std::uint64_t n)
    {
        expectedTerminals_ = n;
        if (n != kNoTerminalExpectation && terminalsSeen_ > n)
            violation("saw " + std::to_string(terminalsSeen_) +
                      " terminals, expected " + std::to_string(n));
    }

    /** Bind the monitor to the FIFO it should watch. */
    void
    attach(Fifo<T> &fifo)
    {
        fifo_ = &fifo;
        fifo.setObserver(this);
    }

    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t terminalsSeen() const { return terminalsSeen_; }
    const std::string &channelName() const override { return name_; }

    void
    onPush(const Fifo<T> &fifo, const T &item) override
    {
        if (fifo.full())
            violation("push on a full channel (capacity " +
                      std::to_string(fifo.capacity()) + ")");
        ++pushes_;
        if (kind_ != ChannelKind::SortedRuns)
            return;
        // Raw-only payload types (no terminal encoding / ordering)
        // can still be monitored for occupancy.
        if constexpr (requires {
                          item.isTerminal();
                          item < item;
                      }) {
            if (item.isTerminal()) {
                ++terminalsSeen_;
                if (expectedTerminals_ != kNoTerminalExpectation &&
                    terminalsSeen_ > expectedTerminals_) {
                    violation("more than the expected " +
                              std::to_string(expectedTerminals_) +
                              " run terminal(s)");
                }
                haveLast_ = false;
                return;
            }
            if (haveLast_ && item < last_)
                violation(
                    "key decreased within a run (stream not sorted)");
            last_ = item;
            haveLast_ = true;
        } else {
            violation("SortedRuns monitoring needs a record-like "
                      "payload type");
        }
    }

    void
    onPop(const Fifo<T> &fifo) override
    {
        if (fifo.empty())
            violation("pop from an empty channel");
        ++pops_;
    }

    void
    finalize() const override
    {
        if (fifo_ != nullptr && !fifo_->empty())
            violation("channel still holds " +
                      std::to_string(fifo_->size()) +
                      " record(s) at end of run");
        if (expectedTerminals_ != kNoTerminalExpectation &&
            terminalsSeen_ != expectedTerminals_) {
            violation("saw " + std::to_string(terminalsSeen_) +
                      " run terminal(s), expected " +
                      std::to_string(expectedTerminals_));
        }
    }

  private:
    [[noreturn]] void
    violation(const std::string &message) const
    {
        throw ProtocolViolation(name_, clock_ ? *clock_ : 0, message);
    }

    std::string name_;
    ChannelKind kind_;
    const Cycle *clock_;
    Fifo<T> *fifo_ = nullptr;

    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t terminalsSeen_ = 0;
    std::uint64_t expectedTerminals_ = kNoTerminalExpectation;
    T last_{};
    bool haveLast_ = false;
};

/**
 * A bounded FIFO that checks its own stream protocol.  Drop-in for
 * sim::Fifo wherever a channel should self-verify (unit tests,
 * hand-wired pipelines); AmtInstance instead monitors its plain FIFOs
 * through a ProtocolChecker.
 */
template <typename T>
class CheckedFifo : public Fifo<T>
{
  public:
    CheckedFifo(std::string name, std::size_t capacity, ChannelKind kind,
                const Cycle *clock = nullptr)
        : Fifo<T>(capacity),
          monitor_(std::move(name), kind, clock)
    {
        monitor_.attach(*this);
    }

    ChannelMonitor<T> &monitor() { return monitor_; }
    const ChannelMonitor<T> &monitor() const { return monitor_; }

  private:
    ChannelMonitor<T> monitor_;
};

/**
 * Per-instance protocol monitor.  Owns a ChannelMonitor per watched
 * channel plus quiescence watches, and participates in the simulation
 * as a component so monitors can stamp violations with the current
 * cycle.  Register it with the engine *before* the components it
 * watches, so its clock is updated before their pushes each cycle.
 */
class ProtocolChecker : public Component
{
  public:
    explicit ProtocolChecker(std::string name)
        : Component(std::move(name))
    {
    }

    /** Watch @p fifo as channel @p channel_name. */
    template <typename T>
    ChannelMonitor<T> &
    watch(std::string channel_name, Fifo<T> &fifo, ChannelKind kind)
    {
        auto monitor = std::make_unique<ChannelMonitor<T>>(
            std::move(channel_name), kind, &now_);
        ChannelMonitor<T> &ref = *monitor;
        ref.attach(fifo);
        monitors_.push_back(std::move(monitor));
        return ref;
    }

    /**
     * Cross-check @p component's quiescent() claim: once it reports
     * quiescent while all its @p inputs are empty (it is settled —
     * nothing buffered, nothing arriving), producing new output
     * without new input is a protocol violation.  Catches components
     * that understate their buffered state, which would make the
     * engine's convergence check terminate a run early.
     */
    template <typename T>
    void
    watchQuiescence(const Component &component,
                    std::vector<const Fifo<T> *> inputs,
                    std::vector<const ChannelMonitor<T> *> outputs)
    {
        auto watch = std::make_unique<QuiescenceWatch<T>>();
        watch->component = &component;
        watch->inputs = std::move(inputs);
        watch->outputs = std::move(outputs);
        quiescence_.push_back(std::move(watch));
    }

    void
    tick(Cycle now) override
    {
        now_ = now;
        for (const auto &watch : quiescence_)
            watch->check(now);
    }

    /**
     * Wake hint: the tick matters only when some quiescence watch
     * would change state (or fire).  Channel monitors are driven by
     * FIFO traffic, not by the tick, so they see every mutation
     * whether or not the checker ticked this cycle.
     */
    Cycle
    nextWake(Cycle now) const override
    {
        for (const auto &watch : quiescence_) {
            if (watch->wouldAct())
                return now;
        }
        return kNeverWake;
    }

    /** Keep the violation-stamp clock exact across skipped cycles:
     *  monitors consulted later in a skipped cycle must stamp with
     *  that cycle, just as if the checker had ticked. */
    void
    onIdleCycles(Cycle first, Cycle count) override
    {
        now_ = first + count - 1;
    }

    /** The checker holds no stream state of its own. */
    bool quiescent() const override { return true; }

    /**
     * End-of-run verification: every watched channel drained, every
     * terminal expectation met exactly, every watched component
     * quiescent.  Call after the engine's completion predicate holds.
     */
    void
    finalize() const
    {
        for (const auto &monitor : monitors_)
            monitor->finalize();
        for (const auto &watch : quiescence_) {
            if (!watch->componentQuiescent()) {
                throw ProtocolViolation(watch->componentName(), now_,
                                        "component not quiescent at "
                                        "end of run");
            }
        }
    }

    std::size_t watchedChannels() const { return monitors_.size(); }

  private:
    struct QuiescenceWatchBase
    {
        virtual ~QuiescenceWatchBase() = default;
        virtual void check(Cycle now) = 0;
        /** Would check() change state or fire right now? */
        virtual bool wouldAct() const = 0;
        virtual bool componentQuiescent() const = 0;
        virtual const std::string &componentName() const = 0;
    };

    template <typename T>
    struct QuiescenceWatch final : QuiescenceWatchBase
    {
        const Component *component = nullptr;
        std::vector<const Fifo<T> *> inputs;
        std::vector<const ChannelMonitor<T> *> outputs;
        bool settled = false;
        std::uint64_t settledPushes = 0;

        std::uint64_t
        outputPushes() const
        {
            std::uint64_t total = 0;
            for (const ChannelMonitor<T> *m : outputs)
                total += m->pushes();
            return total;
        }

        bool
        starvedNow() const
        {
            if (!component->quiescent())
                return false;
            for (const Fifo<T> *in : inputs) {
                if (!in->empty())
                    return false;
            }
            return true;
        }

        /** Mirror of check()'s decision tree: a state transition
         *  (settling either way) or a pending violation. */
        bool
        wouldAct() const override
        {
            const bool starved = starvedNow();
            if (starved != settled)
                return true;
            return settled && outputPushes() != settledPushes;
        }

        void
        check(Cycle now) override
        {
            const bool starved = starvedNow();
            if (!starved) {
                settled = false;
                return;
            }
            if (!settled) {
                settled = true;
                settledPushes = outputPushes();
                return;
            }
            if (outputPushes() != settledPushes) {
                throw ProtocolViolation(
                    component->name(), now,
                    "output produced while claiming quiescent() with "
                    "empty inputs (quiescence understates buffered "
                    "state)");
            }
        }

        bool
        componentQuiescent() const override
        {
            return component->quiescent();
        }

        const std::string &
        componentName() const override
        {
            return component->name();
        }
    };

    Cycle now_ = 0;
    std::vector<std::unique_ptr<detail::MonitorBase>> monitors_;
    std::vector<std::unique_ptr<QuiescenceWatchBase>> quiescence_;
};

} // namespace bonsai::sim

#endif // BONSAI_SIM_PROTOCOL_CHECKER_HPP
