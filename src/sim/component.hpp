/**
 * @file
 * Base class for clocked components in the cycle-level simulator.
 *
 * The simulator advances all components by one cycle per engine step.
 * Components communicate exclusively through bounded Fifo channels, so
 * tick order only shifts hop latencies by at most one cycle and never
 * affects functional behaviour.
 *
 * Wake/sleep contract (the activity-driven engine, docs/ARCHITECTURE.md
 * "Wake/sleep scheduling"): a component may opt into being skipped on
 * cycles where its tick would be a no-op by overriding nextWake() and
 * onIdleCycles().  The contract a skippable component must satisfy:
 *
 *  - nextWake(now) > now promises that for every cycle c in
 *    [now, nextWake(now)), tick(c) would change nothing observable —
 *    no FIFO traffic, no completion flags, no state another component
 *    or the completion predicate can see — *provided no other
 *    component acts on shared state first*.  The engine evaluates
 *    hints in registration order, interleaved with ticking, so a hint
 *    is always computed against exactly the state the naive tick would
 *    have seen.
 *  - onIdleCycles(first, count) must perform whatever pure
 *    bookkeeping `count` consecutive no-op ticks starting at `first`
 *    would have done (stall counters, internal clocks), so statistics
 *    stay cycle-exact under skipping.  It must not touch shared state.
 *  - Hints may be conservative (waking early is always sound: the
 *    extra tick is the same no-op the naive engine would have run);
 *    they must never be late.
 *  - kNeverWake means only another component's action can make the
 *    next tick a non-no-op (e.g. waiting for FIFO space or data).
 *    The engine re-evaluates hints every processed cycle, so the
 *    external change is picked up the cycle it happens.
 *
 * The default implementation (nextWake == now) keeps every legacy
 * component permanently active — bit-identical to the naive engine.
 */

#ifndef BONSAI_SIM_COMPONENT_HPP
#define BONSAI_SIM_COMPONENT_HPP

#include <cstdint>
#include <string>
#include <utility>

namespace bonsai::sim
{

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** Wake hint: no self-timed event pending; only an external change
 *  (another component's push/pop) can make the next tick matter. */
inline constexpr Cycle kNeverWake = static_cast<Cycle>(-1);

/** A clocked hardware block. */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance one clock cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest cycle >= now at which tick() could do observable work
     * given the shared state as currently visible (see the wake/sleep
     * contract above).  Return now to be ticked this cycle; a later
     * cycle or kNeverWake to be skipped.  Must be side-effect free.
     */
    virtual Cycle
    nextWake(Cycle now) const
    {
        (void)now;
        return now; // default: always active (naive behaviour)
    }

    /**
     * Credit the bookkeeping of @p count skipped no-op ticks covering
     * cycles [first, first + count).  Called instead of tick() for
     * every skipped cycle (possibly batched during a fast-forward).
     */
    virtual void
    onIdleCycles(Cycle first, Cycle count)
    {
        (void)first;
        (void)count;
    }

    /**
     * True when the component has no buffered state left to emit.  The
     * engine's convergence check uses this to decide when a run is
     * complete.
     */
    virtual bool quiescent() const { return true; }

    /** Instance name, used in stats and traces. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace bonsai::sim

#endif // BONSAI_SIM_COMPONENT_HPP
