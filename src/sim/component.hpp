/**
 * @file
 * Base class for clocked components in the cycle-level simulator.
 *
 * The simulator advances all components by one cycle per engine step.
 * Components communicate exclusively through bounded Fifo channels, so
 * tick order only shifts hop latencies by at most one cycle and never
 * affects functional behaviour.
 */

#ifndef BONSAI_SIM_COMPONENT_HPP
#define BONSAI_SIM_COMPONENT_HPP

#include <cstdint>
#include <string>
#include <utility>

namespace bonsai::sim
{

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** A clocked hardware block. */
class Component
{
  public:
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance one clock cycle. */
    virtual void tick(Cycle now) = 0;

    /**
     * True when the component has no buffered state left to emit.  The
     * engine's convergence check uses this to decide when a run is
     * complete.
     */
    virtual bool quiescent() const { return true; }

    /** Instance name, used in stats and traces. */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace bonsai::sim

#endif // BONSAI_SIM_COMPONENT_HPP
