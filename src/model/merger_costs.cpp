#include "model/merger_costs.hpp"

#include <algorithm>

#include "amt/synth_estimate.hpp"

namespace bonsai::model
{

MergerCosts
costsForWidth(unsigned record_bits)
{
    if (record_bits == 32)
        return costs32();
    if (record_bits == 128)
        return costs128();
    MergerCosts c;
    c.recordBits = record_bits;
    // Records wider than the 512-bit datapath are handled by
    // bit-serial comparators (Section II): the comparator logic stays
    // at the 512-bit size (plus a serializer allowance) and the
    // performance model charges the serialization factor instead.
    const unsigned logic_bits = std::min(record_bits, 512u);
    const unsigned overhead_pct = record_bits > 512 ? 10 : 0;
    for (unsigned i = 0; i < 6; ++i) {
        const unsigned k = 1u << i;
        c.merger[i] = amt::mergerStructLut(k, logic_bits) *
            (100 + overhead_pct) / 100;
        if (i >= 1) {
            c.coupler[i] = amt::couplerStructLut(k, logic_bits) *
                (100 + overhead_pct) / 100;
        }
    }
    c.fifo = amt::fifoStructLut(logic_bits);
    return c;
}

} // namespace bonsai::model
