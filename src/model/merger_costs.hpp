/**
 * @file
 * Per-building-block LUT costs (paper Table VI) and throughputs.
 *
 * The paper treats mergers and couplers as black boxes whose measured
 * resource utilization and frequency are *inputs* to the model
 * (Table II(c)); Table VI reports the synthesized LUT counts for 32-bit
 * and 128-bit records.  We encode those two calibration tables and
 * interpolate other record widths with the structural formulas from
 * amt/synth_estimate.hpp (CAS-count based), which match the calibration
 * points to within ~10%.
 */

#ifndef BONSAI_MODEL_MERGER_COSTS_HPP
#define BONSAI_MODEL_MERGER_COSTS_HPP

#include <cstdint>

namespace bonsai::model
{

/**
 * LUT costs of the AMT building blocks for one record width.
 * Index i holds the cost of the 2^i variant (merger index 0..5 for
 * 1..32-mergers; coupler index 1..5 for 2..32-couplers).
 */
struct MergerCosts
{
    unsigned recordBits = 32;
    std::uint64_t merger[6] = {};  ///< m_k for k = 1,2,4,8,16,32
    std::uint64_t coupler[6] = {}; ///< c_k for k = 2..32 (index 0 unused)
    std::uint64_t fifo = 0;        ///< leaf FIFO / "1-coupler"

    /** m_k (k must be a power of two <= 32). */
    std::uint64_t
    mergerLut(unsigned k) const
    {
        unsigned i = 0;
        while ((1u << i) < k)
            ++i;
        return merger[i];
    }

    /** c_k, with c_1 = the plain FIFO (paper Figure 7's leaf FIFOs). */
    std::uint64_t
    couplerLut(unsigned k) const
    {
        if (k <= 1)
            return fifo;
        unsigned i = 0;
        while ((1u << i) < k)
            ++i;
        return coupler[i];
    }
};

/** Table VI(a): 32-bit records. */
constexpr MergerCosts
costs32()
{
    MergerCosts c;
    c.recordBits = 32;
    c.merger[0] = 300;
    c.merger[1] = 622;
    c.merger[2] = 1555;
    c.merger[3] = 3620;
    c.merger[4] = 8500;
    c.merger[5] = 18853;
    c.coupler[1] = 142;
    c.coupler[2] = 273;
    c.coupler[3] = 530;
    c.coupler[4] = 1047;
    c.coupler[5] = 2079;
    c.fifo = 50;
    return c;
}

/** Table VI(b): 128-bit records. */
constexpr MergerCosts
costs128()
{
    MergerCosts c;
    c.recordBits = 128;
    c.merger[0] = 1016;
    c.merger[1] = 2210;
    c.merger[2] = 5604;
    c.merger[3] = 13051;
    c.merger[4] = 29970;
    c.merger[5] = 77732;
    c.coupler[1] = 576;
    c.coupler[2] = 1938;
    c.coupler[3] = 2081;
    c.coupler[4] = 4142;
    c.coupler[5] = 8266;
    c.fifo = 134;
    return c;
}

/**
 * Costs for an arbitrary record width in bits: returns the calibration
 * table if one exists, otherwise the structural estimate (declared in
 * amt/synth_estimate.hpp and re-exported here to keep a single entry
 * point for the optimizer).
 */
MergerCosts costsForWidth(unsigned record_bits);

} // namespace bonsai::model

#endif // BONSAI_MODEL_MERGER_COSTS_HPP
