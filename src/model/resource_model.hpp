/**
 * @file
 * Resource utilization model (paper Section III-B, Equations 8-10).
 *
 * Predicted LUTs of an AMT(p, ell) follow Equation 8:
 *
 *     LUT(p, ell) = sum_{n=0}^{log2(ell)-1} 2^n (m_k(n) + 2 c_k(n)),
 *     k(n) = max(p / 2^n, 1),  c_1 := leaf FIFO cost,
 *
 * i.e. each tree level contributes its mergers plus the two couplers
 * (or leaf FIFOs at k = 1) feeding each merger.  On-chip memory follows
 * Equation 10 (b * ell input buffer bytes per tree), refined with the
 * Table IV calibrated BRAM-block model so the optimizer sees the same
 * ell <= 256 feasibility wall the paper reports for the AWS F1.
 */

#ifndef BONSAI_MODEL_RESOURCE_MODEL_HPP
#define BONSAI_MODEL_RESOURCE_MODEL_HPP

#include <cstdint>

#include "amt/config.hpp"
#include "amt/synth_estimate.hpp"
#include "amt/tree.hpp"
#include "model/merger_costs.hpp"
#include "model/params.hpp"

namespace bonsai::model
{

/** Resource usage of one sorter configuration. */
struct ResourceEstimate
{
    std::uint64_t treeLut = 0;      ///< mergers + couplers + leaf FIFOs
    std::uint64_t presorterLut = 0;
    std::uint64_t dataLoaderLut = 0;
    std::uint64_t treeFf = 0;
    std::uint64_t presorterFf = 0;
    std::uint64_t dataLoaderFf = 0;
    std::uint64_t bramBlocks = 0;   ///< 36 Kb blocks (leaf buffers)
    std::uint64_t bufferBytes = 0;  ///< Equation 10 left-hand side

    std::uint64_t
    totalLut() const
    {
        return treeLut + presorterLut + dataLoaderLut;
    }

    std::uint64_t
    totalFf() const
    {
        return treeFf + presorterFf + dataLoaderFf;
    }
};

/** Equation 8: predicted LUTs of a single AMT(p, ell). */
inline std::uint64_t
predictTreeLut(unsigned p, unsigned ell, const MergerCosts &costs)
{
    std::uint64_t total = 0;
    const unsigned depth_count = hw::log2Exact(ell);
    for (unsigned n = 0; n < depth_count; ++n) {
        const unsigned k = std::max(p >> n, 1u);
        const std::uint64_t nodes = 1ULL << n;
        total += nodes * (costs.mergerLut(k) + 2 * costs.couplerLut(k));
    }
    return total;
}

/**
 * Full sorter resource estimate for a configuration (all
 * lambda_pipe * lambda_unrl trees plus presorter and data loader),
 * using the Equation-8 model ("predicted").
 */
inline ResourceEstimate
predictResources(const BonsaiInputs &in, const amt::AmtConfig &cfg,
                 bool with_presorter = true)
{
    const unsigned record_bits =
        static_cast<unsigned>(in.array.recordBytes * 8);
    // Bit-serial comparators keep the datapath logic at 512 bits for
    // wider records (Section II).
    const unsigned logic_bits = record_bits > 512 ? 512 : record_bits;
    const MergerCosts costs = costsForWidth(record_bits);
    const unsigned trees = amt::treeCount(cfg);
    ResourceEstimate est;
    est.treeLut = trees * predictTreeLut(cfg.p, cfg.ell, costs);
    const amt::TreeShape shape = amt::makeTreeShape(cfg.p, cfg.ell);
    est.treeFf = trees * amt::treeStructFf(shape, logic_bits);
    if (with_presorter && in.arch.presortRunLength > 1) {
        est.presorterLut =
            trees * amt::presorterStructLut(cfg.p, logic_bits);
        est.presorterFf =
            trees * amt::presorterStructFf(cfg.p, logic_bits);
    }
    est.dataLoaderLut = trees * amt::dataLoaderStructLut(cfg.ell);
    est.dataLoaderFf = trees * amt::dataLoaderStructFf(cfg.ell);
    est.bramBlocks = trees *
        amt::dataLoaderBramBlocks(cfg.ell, in.hw.batchBytes);
    est.bufferBytes = static_cast<std::uint64_t>(trees) * cfg.ell *
        in.hw.batchBytes;
    return est;
}

/** FPGA BRAM capacity expressed in 36 Kb blocks. */
inline std::uint64_t
bramBlockCapacity(const HardwareParams &hw)
{
    return hw.cBramBytes / (36864 / 8);
}

/** Smallest batch that still reaches peak DRAM bandwidth (Section II:
 *  reads and writes must be batched into 1-4 KB chunks). */
inline constexpr std::uint64_t kMinBatchBytes = 1024;

/**
 * Largest batch size (halving from hw.batchBytes down to 1 KB) whose
 * leaf buffers fit on-chip memory for this configuration; 0 if none
 * does.  This is how Equation 10 trades b against ell.
 */
inline std::uint64_t
feasibleBatchBytes(const BonsaiInputs &in, const amt::AmtConfig &cfg)
{
    const unsigned trees = amt::treeCount(cfg);
    const std::uint64_t cap_blocks = bramBlockCapacity(in.hw);
    for (std::uint64_t b = in.hw.batchBytes; b >= kMinBatchBytes;
         b /= 2) {
        const std::uint64_t blocks =
            trees * amt::dataLoaderBramBlocks(cfg.ell, b);
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(trees) * cfg.ell * b;
        if (blocks <= cap_blocks && bytes <= in.hw.cBramBytes)
            return b;
    }
    return 0;
}

/**
 * Equations 9-10: does the configuration fit on chip?  Logic must fit
 * C_LUT and the data-loader buffers must fit on-chip memory for some
 * legal batch size.
 */
inline bool
fits(const BonsaiInputs &in, const amt::AmtConfig &cfg,
     bool with_presorter = true)
{
    const ResourceEstimate est = predictResources(in, cfg, with_presorter);
    if (est.totalLut() > in.hw.cLut)
        return false;
    return feasibleBatchBytes(in, cfg) != 0;
}

} // namespace bonsai::model

#endif // BONSAI_MODEL_RESOURCE_MODEL_HPP
