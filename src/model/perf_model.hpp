/**
 * @file
 * Analytical performance model (paper Section III-A, Equations 1-7).
 *
 * Core quantities for an AMT(p, ell) configuration sorting N records of
 * r bytes at frequency f against off-chip bandwidth beta:
 *
 *   stages          = ceil(log_ell(N / s0))   (s0 = presorted run length)
 *   stage time      = N*r / min(p*f*r, beta_effective)
 *   latency (Eq. 2) = N*r * ceil(log_ell(N/lambda_unrl))
 *                       / min(p*f*r, beta_dram / lambda_unrl)
 *   pipeline throughput (Eq. 3)
 *                   = min(p*f*r, beta_dram/lambda_pipe, beta_io)
 *   combined (Eqs. 6-7) for lambda_pipe-pipelined, lambda_unrl-unrolled.
 *
 * Stage counts are computed with exact integer arithmetic (smallest t
 * with s0 * ell^t >= N), avoiding floating-point log pitfalls.
 */

#ifndef BONSAI_MODEL_PERF_MODEL_HPP
#define BONSAI_MODEL_PERF_MODEL_HPP

#include <algorithm>
#include <cstdint>

#include "amt/config.hpp"
#include "model/params.hpp"

namespace bonsai::model
{

/**
 * Number of merge stages to sort @p n records with an ell-way tree
 * starting from sorted runs of @p initial_run records.
 */
constexpr unsigned
mergeStages(std::uint64_t n, unsigned ell, std::uint64_t initial_run = 1)
{
    std::uint64_t run = initial_run == 0 ? 1 : initial_run;
    if (n <= run)
        return 0;
    unsigned stages = 0;
    // run *= ell per stage, with overflow guarding for TB-scale N.
    while (run < n) {
        if (run > n / ell + 1)
            run = n; // would overflow; one more stage finishes anyway
        else
            run *= ell;
        ++stages;
    }
    return stages;
}

/** Tree throughput p*f*r in bytes per second. */
constexpr double
treeThroughput(unsigned p, double frequency_hz,
               std::uint64_t record_bytes)
{
    return static_cast<double>(p) * frequency_hz *
        static_cast<double>(record_bytes);
}

/**
 * Serialization factor for records wider than the parallel compare
 * units (Section II's bit-serial comparator fallback): each CAS takes
 * this many cycles per record, dividing tree throughput.
 */
constexpr unsigned
serialFactor(std::uint64_t record_bytes, unsigned max_compare_bits)
{
    if (max_compare_bits == 0)
        return 1;
    const std::uint64_t bits = record_bytes * 8;
    const std::uint64_t factor =
        (bits + max_compare_bits - 1) / max_compare_bits;
    return factor == 0 ? 1 : static_cast<unsigned>(factor);
}

/** Effective tree throughput including wide-record serialization and
 *  (when enabled) the routing-congestion frequency derate for large
 *  ell (Section VI-C1). */
constexpr double
effectiveTreeThroughput(unsigned p, const MergerArchParams &arch,
                        std::uint64_t record_bytes, unsigned ell = 1)
{
    return treeThroughput(p, effectiveFrequency(arch, ell),
                          record_bytes) /
        serialFactor(record_bytes, arch.maxCompareBits);
}

/** Performance summary of a configuration on a problem. */
struct PerfEstimate
{
    unsigned stages = 0;        ///< merge stages per tree
    double stageSeconds = 0.0;  ///< time per stage
    double latencySeconds = 0.0;
    double throughputBytesPerSec = 0.0;
    double effectiveBandwidth = 0.0; ///< bytes/s the trees can draw
};

/**
 * Latency of a lambda_unrl-unrolled AMT(p, ell) configuration
 * (Equation 2; Equation 1 is the lambda_unrl = 1 case), with the
 * presorter shaving stage count per Section VI-C1.
 */
inline PerfEstimate
latencyEstimate(const BonsaiInputs &in, const amt::AmtConfig &cfg)
{
    PerfEstimate est;
    const std::uint64_t per_tree =
        (in.array.n + cfg.lambdaUnrl - 1) / cfg.lambdaUnrl;
    est.stages = mergeStages(per_tree, cfg.ell,
                             in.arch.presortRunLength);
    est.effectiveBandwidth = in.hw.betaDram / cfg.lambdaUnrl;
    const double rate =
        std::min(effectiveTreeThroughput(cfg.p, in.arch,
                                         in.array.recordBytes,
                                         cfg.ell),
                 est.effectiveBandwidth);
    est.stageSeconds =
        static_cast<double>(in.array.totalBytes()) /
        (rate * cfg.lambdaUnrl);
    est.latencySeconds = est.stageSeconds * est.stages;
    est.throughputBytesPerSec = est.latencySeconds > 0.0
        ? static_cast<double>(in.array.totalBytes()) /
            est.latencySeconds
        : 0.0;
    return est;
}

/**
 * Throughput of a lambda_pipe-pipelined, lambda_unrl-unrolled
 * configuration (Equations 3-7).
 */
inline PerfEstimate
pipelineEstimate(const BonsaiInputs &in, const amt::AmtConfig &cfg)
{
    PerfEstimate est;
    est.stages = cfg.lambdaPipe;
    est.effectiveBandwidth =
        in.hw.betaDram / (cfg.lambdaPipe * cfg.lambdaUnrl);
    const double per_pipe = std::min(
        {effectiveTreeThroughput(cfg.p, in.arch,
                                 in.array.recordBytes, cfg.ell),
         est.effectiveBandwidth, in.hw.betaIo});
    est.throughputBytesPerSec = cfg.lambdaUnrl * per_pipe;
    est.latencySeconds = static_cast<double>(in.array.totalBytes()) *
        cfg.lambdaPipe / (per_pipe * cfg.lambdaUnrl);
    est.stageSeconds = est.latencySeconds / cfg.lambdaPipe;
    return est;
}

/**
 * Largest N a lambda_pipe-pipelined AMT(p, ell) can sort (Equation 5):
 * min(C_DRAM / lambda_pipe / r, (presort run) * ell^lambda_pipe).
 */
constexpr std::uint64_t
pipelineCapacityRecords(const BonsaiInputs &in, const amt::AmtConfig &cfg)
{
    std::uint64_t cap_mem = in.hw.cDram /
        (cfg.lambdaPipe * in.array.recordBytes * cfg.lambdaUnrl);
    // ell^lambda_pipe with saturation.
    std::uint64_t cap_stages = in.arch.presortRunLength
        ? in.arch.presortRunLength : 1;
    for (unsigned s = 0; s < cfg.lambdaPipe; ++s) {
        if (cap_stages > cap_mem / cfg.ell + 1) {
            cap_stages = cap_mem; // saturate: memory is the binding cap
            break;
        }
        cap_stages *= cfg.ell;
    }
    return cap_mem < cap_stages ? cap_mem : cap_stages;
}

} // namespace bonsai::model

#endif // BONSAI_MODEL_PERF_MODEL_HPP
