/**
 * @file
 * Bonsai input parameters (paper Table II): array parameters, hardware
 * parameters, and merger-architecture parameters.
 */

#ifndef BONSAI_MODEL_PARAMS_HPP
#define BONSAI_MODEL_PARAMS_HPP

#include <cstdint>

#include "common/units.hpp"

namespace bonsai::model
{

/** Table II(a): array parameters. */
struct ArrayParams
{
    std::uint64_t n = 0;       ///< N: number of records
    std::uint64_t recordBytes = 4; ///< r: record width in bytes

    std::uint64_t totalBytes() const { return n * recordBytes; }
};

/** Table II(b): hardware parameters. */
struct HardwareParams
{
    double betaDram = 32.0 * kGB;  ///< off-chip bandwidth, bytes/s
    double betaIo = 8.0 * kGB;     ///< I/O bus bandwidth, bytes/s
    std::uint64_t cDram = 64 * kGB;  ///< off-chip capacity, bytes
    std::uint64_t cBramBytes = 7'200'000; ///< on-chip memory, bytes
    std::uint64_t cLut = 862'128;  ///< on-chip logic units
    std::uint64_t batchBytes = 4096; ///< b: read batch size, bytes
    unsigned dramBanks = 4;        ///< memory banks (F1: 4 x 8 GB/s)
};

/** Table II(c): merger architecture parameters. */
struct MergerArchParams
{
    double frequencyHz = 250e6; ///< f: merger clock frequency
    /** Run length formed by the presorter before stage one
     *  (16-record bitonic network in the paper); 1 disables it. */
    std::uint64_t presortRunLength = 16;
    /** Widest record the parallel compare-and-exchange units handle
     *  in one cycle; wider records are processed by bit-serial
     *  comparators over multiple cycles (Section II). */
    unsigned maxCompareBits = 512;
    /**
     * Model FPGA routing congestion: "designs with more leaves have
     * lower frequency due to FPGA routing congestion" is why the
     * paper implements ell = 64 instead of the model-optimal 256
     * (Section VI-C1).  When true, achievable frequency derates for
     * ell > routingDerateFreeEll; the optimizer then reproduces the
     * paper's as-built choice.
     */
    bool routingDerate = false;
    unsigned routingDerateFreeEll = 64;
    /** Fractional frequency loss per doubling of ell past the free
     *  region (calibrated so ell = 128 already drops below the
     *  ~200 MHz break-even the paper's 4-vs-5-stage counts imply). */
    double routingDeratePerDoubling = 0.30;
};

/** Achievable clock after routing congestion (identity when the
 *  derate model is off or ell is within the free region). */
constexpr double
effectiveFrequency(const MergerArchParams &arch, unsigned ell)
{
    if (!arch.routingDerate || ell <= arch.routingDerateFreeEll)
        return arch.frequencyHz;
    double f = arch.frequencyHz;
    for (unsigned l = arch.routingDerateFreeEll; l < ell; l *= 2)
        f /= (1.0 + arch.routingDeratePerDoubling);
    return f;
}

/** Everything Bonsai needs to optimize a configuration. */
struct BonsaiInputs
{
    ArrayParams array;
    HardwareParams hw;
    MergerArchParams arch;
};

} // namespace bonsai::model

#endif // BONSAI_MODEL_PARAMS_HPP
