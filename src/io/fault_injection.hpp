/**
 * @file
 * Deterministic fault injection for the out-of-core sort.
 *
 * A FaultInjector is a FaultPolicy (io/byte_io.hpp) driven by a seeded
 * schedule over the file's global attempt sequence: the Nth read (or
 * write) attempt issued against the file misbehaves the same way on
 * every run, regardless of which worker thread issues it.  That makes
 * failure tests reproducible: the schedule decides *when* a fault
 * fires, the splitmix64 mix of (seed, attempt index) decides *how
 * short* a truncated transfer is.
 *
 * Fault classes, in priority order when several match one attempt:
 *
 *  - hard ENOSPC once a write would cross a configured byte offset
 *    (models a full device; never heals),
 *  - transient EIO for a window of consecutive attempts starting at a
 *    chosen attempt index (the retry loop in ByteFile supplies the
 *    consecutive attempts, so the fault "heals after N tries"),
 *  - EINTR storms: bursts of interrupted syscalls at a fixed cadence,
 *  - short transfers: every Kth attempt is truncated to a
 *    seed-derived fraction of the requested bytes.
 *
 * All counters are relaxed atomics; the injector is shared by the
 * prefetch, merge and write-back workers of a StreamEngine lane.
 */

#ifndef BONSAI_IO_FAULT_INJECTION_HPP
#define BONSAI_IO_FAULT_INJECTION_HPP

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>

#include <unistd.h>

#include "io/byte_io.hpp"

namespace bonsai::io
{

/** Seeded fault schedule.  Zero disables the corresponding class. */
struct FaultPlan {
    /** Never-matching sentinel for enospcAtWriteByte. */
    static constexpr std::uint64_t kNoEnospc = ~std::uint64_t{0};

    std::uint64_t seed = 1; ///< varies short-transfer lengths

    /** Truncate every Kth read / write attempt (0 = off). */
    unsigned shortEveryReads = 0;
    unsigned shortEveryWrites = 0;

    /** EINTR storm: @p eintrBurst interruptions every Kth attempt. */
    unsigned eintrEvery = 0;
    unsigned eintrBurst = 3;

    /** Transient EIO starting at this 1-based attempt index (0=off). */
    unsigned eioOnReadAttempt = 0;
    unsigned eioOnWriteAttempt = 0;
    /** Consecutive failures before the EIO heals. */
    unsigned eioFailures = 2;

    /** Writes fail ENOSPC once they would extend past this byte. */
    std::uint64_t enospcAtWriteByte = kNoEnospc;

    /** Nonzero: every sync attempt fails with this errno. */
    int failSyncWith = 0;

    /**
     * CrashPoints: _exit(137) — SIGKILL's exit code, no destructors,
     * no flushes — the instant the 1-based read / write / sync
     * attempt counter reaches this index (0 = off).  The crash-injection
     * harness forks the sort, installs an injector with one of these
     * set, and sweeps the index across the attempt sequence to model a
     * process killed at every interesting I/O boundary.
     */
    std::uint64_t crashOnReadAttempt = 0;
    std::uint64_t crashOnWriteAttempt = 0;
    std::uint64_t crashOnSyncAttempt = 0;
};

/** Deterministic FaultPolicy; see the file comment for semantics. */
class FaultInjector final : public FaultPolicy
{
  public:
    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    FaultAction onAttempt(const FaultOp &op) override
    {
        FaultAction act;
        if (op.kind == FaultOp::Kind::Sync) {
            const std::uint64_t idx =
                1 + syncAttempts_.fetch_add(
                        1, std::memory_order_relaxed);
            if (plan_.crashOnSyncAttempt != 0 &&
                idx == plan_.crashOnSyncAttempt)
                ::_exit(137);
            if (plan_.failSyncWith != 0) {
                injectedSyncFailures_.fetch_add(
                    1, std::memory_order_relaxed);
                act.failWith = plan_.failSyncWith;
            }
            return act;
        }
        const bool isRead = op.kind == FaultOp::Kind::Read;
        const std::uint64_t idx =
            1 + (isRead ? readAttempts_ : writeAttempts_)
                    .fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t crashAt = isRead
                                          ? plan_.crashOnReadAttempt
                                          : plan_.crashOnWriteAttempt;
        if (crashAt != 0 && idx == crashAt)
            ::_exit(137);
        if (!isRead && plan_.enospcAtWriteByte != FaultPlan::kNoEnospc &&
            op.offset + op.bytes > plan_.enospcAtWriteByte) {
            injectedEnospc_.fetch_add(1, std::memory_order_relaxed);
            act.failWith = ENOSPC;
            return act;
        }
        const unsigned eioAt =
            isRead ? plan_.eioOnReadAttempt : plan_.eioOnWriteAttempt;
        if (eioAt != 0 && idx >= eioAt &&
            idx < std::uint64_t{eioAt} + plan_.eioFailures) {
            injectedEio_.fetch_add(1, std::memory_order_relaxed);
            act.failWith = EIO;
            return act;
        }
        if (plan_.eintrEvery != 0 && idx >= plan_.eintrEvery &&
            idx % plan_.eintrEvery <
                std::min(plan_.eintrBurst, plan_.eintrEvery - 1)) {
            injectedEintr_.fetch_add(1, std::memory_order_relaxed);
            act.failWith = EINTR;
            return act;
        }
        const unsigned shortEvery =
            isRead ? plan_.shortEveryReads : plan_.shortEveryWrites;
        if (shortEvery != 0 && idx % shortEvery == 0 && op.bytes > 1) {
            // Truncate to a seed-derived length in [1, bytes-1].
            act.maxBytes = 1 + mix(plan_.seed ^ idx) % (op.bytes - 1);
            injectedShort_.fetch_add(1, std::memory_order_relaxed);
        }
        return act;
    }

    std::uint64_t injectedShort() const
    {
        return injectedShort_.load(std::memory_order_relaxed);
    }
    std::uint64_t injectedEintr() const
    {
        return injectedEintr_.load(std::memory_order_relaxed);
    }
    std::uint64_t injectedEio() const
    {
        return injectedEio_.load(std::memory_order_relaxed);
    }
    std::uint64_t injectedEnospc() const
    {
        return injectedEnospc_.load(std::memory_order_relaxed);
    }
    std::uint64_t injectedSyncFailures() const
    {
        return injectedSyncFailures_.load(std::memory_order_relaxed);
    }

    /** Attempt totals, for sizing a crash-point sweep: a counting run
     *  with no faults reports how many attempts of each kind one sort
     *  issues, and the sweep picks crash indices inside that range. */
    std::uint64_t readAttempts() const
    {
        return readAttempts_.load(std::memory_order_relaxed);
    }
    std::uint64_t writeAttempts() const
    {
        return writeAttempts_.load(std::memory_order_relaxed);
    }
    std::uint64_t syncAttempts() const
    {
        return syncAttempts_.load(std::memory_order_relaxed);
    }

  private:
    /** splitmix64 finalizer: cheap, stateless, well mixed. */
    static std::uint64_t mix(std::uint64_t z)
    {
        z += 0x9E3779B97F4A7C15ull;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    FaultPlan plan_;
    std::atomic<std::uint64_t> readAttempts_{0};
    std::atomic<std::uint64_t> writeAttempts_{0};
    std::atomic<std::uint64_t> syncAttempts_{0};
    std::atomic<std::uint64_t> injectedShort_{0};
    std::atomic<std::uint64_t> injectedEintr_{0};
    std::atomic<std::uint64_t> injectedEio_{0};
    std::atomic<std::uint64_t> injectedEnospc_{0};
    std::atomic<std::uint64_t> injectedSyncFailures_{0};
};

} // namespace bonsai::io

#endif // BONSAI_IO_FAULT_INJECTION_HPP
