/**
 * @file
 * Run store: the storage tier the two-phase sorter spills sorted runs
 * to and merges them back from.
 *
 * A RunStore is a flat, positioned record space plus the metadata of
 * the sorted runs currently living in it (RunSpan offsets are record
 * indices into the store).  The engine ping-pongs two stores through
 * phase 2, each merge pass reading runs from one and writing the
 * merged output runs to the other — every pass is one full "SSD round
 * trip" in the paper's cost model.
 *
 *  - MemoryRunStore keeps records in a DRAM buffer and additionally
 *    exposes the raw span, which lets the engine merge in place with
 *    the Merge Path parallel kernel (zero copies) — this is how the
 *    in-memory sort(std::vector&) facade stays byte- and
 *    performance-identical.
 *  - FileRunStore spills to an anonymous temp file through positioned
 *    I/O that is safe to call concurrently from the prefetch worker,
 *    the write-back worker and the merge thread.
 *
 * Byte counters tally actual store traffic (spill bytes), reported
 * through the facades' unified telemetry.
 *
 * Concurrency contract (the lock-free corner of the common/sync.hpp
 * scheme): stores hold no mutex at all.  FileRunStore is safe for
 * concurrent readAt/writeAt on disjoint ranges because pread/pwrite
 * are positioned syscalls sharing no file cursor, MemoryRunStore
 * because disjoint memcpy ranges don't alias; the traffic counters
 * are relaxed atomics (telemetry, not synchronization).  Run
 * *metadata* (runs()/setRuns) is single-writer: only the merge
 * coordinator touches it, never the lane workers — so it needs no
 * guard and carries none.  Anything here that ever grows a mutex
 * must move onto bonsai::Mutex with BONSAI_GUARDED_BY annotations
 * (scripts/check_style.py enforces both halves of that rule).
 */

#ifndef BONSAI_IO_RUN_STORE_HPP
#define BONSAI_IO_RUN_STORE_HPP

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "io/byte_io.hpp"
#include "io/stream.hpp"

namespace bonsai::io
{

/** Positioned record storage plus the run metadata living in it. */
template <typename RecordT>
class RunStore
{
  public:
    virtual ~RunStore() = default;

    /** Write @p count records at record offset @p offset.
     *  @p context, when given, names what is streaming (run/chunk)
     *  and is woven into any I/O error raised by the transfer. */
    virtual void writeAt(std::uint64_t offset, const RecordT *src,
                         std::uint64_t count,
                         const char *context = nullptr) = 0;

    /** Read @p count records from record offset @p offset.  Must be
     *  safe to call concurrently with writeAt on disjoint ranges. */
    virtual void readAt(std::uint64_t offset, RecordT *dst,
                        std::uint64_t count,
                        const char *context = nullptr) const = 0;

    /** Durability point: flush completed writes to the device so
     *  write-back errors surface here, not after process exit.
     *  Memory-backed stores have nothing to flush. */
    virtual void flush(const char *context = nullptr)
    {
        static_cast<void>(context);
    }

    /** Retry counters of the underlying device (zero for DRAM). */
    virtual IoRetryStats retryStats() const { return {}; }

    /** In-memory stores return their backing buffer so merges can run
     *  zero-copy; storage-backed stores return an empty span. */
    virtual std::span<RecordT>
    memorySpan()
    {
        return {};
    }

    /** Sorted runs currently stored (record offsets into the store). */
    const std::vector<RunSpan> &runs() const { return runs_; }
    void setRuns(std::vector<RunSpan> runs) { runs_ = std::move(runs); }

    std::uint64_t
    bytesWritten() const
    {
        return written_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bytesRead() const
    {
        return read_.load(std::memory_order_relaxed);
    }

  protected:
    void
    countWrite(std::uint64_t bytes)
    {
        written_.fetch_add(bytes, std::memory_order_relaxed);
    }

    void
    countRead(std::uint64_t bytes) const
    {
        read_.fetch_add(bytes, std::memory_order_relaxed);
    }

  private:
    std::vector<RunSpan> runs_;
    std::atomic<std::uint64_t> written_{0};
    mutable std::atomic<std::uint64_t> read_{0};
};

/** DRAM-backed store over a caller-owned buffer. */
template <typename RecordT>
class MemoryRunStore : public RunStore<RecordT>
{
  public:
    explicit MemoryRunStore(std::span<RecordT> backing)
        : backing_(backing)
    {
    }

    void
    writeAt(std::uint64_t offset, const RecordT *src,
            std::uint64_t count,
            const char * /*context*/ = nullptr) override
    {
        BONSAI_REQUIRE(offset + count <= backing_.size(),
                       "write beyond the memory store's backing");
        std::memcpy(backing_.data() + offset, src,
                    count * sizeof(RecordT));
        this->countWrite(count * sizeof(RecordT));
    }

    void
    readAt(std::uint64_t offset, RecordT *dst, std::uint64_t count,
           const char * /*context*/ = nullptr) const override
    {
        BONSAI_REQUIRE(offset + count <= backing_.size(),
                       "read beyond the memory store's backing");
        std::memcpy(dst, backing_.data() + offset,
                    count * sizeof(RecordT));
        this->countRead(count * sizeof(RecordT));
    }

    std::span<RecordT> memorySpan() override { return backing_; }

  private:
    std::span<RecordT> backing_;
};

/** SSD-backed store spilling to an anonymous temp file. */
template <typename RecordT>
class FileRunStore : public RunStore<RecordT>
{
    static_assert(std::is_trivially_copyable_v<RecordT>);

  public:
    /** @param dir Spill directory (empty = $TMPDIR or /tmp). */
    explicit FileRunStore(const std::string &dir = "")
        : file_(ByteFile::createTemp(dir))
    {
    }

    void
    writeAt(std::uint64_t offset, const RecordT *src,
            std::uint64_t count,
            const char *context = nullptr) override
    {
        file_.writeAt(offset * sizeof(RecordT), src,
                      count * sizeof(RecordT), context);
        this->countWrite(count * sizeof(RecordT));
    }

    void
    readAt(std::uint64_t offset, RecordT *dst, std::uint64_t count,
           const char *context = nullptr) const override
    {
        file_.readAt(offset * sizeof(RecordT), dst,
                     count * sizeof(RecordT), context);
        this->countRead(count * sizeof(RecordT));
    }

    void
    flush(const char *context = nullptr) override
    {
        file_.sync(context);
    }

    IoRetryStats retryStats() const override
    {
        return file_.retryStats();
    }

    /** Inject faults into the spill file (tests; nullptr = off). */
    void
    setFaultPolicy(std::shared_ptr<FaultPolicy> policy)
    {
        file_.setFaultPolicy(std::move(policy));
    }

    /** Replace the spill file's transient-error retry schedule. */
    void
    setRetryPolicy(const RetryPolicy &policy)
    {
        file_.setRetryPolicy(policy);
    }

  private:
    ByteFile file_;
};

/**
 * SSD-backed store over a *named* spill file that survives the
 * process: the checkpointed sort's store.  Where FileRunStore unlinks
 * its name at birth (storage dies with the descriptor), a
 * PersistentRunStore keeps the name under a job directory so a
 * resumed attempt can reopen the same bytes.  Fresh mode creates or
 * truncates; resume mode opens without truncation, preserving
 * whatever a previous attempt already made durable.
 *
 * Same lock-free contract as FileRunStore: positioned pread/pwrite on
 * disjoint ranges, relaxed traffic counters, single-writer metadata.
 */
template <typename RecordT>
class PersistentRunStore : public RunStore<RecordT>
{
    static_assert(std::is_trivially_copyable_v<RecordT>);

  public:
    /** @param path   Spill file path (inside the job directory).
     *  @param resume Keep existing bytes (true) or start empty. */
    explicit PersistentRunStore(const std::string &path,
                                bool resume = false)
        : file_(resume ? ByteFile::openReadWrite(path)
                       : ByteFile::create(path))
    {
    }

    void
    writeAt(std::uint64_t offset, const RecordT *src,
            std::uint64_t count,
            const char *context = nullptr) override
    {
        file_.writeAt(offset * sizeof(RecordT), src,
                      count * sizeof(RecordT), context);
        this->countWrite(count * sizeof(RecordT));
    }

    void
    readAt(std::uint64_t offset, RecordT *dst, std::uint64_t count,
           const char *context = nullptr) const override
    {
        file_.readAt(offset * sizeof(RecordT), dst,
                     count * sizeof(RecordT), context);
        this->countRead(count * sizeof(RecordT));
    }

    void
    flush(const char *context = nullptr) override
    {
        file_.sync(context);
    }

    IoRetryStats retryStats() const override
    {
        return file_.retryStats();
    }

    const std::string &path() const { return file_.path(); }

    /** Current spill file size in bytes (resume-validation input). */
    std::uint64_t sizeBytes() const { return file_.sizeBytes(); }

    /** Inject faults into the spill file (tests; nullptr = off). */
    void
    setFaultPolicy(std::shared_ptr<FaultPolicy> policy)
    {
        file_.setFaultPolicy(std::move(policy));
    }

    /** Replace the spill file's transient-error retry schedule. */
    void
    setRetryPolicy(const RetryPolicy &policy)
    {
        file_.setRetryPolicy(policy);
    }

  private:
    ByteFile file_;
};

/** Sink adapter writing sequentially into a store at a base offset —
 *  lets the merge writer target a store and the final-output sink
 *  through one interface.  Stores are positioned by nature, so the
 *  segment extension is supported too (concurrent disjoint writes are
 *  part of the RunStore contract). */
template <typename RecordT>
class RunStoreSink : public RecordSink<RecordT>
{
  public:
    /** @param context Optional label woven into I/O errors raised by
     *  writes through this sink (must outlive the sink). */
    RunStoreSink(RunStore<RecordT> &store, std::uint64_t base_offset,
                 const char *context = nullptr)
        : store_(&store), pos_(base_offset), context_(context)
    {
    }

    void
    write(const RecordT *src, std::uint64_t count) override
    {
        store_->writeAt(pos_, src, count, context_);
        pos_ += count;
    }

    bool supportsSegments() const override { return true; }

    void
    beginSegments(std::uint64_t total) override
    {
        base_ = pos_;
        pos_ += total;
    }

    void
    writeSegment(std::uint64_t offset, const RecordT *src,
                 std::uint64_t count) override
    {
        store_->writeAt(base_ + offset, src, count, context_);
    }

  private:
    RunStore<RecordT> *store_;
    std::uint64_t pos_;
    std::uint64_t base_ = 0;
    const char *context_ = nullptr;
};

} // namespace bonsai::io

#endif // BONSAI_IO_RUN_STORE_HPP
