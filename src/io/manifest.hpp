/**
 * @file
 * Durable job manifest for the crash-consistent out-of-core sort.
 *
 * The manifest is the journal of a checkpointed sort job: a small
 * binary file in the job directory recording the sort parameters (so
 * a resume can prove it is resuming the *same* request), the phase-1
 * chunks already spilled, and the merge passes already completed —
 * each run carrying its byte extent and a CRC of its data so torn or
 * stale spill files are detected before a single record is trusted.
 *
 * Commit protocol (saveManifest): write the whole image to a temp
 * name, fdatasync it, rename() over the live name, fsync the parent
 * directory.  rename() is atomic on POSIX filesystems, so a reader
 * only ever observes the previous manifest or the new one — never a
 * torn mix.  The caller must flush run *data* (RunStore::flush) before
 * committing, which gives the invariant resume relies on: any run a
 * committed manifest records is durable on the device.
 *
 * Load is deliberately paranoid and deliberately specific: a missing
 * file, a torn tail, a foreign magic, a future version, a body CRC
 * mismatch and a structurally malformed body are distinct statuses
 * with distinct one-line messages, because "fall back loudly" needs
 * to say *why*.
 */

#ifndef BONSAI_IO_MANIFEST_HPP
#define BONSAI_IO_MANIFEST_HPP

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "io/byte_io.hpp"

namespace bonsai::io
{

/** CRC-32 (IEEE 802.3, reflected), the checksum guarding both the
 *  manifest body and each spilled run's data. */
inline std::uint32_t
crc32(const void *data, std::size_t len,
      std::uint32_t seed = 0xffffffffu)
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = seed;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return crc;
}

/** Finalize a crc32 chain (xor-out).  Feed blocks by passing the
 *  running value as @p seed, then invert once at the end. */
inline std::uint32_t
crc32Finish(std::uint32_t crc)
{
    return crc ^ 0xffffffffu;
}

/** One-shot convenience: CRC of a single contiguous buffer. */
inline std::uint32_t
crc32Of(const void *data, std::size_t len)
{
    return crc32Finish(crc32(data, len));
}

/** Fixed names inside a job directory.  Fixed (not generated) names
 *  are what make resume and orphan cleanup possible without directory
 *  scans. */
inline constexpr const char *kManifestFileName = "job.manifest";
inline constexpr const char *kManifestTempFileName = "job.manifest.tmp";
inline constexpr const char *kFrontStoreFileName = "runs-front.spill";
inline constexpr const char *kBackStoreFileName = "runs-back.spill";

/** The request echo: a resume is only valid against a byte-identical
 *  parameter set, because chunk geometry, pass structure and run
 *  extents are all functions of these. */
struct ManifestParams {
    std::uint64_t recordBytes = 0;
    std::uint64_t recordsIn = 0;
    std::uint64_t chunkRecords = 0;
    std::uint64_t batchRecords = 0;
    std::uint32_t phase1Ell = 0;
    std::uint32_t phase2Ell = 0;
    std::uint64_t bufferBudgetBytes = 0;

    bool
    operator==(const ManifestParams &) const = default;
};

/** One durable run: its extent in the current store plus a CRC of its
 *  bytes, verified on resume before the run is trusted. */
struct ManifestRun {
    std::uint64_t offset = 0;
    std::uint64_t length = 0; ///< records
    std::uint32_t crc = 0;    ///< crc32Of the run's raw bytes
};

/** In-memory image of the job journal. */
struct JobManifest {
    ManifestParams params;
    std::uint64_t chunksDone = 0;  ///< phase-1 chunks spilled
    bool phase1Complete = false;   ///< all input consumed and spilled
    std::uint8_t currentStore = 0; ///< 0 = front, 1 = back holds runs
    std::uint32_t passesDone = 0;  ///< non-final merge passes completed
    std::vector<ManifestRun> runs; ///< live runs in the current store
};

/** Why a manifest load did not produce a usable manifest. */
enum class ManifestStatus {
    Ok,
    NotFound,     ///< no manifest file in the job directory
    TornTail,     ///< file shorter than its header claims
    BadMagic,     ///< not a bonsai job manifest at all
    WrongVersion, ///< written by a different manifest format
    CrcMismatch,  ///< body bytes do not match the recorded checksum
    Malformed,    ///< checksummed body is structurally inconsistent
};

struct ManifestLoadResult {
    ManifestStatus status = ManifestStatus::NotFound;
    std::string error;    ///< one-line reason when status != Ok
    JobManifest manifest; ///< valid only when status == Ok
};

inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr char kManifestMagic[8] = {'B', 'O', 'N', 'S',
                                           'A', 'I', 'J', 'M'};

namespace detail
{

inline void
putBytes(std::vector<unsigned char> &out, const void *src,
         std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(src);
    out.insert(out.end(), p, p + len);
}

inline void
putU32(std::vector<unsigned char> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(
            static_cast<unsigned char>((v >> (8 * i)) & 0xffu));
}

inline void
putU64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(
            static_cast<unsigned char>((v >> (8 * i)) & 0xffu));
}

/** Bounds-checked little-endian reader over a byte span. */
class ByteReader
{
  public:
    ByteReader(const unsigned char *data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    bool
    getU32(std::uint32_t &v)
    {
        if (len_ - pos_ < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= std::uint32_t{data_[pos_ + i]} << (8 * i);
        pos_ += 4;
        return true;
    }

    bool
    getU64(std::uint64_t &v)
    {
        if (len_ - pos_ < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    getU8(std::uint8_t &v)
    {
        if (len_ - pos_ < 1)
            return false;
        v = data_[pos_++];
        return true;
    }

    std::size_t remaining() const { return len_ - pos_; }

  private:
    const unsigned char *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

inline std::vector<unsigned char>
encodeBody(const JobManifest &m)
{
    std::vector<unsigned char> body;
    body.reserve(96 + m.runs.size() * 20);
    putU64(body, m.params.recordBytes);
    putU64(body, m.params.recordsIn);
    putU64(body, m.params.chunkRecords);
    putU64(body, m.params.batchRecords);
    putU32(body, m.params.phase1Ell);
    putU32(body, m.params.phase2Ell);
    putU64(body, m.params.bufferBudgetBytes);
    putU64(body, m.chunksDone);
    body.push_back(m.phase1Complete ? 1 : 0);
    body.push_back(m.currentStore);
    putU32(body, m.passesDone);
    putU64(body, m.runs.size());
    for (const ManifestRun &r : m.runs) {
        putU64(body, r.offset);
        putU64(body, r.length);
        putU32(body, r.crc);
    }
    return body;
}

inline bool
decodeBody(const unsigned char *data, std::size_t len, JobManifest &m)
{
    ByteReader in(data, len);
    std::uint8_t p1done = 0;
    std::uint64_t runCount = 0;
    if (!in.getU64(m.params.recordBytes) ||
        !in.getU64(m.params.recordsIn) ||
        !in.getU64(m.params.chunkRecords) ||
        !in.getU64(m.params.batchRecords) ||
        !in.getU32(m.params.phase1Ell) ||
        !in.getU32(m.params.phase2Ell) ||
        !in.getU64(m.params.bufferBudgetBytes) ||
        !in.getU64(m.chunksDone) || !in.getU8(p1done) ||
        !in.getU8(m.currentStore) || !in.getU32(m.passesDone) ||
        !in.getU64(runCount))
        return false;
    if (p1done > 1 || m.currentStore > 1)
        return false;
    if (runCount != in.remaining() / 20 || in.remaining() % 20 != 0)
        return false;
    m.phase1Complete = p1done != 0;
    m.runs.resize(static_cast<std::size_t>(runCount));
    for (ManifestRun &r : m.runs) {
        if (!in.getU64(r.offset) || !in.getU64(r.length) ||
            !in.getU32(r.crc))
            return false;
    }
    return in.remaining() == 0;
}

} // namespace detail

/** Path of the live manifest inside @p dir. */
inline std::string
manifestPath(const std::string &dir)
{
    return dir + "/" + kManifestFileName;
}

/**
 * Durably commit @p m to the job directory: encode, write to the
 * temp name, fdatasync, rename over the live name, fsync the
 * directory.  @p policy (optional) is installed on the temp file so
 * crash tests can kill the process inside the commit window.
 */
inline void
saveManifest(const std::string &dir, const JobManifest &m,
             const std::shared_ptr<FaultPolicy> &policy = nullptr,
             const RetryPolicy &retry = {})
{
    const std::vector<unsigned char> body = detail::encodeBody(m);

    std::vector<unsigned char> image;
    image.reserve(24 + body.size());
    detail::putBytes(image, kManifestMagic, sizeof(kManifestMagic));
    detail::putU32(image, kManifestVersion);
    detail::putU64(image, body.size());
    detail::putU32(image, crc32Of(body.data(), body.size()));
    detail::putBytes(image, body.data(), body.size());

    const std::string tmp = dir + "/" + kManifestTempFileName;
    {
        ByteFile file = ByteFile::create(tmp);
        file.setFaultPolicy(policy);
        file.setRetryPolicy(retry);
        file.writeAt(0, image.data(), image.size(), "manifest commit");
        file.sync("manifest commit");
    }
    renameReplace(tmp, manifestPath(dir));
}

/**
 * Read and validate the manifest in @p dir.  Never throws for a bad
 * manifest — every defect maps to a distinct status so the caller can
 * decide between loud fallback and hard failure.  (I/O errors while
 * reading an *existing* file still throw: that is a device problem,
 * not a consistency problem.)
 */
inline ManifestLoadResult
loadManifest(const std::string &dir)
{
    ManifestLoadResult out;
    const std::string path = manifestPath(dir);

    if (!fileExists(path)) {
        out.status = ManifestStatus::NotFound;
        out.error = "no job manifest at " + path;
        return out;
    }
    ByteFile file = ByteFile::openRead(path);

    constexpr std::uint64_t kHeaderBytes = 24;
    const std::uint64_t size = file.sizeBytes();
    if (size < kHeaderBytes) {
        out.status = ManifestStatus::TornTail;
        out.error = "job manifest " + path + " is torn: " +
                    std::to_string(size) + " bytes, header needs " +
                    std::to_string(kHeaderBytes);
        return out;
    }

    std::vector<unsigned char> header(kHeaderBytes);
    file.readAt(0, header.data(), header.size(), "manifest header");
    if (std::memcmp(header.data(), kManifestMagic,
                    sizeof(kManifestMagic)) != 0) {
        out.status = ManifestStatus::BadMagic;
        out.error = "file " + path + " is not a bonsai job manifest "
                    "(magic mismatch)";
        return out;
    }
    detail::ByteReader rd(header.data() + sizeof(kManifestMagic),
                          header.size() - sizeof(kManifestMagic));
    std::uint32_t version = 0;
    std::uint64_t bodyBytes = 0;
    std::uint32_t bodyCrc = 0;
    rd.getU32(version);
    rd.getU64(bodyBytes);
    rd.getU32(bodyCrc);
    if (version != kManifestVersion) {
        out.status = ManifestStatus::WrongVersion;
        out.error = "job manifest " + path + " has version " +
                    std::to_string(version) + ", this build reads " +
                    std::to_string(kManifestVersion);
        return out;
    }
    if (size < kHeaderBytes + bodyBytes) {
        out.status = ManifestStatus::TornTail;
        out.error = "job manifest " + path + " is torn: body claims " +
                    std::to_string(bodyBytes) + " bytes, file has " +
                    std::to_string(size - kHeaderBytes);
        return out;
    }

    std::vector<unsigned char> body(
        static_cast<std::size_t>(bodyBytes));
    file.readAt(kHeaderBytes, body.data(), body.size(),
                "manifest body");
    if (crc32Of(body.data(), body.size()) != bodyCrc) {
        out.status = ManifestStatus::CrcMismatch;
        out.error = "job manifest " + path +
                    " failed its body checksum (corrupt or torn write)";
        return out;
    }
    if (!detail::decodeBody(body.data(), body.size(), out.manifest)) {
        out.status = ManifestStatus::Malformed;
        out.error = "job manifest " + path + " has a checksummed but "
                    "structurally inconsistent body";
        return out;
    }
    out.status = ManifestStatus::Ok;
    return out;
}

/**
 * Explain how @p got differs from @p expected, or "" when they match.
 * The message names the first differing field: resume refusals must
 * say exactly what changed between the checkpoint and the request.
 */
inline std::string
describeParamMismatch(const ManifestParams &expected,
                      const ManifestParams &got)
{
    const auto diff = [](const char *name, std::uint64_t want,
                         std::uint64_t have) {
        return std::string("checkpoint parameter mismatch: ") + name +
               " was " + std::to_string(have) + ", request has " +
               std::to_string(want);
    };
    if (got.recordBytes != expected.recordBytes)
        return diff("record width", expected.recordBytes,
                    got.recordBytes);
    if (got.recordsIn != expected.recordsIn)
        return diff("input records", expected.recordsIn,
                    got.recordsIn);
    if (got.chunkRecords != expected.chunkRecords)
        return diff("chunk records", expected.chunkRecords,
                    got.chunkRecords);
    if (got.batchRecords != expected.batchRecords)
        return diff("batch records", expected.batchRecords,
                    got.batchRecords);
    if (got.phase1Ell != expected.phase1Ell)
        return diff("phase-1 fan-in", expected.phase1Ell,
                    got.phase1Ell);
    if (got.phase2Ell != expected.phase2Ell)
        return diff("phase-2 fan-in", expected.phase2Ell,
                    got.phase2Ell);
    if (got.bufferBudgetBytes != expected.bufferBudgetBytes)
        return diff("buffer budget bytes", expected.bufferBudgetBytes,
                    got.bufferBudgetBytes);
    return "";
}

/**
 * Delete the job's durable artifacts (manifest, temp manifest, both
 * spill stores).  Used on fresh start — stale files from a previous
 * or aborted attempt must not survive into a new job — and on
 * successful completion, when the checkpoint has served its purpose.
 * Fixed file names mean no directory scan is needed.
 */
inline void
removeJobArtifacts(const std::string &dir)
{
    removeFileIfExists(dir + "/" + kManifestFileName);
    removeFileIfExists(dir + "/" + kManifestTempFileName);
    removeFileIfExists(dir + "/" + kFrontStoreFileName);
    removeFileIfExists(dir + "/" + kBackStoreFileName);
    syncDirectory(dir);
}

} // namespace bonsai::io

#endif // BONSAI_IO_MANIFEST_HPP
