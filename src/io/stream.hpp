/**
 * @file
 * Record-typed streaming interfaces: the boundary the sorter facades
 * read input through and write output through.
 *
 * A RecordSource yields records in batches (sequential, forward-only);
 * a RecordSink accepts them the same way.  Memory-backed
 * implementations keep the existing sort(std::vector&) facades working
 * as thin adapters; file-backed implementations let the out-of-core
 * engine (sorter/external.hpp) sort datasets that never fit in DRAM.
 *
 * The stream boundary is also where input data is checked against the
 * paper's reserved all-zero terminal record (Section V-B): a terminal
 * in user data would corrupt merge flushing, so requireNoTerminals()
 * fails loudly — in every build type — instead.
 */

#ifndef BONSAI_IO_STREAM_HPP
#define BONSAI_IO_STREAM_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/contract.hpp"
#include "io/byte_io.hpp"

namespace bonsai::io
{

/**
 * Reject the reserved all-zero terminal record in user data.  Not a
 * compiled-out contract: silently accepting a terminal corrupts merge
 * output far from the cause, so the check runs in release builds too
 * (same policy as MergePath's rank-invariant check).
 */
template <typename RecordT>
void
requireNoTerminals(const RecordT *recs, std::uint64_t count,
                   std::uint64_t base_index = 0)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        if (recs[i].isTerminal())
            contracts::fail(
                "precondition", "!record.isTerminal()", __FILE__,
                __LINE__,
                "input record " + std::to_string(base_index + i) +
                    " is the reserved all-zero terminal record "
                    "(Section V-B) and would corrupt merge flushing");
    }
}

/** Sequential, forward-only record producer. */
template <typename RecordT>
class RecordSource
{
  public:
    virtual ~RecordSource() = default;

    /** Total records this source will yield. */
    virtual std::uint64_t totalRecords() const = 0;

    /** Read up to @p max records into @p dst; 0 means exhausted. */
    virtual std::uint64_t read(RecordT *dst, std::uint64_t max) = 0;

    /**
     * Discard the next @p count records (resume path: input already
     * consumed by a previous attempt is not re-read).  The default
     * reads into a bounded scratch buffer; positioned sources override
     * with an O(1) cursor advance.  Returns the records skipped —
     * fewer than @p count only when the source is exhausted.
     */
    virtual std::uint64_t
    skip(std::uint64_t count)
    {
        constexpr std::uint64_t kScratchRecords = 1024;
        std::vector<RecordT> scratch(
            static_cast<std::size_t>(std::min(count, kScratchRecords)));
        std::uint64_t done = 0;
        while (done < count) {
            const std::uint64_t got =
                read(scratch.data(),
                     std::min<std::uint64_t>(count - done,
                                             scratch.size()));
            if (got == 0)
                break;
            done += got;
        }
        return done;
    }
};

/** Sequential record consumer. */
template <typename RecordT>
class RecordSink
{
  public:
    virtual ~RecordSink() = default;

    /** Append @p count records. */
    virtual void write(const RecordT *src, std::uint64_t count) = 0;

    /** All records delivered; flush any buffered state. */
    virtual void
    finish()
    {
    }

    /**
     * Sinks that can accept positioned (random-access) writes within a
     * pre-declared window return true.  The parallel final merge pass
     * uses this to stitch its splitter slices into the sink: every
     * slice knows its exact output rank range up front, so slices
     * write disjoint segments concurrently and the stored bytes are
     * identical to a sequential write in rank order.
     */
    virtual bool supportsSegments() const { return false; }

    /**
     * Declare a window of @p total records that will arrive through
     * writeSegment() calls at record offsets [0, total) relative to
     * the current sequential position.  Called at most once between
     * sequential writes; every offset is covered exactly once before
     * finish().  Only valid when supportsSegments().
     */
    virtual void
    beginSegments(std::uint64_t total)
    {
        (void)total;
        contracts::fail("precondition", "supportsSegments()", __FILE__,
                        __LINE__,
                        "beginSegments() on a sink without positioned-"
                        "write support");
    }

    /**
     * Write @p count records at window-relative record @p offset.
     * Safe to call concurrently for disjoint ranges.  Only valid
     * after beginSegments().
     */
    virtual void
    writeSegment(std::uint64_t offset, const RecordT *src,
                 std::uint64_t count)
    {
        (void)offset;
        (void)src;
        (void)count;
        contracts::fail("precondition", "supportsSegments()", __FILE__,
                        __LINE__,
                        "writeSegment() on a sink without positioned-"
                        "write support");
    }
};

/**
 * Sequential view of one disjoint segment of a parent sink's declared
 * window: write() forwards to writeSegment() at an advancing offset,
 * so the double-buffered StreamWriter can drive a slice of the final
 * merge without knowing about segments.
 */
template <typename RecordT>
class SegmentSink : public RecordSink<RecordT>
{
  public:
    /** @param base Window-relative record offset this segment starts
     *  at (the slice's first global output rank). */
    SegmentSink(RecordSink<RecordT> &parent, std::uint64_t base)
        : parent_(&parent), pos_(base)
    {
    }

    void
    write(const RecordT *src, std::uint64_t count) override
    {
        parent_->writeSegment(pos_, src, count);
        pos_ += count;
    }

  private:
    RecordSink<RecordT> *parent_;
    std::uint64_t pos_;
};

/** Source over an in-memory buffer (non-owning). */
template <typename RecordT>
class MemorySource : public RecordSource<RecordT>
{
  public:
    explicit MemorySource(std::span<const RecordT> data) : data_(data) {}

    std::uint64_t totalRecords() const override { return data_.size(); }

    std::uint64_t
    read(RecordT *dst, std::uint64_t max) override
    {
        const std::uint64_t n =
            std::min<std::uint64_t>(max, data_.size() - pos_);
        std::copy_n(data_.data() + pos_, n, dst);
        pos_ += n;
        return n;
    }

    std::uint64_t
    skip(std::uint64_t count) override
    {
        const std::uint64_t n =
            std::min<std::uint64_t>(count, data_.size() - pos_);
        pos_ += n;
        return n;
    }

  private:
    std::span<const RecordT> data_;
    std::uint64_t pos_ = 0;
};

/** Sink appending into a caller-owned vector. */
template <typename RecordT>
class MemorySink : public RecordSink<RecordT>
{
  public:
    explicit MemorySink(std::vector<RecordT> &out) : out_(&out) {}

    void
    write(const RecordT *src, std::uint64_t count) override
    {
        out_->insert(out_->end(), src, src + count);
    }

    bool supportsSegments() const override { return true; }

    void
    beginSegments(std::uint64_t total) override
    {
        base_ = out_->size();
        out_->resize(base_ + total);
    }

    void
    writeSegment(std::uint64_t offset, const RecordT *src,
                 std::uint64_t count) override
    {
        BONSAI_REQUIRE(base_ + offset + count <= out_->size(),
                       "segment write beyond the declared window");
        std::copy_n(src, count,
                    out_->begin() +
                        static_cast<std::ptrdiff_t>(base_ + offset));
    }

  private:
    std::vector<RecordT> *out_;
    std::uint64_t base_ = 0;
};

/** Source over a raw record file (fixed-width binary records). */
template <typename RecordT>
class FileSource : public RecordSource<RecordT>
{
    static_assert(std::is_trivially_copyable_v<RecordT>);

  public:
    /** Takes ownership of @p file; its size must be a whole number of
     *  records — a torn tail means the file is not what the caller
     *  thinks it is, so this fails loudly in every build type. */
    explicit FileSource(ByteFile file) : file_(std::move(file))
    {
        const std::uint64_t bytes = file_.sizeBytes();
        if (bytes % sizeof(RecordT) != 0)
            contracts::fail(
                "precondition", "sizeBytes() % sizeof(RecordT) == 0",
                __FILE__, __LINE__,
                "record file size (" + std::to_string(bytes) +
                    " bytes) is not a multiple of the record width (" +
                    std::to_string(sizeof(RecordT)) + " bytes)");
        total_ = bytes / sizeof(RecordT);
    }

    std::uint64_t totalRecords() const override { return total_; }

    std::uint64_t
    read(RecordT *dst, std::uint64_t max) override
    {
        const std::uint64_t n =
            std::min<std::uint64_t>(max, total_ - pos_);
        if (n > 0)
            file_.readAt(pos_ * sizeof(RecordT), dst,
                         n * sizeof(RecordT),
                         "sequential input scan");
        pos_ += n;
        return n;
    }

    std::uint64_t
    skip(std::uint64_t count) override
    {
        const std::uint64_t n =
            std::min<std::uint64_t>(count, total_ - pos_);
        pos_ += n;
        return n;
    }

  private:
    ByteFile file_;
    std::uint64_t total_ = 0;
    std::uint64_t pos_ = 0;
};

/** Sink writing raw records to a file sequentially. */
template <typename RecordT>
class FileSink : public RecordSink<RecordT>
{
    static_assert(std::is_trivially_copyable_v<RecordT>);

  public:
    /** Takes ownership of @p file (created/truncated by the caller). */
    explicit FileSink(ByteFile file) : file_(std::move(file)) {}

    void
    write(const RecordT *src, std::uint64_t count) override
    {
        file_.writeAt(pos_ * sizeof(RecordT), src,
                      count * sizeof(RecordT),
                      "sequential output write");
        pos_ += count;
    }

    bool supportsSegments() const override { return true; }

    void
    beginSegments(std::uint64_t total) override
    {
        base_ = pos_;
        pos_ += total; // the window is committed up front
    }

    void
    writeSegment(std::uint64_t offset, const RecordT *src,
                 std::uint64_t count) override
    {
        // Positioned pwrite: concurrent calls on disjoint ranges are
        // safe, which is what lets final-merge slices drain in
        // parallel.
        file_.writeAt((base_ + offset) * sizeof(RecordT), src,
                      count * sizeof(RecordT),
                      "final-pass segment write");
    }

    /** Durability point: fdatasync the finished output, then fsync
     *  its parent directory — a freshly created name is only durable
     *  once the directory entry itself is on the device.  Surfaces
     *  write-back errors and delayed-allocation ENOSPC inside the
     *  sort call rather than after process exit. */
    void
    finish() override
    {
        file_.sync("finishing output sink");
        syncParentDirectory(file_.path());
    }

    std::uint64_t recordsWritten() const { return pos_; }

    /** Inject faults into the output file (tests; nullptr = off). */
    void
    setFaultPolicy(std::shared_ptr<FaultPolicy> policy)
    {
        file_.setFaultPolicy(std::move(policy));
    }

    /** Replace the output file's transient-error retry schedule. */
    void
    setRetryPolicy(const RetryPolicy &policy)
    {
        file_.setRetryPolicy(policy);
    }

  private:
    ByteFile file_;
    std::uint64_t pos_ = 0;
    std::uint64_t base_ = 0;
};

} // namespace bonsai::io

#endif // BONSAI_IO_STREAM_HPP
