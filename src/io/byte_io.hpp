/**
 * @file
 * Positioned byte-level file I/O for the streaming storage layer.
 *
 * A ByteFile wraps one file descriptor and exposes pread/pwrite-style
 * positioned transfers, so concurrent readers (the prefetch worker and
 * the merge thread) and a concurrent writer (write-back) can share one
 * file without seek races.  Spill files are created unlinked: the
 * space is reclaimed by the kernel the moment the store is destroyed,
 * even on a crash.
 *
 * Real devices fail: transfers come back short, syscalls are
 * interrupted, and the media throws transient EIO under load.  Every
 * transfer therefore runs through a bounded retry loop (immediate
 * retry for EINTR and short transfers, exponential backoff for the
 * transient errno set), and a FaultPolicy hook lets tests inject those
 * failures deterministically at the exact syscall boundary the kernel
 * would produce them.
 *
 * This is the only part of the io layer that talks to the OS; record
 * typed streams (io/stream.hpp) and the run store (io/run_store.hpp)
 * are header-only templates layered on top.
 */

#ifndef BONSAI_IO_BYTE_IO_HPP
#define BONSAI_IO_BYTE_IO_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace bonsai::io
{

/** One I/O attempt about to be issued by a ByteFile. */
struct FaultOp {
    enum class Kind { Read, Write, Sync };
    Kind kind = Kind::Read;
    std::uint64_t offset = 0; ///< absolute byte offset of this attempt
    std::uint64_t bytes = 0;  ///< bytes this attempt wants to transfer
};

/** What a FaultPolicy does to one attempt. */
struct FaultAction {
    /** Cap the transfer at this many bytes (simulates a short I/O). */
    std::uint64_t maxBytes = ~std::uint64_t{0};
    /** Nonzero: skip the syscall and fail with this errno instead. */
    int failWith = 0;
};

/**
 * Injection seam, consulted once per syscall attempt (including each
 * retry, so a policy can model an error that heals after N tries).
 * Implementations must be thread-safe: prefetch, merge and write-back
 * workers issue attempts concurrently.
 */
class FaultPolicy
{
  public:
    virtual ~FaultPolicy() = default;
    virtual FaultAction onAttempt(const FaultOp &op) = 0;
};

/** Bounded-retry schedule for transient errors (EIO, EAGAIN). */
struct RetryPolicy {
    /** Failed attempts tolerated per transfer before giving up. */
    unsigned maxAttempts = 4;
    /** First backoff sleep; doubles per consecutive failure. */
    unsigned backoffBaseMicros = 200;
    /** Consecutive EINTRs tolerated before the transfer is abandoned. */
    unsigned eintrLimit = 1024;
};

/** Snapshot of a file's retry counters (relaxed; telemetry only). */
struct IoRetryStats {
    std::uint64_t transientRetries = 0; ///< EIO/EAGAIN attempts retried
    std::uint64_t eintrRetries = 0;     ///< interrupted syscalls retried
    std::uint64_t shortTransfers = 0;   ///< partial transfers resumed

    IoRetryStats &operator+=(const IoRetryStats &other)
    {
        transientRetries += other.transientRetries;
        eintrRetries += other.eintrRetries;
        shortTransfers += other.shortTransfers;
        return *this;
    }
};

/** Move-only positioned-I/O file handle. */
class ByteFile
{
  public:
    /** Open an existing file for reading. */
    static ByteFile openRead(const std::string &path);

    /** Create (or truncate) a file for writing and reading back. */
    static ByteFile create(const std::string &path);

    /**
     * Open (creating if absent, never truncating) a file for reading
     * and writing.  This is the resume-mode open: a persistent spill
     * file keeps whatever bytes a previous attempt already made
     * durable.
     */
    static ByteFile openReadWrite(const std::string &path);

    /**
     * Create an anonymous spill file in @p dir (empty = $TMPDIR or
     * /tmp).  Trailing slashes in the directory are normalized away;
     * when the $TMPDIR-derived default is unwritable the file falls
     * back to /tmp before giving up.  The name is unlinked immediately
     * after creation, so the storage vanishes with the last handle.
     */
    static ByteFile createTemp(const std::string &dir = "");

    ByteFile(ByteFile &&other) noexcept;
    ByteFile &operator=(ByteFile &&other) noexcept;
    ByteFile(const ByteFile &) = delete;
    ByteFile &operator=(const ByteFile &) = delete;
    ~ByteFile();

    /**
     * Read exactly @p count bytes at @p offset (throws on EOF).
     * @p context, when given, names what was being streamed and is
     * included in the error message along with offset and the bytes
     * still outstanding.
     */
    void readAt(std::uint64_t offset, void *dst, std::uint64_t count,
                const char *context = nullptr) const;

    /** Write exactly @p count bytes at @p offset (extends the file). */
    void writeAt(std::uint64_t offset, const void *src,
                 std::uint64_t count, const char *context = nullptr);

    /**
     * Flush completed writes to the device (fdatasync).  Surfaces
     * write-back errors and delayed-allocation ENOSPC inside the sort
     * call instead of after process exit.
     */
    void sync(const char *context = nullptr);

    /** Current file size in bytes. */
    std::uint64_t sizeBytes() const;

    /** The path the file was opened with ("" for unlinked spills). */
    const std::string &path() const { return path_; }

    /** Install the fault-injection hook (nullptr = no injection). */
    void setFaultPolicy(std::shared_ptr<FaultPolicy> policy)
    {
        policy_ = std::move(policy);
    }

    /** Replace the transient-error retry schedule. */
    void setRetryPolicy(const RetryPolicy &policy) { retry_ = policy; }

    /** Cumulative retry counters since the file was opened. */
    IoRetryStats retryStats() const;

  private:
    /** Retry counters; heap-held so the handle stays move-only. */
    struct Counters {
        std::atomic<std::uint64_t> transient{0};
        std::atomic<std::uint64_t> eintr{0};
        std::atomic<std::uint64_t> shortTransfers{0};
    };

    ByteFile(int fd, std::string path)
        : fd_(fd), path_(std::move(path)),
          counters_(std::make_unique<Counters>())
    {
    }

    FaultAction consultPolicy(const FaultOp &op) const;

    int fd_ = -1;
    std::string path_;
    std::shared_ptr<FaultPolicy> policy_;
    RetryPolicy retry_;
    std::unique_ptr<Counters> counters_;
};

/**
 * fsync a directory so that entries created, renamed or unlinked in
 * it survive a crash.  POSIX only guarantees a new (or renamed) name
 * is durable once its *parent directory* has been synced; fdatasync
 * on the file alone leaves the name itself volatile.
 */
void syncDirectory(const std::string &dir);

/**
 * syncDirectory() on the parent of @p path.  A path without a slash
 * syncs the current directory.  No-op for an empty path (unlinked
 * spill files have no name to make durable).
 */
void syncParentDirectory(const std::string &path);

/** mkdir -p: create @p dir and any missing ancestors (mode 0755). */
void createDirectories(const std::string &dir);

/** True when @p path names an existing filesystem entry. */
bool fileExists(const std::string &path);

/**
 * Unlink @p path if it exists; returns true when a file was removed.
 * Missing files are not an error (idempotent cleanup).
 */
bool removeFileIfExists(const std::string &path);

/**
 * Atomically rename @p from onto @p to (replacing it), then fsync the
 * destination's parent directory so the new name is durable.  This is
 * the commit step of the write-temp / fdatasync / rename protocol.
 */
void renameReplace(const std::string &from, const std::string &to);

} // namespace bonsai::io

#endif // BONSAI_IO_BYTE_IO_HPP
