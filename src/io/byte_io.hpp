/**
 * @file
 * Positioned byte-level file I/O for the streaming storage layer.
 *
 * A ByteFile wraps one file descriptor and exposes pread/pwrite-style
 * positioned transfers, so concurrent readers (the prefetch worker and
 * the merge thread) and a concurrent writer (write-back) can share one
 * file without seek races.  Spill files are created unlinked: the
 * space is reclaimed by the kernel the moment the store is destroyed,
 * even on a crash.
 *
 * This is the only part of the io layer that talks to the OS; record
 * typed streams (io/stream.hpp) and the run store (io/run_store.hpp)
 * are header-only templates layered on top.
 */

#ifndef BONSAI_IO_BYTE_IO_HPP
#define BONSAI_IO_BYTE_IO_HPP

#include <cstdint>
#include <string>

namespace bonsai::io
{

/** Move-only positioned-I/O file handle. */
class ByteFile
{
  public:
    /** Open an existing file for reading. */
    static ByteFile openRead(const std::string &path);

    /** Create (or truncate) a file for writing and reading back. */
    static ByteFile create(const std::string &path);

    /**
     * Create an anonymous spill file in @p dir (empty = $TMPDIR or
     * /tmp).  The name is unlinked immediately after creation, so the
     * storage vanishes with the last handle.
     */
    static ByteFile createTemp(const std::string &dir = "");

    ByteFile(ByteFile &&other) noexcept;
    ByteFile &operator=(ByteFile &&other) noexcept;
    ByteFile(const ByteFile &) = delete;
    ByteFile &operator=(const ByteFile &) = delete;
    ~ByteFile();

    /** Read exactly @p count bytes at @p offset (throws on EOF). */
    void readAt(std::uint64_t offset, void *dst,
                std::uint64_t count) const;

    /** Write exactly @p count bytes at @p offset (extends the file). */
    void writeAt(std::uint64_t offset, const void *src,
                 std::uint64_t count);

    /** Current file size in bytes. */
    std::uint64_t sizeBytes() const;

    /** The path the file was opened with ("" for unlinked spills). */
    const std::string &path() const { return path_; }

  private:
    ByteFile(int fd, std::string path) : fd_(fd), path_(std::move(path))
    {
    }

    int fd_ = -1;
    std::string path_;
};

} // namespace bonsai::io

#endif // BONSAI_IO_BYTE_IO_HPP
