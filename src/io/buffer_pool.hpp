/**
 * @file
 * Bounded buffer pool for the streaming sorter's batched I/O.
 *
 * The out-of-core merge keeps every run cursor double-buffered with
 * batch-sized buffers (b records each, mirroring the hardware data
 * loader's batched reads): while the merge consumes one batch, the
 * prefetch worker fills the other.  The pool bounds the total buffer
 * bytes — the software analogue of the paper's Equation 10 on-chip
 * budget b * ell — and the engine derives its effective merge fan-in
 * from the buffer count, so memory use never exceeds the budget no
 * matter how many runs phase 1 produced.
 *
 * A pool whose budget cannot hold even one batch would make the first
 * acquire() block forever; the constructor fails loudly instead (in
 * every build type).
 *
 * TaskGate is the completion handshake for one in-flight background
 * task (a prefetch or a write-back posted to a BackgroundWorker):
 * arm() before posting, open()/fail() from the task, wait() on the
 * consuming side returns the seconds it blocked — the stall telemetry
 * the stream reports.
 *
 * Both types are leaf locks in the common/sync.hpp capability scheme:
 * every entry point is BONSAI_EXCLUDES its own mutex and no critical
 * section acquires another lock, so the -Wthread-safety build proves
 * the locking discipline structurally (guarded members, no re-entry).
 */

#ifndef BONSAI_IO_BUFFER_POOL_HPP
#define BONSAI_IO_BUFFER_POOL_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "common/sync.hpp"

namespace bonsai::io
{

/** Completion handshake for one in-flight background task. */
class TaskGate
{
  public:
    /** Mark a task as in flight (call before posting it). */
    void
    arm() BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        BONSAI_REQUIRE(open_, "arming a gate with a task in flight");
        open_ = false;
    }

    /** Task finished successfully.  Notifies while holding the lock:
     *  the waiter may destroy this gate the moment wait() returns, so
     *  the notifying thread must be unable to touch the gate after
     *  the waiter can observe open_. */
    void
    open() BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        open_ = true;
        cv_.notifyAll();
    }

    /** Task failed; wait() rethrows @p err. */
    void
    fail(std::exception_ptr err) BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        error_ = err;
        open_ = true;
        cv_.notifyAll();
    }

    /** Block until the in-flight task (if any) completed; returns the
     *  seconds spent blocked and rethrows the task's error, if any.
     *  Safe to call again at any time: an open gate returns (or
     *  rethrows a still-unconsumed error) immediately. */
    double
    wait() BONSAI_EXCLUDES(mutex_)
    {
        const auto start = std::chrono::steady_clock::now();
        std::exception_ptr err;
        {
            ScopedLock lock(mutex_);
            while (!open_)
                cv_.wait(mutex_);
            err = error_;
            error_ = nullptr;
        }
        if (err)
            std::rethrow_exception(err);
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

  private:
    Mutex mutex_;
    CondVar cv_;
    std::exception_ptr error_ BONSAI_GUARDED_BY(mutex_);
    /** Nothing in flight initially. */
    bool open_ BONSAI_GUARDED_BY(mutex_) = true;
};

/** Bounded pool of batch-sized record buffers. */
template <typename RecordT>
class BufferPool
{
  public:
    /**
     * @param batch_records Records per buffer (the paper's b, in
     *        records).
     * @param budget_bytes Total buffer budget; the pool hands out at
     *        most budget_bytes / (batch_records * sizeof(RecordT))
     *        buffers.
     */
    BufferPool(std::uint64_t batch_records, std::uint64_t budget_bytes)
        : batch_(batch_records)
    {
        if (batch_records == 0)
            contracts::fail("precondition", "batch_records > 0",
                            __FILE__, __LINE__,
                            "BufferPool batch size must be nonzero");
        const std::uint64_t batch_bytes =
            batch_records * sizeof(RecordT);
        count_ = budget_bytes / batch_bytes;
        if (count_ == 0)
            contracts::fail(
                "precondition", "budget_bytes >= batch bytes", __FILE__,
                __LINE__,
                "BufferPool budget (" + std::to_string(budget_bytes) +
                    " bytes) is smaller than one batch buffer (" +
                    std::to_string(batch_bytes) +
                    " bytes); acquire() would deadlock");
    }

    /** Records per buffer (b). */
    std::uint64_t batchRecords() const { return batch_; }

    /** Total buffers the budget affords. */
    std::uint64_t buffers() const { return count_; }

    /** Total bytes the pool may hold at once. */
    std::uint64_t
    budgetBytes() const
    {
        return count_ * batch_ * sizeof(RecordT);
    }

    /**
     * Take a buffer of batchRecords() records, blocking while all
     * buffers are out.  Callers must bound their concurrent holdings
     * by buffers() (the stream engine derives its fan-in *and* its
     * phase-2 group concurrency from it), or acquire() deadlocks.
     */
    std::vector<RecordT>
    acquire() BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        while (free_.empty() && allocated_ >= count_)
            available_.wait(mutex_);
        ++outstanding_;
        peak_ = std::max(peak_, outstanding_);
        if (!free_.empty()) {
            std::vector<RecordT> buf = std::move(free_.back());
            free_.pop_back();
            return buf;
        }
        ++allocated_;
        lock.unlock();
        return std::vector<RecordT>(batch_);
    }

    /** Return a buffer taken with acquire(). */
    void
    release(std::vector<RecordT> buf) BONSAI_EXCLUDES(mutex_)
    {
        {
            ScopedLock lock(mutex_);
            BONSAI_REQUIRE(outstanding_ > 0,
                           "release without a matching acquire");
            --outstanding_;
            free_.push_back(std::move(buf));
        }
        available_.notifyOne();
    }

    /** Buffers currently held by callers. */
    std::uint64_t
    outstanding() const BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        return outstanding_;
    }

    /**
     * High-water mark of concurrently held buffers — the concurrent-
     * acquire accounting the parallel phase-2 merge is tested against:
     * it must never exceed buffers(), or the budget derivation
     * admitted more lanes than the pool can feed.
     */
    std::uint64_t
    peakOutstanding() const BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        return peak_;
    }

  private:
    std::uint64_t batch_;
    std::uint64_t count_ = 0;

    mutable Mutex mutex_;
    CondVar available_;
    std::vector<std::vector<RecordT>> free_ BONSAI_GUARDED_BY(mutex_);
    std::uint64_t allocated_ BONSAI_GUARDED_BY(mutex_) = 0;
    std::uint64_t outstanding_ BONSAI_GUARDED_BY(mutex_) = 0;
    std::uint64_t peak_ BONSAI_GUARDED_BY(mutex_) = 0;
};

} // namespace bonsai::io

#endif // BONSAI_IO_BUFFER_POOL_HPP
