/**
 * @file
 * RAII lease of one io::BufferPool buffer — the adapter that lets
 * pool-backed batch buffers travel through pipeline stage queues.
 *
 * A raw acquire()d std::vector owes the pool a release(); holding it
 * inside a queue would leak the pool's outstanding count if the
 * pipeline unwinds with items still enqueued (BoundedQueue::poison
 * destroys pending items).  PoolLease makes the release part of the
 * item's destructor, so a poisoned queue, a dropped stage local, or a
 * normal recycle all return the buffer — BufferPool.outstanding()
 * reaches zero on every unwind path by construction.
 *
 * Movable, not copyable: exactly one owner at a time, like the buffer
 * itself.
 */

#ifndef BONSAI_IO_POOL_LEASE_HPP
#define BONSAI_IO_POOL_LEASE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "io/buffer_pool.hpp"

namespace bonsai::io
{

template <typename RecordT>
class PoolLease
{
  public:
    /** An empty lease (no buffer, no pool). */
    PoolLease() = default;

    /** Acquire one buffer from @p pool, blocking while the pool is
     *  exhausted; released when the lease dies. */
    explicit PoolLease(BufferPool<RecordT> &pool)
        : pool_(&pool), buf_(pool.acquire())
    {
    }

    PoolLease(PoolLease &&other) noexcept
        : pool_(other.pool_), buf_(std::move(other.buf_)),
          len_(other.len_)
    {
        other.pool_ = nullptr;
        other.len_ = 0;
    }

    PoolLease &
    operator=(PoolLease &&other) noexcept
    {
        if (this != &other) {
            reset();
            pool_ = other.pool_;
            buf_ = std::move(other.buf_);
            len_ = other.len_;
            other.pool_ = nullptr;
            other.len_ = 0;
        }
        return *this;
    }

    PoolLease(const PoolLease &) = delete;
    PoolLease &operator=(const PoolLease &) = delete;

    ~PoolLease() { reset(); }

    /** True when a buffer is held. */
    bool held() const { return pool_ != nullptr; }

    RecordT *data() { return buf_.data(); }
    const RecordT *data() const { return buf_.data(); }

    /** Record capacity of the held buffer (the pool's batch size). */
    std::uint64_t capacity() const { return buf_.size(); }

    /** Records currently meaningful in the buffer — payload metadata
     *  carried with the lease so queue consumers know the fill. */
    std::uint64_t length() const { return len_; }

    void setLength(std::uint64_t len) { len_ = len; }

    /** Return the buffer to its pool early (idempotent). */
    void
    reset()
    {
        if (pool_ != nullptr) {
            pool_->release(std::move(buf_));
            pool_ = nullptr;
        }
        len_ = 0;
    }

  private:
    BufferPool<RecordT> *pool_ = nullptr;
    std::vector<RecordT> buf_;
    std::uint64_t len_ = 0;
};

} // namespace bonsai::io

#endif // BONSAI_IO_POOL_LEASE_HPP
