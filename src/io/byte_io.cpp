#include "io/byte_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

namespace bonsai::io
{

namespace
{

std::string
errnoMessage(int err)
{
    return std::error_code(err, std::generic_category()).message();
}

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw std::runtime_error("bonsai io: " + what + " (" + path +
                             "): " + errnoMessage(errno));
}

/**
 * Transfer-level error with everything a post-mortem needs: which
 * file, the offset the transfer stalled at, how much of the request
 * was still outstanding, and the caller-supplied context naming the
 * run/chunk that was streaming.  @p err == 0 suppresses the errno
 * suffix (used for EOF, which is not a syscall failure).
 */
[[noreturn]] void
throwIoError(const char *what, const std::string &path,
             std::uint64_t offset, std::uint64_t remaining,
             std::uint64_t total, const char *context, int err)
{
    std::string msg = "bonsai io: ";
    msg += what;
    msg += " (";
    msg += path.empty() ? "unlinked spill" : path;
    msg += ", offset ";
    msg += std::to_string(offset);
    if (total > 0) {
        msg += ", ";
        msg += std::to_string(remaining);
        msg += " of ";
        msg += std::to_string(total);
        msg += " bytes outstanding";
    }
    if (context != nullptr && *context != '\0') {
        msg += ", while ";
        msg += context;
    }
    msg += ")";
    if (err != 0) {
        msg += ": ";
        msg += errnoMessage(err);
    }
    throw std::runtime_error(msg);
}

/**
 * The transient set is retried with backoff: EIO covers media hiccups
 * that heal on retry, EAGAIN covers descriptors that momentarily
 * cannot accept the transfer.  ENOSPC, EBADF etc. are permanent and
 * fail the transfer immediately.
 */
bool
transientErrno(int err)
{
    if (err == EIO || err == EAGAIN)
        return true;
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    if (err == EWOULDBLOCK)
        return true;
#endif
    return false;
}

/** Exponential backoff: base << (failures-1), capped at 100 ms. */
void
backoffSleep(unsigned failures, unsigned baseMicros)
{
    constexpr std::uint64_t kMaxBackoffMicros = 100'000;
    const unsigned shift = std::min(failures - 1, 16u);
    const std::uint64_t micros = std::min<std::uint64_t>(
        std::uint64_t{baseMicros} << shift, kMaxBackoffMicros);
    timespec ts = {};
    ts.tv_sec = static_cast<time_t>(micros / 1'000'000);
    ts.tv_nsec = static_cast<long>((micros % 1'000'000) * 1000);
    while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
    }
}

std::string
stripTrailingSlashes(std::string dir)
{
    while (dir.size() > 1 && dir.back() == '/')
        dir.pop_back();
    return dir;
}

int
tryMkstemp(const std::string &dir, std::string &tmpl)
{
    tmpl = dir + "/bonsai-spill-XXXXXX";
    return ::mkstemp(tmpl.data());
}

} // namespace

ByteFile
ByteFile::openRead(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throwErrno("open for read failed", path);
    return ByteFile(fd, path);
}

ByteFile
ByteFile::create(const std::string &path)
{
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throwErrno("create failed", path);
    return ByteFile(fd, path);
}

ByteFile
ByteFile::openReadWrite(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0)
        throwErrno("open for read/write failed", path);
    return ByteFile(fd, path);
}

ByteFile
ByteFile::createTemp(const std::string &dir)
{
    std::string base = stripTrailingSlashes(dir);
    bool fromEnv = false;
    if (base.empty()) {
        // getenv is only mt-unsafe against a concurrent setenv; the
        // sorter never writes the environment, so reads cannot race.
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env access
        const char *env = std::getenv("TMPDIR");
        base = env && *env ? stripTrailingSlashes(env) : "/tmp";
        fromEnv = true;
    }
    std::string tmpl;
    int fd = tryMkstemp(base, tmpl);
    if (fd < 0 && fromEnv && base != "/tmp") {
        // $TMPDIR is advisory: degrade to /tmp rather than failing
        // the sort because the environment points somewhere stale.
        const int firstErr = errno;
        fd = tryMkstemp("/tmp", tmpl);
        if (fd < 0)
            throw std::runtime_error(
                "bonsai io: cannot create a spill file in $TMPDIR (" +
                base + ": " + errnoMessage(firstErr) +
                ") or /tmp: " + errnoMessage(errno));
    }
    if (fd < 0)
        throw std::runtime_error(
            "bonsai io: spill directory " + base +
            " is unusable (mkstemp " + tmpl +
            "): " + errnoMessage(errno) +
            "; pass a writable spill directory");
    // Unlink immediately: the kernel frees the blocks with the last
    // descriptor, so spills never outlive the process.
    ::unlink(tmpl.c_str());
    return ByteFile(fd, "");
}

ByteFile::ByteFile(ByteFile &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)),
      policy_(std::move(other.policy_)), retry_(other.retry_),
      counters_(std::move(other.counters_))
{
}

ByteFile &
ByteFile::operator=(ByteFile &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        path_ = std::move(other.path_);
        policy_ = std::move(other.policy_);
        retry_ = other.retry_;
        counters_ = std::move(other.counters_);
    }
    return *this;
}

ByteFile::~ByteFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

FaultAction
ByteFile::consultPolicy(const FaultOp &op) const
{
    if (!policy_)
        return {};
    return policy_->onAttempt(op);
}

void
ByteFile::readAt(std::uint64_t offset, void *dst, std::uint64_t count,
                 const char *context) const
{
    char *out = static_cast<char *>(dst);
    const std::uint64_t total = count;
    unsigned failures = 0; // consecutive transient failures
    unsigned eintrRun = 0; // consecutive interruptions
    while (count > 0) {
        const FaultAction act =
            consultPolicy({FaultOp::Kind::Read, offset, count});
        const std::uint64_t ask = std::min(
            count, std::max<std::uint64_t>(act.maxBytes, 1));
        ssize_t got = -1;
        if (act.failWith != 0)
            errno = act.failWith;
        else
            got = ::pread(fd_, out, ask, static_cast<off_t>(offset));
        if (got < 0) {
            const int err = errno;
            if (err == EINTR) {
                counters_->eintr.fetch_add(1,
                                           std::memory_order_relaxed);
                if (++eintrRun > retry_.eintrLimit)
                    throwIoError("pread interrupted past the EINTR "
                                 "retry limit",
                                 path_, offset, count, total, context,
                                 err);
                continue;
            }
            if (transientErrno(err) && failures < retry_.maxAttempts) {
                ++failures;
                counters_->transient.fetch_add(
                    1, std::memory_order_relaxed);
                backoffSleep(failures, retry_.backoffBaseMicros);
                continue;
            }
            throwIoError("pread failed", path_, offset, count, total,
                         context, err);
        }
        if (got == 0)
            throwIoError("pread hit end of file", path_, offset, count,
                         total, context, 0);
        failures = 0;
        eintrRun = 0;
        if (static_cast<std::uint64_t>(got) < count)
            counters_->shortTransfers.fetch_add(
                1, std::memory_order_relaxed);
        out += got;
        offset += static_cast<std::uint64_t>(got);
        count -= static_cast<std::uint64_t>(got);
    }
}

void
ByteFile::writeAt(std::uint64_t offset, const void *src,
                  std::uint64_t count, const char *context)
{
    const char *in = static_cast<const char *>(src);
    const std::uint64_t total = count;
    unsigned failures = 0;
    unsigned eintrRun = 0;
    while (count > 0) {
        const FaultAction act =
            consultPolicy({FaultOp::Kind::Write, offset, count});
        const std::uint64_t ask = std::min(
            count, std::max<std::uint64_t>(act.maxBytes, 1));
        ssize_t put = -1;
        if (act.failWith != 0)
            errno = act.failWith;
        else
            put = ::pwrite(fd_, in, ask, static_cast<off_t>(offset));
        if (put < 0) {
            const int err = errno;
            if (err == EINTR) {
                counters_->eintr.fetch_add(1,
                                           std::memory_order_relaxed);
                if (++eintrRun > retry_.eintrLimit)
                    throwIoError("pwrite interrupted past the EINTR "
                                 "retry limit",
                                 path_, offset, count, total, context,
                                 err);
                continue;
            }
            if (transientErrno(err) && failures < retry_.maxAttempts) {
                ++failures;
                counters_->transient.fetch_add(
                    1, std::memory_order_relaxed);
                backoffSleep(failures, retry_.backoffBaseMicros);
                continue;
            }
            throwIoError("pwrite failed", path_, offset, count, total,
                         context, err);
        }
        failures = 0;
        eintrRun = 0;
        if (static_cast<std::uint64_t>(put) < count)
            counters_->shortTransfers.fetch_add(
                1, std::memory_order_relaxed);
        in += put;
        offset += static_cast<std::uint64_t>(put);
        count -= static_cast<std::uint64_t>(put);
    }
}

void
ByteFile::sync(const char *context)
{
    unsigned failures = 0;
    unsigned eintrRun = 0;
    for (;;) {
        const FaultAction act =
            consultPolicy({FaultOp::Kind::Sync, 0, 0});
        int rc = -1;
        if (act.failWith != 0)
            errno = act.failWith;
        else
            rc = ::fdatasync(fd_);
        if (rc == 0)
            return;
        const int err = errno;
        if (err == EINTR) {
            counters_->eintr.fetch_add(1, std::memory_order_relaxed);
            if (++eintrRun > retry_.eintrLimit)
                throwIoError(
                    "fdatasync interrupted past the EINTR retry limit",
                    path_, 0, 0, 0, context, err);
            continue;
        }
        if (transientErrno(err) && failures < retry_.maxAttempts) {
            ++failures;
            counters_->transient.fetch_add(1,
                                           std::memory_order_relaxed);
            backoffSleep(failures, retry_.backoffBaseMicros);
            continue;
        }
        throwIoError("fdatasync failed", path_, 0, 0, 0, context, err);
    }
}

IoRetryStats
ByteFile::retryStats() const
{
    IoRetryStats out;
    out.transientRetries =
        counters_->transient.load(std::memory_order_relaxed);
    out.eintrRetries = counters_->eintr.load(std::memory_order_relaxed);
    out.shortTransfers =
        counters_->shortTransfers.load(std::memory_order_relaxed);
    return out;
}

std::uint64_t
ByteFile::sizeBytes() const
{
    struct stat st = {};
    if (::fstat(fd_, &st) != 0)
        throwErrno("fstat failed", path_);
    return static_cast<std::uint64_t>(st.st_size);
}

void
syncDirectory(const std::string &dir)
{
    const std::string target = dir.empty() ? "." : dir;
    const int fd = ::open(target.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        throwErrno("open directory for fsync failed", target);
    int rc;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    const int err = errno;
    ::close(fd);
    if (rc != 0) {
        errno = err;
        throwErrno("directory fsync failed", target);
    }
}

void
syncParentDirectory(const std::string &path)
{
    if (path.empty())
        return;
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos) {
        syncDirectory(".");
        return;
    }
    syncDirectory(slash == 0 ? "/" : path.substr(0, slash));
}

void
createDirectories(const std::string &dir)
{
    if (dir.empty())
        return;
    const std::string target = stripTrailingSlashes(dir);
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        pos = target.find('/', pos + 1);
        const std::string prefix =
            pos == std::string::npos ? target : target.substr(0, pos);
        if (prefix.empty())
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
            throwErrno("mkdir failed", prefix);
    }
}

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
}

bool
removeFileIfExists(const std::string &path)
{
    if (::unlink(path.c_str()) == 0)
        return true;
    if (errno == ENOENT)
        return false;
    throwErrno("unlink failed", path);
}

void
renameReplace(const std::string &from, const std::string &to)
{
    if (::rename(from.c_str(), to.c_str()) != 0)
        throwErrno("rename failed", from + " -> " + to);
    syncParentDirectory(to);
}

} // namespace bonsai::io
