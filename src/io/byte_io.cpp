#include "io/byte_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <system_error>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace bonsai::io
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw std::runtime_error(
        "bonsai io: " + what + " (" + path + "): " +
        std::error_code(errno, std::generic_category()).message());
}

} // namespace

ByteFile
ByteFile::openRead(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        throwErrno("open for read failed", path);
    return ByteFile(fd, path);
}

ByteFile
ByteFile::create(const std::string &path)
{
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throwErrno("create failed", path);
    return ByteFile(fd, path);
}

ByteFile
ByteFile::createTemp(const std::string &dir)
{
    std::string base = dir;
    if (base.empty()) {
        // getenv is only mt-unsafe against a concurrent setenv; the
        // sorter never writes the environment, so reads cannot race.
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env access
        const char *env = std::getenv("TMPDIR");
        base = env && *env ? env : "/tmp";
    }
    std::string tmpl = base + "/bonsai-spill-XXXXXX";
    const int fd = ::mkstemp(tmpl.data());
    if (fd < 0)
        throwErrno("mkstemp failed", tmpl);
    // Unlink immediately: the kernel frees the blocks with the last
    // descriptor, so spills never outlive the process.
    ::unlink(tmpl.c_str());
    return ByteFile(fd, "");
}

ByteFile::ByteFile(ByteFile &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_))
{
}

ByteFile &
ByteFile::operator=(ByteFile &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        path_ = std::move(other.path_);
    }
    return *this;
}

ByteFile::~ByteFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ByteFile::readAt(std::uint64_t offset, void *dst,
                 std::uint64_t count) const
{
    char *out = static_cast<char *>(dst);
    while (count > 0) {
        const ssize_t got = ::pread(fd_, out, count,
                                    static_cast<off_t>(offset));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("pread failed", path_);
        }
        if (got == 0)
            throw std::runtime_error(
                "bonsai io: pread hit end of file (" + path_ + ")");
        out += got;
        offset += static_cast<std::uint64_t>(got);
        count -= static_cast<std::uint64_t>(got);
    }
}

void
ByteFile::writeAt(std::uint64_t offset, const void *src,
                  std::uint64_t count)
{
    const char *in = static_cast<const char *>(src);
    while (count > 0) {
        const ssize_t put = ::pwrite(fd_, in, count,
                                     static_cast<off_t>(offset));
        if (put < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("pwrite failed", path_);
        }
        in += put;
        offset += static_cast<std::uint64_t>(put);
        count -= static_cast<std::uint64_t>(put);
    }
}

std::uint64_t
ByteFile::sizeBytes() const
{
    struct stat st = {};
    if (::fstat(fd_, &st) != 0)
        throwErrno("fstat failed", path_);
    return static_cast<std::uint64_t>(st.st_size);
}

} // namespace bonsai::io
