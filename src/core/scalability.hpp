/**
 * @file
 * Scalability model: latency per GB of the latency-optimized Bonsai
 * sorters across the full megabyte-to-petabyte range (paper Figure 13
 * and the Bonsai row of Table I).
 *
 * The curve is piecewise:
 *  - input fits DRAM: DRAM sorter, latency/GB = stages / beta_dram
 *    (stages from the ell-way tree over presorted 16-record runs);
 *  - input exceeds DRAM: two-phase SSD sorter, latency/GB =
 *    (1 + phase-2 stages) / beta_io, where phase 1 emits
 *    DRAM-capacity-sized sorted chunks and each phase-2 stage is a
 *    full SSD round trip merging ell_2 runs.
 *
 * The four latency steps the paper annotates fall out of the stage
 * counts: an extra DRAM stage above 1 GB, the SSD switch above DRAM
 * capacity, and extra phase-2 stages above chunk*ell_2 and
 * chunk*ell_2^2 bytes.
 */

#ifndef BONSAI_CORE_SCALABILITY_HPP
#define BONSAI_CORE_SCALABILITY_HPP

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "model/perf_model.hpp"

namespace bonsai::core
{

/** Knobs of the deployed sorter pair the curve describes. */
struct ScalabilityParams
{
    // DRAM sorter (as built on the F1).
    unsigned dramEll = 256;   ///< model-optimal leaves (Fig. 13);
                              ///< use 64 for the as-implemented sorter
    double dramBandwidth = 29.0 * kGB; ///< measured, paper footnote 2
    std::uint64_t dramCapacity = 64 * kGB;
    std::uint64_t presortRun = 16;
    std::uint64_t recordBytes = 4;

    // SSD sorter.
    unsigned ssdEll = 256;    ///< phase-2 leaves
    double ssdBandwidth = 8.0 * kGB;
    std::uint64_t chunkBytes = 64 * kGB; ///< phase-1 output run size
};

/** One point of the scalability curve. */
struct ScalabilityPoint
{
    std::uint64_t bytes = 0;
    bool usesSsd = false;
    unsigned stages = 0;      ///< DRAM stages, or phase-2 stages + 1
    double latencySeconds = 0.0;
    double msPerGb = 0.0;
    std::string regime;       ///< human-readable explanation
};

/** Evaluate the curve at one input size. */
ScalabilityPoint scalabilityAt(const ScalabilityParams &params,
                               std::uint64_t bytes);

} // namespace bonsai::core

#endif // BONSAI_CORE_SCALABILITY_HPP
