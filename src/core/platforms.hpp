/**
 * @file
 * Platform presets for the memory hierarchies the paper studies
 * (Section IV): AWS EC2 F1 DDR4 DRAM, Xilinx U50-class HBM, and a
 * 2 TB NVMe SSD behind an 8 GB/s I/O bus.
 */

#ifndef BONSAI_CORE_PLATFORMS_HPP
#define BONSAI_CORE_PLATFORMS_HPP

#include "common/units.hpp"
#include "model/params.hpp"

namespace bonsai::core
{

/** AWS EC2 F1.2xlarge: VU9P FPGA + 64 GB DDR4, 4 banks x 8 GB/s
 *  concurrent read/write, PCIe I/O (Section VI-A). */
inline model::HardwareParams
awsF1()
{
    model::HardwareParams hw;
    hw.betaDram = 32.0 * kGB;
    hw.betaIo = 8.0 * kGB;
    hw.cDram = 64 * kGB;
    hw.cBramBytes = 1600ULL * 36864 / 8; // 1,600 36Kb blocks (Table IV)
    hw.cLut = 862'128;                   // Table IV "Available"
    hw.batchBytes = 4096;
    hw.dramBanks = 4;
    return hw;
}

/** F1 with a single DDR4 bank (the "Bonsai 8" bandwidth-efficiency
 *  configuration of Figure 12). */
inline model::HardwareParams
awsF1SingleBank()
{
    model::HardwareParams hw = awsF1();
    hw.betaDram = 8.0 * kGB;
    hw.dramBanks = 1;
    return hw;
}

/** HBM-attached FPGA (Section IV-B): 32 banks x 8 GB/s = 256 GB/s
 *  with up to 512 GB/s parts announced; 16 GB capacity. */
inline model::HardwareParams
hbmU50(double bandwidth_gbps = 512.0)
{
    model::HardwareParams hw;
    hw.betaDram = bandwidth_gbps * kGB;
    hw.betaIo = 16.0 * kGB;
    hw.cDram = 16 * kGB;
    hw.cBramBytes = 1600ULL * 36864 / 8;
    hw.cLut = 862'128;
    hw.batchBytes = 4096;
    hw.dramBanks = 32;
    return hw;
}

/** SSD tier parameters for the two-level hierarchy (Section IV-C). */
struct SsdParams
{
    double ioBandwidth = 8.0 * kGB;  ///< SSD <-> FPGA I/O bus
    std::uint64_t capacity = 2 * kTB;
};

/** Modeled FPGA reprogramming time between SSD phases (Table V). */
inline constexpr double kReprogramSeconds = 4.3;

} // namespace bonsai::core

#endif // BONSAI_CORE_PLATFORMS_HPP
