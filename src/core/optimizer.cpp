#include "core/optimizer.hpp"

#include <algorithm>

namespace bonsai::core
{

bool
Optimizer::feasible(const amt::AmtConfig &cfg, RankedConfig &out) const
{
    const std::uint64_t batch =
        model::feasibleBatchBytes(inputs_, cfg);
    if (batch == 0)
        return false;
    out.resources =
        model::predictResources(inputs_, cfg, space_.withPresorter);
    if (out.resources.totalLut() > inputs_.hw.cLut)
        return false;
    out.config = cfg;
    out.batchBytes = batch;
    return true;
}

std::vector<RankedConfig>
Optimizer::rank(Objective objective) const
{
    // Keep performance and resource views consistent: without a
    // presorter, initial runs are single records.
    model::BonsaiInputs in = inputs_;
    if (!space_.withPresorter)
        in.arch.presortRunLength = 1;

    std::vector<RankedConfig> ranked;
    for (unsigned p = 1; p <= space_.maxP; p *= 2) {
        for (unsigned ell = 2; ell <= space_.maxEll; ell *= 2) {
            for (unsigned unrl = 1; unrl <= space_.maxUnroll;
                 unrl *= 2) {
                const unsigned max_pipe = objective == Objective::Latency
                    ? 1 // pipelining never improves latency (III-C)
                    : space_.maxPipe;
                for (unsigned pipe = 1; pipe <= max_pipe; pipe *= 2) {
                    amt::AmtConfig cfg{p, ell, unrl, pipe};
                    RankedConfig rc;
                    if (!feasible(cfg, rc))
                        continue;
                    if (objective == Objective::Latency) {
                        rc.perf = model::latencyEstimate(in, cfg);
                        // Unrolling cannot shrink a tree's share
                        // below one initial run: such configurations
                        // are artifacts of Equation 2, not designs.
                        if (rc.perf.stages == 0 && cfg.lambdaUnrl > 1)
                            continue;
                    } else {
                        // Equation 5: the pipeline must be able to
                        // hold and fully sort the array.
                        if (model::pipelineCapacityRecords(
                                in, cfg) < in.array.n) {
                            continue;
                        }
                        rc.perf = model::pipelineEstimate(in, cfg);
                    }
                    ranked.push_back(rc);
                }
            }
        }
    }
    const auto better = [objective](const RankedConfig &a,
                                    const RankedConfig &b) {
        if (objective == Objective::Latency) {
            if (a.perf.latencySeconds != b.perf.latencySeconds)
                return a.perf.latencySeconds < b.perf.latencySeconds;
        } else {
            if (a.perf.throughputBytesPerSec !=
                b.perf.throughputBytesPerSec) {
                return a.perf.throughputBytesPerSec >
                    b.perf.throughputBytesPerSec;
            }
        }
        // Tie-breaks: prefer more leaves ("as many leaves as on-chip
        // resources permit", VI-B2 — robust to larger N), then
        // cheaper designs (less logic, less BRAM).
        if (a.config.ell != b.config.ell)
            return a.config.ell > b.config.ell;
        if (a.resources.totalLut() != b.resources.totalLut())
            return a.resources.totalLut() < b.resources.totalLut();
        return a.resources.bramBlocks < b.resources.bramBlocks;
    };
    std::stable_sort(ranked.begin(), ranked.end(), better);
    return ranked;
}

std::optional<RankedConfig>
Optimizer::best(Objective objective) const
{
    std::vector<RankedConfig> ranked = rank(objective);
    if (ranked.empty())
        return std::nullopt;
    return ranked.front();
}

} // namespace bonsai::core
