/**
 * @file
 * The Bonsai AMT optimizer (paper Section III-C).
 *
 * Bonsai exhaustively enumerates AMT configurations (p, ell,
 * lambda_unrl, lambda_pipe), prunes those that do not fit on-chip
 * resources (Equations 8-10), and returns the feasible configurations
 * ranked by the chosen objective:
 *
 *  - latency-optimal: argmin of Equation 2 (pipelining excluded — it
 *    never improves single-array sorting time);
 *  - throughput-optimal: argmax of Equation 7, subject to the pipeline
 *    capacity constraint of Equation 5.
 *
 * Per the paper, Bonsai can "list all implementable AMT configurations
 * in decreasing order of performance" so near-optimal fallbacks exist
 * when the best design fails synthesis; rank() exposes that list.
 */

#ifndef BONSAI_CORE_OPTIMIZER_HPP
#define BONSAI_CORE_OPTIMIZER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "amt/config.hpp"
#include "model/params.hpp"
#include "model/perf_model.hpp"
#include "model/resource_model.hpp"

namespace bonsai::core
{

/** Objective for the configuration search. */
enum class Objective
{
    Latency,    ///< minimize single-array sorting time (Eq. 2)
    Throughput, ///< maximize sustained sort throughput (Eq. 7)
};

/** A scored, feasible configuration. */
struct RankedConfig
{
    amt::AmtConfig config;
    model::PerfEstimate perf;
    model::ResourceEstimate resources;
    std::uint64_t batchBytes = 0; ///< largest feasible b (Eq. 10)
};

/** Search-space bounds; defaults cover the paper's design space. */
struct SearchSpace
{
    unsigned maxP = 32;
    unsigned maxEll = 1024;
    unsigned maxUnroll = 64;
    unsigned maxPipe = 8;
    bool withPresorter = true;
};

class Optimizer
{
  public:
    explicit Optimizer(const model::BonsaiInputs &inputs,
                       SearchSpace space = {})
        : inputs_(inputs), space_(space)
    {
    }

    /**
     * All feasible configurations sorted best-first by @p objective
     * (ties broken toward fewer on-chip resources).
     */
    std::vector<RankedConfig> rank(Objective objective) const;

    /** Best feasible configuration, if any fits. */
    std::optional<RankedConfig> best(Objective objective) const;

    const model::BonsaiInputs &inputs() const { return inputs_; }

  private:
    bool feasible(const amt::AmtConfig &cfg, RankedConfig &out) const;

    model::BonsaiInputs inputs_;
    SearchSpace space_;
};

} // namespace bonsai::core

#endif // BONSAI_CORE_OPTIMIZER_HPP
