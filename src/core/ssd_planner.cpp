#include "core/ssd_planner.hpp"

#include <algorithm>

namespace bonsai::core
{

std::optional<SsdPlan>
planSsdSort(const model::ArrayParams &array,
            const model::HardwareParams &hw,
            const model::MergerArchParams &arch, const SsdParams &ssd,
            std::uint64_t chunk_bytes)
{
    SsdPlan plan;
    plan.reprogramSeconds = kReprogramSeconds;

    // ---- Phase 1: throughput-optimal pipeline over DRAM-size chunks.
    // Pick the chunk so that the whole pipeline fits in DRAM
    // (Equation 5: C_DRAM / lambda_pipe).  The paper's example sorts
    // 8 GB chunks on a 64 GB DRAM with a 4-deep pipeline.
    if (chunk_bytes == 0)
        chunk_bytes = hw.cDram / 8; // 8 GB chunks on the 64 GB F1
    chunk_bytes = std::min(chunk_bytes, array.totalBytes());
    plan.chunkRecords = chunk_bytes / array.recordBytes;

    model::BonsaiInputs phase1_in;
    phase1_in.array = {plan.chunkRecords, array.recordBytes};
    phase1_in.hw = hw;
    phase1_in.hw.betaIo = ssd.ioBandwidth;
    phase1_in.arch = arch;
    // The paper's phase 1 presorts 256-record subsequences before the
    // first merge stage so a 4-deep ell = 64 pipeline can fully sort
    // an 8 GB chunk (Equation 5 discussion, Section IV-C).
    phase1_in.arch.presortRunLength =
        std::max<std::uint64_t>(arch.presortRunLength, 256);
    Optimizer phase1_opt(phase1_in);
    std::optional<RankedConfig> phase1 =
        phase1_opt.best(Objective::Throughput);
    if (!phase1)
        return std::nullopt;
    plan.phase1 = *phase1;
    plan.phase1Seconds = static_cast<double>(array.totalBytes()) /
        plan.phase1.perf.throughputBytesPerSec;

    // ---- Phase 2: latency-optimal merge with the SSD as the only
    // off-chip memory (every stage is a full SSD round trip).
    model::BonsaiInputs phase2_in;
    phase2_in.array = array;
    phase2_in.hw = hw;
    phase2_in.hw.betaDram = ssd.ioBandwidth; // SSD bandwidth binds
    phase2_in.arch = arch;
    phase2_in.arch.presortRunLength = plan.chunkRecords;
    Optimizer phase2_opt(phase2_in);
    std::optional<RankedConfig> phase2 =
        phase2_opt.best(Objective::Latency);
    if (!phase2)
        return std::nullopt;
    plan.phase2 = *phase2;
    plan.phase2Stages = plan.phase2.perf.stages;
    plan.phase2Seconds = plan.phase2.perf.latencySeconds;
    return plan;
}

} // namespace bonsai::core
