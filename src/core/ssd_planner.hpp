/**
 * @file
 * Two-phase SSD sorting planner (paper Section IV-C).
 *
 * For arrays larger than DRAM, sorting is split into two phases with a
 * different AMT configuration each (the FPGA is reprogrammed between
 * them, ~4.3 s):
 *
 *  Phase 1 (throughput-optimal): stream the input from SSD through a
 *  lambda_pipe-deep AMT pipeline, producing DRAM-scale sorted
 *  subsequences back on the SSD at I/O line rate.
 *
 *  Phase 2 (latency-optimal, SSD as the off-chip memory): merge the
 *  DRAM-scale subsequences with a high-ell tree in as few full SSD
 *  round trips as possible (each extra stage costs a full round trip at
 *  SSD bandwidth).
 */

#ifndef BONSAI_CORE_SSD_PLANNER_HPP
#define BONSAI_CORE_SSD_PLANNER_HPP

#include <cstdint>
#include <optional>

#include "core/optimizer.hpp"
#include "core/platforms.hpp"

namespace bonsai::core
{

/** Complete two-phase plan with modeled times (Table V). */
struct SsdPlan
{
    RankedConfig phase1;  ///< throughput-optimal pipeline config
    RankedConfig phase2;  ///< latency-optimal merge config
    std::uint64_t chunkRecords = 0; ///< records per phase-1 subsequence
    unsigned phase2Stages = 0;      ///< SSD round trips in phase 2
    double phase1Seconds = 0.0;
    double reprogramSeconds = 0.0;
    double phase2Seconds = 0.0;

    double
    totalSeconds() const
    {
        return phase1Seconds + reprogramSeconds + phase2Seconds;
    }
};

/**
 * Build the two-phase plan for sorting @p array on hardware @p hw with
 * an SSD tier @p ssd.
 *
 * @param chunk_bytes Phase-1 subsequence size; defaults to the largest
 *        power-of-two chunk the phase-1 pipeline can sort (Equation 5
 *        bounded by C_DRAM / lambda_pipe).
 */
std::optional<SsdPlan> planSsdSort(const model::ArrayParams &array,
                                   const model::HardwareParams &hw,
                                   const model::MergerArchParams &arch,
                                   const SsdParams &ssd,
                                   std::uint64_t chunk_bytes = 0);

} // namespace bonsai::core

#endif // BONSAI_CORE_SSD_PLANNER_HPP
