#include "core/scalability.hpp"

namespace bonsai::core
{

ScalabilityPoint
scalabilityAt(const ScalabilityParams &params, std::uint64_t bytes)
{
    ScalabilityPoint pt;
    pt.bytes = bytes;
    if (bytes <= params.dramCapacity) {
        const std::uint64_t n = bytes / params.recordBytes;
        pt.usesSsd = false;
        pt.stages = model::mergeStages(n, params.dramEll,
                                       params.presortRun);
        pt.latencySeconds = static_cast<double>(bytes) * pt.stages /
            params.dramBandwidth;
        pt.regime = "DRAM sorter, " + std::to_string(pt.stages) +
            " merge stages";
    } else {
        // Phase 1 (one full I/O round trip) + phase-2 round trips.
        const std::uint64_t runs =
            (bytes + params.chunkBytes - 1) / params.chunkBytes;
        const unsigned phase2 = model::mergeStages(runs, params.ssdEll);
        pt.usesSsd = true;
        pt.stages = 1 + phase2;
        pt.latencySeconds = static_cast<double>(bytes) * pt.stages /
            params.ssdBandwidth;
        pt.regime = "SSD sorter, phase 1 + " + std::to_string(phase2) +
            " phase-2 round trips";
    }
    pt.msPerGb = toMs(pt.latencySeconds) / toGb(bytes);
    return pt;
}

} // namespace bonsai::core
