/**
 * @file
 * Phase-2 merge stage of the out-of-core sort: ell-way merge passes
 * ping-pong runs between two stores; the pass that collapses to a
 * single run streams into the sink instead.
 *
 * Parallel structure (TopSort-style merge units):
 *  - non-final passes schedule independent merge groups on up to W
 *    lanes, each lane owning its own prefetch and write-back workers
 *    so I/O of concurrent groups does not serialize;
 *  - the final pass is cut into W key-space slices along splitters
 *    (sorter/splitter.hpp), each slice merging through its own cursor
 *    set and landing in the sink as a positioned segment at its exact
 *    output rank — byte-identical to the serial tournament for any
 *    lane count, including equal-key floods.
 *
 * The tournament itself is the shared kernel in sorter/tournament.hpp
 * (the same tree LoserTree instantiates over spans), run here over a
 * set of prefetching RunCursors.
 */

#ifndef BONSAI_SORTER_PHASE2_MERGE_HPP
#define BONSAI_SORTER_PHASE2_MERGE_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/checkpoint.hpp"
#include "sorter/merge_plan.hpp"
#include "sorter/run_cursor.hpp"
#include "sorter/splitter.hpp"
#include "sorter/stage_plan.hpp"
#include "sorter/stream_stats.hpp"
#include "sorter/stream_writer.hpp"
#include "sorter/tournament.hpp"

namespace bonsai::sorter
{

template <typename RecordT>
class Phase2Merger
{
  public:
    /**
     * @param bufs  The sort's bounded buffer pool.
     * @param lanes Per-lane I/O worker pairs; size bounds both group
     *        concurrency and final-pass slices.
     * @param pool  Compute pool the merge tasks are scheduled on.
     * @param trap  Sort-wide first-error latch.
     * @param ell   Effective fan-in (already budget-capped).
     */
    Phase2Merger(io::BufferPool<RecordT> &bufs,
                 std::vector<std::unique_ptr<Lane>> &lanes,
                 ThreadPool &pool, ErrorTrap &trap, unsigned ell)
        : bufs_(&bufs), lanes_(&lanes), pool_(&pool), trap_(&trap),
          ell_(ell)
    {
    }

    /** Merge passes from @p front/@p back into @p sink; fills the
     *  phase-2 fields of @p stats.
     *
     *  With a @p ckpt the pass sequence is re-entrant: it starts from
     *  whichever store the journal says holds the live runs (passes a
     *  previous attempt completed are never redone — StagePlan is
     *  deterministic in the run list, so the remaining sequence is
     *  identical), and every completed non-final pass is committed.
     *  The final pass is not journaled: its output lands in the
     *  caller's sink, which a resumed attempt recreates, so it is
     *  simply redone. */
    void
    run(io::RunStore<RecordT> &front, io::RunStore<RecordT> &back,
        io::RecordSink<RecordT> &sink, StreamStats &stats,
        Checkpointer<RecordT> *ckpt = nullptr)
    {
        const auto t2 = std::chrono::steady_clock::now();
        io::RunStore<RecordT> *stores[2] = {&front, &back};
        unsigned srcIdx = ckpt ? ckpt->currentStore() : 0;
        for (;;) {
            io::RunStore<RecordT> *src = stores[srcIdx];
            io::RunStore<RecordT> *dst = stores[1 - srcIdx];
            const StagePlan plan(src->runs(), ell_);
            if (plan.groups() == 1) {
                finalPass(*src, plan.groupRuns(0), sink, stats);
                ++stats.mergePasses;
                break;
            }
            const std::vector<RunSpan> out = plan.outputRuns();
            mergePassStreamed(*src, *dst, plan, out, stats);
            // Durability point: the next pass reads these runs back
            // assuming they reached the device.
            dst->flush("phase-2 merge pass flush");
            ++stats.mergePasses;
            dst->setRuns(out);
            src->setRuns({});
            if (ckpt != nullptr)
                ckpt->commitPass(1 - srcIdx, out);
            srcIdx = 1 - srcIdx;
        }
        sink.finish();
        stats.phase2Seconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t2)
                .count();
    }

  private:
    /** TournamentTree's view of a set of streaming run cursors. */
    class CursorSet
    {
      public:
        explicit CursorSet(
            std::vector<std::unique_ptr<RunCursor<RecordT>>> &cursors)
            : cursors_(&cursors)
        {
        }

        std::size_t size() const { return cursors_->size(); }

        bool
        exhausted(std::size_t i) const
        {
            return (*cursors_)[i]->exhausted();
        }

        const RecordT &
        head(std::size_t i) const
        {
            return (*cursors_)[i]->head();
        }

        void advance(std::size_t i) { (*cursors_)[i]->advance(); }

      private:
        std::vector<std::unique_ptr<RunCursor<RecordT>>> *cursors_;
    };

    static void
    foldTally(const GroupTally &t, StreamStats &stats)
    {
        stats.recordsMoved += t.moved;
        stats.readStallSeconds += t.readStall;
        stats.writeStallSeconds += t.writeStall;
    }

    /** One non-final pass: independent merge groups are scheduled on
     *  the thread pool, each leasing one of the W lanes for its I/O
     *  workers and its share of the buffer budget. */
    void
    mergePassStreamed(io::RunStore<RecordT> &src,
                      io::RunStore<RecordT> &dst, const StagePlan &plan,
                      const std::vector<RunSpan> &out,
                      StreamStats &stats)
    {
        std::vector<std::uint64_t> work;
        for (std::uint64_t g = 0; g < plan.groups(); ++g)
            if (!plan.groupRuns(g).empty())
                work.push_back(g);
        const std::size_t width =
            std::min<std::size_t>(lanes_->size(), work.size());
        std::vector<GroupTally> tallies(work.size());
        if (width <= 1) {
            for (std::size_t i = 0; i < work.size(); ++i)
                tallies[i] = mergeOneGroup(src, plan, out, work[i],
                                           dst, *(*lanes_)[0]);
        } else {
            // parallelFor tasks must not throw (a leaked exception
            // kills a pool worker), so trap the first error and
            // rethrow it after the join.  The sort-wide trap keeps
            // first-error-wins across lanes: one group's failure
            // propagates, the rest are counted as secondary.
            LaneLeases leases(static_cast<unsigned>(width));
            pool_->parallelFor(work.size(), [&](std::uint64_t i) {
                const unsigned lane = leases.acquire();
                try {
                    tallies[i] =
                        mergeOneGroup(src, plan, out, work[i], dst,
                                      *(*lanes_)[lane]);
                } catch (...) {
                    trap_->store(std::current_exception());
                }
                leases.release(lane);
            });
            trap_->rethrowIfSet();
        }
        for (const GroupTally &t : tallies)
            foldTally(t, stats);
    }

    /** Merge (or, for a singleton group, batch-copy) group @p g of
     *  @p plan into its output run in @p dst. */
    GroupTally
    mergeOneGroup(const io::RunStore<RecordT> &src,
                  const StagePlan &plan,
                  const std::vector<RunSpan> &out, std::uint64_t g,
                  io::RunStore<RecordT> &dst, Lane &lane)
    {
        const std::vector<RunSpan> members = plan.groupRuns(g);
        const std::string ctx =
            "phase-2 write-back of merge group " + std::to_string(g);
        io::RunStoreSink<RecordT> gsink(dst, out[g].offset,
                                        ctx.c_str());
        if (members.size() == 1)
            return copyRun(src, members[0], gsink, lane.writer);
        return mergeGroup(src, members, gsink, lane.reader,
                          lane.writer);
    }

    /** The final pass (one group, streaming to the sink): cut the
     *  key space into per-lane slices along splitters chosen in the
     *  augmented (key, run index, position) order and stitch the
     *  slices into the sink as positioned segments at their exact
     *  output ranks.  Falls back to the serial merge when the group
     *  is small or the sink cannot take positioned writes. */
    void
    finalPass(const io::RunStore<RecordT> &src,
              const std::vector<RunSpan> &members,
              io::RecordSink<RecordT> &sink, StreamStats &stats)
    {
        if (members.size() == 1) {
            stats.finalSlices = 1;
            foldTally(copyRun(src, members[0], sink,
                              (*lanes_)[0]->writer),
                      stats);
            return;
        }
        std::uint64_t total = 0;
        for (const RunSpan &m : members)
            total += m.length;
        // Below ~2 batches per slice the cut overhead outweighs the
        // parallelism; and without positioned segment support the
        // slices cannot land concurrently.
        std::uint64_t slices = std::min<std::uint64_t>(
            lanes_->size(), total / (2 * bufs_->batchRecords()));
        if (!sink.supportsSegments())
            slices = 1;
        if (slices <= 1) {
            stats.finalSlices = 1;
            foldTally(mergeGroup(src, members, sink,
                                 (*lanes_)[0]->reader,
                                 (*lanes_)[0]->writer),
                      stats);
            return;
        }
        const std::vector<std::vector<std::uint64_t>> cuts =
            finalSliceCuts(src, members,
                           static_cast<unsigned>(slices), *bufs_);
        // Slice t's first output rank is the sum of its start cuts.
        std::vector<std::uint64_t> base(slices + 1, 0);
        for (std::uint64_t t = 0; t <= slices; ++t)
            for (std::size_t j = 0; j < members.size(); ++j)
                base[t] += cuts[t][j];
        BONSAI_ENSURE(base[slices] == total,
                      "splitter cuts must partition the final group");
        sink.beginSegments(total);
        stats.finalSlices = static_cast<unsigned>(slices);
        std::vector<GroupTally> tallies(slices);
        pool_->parallelFor(slices, [&](std::uint64_t t) {
            try {
                // Keep every member — empty sub-spans included — in
                // member order, so cursor indices (the equal-key tie
                // break) match the serial tournament's.
                std::vector<RunSpan> sub;
                sub.reserve(members.size());
                for (std::size_t j = 0; j < members.size(); ++j)
                    sub.push_back(
                        RunSpan{members[j].offset + cuts[t][j],
                                cuts[t + 1][j] - cuts[t][j]});
                io::SegmentSink<RecordT> seg(sink, base[t]);
                tallies[t] =
                    mergeGroup(src, sub, seg, (*lanes_)[t]->reader,
                               (*lanes_)[t]->writer);
            } catch (...) {
                trap_->store(std::current_exception());
            }
        });
        trap_->rethrowIfSet();
        for (const GroupTally &t : tallies)
            foldTally(t, stats);
    }

    /** Singleton-group bypass: a 1-member group needs no tournament —
     *  batch-copy the run to @p out, the read of batch k overlapping
     *  the write-back of batch k-1. */
    GroupTally
    copyRun(const io::RunStore<RecordT> &src, const RunSpan &run,
            io::RecordSink<RecordT> &out, BackgroundWorker &writer)
    {
        GroupTally tally;
        const std::uint64_t batch = bufs_->batchRecords();
        const std::string ctx = "batch-copy of run @" +
                                std::to_string(run.offset) + "+" +
                                std::to_string(run.length);
        // First acquire in the initializer, second guarded: if it
        // throws the first buffer still returns to the pool.
        std::array<std::vector<RecordT>, 2> buf;
        buf[0] = bufs_->acquire();
        try {
            buf[1] = bufs_->acquire();
        } catch (...) {
            bufs_->release(std::move(buf[0]));
            throw;
        }
        std::array<io::TaskGate, 2> gate;
        std::array<std::uint64_t, 2> len = {0, 0};
        try {
            unsigned slot = 0;
            std::uint64_t done = 0;
            while (done < run.length) {
                const std::uint64_t n =
                    std::min<std::uint64_t>(batch, run.length - done);
                // This buffer's previous write must have landed.
                tally.writeStall += gate[slot].wait();
                src.readAt(run.offset + done, buf[slot].data(), n,
                           ctx.c_str());
                len[slot] = n;
                io::TaskGate *g = &gate[slot];
                const std::vector<RecordT> *b = &buf[slot];
                const std::uint64_t *l = &len[slot];
                g->arm();
                try {
                    writer.post([&out, g, b, l] {
                        try {
                            out.write(b->data(), *l);
                        } catch (...) {
                            g->fail(std::current_exception());
                            return;
                        }
                        g->open();
                    });
                } catch (...) {
                    // Nothing made it in flight: reopen the gate so
                    // the quiesce below cannot deadlock.
                    g->open();
                    throw;
                }
                done += n;
                slot ^= 1;
            }
            tally.writeStall += gate[0].wait() + gate[1].wait();
        } catch (...) {
            // An in-flight write still references buf; quiesce the
            // gates before the buffers return to the pool, recording
            // (not dropping) any second failure behind the first.
            for (io::TaskGate &g : gate) {
                try {
                    g.wait();
                } catch (...) {
                    trap_->storeSecondary(std::current_exception());
                }
            }
            bufs_->release(std::move(buf[0]));
            bufs_->release(std::move(buf[1]));
            throw;
        }
        bufs_->release(std::move(buf[0]));
        bufs_->release(std::move(buf[1]));
        tally.moved = run.length;
        return tally;
    }

    /** Stream-merge one group of runs from @p src into @p out via
     *  the shared tournament kernel. */
    GroupTally
    mergeGroup(const io::RunStore<RecordT> &src,
               const std::vector<RunSpan> &members,
               io::RecordSink<RecordT> &out, BackgroundWorker &reader,
               BackgroundWorker &writer)
    {
        GroupTally tally;
        std::vector<std::unique_ptr<RunCursor<RecordT>>> cursors;
        cursors.reserve(members.size());
        for (const RunSpan &m : members)
            cursors.push_back(std::make_unique<RunCursor<RecordT>>(
                src, m, *bufs_, reader, trap_));
        StreamWriter<RecordT> drain(out, *bufs_, writer, trap_);
        CursorSet set(cursors);
        TournamentTree<RecordT, CursorSet> merge(set);
        while (!merge.done()) {
            drain.push(merge.pop());
            ++tally.moved;
        }
        drain.finish();
        for (const auto &c : cursors)
            tally.readStall += c->stallSeconds();
        tally.writeStall += drain.stallSeconds();
        return tally;
    }

    io::BufferPool<RecordT> *bufs_;
    std::vector<std::unique_ptr<Lane>> *lanes_;
    ThreadPool *pool_;
    ErrorTrap *trap_;
    unsigned ell_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_PHASE2_MERGE_HPP
