/**
 * @file
 * Unified telemetry of a streamed (or adapted in-memory) sort, shared
 * by SortReport and SsdReport so benches compare backends uniformly.
 *
 * Extracted from the stream-engine monolith; see sorter/external.hpp
 * for the engine facade and docs/ARCHITECTURE.md for the module map
 * of the decomposed streaming layer.
 */

#ifndef BONSAI_SORTER_STREAM_STATS_HPP
#define BONSAI_SORTER_STREAM_STATS_HPP

#include <cstdint>
#include <string>

namespace bonsai::sorter
{

struct StreamStats
{
    std::uint64_t recordsIn = 0;
    std::uint64_t recordsMoved = 0;       ///< total, both phases
    std::uint64_t phase1RecordsMoved = 0; ///< in-chunk sort moves only
    std::uint64_t phase1Chunks = 0;
    std::uint64_t spillBytesWritten = 0; ///< run-store write traffic
    std::uint64_t spillBytesRead = 0;    ///< run-store read traffic
    unsigned mergePasses = 0;  ///< phase-2 storage round trips
    unsigned effectiveEll = 0; ///< fan-in after the buffer budget cap
    /** Phase-2 merge lanes the budget admits: groups merged
     *  concurrently in non-final passes (1 = serial fallback). */
    unsigned concurrentGroups = 0;
    /** Splitter slices the final pass actually merged with (1 =
     *  serial tournament). */
    unsigned finalSlices = 0;
    std::uint64_t batchRecords = 0;    ///< streaming batch size b
    std::uint64_t bufferPoolBytes = 0; ///< bounded pool budget
    /** High-water pool usage (streamed path only; 0 for the
     *  zero-copy in-memory adapter, which holds no pool buffers). */
    std::uint64_t bufferPoolPeakBytes = 0;
    double phase1Seconds = 0.0;
    double phase2Seconds = 0.0;
    /** Stall seconds are summed across all phase-2 workers (per-
     *  worker accounting), so with several lanes they may exceed the
     *  phase wall clock. */
    double readStallSeconds = 0.0;  ///< merge blocked on prefetch
    double writeStallSeconds = 0.0; ///< blocked on write-back
    /** Spill-store I/O hardening counters (front + back stores; the
     *  output sink's own device is not visible to the engine). */
    std::uint64_t ioTransientRetries = 0; ///< EIO/EAGAIN retried
    std::uint64_t ioEintrRetries = 0;     ///< interrupted, retried
    std::uint64_t ioShortTransfers = 0;   ///< partial, resumed
    /** Errors suppressed behind the first (propagated) one. */
    std::uint64_t secondaryErrors = 0;
    /** Crash-consistency telemetry (checkpointed sorts only; all
     *  zero / empty when the sort ran without a job directory). */
    std::uint64_t resumedChunks = 0;  ///< phase-1 chunks not redone
    std::uint64_t resumedPasses = 0;  ///< merge passes not redone
    std::uint64_t manifestCommits = 0; ///< durable journal commits
    /** Why a requested resume fell back to a fresh start ("" = it
     *  did not: either a clean resume or a fresh job). */
    std::string resumeFallback;

    friend bool operator==(const StreamStats &,
                           const StreamStats &) = default;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_STREAM_STATS_HPP
