/**
 * @file
 * Behavioral sorter: executes the AMT's exact multistage merge plan in
 * software (presort into 16-record runs with the bitonic network, then
 * ceil(log_ell(N/16)) stages of ell-way merges per the shared
 * StagePlan).  Produces buffers bit-identical to the cycle simulator
 * at a tiny fraction of the cost — used for GB-scale validation, the
 * large experiment sweeps, and live CPU comparisons.
 *
 * Threading model (docs/ARCHITECTURE.md "Software threading model"):
 * one persistent work-stealing ThreadPool lives for the whole sort.
 * Every stage is flattened into a list of (group, slice) merge tasks:
 * small groups are one task each, large groups are cut into disjoint
 * Merge Path slices, so both the many-small-group early stages and the
 * single-group final stage saturate all cores.  Output is byte-
 * identical for every thread count because slices follow the
 * (key, input index, position) total order the loser tree merges by.
 */

#ifndef BONSAI_SORTER_BEHAVIORAL_HPP
#define BONSAI_SORTER_BEHAVIORAL_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "common/thread_pool.hpp"
#include "hw/bitonic.hpp"
#include "sorter/loser_tree.hpp"
#include "sorter/merge_path.hpp"
#include "sorter/stage_plan.hpp"

namespace bonsai::sorter
{

/** Statistics from a behavioral sort. */
struct BehavioralStats
{
    unsigned stages = 0;
    std::uint64_t recordsMoved = 0; ///< total across stages
    std::vector<std::uint64_t> groupsPerStage;

    friend bool operator==(const BehavioralStats &,
                           const BehavioralStats &) = default;
};

template <typename RecordT>
class BehavioralSorter
{
  public:
    /** Groups below this size are not worth partitioning. */
    static constexpr std::uint64_t kMinSliceRecords = 4096;

    /**
     * @param ell Merge fan-in per stage.
     * @param presort_run Bitonic presorter run length (1 disables).
     * @param threads Worker threads shared by the group-level and
     *        intra-group (Merge Path) merge tasks; 1 = serial.
     */
    explicit BehavioralSorter(unsigned ell,
                              std::uint64_t presort_run = 16,
                              unsigned threads = 1)
        : ell_(ell), presortRun_(presort_run ? presort_run : 1),
          threads_(threads == 0 ? 1 : threads)
    {
    }

    unsigned threads() const { return threads_; }

    /** Sort @p data in place; returns per-stage statistics. */
    BehavioralStats
    sort(std::vector<RecordT> &data) const
    {
        if (data.size() <= 1)
            return {};
        ThreadPool pool(threads_); // persists across all stages
        return sort(data, pool);
    }

    /**
     * Sort @p data in place on a caller-provided pool.  Lets callers
     * that sort many buffers (the SSD sorter's phase-1 chunk loop)
     * keep one pool alive across all of them instead of paying a
     * worker spawn/join per call; @p pool's width overrides the
     * constructor's thread count.
     */
    BehavioralStats
    sort(std::vector<RecordT> &data, ThreadPool &pool) const
    {
        BehavioralStats stats;
        if (data.size() <= 1)
            return stats;
        std::vector<RecordT> scratch(data.size());
        if (sortBuffers({data.data(), data.size()},
                        {scratch.data(), scratch.size()}, pool, stats))
            data = std::move(scratch);
        return stats;
    }

    /**
     * Sort a caller-owned range in place — the out-of-core engine's
     * phase 1 sorts each streamed chunk this way, with no per-chunk
     * copy round trip.  Scratch is internal; if the stage ping-pong
     * ends there, the result is copied back (at most one extra pass,
     * where the old copy-out/copy-in adapter always paid two).
     */
    BehavioralStats
    sort(std::span<RecordT> data, ThreadPool &pool) const
    {
        BehavioralStats stats;
        if (data.size() <= 1)
            return stats;
        std::vector<RecordT> scratch(data.size());
        if (sortBuffers(data, {scratch.data(), scratch.size()}, pool,
                        stats))
            std::copy(scratch.begin(), scratch.end(), data.begin());
        return stats;
    }

    /**
     * Execute one merge stage of @p plan from @p src into @p dst on
     * @p pool.  Public so stage-level benchmarks (bench_ablation_
     * threads) and the SSD sorter's phase-2 merge reuse the exact
     * scheduling the full sort uses.  Groups write disjoint output
     * runs and slices write disjoint sub-ranges, so all tasks run
     * concurrently; the result is byte-identical for any pool width.
     */
    void
    runStage(const StagePlan &plan, std::span<const RecordT> src,
             std::span<RecordT> dst, ThreadPool &pool) const
    {
        const std::vector<RunSpan> out = plan.outputRuns();
        const std::uint64_t stage_total = plan.totalRecords();
        const unsigned width = pool.threads();

        struct SliceTask
        {
            std::vector<std::span<const RecordT>> members;
            std::vector<std::uint64_t> begin; ///< empty = full extent
            std::vector<std::uint64_t> end;
            RecordT *out;
        };
        std::vector<SliceTask> tasks;
        tasks.reserve(plan.groups());
        for (std::uint64_t g = 0; g < plan.groups(); ++g) {
            std::vector<std::span<const RecordT>> members;
            for (const RunSpan &run : plan.groupRuns(g))
                members.emplace_back(src.data() + run.offset,
                                     run.length);
            RecordT *base = dst.data() + out[g].offset;
            const unsigned slices =
                sliceCount(out[g].length, stage_total, width);
            if (slices <= 1) {
                tasks.push_back(
                    SliceTask{std::move(members), {}, {}, base});
                continue;
            }
            const MergePath<RecordT> path(members);
            const auto bounds = path.partition(slices);
            std::uint64_t rank = 0;
            for (unsigned t = 0; t < slices; ++t) {
                tasks.push_back(SliceTask{members, bounds[t],
                                          bounds[t + 1], base + rank});
                rank = out[g].length * (t + 1) / slices;
            }
        }

        pool.parallelFor(tasks.size(), [&](std::uint64_t i) {
            mergeSlice(tasks[i].members, tasks[i].begin, tasks[i].end,
                       tasks[i].out);
        });
    }

  private:
    /**
     * Stage loop shared by the vector and span entry points: presort
     * @p data, then ping-pong merge stages between @p data and
     * @p scratch.  Returns true when the sorted result ended up in
     * @p scratch (odd stage count), letting the vector overload move
     * instead of copy.
     */
    bool
    sortBuffers(std::span<RecordT> data, std::span<RecordT> scratch,
                ThreadPool &pool, BehavioralStats &stats) const
    {
        BONSAI_REQUIRE(scratch.size() >= data.size(),
                       "scratch must cover the data range");
        std::vector<RunSpan> runs = presort(data);
        std::span<RecordT> src = data;
        std::span<RecordT> dst = scratch.first(data.size());
        bool in_scratch = false;
        while (runs.size() > 1) {
            StagePlan plan(std::move(runs), ell_);
            runStage(plan, src, dst, pool);
            runs = plan.outputRuns();
            stats.groupsPerStage.push_back(plan.groups());
            stats.recordsMoved += plan.totalRecords();
            ++stats.stages;
            std::swap(src, dst);
            in_scratch = !in_scratch;
        }
        return in_scratch;
    }

    /** Form initial sorted runs with the bitonic presorter network. */
    std::vector<RunSpan>
    presort(std::span<RecordT> data) const
    {
        std::vector<RunSpan> runs =
            chunkRuns(data.size(), presortRun_);
        if (presortRun_ == 1)
            return runs;
        for (const RunSpan &run : runs) {
            std::span<RecordT> chunk(data.data() + run.offset,
                                     run.length);
            if (hw::isPow2(run.length)) {
                hw::bitonicSortNetwork(chunk);
            } else {
                std::sort(chunk.begin(), chunk.end());
            }
        }
        return runs;
    }

    /**
     * Merge Path slices for a group of @p group_len records within a
     * stage of @p stage_total records: each group gets a share of the
     * pool proportional to its size, so a stage with G >= width groups
     * runs one task per group while the final single-group stage is
     * cut @p width ways.
     */
    static unsigned
    sliceCount(std::uint64_t group_len, std::uint64_t stage_total,
               unsigned width)
    {
        if (width <= 1 || group_len < kMinSliceRecords ||
            stage_total == 0)
            return 1;
        const std::uint64_t share =
            (group_len * width + stage_total - 1) / stage_total;
        return static_cast<unsigned>(
            std::min<std::uint64_t>(share ? share : 1, width));
    }

    /** Merge one slice (or whole group, when begin/end are empty). */
    static void
    mergeSlice(const std::vector<std::span<const RecordT>> &members,
               const std::vector<std::uint64_t> &begin,
               const std::vector<std::uint64_t> &end, RecordT *out)
    {
        if (members.empty())
            return;
        if (members.size() == 1) {
            const auto &m = members[0];
            if (begin.empty())
                std::copy(m.begin(), m.end(), out);
            else
                std::copy(m.begin() + begin[0], m.begin() + end[0],
                          out);
            return;
        }
        LoserTree<RecordT> tree(
            {members.begin(), members.end()}, begin, end);
        while (!tree.done())
            *out++ = tree.pop();
    }

    unsigned ell_;
    std::uint64_t presortRun_;
    unsigned threads_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_BEHAVIORAL_HPP
