/**
 * @file
 * Behavioral sorter: executes the AMT's exact multistage merge plan in
 * software (presort into 16-record runs with the bitonic network, then
 * ceil(log_ell(N/16)) stages of ell-way merges per the shared
 * StagePlan).  Produces buffers bit-identical to the cycle simulator
 * at a tiny fraction of the cost — used for GB-scale validation, the
 * large experiment sweeps, and live CPU comparisons.
 */

#ifndef BONSAI_SORTER_BEHAVIORAL_HPP
#define BONSAI_SORTER_BEHAVIORAL_HPP

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/run.hpp"
#include "hw/bitonic.hpp"
#include "sorter/loser_tree.hpp"
#include "sorter/stage_plan.hpp"

namespace bonsai::sorter
{

/** Statistics from a behavioral sort. */
struct BehavioralStats
{
    unsigned stages = 0;
    std::uint64_t recordsMoved = 0; ///< total across stages
    std::vector<std::uint64_t> groupsPerStage;
};

template <typename RecordT>
class BehavioralSorter
{
  public:
    /**
     * @param ell Merge fan-in per stage.
     * @param presort_run Bitonic presorter run length (1 disables).
     * @param threads Worker threads for the per-stage group loop
     *        (groups are independent merges); 1 = serial.
     */
    explicit BehavioralSorter(unsigned ell,
                              std::uint64_t presort_run = 16,
                              unsigned threads = 1)
        : ell_(ell), presortRun_(presort_run ? presort_run : 1),
          threads_(threads == 0 ? 1 : threads)
    {
    }

    /** Sort @p data in place; returns per-stage statistics. */
    BehavioralStats
    sort(std::vector<RecordT> &data) const
    {
        BehavioralStats stats;
        if (data.size() <= 1)
            return stats;

        std::vector<RunSpan> runs = presort(data);
        std::vector<RecordT> scratch(data.size());
        std::vector<RecordT> *src = &data;
        std::vector<RecordT> *dst = &scratch;
        while (runs.size() > 1) {
            StagePlan plan(std::move(runs), ell_);
            runStage(plan, *src, *dst);
            runs = plan.outputRuns();
            stats.groupsPerStage.push_back(plan.groups());
            stats.recordsMoved += plan.totalRecords();
            ++stats.stages;
            std::swap(src, dst);
        }
        if (src != &data)
            data = std::move(*src);
        return stats;
    }

  private:
    /** Form initial sorted runs with the bitonic presorter network. */
    std::vector<RunSpan>
    presort(std::vector<RecordT> &data) const
    {
        std::vector<RunSpan> runs =
            chunkRuns(data.size(), presortRun_);
        if (presortRun_ == 1)
            return runs;
        for (const RunSpan &run : runs) {
            std::span<RecordT> chunk(data.data() + run.offset,
                                     run.length);
            if (hw::isPow2(run.length)) {
                hw::bitonicSortNetwork(chunk);
            } else {
                std::sort(chunk.begin(), chunk.end());
            }
        }
        return runs;
    }

    void
    runStage(const StagePlan &plan, const std::vector<RecordT> &src,
             std::vector<RecordT> &dst) const
    {
        const std::vector<RunSpan> out = plan.outputRuns();
        const auto merge_one = [&](std::uint64_t g) {
            std::vector<std::span<const RecordT>> members;
            for (const RunSpan &run : plan.groupRuns(g)) {
                members.emplace_back(src.data() + run.offset,
                                     run.length);
            }
            mergeGroup(std::move(members), dst.data() + out[g].offset);
        };
        if (threads_ <= 1 || plan.groups() < 2) {
            for (std::uint64_t g = 0; g < plan.groups(); ++g)
                merge_one(g);
            return;
        }
        // Groups write disjoint output ranges: embarrassingly
        // parallel work-stealing over the group index.
        std::atomic<std::uint64_t> next{0};
        std::vector<std::thread> workers;
        const unsigned count = std::min<std::uint64_t>(
            threads_, plan.groups());
        workers.reserve(count);
        for (unsigned t = 0; t < count; ++t) {
            workers.emplace_back([&] {
                for (;;) {
                    const std::uint64_t g = next.fetch_add(
                        1, std::memory_order_relaxed);
                    if (g >= plan.groups())
                        return;
                    merge_one(g);
                }
            });
        }
        for (std::thread &worker : workers)
            worker.join();
    }

    static void
    mergeGroup(std::vector<std::span<const RecordT>> members,
               RecordT *out)
    {
        if (members.empty())
            return;
        if (members.size() == 1) {
            std::copy(members[0].begin(), members[0].end(), out);
            return;
        }
        LoserTree<RecordT> tree(std::move(members));
        while (!tree.done())
            *out++ = tree.pop();
    }

    unsigned ell_;
    std::uint64_t presortRun_;
    unsigned threads_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_BEHAVIORAL_HPP
