/**
 * @file
 * StageSimulator: stage-level streaming simulation of a sort.
 *
 * Cycle-accurate simulation of multi-GB arrays is computationally
 * infeasible, so large-scale experiments use this stage-structured
 * simulator instead: it executes the same stage plan as the cycle
 * simulator (integer run-length bookkeeping, per-stage merge groups,
 * address-range unrolling with the halving schedule) and charges each
 * stage its streaming time at the binding rate — min(tree throughput,
 * bandwidth share) — plus the per-group flush/drain overhead the
 * terminal-record scheme leaves (Section V-B).  Tests cross-validate
 * it against the cycle simulator on overlapping sizes (within 10%,
 * mirroring the paper's model-vs-measurement bound).
 */

#ifndef BONSAI_SORTER_STAGE_SIM_HPP
#define BONSAI_SORTER_STAGE_SIM_HPP

#include <cstdint>
#include <vector>

#include "amt/config.hpp"
#include "amt/tree.hpp"
#include "hw/bitonic.hpp"
#include "model/params.hpp"

namespace bonsai::sorter
{

/** Timing outcome of a stage-level simulation. */
struct StageSimResult
{
    unsigned stages = 0;
    std::vector<double> stageSeconds;
    double totalSeconds = 0.0;
    double throughputBytesPerSec = 0.0;
    std::uint64_t bytesMoved = 0; ///< read+written across all stages
};

class StageSimulator
{
  public:
    struct Options
    {
        amt::AmtConfig config;
        model::ArrayParams array;
        double frequencyHz = 250e6;
        double betaDram = 32e9;   ///< aggregate bytes/s (R and W each)
        std::uint64_t presortRun = 16;
        /**
         * Unrolling mode (Section III-A2).  true = the input is
         * range-partitioned into lambda_unrl non-overlapping key
         * ranges (partitioning pipelined with stage one, no extra
         * cost; concatenated output is sorted — Equation 2's model).
         * false = address-range unrolling: each tree sorts a
         * contiguous region and combining stages with a halving
         * active-tree count merge the regions (the HBM schedule,
         * Section IV-B).
         */
        bool rangePartitioned = true;
        /** Largest-range / ideal-range ratio from the sampler; the
         *  slowest tree bounds every range-partitioned stage.  1.0 =
         *  perfect splitters; measured skews from the bundled
         *  RangePartitioner are ~1.05-1.15 at 128x oversampling. */
        double rangeSkew = 1.0;
        /** Extra cycles charged per merge group for tree flush/drain
         *  (terminal propagation + pipeline refill). */
        double flushCyclesPerGroup = 0.0; ///< 0 = derive from shape
    };

    explicit StageSimulator(const Options &opts);

    /** Simulate a full latency-mode sort (single-array, Figure 2/3). */
    StageSimResult run() const;

    /** Per-group flush overhead in cycles (derived or configured). */
    double flushCyclesPerGroup() const { return flushCycles_; }

  private:
    /** Fixed per-stage pipeline-fill/startup cycles (calibrated). */
    static constexpr double kStageStartupCycles = 600.0;

    double stageSeconds(std::uint64_t records, std::uint64_t groups,
                        unsigned active_trees) const;

    Options opts_;
    double flushCycles_ = 0.0;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_STAGE_SIM_HPP
