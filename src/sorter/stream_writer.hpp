/**
 * @file
 * Double-buffered batch writer: push() fills one buffer while the
 * previous one drains to the sink on a background worker.  All writes
 * to a sink funnel through one worker, so they land in push order.
 *
 * Holds two pool buffers for its lifetime (the "+2" of the engine's
 * per-lane 2 ell + 2 budget).  finish() must be called on the normal
 * path for errors to surface; the destructor quiesces and records a
 * late failure through the sort-wide ErrorTrap instead of throwing.
 */

#ifndef BONSAI_SORTER_STREAM_WRITER_HPP
#define BONSAI_SORTER_STREAM_WRITER_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"
#include "io/stream.hpp"

namespace bonsai::sorter
{

template <typename RecordT>
class StreamWriter
{
  public:
    StreamWriter(io::RecordSink<RecordT> &sink,
                 io::BufferPool<RecordT> &pool, BackgroundWorker &writer,
                 ErrorTrap *trap = nullptr)
        : sink_(&sink), pool_(&pool), worker_(&writer), trap_(trap),
          batch_(pool.batchRecords())
    {
        // Acquire in the body: if the second acquire throws, the
        // destructor will not run, so the first buffer must be
        // returned here to keep the pool's accounting balanced.
        cur_ = pool.acquire();
        try {
            flight_ = pool.acquire();
        } catch (...) {
            pool.release(std::move(cur_));
            throw;
        }
    }

    StreamWriter(const StreamWriter &) = delete;
    StreamWriter &operator=(const StreamWriter &) = delete;

    ~StreamWriter()
    {
        // finish() reports errors on the normal path; a failure seen
        // only here (unwind) is recorded instead of dropped.
        try {
            gate_.wait();
        } catch (...) {
            if (trap_ != nullptr)
                trap_->storeSecondary(std::current_exception());
        }
        pool_->release(std::move(cur_));
        pool_->release(std::move(flight_));
    }

    void
    push(const RecordT &rec)
    {
        cur_[len_++] = rec;
        if (len_ == batch_)
            flushBatch();
    }

    /** Drain everything to the sink; required before destruction for
     *  errors to surface (the destructor swallows them). */
    void
    finish()
    {
        if (len_ > 0)
            flushBatch();
        stall_ += gate_.wait();
    }

    /** Seconds push()/finish() blocked on in-flight write-back. */
    double stallSeconds() const { return stall_; }

  private:
    void
    flushBatch()
    {
        stall_ += gate_.wait(); // previous batch must have landed
        std::swap(cur_, flight_);
        flightLen_ = len_;
        len_ = 0;
        gate_.arm();
        try {
            worker_->post([this] {
                try {
                    sink_->write(flight_.data(), flightLen_);
                } catch (...) {
                    gate_.fail(std::current_exception());
                    return;
                }
                gate_.open();
            });
        } catch (...) {
            // Nothing made it in flight: reopen the gate so later
            // waits (finish, destructor) cannot deadlock.
            gate_.open();
            throw;
        }
    }

    io::RecordSink<RecordT> *sink_;
    io::BufferPool<RecordT> *pool_;
    BackgroundWorker *worker_;
    ErrorTrap *trap_;
    std::uint64_t batch_;
    std::vector<RecordT> cur_;
    std::vector<RecordT> flight_;
    std::uint64_t len_ = 0;
    std::uint64_t flightLen_ = 0;
    io::TaskGate gate_;
    double stall_ = 0.0;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_STREAM_WRITER_HPP
