/**
 * @file
 * Out-of-core splitter for the final merge pass — Merge Path's
 * boundary search at batch granularity over a RunStore.
 *
 * The final pass merges one group of runs straight into the output
 * sink; to parallelize it, the key space is cut into slices along
 * pivots chosen in the augmented (key, run index, position) order.
 * Each run's boundary for a pivot is found out of core: binary-search
 * the run's batch heads with 1-record reads, then partition one
 * <= batch window.  The tie rule is the shared Merge Path predicate
 * (sorter::precedesPivot in merge_path.hpp) — stated once for the
 * in-memory partitioner and this probe alike — so the concatenated
 * slice merges are byte-identical to the serial tournament, including
 * on equal-key floods.
 */

#ifndef BONSAI_SORTER_SPLITTER_HPP
#define BONSAI_SORTER_SPLITTER_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/run.hpp"
#include "io/buffer_pool.hpp"
#include "io/pool_lease.hpp"
#include "io/run_store.hpp"
#include "sorter/merge_path.hpp"

namespace bonsai::sorter
{

/**
 * Records of run @p m preceding @p pivot in the augmented order.
 * @p run_precedes_pivot encodes the tie rule exactly as
 * precedesPivot does: true for runs left of the pivot's run (equal
 * keys precede the pivot), false for runs right of it.  @p win is a
 * scratch window of @p win_cap records (one pool batch).
 */
template <typename RecordT>
std::uint64_t
storedRunBoundary(const io::RunStore<RecordT> &src, const RunSpan &m,
                  const RecordT &pivot, bool run_precedes_pivot,
                  RecordT *win, std::uint64_t win_cap)
{
    if (m.length == 0)
        return 0;
    const auto before = [&](const RecordT &rec) {
        return precedesPivot(rec, pivot, run_precedes_pivot);
    };
    const std::uint64_t batch = win_cap;
    const std::uint64_t nb = (m.length + batch - 1) / batch;
    std::uint64_t lo = 0; // batch heads below lo are `before`
    std::uint64_t hi = nb;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        RecordT head;
        src.readAt(m.offset + mid * batch, &head, 1,
                   "final-pass splitter boundary probe");
        if (before(head))
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return 0; // even the first record is past the boundary
    const std::uint64_t start = (lo - 1) * batch;
    const std::uint64_t len =
        std::min<std::uint64_t>(batch, m.length - start);
    src.readAt(m.offset + start, win, len,
               "final-pass splitter boundary window");
    const RecordT *split = std::partition_point(win, win + len, before);
    return start + static_cast<std::uint64_t>(split - win);
}

/**
 * Cut matrix for the splitter-partitioned final pass:
 * cuts[t][j] = records of member j that precede slice t's start in
 * the augmented (key, run index, position) order.  Row 0 is all
 * zeros, row @p slices is the member lengths, and rows are monotone —
 * consecutive rows delimit disjoint sub-spans whose concatenation in
 * t order is exactly the serial tournament output (any monotone
 * sequence of consistent cuts is).
 *
 * Pivots are sampled batch-aligned from the stored runs so every
 * probe is a 1-record readAt; the boundary scratch window is one pool
 * buffer, leased for the duration of the probes.
 */
template <typename RecordT>
std::vector<std::vector<std::uint64_t>>
finalSliceCuts(const io::RunStore<RecordT> &src,
               const std::vector<RunSpan> &members, unsigned slices,
               io::BufferPool<RecordT> &bufs)
{
    struct Sample
    {
        RecordT rec;
        std::size_t j = 0;
        std::uint64_t pos = 0;
    };
    const std::uint64_t batch = bufs.batchRecords();
    std::uint64_t total = 0;
    for (const RunSpan &m : members)
        total += m.length;
    // Batch-aligned sampling: pivots land on batch heads of their own
    // run, and every probe is a 1-record readAt.
    std::uint64_t stride = std::max<std::uint64_t>(
        batch, total / (std::uint64_t(slices) * 32));
    stride = ((stride + batch - 1) / batch) * batch;
    std::vector<Sample> samples;
    for (std::size_t j = 0; j < members.size(); ++j) {
        for (std::uint64_t pos = 0; pos < members[j].length;
             pos += stride) {
            Sample s;
            src.readAt(members[j].offset + pos, &s.rec, 1,
                       "final-pass splitter sample probe");
            s.j = j;
            s.pos = pos;
            samples.push_back(s);
        }
    }
    std::sort(samples.begin(), samples.end(),
              [](const Sample &a, const Sample &b) {
                  if (a.rec < b.rec)
                      return true;
                  if (b.rec < a.rec)
                      return false;
                  if (a.j != b.j)
                      return a.j < b.j;
                  return a.pos < b.pos;
              });
    std::vector<std::vector<std::uint64_t>> cuts(
        slices + 1, std::vector<std::uint64_t>(members.size(), 0));
    for (std::size_t j = 0; j < members.size(); ++j)
        cuts[slices][j] = members[j].length;
    io::PoolLease<RecordT> win(bufs);
    for (unsigned t = 1; t < slices; ++t) {
        const Sample &pivot = samples[samples.size() * t / slices];
        for (std::size_t j = 0; j < members.size(); ++j) {
            if (j == pivot.j)
                cuts[t][j] = pivot.pos;
            else
                cuts[t][j] = storedRunBoundary(
                    src, members[j], pivot.rec, j < pivot.j,
                    win.data(), win.capacity());
        }
    }
    return cuts;
}

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_SPLITTER_HPP
