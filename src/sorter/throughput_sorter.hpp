/**
 * @file
 * Throughput-mode sorter facade (paper Section III-C: "In case many
 * N-element arrays need to be sorted, optimizing for throughput gives
 * better total time than optimizing for the latency of sorting a
 * single N-element array").
 *
 * Picks the throughput-optimal pipelined/unrolled configuration
 * (Equation 7 objective under the Equation 5 capacity constraint),
 * sorts every array of the batch, and reports the modeled sustained
 * throughput and batch makespan.
 */

#ifndef BONSAI_SORTER_THROUGHPUT_SORTER_HPP
#define BONSAI_SORTER_THROUGHPUT_SORTER_HPP

#include <stdexcept>
#include <vector>

#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "sorter/behavioral.hpp"

namespace bonsai::sorter
{

/** Result of a batch sort in throughput mode. */
struct ThroughputReport
{
    amt::AmtConfig config;
    double throughputBytesPerSec = 0.0; ///< Equation 7
    double perArrayLatencySeconds = 0.0; ///< Equation 4
    double batchSeconds = 0.0; ///< modeled makespan of the whole batch
    std::size_t arrays = 0;
};

class ThroughputSorter
{
  public:
    explicit ThroughputSorter(model::HardwareParams hw = core::awsF1(),
                              model::MergerArchParams arch = {})
        : hw_(hw), arch_(arch)
    {
    }

    /**
     * Sort every array in @p batch (all must share the record width
     * @p record_bytes); arrays may have different lengths — the
     * configuration is chosen for the largest one.
     */
    template <typename RecordT>
    ThroughputReport
    sortBatch(std::vector<std::vector<RecordT>> &batch,
              std::uint64_t record_bytes) const
    {
        ThroughputReport report;
        report.arrays = batch.size();
        if (batch.empty())
            return report;

        std::uint64_t largest = 1;
        std::uint64_t total_bytes = 0;
        for (const auto &array : batch) {
            largest = std::max<std::uint64_t>(largest, array.size());
            total_bytes += array.size() * record_bytes;
        }

        model::BonsaiInputs in;
        in.array = {largest, record_bytes};
        in.hw = hw_;
        in.arch = arch_;
        core::Optimizer opt(in);
        const auto best = opt.best(core::Objective::Throughput);
        if (!best)
            throw std::runtime_error(
                "Bonsai: no feasible pipelined configuration");
        report.config = best->config;
        report.throughputBytesPerSec =
            best->perf.throughputBytesPerSec;
        report.perArrayLatencySeconds = best->perf.latencySeconds;
        // Steady state: arrays stream through the pipeline back to
        // back; the first fill costs one per-array latency.
        report.batchSeconds = static_cast<double>(total_bytes) /
                best->perf.throughputBytesPerSec +
            best->perf.latencySeconds *
                (1.0 - 1.0 / best->config.lambdaPipe);

        BehavioralSorter<RecordT> engine(best->config.ell,
                                         in.arch.presortRunLength);
        for (auto &array : batch)
            engine.sort(array);
        return report;
    }

  private:
    model::HardwareParams hw_;
    model::MergerArchParams arch_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_THROUGHPUT_SORTER_HPP
