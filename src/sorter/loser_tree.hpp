/**
 * @file
 * Tournament (loser) tree for ell-way run merging — the software
 * counterpart of the hardware merge tree, used by the behavioral
 * sorter for GB-scale correctness runs and live CPU measurements.
 *
 * Standard structure (Knuth TAOCP Vol. 3, 5.4.1): leaves are input
 * cursors, internal nodes store the loser of their subtree's
 * tournament, the overall winner is kept outside the tree.  Each pop
 * replays only the winner's root path: O(log ell) comparisons.
 *
 * Equal keys are broken by input index, so the tree emits the unique
 * sequence ordered by (key, input index, position) — the same
 * augmented total order the Merge Path partitioner cuts on.  That
 * makes the output independent of how a merge is sliced across
 * threads: a range-limited tree per slice (bounded-cursor
 * constructor) reproduces exactly the records the whole-merge tree
 * would emit in that output range.
 */

#ifndef BONSAI_SORTER_LOSER_TREE_HPP
#define BONSAI_SORTER_LOSER_TREE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "common/contract.hpp"

namespace bonsai::sorter
{

template <typename RecordT>
class LoserTree
{
  public:
    /** Merge the full extent of every input. */
    explicit LoserTree(std::vector<std::span<const RecordT>> inputs)
        : LoserTree(std::move(inputs), {}, {})
    {
    }

    /**
     * Range-limited merge: input i is consumed over positions
     * [begin[i], end[i]) only — a Merge Path slice.  Empty @p begin /
     * @p end default to the full extent.
     */
    LoserTree(std::vector<std::span<const RecordT>> inputs,
              std::vector<std::uint64_t> begin,
              std::vector<std::uint64_t> end)
        : inputs_(std::move(inputs))
    {
        BONSAI_REQUIRE(begin.size() == end.size(),
                       "cursor bound vectors must pair up");
        BONSAI_REQUIRE(begin.empty() || begin.size() == inputs_.size(),
                       "one cursor range per input");
        ways_ = 1;
        while (ways_ < inputs_.size())
            ways_ *= 2;
        if (begin.empty()) {
            pos_.assign(inputs_.size(), 0);
            end_.reserve(inputs_.size());
            for (const auto &in : inputs_)
                end_.push_back(in.size());
        } else {
            pos_.assign(begin.begin(), begin.end());
            end_.assign(end.begin(), end.end());
            for (std::size_t i = 0; i < inputs_.size(); ++i) {
                BONSAI_REQUIRE(pos_[i] <= end_[i],
                               "cursor range must not be inverted");
                BONSAI_REQUIRE(end_[i] <= inputs_[i].size(),
                               "cursor range exceeds its input");
            }
        }
        tree_.assign(ways_, kEmpty);
        winner_ = buildTournament(1);
    }

    /** True when all inputs are exhausted. */
    bool done() const { return winner_ == kEmpty; }

    /** Pop the globally smallest record. */
    RecordT
    pop()
    {
        BONSAI_REQUIRE(!done(), "pop from an exhausted loser tree");
        const std::size_t src = winner_;
        const RecordT out = inputs_[src][pos_[src]];
        ++pos_[src];
        std::size_t candidate = pos_[src] < end_[src] ? src : kEmpty;
        // Replay the winner's root path against the stored losers.
        for (std::size_t node = (src + ways_) / 2; node >= 1;
             node /= 2) {
            if (beats(tree_[node], candidate))
                std::swap(tree_[node], candidate);
        }
        winner_ = candidate;
        return out;
    }

  private:
    static constexpr std::size_t kEmpty =
        static_cast<std::size_t>(-1);

    const RecordT &
    head(std::size_t i) const
    {
        return inputs_[i][pos_[i]];
    }

    /** Does cursor @p a beat cursor @p b?  Smaller head wins; equal
     *  keys go to the lower input index (augmented order). */
    bool
    beats(std::size_t a, std::size_t b) const
    {
        if (a == kEmpty)
            return false;
        if (b == kEmpty)
            return true;
        if (head(a) < head(b))
            return true;
        if (head(b) < head(a))
            return false;
        return a < b;
    }

    /** Cursor at leaf slot @p slot, or kEmpty. */
    std::size_t
    slotSource(std::size_t slot) const
    {
        if (slot < inputs_.size() && pos_[slot] < end_[slot])
            return slot;
        return kEmpty;
    }

    /** Bottom-up initial tournament; returns the subtree winner and
     *  records losers on the way up. */
    std::size_t
    buildTournament(std::size_t node)
    {
        if (node >= ways_)
            return slotSource(node - ways_);
        const std::size_t left = buildTournament(2 * node);
        const std::size_t right = buildTournament(2 * node + 1);
        if (beats(left, right)) {
            tree_[node] = right;
            return left;
        }
        tree_[node] = left;
        return right;
    }

    std::vector<std::span<const RecordT>> inputs_;
    std::vector<std::uint64_t> pos_; ///< next unread position
    std::vector<std::uint64_t> end_; ///< one past the last position
    std::vector<std::size_t> tree_;  ///< losers, heap-indexed
    std::size_t ways_ = 1;
    std::size_t winner_ = kEmpty;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_LOSER_TREE_HPP
