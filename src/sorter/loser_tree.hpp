/**
 * @file
 * Tournament (loser) tree for ell-way run merging over in-memory
 * spans — the software counterpart of the hardware merge tree, used
 * by the behavioral sorter for GB-scale correctness runs and live CPU
 * measurements.
 *
 * The tree logic itself lives in sorter/tournament.hpp (the one
 * tournament-tree implementation in the repo, shared with the
 * out-of-core streamed merge); this class supplies the span cursor
 * set: per-input [begin, end) positions, optionally range-limited to
 * a Merge Path slice.
 *
 * Equal keys are broken by input index, so the tree emits the unique
 * sequence ordered by (key, input index, position) — the same
 * augmented total order the Merge Path partitioner cuts on.  That
 * makes the output independent of how a merge is sliced across
 * threads: a range-limited tree per slice (bounded-cursor
 * constructor) reproduces exactly the records the whole-merge tree
 * would emit in that output range.
 */

#ifndef BONSAI_SORTER_LOSER_TREE_HPP
#define BONSAI_SORTER_LOSER_TREE_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "sorter/tournament.hpp"

namespace bonsai::sorter
{

template <typename RecordT>
class LoserTree
{
  public:
    /** Merge the full extent of every input. */
    explicit LoserTree(std::vector<std::span<const RecordT>> inputs)
        : LoserTree(std::move(inputs), {}, {})
    {
    }

    /**
     * Range-limited merge: input i is consumed over positions
     * [begin[i], end[i]) only — a Merge Path slice.  Empty @p begin /
     * @p end default to the full extent.
     */
    LoserTree(std::vector<std::span<const RecordT>> inputs,
              std::vector<std::uint64_t> begin,
              std::vector<std::uint64_t> end)
        : cursors_(std::move(inputs), std::move(begin),
                   std::move(end))
    {
        tree_.emplace(cursors_);
    }

    /** True when all inputs are exhausted. */
    bool done() const { return tree_->done(); }

    /** Pop the globally smallest record. */
    RecordT pop() { return tree_->pop(); }

  private:
    /** Span cursor set: TournamentTree's view of the inputs. */
    class SpanCursors
    {
      public:
        SpanCursors(std::vector<std::span<const RecordT>> inputs,
                    std::vector<std::uint64_t> begin,
                    std::vector<std::uint64_t> end)
            : inputs_(std::move(inputs))
        {
            BONSAI_REQUIRE(begin.size() == end.size(),
                           "cursor bound vectors must pair up");
            BONSAI_REQUIRE(begin.empty() ||
                               begin.size() == inputs_.size(),
                           "one cursor range per input");
            if (begin.empty()) {
                pos_.assign(inputs_.size(), 0);
                end_.reserve(inputs_.size());
                for (const auto &in : inputs_)
                    end_.push_back(in.size());
                return;
            }
            pos_ = std::move(begin);
            end_ = std::move(end);
            for (std::size_t i = 0; i < inputs_.size(); ++i) {
                BONSAI_REQUIRE(pos_[i] <= end_[i],
                               "cursor range must not be inverted");
                BONSAI_REQUIRE(end_[i] <= inputs_[i].size(),
                               "cursor range exceeds its input");
            }
        }

        std::size_t size() const { return inputs_.size(); }

        bool
        exhausted(std::size_t i) const
        {
            return pos_[i] >= end_[i];
        }

        const RecordT &
        head(std::size_t i) const
        {
            return inputs_[i][pos_[i]];
        }

        void advance(std::size_t i) { ++pos_[i]; }

      private:
        std::vector<std::span<const RecordT>> inputs_;
        std::vector<std::uint64_t> pos_; ///< next unread position
        std::vector<std::uint64_t> end_; ///< one past the last
    };

    SpanCursors cursors_;
    /** Built after cursors_ (member order); optional only because the
     *  tree needs the finished cursor set at construction. */
    std::optional<TournamentTree<RecordT, SpanCursors>> tree_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_LOSER_TREE_HPP
