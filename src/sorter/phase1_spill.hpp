/**
 * @file
 * Phase 1 of the out-of-core sort as a three-stage dataflow pipeline:
 *
 *   chunk reader  ->  chunk sorter  ->  spiller
 *        ^                                  |
 *        +------- free chunk-buffer ring ---+
 *
 * The reader streams fixed-size chunks from the RecordSource into a
 * recycled chunk buffer, the sorter sorts each chunk *in place* with
 * the BehavioralSorter on the engine's compute pool, and the spiller
 * writes the sorted run to the RunStore and returns the buffer to the
 * ring.  The ring is seeded with two chunk buffers (one when the
 * whole input is a single chunk), so resident memory keeps the
 * engine's historical bound — two chunk buffers plus sort scratch —
 * while the spill write-back of chunk k overlaps the load and sort of
 * chunk k+1 (the paper's double-buffered data loader, writ large).
 *
 * All edges are pipeline::BoundedQueues run under one
 * PipelineExecutor: the first failing stage (a short-read contract, a
 * terminal record in the input, a spill-device error) poisons the
 * queues and becomes the sort's primary error; the other stages
 * unwind on PipelineAborted without polluting the secondary-error
 * tally.  FIFO edges with a single producer and consumer per queue
 * keep chunks in input order, so runs land at the same offsets, in
 * the same order, with the same "phase-1 spill of chunk N" error
 * contexts as the pre-pipeline engine.
 */

#ifndef BONSAI_SORTER_PHASE1_SPILL_HPP
#define BONSAI_SORTER_PHASE1_SPILL_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/queue.hpp"
#include "pipeline/stage.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/checkpoint.hpp"
#include "sorter/stream_stats.hpp"

namespace bonsai::sorter
{

template <typename RecordT>
class Phase1Spiller
{
  public:
    /** Phase-1 knobs, mirrored from StreamEngine::Options. */
    struct Params
    {
        unsigned phase1Ell = 16;
        std::uint64_t presortRun = 16;
        std::uint64_t batchRecords = 1 << 14;
        unsigned threads = 1;
    };

    /**
     * Stream chunks of @p chunk records from @p source, sort each in
     * place on @p compute, and spill the sorted runs to @p store.
     * Fills the phase-1 fields of @p stats; the primary error of a
     * failing run lands in @p trap and is rethrown from here once the
     * pipeline has quiesced.
     *
     * With a @p ckpt the phase resumes: chunks the journal already
     * records are skipped in the source (never re-read, never
     * re-sorted), their runs are adopted, and every newly spilled
     * chunk is committed to the journal before the next one starts.
     */
    static void
    run(io::RecordSource<RecordT> &source,
        io::RunStore<RecordT> &store, ThreadPool &compute,
        const Params &par, std::uint64_t chunk, StreamStats &stats,
        ErrorTrap &trap, Checkpointer<RecordT> *ckpt = nullptr)
    {
        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t total = source.totalRecords();
        const std::uint64_t base_index = ckpt ? ckpt->chunksDone() : 0;
        const std::uint64_t start = base_index * chunk;
        if (start > 0) {
            // Input already spilled by the previous attempt: skip it
            // (O(1) on positioned sources).  A source shorter than
            // the journaled prefix is not the input the checkpoint
            // was taken against — fail in every build type.
            const std::uint64_t skipped = source.skip(start);
            if (skipped != start)
                contracts::fail(
                    "precondition", "source.skip(start) == start",
                    __FILE__, __LINE__,
                    "record source ended after " +
                        std::to_string(skipped) + " of the " +
                        std::to_string(start) +
                        " records the checkpoint already spilled");
        }

        pipeline::BoundedQueue<Chunk> free(2);
        pipeline::BoundedQueue<Chunk> loaded(2);
        pipeline::BoundedQueue<Chunk> sorted(2);
        // Seed the ring: one buffer when a single chunk covers the
        // remaining input, two otherwise (the historical memory
        // bound).
        {
            Chunk c;
            c.buf.resize(chunk);
            free.push(std::move(c));
            if (chunk < total - start) {
                Chunk d;
                d.buf.resize(chunk);
                free.push(std::move(d));
            }
        }

        Reader reader(source, free, loaded, par.batchRecords, total,
                      chunk, start, base_index);
        Sorter sorter(loaded, sorted, compute, par);
        Spiller spiller(sorted, free, store, ckpt);
        if (ckpt && ckpt->resumed())
            spiller.seedResumedRuns(store.runs());
        pipeline::Stage *stages[] = {&reader, &sorter, &spiller};
        const std::vector<pipeline::StageStats> stage_stats =
            pipeline::PipelineExecutor::run(
                stages, trap, [&free, &loaded, &sorted] {
                    free.poison();
                    loaded.poison();
                    sorted.poison();
                });
        trap.rethrowIfSet();

        stats.phase1RecordsMoved += sorter.recordsMoved();
        stats.recordsMoved += sorter.recordsMoved();
        // The reader starving on the buffer ring is the pipeline's
        // blocked-on-write-back time: a buffer is missing exactly
        // while its previous spill has not landed.
        stats.writeStallSeconds += stage_stats[0].inStallSeconds;
        // Durability point: a spill the device only buffered is not a
        // spill phase 2 can trust.
        store.flush("phase-1 spill flush");
        stats.phase1Chunks = spiller.runs().size();
        store.setRuns(std::move(spiller).takeRuns());
        stats.phase1Seconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t1)
                .count();
    }

  private:
    /** One chunk in flight: a recycled buffer plus its position. */
    struct Chunk
    {
        std::vector<RecordT> buf;
        std::uint64_t offset = 0;
        std::uint64_t len = 0;
        std::uint64_t index = 0;
    };

    /** Stage 1: stream records into recycled chunk buffers. */
    class Reader : public pipeline::Stage
    {
      public:
        Reader(io::RecordSource<RecordT> &source,
               pipeline::BoundedQueue<Chunk> &free,
               pipeline::BoundedQueue<Chunk> &loaded,
               std::uint64_t batch, std::uint64_t total,
               std::uint64_t chunk, std::uint64_t start = 0,
               std::uint64_t base_index = 0)
            : pipeline::Stage("phase1-reader"), source_(&source),
              free_(&free), loaded_(&loaded), batch_(batch),
              total_(total), chunk_(chunk), start_(start),
              baseIndex_(base_index)
        {
        }

        void
        run(pipeline::StageStats &stats) override
        {
            std::uint64_t offset = start_;
            std::uint64_t index = baseIndex_;
            while (offset < total_) {
                Chunk c = *pipeline::pull(*free_, stats);
                c.offset = offset;
                c.len = std::min<std::uint64_t>(chunk_,
                                                total_ - offset);
                c.index = index++;
                fill(c, offset);
                offset += c.len;
                pipeline::emit(*loaded_, std::move(c), stats);
            }
            loaded_->close();
        }

      private:
        void
        fill(Chunk &c, std::uint64_t offset)
        {
            std::uint64_t got = 0;
            while (got < c.len) {
                const std::uint64_t r = source_->read(
                    c.buf.data() + got,
                    std::min<std::uint64_t>(batch_, c.len - got));
                if (r == 0)
                    contracts::fail(
                        "precondition", "source.read() != 0",
                        __FILE__, __LINE__,
                        "record source ended at record " +
                            std::to_string(offset + got) +
                            " but declared " + std::to_string(total_));
                io::requireNoTerminals(c.buf.data() + got, r,
                                       offset + got);
                got += r;
            }
        }

        io::RecordSource<RecordT> *source_;
        pipeline::BoundedQueue<Chunk> *free_;
        pipeline::BoundedQueue<Chunk> *loaded_;
        std::uint64_t batch_;
        std::uint64_t total_;
        std::uint64_t chunk_;
        std::uint64_t start_;
        std::uint64_t baseIndex_;
    };

    /** Stage 2: sort each chunk in place on the compute pool (a
     *  different pool than the executor's — nested parallelism is
     *  only banned within one pool). */
    class Sorter : public pipeline::Stage
    {
      public:
        Sorter(pipeline::BoundedQueue<Chunk> &loaded,
               pipeline::BoundedQueue<Chunk> &sorted,
               ThreadPool &compute, const Params &par)
            : pipeline::Stage("phase1-sorter"), loaded_(&loaded),
              sorted_(&sorted), compute_(&compute),
              impl_(par.phase1Ell, par.presortRun, par.threads)
        {
        }

        void
        run(pipeline::StageStats &stats) override
        {
            while (auto c = pipeline::pull(*loaded_, stats)) {
                const BehavioralStats s = impl_.sort(
                    std::span<RecordT>(c->buf.data(), c->len),
                    *compute_);
                moved_ += s.recordsMoved;
                pipeline::emit(*sorted_, std::move(*c), stats);
            }
            sorted_->close();
        }

        /** In-chunk sort moves, read after the pipeline joins. */
        std::uint64_t recordsMoved() const { return moved_; }

      private:
        pipeline::BoundedQueue<Chunk> *loaded_;
        pipeline::BoundedQueue<Chunk> *sorted_;
        ThreadPool *compute_;
        BehavioralSorter<RecordT> impl_;
        std::uint64_t moved_ = 0;
    };

    /** Stage 3: spill sorted chunks and recycle their buffers. */
    class Spiller : public pipeline::Stage
    {
      public:
        Spiller(pipeline::BoundedQueue<Chunk> &sorted,
                pipeline::BoundedQueue<Chunk> &free,
                io::RunStore<RecordT> &store,
                Checkpointer<RecordT> *ckpt = nullptr)
            : pipeline::Stage("phase1-spiller"), sorted_(&sorted),
              free_(&free), store_(&store), ckpt_(ckpt)
        {
        }

        /** Adopt the resumed attempt's runs (in chunk order) so the
         *  final run list covers the whole input. */
        void
        seedResumedRuns(const std::vector<RunSpan> &runs)
        {
            runs_ = runs;
        }

        void
        run(pipeline::StageStats &stats) override
        {
            while (auto c = pipeline::pull(*sorted_, stats)) {
                const std::string ctx =
                    "phase-1 spill of chunk " +
                    std::to_string(c->index);
                store_->writeAt(c->offset, c->buf.data(), c->len,
                                ctx.c_str());
                const RunSpan run{c->offset, c->len};
                runs_.push_back(run);
                // Journal the chunk before its buffer recycles: once
                // committed, a crash anywhere later never redoes it.
                if (ckpt_ != nullptr)
                    ckpt_->commitChunk(run);
                pipeline::emit(*free_, std::move(*c), stats);
            }
        }

        /** Spilled runs in chunk order (FIFO edges guarantee it). */
        const std::vector<RunSpan> &runs() const { return runs_; }

        std::vector<RunSpan>
        takeRuns() &&
        {
            return std::move(runs_);
        }

      private:
        pipeline::BoundedQueue<Chunk> *sorted_;
        pipeline::BoundedQueue<Chunk> *free_;
        io::RunStore<RecordT> *store_;
        Checkpointer<RecordT> *ckpt_;
        std::vector<RunSpan> runs_;
    };
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_PHASE1_SPILL_HPP
