/**
 * @file
 * SimSorter: end-to-end sorting on the cycle-level simulator.
 *
 * Orchestrates the recursive merge procedure of Figure 2: per stage it
 * instantiates the AMT(s), a DataLoader and DataWriter per tree, and a
 * shared MemoryTiming model, then runs the engine until the stage's
 * output is fully written, ping-ponging between two DRAM buffers.
 *
 * Unrolled configurations (lambda_unrl > 1) follow the address-range
 * scheme of Section IV-B: each tree independently sorts a contiguous
 * region (phase A), then combining stages merge the sorted regions
 * with progressively fewer active trees — the HBM halving schedule
 * ("half of the AMTs are idled, and the remaining AMTs do one more
 * merge stage").
 */

#ifndef BONSAI_SORTER_SIM_SORTER_HPP
#define BONSAI_SORTER_SIM_SORTER_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "amt/config.hpp"
#include "common/contract.hpp"
#include "amt/instance.hpp"
#include "hw/data_loader.hpp"
#include "hw/data_writer.hpp"
#include "mem/timing.hpp"
#include "sim/engine.hpp"
#include "sorter/range_partitioner.hpp"
#include "sorter/stage_plan.hpp"

namespace bonsai::sorter
{

/** How unrolled trees split the input (Section III-A2). */
enum class UnrollMode
{
    /** Each tree sorts a contiguous address range; combining stages
     *  with halving tree counts merge the results (Section IV-B). */
    AddressRange,
    /** The input is first split into non-overlapping key ranges (the
     *  partition pass is pipelined with stage one); the concatenated
     *  per-tree outputs are already sorted — no combine stages. */
    RangePartitioned,
};

/** Per-stage detail of a simulated sort. */
struct StageReport
{
    std::uint64_t cycles = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t mergerStallCycles = 0; ///< summed over all mergers
    std::uint64_t groups = 0;            ///< merge groups executed
    /** Fraction of the memory read channel's peak the stage drew. */
    double readUtilization = 0.0;
};

/** Result of a simulated sort. */
struct SimSortStats
{
    std::uint64_t totalCycles = 0;
    std::vector<std::uint64_t> stageCycles;
    std::vector<StageReport> stageReports;
    std::uint64_t mergerStallCycles = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    unsigned stages = 0;
    bool completed = false; ///< false = cycle budget exceeded

    /** Wall-clock seconds at clock frequency @p f. */
    double
    seconds(double frequency_hz) const
    {
        return static_cast<double>(totalCycles) / frequency_hz;
    }
};

template <typename RecordT>
class SimSorter
{
  public:
    struct Options
    {
        amt::AmtConfig config;             ///< p, ell, lambda_unrl
        mem::MemTimingConfig mem;          ///< off-chip memory timing
        std::uint64_t batchBytes = 1024;   ///< read/write batch b
        std::uint64_t recordBytes = 4;     ///< modeled record width r
        std::uint64_t presortRun = 16;     ///< presorter chunk (1 = off)
        /** Input already consists of sorted runs of presortRun
         *  records (e.g. phase 2 of the SSD sorter, whose runs come
         *  from phase 1): skip the presort pass but keep the run
         *  structure.  presortRun may then exceed the batch size. */
        bool inputPresorted = false;
        /** Unrolled-tree data split (ignored at lambda_unrl = 1). */
        UnrollMode unrollMode = UnrollMode::AddressRange;
        /** Per-stage cycle budget; 0 derives a generous bound from the
         *  stage size (deadlock detection). */
        std::uint64_t maxCyclesPerStage = 0;
        /** Run every stage under a wired ProtocolChecker: per-channel
         *  stream contracts are verified every cycle and a finalize
         *  pass checks terminal counts and quiescence per stage. */
        bool checked = false;
        /** Engine strategy.  FastForward skips provably idle cycles;
         *  Reference is the naive every-component-every-cycle loop.
         *  Both produce identical cycle counts, stall statistics and
         *  output bytes (pinned by the equivalence harness). */
        sim::EngineMode engine = sim::EngineMode::FastForward;
    };

    explicit SimSorter(const Options &opts) : opts_(opts)
    {
        BONSAI_REQUIRE(opts.config.lambdaPipe == 1,
                       "pipelined configs are modeled by the "
                       "StageSimulator");
        BONSAI_REQUIRE(opts.batchBytes >= opts.recordBytes,
                       "a batch must hold at least one record");
    }

    /** Sort @p data in place, accumulating cycle statistics. */
    SimSortStats
    sort(std::vector<RecordT> &data) const
    {
        SimSortStats stats;
        stats.completed = true;
        if (data.size() <= 1)
            return stats;

        const bool range_mode =
            opts_.config.lambdaUnrl > 1 &&
            opts_.unrollMode == UnrollMode::RangePartitioned;
        std::vector<Region> regions;
        if (range_mode) {
            // Non-overlapping key ranges: the scatter pass is fused
            // with stage one in hardware, so it adds no cycles here.
            RangePartitioner<RecordT> partitioner(
                opts_.config.lambdaUnrl);
            RangePartition<RecordT> part = partitioner.partition(data);
            data = std::move(part.data);
            for (unsigned t = 0; t < opts_.config.lambdaUnrl; ++t) {
                const std::uint64_t lo =
                    t < part.offsets.size() - 1 ? part.offsets[t]
                                                : data.size();
                const std::uint64_t hi =
                    t + 1 < part.offsets.size() ? part.offsets[t + 1]
                                                : data.size();
                regions.push_back(makeRegion(lo, hi));
            }
        } else {
            regions = partition(data.size());
        }

        std::vector<RecordT> scratch(data.size());
        std::vector<RecordT> *src = &data;
        std::vector<RecordT> *dst = &scratch;
        bool presort_pending =
            opts_.presortRun > 1 && !opts_.inputPresorted;

        // Phase A: every tree sorts its own region; all active trees
        // share one engine (and thus memory bandwidth) per stage.
        while (presort_pending || anyUnsorted(regions)) {
            std::vector<TreeJob> jobs;
            for (Region &region : regions) {
                if (presort_pending || region.runs.size() > 1) {
                    jobs.push_back(TreeJob{
                        StagePlan(region.runs, opts_.config.ell,
                                  region.base),
                        &region});
                }
            }
            if (jobs.empty())
                break;
            if (!runStage(jobs, *src, *dst, presort_pending, stats))
                return stats;
            for (TreeJob &job : jobs)
                job.region->runs = job.plan.outputRuns();
            for (const Region &region : regions) {
                if (!inJobs(jobs, region))
                    copyRegion(region, *src, *dst);
            }
            presort_pending = false;
            std::swap(src, dst);
        }

        // Phase B: combine the sorted regions; each merge group runs
        // on its own tree, so the active tree count halves (for
        // ell = 2) until a single run remains.  Range-partitioned
        // regions concatenate sorted — no combining needed.
        if (range_mode) {
            if (src != &data)
                data = std::move(*src);
            return stats;
        }
        std::vector<RunSpan> runs;
        for (const Region &region : regions) {
            for (const RunSpan &run : region.runs) {
                if (run.length > 0)
                    runs.push_back(run);
            }
        }
        while (runs.size() > 1) {
            StagePlan plan(runs, opts_.config.ell, 0);
            const std::vector<RunSpan> out = plan.outputRuns();
            std::vector<TreeJob> jobs;
            for (std::uint64_t g = 0; g < plan.groups(); ++g) {
                jobs.push_back(TreeJob{
                    StagePlan(plan.groupRuns(g), opts_.config.ell,
                              out[g].offset),
                    nullptr});
            }
            if (!runStage(jobs, *src, *dst, false, stats))
                return stats;
            runs = out;
            std::swap(src, dst);
        }

        if (src != &data)
            data = std::move(*src);
        return stats;
    }

  private:
    struct Region
    {
        std::uint64_t base = 0;
        std::vector<RunSpan> runs;
    };

    struct TreeJob
    {
        StagePlan plan;
        Region *region = nullptr;
    };

    /** Region covering records [lo, hi), chunked into initial runs. */
    Region
    makeRegion(std::uint64_t lo, std::uint64_t hi) const
    {
        Region region;
        region.base = lo;
        if (hi > lo) {
            for (RunSpan run : chunkRuns(hi - lo, opts_.presortRun)) {
                run.offset += lo;
                region.runs.push_back(run);
            }
        } else {
            region.runs.push_back(RunSpan{lo, 0});
        }
        return region;
    }

    std::vector<Region>
    partition(std::uint64_t n) const
    {
        const unsigned trees = opts_.config.lambdaUnrl;
        const std::uint64_t per_tree = (n + trees - 1) / trees;
        std::vector<Region> regions;
        for (unsigned t = 0; t < trees; ++t) {
            const std::uint64_t lo =
                std::min<std::uint64_t>(t * per_tree, n);
            const std::uint64_t hi =
                std::min<std::uint64_t>(lo + per_tree, n);
            regions.push_back(makeRegion(lo, hi));
        }
        return regions;
    }

    static bool
    anyUnsorted(const std::vector<Region> &regions)
    {
        for (const Region &region : regions) {
            if (region.runs.size() > 1)
                return true;
        }
        return false;
    }

    static bool
    inJobs(const std::vector<TreeJob> &jobs, const Region &region)
    {
        for (const TreeJob &job : jobs) {
            if (job.region == &region)
                return true;
        }
        return false;
    }

    static void
    copyRegion(const Region &region, const std::vector<RecordT> &src,
               std::vector<RecordT> &dst)
    {
        for (const RunSpan &run : region.runs) {
            std::copy(src.begin() + run.offset,
                      src.begin() + run.offset + run.length,
                      dst.begin() + run.offset);
        }
    }

    /**
     * Execute one merge stage: build engine + memory + one AMT per
     * job, run to completion.  Returns false on cycle-budget overrun.
     */
    bool
    runStage(std::vector<TreeJob> &jobs, const std::vector<RecordT> &src,
             std::vector<RecordT> &dst, bool presort_pass,
             SimSortStats &stats) const
    {
        sim::SimEngine engine;
        mem::MemoryTiming memory("dram", opts_.mem);
        const std::uint64_t batch_records = std::max<std::uint64_t>(
            opts_.batchBytes / opts_.recordBytes, 1);
        const std::uint64_t dst_base =
            src.size() * opts_.recordBytes; // disjoint address range

        std::vector<std::unique_ptr<amt::AmtInstance<RecordT>>> amts;
        std::vector<std::unique_ptr<hw::DataLoader<RecordT>>> loaders;
        std::vector<std::unique_ptr<hw::DataWriter<RecordT>>> writers;
        std::uint64_t stage_records = 0;

        for (TreeJob &job : jobs) {
            const StagePlan &plan = job.plan;
            stage_records += plan.totalRecords();
            const amt::TreeShape shape =
                amt::makeTreeShape(opts_.config.p, opts_.config.ell);
            auto tree = std::make_unique<amt::AmtInstance<RecordT>>(
                "amt", shape, 2 * (2 * batch_records + 2) + 2,
                opts_.checked);
            tree->expectRunsPerChannel(plan.groups());

            std::vector<typename hw::DataLoader<RecordT>::LeafFeed>
                feeds;
            for (unsigned j = 0; j < opts_.config.ell; ++j) {
                typename hw::DataLoader<RecordT>::LeafFeed feed;
                feed.buffer = tree->leafBuffers()[j];
                feed.runs = plan.leafRuns(j);
                feeds.push_back(std::move(feed));
            }
            auto loader = std::make_unique<hw::DataLoader<RecordT>>(
                "loader", std::span<const RecordT>(src),
                std::move(feeds), memory, batch_records,
                presort_pass ? opts_.presortRun : 0,
                /*base_addr=*/0, opts_.recordBytes);

            const std::vector<RunSpan> out = plan.outputRuns();
            const std::uint64_t out_lo = out.front().offset;
            auto writer = std::make_unique<hw::DataWriter<RecordT>>(
                "writer", tree->rootOutput(),
                std::span<RecordT>(dst.data() + out_lo,
                                   dst.size() - out_lo),
                memory, opts_.config.p, plan.totalRecords(),
                plan.groups(), batch_records,
                dst_base + out_lo * opts_.recordBytes,
                opts_.recordBytes);

            amts.push_back(std::move(tree));
            loaders.push_back(std::move(loader));
            writers.push_back(std::move(writer));
        }

        engine.add(&memory);
        for (auto &writer : writers) {
            engine.add(writer.get());
            // The stage is done exactly when every writer finished:
            // declaring the writers as completion sources lets the
            // fast-forward engine gate the predicate and jump over
            // all-dormant stalls.
            engine.addCompletionSource(writer.get());
        }
        for (auto &tree : amts)
            tree->registerWith(engine);
        for (auto &loader : loaders)
            engine.add(loader.get());

        const auto done = [&]() {
            for (auto &writer : writers) {
                if (!writer->finished())
                    return false;
            }
            return true;
        };
        std::uint64_t budget = opts_.maxCyclesPerStage;
        if (budget == 0)
            budget = 100'000 + stage_records * 64;
        const sim::SimEngine::RunResult result =
            engine.run(done, budget, opts_.engine);
        stats.totalCycles += result.cycles;
        stats.stageCycles.push_back(result.cycles);
        ++stats.stages;

        StageReport report;
        report.cycles = result.cycles;
        report.bytesRead = memory.bytesRead();
        report.bytesWritten = memory.bytesWritten();
        for (const TreeJob &job : jobs)
            report.groups += job.plan.groups();
        for (auto &tree : amts) {
            report.mergerStallCycles += tree->totalStallCycles();
            stats.mergerStallCycles += tree->totalStallCycles();
        }
        const double peak = opts_.mem.numBanks *
            opts_.mem.bankBytesPerCycle *
            static_cast<double>(result.cycles);
        report.readUtilization = peak > 0.0
            ? static_cast<double>(report.bytesRead) / peak
            : 0.0;
        stats.stageReports.push_back(report);

        stats.bytesRead += memory.bytesRead();
        stats.bytesWritten += memory.bytesWritten();
        if (!result.finished) {
            stats.completed = false;
            return false;
        }
        // All writers drained: the tree must be back to its idle
        // state with every expectation met (throws on violation).
        for (auto &tree : amts)
            tree->finalizeChecks();
        return true;
    }

    Options opts_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_SIM_SORTER_HPP
