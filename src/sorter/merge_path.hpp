/**
 * @file
 * Merge Path partitioner: splits one ell-way merge into T disjoint
 * slices that can be merged by independent threads (Green, Odeh, Birk,
 * "Merge Path — A Visually Intuitive Approach to Parallel Merging";
 * FLiMS applies the same intra-merge decomposition in hardware).
 *
 * The behavioral sorter's final stage always collapses to a single
 * merge group, so group-level parallelism alone leaves the largest
 * merge of the whole dataset running on one core.  This partitioner
 * computes, for a set of sorted input spans and a global output rank
 * r, the *cut vector* c where c[i] is the number of records input i
 * contributes to the first r records of the merged output.  Cutting at
 * ranks {t * total / T} yields T slices with disjoint per-input ranges
 * and disjoint output ranges, each mergeable independently.
 *
 * Determinism: ranks are defined by the augmented total order
 *
 *     (key, input index, position within input)
 *
 * which has no ties (index/position pairs are unique).  The loser tree
 * breaks equal keys by input index too, so the concatenation of the
 * slice merges is byte-identical to the serial merge for any slice
 * count — including all-equal-key inputs.
 *
 * Cost: one cut is O(sum_i log n_i) rank evaluations, each of which
 * binary-searches every input — O((ell log n)^2) comparisons per cut,
 * negligible next to the O(n log ell) merge it parallelizes.
 */

#ifndef BONSAI_SORTER_MERGE_PATH_HPP
#define BONSAI_SORTER_MERGE_PATH_HPP

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contract.hpp"

namespace bonsai::sorter
{

/**
 * The augmented-order boundary predicate, stated once for every
 * Merge Path user (the in-memory partitioner below and the
 * out-of-core splitter in sorter/splitter.hpp): does @p rec of some
 * run precede the @p pivot element in the (key, run index, position)
 * total order?
 *
 * @p run_precedes_pivot is the tie rule: true when rec's run index is
 * lower than the pivot's (j < p — equal keys precede the pivot, so
 * the boundary is an upper bound), false when it is higher (j > p —
 * only strictly smaller keys precede, a lower bound).  Positions
 * within the pivot's own run order themselves; no predicate needed.
 */
template <typename RecordT>
inline bool
precedesPivot(const RecordT &rec, const RecordT &pivot,
              bool run_precedes_pivot)
{
    return run_precedes_pivot ? !(pivot < rec) : rec < pivot;
}

template <typename RecordT>
class MergePath
{
  public:
    explicit MergePath(std::vector<std::span<const RecordT>> inputs)
        : inputs_(std::move(inputs))
    {
        for (const auto &in : inputs_)
            total_ += in.size();
    }

    std::uint64_t totalRecords() const { return total_; }

    /**
     * Cut vector for output rank @p rank: cuts[i] records of input i
     * precede rank @p rank in the augmented order; sum(cuts) == rank.
     */
    std::vector<std::uint64_t>
    cutsForRank(std::uint64_t rank) const
    {
        BONSAI_REQUIRE(rank <= total_,
                       "output rank beyond the merged extent");
        std::vector<std::uint64_t> cuts(inputs_.size(), 0);
        if (rank == 0)
            return cuts;
        if (rank == total_) {
            for (std::size_t i = 0; i < inputs_.size(); ++i)
                cuts[i] = inputs_[i].size();
            return cuts;
        }
        // The rank-th element e* of the augmented order lives in
        // exactly one input; rankOf is strictly increasing in the
        // position within each input, so binary search each input for
        // a position of global rank == rank until e* is found.
        for (std::size_t i = 0; i < inputs_.size(); ++i) {
            std::uint64_t lo = 0;
            std::uint64_t hi = inputs_[i].size();
            while (lo < hi) { // first pos with rankOf >= rank
                const std::uint64_t mid = lo + (hi - lo) / 2;
                if (rankOf(i, mid) < rank)
                    lo = mid + 1;
                else
                    hi = mid;
            }
            if (lo < inputs_[i].size() && rankOf(i, lo) == rank) {
                for (std::size_t j = 0; j < inputs_.size(); ++j)
                    cuts[j] = countLess(j, i, lo);
                return cuts;
            }
        }
        // Unreachable when every input span is sorted under a
        // consistent strict weak order; returning any cut vector from
        // here would silently corrupt the merged output, so fail
        // loudly in release builds too (not compiled out like the
        // contract macros).
        bonsai::contracts::fail(
            "invariant", "rankOf(i, lo) == rank for some input",
            __FILE__, __LINE__,
            "MergePath: rank element not found (input span unsorted "
            "or RecordT comparison inconsistent)");
    }

    /**
     * Cut vectors for @p parts equal slices: parts+1 boundaries, with
     * boundary[0] all-zero and boundary[parts] the input sizes.  Slice
     * t merges input ranges [boundary[t][i], boundary[t+1][i]) into
     * output ranks [t * total / parts, (t+1) * total / parts).
     */
    std::vector<std::vector<std::uint64_t>>
    partition(unsigned parts) const
    {
        BONSAI_REQUIRE(parts >= 1, "need at least one slice");
        std::vector<std::vector<std::uint64_t>> bounds;
        bounds.reserve(parts + 1);
        for (unsigned t = 0; t <= parts; ++t)
            bounds.push_back(cutsForRank(total_ * t / parts));
        return bounds;
    }

  private:
    /**
     * Records of input @p j that precede the pivot element (input
     * @p pi, position @p pp) in the augmented order.
     */
    std::uint64_t
    countLess(std::size_t j, std::size_t pi, std::uint64_t pp) const
    {
        if (j == pi)
            return pp;
        const RecordT &pivot = inputs_[pi][pp];
        const auto &in = inputs_[j];
        // The shared tie rule (precedesPivot above) makes this an
        // upper_bound for j < pi and a lower_bound for j > pi.
        return static_cast<std::uint64_t>(
            std::partition_point(in.begin(), in.end(),
                                 [&](const RecordT &rec) {
                                     return precedesPivot(rec, pivot,
                                                          j < pi);
                                 }) -
            in.begin());
    }

    /** Global augmented rank of the element (input i, position p). */
    std::uint64_t
    rankOf(std::size_t i, std::uint64_t p) const
    {
        std::uint64_t rank = 0;
        for (std::size_t j = 0; j < inputs_.size(); ++j)
            rank += countLess(j, i, p);
        return rank;
    }

    std::vector<std::span<const RecordT>> inputs_;
    std::uint64_t total_ = 0;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_MERGE_PATH_HPP
