/**
 * @file
 * Forward-only view of one stored run: double-buffered, batch-sized
 * reads with the next batch prefetched on a background worker while
 * the merge consumes the current one.
 *
 * One cursor holds exactly two pool buffers for its lifetime; the
 * engine's Equation-10 budget (2 ell + 2 buffers per merge lane)
 * counts them.  Destruction quiesces any in-flight prefetch before
 * returning the buffers, recording (never throwing) a late device
 * error through the sort-wide ErrorTrap.
 */

#ifndef BONSAI_SORTER_RUN_CURSOR_HPP
#define BONSAI_SORTER_RUN_CURSOR_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/run.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"
#include "io/run_store.hpp"

namespace bonsai::sorter
{

template <typename RecordT>
class RunCursor
{
  public:
    RunCursor(const io::RunStore<RecordT> &store, RunSpan span,
              io::BufferPool<RecordT> &pool, BackgroundWorker &reader,
              ErrorTrap *trap = nullptr)
        : store_(&store), pool_(&pool), reader_(&reader), trap_(trap),
          batch_(pool.batchRecords()), next_(span.offset),
          end_(span.offset + span.length)
    {
        ctx_ = "streaming run @" + std::to_string(span.offset) + "+" +
               std::to_string(span.length);
        // Acquire and fill in the body, not the initializer list: a
        // throwing initial read after list-acquired buffers would skip
        // the destructor and leak the pool's outstanding count.
        cur_ = pool.acquire();
        try {
            pre_ = pool.acquire();
            curLen_ = std::min<std::uint64_t>(batch_, end_ - next_);
            if (curLen_ > 0) {
                store_->readAt(next_, cur_.data(), curLen_,
                               ctx_.c_str());
                next_ += curLen_;
            }
            schedulePrefetch();
        } catch (...) {
            if (!pre_.empty())
                pool.release(std::move(pre_));
            pool.release(std::move(cur_));
            throw;
        }
    }

    RunCursor(const RunCursor &) = delete;
    RunCursor &operator=(const RunCursor &) = delete;

    ~RunCursor()
    {
        // An in-flight prefetch still targets pre_; let it land before
        // the buffers return to the pool.  Nobody will consume the
        // data a failed prefetch was reading, but a device error must
        // not vanish either: record it as a secondary error (first
        // error wins).
        try {
            gate_.wait();
        } catch (...) {
            if (trap_ != nullptr)
                trap_->storeSecondary(std::current_exception());
        }
        pool_->release(std::move(cur_));
        pool_->release(std::move(pre_));
    }

    /** No more records in [span.offset, span.offset + span.length). */
    bool exhausted() const { return pos_ >= curLen_; }

    const RecordT &head() const { return cur_[pos_]; }

    void
    advance()
    {
        ++pos_;
        if (pos_ == curLen_)
            refill();
    }

    /** Seconds the consumer blocked waiting for prefetched batches. */
    double stallSeconds() const { return stall_; }

  private:
    void
    refill()
    {
        if (preLen_ == 0)
            return; // run fully consumed: exhausted() is now true
        stall_ += gate_.wait();
        std::swap(cur_, pre_);
        curLen_ = preLen_;
        preLen_ = 0;
        pos_ = 0;
        schedulePrefetch();
    }

    void
    schedulePrefetch()
    {
        preLen_ = std::min<std::uint64_t>(batch_, end_ - next_);
        if (preLen_ == 0)
            return;
        const std::uint64_t off = next_;
        next_ += preLen_;
        gate_.arm();
        try {
            reader_->post([this, off] {
                try {
                    store_->readAt(off, pre_.data(), preLen_,
                                   ctx_.c_str());
                } catch (...) {
                    gate_.fail(std::current_exception());
                    return;
                }
                gate_.open();
            });
        } catch (...) {
            // Nothing made it in flight: reopen the gate so the
            // destructor's quiesce wait cannot deadlock.
            gate_.open();
            throw;
        }
    }

    const io::RunStore<RecordT> *store_;
    io::BufferPool<RecordT> *pool_;
    BackgroundWorker *reader_;
    ErrorTrap *trap_;
    std::string ctx_;
    std::uint64_t batch_;
    std::uint64_t next_; ///< next store offset to fetch
    std::uint64_t end_;  ///< one past the run's last record
    std::vector<RecordT> cur_;
    std::vector<RecordT> pre_;
    std::uint64_t curLen_ = 0;
    std::uint64_t preLen_ = 0;
    std::uint64_t pos_ = 0;
    io::TaskGate gate_;
    double stall_ = 0.0;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_RUN_CURSOR_HPP
