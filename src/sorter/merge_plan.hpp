/**
 * @file
 * Phase-2 merge planning: the Equation-10 buffer-budget shape, the
 * per-lane I/O worker pair, the lane lease allocator, and the
 * per-task stall tally the merge stages report with.
 *
 * The shape derivation is the engine's resource model: a streamed
 * ell-way merge lane holds 2 buffers per input cursor plus 2 for its
 * write-back, so W lanes of fan-in ell fit a pool of b-record buffers
 * when (2 ell + 2) * W <= buffers — the paper's b * ell on-chip
 * buffer bound (Eq. 10) generalized to W concurrent merge units.
 */

#ifndef BONSAI_SORTER_MERGE_PLAN_HPP
#define BONSAI_SORTER_MERGE_PLAN_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"

namespace bonsai::sorter
{

/** Joint phase-2 shape admitted by the Equation-10 pool budget
 *  b * (2 ell + 2) * W. */
struct Phase2Shape
{
    unsigned ell = 2;   ///< effective merge fan-in
    unsigned lanes = 1; ///< concurrent merge groups / final slices
};

/**
 * Joint (fan-in, lanes) derivation from @p have available batch
 * buffers.  Fan-in is maximized first (it cuts the number of storage
 * round trips, the dominant cost), then whatever budget is left
 * admits extra lanes, capped at @p threads.  Fails loudly (all build
 * types) when even one 2-way lane does not fit — blocking acquire()s
 * would otherwise deadlock mid-sort.  @p budget_bytes only labels the
 * failure message.
 */
inline Phase2Shape
phase2Shape(std::uint64_t have, std::uint64_t budget_bytes,
            unsigned phase2_ell, unsigned threads)
{
    if (have < 6)
        contracts::fail(
            "precondition", "bufs.buffers() >= 6", __FILE__, __LINE__,
            "buffer pool budget (" + std::to_string(budget_bytes) +
                " bytes) holds only " + std::to_string(have) +
                " batch buffer(s); a streaming merge needs at "
                "least 6 (2 per input run of a 2-way merge + 2 "
                "for write-back)");
    Phase2Shape shape;
    shape.ell = static_cast<unsigned>(
        std::min<std::uint64_t>(phase2_ell, (have - 2) / 2));
    const std::uint64_t per_lane = 2ULL * shape.ell + 2;
    shape.lanes = static_cast<unsigned>(std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(threads, have / per_lane)));
    return shape;
}

/** Per-lane background I/O workers: one phase-2 merge lane owns a
 *  prefetch thread and a write-back thread for the whole sort. */
struct Lane
{
    BackgroundWorker reader;
    BackgroundWorker writer;
};

/** Stall/move tally of one merge task, accumulated race-free per
 *  worker and folded into StreamStats under the caller's control. */
struct GroupTally
{
    std::uint64_t moved = 0;
    double readStall = 0.0;
    double writeStall = 0.0;
};

/** Free-lane allocator: group tasks lease a lane for the duration
 *  of one merge, bounding concurrent pool holdings to
 *  lanes * (2 ell + 2) buffers no matter how wide the thread pool
 *  is.  A leaf lock like every other in the tree (see
 *  common/sync.hpp): the lease mutex is never held while merging
 *  — only around the free-list push/pop. */
class LaneLeases
{
  public:
    explicit LaneLeases(unsigned lanes)
    {
        free_.reserve(lanes);
        for (unsigned i = 0; i < lanes; ++i)
            free_.push_back(lanes - 1 - i);
    }

    unsigned
    acquire() BONSAI_EXCLUDES(mutex_)
    {
        ScopedLock lock(mutex_);
        while (free_.empty())
            ready_.wait(mutex_);
        const unsigned lane = free_.back();
        free_.pop_back();
        return lane;
    }

    void
    release(unsigned lane) BONSAI_EXCLUDES(mutex_)
    {
        {
            ScopedLock lock(mutex_);
            free_.push_back(lane);
        }
        ready_.notifyOne();
    }

  private:
    Mutex mutex_;
    CondVar ready_;
    std::vector<unsigned> free_ BONSAI_GUARDED_BY(mutex_);
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_MERGE_PLAN_HPP
