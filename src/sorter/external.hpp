/**
 * @file
 * Out-of-core two-phase streaming sort engine (paper Section IV-C/D)
 * — the facade over the decomposed streaming-sort modules:
 *
 *   sorter/stream_stats.hpp   unified telemetry struct
 *   sorter/run_cursor.hpp     prefetching run cursor (2 pool buffers)
 *   sorter/stream_writer.hpp  double-buffered batch writer
 *   sorter/tournament.hpp     the shared loser-tree merge kernel
 *   sorter/merge_plan.hpp     Equation-10 shape, lanes, lane leases
 *   sorter/splitter.hpp       out-of-core Merge Path boundary search
 *   sorter/phase1_spill.hpp   phase 1 as a read->sort->spill pipeline
 *   sorter/phase2_merge.hpp   phase 2 merge passes and the final pass
 *
 * Phase 1 streams fixed-size chunks from a RecordSource through a
 * three-stage dataflow pipeline (pipeline/executor.hpp) — load, sort
 * in place with the BehavioralSorter, spill to a RunStore — with a
 * two-buffer recycle ring, so the spill write-back of chunk k
 * overlaps the load+sort of chunk k+1 (the paper's double-buffered
 * data loader, writ large).
 *
 * Phase 2 runs ell-way merge passes that ping-pong runs between two
 * stores; every pass is one full storage round trip (the paper's SSD
 * round-trip cost unit).  Batch size b and the buffer budget mirror
 * Equation 10's b * ell on-chip buffer bound: fan-in AND the number
 * of concurrently merging lanes are jointly derived from the budget
 * (b * (2 ell + 2) * W buffers), so resident memory never exceeds
 * it.  The final pass is splitter-partitioned into positioned sink
 * segments — byte-identical to the serial tournament for any thread
 * count, including equal-key floods.
 *
 * Memory-backed stores short-circuit: when both stores expose a
 * memorySpan(), a pass runs on BehavioralSorter::runStage — the Merge
 * Path sliced, thread-parallel kernel — with zero copies, which is how
 * sort(std::vector&) remains a thin, byte-identical adapter.  Both
 * paths emit the identical record sequence (the per-group loser-tree
 * augmented order), so a file-backed sort is byte-identical to the
 * in-memory sort of the same input whenever the buffer budget admits
 * the planned fan-in.
 *
 * Concurrent sorts: sortStream() owns a private BufferPool;
 * sortStreamShared() runs the same sort against a caller-owned pool
 * under a buffer allowance, which is how pipeline::SortService packs
 * several concurrent jobs into one global budget.
 */

#ifndef BONSAI_SORTER_EXTERNAL_HPP
#define BONSAI_SORTER_EXTERNAL_HPP

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/checkpoint.hpp"
#include "sorter/merge_plan.hpp"
#include "sorter/phase1_spill.hpp"
#include "sorter/phase2_merge.hpp"
#include "sorter/stage_plan.hpp"
#include "sorter/stream_stats.hpp"

namespace bonsai::sorter
{

/** The streaming two-phase sort engine. */
template <typename RecordT>
class StreamEngine
{
  public:
    struct Options
    {
        unsigned phase1Ell = 16;  ///< chunk-sort merge fan-in
        unsigned phase2Ell = 16;  ///< run-merge fan-in (pre-budget)
        std::uint64_t presortRun = 16;
        std::uint64_t chunkRecords = 0; ///< 0 = one chunk
        std::uint64_t batchRecords = 1 << 14;   ///< b, in records
        std::uint64_t bufferBudgetBytes = 64ULL << 20;
        unsigned threads = 1;
    };

    /** Crash-consistency knobs of a durable (checkpointed) sort. */
    struct DurableOptions
    {
        std::string dir; ///< job directory for spills + manifest
        ResumePolicy policy = ResumePolicy::ResumeOrFresh;
        /** Installed on the job's spill files and manifest commits
         *  (tests; nullptr = off). */
        std::shared_ptr<io::FaultPolicy> faultPolicy;
        io::RetryPolicy retryPolicy;
    };

    explicit StreamEngine(Options opt) : opt_(opt)
    {
        BONSAI_REQUIRE(opt_.phase1Ell >= 2 && opt_.phase2Ell >= 2,
                       "merge fan-in must be at least 2");
    }

    /**
     * In-memory adapter: phase 1 sorts chunk ranges of @p data in
     * place, phase 2 ping-pongs memory-backed stores (zero-copy Merge
     * Path passes).  Byte-identical to the streamed path on the same
     * input and options.
     */
    StreamStats
    sortInPlace(std::vector<RecordT> &data) const
    {
        StreamStats stats;
        stats.recordsIn = data.size();
        // Unified telemetry with sortStream: the in-memory adapter
        // reports the same batch/budget knobs (what the equivalent
        // streamed run would be bounded by) even though its zero-copy
        // passes hold no pool buffers; effectiveEll is the fan-in it
        // actually merges with (memory passes are not budget-capped).
        stats.effectiveEll = opt_.phase2Ell;
        stats.batchRecords = opt_.batchRecords;
        stats.bufferPoolBytes = poolBudgetBytes();
        stats.concurrentGroups = opt_.threads;
        stats.finalSlices = opt_.threads;
        if (data.size() <= 1)
            return stats;
        ThreadPool pool(opt_.threads);

        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t chunk = chunkLength(data.size());
        BehavioralSorter<RecordT> phase1(
            opt_.phase1Ell, opt_.presortRun, opt_.threads);
        std::vector<RunSpan> runs;
        for (std::uint64_t lo = 0; lo < data.size(); lo += chunk) {
            const std::uint64_t len =
                std::min<std::uint64_t>(chunk, data.size() - lo);
            const BehavioralStats s = phase1.sort(
                std::span<RecordT>(data.data() + lo, len), pool);
            stats.phase1RecordsMoved += s.recordsMoved;
            stats.recordsMoved += s.recordsMoved;
            runs.push_back(RunSpan{lo, len});
        }
        stats.phase1Chunks = runs.size();
        stats.phase1Seconds = secondsSince(t1);

        const auto t2 = std::chrono::steady_clock::now();
        std::vector<RecordT> scratch(data.size());
        io::MemoryRunStore<RecordT> front(
            {data.data(), data.size()});
        io::MemoryRunStore<RecordT> back(
            {scratch.data(), scratch.size()});
        front.setRuns(std::move(runs));
        io::RunStore<RecordT> *src = &front;
        io::RunStore<RecordT> *dst = &back;
        const BehavioralSorter<RecordT> merger(opt_.phase2Ell, 1,
                                               opt_.threads);
        while (src->runs().size() > 1) {
            mergePass(*src, *dst, opt_.phase2Ell, merger, pool, stats);
            std::swap(src, dst);
            ++stats.mergePasses;
        }
        if (src == &back)
            data = std::move(scratch);
        stats.phase2Seconds = secondsSince(t2);
        return stats;
    }

    /**
     * Fully streamed sort: @p source -> spilled runs in @p front /
     * @p back -> merged output into @p sink.  Resident memory is
     * bounded by two chunk buffers (plus one chunk of sort scratch)
     * and the batch buffer pool, independent of the dataset size.
     *
     * Failure contract: any I/O or task failure — in a lane's
     * background worker, a prefetch cursor, a splitter probe, the
     * sink — unwinds to exactly one std::runtime_error thrown from
     * here.  First error wins; errors observed while quiescing behind
     * it are counted in StreamStats::secondaryErrors.  All pool
     * buffers are returned before the throw (lastPoolOutstanding()
     * lets tests assert that).
     */
    StreamStats
    sortStream(io::RecordSource<RecordT> &source,
               io::RecordSink<RecordT> &sink,
               io::RunStore<RecordT> &front,
               io::RunStore<RecordT> &back) const
    {
        if (source.totalRecords() == 0) {
            // Construct no pool: an empty sort succeeds under any
            // budget, even one too small for a single batch buffer.
            StreamStats stats;
            stats.batchRecords = opt_.batchRecords;
            sink.finish();
            return stats;
        }
        io::BufferPool<RecordT> bufs(opt_.batchRecords,
                                     opt_.bufferBudgetBytes);
        return sortStreamShared(source, sink, front, back, bufs,
                                bufs.buffers(),
                                /* exclusive_pool = */ true);
    }

    /**
     * Shared-pool variant: the same streamed sort against a
     * caller-owned @p bufs, planning its phase-2 shape against at
     * most @p allowance of the pool's buffers.  A job's concurrent
     * holdings never exceed its shape's lanes * (2 ell + 2) <=
     * allowance buffers, so several jobs whose allowances sum to the
     * pool supply cannot deadlock each other's blocking acquires —
     * the contract pipeline::SortService packs concurrent jobs with.
     * @p exclusive_pool gates the all-buffers-returned postcondition,
     * which only the pool's sole user may assert.
     */
    StreamStats
    sortStreamShared(io::RecordSource<RecordT> &source,
                     io::RecordSink<RecordT> &sink,
                     io::RunStore<RecordT> &front,
                     io::RunStore<RecordT> &back,
                     io::BufferPool<RecordT> &bufs,
                     std::uint64_t allowance,
                     bool exclusive_pool) const
    {
        return sortStreamImpl(source, sink, front, back, bufs,
                              allowance, exclusive_pool, nullptr);
    }

    /**
     * Durable (checkpointed) sort: spills live in named files under
     * @p durable.dir next to a versioned, checksummed job manifest
     * committed after every phase-1 chunk and every non-final merge
     * pass.  A re-invocation after a crash resumes from the last
     * committed unit of work (per @p durable.policy) and produces
     * output byte-identical to an uninterrupted run; the resume
     * telemetry lands in StreamStats::resumedChunks / resumedPasses /
     * manifestCommits / resumeFallback.
     *
     * The caller recreates @p source and @p sink on every attempt —
     * the sink is truncated and fully rewritten by the (never
     * journaled) final pass.  Artifacts stay in the job directory
     * after success; callers that own the directory lifecycle (the
     * file_sorter tool) delete them once the output is durable.
     */
    StreamStats
    sortStreamDurable(io::RecordSource<RecordT> &source,
                      io::RecordSink<RecordT> &sink,
                      const DurableOptions &durable) const
    {
        if (source.totalRecords() == 0) {
            StreamStats stats;
            stats.batchRecords = opt_.batchRecords;
            sink.finish();
            return stats;
        }
        io::BufferPool<RecordT> bufs(opt_.batchRecords,
                                     opt_.bufferBudgetBytes);
        return sortStreamSharedDurable(source, sink, bufs,
                                       bufs.buffers(),
                                       /* exclusive_pool = */ true,
                                       durable);
    }

    /** Shared-pool variant of sortStreamDurable (the SortService
     *  packing contract of sortStreamShared, plus a checkpoint). */
    StreamStats
    sortStreamSharedDurable(io::RecordSource<RecordT> &source,
                            io::RecordSink<RecordT> &sink,
                            io::BufferPool<RecordT> &bufs,
                            std::uint64_t allowance,
                            bool exclusive_pool,
                            const DurableOptions &durable) const
    {
        typename Checkpointer<RecordT>::Config cfg;
        cfg.dir = durable.dir;
        cfg.policy = durable.policy;
        cfg.params = manifestParams(source.totalRecords());
        cfg.verifyBatchRecords = opt_.batchRecords;
        cfg.faultPolicy = durable.faultPolicy;
        cfg.retryPolicy = durable.retryPolicy;
        Checkpointer<RecordT> ckpt(std::move(cfg));
        return sortStreamImpl(source, sink, ckpt.front(), ckpt.back(),
                              bufs, allowance, exclusive_pool, &ckpt);
    }

  private:
    /** The one streamed-sort body; @p ckpt == nullptr runs it
     *  unjournaled (the classic anonymous-spill path). */
    StreamStats
    sortStreamImpl(io::RecordSource<RecordT> &source,
                   io::RecordSink<RecordT> &sink,
                   io::RunStore<RecordT> &front,
                   io::RunStore<RecordT> &back,
                   io::BufferPool<RecordT> &bufs,
                   std::uint64_t allowance, bool exclusive_pool,
                   Checkpointer<RecordT> *ckpt) const
    {
        StreamStats stats;
        stats.recordsIn = source.totalRecords();
        stats.batchRecords = opt_.batchRecords;
        if (stats.recordsIn == 0) {
            sink.finish();
            return stats;
        }
        ThreadPool pool(opt_.threads);
        stats.bufferPoolBytes = bufs.budgetBytes();
        const Phase2Shape shape = phase2Shape(
            std::min<std::uint64_t>(bufs.buffers(), allowance),
            bufs.budgetBytes(), opt_.phase2Ell, opt_.threads);
        stats.effectiveEll = shape.ell;
        stats.concurrentGroups = shape.lanes;
        // One reader/writer worker pair per lane, so concurrent
        // groups never serialize their prefetches behind one worker.
        std::vector<std::unique_ptr<Lane>> lanes;
        lanes.reserve(shape.lanes);
        for (unsigned i = 0; i < shape.lanes; ++i)
            lanes.push_back(std::make_unique<Lane>());

        // Sort-wide first-error latch: every stage, cursor, writer
        // and quiesce path records into this one trap, so the caller
        // sees exactly one exception no matter how many lanes failed.
        ErrorTrap trap;
        try {
            if (ckpt == nullptr || !ckpt->phase1Complete()) {
                typename Phase1Spiller<RecordT>::Params p1;
                p1.phase1Ell = opt_.phase1Ell;
                p1.presortRun = opt_.presortRun;
                p1.batchRecords = opt_.batchRecords;
                p1.threads = opt_.threads;
                Phase1Spiller<RecordT>::run(
                    source, front, pool, p1,
                    chunkLength(stats.recordsIn), stats, trap, ckpt);
            } else {
                // Every chunk is journaled: phase 1 is pure replayed
                // history, with its runs already installed on the
                // journal's current store.
                stats.phase1Chunks = ckpt->chunksDone();
            }
            Phase2Merger<RecordT> merger(bufs, lanes, pool, trap,
                                         shape.ell);
            merger.run(front, back, sink, stats, ckpt);
        } catch (...) {
            trap.store(std::current_exception());
        }

        // Telemetry is valid on success and failure alike.
        stats.spillBytesWritten =
            front.bytesWritten() + back.bytesWritten();
        stats.spillBytesRead = front.bytesRead() + back.bytesRead();
        stats.bufferPoolPeakBytes = bufs.peakOutstanding() *
            bufs.batchRecords() * sizeof(RecordT);
        io::IoRetryStats retries = front.retryStats();
        retries += back.retryStats();
        stats.ioTransientRetries = retries.transientRetries;
        stats.ioEintrRetries = retries.eintrRetries;
        stats.ioShortTransfers = retries.shortTransfers;
        stats.secondaryErrors = trap.secondaryCount();
        if (ckpt != nullptr) {
            stats.resumedChunks = ckpt->resumedChunks();
            stats.resumedPasses = ckpt->resumedPasses();
            stats.manifestCommits = ckpt->commits();
            stats.resumeFallback = ckpt->fallbackReason();
        }
        lastSecondaryErrors_.store(stats.secondaryErrors,
                                   std::memory_order_relaxed);
        lastPoolOutstanding_.store(bufs.outstanding(),
                                   std::memory_order_relaxed);
        trap.rethrowIfSet();
        if (exclusive_pool)
            BONSAI_ENSURE(bufs.outstanding() == 0,
                          "buffer pool has outstanding buffers after "
                          "a clean streamed sort");
        return stats;
    }

  public:
    /** Pool buffers still outstanding when the last sortStream on
     *  this engine returned or threw — 0 unless the unwind leaked
     *  (tests assert this after injected faults). */
    std::uint64_t
    lastPoolOutstanding() const
    {
        return lastPoolOutstanding_.load(std::memory_order_relaxed);
    }

    /** Secondary (suppressed) errors of the last sortStream. */
    std::uint64_t
    lastSecondaryErrors() const
    {
        return lastSecondaryErrors_.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t
    chunkLength(std::uint64_t total) const
    {
        if (opt_.chunkRecords == 0)
            return total;
        return std::min<std::uint64_t>(opt_.chunkRecords, total);
    }

    /** The parameter echo a job manifest carries: everything chunk
     *  geometry and pass structure are a function of, so a resume
     *  against a changed request is refused instead of corrupting. */
    io::ManifestParams
    manifestParams(std::uint64_t records_in) const
    {
        io::ManifestParams p;
        p.recordBytes = sizeof(RecordT);
        p.recordsIn = records_in;
        p.chunkRecords = chunkLength(records_in);
        p.batchRecords = opt_.batchRecords;
        p.phase1Ell = opt_.phase1Ell;
        p.phase2Ell = opt_.phase2Ell;
        p.bufferBudgetBytes = opt_.bufferBudgetBytes;
        return p;
    }

    static double
    secondsSince(std::chrono::steady_clock::time_point start)
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    /** Bytes a BufferPool with these options would be allowed to hold
     *  — telemetry for the in-memory adapter, computed without
     *  constructing a pool (which fails loudly on tiny budgets). */
    std::uint64_t
    poolBudgetBytes() const
    {
        const std::uint64_t batch_bytes =
            opt_.batchRecords * sizeof(RecordT);
        if (batch_bytes == 0)
            return 0;
        return (opt_.bufferBudgetBytes / batch_bytes) * batch_bytes;
    }

    /** One store-to-store merge pass; memory-backed store pairs run
     *  the zero-copy Merge Path kernel instead of streaming. */
    void
    mergePass(io::RunStore<RecordT> &src, io::RunStore<RecordT> &dst,
              unsigned ell, const BehavioralSorter<RecordT> &merger,
              ThreadPool &pool, StreamStats &stats) const
    {
        const StagePlan plan(src.runs(), ell);
        const std::span<RecordT> s = src.memorySpan();
        const std::span<RecordT> d = dst.memorySpan();
        BONSAI_REQUIRE(!s.empty() && !d.empty(),
                       "mergePass needs memory-backed stores; "
                       "storage-backed passes go through the "
                       "Phase2Merger");
        merger.runStage(plan, {s.data(), s.size()}, d, pool);
        stats.recordsMoved += plan.totalRecords();
        dst.setRuns(plan.outputRuns());
        src.setRuns({});
    }

    Options opt_;
    /** Post-mortem telemetry of the last sortStream (relaxed: written
     *  once at the end of a sort, read by tests afterwards).  Mutable
     *  because a failed sort is still a const operation. */
    mutable std::atomic<std::uint64_t> lastPoolOutstanding_{0};
    mutable std::atomic<std::uint64_t> lastSecondaryErrors_{0};
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_EXTERNAL_HPP
