/**
 * @file
 * Out-of-core two-phase streaming sort engine (paper Section IV-C/D).
 *
 * The facade-level SsdSorter used to require the whole dataset in one
 * std::vector.  This engine runs the same two-phase structure against
 * the io streaming layer with bounded memory:
 *
 *  Phase 1 — stream fixed-size chunks from a RecordSource into a
 *  working buffer, sort each *in place* with the BehavioralSorter
 *  (no per-chunk copy round trip), and spill the sorted runs to a
 *  RunStore.  Two chunk buffers alternate so the spill write-back of
 *  chunk k overlaps the load+sort of chunk k+1 (the paper's
 *  double-buffered data loader, writ large).
 *
 *  Phase 2 — ell-way merge passes ping-pong runs between two stores;
 *  every pass is one full storage round trip (the paper's SSD
 *  round-trip cost unit).  Each input run streams through a
 *  double-buffered cursor whose next batch is prefetched on a
 *  background worker while the merge consumes the current one, and
 *  merged output drains through a double-buffered write-back path.
 *  Batch size b and the total buffer budget mirror Equation 10's
 *  b * ell on-chip buffer bound: the effective merge fan-in AND the
 *  number of concurrently merging groups are jointly derived from the
 *  budget (b * (2 ell + 2) * W buffers), so resident memory never
 *  exceeds it.
 *
 *  Phase 2 runs on the engine's ThreadPool (TopSort-style parallel
 *  merge units):
 *   - non-final passes schedule independent merge groups on up to W
 *    "lanes", each lane owning its own prefetch and write-back
 *    workers so I/O of concurrent groups does not serialize;
 *   - the final pass (one group, streaming to the sink) is cut into
 *    W key-space slices along splitters chosen in the augmented
 *    (key, run index, position) order — Merge Path extended out of
 *    core: run boundaries are found by batch-granularity binary
 *    search through RunStore::readAt, each slice merges through its
 *    own cursor set, and slices land in the sink as positioned
 *    segments at their exact output ranks, so the byte sequence is
 *    identical to the serial tournament for any thread count,
 *    including equal-key floods.
 *  When the budget admits only one lane (or the sink cannot take
 *  positioned segments), phase 2 falls back to the serial path.
 *
 * Memory-backed stores short-circuit: when both stores expose a
 * memorySpan(), a pass runs on BehavioralSorter::runStage — the Merge
 * Path sliced, thread-parallel kernel — with zero copies, which is how
 * sort(std::vector&) remains a thin, byte-identical adapter.  Both
 * paths emit the identical record sequence (the per-group loser-tree
 * augmented order), so a file-backed sort is byte-identical to the
 * in-memory sort of the same input whenever the buffer budget admits
 * the planned fan-in.
 */

#ifndef BONSAI_SORTER_EXTERNAL_HPP
#define BONSAI_SORTER_EXTERNAL_HPP

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "common/sync.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/stage_plan.hpp"

namespace bonsai::sorter
{

/**
 * Unified telemetry of a streamed (or adapted in-memory) sort, shared
 * by SortReport and SsdReport so benches compare backends uniformly.
 */
struct StreamStats
{
    std::uint64_t recordsIn = 0;
    std::uint64_t recordsMoved = 0;       ///< total, both phases
    std::uint64_t phase1RecordsMoved = 0; ///< in-chunk sort moves only
    std::uint64_t phase1Chunks = 0;
    std::uint64_t spillBytesWritten = 0; ///< run-store write traffic
    std::uint64_t spillBytesRead = 0;    ///< run-store read traffic
    unsigned mergePasses = 0;    ///< phase-2 storage round trips
    unsigned effectiveEll = 0;   ///< fan-in after the buffer budget cap
    /** Phase-2 merge lanes the budget admits: groups merged
     *  concurrently in non-final passes (1 = serial fallback). */
    unsigned concurrentGroups = 0;
    /** Splitter slices the final pass actually merged with (1 =
     *  serial tournament). */
    unsigned finalSlices = 0;
    std::uint64_t batchRecords = 0;    ///< streaming batch size b
    std::uint64_t bufferPoolBytes = 0; ///< bounded pool budget
    /** High-water pool usage (streamed path only; 0 for the
     *  zero-copy in-memory adapter, which holds no pool buffers). */
    std::uint64_t bufferPoolPeakBytes = 0;
    double phase1Seconds = 0.0;
    double phase2Seconds = 0.0;
    /** Stall seconds are summed across all phase-2 workers (per-
     *  worker accounting), so with several lanes they may exceed the
     *  phase wall clock. */
    double readStallSeconds = 0.0;  ///< merge blocked on prefetch
    double writeStallSeconds = 0.0; ///< blocked on write-back
    /** Spill-store I/O hardening counters (front + back stores; the
     *  output sink's own device is not visible to the engine). */
    std::uint64_t ioTransientRetries = 0; ///< EIO/EAGAIN retried
    std::uint64_t ioEintrRetries = 0;     ///< interrupted, retried
    std::uint64_t ioShortTransfers = 0;   ///< partial, resumed
    /** Errors suppressed behind the first (propagated) one. */
    std::uint64_t secondaryErrors = 0;

    friend bool operator==(const StreamStats &,
                           const StreamStats &) = default;
};

/**
 * Forward-only view of one stored run: double-buffered, batch-sized
 * reads with the next batch prefetched on a background worker while
 * the merge consumes the current one.
 */
template <typename RecordT>
class RunCursor
{
  public:
    RunCursor(const io::RunStore<RecordT> &store, RunSpan span,
              io::BufferPool<RecordT> &pool, BackgroundWorker &reader,
              ErrorTrap *trap = nullptr)
        : store_(&store), pool_(&pool), reader_(&reader), trap_(trap),
          batch_(pool.batchRecords()), next_(span.offset),
          end_(span.offset + span.length)
    {
        ctx_ = "streaming run @" + std::to_string(span.offset) + "+" +
               std::to_string(span.length);
        // Acquire and fill in the body, not the initializer list: a
        // throwing initial read after list-acquired buffers would skip
        // the destructor and leak the pool's outstanding count.
        cur_ = pool.acquire();
        try {
            pre_ = pool.acquire();
            curLen_ = std::min<std::uint64_t>(batch_, end_ - next_);
            if (curLen_ > 0) {
                store_->readAt(next_, cur_.data(), curLen_,
                               ctx_.c_str());
                next_ += curLen_;
            }
            schedulePrefetch();
        } catch (...) {
            if (!pre_.empty())
                pool.release(std::move(pre_));
            pool.release(std::move(cur_));
            throw;
        }
    }

    RunCursor(const RunCursor &) = delete;
    RunCursor &operator=(const RunCursor &) = delete;

    ~RunCursor()
    {
        // An in-flight prefetch still targets pre_; let it land before
        // the buffers return to the pool.  Nobody will consume the
        // data a failed prefetch was reading, but a device error must
        // not vanish either: record it as a secondary error (first
        // error wins).
        try {
            gate_.wait();
        } catch (...) {
            if (trap_ != nullptr)
                trap_->storeSecondary(std::current_exception());
        }
        pool_->release(std::move(cur_));
        pool_->release(std::move(pre_));
    }

    /** No more records in [span.offset, span.offset + span.length). */
    bool exhausted() const { return pos_ >= curLen_; }

    const RecordT &head() const { return cur_[pos_]; }

    void
    advance()
    {
        ++pos_;
        if (pos_ == curLen_)
            refill();
    }

    /** Seconds the consumer blocked waiting for prefetched batches. */
    double stallSeconds() const { return stall_; }

  private:
    void
    refill()
    {
        if (preLen_ == 0)
            return; // run fully consumed: exhausted() is now true
        stall_ += gate_.wait();
        std::swap(cur_, pre_);
        curLen_ = preLen_;
        preLen_ = 0;
        pos_ = 0;
        schedulePrefetch();
    }

    void
    schedulePrefetch()
    {
        preLen_ = std::min<std::uint64_t>(batch_, end_ - next_);
        if (preLen_ == 0)
            return;
        const std::uint64_t off = next_;
        next_ += preLen_;
        gate_.arm();
        try {
            reader_->post([this, off] {
                try {
                    store_->readAt(off, pre_.data(), preLen_,
                                   ctx_.c_str());
                } catch (...) {
                    gate_.fail(std::current_exception());
                    return;
                }
                gate_.open();
            });
        } catch (...) {
            // Nothing made it in flight: reopen the gate so the
            // destructor's quiesce wait cannot deadlock.
            gate_.open();
            throw;
        }
    }

    const io::RunStore<RecordT> *store_;
    io::BufferPool<RecordT> *pool_;
    BackgroundWorker *reader_;
    ErrorTrap *trap_;
    std::string ctx_;
    std::uint64_t batch_;
    std::uint64_t next_; ///< next store offset to fetch
    std::uint64_t end_;  ///< one past the run's last record
    std::vector<RecordT> cur_;
    std::vector<RecordT> pre_;
    std::uint64_t curLen_ = 0;
    std::uint64_t preLen_ = 0;
    std::uint64_t pos_ = 0;
    io::TaskGate gate_;
    double stall_ = 0.0;
};

/**
 * Double-buffered batch writer: push() fills one buffer while the
 * previous one drains to the sink on a background worker.  All writes
 * to a sink funnel through one worker, so they land in push order.
 */
template <typename RecordT>
class StreamWriter
{
  public:
    StreamWriter(io::RecordSink<RecordT> &sink,
                 io::BufferPool<RecordT> &pool, BackgroundWorker &writer,
                 ErrorTrap *trap = nullptr)
        : sink_(&sink), pool_(&pool), worker_(&writer), trap_(trap),
          batch_(pool.batchRecords())
    {
        // Acquire in the body: if the second acquire throws, the
        // destructor will not run, so the first buffer must be
        // returned here to keep the pool's accounting balanced.
        cur_ = pool.acquire();
        try {
            flight_ = pool.acquire();
        } catch (...) {
            pool.release(std::move(cur_));
            throw;
        }
    }

    StreamWriter(const StreamWriter &) = delete;
    StreamWriter &operator=(const StreamWriter &) = delete;

    ~StreamWriter()
    {
        // finish() reports errors on the normal path; a failure seen
        // only here (unwind) is recorded instead of dropped.
        try {
            gate_.wait();
        } catch (...) {
            if (trap_ != nullptr)
                trap_->storeSecondary(std::current_exception());
        }
        pool_->release(std::move(cur_));
        pool_->release(std::move(flight_));
    }

    void
    push(const RecordT &rec)
    {
        cur_[len_++] = rec;
        if (len_ == batch_)
            flushBatch();
    }

    /** Drain everything to the sink; required before destruction for
     *  errors to surface (the destructor swallows them). */
    void
    finish()
    {
        if (len_ > 0)
            flushBatch();
        stall_ += gate_.wait();
    }

    /** Seconds push()/finish() blocked on in-flight write-back. */
    double stallSeconds() const { return stall_; }

  private:
    void
    flushBatch()
    {
        stall_ += gate_.wait(); // previous batch must have landed
        std::swap(cur_, flight_);
        flightLen_ = len_;
        len_ = 0;
        gate_.arm();
        try {
            worker_->post([this] {
                try {
                    sink_->write(flight_.data(), flightLen_);
                } catch (...) {
                    gate_.fail(std::current_exception());
                    return;
                }
                gate_.open();
            });
        } catch (...) {
            // Nothing made it in flight: reopen the gate so later
            // waits (finish, destructor) cannot deadlock.
            gate_.open();
            throw;
        }
    }

    io::RecordSink<RecordT> *sink_;
    io::BufferPool<RecordT> *pool_;
    BackgroundWorker *worker_;
    ErrorTrap *trap_;
    std::uint64_t batch_;
    std::vector<RecordT> cur_;
    std::vector<RecordT> flight_;
    std::uint64_t len_ = 0;
    std::uint64_t flightLen_ = 0;
    io::TaskGate gate_;
    double stall_ = 0.0;
};

/**
 * Tournament tree over streaming cursors — the out-of-core counterpart
 * of LoserTree, emitting the identical (key, input index, position)
 * augmented order so streamed merges are byte-identical to in-memory
 * ones.
 */
template <typename RecordT>
class CursorMerge
{
  public:
    explicit CursorMerge(
        std::vector<std::unique_ptr<RunCursor<RecordT>>> &cursors)
        : cursors_(&cursors)
    {
        ways_ = 1;
        while (ways_ < cursors_->size())
            ways_ *= 2;
        tree_.assign(ways_, kEmpty);
        winner_ = buildTournament(1);
    }

    bool done() const { return winner_ == kEmpty; }

    RecordT
    pop()
    {
        BONSAI_REQUIRE(!done(), "pop from an exhausted cursor merge");
        const std::size_t src = winner_;
        RunCursor<RecordT> &cursor = *(*cursors_)[src];
        const RecordT out = cursor.head();
        cursor.advance();
        std::size_t candidate = cursor.exhausted() ? kEmpty : src;
        for (std::size_t node = (src + ways_) / 2; node >= 1;
             node /= 2) {
            if (beats(tree_[node], candidate))
                std::swap(tree_[node], candidate);
        }
        winner_ = candidate;
        return out;
    }

  private:
    static constexpr std::size_t kEmpty =
        static_cast<std::size_t>(-1);

    const RecordT &
    head(std::size_t i) const
    {
        return (*cursors_)[i]->head();
    }

    /** Same augmented order as LoserTree::beats: smaller head wins,
     *  equal keys go to the lower cursor index. */
    bool
    beats(std::size_t a, std::size_t b) const
    {
        if (a == kEmpty)
            return false;
        if (b == kEmpty)
            return true;
        if (head(a) < head(b))
            return true;
        if (head(b) < head(a))
            return false;
        return a < b;
    }

    std::size_t
    slotSource(std::size_t slot) const
    {
        if (slot < cursors_->size() && !(*cursors_)[slot]->exhausted())
            return slot;
        return kEmpty;
    }

    std::size_t
    buildTournament(std::size_t node)
    {
        if (node >= ways_)
            return slotSource(node - ways_);
        const std::size_t left = buildTournament(2 * node);
        const std::size_t right = buildTournament(2 * node + 1);
        if (beats(left, right)) {
            tree_[node] = right;
            return left;
        }
        tree_[node] = left;
        return right;
    }

    std::vector<std::unique_ptr<RunCursor<RecordT>>> *cursors_;
    std::vector<std::size_t> tree_;
    std::size_t ways_ = 1;
    std::size_t winner_ = kEmpty;
};

/** The streaming two-phase sort engine. */
template <typename RecordT>
class StreamEngine
{
  public:
    struct Options
    {
        unsigned phase1Ell = 16;  ///< chunk-sort merge fan-in
        unsigned phase2Ell = 16;  ///< run-merge fan-in (pre-budget)
        std::uint64_t presortRun = 16;
        std::uint64_t chunkRecords = 0; ///< 0 = one chunk
        std::uint64_t batchRecords = 1 << 14;   ///< b, in records
        std::uint64_t bufferBudgetBytes = 64ULL << 20;
        unsigned threads = 1;
    };

    explicit StreamEngine(Options opt) : opt_(opt)
    {
        BONSAI_REQUIRE(opt_.phase1Ell >= 2 && opt_.phase2Ell >= 2,
                       "merge fan-in must be at least 2");
    }

    /**
     * In-memory adapter: phase 1 sorts chunk ranges of @p data in
     * place, phase 2 ping-pongs memory-backed stores (zero-copy Merge
     * Path passes).  Byte-identical to the streamed path on the same
     * input and options.
     */
    StreamStats
    sortInPlace(std::vector<RecordT> &data) const
    {
        StreamStats stats;
        stats.recordsIn = data.size();
        // Unified telemetry with sortStream: the in-memory adapter
        // reports the same batch/budget knobs (what the equivalent
        // streamed run would be bounded by) even though its zero-copy
        // passes hold no pool buffers; effectiveEll is the fan-in it
        // actually merges with (memory passes are not budget-capped).
        stats.effectiveEll = opt_.phase2Ell;
        stats.batchRecords = opt_.batchRecords;
        stats.bufferPoolBytes = poolBudgetBytes();
        stats.concurrentGroups = opt_.threads;
        stats.finalSlices = opt_.threads;
        if (data.size() <= 1)
            return stats;
        ThreadPool pool(opt_.threads);

        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t chunk = chunkLength(data.size());
        BehavioralSorter<RecordT> phase1(
            opt_.phase1Ell, opt_.presortRun, opt_.threads);
        std::vector<RunSpan> runs;
        for (std::uint64_t lo = 0; lo < data.size(); lo += chunk) {
            const std::uint64_t len =
                std::min<std::uint64_t>(chunk, data.size() - lo);
            const BehavioralStats s = phase1.sort(
                std::span<RecordT>(data.data() + lo, len), pool);
            stats.phase1RecordsMoved += s.recordsMoved;
            stats.recordsMoved += s.recordsMoved;
            runs.push_back(RunSpan{lo, len});
        }
        stats.phase1Chunks = runs.size();
        stats.phase1Seconds = secondsSince(t1);

        const auto t2 = std::chrono::steady_clock::now();
        std::vector<RecordT> scratch(data.size());
        io::MemoryRunStore<RecordT> front(
            {data.data(), data.size()});
        io::MemoryRunStore<RecordT> back(
            {scratch.data(), scratch.size()});
        front.setRuns(std::move(runs));
        io::RunStore<RecordT> *src = &front;
        io::RunStore<RecordT> *dst = &back;
        const BehavioralSorter<RecordT> merger(opt_.phase2Ell, 1,
                                               opt_.threads);
        ThreadPool *merge_pool = &pool;
        while (src->runs().size() > 1) {
            mergePass(*src, *dst, opt_.phase2Ell, merger, *merge_pool,
                      stats);
            std::swap(src, dst);
            ++stats.mergePasses;
        }
        if (src == &back)
            data = std::move(scratch);
        stats.phase2Seconds = secondsSince(t2);
        return stats;
    }

    /**
     * Fully streamed sort: @p source -> spilled runs in @p front /
     * @p back -> merged output into @p sink.  Resident memory is
     * bounded by two chunk buffers (plus one chunk of sort scratch)
     * and the batch buffer pool, independent of the dataset size.
     *
     * Failure contract: any I/O or task failure — in a lane's
     * background worker, a prefetch cursor, a splitter probe, the
     * sink — unwinds to exactly one std::runtime_error thrown from
     * here.  First error wins; errors observed while quiescing behind
     * it are counted in StreamStats::secondaryErrors.  All pool
     * buffers are returned before the throw (lastPoolOutstanding()
     * lets tests assert that).
     */
    StreamStats
    sortStream(io::RecordSource<RecordT> &source,
               io::RecordSink<RecordT> &sink,
               io::RunStore<RecordT> &front,
               io::RunStore<RecordT> &back) const
    {
        StreamStats stats;
        stats.recordsIn = source.totalRecords();
        stats.batchRecords = opt_.batchRecords;
        if (stats.recordsIn == 0) {
            sink.finish();
            return stats;
        }
        ThreadPool pool(opt_.threads);
        io::BufferPool<RecordT> bufs(opt_.batchRecords,
                                     opt_.bufferBudgetBytes);
        stats.bufferPoolBytes = bufs.budgetBytes();
        const Phase2Shape shape = phase2Shape(bufs);
        stats.effectiveEll = shape.ell;
        stats.concurrentGroups = shape.lanes;
        // One reader/writer worker pair per lane, so concurrent
        // groups never serialize their prefetches behind one worker;
        // lane 0 doubles as the phase-1 spill writer.
        std::vector<std::unique_ptr<Lane>> lanes;
        lanes.reserve(shape.lanes);
        for (unsigned i = 0; i < shape.lanes; ++i)
            lanes.push_back(std::make_unique<Lane>());

        // Sort-wide first-error latch: every cursor, writer and
        // quiesce path records into this one trap, so the caller sees
        // exactly one exception no matter how many lanes failed.
        ErrorTrap trap;
        try {
            runPhase1(source, front, pool, lanes[0]->writer, stats,
                      trap);
            runPhase2(front, back, sink, bufs, lanes, pool, stats,
                      trap);
        } catch (...) {
            trap.store(std::current_exception());
        }

        // Telemetry is valid on success and failure alike.
        stats.spillBytesWritten =
            front.bytesWritten() + back.bytesWritten();
        stats.spillBytesRead = front.bytesRead() + back.bytesRead();
        stats.bufferPoolPeakBytes = bufs.peakOutstanding() *
            bufs.batchRecords() * sizeof(RecordT);
        io::IoRetryStats retries = front.retryStats();
        retries += back.retryStats();
        stats.ioTransientRetries = retries.transientRetries;
        stats.ioEintrRetries = retries.eintrRetries;
        stats.ioShortTransfers = retries.shortTransfers;
        stats.secondaryErrors = trap.secondaryCount();
        lastSecondaryErrors_.store(stats.secondaryErrors,
                                   std::memory_order_relaxed);
        lastPoolOutstanding_.store(bufs.outstanding(),
                                   std::memory_order_relaxed);
        trap.rethrowIfSet();
        BONSAI_ENSURE(bufs.outstanding() == 0,
                      "buffer pool has outstanding buffers after a "
                      "clean streamed sort");
        return stats;
    }

    /** Pool buffers still outstanding when the last sortStream on
     *  this engine returned or threw — 0 unless the unwind leaked
     *  (tests assert this after injected faults). */
    std::uint64_t
    lastPoolOutstanding() const
    {
        return lastPoolOutstanding_.load(std::memory_order_relaxed);
    }

    /** Secondary (suppressed) errors of the last sortStream. */
    std::uint64_t
    lastSecondaryErrors() const
    {
        return lastSecondaryErrors_.load(std::memory_order_relaxed);
    }

  private:
    /** Per-lane background I/O workers: one phase-2 merge lane owns a
     *  prefetch thread and a write-back thread for the whole sort. */
    struct Lane
    {
        BackgroundWorker reader;
        BackgroundWorker writer;
    };

    /** Stall/move tally of one merge task, accumulated race-free per
     *  worker and folded into StreamStats under a mutex. */
    struct GroupTally
    {
        std::uint64_t moved = 0;
        double readStall = 0.0;
        double writeStall = 0.0;
    };

    /** Joint phase-2 shape admitted by the Equation-10 pool budget
     *  b * (2 ell + 2) * W. */
    struct Phase2Shape
    {
        unsigned ell = 2;   ///< effective merge fan-in
        unsigned lanes = 1; ///< concurrent merge groups / final slices
    };

    /** Free-lane allocator: group tasks lease a lane for the duration
     *  of one merge, bounding concurrent pool holdings to
     *  lanes * (2 ell + 2) buffers no matter how wide the thread pool
     *  is.  A leaf lock like every other in the tree (see
     *  common/sync.hpp): the lease mutex is never held while merging
     *  — only around the free-list push/pop. */
    class LaneLeases
    {
      public:
        explicit LaneLeases(unsigned lanes)
        {
            free_.reserve(lanes);
            for (unsigned i = 0; i < lanes; ++i)
                free_.push_back(lanes - 1 - i);
        }

        unsigned
        acquire() BONSAI_EXCLUDES(mutex_)
        {
            ScopedLock lock(mutex_);
            while (free_.empty())
                ready_.wait(mutex_);
            const unsigned lane = free_.back();
            free_.pop_back();
            return lane;
        }

        void
        release(unsigned lane) BONSAI_EXCLUDES(mutex_)
        {
            {
                ScopedLock lock(mutex_);
                free_.push_back(lane);
            }
            ready_.notifyOne();
        }

      private:
        Mutex mutex_;
        CondVar ready_;
        std::vector<unsigned> free_ BONSAI_GUARDED_BY(mutex_);
    };

    std::uint64_t
    chunkLength(std::uint64_t total) const
    {
        if (opt_.chunkRecords == 0)
            return total;
        return std::min<std::uint64_t>(opt_.chunkRecords, total);
    }

    static double
    secondsSince(std::chrono::steady_clock::time_point start)
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    /** Bytes a BufferPool with these options would be allowed to hold
     *  — telemetry for the in-memory adapter, computed without
     *  constructing a pool (which fails loudly on tiny budgets). */
    std::uint64_t
    poolBudgetBytes() const
    {
        const std::uint64_t batch_bytes =
            opt_.batchRecords * sizeof(RecordT);
        if (batch_bytes == 0)
            return 0;
        return (opt_.bufferBudgetBytes / batch_bytes) * batch_bytes;
    }

    /** Joint (fan-in, lanes) derivation from the pool budget — the
     *  Equation-10 bound generalized to W concurrent merge units:
     *  one lane needs 2 buffers per input cursor plus 2 for its
     *  write-back, so W lanes of fan-in ell fit when
     *  (2 ell + 2) * W <= buffers().  Fan-in is maximized first (it
     *  cuts the number of storage round trips, the dominant cost),
     *  then whatever budget is left admits extra lanes, capped at
     *  the thread count.  Fails loudly (all build types) when even
     *  one 2-way lane does not fit — blocking acquire()s would
     *  otherwise deadlock mid-sort. */
    Phase2Shape
    phase2Shape(const io::BufferPool<RecordT> &bufs) const
    {
        const std::uint64_t have = bufs.buffers();
        if (have < 6)
            contracts::fail(
                "precondition", "bufs.buffers() >= 6", __FILE__,
                __LINE__,
                "buffer pool budget (" +
                    std::to_string(bufs.budgetBytes()) +
                    " bytes) holds only " + std::to_string(have) +
                    " batch buffer(s); a streaming merge needs at "
                    "least 6 (2 per input run of a 2-way merge + 2 "
                    "for write-back)");
        Phase2Shape shape;
        shape.ell = static_cast<unsigned>(std::min<std::uint64_t>(
            opt_.phase2Ell, (have - 2) / 2));
        const std::uint64_t per_lane = 2ULL * shape.ell + 2;
        shape.lanes = static_cast<unsigned>(std::max<std::uint64_t>(
            1,
            std::min<std::uint64_t>(opt_.threads, have / per_lane)));
        return shape;
    }

    /** Stream chunks in, sort in place, spill runs — write-back of
     *  chunk k overlaps the load and sort of chunk k+1. */
    void
    runPhase1(io::RecordSource<RecordT> &source,
              io::RunStore<RecordT> &store, ThreadPool &pool,
              BackgroundWorker &writer, StreamStats &stats,
              ErrorTrap &trap) const
    {
        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t total = source.totalRecords();
        const std::uint64_t chunk = chunkLength(total);
        BehavioralSorter<RecordT> sorter(
            opt_.phase1Ell, opt_.presortRun, opt_.threads);
        std::array<std::vector<RecordT>, 2> buf;
        std::array<io::TaskGate, 2> gate;
        buf[0].resize(chunk);
        if (chunk < total)
            buf[1].resize(chunk);
        std::vector<RunSpan> runs;
        try {
            fillSortSpill(source, store, pool, writer, sorter, buf,
                          gate, runs, total, chunk, stats);
            stats.writeStallSeconds += gate[0].wait() + gate[1].wait();
        } catch (...) {
            // The writer may still reference buf/gate; quiesce the
            // in-flight spills before the locals unwind.  A second
            // failure surfacing here is recorded, not dropped (the
            // original error stays primary).
            for (io::TaskGate &g : gate) {
                try {
                    g.wait();
                } catch (...) {
                    trap.storeSecondary(std::current_exception());
                }
            }
            throw;
        }
        // Durability point: a spill the device only buffered is not a
        // spill phase 2 can trust.
        store.flush("phase-1 spill flush");
        stats.phase1Chunks = runs.size();
        store.setRuns(std::move(runs));
        stats.phase1Seconds = secondsSince(t1);
    }

    /** The phase-1 loop body: every path out of here must leave the
     *  spill gates quiescable by the caller. */
    void
    fillSortSpill(io::RecordSource<RecordT> &source,
                  io::RunStore<RecordT> &store, ThreadPool &pool,
                  BackgroundWorker &writer,
                  BehavioralSorter<RecordT> &sorter,
                  std::array<std::vector<RecordT>, 2> &buf,
                  std::array<io::TaskGate, 2> &gate,
                  std::vector<RunSpan> &runs, std::uint64_t total,
                  std::uint64_t chunk, StreamStats &stats) const
    {
        std::uint64_t offset = 0;
        unsigned slot = 0;
        while (offset < total) {
            const std::uint64_t len =
                std::min<std::uint64_t>(chunk, total - offset);
            std::vector<RecordT> &cur = buf[slot];
            // This buffer's previous spill must have landed.
            stats.writeStallSeconds += gate[slot].wait();
            std::uint64_t got = 0;
            while (got < len) {
                const std::uint64_t r = source.read(
                    cur.data() + got,
                    std::min<std::uint64_t>(opt_.batchRecords,
                                            len - got));
                if (r == 0)
                    contracts::fail(
                        "precondition", "source.read() != 0", __FILE__,
                        __LINE__,
                        "record source ended at record " +
                            std::to_string(offset + got) +
                            " but declared " + std::to_string(total));
                io::requireNoTerminals(cur.data() + got, r,
                                       offset + got);
                got += r;
            }
            const BehavioralStats s = sorter.sort(
                std::span<RecordT>(cur.data(), len), pool);
            stats.phase1RecordsMoved += s.recordsMoved;
            stats.recordsMoved += s.recordsMoved;
            io::TaskGate *g = &gate[slot];
            const std::uint64_t off = offset;
            g->arm();
            try {
                writer.post([&store, &cur, g, off, len,
                             ctx = "phase-1 spill of chunk " +
                                   std::to_string(runs.size())] {
                    try {
                        store.writeAt(off, cur.data(), len,
                                      ctx.c_str());
                    } catch (...) {
                        g->fail(std::current_exception());
                        return;
                    }
                    g->open();
                });
            } catch (...) {
                // Nothing made it in flight: reopen the gate so the
                // caller's quiesce wait cannot deadlock.
                g->open();
                throw;
            }
            runs.push_back(RunSpan{offset, len});
            offset += len;
            slot ^= 1;
        }
    }

    static void
    foldTally(const GroupTally &t, StreamStats &stats)
    {
        stats.recordsMoved += t.moved;
        stats.readStallSeconds += t.readStall;
        stats.writeStallSeconds += t.writeStall;
    }

    /** Merge passes between the stores; the pass that collapses to a
     *  single run streams into the sink instead.  Non-final passes
     *  spread independent groups across the merge lanes; the final
     *  pass is splitter-partitioned across them. */
    void
    runPhase2(io::RunStore<RecordT> &front, io::RunStore<RecordT> &back,
              io::RecordSink<RecordT> &sink,
              io::BufferPool<RecordT> &bufs,
              std::vector<std::unique_ptr<Lane>> &lanes,
              ThreadPool &pool, StreamStats &stats,
              ErrorTrap &trap) const
    {
        const auto t2 = std::chrono::steady_clock::now();
        const unsigned ell = stats.effectiveEll;
        io::RunStore<RecordT> *src = &front;
        io::RunStore<RecordT> *dst = &back;
        for (;;) {
            const StagePlan plan(src->runs(), ell);
            if (plan.groups() == 1) {
                finalPass(*src, plan.groupRuns(0), sink, bufs, lanes,
                          pool, stats, trap);
                ++stats.mergePasses;
                break;
            }
            const std::vector<RunSpan> out = plan.outputRuns();
            mergePassStreamed(*src, *dst, plan, out, bufs, lanes,
                              pool, stats, trap);
            // Durability point: the next pass reads these runs back
            // assuming they reached the device.
            dst->flush("phase-2 merge pass flush");
            ++stats.mergePasses;
            dst->setRuns(out);
            src->setRuns({});
            std::swap(src, dst);
        }
        sink.finish();
        stats.phase2Seconds = secondsSince(t2);
    }

    /** One non-final pass: independent merge groups are scheduled on
     *  the thread pool, each leasing one of the W lanes for its I/O
     *  workers and its share of the buffer budget. */
    void
    mergePassStreamed(io::RunStore<RecordT> &src,
                      io::RunStore<RecordT> &dst, const StagePlan &plan,
                      const std::vector<RunSpan> &out,
                      io::BufferPool<RecordT> &bufs,
                      std::vector<std::unique_ptr<Lane>> &lanes,
                      ThreadPool &pool, StreamStats &stats,
                      ErrorTrap &trap) const
    {
        std::vector<std::uint64_t> work;
        for (std::uint64_t g = 0; g < plan.groups(); ++g)
            if (!plan.groupRuns(g).empty())
                work.push_back(g);
        const std::size_t width =
            std::min<std::size_t>(lanes.size(), work.size());
        std::vector<GroupTally> tallies(work.size());
        if (width <= 1) {
            for (std::size_t i = 0; i < work.size(); ++i)
                tallies[i] = mergeOneGroup(src, plan, out, work[i],
                                           dst, bufs, *lanes[0], trap);
        } else {
            // parallelFor tasks must not throw (a leaked exception
            // kills a pool worker), so trap the first error and
            // rethrow it after the join.  The sort-wide trap keeps
            // first-error-wins across lanes: one group's failure
            // propagates, the rest are counted as secondary.
            LaneLeases leases(static_cast<unsigned>(width));
            pool.parallelFor(work.size(), [&](std::uint64_t i) {
                const unsigned lane = leases.acquire();
                try {
                    tallies[i] = mergeOneGroup(src, plan, out,
                                               work[i], dst, bufs,
                                               *lanes[lane], trap);
                } catch (...) {
                    trap.store(std::current_exception());
                }
                leases.release(lane);
            });
            trap.rethrowIfSet();
        }
        for (const GroupTally &t : tallies)
            foldTally(t, stats);
    }

    /** Merge (or, for a singleton group, batch-copy) group @p g of
     *  @p plan into its output run in @p dst. */
    GroupTally
    mergeOneGroup(const io::RunStore<RecordT> &src,
                  const StagePlan &plan,
                  const std::vector<RunSpan> &out, std::uint64_t g,
                  io::RunStore<RecordT> &dst,
                  io::BufferPool<RecordT> &bufs, Lane &lane,
                  ErrorTrap &trap) const
    {
        const std::vector<RunSpan> members = plan.groupRuns(g);
        const std::string ctx =
            "phase-2 write-back of merge group " + std::to_string(g);
        io::RunStoreSink<RecordT> gsink(dst, out[g].offset,
                                        ctx.c_str());
        if (members.size() == 1)
            return copyRun(src, members[0], gsink, bufs, lane.writer,
                           trap);
        return mergeGroup(src, members, gsink, bufs, lane.reader,
                          lane.writer, trap);
    }

    /** The final pass (one group, streaming to the sink): cut the
     *  key space into per-lane slices along splitters chosen in the
     *  augmented (key, run index, position) order and stitch the
     *  slices into the sink as positioned segments at their exact
     *  output ranks — byte-identical to the serial tournament for
     *  any lane count.  Falls back to the serial merge when the
     *  group is small or the sink cannot take positioned writes. */
    void
    finalPass(const io::RunStore<RecordT> &src,
              const std::vector<RunSpan> &members,
              io::RecordSink<RecordT> &sink,
              io::BufferPool<RecordT> &bufs,
              std::vector<std::unique_ptr<Lane>> &lanes,
              ThreadPool &pool, StreamStats &stats,
              ErrorTrap &trap) const
    {
        if (members.size() == 1) {
            stats.finalSlices = 1;
            foldTally(copyRun(src, members[0], sink, bufs,
                              lanes[0]->writer, trap),
                      stats);
            return;
        }
        std::uint64_t total = 0;
        for (const RunSpan &m : members)
            total += m.length;
        // Below ~2 batches per slice the cut overhead outweighs the
        // parallelism; and without positioned segment support the
        // slices cannot land concurrently.
        std::uint64_t slices = std::min<std::uint64_t>(
            lanes.size(), total / (2 * bufs.batchRecords()));
        if (!sink.supportsSegments())
            slices = 1;
        if (slices <= 1) {
            stats.finalSlices = 1;
            foldTally(mergeGroup(src, members, sink, bufs,
                                 lanes[0]->reader, lanes[0]->writer,
                                 trap),
                      stats);
            return;
        }
        const std::vector<std::vector<std::uint64_t>> cuts =
            sliceCuts(src, members, static_cast<unsigned>(slices),
                      bufs);
        // Slice t's first output rank is the sum of its start cuts.
        std::vector<std::uint64_t> base(slices + 1, 0);
        for (std::uint64_t t = 0; t <= slices; ++t)
            for (std::size_t j = 0; j < members.size(); ++j)
                base[t] += cuts[t][j];
        BONSAI_ENSURE(base[slices] == total,
                      "splitter cuts must partition the final group");
        sink.beginSegments(total);
        stats.finalSlices = static_cast<unsigned>(slices);
        std::vector<GroupTally> tallies(slices);
        pool.parallelFor(slices, [&](std::uint64_t t) {
            try {
                // Keep every member — empty sub-spans included — in
                // member order, so cursor indices (the equal-key tie
                // break) match the serial tournament's.
                std::vector<RunSpan> sub;
                sub.reserve(members.size());
                for (std::size_t j = 0; j < members.size(); ++j)
                    sub.push_back(
                        RunSpan{members[j].offset + cuts[t][j],
                                cuts[t + 1][j] - cuts[t][j]});
                io::SegmentSink<RecordT> seg(sink, base[t]);
                tallies[t] = mergeGroup(src, sub, seg, bufs,
                                        lanes[t]->reader,
                                        lanes[t]->writer, trap);
            } catch (...) {
                trap.store(std::current_exception());
            }
        });
        trap.rethrowIfSet();
        for (const GroupTally &t : tallies)
            foldTally(t, stats);
    }

    /** Cut matrix for the splitter-partitioned final pass:
     *  cuts[t][j] = records of member j that precede slice t's start
     *  in the augmented (key, run index, position) order.  Row 0 is
     *  all zeros, row `slices` is the member lengths, and rows are
     *  monotone — consecutive rows delimit disjoint sub-spans whose
     *  concatenation in t order is exactly the serial tournament
     *  output (any monotone sequence of consistent cuts is). */
    std::vector<std::vector<std::uint64_t>>
    sliceCuts(const io::RunStore<RecordT> &src,
              const std::vector<RunSpan> &members, unsigned slices,
              io::BufferPool<RecordT> &bufs) const
    {
        struct Sample
        {
            RecordT rec;
            std::size_t j = 0;
            std::uint64_t pos = 0;
        };
        const std::uint64_t batch = bufs.batchRecords();
        std::uint64_t total = 0;
        for (const RunSpan &m : members)
            total += m.length;
        // Batch-aligned sampling: pivots land on batch heads of
        // their own run, and every probe is a 1-record readAt.
        std::uint64_t stride = std::max<std::uint64_t>(
            batch, total / (std::uint64_t(slices) * 32));
        stride = ((stride + batch - 1) / batch) * batch;
        std::vector<Sample> samples;
        for (std::size_t j = 0; j < members.size(); ++j) {
            for (std::uint64_t pos = 0; pos < members[j].length;
                 pos += stride) {
                Sample s;
                src.readAt(members[j].offset + pos, &s.rec, 1,
                           "final-pass splitter sample probe");
                s.j = j;
                s.pos = pos;
                samples.push_back(s);
            }
        }
        std::sort(samples.begin(), samples.end(),
                  [](const Sample &a, const Sample &b) {
                      if (a.rec < b.rec)
                          return true;
                      if (b.rec < a.rec)
                          return false;
                      if (a.j != b.j)
                          return a.j < b.j;
                      return a.pos < b.pos;
                  });
        std::vector<std::vector<std::uint64_t>> cuts(
            slices + 1,
            std::vector<std::uint64_t>(members.size(), 0));
        for (std::size_t j = 0; j < members.size(); ++j)
            cuts[slices][j] = members[j].length;
        std::vector<RecordT> win = bufs.acquire();
        try {
            for (unsigned t = 1; t < slices; ++t) {
                const Sample &pivot =
                    samples[samples.size() * t / slices];
                for (std::size_t j = 0; j < members.size(); ++j) {
                    if (j == pivot.j)
                        cuts[t][j] = pivot.pos;
                    else
                        cuts[t][j] = keyBoundary(src, members[j],
                                                 pivot.rec,
                                                 j < pivot.j, win);
                }
            }
        } catch (...) {
            bufs.release(std::move(win));
            throw;
        }
        bufs.release(std::move(win));
        return cuts;
    }

    /** Records of @p m preceding @p pivot in the augmented order,
     *  found out of core: binary-search the run's batch heads with
     *  1-record reads, then partition one <= batch window (Merge
     *  Path's boundary search at batch granularity).  @p equal_before
     *  encodes the tie rule: true for runs left of the pivot's run
     *  (equal keys precede the pivot), false for runs right of it. */
    std::uint64_t
    keyBoundary(const io::RunStore<RecordT> &src, const RunSpan &m,
                const RecordT &pivot, bool equal_before,
                std::vector<RecordT> &win) const
    {
        if (m.length == 0)
            return 0;
        const auto before = [&](const RecordT &rec) {
            return equal_before ? !(pivot < rec) : rec < pivot;
        };
        const std::uint64_t batch = win.size();
        const std::uint64_t nb = (m.length + batch - 1) / batch;
        std::uint64_t lo = 0; // batch heads below lo are `before`
        std::uint64_t hi = nb;
        while (lo < hi) {
            const std::uint64_t mid = lo + (hi - lo) / 2;
            RecordT head;
            src.readAt(m.offset + mid * batch, &head, 1,
                       "final-pass splitter boundary probe");
            if (before(head))
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo == 0)
            return 0; // even the first record is past the boundary
        const std::uint64_t start = (lo - 1) * batch;
        const std::uint64_t len =
            std::min<std::uint64_t>(batch, m.length - start);
        src.readAt(m.offset + start, win.data(), len,
                   "final-pass splitter boundary window");
        const RecordT *split = std::partition_point(
            win.data(), win.data() + len, before);
        return start + static_cast<std::uint64_t>(split - win.data());
    }

    /** Singleton-group bypass: a 1-member group needs no tournament —
     *  batch-copy the run to @p out, the read of batch k overlapping
     *  the write-back of batch k-1. */
    GroupTally
    copyRun(const io::RunStore<RecordT> &src, const RunSpan &run,
            io::RecordSink<RecordT> &out, io::BufferPool<RecordT> &bufs,
            BackgroundWorker &writer, ErrorTrap &trap) const
    {
        GroupTally tally;
        const std::uint64_t batch = bufs.batchRecords();
        const std::string ctx = "batch-copy of run @" +
                                std::to_string(run.offset) + "+" +
                                std::to_string(run.length);
        // First acquire in the initializer, second guarded: if it
        // throws the first buffer still returns to the pool.
        std::array<std::vector<RecordT>, 2> buf;
        buf[0] = bufs.acquire();
        try {
            buf[1] = bufs.acquire();
        } catch (...) {
            bufs.release(std::move(buf[0]));
            throw;
        }
        std::array<io::TaskGate, 2> gate;
        std::array<std::uint64_t, 2> len = {0, 0};
        try {
            unsigned slot = 0;
            std::uint64_t done = 0;
            while (done < run.length) {
                const std::uint64_t n =
                    std::min<std::uint64_t>(batch, run.length - done);
                // This buffer's previous write must have landed.
                tally.writeStall += gate[slot].wait();
                src.readAt(run.offset + done, buf[slot].data(), n,
                           ctx.c_str());
                len[slot] = n;
                io::TaskGate *g = &gate[slot];
                const std::vector<RecordT> *b = &buf[slot];
                const std::uint64_t *l = &len[slot];
                g->arm();
                try {
                    writer.post([&out, g, b, l] {
                        try {
                            out.write(b->data(), *l);
                        } catch (...) {
                            g->fail(std::current_exception());
                            return;
                        }
                        g->open();
                    });
                } catch (...) {
                    // Nothing made it in flight: reopen the gate so
                    // the quiesce below cannot deadlock.
                    g->open();
                    throw;
                }
                done += n;
                slot ^= 1;
            }
            tally.writeStall += gate[0].wait() + gate[1].wait();
        } catch (...) {
            // An in-flight write still references buf; quiesce the
            // gates before the buffers return to the pool, recording
            // (not dropping) any second failure behind the first.
            for (io::TaskGate &g : gate) {
                try {
                    g.wait();
                } catch (...) {
                    trap.storeSecondary(std::current_exception());
                }
            }
            bufs.release(std::move(buf[0]));
            bufs.release(std::move(buf[1]));
            throw;
        }
        bufs.release(std::move(buf[0]));
        bufs.release(std::move(buf[1]));
        tally.moved = run.length;
        return tally;
    }

    /** Stream-merge one group of runs from @p src into @p out. */
    GroupTally
    mergeGroup(const io::RunStore<RecordT> &src,
               const std::vector<RunSpan> &members,
               io::RecordSink<RecordT> &out,
               io::BufferPool<RecordT> &bufs, BackgroundWorker &reader,
               BackgroundWorker &writer, ErrorTrap &trap) const
    {
        GroupTally tally;
        std::vector<std::unique_ptr<RunCursor<RecordT>>> cursors;
        cursors.reserve(members.size());
        for (const RunSpan &m : members)
            cursors.push_back(std::make_unique<RunCursor<RecordT>>(
                src, m, bufs, reader, &trap));
        StreamWriter<RecordT> drain(out, bufs, writer, &trap);
        CursorMerge<RecordT> merge(cursors);
        while (!merge.done()) {
            drain.push(merge.pop());
            ++tally.moved;
        }
        drain.finish();
        for (const auto &c : cursors)
            tally.readStall += c->stallSeconds();
        tally.writeStall += drain.stallSeconds();
        return tally;
    }

    /** One store-to-store merge pass; memory-backed store pairs run
     *  the zero-copy Merge Path kernel instead of streaming. */
    void
    mergePass(io::RunStore<RecordT> &src, io::RunStore<RecordT> &dst,
              unsigned ell, const BehavioralSorter<RecordT> &merger,
              ThreadPool &pool, StreamStats &stats) const
    {
        const StagePlan plan(src.runs(), ell);
        const std::span<RecordT> s = src.memorySpan();
        const std::span<RecordT> d = dst.memorySpan();
        BONSAI_REQUIRE(!s.empty() && !d.empty(),
                       "mergePass needs memory-backed stores; "
                       "storage-backed passes go through runPhase2");
        merger.runStage(plan, {s.data(), s.size()}, d, pool);
        stats.recordsMoved += plan.totalRecords();
        dst.setRuns(plan.outputRuns());
        src.setRuns({});
    }

    Options opt_;
    /** Post-mortem telemetry of the last sortStream (relaxed: written
     *  once at the end of a sort, read by tests afterwards).  Mutable
     *  because a failed sort is still a const operation. */
    mutable std::atomic<std::uint64_t> lastPoolOutstanding_{0};
    mutable std::atomic<std::uint64_t> lastSecondaryErrors_{0};
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_EXTERNAL_HPP
