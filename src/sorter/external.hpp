/**
 * @file
 * Out-of-core two-phase streaming sort engine (paper Section IV-C/D).
 *
 * The facade-level SsdSorter used to require the whole dataset in one
 * std::vector.  This engine runs the same two-phase structure against
 * the io streaming layer with bounded memory:
 *
 *  Phase 1 — stream fixed-size chunks from a RecordSource into a
 *  working buffer, sort each *in place* with the BehavioralSorter
 *  (no per-chunk copy round trip), and spill the sorted runs to a
 *  RunStore.  Two chunk buffers alternate so the spill write-back of
 *  chunk k overlaps the load+sort of chunk k+1 (the paper's
 *  double-buffered data loader, writ large).
 *
 *  Phase 2 — ell-way merge passes ping-pong runs between two stores;
 *  every pass is one full storage round trip (the paper's SSD
 *  round-trip cost unit).  Each input run streams through a
 *  double-buffered cursor whose next batch is prefetched on a
 *  background worker while the merge consumes the current one, and
 *  merged output drains through a double-buffered write-back path.
 *  Batch size b and the total buffer budget mirror Equation 10's
 *  b * ell on-chip buffer bound: the effective merge fan-in is derived
 *  from the budget, so resident memory never exceeds it.
 *
 * Memory-backed stores short-circuit: when both stores expose a
 * memorySpan(), a pass runs on BehavioralSorter::runStage — the Merge
 * Path sliced, thread-parallel kernel — with zero copies, which is how
 * sort(std::vector&) remains a thin, byte-identical adapter.  Both
 * paths emit the identical record sequence (the per-group loser-tree
 * augmented order), so a file-backed sort is byte-identical to the
 * in-memory sort of the same input whenever the buffer budget admits
 * the planned fan-in.
 */

#ifndef BONSAI_SORTER_EXTERNAL_HPP
#define BONSAI_SORTER_EXTERNAL_HPP

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/stage_plan.hpp"

namespace bonsai::sorter
{

/**
 * Unified telemetry of a streamed (or adapted in-memory) sort, shared
 * by SortReport and SsdReport so benches compare backends uniformly.
 */
struct StreamStats
{
    std::uint64_t recordsIn = 0;
    std::uint64_t recordsMoved = 0;       ///< total, both phases
    std::uint64_t phase1RecordsMoved = 0; ///< in-chunk sort moves only
    std::uint64_t phase1Chunks = 0;
    std::uint64_t spillBytesWritten = 0; ///< run-store write traffic
    std::uint64_t spillBytesRead = 0;    ///< run-store read traffic
    unsigned mergePasses = 0;    ///< phase-2 storage round trips
    unsigned effectiveEll = 0;   ///< fan-in after the buffer budget cap
    std::uint64_t batchRecords = 0;    ///< streaming batch size b
    std::uint64_t bufferPoolBytes = 0; ///< bounded pool budget
    double phase1Seconds = 0.0;
    double phase2Seconds = 0.0;
    double readStallSeconds = 0.0;  ///< merge blocked on prefetch
    double writeStallSeconds = 0.0; ///< blocked on write-back

    friend bool operator==(const StreamStats &,
                           const StreamStats &) = default;
};

/**
 * Forward-only view of one stored run: double-buffered, batch-sized
 * reads with the next batch prefetched on a background worker while
 * the merge consumes the current one.
 */
template <typename RecordT>
class RunCursor
{
  public:
    RunCursor(const io::RunStore<RecordT> &store, RunSpan span,
              io::BufferPool<RecordT> &pool, BackgroundWorker &reader)
        : store_(&store), pool_(&pool), reader_(&reader),
          batch_(pool.batchRecords()), next_(span.offset),
          end_(span.offset + span.length), cur_(pool.acquire()),
          pre_(pool.acquire())
    {
        curLen_ = std::min<std::uint64_t>(batch_, end_ - next_);
        if (curLen_ > 0) {
            store_->readAt(next_, cur_.data(), curLen_);
            next_ += curLen_;
        }
        schedulePrefetch();
    }

    RunCursor(const RunCursor &) = delete;
    RunCursor &operator=(const RunCursor &) = delete;

    ~RunCursor()
    {
        // An in-flight prefetch still targets pre_; let it land before
        // the buffers return to the pool.  Its error (if any) is
        // dropped — nobody will consume the data it failed to read.
        try {
            gate_.wait();
        } catch (...) { // NOLINT(bugprone-empty-catch)
        }
        pool_->release(std::move(cur_));
        pool_->release(std::move(pre_));
    }

    /** No more records in [span.offset, span.offset + span.length). */
    bool exhausted() const { return pos_ >= curLen_; }

    const RecordT &head() const { return cur_[pos_]; }

    void
    advance()
    {
        ++pos_;
        if (pos_ == curLen_)
            refill();
    }

    /** Seconds the consumer blocked waiting for prefetched batches. */
    double stallSeconds() const { return stall_; }

  private:
    void
    refill()
    {
        if (preLen_ == 0)
            return; // run fully consumed: exhausted() is now true
        stall_ += gate_.wait();
        std::swap(cur_, pre_);
        curLen_ = preLen_;
        preLen_ = 0;
        pos_ = 0;
        schedulePrefetch();
    }

    void
    schedulePrefetch()
    {
        preLen_ = std::min<std::uint64_t>(batch_, end_ - next_);
        if (preLen_ == 0)
            return;
        const std::uint64_t off = next_;
        next_ += preLen_;
        gate_.arm();
        reader_->post([this, off] {
            try {
                store_->readAt(off, pre_.data(), preLen_);
            } catch (...) {
                gate_.fail(std::current_exception());
                return;
            }
            gate_.open();
        });
    }

    const io::RunStore<RecordT> *store_;
    io::BufferPool<RecordT> *pool_;
    BackgroundWorker *reader_;
    std::uint64_t batch_;
    std::uint64_t next_; ///< next store offset to fetch
    std::uint64_t end_;  ///< one past the run's last record
    std::vector<RecordT> cur_;
    std::vector<RecordT> pre_;
    std::uint64_t curLen_ = 0;
    std::uint64_t preLen_ = 0;
    std::uint64_t pos_ = 0;
    io::TaskGate gate_;
    double stall_ = 0.0;
};

/**
 * Double-buffered batch writer: push() fills one buffer while the
 * previous one drains to the sink on a background worker.  All writes
 * to a sink funnel through one worker, so they land in push order.
 */
template <typename RecordT>
class StreamWriter
{
  public:
    StreamWriter(io::RecordSink<RecordT> &sink,
                 io::BufferPool<RecordT> &pool, BackgroundWorker &writer)
        : sink_(&sink), pool_(&pool), worker_(&writer),
          batch_(pool.batchRecords()), cur_(pool.acquire()),
          flight_(pool.acquire())
    {
    }

    StreamWriter(const StreamWriter &) = delete;
    StreamWriter &operator=(const StreamWriter &) = delete;

    ~StreamWriter()
    {
        try {
            gate_.wait();
        } catch (...) { // NOLINT(bugprone-empty-catch)
        }
        pool_->release(std::move(cur_));
        pool_->release(std::move(flight_));
    }

    void
    push(const RecordT &rec)
    {
        cur_[len_++] = rec;
        if (len_ == batch_)
            flushBatch();
    }

    /** Drain everything to the sink; required before destruction for
     *  errors to surface (the destructor swallows them). */
    void
    finish()
    {
        if (len_ > 0)
            flushBatch();
        stall_ += gate_.wait();
    }

    /** Seconds push()/finish() blocked on in-flight write-back. */
    double stallSeconds() const { return stall_; }

  private:
    void
    flushBatch()
    {
        stall_ += gate_.wait(); // previous batch must have landed
        std::swap(cur_, flight_);
        flightLen_ = len_;
        len_ = 0;
        gate_.arm();
        worker_->post([this] {
            try {
                sink_->write(flight_.data(), flightLen_);
            } catch (...) {
                gate_.fail(std::current_exception());
                return;
            }
            gate_.open();
        });
    }

    io::RecordSink<RecordT> *sink_;
    io::BufferPool<RecordT> *pool_;
    BackgroundWorker *worker_;
    std::uint64_t batch_;
    std::vector<RecordT> cur_;
    std::vector<RecordT> flight_;
    std::uint64_t len_ = 0;
    std::uint64_t flightLen_ = 0;
    io::TaskGate gate_;
    double stall_ = 0.0;
};

/**
 * Tournament tree over streaming cursors — the out-of-core counterpart
 * of LoserTree, emitting the identical (key, input index, position)
 * augmented order so streamed merges are byte-identical to in-memory
 * ones.
 */
template <typename RecordT>
class CursorMerge
{
  public:
    explicit CursorMerge(
        std::vector<std::unique_ptr<RunCursor<RecordT>>> &cursors)
        : cursors_(&cursors)
    {
        ways_ = 1;
        while (ways_ < cursors_->size())
            ways_ *= 2;
        tree_.assign(ways_, kEmpty);
        winner_ = buildTournament(1);
    }

    bool done() const { return winner_ == kEmpty; }

    RecordT
    pop()
    {
        BONSAI_REQUIRE(!done(), "pop from an exhausted cursor merge");
        const std::size_t src = winner_;
        RunCursor<RecordT> &cursor = *(*cursors_)[src];
        const RecordT out = cursor.head();
        cursor.advance();
        std::size_t candidate = cursor.exhausted() ? kEmpty : src;
        for (std::size_t node = (src + ways_) / 2; node >= 1;
             node /= 2) {
            if (beats(tree_[node], candidate))
                std::swap(tree_[node], candidate);
        }
        winner_ = candidate;
        return out;
    }

  private:
    static constexpr std::size_t kEmpty =
        static_cast<std::size_t>(-1);

    const RecordT &
    head(std::size_t i) const
    {
        return (*cursors_)[i]->head();
    }

    /** Same augmented order as LoserTree::beats: smaller head wins,
     *  equal keys go to the lower cursor index. */
    bool
    beats(std::size_t a, std::size_t b) const
    {
        if (a == kEmpty)
            return false;
        if (b == kEmpty)
            return true;
        if (head(a) < head(b))
            return true;
        if (head(b) < head(a))
            return false;
        return a < b;
    }

    std::size_t
    slotSource(std::size_t slot) const
    {
        if (slot < cursors_->size() && !(*cursors_)[slot]->exhausted())
            return slot;
        return kEmpty;
    }

    std::size_t
    buildTournament(std::size_t node)
    {
        if (node >= ways_)
            return slotSource(node - ways_);
        const std::size_t left = buildTournament(2 * node);
        const std::size_t right = buildTournament(2 * node + 1);
        if (beats(left, right)) {
            tree_[node] = right;
            return left;
        }
        tree_[node] = left;
        return right;
    }

    std::vector<std::unique_ptr<RunCursor<RecordT>>> *cursors_;
    std::vector<std::size_t> tree_;
    std::size_t ways_ = 1;
    std::size_t winner_ = kEmpty;
};

/** The streaming two-phase sort engine. */
template <typename RecordT>
class StreamEngine
{
  public:
    struct Options
    {
        unsigned phase1Ell = 16;  ///< chunk-sort merge fan-in
        unsigned phase2Ell = 16;  ///< run-merge fan-in (pre-budget)
        std::uint64_t presortRun = 16;
        std::uint64_t chunkRecords = 0; ///< 0 = one chunk
        std::uint64_t batchRecords = 1 << 14;   ///< b, in records
        std::uint64_t bufferBudgetBytes = 64ULL << 20;
        unsigned threads = 1;
    };

    explicit StreamEngine(Options opt) : opt_(opt)
    {
        BONSAI_REQUIRE(opt_.phase1Ell >= 2 && opt_.phase2Ell >= 2,
                       "merge fan-in must be at least 2");
    }

    /**
     * In-memory adapter: phase 1 sorts chunk ranges of @p data in
     * place, phase 2 ping-pongs memory-backed stores (zero-copy Merge
     * Path passes).  Byte-identical to the streamed path on the same
     * input and options.
     */
    StreamStats
    sortInPlace(std::vector<RecordT> &data) const
    {
        StreamStats stats;
        stats.recordsIn = data.size();
        stats.effectiveEll = opt_.phase2Ell;
        if (data.size() <= 1)
            return stats;
        ThreadPool pool(opt_.threads);

        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t chunk = chunkLength(data.size());
        BehavioralSorter<RecordT> phase1(
            opt_.phase1Ell, opt_.presortRun, opt_.threads);
        std::vector<RunSpan> runs;
        for (std::uint64_t lo = 0; lo < data.size(); lo += chunk) {
            const std::uint64_t len =
                std::min<std::uint64_t>(chunk, data.size() - lo);
            const BehavioralStats s = phase1.sort(
                std::span<RecordT>(data.data() + lo, len), pool);
            stats.phase1RecordsMoved += s.recordsMoved;
            stats.recordsMoved += s.recordsMoved;
            runs.push_back(RunSpan{lo, len});
        }
        stats.phase1Chunks = runs.size();
        stats.phase1Seconds = secondsSince(t1);

        const auto t2 = std::chrono::steady_clock::now();
        std::vector<RecordT> scratch(data.size());
        io::MemoryRunStore<RecordT> front(
            {data.data(), data.size()});
        io::MemoryRunStore<RecordT> back(
            {scratch.data(), scratch.size()});
        front.setRuns(std::move(runs));
        io::RunStore<RecordT> *src = &front;
        io::RunStore<RecordT> *dst = &back;
        const BehavioralSorter<RecordT> merger(opt_.phase2Ell, 1,
                                               opt_.threads);
        ThreadPool *merge_pool = &pool;
        while (src->runs().size() > 1) {
            mergePass(*src, *dst, opt_.phase2Ell, merger, *merge_pool,
                      stats);
            std::swap(src, dst);
            ++stats.mergePasses;
        }
        if (src == &back)
            data = std::move(scratch);
        stats.phase2Seconds = secondsSince(t2);
        return stats;
    }

    /**
     * Fully streamed sort: @p source -> spilled runs in @p front /
     * @p back -> merged output into @p sink.  Resident memory is
     * bounded by two chunk buffers (plus one chunk of sort scratch)
     * and the batch buffer pool, independent of the dataset size.
     */
    StreamStats
    sortStream(io::RecordSource<RecordT> &source,
               io::RecordSink<RecordT> &sink,
               io::RunStore<RecordT> &front,
               io::RunStore<RecordT> &back) const
    {
        StreamStats stats;
        stats.recordsIn = source.totalRecords();
        stats.batchRecords = opt_.batchRecords;
        if (stats.recordsIn == 0) {
            sink.finish();
            return stats;
        }
        ThreadPool pool(opt_.threads);
        io::BufferPool<RecordT> bufs(opt_.batchRecords,
                                     opt_.bufferBudgetBytes);
        stats.bufferPoolBytes = bufs.budgetBytes();
        stats.effectiveEll = effectiveEll(bufs);
        BackgroundWorker reader;
        BackgroundWorker writer;

        runPhase1(source, front, pool, writer, stats);
        runPhase2(front, back, sink, bufs, reader, writer, stats);

        stats.spillBytesWritten =
            front.bytesWritten() + back.bytesWritten();
        stats.spillBytesRead = front.bytesRead() + back.bytesRead();
        return stats;
    }

  private:
    std::uint64_t
    chunkLength(std::uint64_t total) const
    {
        if (opt_.chunkRecords == 0)
            return total;
        return std::min<std::uint64_t>(opt_.chunkRecords, total);
    }

    static double
    secondsSince(std::chrono::steady_clock::time_point start)
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    }

    /** Fan-in the buffer budget supports: 2 buffers per input cursor
     *  plus 2 for the output writer.  Fails loudly (all build types)
     *  when even a 2-way merge does not fit — blocking acquire()s
     *  would otherwise deadlock mid-sort. */
    unsigned
    effectiveEll(const io::BufferPool<RecordT> &bufs) const
    {
        const std::uint64_t have = bufs.buffers();
        if (have < 6)
            contracts::fail(
                "precondition", "bufs.buffers() >= 6", __FILE__,
                __LINE__,
                "buffer pool budget (" +
                    std::to_string(bufs.budgetBytes()) +
                    " bytes) holds only " + std::to_string(have) +
                    " batch buffer(s); a streaming merge needs at "
                    "least 6 (2 per input run of a 2-way merge + 2 "
                    "for write-back)");
        const std::uint64_t fan = (have - 2) / 2;
        return static_cast<unsigned>(
            std::min<std::uint64_t>(opt_.phase2Ell, fan));
    }

    /** Stream chunks in, sort in place, spill runs — write-back of
     *  chunk k overlaps the load and sort of chunk k+1. */
    void
    runPhase1(io::RecordSource<RecordT> &source,
              io::RunStore<RecordT> &store, ThreadPool &pool,
              BackgroundWorker &writer, StreamStats &stats) const
    {
        const auto t1 = std::chrono::steady_clock::now();
        const std::uint64_t total = source.totalRecords();
        const std::uint64_t chunk = chunkLength(total);
        BehavioralSorter<RecordT> sorter(
            opt_.phase1Ell, opt_.presortRun, opt_.threads);
        std::array<std::vector<RecordT>, 2> buf;
        std::array<io::TaskGate, 2> gate;
        buf[0].resize(chunk);
        if (chunk < total)
            buf[1].resize(chunk);
        std::vector<RunSpan> runs;
        try {
            fillSortSpill(source, store, pool, writer, sorter, buf,
                          gate, runs, total, chunk, stats);
        } catch (...) {
            // The writer may still reference buf/gate; quiesce the
            // in-flight spills before the locals unwind.
            for (io::TaskGate &g : gate) {
                try {
                    g.wait();
                } catch (...) { // NOLINT(bugprone-empty-catch)
                }
            }
            throw;
        }
        stats.writeStallSeconds += gate[0].wait() + gate[1].wait();
        stats.phase1Chunks = runs.size();
        store.setRuns(std::move(runs));
        stats.phase1Seconds = secondsSince(t1);
    }

    /** The phase-1 loop body: every path out of here must leave the
     *  spill gates quiescable by the caller. */
    void
    fillSortSpill(io::RecordSource<RecordT> &source,
                  io::RunStore<RecordT> &store, ThreadPool &pool,
                  BackgroundWorker &writer,
                  BehavioralSorter<RecordT> &sorter,
                  std::array<std::vector<RecordT>, 2> &buf,
                  std::array<io::TaskGate, 2> &gate,
                  std::vector<RunSpan> &runs, std::uint64_t total,
                  std::uint64_t chunk, StreamStats &stats) const
    {
        std::uint64_t offset = 0;
        unsigned slot = 0;
        while (offset < total) {
            const std::uint64_t len =
                std::min<std::uint64_t>(chunk, total - offset);
            std::vector<RecordT> &cur = buf[slot];
            // This buffer's previous spill must have landed.
            stats.writeStallSeconds += gate[slot].wait();
            std::uint64_t got = 0;
            while (got < len) {
                const std::uint64_t r = source.read(
                    cur.data() + got,
                    std::min<std::uint64_t>(opt_.batchRecords,
                                            len - got));
                if (r == 0)
                    contracts::fail(
                        "precondition", "source.read() != 0", __FILE__,
                        __LINE__,
                        "record source ended at record " +
                            std::to_string(offset + got) +
                            " but declared " + std::to_string(total));
                io::requireNoTerminals(cur.data() + got, r,
                                       offset + got);
                got += r;
            }
            const BehavioralStats s = sorter.sort(
                std::span<RecordT>(cur.data(), len), pool);
            stats.phase1RecordsMoved += s.recordsMoved;
            stats.recordsMoved += s.recordsMoved;
            io::TaskGate *g = &gate[slot];
            const std::uint64_t off = offset;
            g->arm();
            writer.post([&store, &cur, g, off, len] {
                try {
                    store.writeAt(off, cur.data(), len);
                } catch (...) {
                    g->fail(std::current_exception());
                    return;
                }
                g->open();
            });
            runs.push_back(RunSpan{offset, len});
            offset += len;
            slot ^= 1;
        }
    }

    /** Merge passes between the stores; the pass that collapses to a
     *  single run streams into the sink instead. */
    void
    runPhase2(io::RunStore<RecordT> &front, io::RunStore<RecordT> &back,
              io::RecordSink<RecordT> &sink,
              io::BufferPool<RecordT> &bufs, BackgroundWorker &reader,
              BackgroundWorker &writer, StreamStats &stats) const
    {
        const auto t2 = std::chrono::steady_clock::now();
        const unsigned ell = stats.effectiveEll;
        io::RunStore<RecordT> *src = &front;
        io::RunStore<RecordT> *dst = &back;
        for (;;) {
            const StagePlan plan(src->runs(), ell);
            const bool last = plan.groups() == 1;
            const std::vector<RunSpan> out = plan.outputRuns();
            for (std::uint64_t g = 0; g < plan.groups(); ++g) {
                const std::vector<RunSpan> members = plan.groupRuns(g);
                if (members.empty())
                    continue;
                if (last) {
                    mergeGroup(*src, members, sink, bufs, reader,
                               writer, stats);
                } else {
                    io::RunStoreSink<RecordT> gsink(*dst,
                                                    out[g].offset);
                    mergeGroup(*src, members, gsink, bufs, reader,
                               writer, stats);
                }
            }
            ++stats.mergePasses;
            if (last)
                break;
            dst->setRuns(out);
            src->setRuns({});
            std::swap(src, dst);
        }
        sink.finish();
        stats.phase2Seconds = secondsSince(t2);
    }

    /** Stream-merge one group of runs from @p src into @p out. */
    void
    mergeGroup(const io::RunStore<RecordT> &src,
               const std::vector<RunSpan> &members,
               io::RecordSink<RecordT> &out,
               io::BufferPool<RecordT> &bufs, BackgroundWorker &reader,
               BackgroundWorker &writer, StreamStats &stats) const
    {
        std::vector<std::unique_ptr<RunCursor<RecordT>>> cursors;
        cursors.reserve(members.size());
        for (const RunSpan &m : members)
            cursors.push_back(std::make_unique<RunCursor<RecordT>>(
                src, m, bufs, reader));
        StreamWriter<RecordT> drain(out, bufs, writer);
        CursorMerge<RecordT> merge(cursors);
        std::uint64_t moved = 0;
        while (!merge.done()) {
            drain.push(merge.pop());
            ++moved;
        }
        drain.finish();
        stats.recordsMoved += moved;
        for (const auto &c : cursors)
            stats.readStallSeconds += c->stallSeconds();
        stats.writeStallSeconds += drain.stallSeconds();
    }

    /** One store-to-store merge pass; memory-backed store pairs run
     *  the zero-copy Merge Path kernel instead of streaming. */
    void
    mergePass(io::RunStore<RecordT> &src, io::RunStore<RecordT> &dst,
              unsigned ell, const BehavioralSorter<RecordT> &merger,
              ThreadPool &pool, StreamStats &stats) const
    {
        const StagePlan plan(src.runs(), ell);
        const std::span<RecordT> s = src.memorySpan();
        const std::span<RecordT> d = dst.memorySpan();
        BONSAI_REQUIRE(!s.empty() && !d.empty(),
                       "mergePass needs memory-backed stores; "
                       "storage-backed passes go through runPhase2");
        merger.runStage(plan, {s.data(), s.size()}, d, pool);
        stats.recordsMoved += plan.totalRecords();
        dst.setRuns(plan.outputRuns());
        src.setRuns({});
    }

    Options opt_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_EXTERNAL_HPP
