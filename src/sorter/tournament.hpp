/**
 * @file
 * The tournament (loser) tree merge kernel — the one place the
 * augmented (key, input index, position) selection order is
 * implemented (Knuth TAOCP Vol. 3, 5.4.1).
 *
 * Structure: leaves are input cursors, internal nodes store the loser
 * of their subtree's tournament, the overall winner is kept outside
 * the tree.  Each pop replays only the winner's root path:
 * O(log ell) comparisons.
 *
 * Equal keys are broken by input index, so the tree emits the unique
 * sequence ordered by (key, input index, position) — the same
 * augmented total order the Merge Path partitioner cuts on.  Both the
 * in-memory `LoserTree` (span cursors) and the out-of-core streamed
 * merge (prefetching `RunCursor`s) instantiate this kernel, which is
 * why a streamed merge is byte-identical to the in-memory merge of
 * the same runs.
 *
 * The cursor-set parameter provides the merge's view of its inputs:
 *
 *   std::size_t size() const;            // number of input cursors
 *   bool exhausted(std::size_t i) const; // cursor i has no head
 *   const RecordT &head(std::size_t i) const;
 *   void advance(std::size_t i);         // consume cursor i's head
 *
 * head()/advance() are only called on non-exhausted cursors, and
 * head() must stay valid until the next advance() on the same cursor.
 */

#ifndef BONSAI_SORTER_TOURNAMENT_HPP
#define BONSAI_SORTER_TOURNAMENT_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "common/contract.hpp"

namespace bonsai::sorter
{

template <typename RecordT, typename CursorSetT>
class TournamentTree
{
  public:
    /** Build the initial tournament over @p cursors (held by
     *  reference for the tree's lifetime). */
    explicit TournamentTree(CursorSetT &cursors) : cursors_(&cursors)
    {
        ways_ = 1;
        while (ways_ < cursors_->size())
            ways_ *= 2;
        tree_.assign(ways_, kEmpty);
        winner_ = buildTournament(1);
    }

    /** True when all cursors are exhausted. */
    bool done() const { return winner_ == kEmpty; }

    /** Pop the globally smallest record in the augmented order. */
    RecordT
    pop()
    {
        BONSAI_REQUIRE(!done(), "pop from an exhausted tournament");
        const std::size_t src = winner_;
        const RecordT out = cursors_->head(src);
        cursors_->advance(src);
        std::size_t candidate =
            cursors_->exhausted(src) ? kEmpty : src;
        // Replay the winner's root path against the stored losers.
        for (std::size_t node = (src + ways_) / 2; node >= 1;
             node /= 2) {
            if (beats(tree_[node], candidate))
                std::swap(tree_[node], candidate);
        }
        winner_ = candidate;
        return out;
    }

  private:
    static constexpr std::size_t kEmpty =
        static_cast<std::size_t>(-1);

    /** Does cursor @p a beat cursor @p b?  Smaller head wins; equal
     *  keys go to the lower input index (augmented order). */
    bool
    beats(std::size_t a, std::size_t b) const
    {
        if (a == kEmpty)
            return false;
        if (b == kEmpty)
            return true;
        if (cursors_->head(a) < cursors_->head(b))
            return true;
        if (cursors_->head(b) < cursors_->head(a))
            return false;
        return a < b;
    }

    /** Cursor at leaf slot @p slot, or kEmpty. */
    std::size_t
    slotSource(std::size_t slot) const
    {
        if (slot < cursors_->size() && !cursors_->exhausted(slot))
            return slot;
        return kEmpty;
    }

    /** Bottom-up initial tournament; returns the subtree winner and
     *  records losers on the way up. */
    std::size_t
    buildTournament(std::size_t node)
    {
        if (node >= ways_)
            return slotSource(node - ways_);
        const std::size_t left = buildTournament(2 * node);
        const std::size_t right = buildTournament(2 * node + 1);
        if (beats(left, right)) {
            tree_[node] = right;
            return left;
        }
        tree_[node] = left;
        return right;
    }

    CursorSetT *cursors_;
    std::vector<std::size_t> tree_; ///< losers, heap-indexed
    std::size_t ways_ = 1;
    std::size_t winner_ = kEmpty;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_TOURNAMENT_HPP
