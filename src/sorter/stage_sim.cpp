#include "sorter/stage_sim.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace bonsai::sorter
{

StageSimulator::StageSimulator(const Options &opts) : opts_(opts)
{
    BONSAI_REQUIRE(opts.config.lambdaPipe == 1,
                   "pipeline throughput uses model::pipelineEstimate");
    if (opts_.flushCyclesPerGroup > 0.0) {
        flushCycles_ = opts_.flushCyclesPerGroup;
    } else {
        // The terminal-record scheme keeps groups fully pipelined:
        // the terminal token costs one output slot at the root plus a
        // small reset bubble (Section V-B's "single-cycle delay").
        // Calibrated against the cycle-accurate simulator, which
        // measures 1.0-1.2 cycles per group across p in 4..32 and
        // ell in 4..256.
        flushCycles_ = 1.1;
    }
}

double
StageSimulator::stageSeconds(std::uint64_t records,
                             std::uint64_t groups,
                             unsigned active_trees) const
{
    const double record_bytes =
        static_cast<double>(opts_.array.recordBytes);
    const double tree_rate = static_cast<double>(opts_.config.p) *
        opts_.frequencyHz; // records/s per tree
    const double bw_share_rate = opts_.betaDram /
        (record_bytes * opts_.config.lambdaUnrl);
    const double per_tree_rate = std::min(tree_rate, bw_share_rate);
    // All active trees stream concurrently; the stage ends when the
    // largest per-tree share is done.
    const double per_tree_records =
        static_cast<double>(records) /
        std::max(1u, active_trees);
    const double stream = per_tree_records / per_tree_rate;
    const double per_tree_groups = static_cast<double>(groups) /
        std::max(1u, active_trees);
    // Per-group flush plus a fixed per-stage startup (pipeline fill
    // and first memory batches), also calibrated to the cycle sim.
    const double flush =
        (per_tree_groups * flushCycles_ + kStageStartupCycles) /
        opts_.frequencyHz;
    return stream + flush;
}

StageSimResult
StageSimulator::run() const
{
    StageSimResult result;
    const std::uint64_t n = opts_.array.n;
    if (n <= 1)
        return result;
    const unsigned trees = opts_.config.lambdaUnrl;
    const unsigned ell = opts_.config.ell;

    // Phase A: each tree sorts its contiguous region.
    const std::uint64_t per_tree = (n + trees - 1) / trees;
    std::uint64_t runs_per_tree =
        (per_tree + opts_.presortRun - 1) /
        std::max<std::uint64_t>(opts_.presortRun, 1);
    if (runs_per_tree == 0)
        runs_per_tree = 1;
    const double skew =
        opts_.rangePartitioned && trees > 1 ? opts_.rangeSkew : 1.0;
    bool presort_pending = opts_.presortRun > 1;
    while (runs_per_tree > 1 || presort_pending) {
        const std::uint64_t groups_per_tree =
            (runs_per_tree + ell - 1) / ell;
        const double secs = skew *
            stageSeconds(n, groups_per_tree * trees, trees);
        result.stageSeconds.push_back(secs);
        result.totalSeconds += secs;
        result.bytesMoved += 2 * opts_.array.totalBytes();
        ++result.stages;
        runs_per_tree = groups_per_tree;
        presort_pending = false;
    }

    // Phase B: combine the lambda_unrl sorted regions, halving the
    // active tree count (Section IV-B).  Range-partitioned unrolling
    // needs no combining: the concatenation is already sorted.
    std::uint64_t runs = opts_.rangePartitioned ? 1 : trees;
    while (runs > 1) {
        const std::uint64_t groups = (runs + ell - 1) / ell;
        const unsigned active =
            static_cast<unsigned>(std::min<std::uint64_t>(groups, trees));
        const double secs = stageSeconds(n, groups, active);
        result.stageSeconds.push_back(secs);
        result.totalSeconds += secs;
        result.bytesMoved += 2 * opts_.array.totalBytes();
        ++result.stages;
        runs = groups;
    }

    result.throughputBytesPerSec = result.totalSeconds > 0.0
        ? static_cast<double>(opts_.array.totalBytes()) /
            result.totalSeconds
        : 0.0;
    return result;
}

} // namespace bonsai::sorter
