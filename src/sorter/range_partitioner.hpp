/**
 * @file
 * Sampling-based range partitioner for unrolled configurations
 * (Section III-A2): "we first partition the data into lambda_unrl
 * equal-sized disjoint subsets of non-overlapping ranges and then have
 * each AMT work on one subset independently ... The comparison of
 * non-overlapping and address-based partitioning is left for future
 * work."  This implements that future-work comparison's missing half.
 *
 * The partitioner samples keys, picks lambda-1 splitters, and scatters
 * records into per-range regions.  In hardware this pass is fused with
 * the first merge stage ("can be pipelined with the first merge stage
 * and thus has no impact on sorting time"), so the timing models charge
 * it nothing; the *skew* it produces is what matters — the slowest
 * tree's share bounds the stage time, which StageSimulator::Options::
 * rangeSkew feeds into the stage-level timing.
 */

#ifndef BONSAI_SORTER_RANGE_PARTITIONER_HPP
#define BONSAI_SORTER_RANGE_PARTITIONER_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.hpp"

namespace bonsai::sorter
{

/** Outcome of a range partitioning pass. */
template <typename RecordT>
struct RangePartition
{
    /** Records regrouped so range i occupies
     *  [offsets[i], offsets[i+1]). */
    std::vector<RecordT> data;
    std::vector<std::uint64_t> offsets; ///< size ranges + 1
    double skew = 1.0; ///< largest range / ideal range size

    std::uint64_t
    rangeSize(std::size_t i) const
    {
        return offsets[i + 1] - offsets[i];
    }
};

template <typename RecordT>
class RangePartitioner
{
  public:
    /**
     * @param ranges Number of non-overlapping key ranges (lambda).
     * @param oversample Sample size per range for splitter selection.
     */
    explicit RangePartitioner(unsigned ranges, unsigned oversample = 128)
        : ranges_(ranges), oversample_(oversample)
    {
    }

    /** Partition @p input into key ranges (stable within a range). */
    RangePartition<RecordT>
    partition(const std::vector<RecordT> &input,
              std::uint64_t seed = 0xB05A1ULL) const
    {
        RangePartition<RecordT> out;
        if (ranges_ <= 1 || input.size() <= ranges_) {
            out.data = input;
            out.offsets = {0, input.size()};
            out.skew = 1.0;
            return out;
        }

        // Sample and sort candidate splitters.
        SplitMix64 rng(seed);
        const std::size_t samples =
            std::min<std::size_t>(input.size(),
                                  std::size_t{ranges_} * oversample_);
        std::vector<RecordT> sample(samples);
        for (std::size_t i = 0; i < samples; ++i)
            sample[i] = input[rng.nextBounded(input.size())];
        std::sort(sample.begin(), sample.end());
        std::vector<RecordT> splitters;
        for (unsigned r = 1; r < ranges_; ++r)
            splitters.push_back(sample[r * samples / ranges_]);

        // Classify, then scatter with a counting pass.
        const auto range_of = [&](const RecordT &rec) {
            return static_cast<std::size_t>(
                std::upper_bound(splitters.begin(), splitters.end(),
                                 rec) -
                splitters.begin());
        };
        std::vector<std::uint64_t> counts(ranges_, 0);
        for (const RecordT &rec : input)
            ++counts[range_of(rec)];
        out.offsets.assign(ranges_ + 1, 0);
        for (unsigned r = 0; r < ranges_; ++r)
            out.offsets[r + 1] = out.offsets[r] + counts[r];
        out.data.resize(input.size());
        std::vector<std::uint64_t> cursor(out.offsets.begin(),
                                          out.offsets.end() - 1);
        for (const RecordT &rec : input)
            out.data[cursor[range_of(rec)]++] = rec;

        const double ideal = static_cast<double>(input.size()) /
            static_cast<double>(ranges_);
        std::uint64_t largest = 0;
        for (unsigned r = 0; r < ranges_; ++r)
            largest = std::max(largest, counts[r]);
        out.skew = static_cast<double>(largest) / ideal;
        return out;
    }

  private:
    unsigned ranges_;
    unsigned oversample_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_RANGE_PARTITIONER_HPP
