/**
 * @file
 * User-facing sorter facades — the library's top-level API.
 *
 * Each facade couples the Bonsai optimizer (configuration selection)
 * with (a) a behavioral execution that actually sorts the caller's
 * data following the selected AMT's stage plan, and (b) the modeled
 * FPGA wall-clock time from the stage-level simulator, so callers get
 * both a sorted buffer and the paper-comparable performance numbers.
 *
 *  - DramSorter: single-node DRAM-scale sorting (Section IV-A);
 *  - HbmSorter: unrolled configuration on HBM banks (Section IV-B);
 *  - SsdSorter: two-phase terabyte-scale sorting (Section IV-C).
 *
 * Note: like the hardware (whose compare-and-exchange units compare
 * keys only), these sorters are NOT stable — records with equal keys
 * may emerge in any relative order.
 */

#ifndef BONSAI_SORTER_SORTERS_HPP
#define BONSAI_SORTER_SORTERS_HPP

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "core/ssd_planner.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/loser_tree.hpp"
#include "sorter/stage_sim.hpp"

namespace bonsai::sorter
{

/** Outcome of a facade sort. */
struct SortReport
{
    amt::AmtConfig config;       ///< Bonsai-selected configuration
    double modeledSeconds = 0.0; ///< stage-level simulated FPGA time
    double predictedSeconds = 0.0; ///< closed-form Equation 1/2 time
    double hostSeconds = 0.0;    ///< behavioral execution wall time
    /** Host <-> DRAM transfer time over the I/O bus (Figure 2 steps
     *  1 and 4: load over PCIe, sorted result back).  Not part of
     *  the paper's sorting-time metric, reported separately. */
    double ioSeconds = 0.0;
    unsigned stages = 0;

    double
    modeledMsPerGb(std::uint64_t bytes) const
    {
        return toMs(modeledSeconds) / toGb(bytes);
    }

    /** End-to-end time including the host transfers. */
    double
    endToEndSeconds() const
    {
        return modeledSeconds + ioSeconds;
    }
};

/** DRAM-scale latency-optimized sorter (the paper's AWS F1 design). */
class DramSorter
{
  public:
    explicit DramSorter(model::HardwareParams hw = core::awsF1(),
                        model::MergerArchParams arch = {},
                        core::SearchSpace space = {})
        : hw_(hw), arch_(arch), space_(space)
    {
    }

    /** Worker threads for the behavioral execution (1 = serial; the
     *  sorted output is byte-identical for any thread count). */
    void setThreads(unsigned threads)
    {
        threads_ = threads == 0 ? 1 : threads;
    }
    unsigned threads() const { return threads_; }

    /** Sort @p data in place; RecordT is any record type from
     *  common/record.hpp.  @p record_bytes is the modeled width r. */
    template <typename RecordT>
    SortReport
    sort(std::vector<RecordT> &data, std::uint64_t record_bytes) const
    {
        model::BonsaiInputs in;
        in.array = {data.size(), record_bytes};
        in.hw = hw_;
        in.arch = arch_;
        if (!space_.withPresorter)
            in.arch.presortRunLength = 1;
        core::Optimizer opt(in, space_);
        const auto best = opt.best(core::Objective::Latency);
        if (!best)
            throw std::runtime_error(
                "Bonsai: no feasible AMT configuration");
        return executePlan(data, in, *best);
    }

    const model::HardwareParams &hardware() const { return hw_; }

  protected:
    template <typename RecordT>
    SortReport
    executePlan(std::vector<RecordT> &data,
                const model::BonsaiInputs &in,
                const core::RankedConfig &choice) const
    {
        SortReport report;
        report.config = choice.config;
        report.predictedSeconds = choice.perf.latencySeconds;

        StageSimulator::Options sim;
        sim.config = choice.config;
        sim.array = in.array;
        sim.frequencyHz = in.arch.frequencyHz;
        sim.betaDram = in.hw.betaDram;
        sim.presortRun = in.arch.presortRunLength;
        const StageSimResult timing = StageSimulator(sim).run();
        report.modeledSeconds = timing.totalSeconds;
        report.stages = timing.stages;
        // Figure 2 steps 1 and 4: one inbound and one outbound pass
        // over the I/O bus (full duplex, so they do not overlap with
        // each other only because step 4 needs the sorted result).
        report.ioSeconds = 2.0 *
            static_cast<double>(in.array.totalBytes()) /
            in.hw.betaIo;

        const auto start = std::chrono::steady_clock::now();
        BehavioralSorter<RecordT> engine(choice.config.ell,
                                         in.arch.presortRunLength,
                                         threads_);
        engine.sort(data);
        report.hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        return report;
    }

    model::HardwareParams hw_;
    model::MergerArchParams arch_;
    core::SearchSpace space_;
    unsigned threads_ = 1;
};

/** HBM sorter: unrolled trees over many banks (Section IV-B).  The
 *  optimizer searches without per-tree presorters — at 16-way
 *  unrolling they would exceed C_LUT (see EXPERIMENTS.md). */
class HbmSorter : public DramSorter
{
  public:
    explicit HbmSorter(model::HardwareParams hw = core::hbmU50(),
                       model::MergerArchParams arch = {})
        : DramSorter(hw, arch, noPresorterSpace())
    {
    }

  private:
    static core::SearchSpace
    noPresorterSpace()
    {
        core::SearchSpace space;
        space.withPresorter = false;
        return space;
    }
};

/** Two-phase SSD sorter for arrays beyond DRAM capacity. */
class SsdSorter
{
  public:
    explicit SsdSorter(model::HardwareParams hw = core::awsF1(),
                       core::SsdParams ssd = {},
                       model::MergerArchParams arch = {})
        : hw_(hw), ssd_(ssd), arch_(arch)
    {
    }

    /** Worker threads for both phases (1 = serial). */
    void setThreads(unsigned threads)
    {
        threads_ = threads == 0 ? 1 : threads;
    }

    /** Report of a two-phase sort (Table V shape). */
    struct SsdReport
    {
        core::SsdPlan plan;
        double hostSeconds = 0.0;
    };

    template <typename RecordT>
    SsdReport
    sort(std::vector<RecordT> &data, std::uint64_t record_bytes) const
    {
        model::ArrayParams array{data.size(), record_bytes};
        const auto plan =
            core::planSsdSort(array, hw_, arch_, ssd_);
        if (!plan)
            throw std::runtime_error(
                "Bonsai: no feasible SSD two-phase plan");
        SsdReport report;
        report.plan = *plan;

        const auto start = std::chrono::steady_clock::now();
        // One pool persists across both phases: phase 1 sorts many
        // chunks back to back, and spawning/joining workers per chunk
        // is exactly the churn the persistent pool exists to avoid.
        ThreadPool pool(threads_);
        // Phase 1: sort DRAM-scale chunks independently.
        const std::uint64_t chunk = plan->chunkRecords == 0
            ? data.size() : plan->chunkRecords;
        BehavioralSorter<RecordT> phase1(plan->phase1.config.ell,
                                         arch_.presortRunLength,
                                         threads_);
        std::vector<RunSpan> runs;
        for (std::uint64_t lo = 0; lo < data.size(); lo += chunk) {
            const std::uint64_t len =
                std::min<std::uint64_t>(chunk, data.size() - lo);
            std::vector<RecordT> piece(data.begin() + lo,
                                       data.begin() + lo + len);
            phase1.sort(piece, pool);
            std::copy(piece.begin(), piece.end(), data.begin() + lo);
            runs.push_back(RunSpan{lo, len});
        }
        // Phase 2: ell-way merge of the sorted chunks (each stage is
        // one SSD round trip), on the behavioral sorter's shared
        // stage executor so wide merges are Merge Path sliced too.
        const BehavioralSorter<RecordT> phase2(
            plan->phase2.config.ell, 1, threads_);
        std::vector<RecordT> scratch(data.size());
        std::vector<RecordT> *src = &data;
        std::vector<RecordT> *dst = &scratch;
        while (runs.size() > 1) {
            StagePlan stage(std::move(runs), plan->phase2.config.ell);
            phase2.runStage(stage, *src, *dst, pool);
            runs = stage.outputRuns();
            std::swap(src, dst);
        }
        if (src != &data)
            data = std::move(*src);
        report.hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        return report;
    }

  private:
    model::HardwareParams hw_;
    core::SsdParams ssd_;
    model::MergerArchParams arch_;
    unsigned threads_ = 1;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_SORTERS_HPP
