/**
 * @file
 * User-facing sorter facades — the library's top-level API.
 *
 * Each facade couples the Bonsai optimizer (configuration selection)
 * with (a) a behavioral execution that actually sorts the caller's
 * data following the selected AMT's stage plan, and (b) the modeled
 * FPGA wall-clock time from the stage-level simulator, so callers get
 * both a sorted buffer and the paper-comparable performance numbers.
 *
 *  - DramSorter: single-node DRAM-scale sorting (Section IV-A);
 *  - HbmSorter: unrolled configuration on HBM banks (Section IV-B);
 *  - SsdSorter: two-phase terabyte-scale sorting (Section IV-C).
 *    sort(std::vector&) is a thin adapter over the out-of-core
 *    StreamEngine; sortStream() runs the same engine against
 *    RecordSource/RecordSink with bounded resident memory.
 *
 * All facades reject the reserved all-zero terminal record at the
 * boundary (Section V-B) and return a zeroed report for empty and
 * single-record inputs instead of invoking the optimizer.
 *
 * Note: like the hardware (whose compare-and-exchange units compare
 * keys only), these sorters are NOT stable — records with equal keys
 * may emerge in any relative order.
 */

#ifndef BONSAI_SORTER_SORTERS_HPP
#define BONSAI_SORTER_SORTERS_HPP

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "core/ssd_planner.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/external.hpp"
#include "sorter/loser_tree.hpp"
#include "sorter/stage_sim.hpp"

namespace bonsai::sorter
{

/** Outcome of a facade sort. */
struct SortReport
{
    amt::AmtConfig config;       ///< Bonsai-selected configuration
    double modeledSeconds = 0.0; ///< stage-level simulated FPGA time
    double predictedSeconds = 0.0; ///< closed-form Equation 1/2 time
    double hostSeconds = 0.0;    ///< behavioral execution wall time
    /** Host <-> DRAM transfer time over the I/O bus (Figure 2 steps
     *  1 and 4: load over PCIe, sorted result back).  Not part of
     *  the paper's sorting-time metric, reported separately. */
    double ioSeconds = 0.0;
    unsigned stages = 0;
    /** Data-movement telemetry, unified with SsdReport::stream. */
    StreamStats stream;

    double
    modeledMsPerGb(std::uint64_t bytes) const
    {
        return toMs(modeledSeconds) / toGb(bytes);
    }

    /** End-to-end time including the host transfers. */
    double
    endToEndSeconds() const
    {
        return modeledSeconds + ioSeconds;
    }
};

/** DRAM-scale latency-optimized sorter (the paper's AWS F1 design). */
class DramSorter
{
  public:
    explicit DramSorter(model::HardwareParams hw = core::awsF1(),
                        model::MergerArchParams arch = {},
                        core::SearchSpace space = {})
        : hw_(hw), arch_(arch), space_(space)
    {
    }

    /** Worker threads for the behavioral execution (1 = serial; the
     *  sorted output is byte-identical for any thread count). */
    void setThreads(unsigned threads)
    {
        threads_ = threads == 0 ? 1 : threads;
    }
    unsigned threads() const { return threads_; }

    /** Sort @p data in place; RecordT is any record type from
     *  common/record.hpp.  @p record_bytes is the modeled width r.
     *  Degenerate inputs (0 or 1 records) are already sorted: they
     *  return a zeroed report without invoking the optimizer. */
    template <typename RecordT>
    SortReport
    sort(std::vector<RecordT> &data, std::uint64_t record_bytes) const
    {
        if (data.size() <= 1) {
            SortReport report;
            report.stream.recordsIn = data.size();
            return report;
        }
        io::requireNoTerminals(data.data(), data.size());
        model::BonsaiInputs in;
        in.array = {data.size(), record_bytes};
        in.hw = hw_;
        in.arch = arch_;
        if (!space_.withPresorter)
            in.arch.presortRunLength = 1;
        core::Optimizer opt(in, space_);
        const auto best = opt.best(core::Objective::Latency);
        if (!best)
            throw std::runtime_error(
                "Bonsai: no feasible AMT configuration");
        return executePlan(data, in, *best);
    }

    const model::HardwareParams &hardware() const { return hw_; }

  protected:
    template <typename RecordT>
    SortReport
    executePlan(std::vector<RecordT> &data,
                const model::BonsaiInputs &in,
                const core::RankedConfig &choice) const
    {
        SortReport report;
        report.config = choice.config;
        report.predictedSeconds = choice.perf.latencySeconds;

        StageSimulator::Options sim;
        sim.config = choice.config;
        sim.array = in.array;
        sim.frequencyHz = in.arch.frequencyHz;
        sim.betaDram = in.hw.betaDram;
        sim.presortRun = in.arch.presortRunLength;
        const StageSimResult timing = StageSimulator(sim).run();
        report.modeledSeconds = timing.totalSeconds;
        report.stages = timing.stages;
        // Figure 2 steps 1 and 4: one inbound and one outbound pass
        // over the I/O bus (full duplex, so they do not overlap with
        // each other only because step 4 needs the sorted result).
        report.ioSeconds = 2.0 *
            static_cast<double>(in.array.totalBytes()) /
            in.hw.betaIo;

        const auto start = std::chrono::steady_clock::now();
        BehavioralSorter<RecordT> engine(choice.config.ell,
                                         in.arch.presortRunLength,
                                         threads_);
        const BehavioralStats moves = engine.sort(data);
        report.hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        report.stream.recordsIn = data.size();
        report.stream.recordsMoved = moves.recordsMoved;
        report.stream.phase1RecordsMoved = moves.recordsMoved;
        report.stream.phase1Chunks = 1;
        report.stream.phase1Seconds = report.hostSeconds;
        report.stream.effectiveEll = choice.config.ell;
        return report;
    }

    model::HardwareParams hw_;
    model::MergerArchParams arch_;
    core::SearchSpace space_;
    unsigned threads_ = 1;
};

/** HBM sorter: unrolled trees over many banks (Section IV-B).  The
 *  optimizer searches without per-tree presorters — at 16-way
 *  unrolling they would exceed C_LUT (see EXPERIMENTS.md). */
class HbmSorter : public DramSorter
{
  public:
    explicit HbmSorter(model::HardwareParams hw = core::hbmU50(),
                       model::MergerArchParams arch = {})
        : DramSorter(hw, arch, noPresorterSpace())
    {
    }

  private:
    static core::SearchSpace
    noPresorterSpace()
    {
        core::SearchSpace space;
        space.withPresorter = false;
        return space;
    }
};

/** Two-phase SSD sorter for arrays beyond DRAM capacity. */
class SsdSorter
{
  public:
    explicit SsdSorter(model::HardwareParams hw = core::awsF1(),
                       core::SsdParams ssd = {},
                       model::MergerArchParams arch = {})
        : hw_(hw), ssd_(ssd), arch_(arch)
    {
    }

    /** Worker threads for both phases (1 = serial). */
    void setThreads(unsigned threads)
    {
        threads_ = threads == 0 ? 1 : threads;
    }

    /** Report of a two-phase sort (Table V shape). */
    struct SsdReport
    {
        core::SsdPlan plan;
        double hostSeconds = 0.0;
        /** Streaming telemetry: spill traffic, records moved per
         *  phase, prefetch/write-back stalls. */
        StreamStats stream;
    };

    /** Tuning knobs for the out-of-core sortStream() path. */
    struct StreamOptions
    {
        /** Total resident-memory budget: two streaming chunk buffers
         *  plus sort scratch in phase 1, the batch buffer pool in
         *  phase 2.  0 = 256 MiB. */
        std::uint64_t memoryBudgetBytes = 0;
        /** Streaming batch size b, in records.  0 derives it from
         *  the planner's Equation 10 batch (phase2.batchBytes). */
        std::uint64_t batchRecords = 0;
        /** Spill directory for run files ("" = $TMPDIR or /tmp). */
        std::string spillDir;
        /** Job directory for crash-consistent checkpointing ("" =
         *  off).  When set, spills are named files under this
         *  directory next to a durable job manifest, and a rerun of
         *  the same request resumes from the last committed chunk or
         *  merge pass. */
        std::string checkpointDir;
        /** With checkpointDir: require a valid checkpoint and fail
         *  with the validation reason when there is none (the
         *  --resume contract).  false = resume when valid, loud
         *  fresh fallback otherwise. */
        bool resume = false;
    };

    /**
     * In-memory adapter over the out-of-core engine: phase 1 sorts
     * chunk ranges of @p data in place (no per-chunk copy), phase 2
     * merges between @p data and one scratch buffer with the Merge
     * Path parallel kernel.
     */
    template <typename RecordT>
    SsdReport
    sort(std::vector<RecordT> &data, std::uint64_t record_bytes) const
    {
        SsdReport report;
        report.stream.recordsIn = data.size();
        if (data.size() <= 1)
            return report;
        io::requireNoTerminals(data.data(), data.size());
        model::ArrayParams array{data.size(), record_bytes};
        const auto plan =
            core::planSsdSort(array, hw_, arch_, ssd_);
        if (!plan)
            throw std::runtime_error(
                "Bonsai: no feasible SSD two-phase plan");
        report.plan = *plan;

        typename StreamEngine<RecordT>::Options eng;
        eng.phase1Ell = plan->phase1.config.ell;
        eng.phase2Ell = plan->phase2.config.ell;
        eng.presortRun = arch_.presortRunLength;
        eng.chunkRecords = plan->chunkRecords;
        eng.threads = threads_;

        const auto start = std::chrono::steady_clock::now();
        report.stream = StreamEngine<RecordT>(eng).sortInPlace(data);
        report.hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        return report;
    }

    /**
     * True out-of-core sort: stream @p source through spill files into
     * @p sink with resident memory bounded by the options' budget,
     * independent of the dataset size.  The emitted record sequence is
     * identical to the in-memory path's for the same input whenever
     * keys are distinct (both follow the same augmented merge order).
     */
    template <typename RecordT>
    SsdReport
    sortStream(io::RecordSource<RecordT> &source,
               io::RecordSink<RecordT> &sink,
               std::uint64_t record_bytes,
               const StreamOptions &opts = {}) const
    {
        const std::uint64_t n = source.totalRecords();
        SsdReport report;
        report.stream.recordsIn = n;
        if (n <= 1) {
            RecordT rec;
            if (n == 1 && source.read(&rec, 1) == 1) {
                io::requireNoTerminals(&rec, 1);
                sink.write(&rec, 1);
            }
            sink.finish();
            return report;
        }

        const std::uint64_t budget = opts.memoryBudgetBytes != 0
            ? opts.memoryBudgetBytes : (256ULL << 20);
        // Phase 1 keeps ~3 chunk buffers resident (two streaming
        // chunks plus the sorter's scratch); phase 2 holds the batch
        // pool.  A quarter of the budget each bounds both phases.
        // The modeled DRAM also bounds the chunk (the planner's own
        // default is cDram/8, Equation 5's pipeline headroom) — a
        // bigger chunk makes phase 1 infeasible for the optimizer.
        const std::uint64_t chunk_records =
            std::min<std::uint64_t>(
                std::max<std::uint64_t>(
                    std::min(budget / 4 / sizeof(RecordT),
                             hw_.cDram / 8 / record_bytes),
                    2),
                n);
        model::ArrayParams array{n, record_bytes};
        const auto plan = core::planSsdSort(
            array, hw_, arch_, ssd_, chunk_records * record_bytes);
        if (!plan)
            throw std::runtime_error(
                "Bonsai: no feasible SSD two-phase plan");
        report.plan = *plan;

        typename StreamEngine<RecordT>::Options eng;
        eng.phase1Ell = plan->phase1.config.ell;
        eng.phase2Ell = plan->phase2.config.ell;
        eng.presortRun = arch_.presortRunLength;
        eng.chunkRecords = chunk_records;
        eng.bufferBudgetBytes = budget / 4;
        eng.batchRecords = opts.batchRecords != 0
            ? opts.batchRecords
            : defaultBatchRecords<RecordT>(*plan, record_bytes,
                                           eng.bufferBudgetBytes,
                                           threads_);
        eng.threads = threads_;

        const auto start = std::chrono::steady_clock::now();
        if (!opts.checkpointDir.empty()) {
            typename StreamEngine<RecordT>::DurableOptions durable;
            durable.dir = opts.checkpointDir;
            durable.policy = opts.resume
                                 ? ResumePolicy::ResumeStrict
                                 : ResumePolicy::ResumeOrFresh;
            report.stream = StreamEngine<RecordT>(eng)
                                .sortStreamDurable(source, sink,
                                                   durable);
        } else {
            io::FileRunStore<RecordT> front(opts.spillDir);
            io::FileRunStore<RecordT> back(opts.spillDir);
            report.stream = StreamEngine<RecordT>(eng).sortStream(
                source, sink, front, back);
        }
        report.hostSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        return report;
    }

  private:
    /** Default streaming batch b: the planner's Equation 10 batch
     *  (phase2.batchBytes, the largest b with lambda*b*ell <= C_BRAM),
     *  capped so the pool can hold one full merge lane per requested
     *  thread — W lanes of fan-in ell need (2 ell + 2) * W buffers
     *  (and never fewer than 8) — so asking for more threads shrinks
     *  b instead of silently serializing phase 2.  Explicit user
     *  batches are taken as-is and fail loudly if the pool cannot
     *  hold one. */
    template <typename RecordT>
    static std::uint64_t
    defaultBatchRecords(const core::SsdPlan &plan,
                        std::uint64_t record_bytes,
                        std::uint64_t pool_budget_bytes,
                        unsigned threads)
    {
        std::uint64_t batch = std::max<std::uint64_t>(
            plan.phase2.batchBytes / record_bytes, 1);
        const std::uint64_t lane_buffers =
            (2ULL * plan.phase2.config.ell + 2) * threads;
        const std::uint64_t want_buffers =
            std::max<std::uint64_t>(8, lane_buffers);
        const std::uint64_t cap = std::max<std::uint64_t>(
            pool_budget_bytes / (want_buffers * sizeof(RecordT)), 1);
        return std::min(batch, cap);
    }

    model::HardwareParams hw_;
    core::SsdParams ssd_;
    model::MergerArchParams arch_;
    unsigned threads_ = 1;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_SORTERS_HPP
