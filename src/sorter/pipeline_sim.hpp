/**
 * @file
 * Cycle-level simulation of a pipelined AMT configuration (paper
 * Figure 4 / Section III-A3): lambda_pipe AMTs chained so each merge
 * stage of the sorting procedure runs on a different tree, with
 * arrays streaming in from the I/O bus, intermediate runs bouncing
 * through DRAM banks, and sorted arrays streaming back out — the I/O
 * bus never idles.
 *
 * Execution is slotted: in pipeline slot t, AMT i works on chunk
 * t - i (stage i of that chunk).  All active trees share one engine:
 * stage-0 reads and last-stage writes are timed by the I/O bus model,
 * interior stages by the DRAM model — exactly the contention structure
 * behind Equation 3's min(p f r, beta_dram / lambda_pipe, beta_io).
 */

#ifndef BONSAI_SORTER_PIPELINE_SIM_HPP
#define BONSAI_SORTER_PIPELINE_SIM_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "amt/config.hpp"
#include "common/contract.hpp"
#include "amt/instance.hpp"
#include "hw/data_loader.hpp"
#include "hw/data_writer.hpp"
#include "mem/timing.hpp"
#include "sim/engine.hpp"
#include "sorter/stage_plan.hpp"

namespace bonsai::sorter
{

/** Result of a pipelined batch sort. */
struct PipelineSimStats
{
    std::uint64_t totalCycles = 0;
    unsigned slots = 0;        ///< pipeline slots executed
    std::uint64_t bytesIn = 0; ///< chunk bytes entering over I/O
    bool completed = false;

    /** Sustained throughput in bytes/s at clock frequency @p f. */
    double
    throughput(double frequency_hz) const
    {
        return totalCycles == 0
            ? 0.0
            : static_cast<double>(bytesIn) * frequency_hz /
                static_cast<double>(totalCycles);
    }
};

template <typename RecordT>
class PipelineSimSorter
{
  public:
    struct Options
    {
        amt::AmtConfig config;     ///< p, ell, lambdaPipe (unroll 1)
        mem::MemTimingConfig dram; ///< shared interior memory
        mem::MemTimingConfig io;   ///< I/O bus (in and out streams)
        std::uint64_t batchBytes = 1024;
        std::uint64_t recordBytes = 4;
        std::uint64_t presortRun = 16;
        std::uint64_t maxCyclesPerSlot = 0; ///< 0 = auto bound
        /** Wire a ProtocolChecker over every tree (see SimSorter). */
        bool checked = false;
        /** Engine strategy (see SimSorter::Options::engine). */
        sim::EngineMode engine = sim::EngineMode::FastForward;
    };

    explicit PipelineSimSorter(const Options &opts) : opts_(opts)
    {
        BONSAI_REQUIRE(opts.config.lambdaUnrl == 1,
                       "pipelined sorts use unroll 1");
        BONSAI_REQUIRE(opts.config.lambdaPipe >= 1,
                       "need at least one pipeline stage");
    }

    /**
     * Sort every chunk of @p chunks in place.  Each chunk must be
     * fully sortable in lambda_pipe stages (Equation 5:
     * presortRun * ell^lambda_pipe >= chunk records).
     */
    PipelineSimStats
    sortChunks(std::vector<std::vector<RecordT>> &chunks) const
    {
        PipelineSimStats stats;
        stats.completed = true;
        if (chunks.empty())
            return stats;
        const unsigned depth = opts_.config.lambdaPipe;

        std::vector<ChunkState> state(chunks.size());
        for (std::size_t c = 0; c < chunks.size(); ++c) {
            state[c].buffers[0] = std::move(chunks[c]);
            state[c].buffers[1].resize(state[c].buffers[0].size());
            state[c].runs =
                chunkRuns(state[c].buffers[0].size(),
                          opts_.presortRun);
            stats.bytesIn +=
                state[c].buffers[0].size() * opts_.recordBytes;
        }

        const unsigned total_slots =
            static_cast<unsigned>(chunks.size()) + depth - 1;
        for (unsigned slot = 0; slot < total_slots; ++slot) {
            if (!runSlot(slot, depth, state, stats))
                break;
            ++stats.slots;
        }
        for (std::size_t c = 0; c < chunks.size(); ++c)
            chunks[c] = std::move(state[c].buffers[state[c].liveIdx]);
        return stats;
    }

  private:
    struct ChunkState
    {
        std::vector<RecordT> buffers[2];
        unsigned liveIdx = 0; ///< which buffer holds current data
        std::vector<RunSpan> runs;
    };

    bool
    runSlot(unsigned slot, unsigned depth,
            std::vector<ChunkState> &state,
            PipelineSimStats &stats) const
    {
        sim::SimEngine engine;
        mem::MemoryTiming dram("dram", opts_.dram);
        mem::MemoryTiming io("io", opts_.io);
        const std::uint64_t batch_records = std::max<std::uint64_t>(
            opts_.batchBytes / opts_.recordBytes, 1);

        std::vector<std::unique_ptr<amt::AmtInstance<RecordT>>> amts;
        std::vector<std::unique_ptr<hw::DataLoader<RecordT>>> loaders;
        std::vector<std::unique_ptr<hw::DataWriter<RecordT>>> writers;
        std::vector<ChunkState *> touched;
        std::uint64_t slot_records = 0;
        // Concurrent stages model disjoint DRAM regions: give every
        // active chunk its own address window so bank striping sees
        // distinct stripes (not every loader aliased onto address 0).
        std::uint64_t addr_cursor = 0;

        for (unsigned stage = 0; stage < depth; ++stage) {
            if (stage > slot)
                break;
            const std::size_t c = slot - stage;
            if (c >= state.size())
                continue;
            ChunkState &cs = state[c];
            // A fully-merged chunk rides its remaining pipeline slots
            // through as a pass-through; skipping it changes no run
            // structure and only forgoes some modeled DRAM traffic.
            if (cs.runs.size() <= 1 && stage > 0)
                continue;

            StagePlan plan(cs.runs, opts_.config.ell, 0);
            slot_records += plan.totalRecords();

            const amt::TreeShape shape = amt::makeTreeShape(
                opts_.config.p, opts_.config.ell);
            auto tree = std::make_unique<amt::AmtInstance<RecordT>>(
                "amt", shape, 2 * (2 * batch_records + 2) + 2,
                opts_.checked);
            tree->expectRunsPerChannel(plan.groups());

            std::vector<typename hw::DataLoader<RecordT>::LeafFeed>
                feeds;
            for (unsigned j = 0; j < opts_.config.ell; ++j) {
                typename hw::DataLoader<RecordT>::LeafFeed feed;
                feed.buffer = tree->leafBuffers()[j];
                feed.runs = plan.leafRuns(j);
                feeds.push_back(std::move(feed));
            }
            const std::uint64_t chunk_bytes =
                cs.buffers[cs.liveIdx].size() * opts_.recordBytes;
            const std::uint64_t read_base = addr_cursor;
            const std::uint64_t write_base = addr_cursor + chunk_bytes;
            addr_cursor += 2 * chunk_bytes;

            // Stage 0 streams in over the I/O bus (Figure 4 step 1);
            // interior stages read DRAM.
            auto loader = std::make_unique<hw::DataLoader<RecordT>>(
                "loader",
                std::span<const RecordT>(cs.buffers[cs.liveIdx]),
                std::move(feeds), stage == 0 ? io : dram,
                batch_records, stage == 0 ? opts_.presortRun : 0,
                read_base, opts_.recordBytes);

            // The final stage streams out over the I/O bus (step 6);
            // interior stages write DRAM.
            const bool last = (stage + 1 == depth);
            auto writer = std::make_unique<hw::DataWriter<RecordT>>(
                "writer", tree->rootOutput(),
                std::span<RecordT>(cs.buffers[1 - cs.liveIdx]),
                last ? io : dram, opts_.config.p, plan.totalRecords(),
                plan.groups(), batch_records, write_base,
                opts_.recordBytes);

            amts.push_back(std::move(tree));
            loaders.push_back(std::move(loader));
            writers.push_back(std::move(writer));

            cs.runs = plan.outputRuns();
            touched.push_back(&cs);
        }

        if (writers.empty())
            return true; // nothing active this slot

        engine.add(&dram);
        engine.add(&io);
        for (auto &writer : writers) {
            engine.add(writer.get());
            engine.addCompletionSource(writer.get());
        }
        for (auto &tree : amts)
            tree->registerWith(engine);
        for (auto &loader : loaders)
            engine.add(loader.get());

        const auto done = [&]() {
            for (auto &writer : writers) {
                if (!writer->finished())
                    return false;
            }
            return true;
        };
        std::uint64_t budget = opts_.maxCyclesPerSlot;
        if (budget == 0)
            budget = 100'000 + slot_records * 64;
        const auto result = engine.run(done, budget, opts_.engine);
        stats.totalCycles += result.cycles;
        for (ChunkState *cs : touched)
            cs->liveIdx = 1 - cs->liveIdx;
        if (!result.finished) {
            stats.completed = false;
            return false;
        }
        for (auto &tree : amts)
            tree->finalizeChecks();
        return true;
    }

    Options opts_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_PIPELINE_SIM_HPP
