/**
 * @file
 * Stage planning shared by the behavioral engine and the cycle
 * simulator, so both produce bit-identical intermediate buffers.
 *
 * A merge stage consumes R sorted runs and produces G = ceil(R / ell)
 * runs.  To keep every leaf's reads sequential (batched DRAM access,
 * Section V-A), runs are assigned to leaves in contiguous blocks of G:
 * leaf j owns runs [j*G, (j+1)*G), and merge group g takes the g-th
 * run of every leaf.  Output run g is written sequentially.
 */

#ifndef BONSAI_SORTER_STAGE_PLAN_HPP
#define BONSAI_SORTER_STAGE_PLAN_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"

namespace bonsai::sorter
{

/** Leaf/group decomposition of one merge stage. */
class StagePlan
{
  public:
    /**
     * @param runs Input runs, in buffer order.
     * @param ell Tree leaf count (maximum merge fan-in).
     * @param out_base Record offset where output runs start.
     */
    StagePlan(std::vector<RunSpan> runs, unsigned ell,
              std::uint64_t out_base = 0)
        : runs_(std::move(runs)), ell_(ell), outBase_(out_base)
    {
        BONSAI_REQUIRE(ell_ >= 1,
                       "a merge stage needs a fan-in of at least 1");
        const std::uint64_t r = runs_.size();
        groups_ = (r + ell_ - 1) / ell_;
        if (groups_ == 0)
            groups_ = 1;
    }

    /** Largest member count of any merge group in this stage — the
     *  fan-in the streaming merge must budget cursor buffers for. */
    std::uint64_t
    maxGroupFanIn() const
    {
        std::uint64_t widest = 0;
        for (std::uint64_t g = 0; g < groups_; ++g)
            widest = std::max<std::uint64_t>(widest,
                                             groupRuns(g).size());
        return widest;
    }

    std::uint64_t groups() const { return groups_; }
    unsigned ell() const { return ell_; }
    const std::vector<RunSpan> &inputRuns() const { return runs_; }

    /**
     * Runs owned by leaf @p j.  With several groups, leaf j owns the
     * contiguous block [j*G, (j+1)*G) so its reads stay sequential.
     * With a single (final, partial) group, runs are instead spread
     * across the leaves at a power-of-two stride: clustering R < ell
     * runs on the leftmost leaves would bottleneck the narrow
     * 1-merger levels in the middle of the tree, spreading keeps
     * every subtree supplied.
     */
    std::vector<RunSpan>
    leafRuns(unsigned j) const
    {
        std::vector<RunSpan> out;
        if (groups_ == 1) {
            const unsigned stride = spreadStride();
            if (j % stride == 0 && j / stride < runs_.size())
                out.push_back(runs_[j / stride]);
            else
                out.push_back(RunSpan{0, 0});
            return out;
        }
        const std::uint64_t begin = static_cast<std::uint64_t>(j) * groups_;
        for (std::uint64_t g = 0; g < groups_; ++g) {
            const std::uint64_t idx = begin + g;
            if (idx < runs_.size())
                out.push_back(runs_[idx]);
            else
                out.push_back(RunSpan{0, 0}); // padded empty run
        }
        return out;
    }

    /** The input runs merged into output run @p g. */
    std::vector<RunSpan>
    groupRuns(std::uint64_t g) const
    {
        std::vector<RunSpan> out;
        if (groups_ == 1) {
            for (const RunSpan &run : runs_) {
                if (run.length > 0)
                    out.push_back(run);
            }
            return out;
        }
        for (unsigned j = 0; j < ell_; ++j) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(j) * groups_ + g;
            if (idx < runs_.size() && runs_[idx].length > 0)
                out.push_back(runs_[idx]);
        }
        return out;
    }

    /** Leaf stride used to spread a single group's runs. */
    unsigned
    spreadStride() const
    {
        // An empty plan has no runs to spread; without this guard the
        // doubling condition (2 * stride * 0 <= ell) never fails.
        if (runs_.empty())
            return 1;
        unsigned stride = 1;
        while (2ULL * stride * runs_.size() <= ell_)
            stride *= 2;
        return stride;
    }

    /** Output runs (offsets assigned sequentially from out_base). */
    std::vector<RunSpan>
    outputRuns() const
    {
        std::vector<RunSpan> out;
        std::uint64_t offset = outBase_;
        for (std::uint64_t g = 0; g < groups_; ++g) {
            std::uint64_t len = 0;
            for (const RunSpan &run : groupRuns(g))
                len += run.length;
            out.push_back(RunSpan{offset, len});
            offset += len;
        }
        return out;
    }

    /** Total records moved by the stage. */
    std::uint64_t
    totalRecords() const
    {
        std::uint64_t total = 0;
        for (const RunSpan &run : runs_)
            total += run.length;
        return total;
    }

  private:
    std::vector<RunSpan> runs_;
    unsigned ell_;
    std::uint64_t outBase_;
    std::uint64_t groups_ = 1;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_STAGE_PLAN_HPP
