/**
 * @file
 * Checkpointer: the crash-consistency coordinator of a durable
 * out-of-core sort.
 *
 * A checkpointed sort runs against two PersistentRunStores under a
 * job directory plus the job manifest (io/manifest.hpp).  The
 * Checkpointer owns all three and enforces the ordering the resume
 * path relies on: run *data* is flushed (RunStore::flush, i.e.
 * fdatasync) before the manifest that records it is committed, so any
 * run a committed manifest lists is durable on the device.
 *
 * Commit points:
 *  - commitChunk(): after each phase-1 chunk spill — the chunk's run
 *    is checksummed by read-back, appended, and the journal committed.
 *  - commitPass(): after each non-final phase-2 merge pass — the
 *    output runs are checksummed, the run list replaced wholesale,
 *    and the journal committed.  The final pass is deliberately NOT
 *    checkpointed: its output goes to the caller's sink, which a
 *    resumed attempt recreates from scratch, so redoing it is always
 *    safe and always byte-identical (StagePlan is deterministic in
 *    the run list and fan-in).
 *
 * Resume validation is paranoid by design: manifest CRC + version +
 * parameter echo (io/manifest.hpp), then every recorded run's extent
 * is bounds-checked against the spill file and its data re-read and
 * checksummed before a single record is trusted.  Any defect either
 * falls back loudly to a fresh start (ResumeOrFresh — the reason is
 * reported through StreamStats::resumeFallback) or fails the sort
 * with the same one-line reason (ResumeStrict, the --resume contract).
 *
 * Concurrency: single-writer by construction — commitChunk() is
 * called only by the phase-1 spiller stage, commitPass() only by the
 * phase-2 coordinator, and the two phases never overlap.  No mutex,
 * same contract as run metadata in io/run_store.hpp.
 */

#ifndef BONSAI_SORTER_CHECKPOINT_HPP
#define BONSAI_SORTER_CHECKPOINT_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/contract.hpp"
#include "common/run.hpp"
#include "io/manifest.hpp"
#include "io/run_store.hpp"

namespace bonsai::sorter
{

/** What to do with a job directory's previous contents. */
enum class ResumePolicy {
    Fresh,         ///< ignore and delete any previous attempt
    ResumeOrFresh, ///< resume when valid, else loud fresh fallback
    ResumeStrict,  ///< resume or fail with the validation reason
};

template <typename RecordT>
class Checkpointer
{
  public:
    struct Config
    {
        std::string dir; ///< job directory (created if missing)
        ResumePolicy policy = ResumePolicy::ResumeOrFresh;
        /** The request echo a manifest must match to be resumable. */
        io::ManifestParams params;
        /** Batch size for run-checksum read-back (records). */
        std::uint64_t verifyBatchRecords = 1 << 14;
        /** Installed on both stores' files and the manifest temp file
         *  (tests; nullptr = off). */
        std::shared_ptr<io::FaultPolicy> faultPolicy;
        io::RetryPolicy retryPolicy;
    };

    /** Opens (or creates) the job: loads and validates any previous
     *  manifest per the policy, leaving either a resumed state (runs
     *  installed on the current store) or a clean fresh one. */
    explicit Checkpointer(Config cfg) : cfg_(std::move(cfg))
    {
        BONSAI_REQUIRE(!cfg_.dir.empty(),
                       "a checkpointed sort needs a job directory");
        BONSAI_REQUIRE(cfg_.params.chunkRecords > 0,
                       "checkpoint params need the chunk length");
        io::createDirectories(cfg_.dir);
        if (cfg_.policy != ResumePolicy::Fresh && tryResume())
            return;
        startFresh();
    }

    /** The two persistent spill stores (0 = front, 1 = back). */
    io::PersistentRunStore<RecordT> &
    store(unsigned i)
    {
        return *stores_[i];
    }
    io::PersistentRunStore<RecordT> &front() { return *stores_[0]; }
    io::PersistentRunStore<RecordT> &back() { return *stores_[1]; }

    /** True when a previous attempt's work was adopted. */
    bool resumed() const { return resumed_; }

    /** Phase-1 chunks adopted from the previous attempt. */
    std::uint64_t resumedChunks() const { return resumedChunks_; }

    /** Non-final merge passes adopted from the previous attempt. */
    std::uint64_t resumedPasses() const { return resumedPasses_; }

    /** Journal commits issued by *this* attempt. */
    std::uint64_t commits() const { return commits_; }

    /** Chunks recorded as spilled (resumed + this attempt). */
    std::uint64_t chunksDone() const { return m_.chunksDone; }

    /** All input consumed and spilled (phase 1 can be skipped). */
    bool phase1Complete() const { return m_.phase1Complete; }

    /** Which store holds the live runs (0 = front, 1 = back). */
    unsigned currentStore() const { return m_.currentStore; }

    /** Why a requested resume fell back ("" = no fallback). */
    const std::string &fallbackReason() const { return fallback_; }

    /**
     * Durability point after one phase-1 chunk spill: flush the front
     * store, checksum the new run by read-back, append it to the
     * journal and commit.  phase1Complete is derived — the chunk
     * count saturating means the whole input is spilled.
     */
    void
    commitChunk(const RunSpan &run)
    {
        front().flush("phase-1 checkpoint flush");
        io::ManifestRun rec;
        rec.offset = run.offset;
        rec.length = run.length;
        rec.crc = runCrc(front(), run, "phase-1 checkpoint checksum");
        m_.runs.push_back(rec);
        ++m_.chunksDone;
        m_.currentStore = 0;
        m_.phase1Complete = m_.chunksDone >= totalChunks();
        commit();
    }

    /**
     * Durability point after one non-final merge pass: the caller has
     * already flushed store @p dst_idx; checksum the pass's output
     * runs, replace the journal's run list, advance the pass count
     * and commit.
     */
    void
    commitPass(unsigned dst_idx, const std::vector<RunSpan> &runs)
    {
        m_.runs.clear();
        m_.runs.reserve(runs.size());
        for (const RunSpan &r : runs) {
            io::ManifestRun rec;
            rec.offset = r.offset;
            rec.length = r.length;
            rec.crc = runCrc(store(dst_idx), r,
                             "phase-2 checkpoint checksum");
            m_.runs.push_back(rec);
        }
        m_.currentStore = static_cast<std::uint8_t>(dst_idx);
        m_.phase1Complete = true;
        ++m_.passesDone;
        commit();
    }

    /** Delete the job's durable artifacts (successful completion). */
    void removeArtifacts() { io::removeJobArtifacts(cfg_.dir); }

  private:
    std::uint64_t
    totalChunks() const
    {
        return (cfg_.params.recordsIn + cfg_.params.chunkRecords - 1) /
               cfg_.params.chunkRecords;
    }

    void
    openStores(bool resume)
    {
        for (unsigned i = 0; i < 2; ++i) {
            const std::string path =
                cfg_.dir + "/" +
                (i == 0 ? io::kFrontStoreFileName
                        : io::kBackStoreFileName);
            stores_[i] =
                std::make_unique<io::PersistentRunStore<RecordT>>(
                    path, resume);
            stores_[i]->setFaultPolicy(cfg_.faultPolicy);
            stores_[i]->setRetryPolicy(cfg_.retryPolicy);
        }
    }

    /** Adopt the previous attempt if its manifest and run data check
     *  out; throws for ResumeStrict, records the fallback reason and
     *  returns false otherwise. */
    bool
    tryResume()
    {
        const io::ManifestLoadResult r = io::loadManifest(cfg_.dir);
        std::string reason;
        if (r.status == io::ManifestStatus::Ok) {
            reason =
                io::describeParamMismatch(cfg_.params,
                                          r.manifest.params);
            if (reason.empty()) {
                openStores(/*resume=*/true);
                reason = verifyRuns(r.manifest);
                if (reason.empty()) {
                    adopt(r.manifest);
                    return true;
                }
                stores_[0].reset();
                stores_[1].reset();
            }
        } else {
            reason = r.error;
        }
        if (cfg_.policy == ResumePolicy::ResumeStrict)
            throw std::runtime_error("bonsai checkpoint: cannot "
                                     "resume: " +
                                     reason);
        // A missing manifest is the normal first run of a job, not a
        // fallback worth reporting.
        if (r.status != io::ManifestStatus::NotFound)
            fallback_ = reason;
        return false;
    }

    /** Bounds-check and re-checksum every recorded run; "" = valid. */
    std::string
    verifyRuns(const io::JobManifest &m)
    {
        io::PersistentRunStore<RecordT> &live =
            store(m.currentStore);
        const std::uint64_t fileRecords =
            live.sizeBytes() / sizeof(RecordT);
        for (std::size_t i = 0; i < m.runs.size(); ++i) {
            const io::ManifestRun &r = m.runs[i];
            if (r.offset + r.length > fileRecords)
                return "spill file too small for recorded run " +
                       std::to_string(i) + " (@" +
                       std::to_string(r.offset) + "+" +
                       std::to_string(r.length) + " records, file "
                       "holds " +
                       std::to_string(fileRecords) + ")";
            const std::uint32_t got =
                runCrc(live, RunSpan{r.offset, r.length},
                       "resume checksum of recorded run");
            if (got != r.crc)
                return "run data checksum mismatch for recorded "
                       "run " +
                       std::to_string(i) + " (@" +
                       std::to_string(r.offset) + "+" +
                       std::to_string(r.length) + " records)";
        }
        return "";
    }

    void
    adopt(const io::JobManifest &m)
    {
        m_ = m;
        resumed_ = true;
        resumedChunks_ = m.chunksDone;
        resumedPasses_ = m.passesDone;
        std::vector<RunSpan> spans;
        spans.reserve(m.runs.size());
        for (const io::ManifestRun &r : m.runs)
            spans.push_back(RunSpan{r.offset, r.length});
        store(m.currentStore).setRuns(std::move(spans));
    }

    void
    startFresh()
    {
        // Stale artifacts — a previous job's manifest, orphan spill
        // files from an aborted newer attempt — must not leak into a
        // fresh job.
        io::removeJobArtifacts(cfg_.dir);
        openStores(/*resume=*/false);
        m_ = io::JobManifest{};
        m_.params = cfg_.params;
    }

    /** CRC a run's raw bytes by batched read-back.  The data was just
     *  flushed (or is being resume-verified), so the read is page-
     *  cache hot in the common case. */
    std::uint32_t
    runCrc(const io::PersistentRunStore<RecordT> &s,
           const RunSpan &run, const char *context) const
    {
        std::vector<RecordT> buf(static_cast<std::size_t>(
            std::min(run.length, cfg_.verifyBatchRecords)));
        std::uint32_t crc = 0xffffffffu;
        std::uint64_t done = 0;
        while (done < run.length) {
            const std::uint64_t n = std::min<std::uint64_t>(
                buf.size(), run.length - done);
            s.readAt(run.offset + done, buf.data(), n, context);
            crc = io::crc32(buf.data(), n * sizeof(RecordT), crc);
            done += n;
        }
        return io::crc32Finish(crc);
    }

    /** The write-temp / fdatasync / rename / dir-fsync commit. */
    void
    commit()
    {
        io::saveManifest(cfg_.dir, m_, cfg_.faultPolicy,
                         cfg_.retryPolicy);
        ++commits_;
    }

    Config cfg_;
    std::unique_ptr<io::PersistentRunStore<RecordT>> stores_[2];
    io::JobManifest m_;
    bool resumed_ = false;
    std::uint64_t resumedChunks_ = 0;
    std::uint64_t resumedPasses_ = 0;
    std::uint64_t commits_ = 0;
    std::string fallback_;
};

} // namespace bonsai::sorter

#endif // BONSAI_SORTER_CHECKPOINT_HPP
