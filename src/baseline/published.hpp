/**
 * @file
 * Published performance numbers of the sorters Bonsai compares against
 * (paper Table I and Figures 5, 11, 12).  These systems are
 * closed-source and/or require other hardware (GPUs, other FPGAs,
 * clusters), so the comparison harness reproduces the paper's tables
 * from the reported values; the live CPU baselines in cpu_sorters.hpp
 * complement them with measured numbers on this machine.
 *
 * All values are sorting time in ms per GB (lower is better), exactly
 * as printed in Table I; distributed sorters are multiplied by node
 * count, dashes are kNoResult.
 */

#ifndef BONSAI_BASELINE_PUBLISHED_HPP
#define BONSAI_BASELINE_PUBLISHED_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "common/units.hpp"

namespace bonsai::baseline
{

/** Input sizes of Table I's columns, in bytes. */
inline constexpr std::array<std::uint64_t, 9> kTable1Sizes = {
    4 * kGB,   8 * kGB,   16 * kGB, 32 * kGB,  64 * kGB,
    128 * kGB, 512 * kGB, 2 * kTB,  100 * kTB,
};

inline constexpr double kNoResult = -1.0;

/** One comparison system's Table I row. */
struct PublishedRow
{
    std::string_view name;
    std::string_view platform;
    std::array<double, 9> msPerGb;
};

/** Table I rows (paper values; dashes encoded as kNoResult). */
inline constexpr std::array<PublishedRow, 6> kTable1Rows = {{
    {"PARADIS [20]", "CPU",
     {436, 436, 395, 388, 363, kNoResult, kNoResult, kNoResult,
      kNoResult}},
    {"CPU distributed [36]", "CPU",
     {kNoResult, kNoResult, kNoResult, kNoResult, kNoResult, 508, 508,
      508, 466}},
    {"HRS [18]", "GPU",
     {208, 208, 208, 224, 260, 267, kNoResult, kNoResult, kNoResult}},
    {"GPU distributed [37]", "GPU",
     {kNoResult, kNoResult, kNoResult, kNoResult, kNoResult, kNoResult,
      2909, 3368, kNoResult}},
    {"SampleSort [19]", "FPGA",
     {215, 217, 220, 643, kNoResult, kNoResult, kNoResult, kNoResult,
      kNoResult}},
    {"TerabyteSort [29]", "FPGA",
     {kNoResult, kNoResult, kNoResult, kNoResult, 3401, 4366, 4347,
      4347, 6210}},
}};

/** Bonsai's own published Table I row, for regression checks. */
inline constexpr std::array<double, 9> kTable1Bonsai = {
    172, 172, 172, 172, 172, 250, 250, 250, 375,
};

/**
 * ms/GB of the single-node comparators at an arbitrary size
 * (step-wise lookup of the nearest Table I column with a result);
 * returns nullopt outside the system's reported range.
 */
std::optional<double> publishedMsPerGb(std::string_view name,
                                       std::uint64_t bytes);

/**
 * Sustained sort throughput (bytes/s) the paper quotes for the
 * bandwidth-efficiency comparison at 16 GB (Figure 12), along with
 * each system's available memory bandwidth (bytes/s).
 */
struct BandwidthEfficiencyEntry
{
    std::string_view name;
    double throughput;    ///< bytes/s
    double memBandwidth;  ///< bytes/s

    double efficiency() const { return throughput / memBandwidth; }
};

/** Figure 12 comparison set (PARADIS, HRS, SampleSort). */
std::array<BandwidthEfficiencyEntry, 3> figure12Comparators();

} // namespace bonsai::baseline

#endif // BONSAI_BASELINE_PUBLISHED_HPP
