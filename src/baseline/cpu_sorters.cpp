#include "baseline/cpu_sorters.hpp"

#include <algorithm>
#include <array>

#include "common/random.hpp"
#include "common/thread_pool.hpp"

namespace bonsai::baseline
{

namespace
{

constexpr unsigned kRadixBits = 8;
constexpr std::size_t kRadixBuckets = 1u << kRadixBits;
constexpr std::size_t kInsertionCutoff = 64;

unsigned
resolveThreads(unsigned threads)
{
    return threads != 0 ? threads : ThreadPool::defaultThreads();
}

std::uint8_t
digit(std::uint64_t key, unsigned byte)
{
    return static_cast<std::uint8_t>(key >> (8 * byte));
}

/** In-place MSD radix pass on [lo, hi) keyed by @p byte (American
 *  flag distribution), then recurse per bucket. */
void
msdRadixRecurse(Record *data, std::size_t n, unsigned byte,
                unsigned depth_threads)
{
    if (n <= kInsertionCutoff) {
        std::sort(data, data + n);
        return;
    }

    std::array<std::size_t, kRadixBuckets> count{};
    for (std::size_t i = 0; i < n; ++i)
        ++count[digit(data[i].key, byte)];

    std::array<std::size_t, kRadixBuckets> head{};
    std::array<std::size_t, kRadixBuckets> tail{};
    std::size_t sum = 0;
    for (std::size_t b = 0; b < kRadixBuckets; ++b) {
        head[b] = sum;
        sum += count[b];
        tail[b] = sum;
    }

    // Cycle-chasing in-place permutation.
    std::array<std::size_t, kRadixBuckets> cursor = head;
    for (std::size_t b = 0; b < kRadixBuckets; ++b) {
        while (cursor[b] < tail[b]) {
            Record rec = data[cursor[b]];
            std::uint8_t d = digit(rec.key, byte);
            while (d != b) {
                std::swap(rec, data[cursor[d]]);
                ++cursor[d];
                d = digit(rec.key, byte);
            }
            data[cursor[b]] = rec;
            ++cursor[b];
        }
    }

    if (byte == 0)
        return;

    if (depth_threads > 1) {
        // Parallel recursion: buckets are independent; the pool's
        // work-stealing index space load-balances the skewed bucket
        // sizes across the parallelism budget.
        ThreadPool pool(depth_threads);
        pool.parallelFor(kRadixBuckets, [&](std::uint64_t b) {
            if (count[b] > 1) {
                msdRadixRecurse(data + head[b], count[b], byte - 1,
                                1);
            }
        });
    } else {
        for (std::size_t b = 0; b < kRadixBuckets; ++b) {
            if (count[b] > 1)
                msdRadixRecurse(data + head[b], count[b], byte - 1, 1);
        }
    }
}

} // namespace

void
stdSort(std::vector<Record> &data)
{
    std::sort(data.begin(), data.end());
}

void
lsdRadixSort(std::vector<Record> &data)
{
    const std::size_t n = data.size();
    if (n <= 1)
        return;
    std::vector<Record> buffer(n);
    Record *src = data.data();
    Record *dst = buffer.data();
    for (unsigned byte = 0; byte < 8; ++byte) {
        std::array<std::size_t, kRadixBuckets> count{};
        for (std::size_t i = 0; i < n; ++i)
            ++count[digit(src[i].key, byte)];
        if (count[digit(src[0].key, byte)] == n) {
            continue; // all records share this digit: skip the pass
        }
        std::size_t sum = 0;
        for (std::size_t b = 0; b < kRadixBuckets; ++b) {
            const std::size_t c = count[b];
            count[b] = sum;
            sum += c;
        }
        for (std::size_t i = 0; i < n; ++i)
            dst[count[digit(src[i].key, byte)]++] = src[i];
        std::swap(src, dst);
    }
    if (src != data.data())
        std::copy(src, src + n, data.data());
}

void
parallelMsdRadixSort(std::vector<Record> &data, unsigned threads)
{
    if (data.size() <= 1)
        return;
    msdRadixRecurse(data.data(), data.size(), 7,
                    resolveThreads(threads));
}

void
sampleSortCpu(std::vector<Record> &data, unsigned buckets,
              unsigned threads)
{
    const std::size_t n = data.size();
    if (n <= kInsertionCutoff || buckets < 2) {
        std::sort(data.begin(), data.end());
        return;
    }
    threads = resolveThreads(threads);

    // Sample and select splitters (oversampling factor 8).
    const std::size_t sample_size =
        std::min<std::size_t>(n, 8ULL * buckets);
    std::vector<std::uint64_t> sample(sample_size);
    SplitMix64 rng(0xBEEF);
    for (std::size_t i = 0; i < sample_size; ++i)
        sample[i] = data[rng.nextBounded(n)].key;
    std::sort(sample.begin(), sample.end());
    std::vector<std::uint64_t> splitters;
    for (unsigned b = 1; b < buckets; ++b)
        splitters.push_back(sample[b * sample_size / buckets]);

    const auto bucket_of = [&](std::uint64_t key) {
        return static_cast<std::size_t>(
            std::upper_bound(splitters.begin(), splitters.end(), key) -
            splitters.begin());
    };

    // Parallel classification into per-task, per-bucket lists (one
    // pool reused for both passes).
    ThreadPool pool(threads);
    std::vector<std::vector<std::vector<Record>>> parts(
        threads, std::vector<std::vector<Record>>(buckets));
    pool.parallelFor(threads, [&](std::uint64_t t) {
        const std::size_t lo = t * n / threads;
        const std::size_t hi = (t + 1) * n / threads;
        for (std::size_t i = lo; i < hi; ++i)
            parts[t][bucket_of(data[i].key)].push_back(data[i]);
    });

    // Bucket offsets, then parallel copy-back + per-bucket sort.
    std::vector<std::size_t> offsets(buckets + 1, 0);
    for (unsigned b = 0; b < buckets; ++b) {
        std::size_t size = 0;
        for (unsigned t = 0; t < threads; ++t)
            size += parts[t][b].size();
        offsets[b + 1] = offsets[b] + size;
    }
    pool.parallelFor(buckets, [&](std::uint64_t b) {
        std::size_t pos = offsets[b];
        for (unsigned t = 0; t < threads; ++t) {
            std::copy(parts[t][b].begin(), parts[t][b].end(),
                      data.begin() + pos);
            pos += parts[t][b].size();
        }
        std::sort(data.begin() + offsets[b],
                  data.begin() + offsets[b + 1]);
    });
}

} // namespace bonsai::baseline
