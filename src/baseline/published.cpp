#include "baseline/published.hpp"

#include <cmath>

namespace bonsai::baseline
{

std::optional<double>
publishedMsPerGb(std::string_view name, std::uint64_t bytes)
{
    const PublishedRow *row = nullptr;
    for (const PublishedRow &r : kTable1Rows) {
        if (r.name == name) {
            row = &r;
            break;
        }
    }
    if (row == nullptr)
        return std::nullopt;
    // Nearest Table I column in log space.
    std::size_t best = 0;
    double best_dist = 1e300;
    for (std::size_t i = 0; i < kTable1Sizes.size(); ++i) {
        const double dist = std::fabs(
            std::log2(static_cast<double>(bytes)) -
            std::log2(static_cast<double>(kTable1Sizes[i])));
        if (dist < best_dist) {
            best_dist = dist;
            best = i;
        }
    }
    if (row->msPerGb[best] == kNoResult)
        return std::nullopt;
    return row->msPerGb[best];
}

std::array<BandwidthEfficiencyEntry, 3>
figure12Comparators()
{
    // Sorter throughputs follow from Table I at 16 GB (1 / ms-per-GB);
    // the memory bandwidths are reconstructed from the comparators'
    // publications (PARADIS: 4-socket DDR3/DDR4 server; HRS: Titan X
    // class GPU global memory; SampleSort: multi-bank DDR on an FPGA
    // board), chosen so the relative picture of Figure 12 holds.
    return {{
        {"PARADIS [20]", 1.0 / 0.395 * kGB, 64.0 * kGB},
        {"HRS [18]", 1.0 / 0.208 * kGB, 480.0 * kGB},
        {"SampleSort [19]", 1.0 / 0.220 * kGB, 67.4 * kGB},
    }};
}

} // namespace bonsai::baseline
