/**
 * @file
 * Live CPU baseline sorters, run in-process by the benchmark harness
 * to ground the CPU side of the comparisons on this machine:
 *
 *  - stdSort: std::sort (introsort) reference;
 *  - lsdRadixSort: sequential LSD radix sort, 8-bit digits;
 *  - parallelMsdRadixSort: PARADIS-inspired parallel in-place MSD
 *    radix sort (parallel histogram + in-place permutation + parallel
 *    recursion into buckets);
 *  - sampleSortCpu: splitter-based sample sort with parallel
 *    classification and bucket sorting (the CPU analogue of the
 *    FPGA SampleSort comparator).
 */

#ifndef BONSAI_BASELINE_CPU_SORTERS_HPP
#define BONSAI_BASELINE_CPU_SORTERS_HPP

#include <cstdint>
#include <vector>

#include "common/record.hpp"

namespace bonsai::baseline
{

/** std::sort reference. */
void stdSort(std::vector<Record> &data);

/** Sequential LSD radix sort on the 64-bit key, 8-bit digits. */
void lsdRadixSort(std::vector<Record> &data);

/**
 * PARADIS-inspired parallel in-place MSD radix sort.
 * @param threads Worker count (0 = hardware concurrency).
 */
void parallelMsdRadixSort(std::vector<Record> &data,
                          unsigned threads = 0);

/**
 * Sample sort: sample keys, choose @p buckets - 1 splitters, classify
 * in parallel, sort each bucket in parallel.
 */
void sampleSortCpu(std::vector<Record> &data, unsigned buckets = 64,
                   unsigned threads = 0);

} // namespace bonsai::baseline

#endif // BONSAI_BASELINE_CPU_SORTERS_HPP
