/**
 * @file
 * Umbrella header: the Bonsai library's public API in one include.
 *
 *   #include "bonsai.hpp"
 *
 *   std::vector<bonsai::Record> data = ...;
 *   bonsai::sorter::DramSorter sorter;      // AWS F1 preset
 *   auto report = sorter.sort(data, 4);     // r = 4-byte records
 *
 * Layering (see DESIGN.md):
 *   common/  records, generators, validation
 *   sim/     cycle engine primitives
 *   hw/      hardware blocks (mergers, loader, ...)
 *   mem/     memory timing models
 *   amt/     tree structure + simulator instances
 *   model/   performance / resource models (Eqs. 1-10)
 *   core/    the Bonsai optimizer, planners, platform presets
 *   sorter/  end-to-end sorters and simulators
 *   baseline/ CPU comparators and published results
 */

#ifndef BONSAI_BONSAI_HPP
#define BONSAI_BONSAI_HPP

#include "common/checks.hpp"
#include "common/gensort.hpp"
#include "common/random.hpp"
#include "common/record.hpp"
#include "common/run.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

#include "model/merger_costs.hpp"
#include "model/params.hpp"
#include "model/perf_model.hpp"
#include "model/resource_model.hpp"

#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "core/scalability.hpp"
#include "core/ssd_planner.hpp"

#include "sorter/behavioral.hpp"
#include "sorter/merge_path.hpp"
#include "sorter/pipeline_sim.hpp"
#include "sorter/range_partitioner.hpp"
#include "sorter/sim_sorter.hpp"
#include "sorter/sorters.hpp"
#include "sorter/stage_sim.hpp"
#include "sorter/throughput_sorter.hpp"

#include "baseline/cpu_sorters.hpp"
#include "baseline/published.hpp"

#endif // BONSAI_BONSAI_HPP
