/** @file Tests for the throughput-mode batch sorter facade. */

#include <gtest/gtest.h>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "sorter/throughput_sorter.hpp"

namespace bonsai
{
namespace
{

TEST(ThroughputSorter, SortsEveryArrayInBatch)
{
    std::vector<std::vector<Record>> batch;
    for (int i = 0; i < 6; ++i) {
        batch.push_back(makeRecords(10'000 + 1000 * i,
                                    Distribution::UniformRandom, i));
    }
    sorter::ThroughputSorter sorter;
    const auto report = sorter.sortBatch(batch, 4);
    EXPECT_EQ(report.arrays, 6u);
    for (const auto &array : batch)
        EXPECT_TRUE(isSorted(std::span<const Record>(array)));
    EXPECT_GT(report.throughputBytesPerSec, 0.0);
    EXPECT_GT(report.batchSeconds, 0.0);
}

TEST(ThroughputSorter, PaperScaleBatchSaturatesIoBus)
{
    // 8 GB arrays on the F1 with an 8 GB/s I/O bus: the chosen
    // pipeline must deliver the full 8 GB/s (Section IV-C phase 1).
    std::vector<std::vector<Record>> tiny_batch(1);
    tiny_batch[0] = makeRecords(1000, Distribution::UniformRandom);
    model::MergerArchParams arch;
    arch.presortRunLength = 256;
    sorter::ThroughputSorter sorter(core::awsF1(), arch);
    // Model-only check at paper scale via the optimizer the facade
    // uses (facade executes behaviorally, so keep the data tiny and
    // query the model separately).
    model::BonsaiInputs in;
    in.array = {8ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    in.arch = arch;
    core::Optimizer opt(in);
    const auto best = opt.best(core::Objective::Throughput);
    ASSERT_TRUE(best.has_value());
    EXPECT_DOUBLE_EQ(best->perf.throughputBytesPerSec, 8e9);
    const auto report = sorter.sortBatch(tiny_batch, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(tiny_batch[0])));
    (void)report;
}

TEST(ThroughputSorter, BatchThroughputBeatsLatencyModeOnManyArrays)
{
    // Eq. 7 vs Eq. 1 at the paper's SSD phase-1 scale: pipelined
    // throughput (8 GB/s) vs one latency-optimal sorter processing
    // arrays one at a time.
    model::BonsaiInputs in;
    in.array = {8ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    in.hw.betaIo = 8.0 * kGB;
    in.arch.presortRunLength = 256;
    core::Optimizer opt(in);
    const auto thr = opt.best(core::Objective::Throughput);
    const auto lat = opt.best(core::Objective::Latency);
    ASSERT_TRUE(thr && lat);
    // One array at a time over the I/O bus: in + sort + out.
    const double serial_per_array = 8.0 / 8.0 /*in*/ +
        lat->perf.latencySeconds + 8.0 / 8.0 /*out*/;
    const double pipelined_per_array =
        8ULL * kGB / thr->perf.throughputBytesPerSec;
    EXPECT_LT(pipelined_per_array, serial_per_array);
}

TEST(ThroughputSorter, EmptyBatch)
{
    std::vector<std::vector<Record>> batch;
    sorter::ThroughputSorter sorter;
    const auto report = sorter.sortBatch(batch, 4);
    EXPECT_EQ(report.arrays, 0u);
    EXPECT_EQ(report.throughputBytesPerSec, 0.0);
}

} // namespace
} // namespace bonsai
