/** @file Tests for the top-level sorter facades. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "bonsai.hpp"
#include "common/checks.hpp"
#include "common/contract.hpp"
#include "common/gensort.hpp"
#include "common/random.hpp"
#include "io/stream.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/sorters.hpp"

namespace bonsai
{
namespace
{

TEST(DramSorter, SortsAndReportsPaperConfig)
{
    auto data = makeRecords(2'000'000, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    sorter::DramSorter sorter;
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
    EXPECT_EQ(report.config.p, 32u);
    EXPECT_EQ(report.config.ell, 256u);
    EXPECT_GT(report.modeledSeconds, 0.0);
    EXPECT_GT(report.predictedSeconds, 0.0);
    // Stage sim and Equation 1 agree within 10% (paper VI-B2).
    EXPECT_NEAR(report.modeledSeconds, report.predictedSeconds,
                0.10 * report.predictedSeconds);
}

TEST(DramSorter, ModeledTimeMatchesTable1Shape)
{
    // Modeled ms/GB for a DRAM-scale sort should be in the right
    // ballpark (Table I reports 172 ms/GB at the measured 29 GB/s;
    // at nominal 32 GB/s with the model-optimal ell = 256 tree the
    // model gives ~125-145 ms/GB).
    auto data = makeRecords(1'000'000, Distribution::UniformRandom);
    sorter::DramSorter sorter;
    const auto report = sorter.sort(data, 4);
    // 4 MB input: small, so just sanity-check the per-GB figure the
    // model would report for a 16 GB array instead.
    model::BonsaiInputs in;
    in.array = {16ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    const auto est = model::latencyEstimate(
        in, amt::AmtConfig{32, 256, 1, 1});
    const double ms_per_gb = toMs(est.latencySeconds) / 16.0;
    EXPECT_NEAR(ms_per_gb, 125.0, 5.0);
    (void)report;
}

TEST(HbmSorter, PicksUnrolledConfigAndSorts)
{
    auto data = makeRecords(100'000, Distribution::UniformRandom);
    model::MergerArchParams arch;
    arch.presortRunLength = 16;
    sorter::HbmSorter sorter(core::hbmU50());
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_GE(report.config.lambdaUnrl, 1u);
}

TEST(SsdSorter, TwoPhaseSortsAndMatchesPlan)
{
    auto data = makeRecords(300'000, Distribution::UniformRandom, 17);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    // Scale the hardware down so the two-phase structure is exercised
    // on a test-sized array: "DRAM" of 400 KB -> 100 K-record chunks.
    model::HardwareParams hw = core::awsF1();
    hw.cDram = 800'000; // bytes -> 100 K-record chunks (cDram/8)
    sorter::SsdSorter sorter(hw);
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
    EXPECT_GT(report.plan.chunkRecords, 0u);
    EXPECT_LT(report.plan.chunkRecords, 300'000u);
    EXPECT_GE(report.plan.phase2Stages, 1u);
    EXPECT_GT(report.plan.totalSeconds(), 0.0);
}

TEST(SsdSorter, FullScalePlanMatchesTableV)
{
    // Plan-only check at the paper's 2 TB point via a small array
    // standing in: use planSsdSort directly for the numbers; here we
    // verify the facade wires the plan through.
    auto data = makeRecords(50'000, Distribution::UniformRandom);
    sorter::SsdSorter sorter;
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_DOUBLE_EQ(report.plan.reprogramSeconds, 4.3);
}

TEST(DramSorter, ReportsHostIoTime)
{
    // Figure 2 steps 1 and 4: in + out over the 8 GB/s PCIe.
    auto data = makeRecords(250'000, Distribution::UniformRandom);
    sorter::DramSorter sorter;
    const auto report = sorter.sort(data, 4);
    const double expect = 2.0 * 1'000'000 / 8e9;
    EXPECT_NEAR(report.ioSeconds, expect, 1e-12);
    EXPECT_NEAR(report.endToEndSeconds(),
                report.modeledSeconds + report.ioSeconds, 1e-15);
}

TEST(DramSorter, SortsGensortRecords)
{
    GensortGenerator gen(2);
    auto packed = packGensort(gen.generate(0, 50'000));
    sorter::DramSorter sorter;
    const auto report = sorter.sort(packed, 16);
    EXPECT_TRUE(isSorted(std::span<const Record128>(packed)));
    // 128-bit records: p = 8 saturates 32 GB/s (Table VI(b)).
    EXPECT_EQ(report.config.p, 8u);
}

TEST(DramSorter, DegenerateInputsReturnZeroedReports)
{
    // Empty and single-record arrays are already sorted; the facade
    // must return a zeroed report, not invoke the optimizer (whose
    // models divide by N-dependent terms).
    sorter::DramSorter sorter;
    std::vector<Record> empty;
    const auto r0 = sorter.sort(empty, 4);
    EXPECT_EQ(r0.stream.recordsIn, 0u);
    EXPECT_EQ(r0.stream.recordsMoved, 0u);
    EXPECT_EQ(r0.modeledSeconds, 0.0);
    EXPECT_EQ(r0.stages, 0u);

    std::vector<Record> one{Record{42, 0}};
    const auto r1 = sorter.sort(one, 4);
    EXPECT_EQ(r1.stream.recordsIn, 1u);
    EXPECT_EQ(r1.stream.recordsMoved, 0u);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].key, 42u);
}

TEST(SsdSorter, DegenerateInputsReturnZeroedReports)
{
    sorter::SsdSorter sorter;
    std::vector<Record> empty;
    const auto r0 = sorter.sort(empty, 4);
    EXPECT_EQ(r0.stream.recordsIn, 0u);
    EXPECT_EQ(r0.stream.mergePasses, 0u);
    EXPECT_EQ(r0.plan.chunkRecords, 0u);

    std::vector<Record> one{Record{7, 3}};
    const auto r1 = sorter.sort(one, 4);
    EXPECT_EQ(r1.stream.recordsIn, 1u);
    EXPECT_EQ(r1.stream.recordsMoved, 0u);
    EXPECT_EQ(one[0], (Record{7, 3}));
}

TEST(DramSorter, TerminalRecordInInputIsRejected)
{
    auto data = makeRecords(1000, Distribution::UniformRandom);
    data[500] = Record::terminal();
    sorter::DramSorter sorter;
    EXPECT_THROW(sorter.sort(data, 4), ContractViolation);
}

TEST(SsdSorter, TerminalRecordInInputIsRejected)
{
    auto data = makeRecords(1000, Distribution::UniformRandom);
    data[0] = Record::terminal();
    sorter::SsdSorter sorter;
    EXPECT_THROW(sorter.sort(data, 4), ContractViolation);
}

TEST(SsdSorter, Phase1MovesMatchInPlaceChunkSorts)
{
    // Regression for the old phase 1, which copied every chunk out,
    // sorted the copy, and copied it back.  The in-place phase 1 must
    // report exactly the moves the behavioral sorter makes on each
    // chunk range — no copy traffic hiding in the count.
    auto data = makeRecords(300'000, Distribution::UniformRandom, 17);
    model::HardwareParams hw = core::awsF1();
    hw.cDram = 800'000; // small "DRAM" forces a multi-chunk plan
    sorter::SsdSorter sorter(hw);
    auto reference = data;
    const auto report = sorter.sort(data, 4);
    ASSERT_GT(report.plan.chunkRecords, 0u);
    const std::uint64_t chunk = report.plan.chunkRecords;
    ASSERT_EQ(report.stream.phase1Chunks,
              (reference.size() + chunk - 1) / chunk);
    ASSERT_GT(report.stream.phase1Chunks, 1u);

    const sorter::BehavioralSorter<Record> chunk_sorter(
        report.plan.phase1.config.ell, 16 /* presort default */);
    std::uint64_t expected_moves = 0;
    for (std::uint64_t lo = 0; lo < reference.size(); lo += chunk) {
        const std::uint64_t len =
            std::min<std::uint64_t>(chunk, reference.size() - lo);
        std::vector<Record> piece(reference.begin() + lo,
                                  reference.begin() + lo + len);
        expected_moves += chunk_sorter.sort(piece).recordsMoved;
    }
    EXPECT_EQ(report.stream.phase1RecordsMoved, expected_moves);
    EXPECT_GT(report.stream.recordsMoved,
              report.stream.phase1RecordsMoved);
}

TEST(SsdSorter, StreamedSortMatchesInMemorySort)
{
    // The acceptance check in miniature: the same records through the
    // in-memory adapter and through the fully streamed path (spill
    // files, bounded pool) must produce the same sorted sequence.
    auto in_memory = makeRecords(200'000, Distribution::UniformRandom,
                                 23);
    const auto original = in_memory;
    sorter::SsdSorter sorter;
    sorter.setThreads(2);
    sorter.sort(in_memory, 16);

    io::MemorySource<Record> source{std::span<const Record>(original)};
    std::vector<Record> streamed;
    streamed.reserve(original.size());
    io::MemorySink<Record> sink(streamed);
    sorter::SsdSorter::StreamOptions opts;
    opts.memoryBudgetBytes = 4ULL << 20; // 1 MiB chunks + 1 MiB pool
    const auto report =
        sorter.sortStream(source, sink, 16, opts);

    EXPECT_EQ(streamed, in_memory);
    EXPECT_GT(report.stream.phase1Chunks, 1u);
    EXPECT_GE(report.stream.effectiveEll, 2u);
    EXPECT_GT(report.stream.spillBytesWritten, 0u);
    EXPECT_GT(report.stream.spillBytesRead, 0u);
    // b * ell cross-check (Equation 10 analogue): the cursors' live
    // buffer bytes fit the pool budget.
    EXPECT_LE((2ULL * report.stream.effectiveEll + 2) *
                  report.stream.batchRecords * sizeof(Record),
              report.stream.bufferPoolBytes);
}

TEST(SsdSorter, StreamedDegenerateInputs)
{
    sorter::SsdSorter sorter;
    std::vector<Record> none;
    io::MemorySource<Record> empty_src{std::span<const Record>(none)};
    std::vector<Record> out;
    io::MemorySink<Record> sink(out);
    const auto r0 = sorter.sortStream(empty_src, sink, 16);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(r0.stream.recordsIn, 0u);

    const std::vector<Record> one{Record{9, 1}};
    io::MemorySource<Record> one_src{std::span<const Record>(one)};
    const auto r1 = sorter.sortStream(one_src, sink, 16);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], (Record{9, 1}));
    EXPECT_EQ(r1.stream.recordsIn, 1u);
    EXPECT_EQ(r1.stream.spillBytesWritten, 0u);
}

} // namespace
} // namespace bonsai
