/** @file Tests for the top-level sorter facades. */

#include <gtest/gtest.h>

#include "bonsai.hpp"
#include "common/checks.hpp"
#include "common/gensort.hpp"
#include "common/random.hpp"
#include "sorter/sorters.hpp"

namespace bonsai
{
namespace
{

TEST(DramSorter, SortsAndReportsPaperConfig)
{
    auto data = makeRecords(2'000'000, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    sorter::DramSorter sorter;
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
    EXPECT_EQ(report.config.p, 32u);
    EXPECT_EQ(report.config.ell, 256u);
    EXPECT_GT(report.modeledSeconds, 0.0);
    EXPECT_GT(report.predictedSeconds, 0.0);
    // Stage sim and Equation 1 agree within 10% (paper VI-B2).
    EXPECT_NEAR(report.modeledSeconds, report.predictedSeconds,
                0.10 * report.predictedSeconds);
}

TEST(DramSorter, ModeledTimeMatchesTable1Shape)
{
    // Modeled ms/GB for a DRAM-scale sort should be in the right
    // ballpark (Table I reports 172 ms/GB at the measured 29 GB/s;
    // at nominal 32 GB/s with the model-optimal ell = 256 tree the
    // model gives ~125-145 ms/GB).
    auto data = makeRecords(1'000'000, Distribution::UniformRandom);
    sorter::DramSorter sorter;
    const auto report = sorter.sort(data, 4);
    // 4 MB input: small, so just sanity-check the per-GB figure the
    // model would report for a 16 GB array instead.
    model::BonsaiInputs in;
    in.array = {16ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    const auto est = model::latencyEstimate(
        in, amt::AmtConfig{32, 256, 1, 1});
    const double ms_per_gb = toMs(est.latencySeconds) / 16.0;
    EXPECT_NEAR(ms_per_gb, 125.0, 5.0);
    (void)report;
}

TEST(HbmSorter, PicksUnrolledConfigAndSorts)
{
    auto data = makeRecords(100'000, Distribution::UniformRandom);
    model::MergerArchParams arch;
    arch.presortRunLength = 16;
    sorter::HbmSorter sorter(core::hbmU50());
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_GE(report.config.lambdaUnrl, 1u);
}

TEST(SsdSorter, TwoPhaseSortsAndMatchesPlan)
{
    auto data = makeRecords(300'000, Distribution::UniformRandom, 17);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    // Scale the hardware down so the two-phase structure is exercised
    // on a test-sized array: "DRAM" of 400 KB -> 100 K-record chunks.
    model::HardwareParams hw = core::awsF1();
    hw.cDram = 800'000; // bytes -> 100 K-record chunks (cDram/8)
    sorter::SsdSorter sorter(hw);
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
    EXPECT_GT(report.plan.chunkRecords, 0u);
    EXPECT_LT(report.plan.chunkRecords, 300'000u);
    EXPECT_GE(report.plan.phase2Stages, 1u);
    EXPECT_GT(report.plan.totalSeconds(), 0.0);
}

TEST(SsdSorter, FullScalePlanMatchesTableV)
{
    // Plan-only check at the paper's 2 TB point via a small array
    // standing in: use planSsdSort directly for the numbers; here we
    // verify the facade wires the plan through.
    auto data = makeRecords(50'000, Distribution::UniformRandom);
    sorter::SsdSorter sorter;
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_DOUBLE_EQ(report.plan.reprogramSeconds, 4.3);
}

TEST(DramSorter, ReportsHostIoTime)
{
    // Figure 2 steps 1 and 4: in + out over the 8 GB/s PCIe.
    auto data = makeRecords(250'000, Distribution::UniformRandom);
    sorter::DramSorter sorter;
    const auto report = sorter.sort(data, 4);
    const double expect = 2.0 * 1'000'000 / 8e9;
    EXPECT_NEAR(report.ioSeconds, expect, 1e-12);
    EXPECT_NEAR(report.endToEndSeconds(),
                report.modeledSeconds + report.ioSeconds, 1e-15);
}

TEST(DramSorter, SortsGensortRecords)
{
    GensortGenerator gen(2);
    auto packed = packGensort(gen.generate(0, 50'000));
    sorter::DramSorter sorter;
    const auto report = sorter.sort(packed, 16);
    EXPECT_TRUE(isSorted(std::span<const Record128>(packed)));
    // 128-bit records: p = 8 saturates 32 GB/s (Table VI(b)).
    EXPECT_EQ(report.config.p, 8u);
}

} // namespace
} // namespace bonsai
