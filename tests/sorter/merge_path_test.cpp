/** @file Unit tests for the Merge Path ell-way merge partitioner. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"
#include "sorter/loser_tree.hpp"
#include "sorter/merge_path.hpp"

namespace bonsai
{
namespace
{

using Runs = std::vector<std::vector<Record>>;

std::vector<std::span<const Record>>
spansOf(const Runs &runs)
{
    std::vector<std::span<const Record>> spans;
    for (const auto &run : runs)
        spans.emplace_back(run);
    return spans;
}

std::vector<Record>
serialMerge(const Runs &runs)
{
    sorter::LoserTree<Record> tree(spansOf(runs));
    std::vector<Record> out;
    while (!tree.done())
        out.push_back(tree.pop());
    return out;
}

/** Merge each slice independently and concatenate. */
std::vector<Record>
slicedMerge(const Runs &runs, unsigned parts)
{
    const sorter::MergePath<Record> path(spansOf(runs));
    const auto bounds = path.partition(parts);
    std::vector<Record> out;
    for (unsigned t = 0; t < parts; ++t) {
        sorter::LoserTree<Record> tree(spansOf(runs), bounds[t],
                                       bounds[t + 1]);
        while (!tree.done())
            out.push_back(tree.pop());
    }
    return out;
}

void
expectIdentical(const std::vector<Record> &a,
                const std::vector<Record> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Full-record equality: key AND payload (byte-identical).
        ASSERT_EQ(a[i], b[i]) << "record " << i;
    }
}

std::vector<Record>
sortedRun(std::size_t n, std::uint64_t seed)
{
    auto run = makeRecords(n, Distribution::UniformRandom, seed);
    std::sort(run.begin(), run.end());
    return run;
}

TEST(MergePath, CutsSumToRank)
{
    Runs runs = {sortedRun(100, 1), sortedRun(37, 2),
                 sortedRun(211, 3)};
    const sorter::MergePath<Record> path(spansOf(runs));
    ASSERT_EQ(path.totalRecords(), 348u);
    for (std::uint64_t r : {0u, 1u, 5u, 173u, 347u, 348u}) {
        const auto cuts = path.cutsForRank(r);
        std::uint64_t sum = 0;
        for (std::uint64_t c : cuts)
            sum += c;
        EXPECT_EQ(sum, r);
    }
}

TEST(MergePath, BoundariesAreMonotone)
{
    Runs runs = {sortedRun(500, 7), sortedRun(3, 8), sortedRun(99, 9)};
    const sorter::MergePath<Record> path(spansOf(runs));
    const auto bounds = path.partition(8);
    ASSERT_EQ(bounds.size(), 9u);
    for (unsigned t = 0; t + 1 < bounds.size(); ++t) {
        for (std::size_t i = 0; i < runs.size(); ++i)
            EXPECT_LE(bounds[t][i], bounds[t + 1][i]);
    }
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(bounds.front()[i], 0u);
        EXPECT_EQ(bounds.back()[i], runs[i].size());
    }
}

TEST(MergePath, CutRespectsMergeOrder)
{
    // Every record before a cut must precede (in the augmented order)
    // every record after it — the Merge Path staircase invariant.
    Runs runs = {sortedRun(64, 11), sortedRun(64, 12),
                 sortedRun(64, 13)};
    const sorter::MergePath<Record> path(spansOf(runs));
    const auto cuts = path.cutsForRank(96);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (cuts[i] == 0)
            continue;
        const Record &last = runs[i][cuts[i] - 1];
        for (std::size_t j = 0; j < runs.size(); ++j) {
            if (cuts[j] == runs[j].size())
                continue;
            const Record &first = runs[j][cuts[j]];
            // last (input i) precedes first (input j): smaller key,
            // or equal key and lower input index.
            EXPECT_TRUE(last < first || (!(first < last) && i <= j));
        }
    }
}

TEST(MergePath, SlicedMergeMatchesSerialByteForByte)
{
    Runs runs;
    for (int i = 0; i < 9; ++i)
        runs.push_back(sortedRun(200 + 37 * i, 40 + i));
    const auto serial = serialMerge(runs);
    for (unsigned parts : {1u, 2u, 3u, 7u, 16u})
        expectIdentical(slicedMerge(runs, parts), serial);
}

TEST(MergePath, AllEqualKeysStayByteIdentical)
{
    // Equal keys with distinct payloads: only the (key, input index,
    // position) augmented order keeps slices byte-identical.
    Runs runs;
    for (std::uint64_t i = 0; i < 5; ++i) {
        std::vector<Record> run;
        for (std::uint64_t p = 0; p < 123; ++p)
            run.push_back(Record{7, 1000 * i + p});
        runs.push_back(std::move(run));
    }
    const auto serial = serialMerge(runs);
    for (unsigned parts : {2u, 3u, 8u})
        expectIdentical(slicedMerge(runs, parts), serial);
}

TEST(MergePath, FewDistinctKeysAcrossManyInputs)
{
    Runs runs;
    SplitMix64 rng(99);
    for (int i = 0; i < 16; ++i) {
        std::vector<Record> run;
        for (int p = 0; p < 150; ++p)
            run.push_back(Record{1 + rng.nextBounded(4),
                                 rng.next()});
        std::sort(run.begin(), run.end());
        runs.push_back(std::move(run));
    }
    const auto serial = serialMerge(runs);
    for (unsigned parts : {2u, 5u, 8u})
        expectIdentical(slicedMerge(runs, parts), serial);
}

TEST(MergePath, SkewedAndEmptyInputs)
{
    Runs runs = {sortedRun(2000, 21), {}, sortedRun(1, 22),
                 {},        sortedRun(300, 23)};
    const auto serial = serialMerge(runs);
    for (unsigned parts : {2u, 4u, 8u})
        expectIdentical(slicedMerge(runs, parts), serial);
}

TEST(MergePath, MorePartsThanRecords)
{
    Runs runs = {sortedRun(2, 31), sortedRun(1, 32)};
    const auto serial = serialMerge(runs);
    expectIdentical(slicedMerge(runs, 8), serial);
}

TEST(MergePath, EmptyInputSet)
{
    const sorter::MergePath<Record> path({});
    EXPECT_EQ(path.totalRecords(), 0u);
    const auto bounds = path.partition(4);
    ASSERT_EQ(bounds.size(), 5u);
    for (const auto &b : bounds)
        EXPECT_TRUE(b.empty());
}

} // namespace
} // namespace bonsai
