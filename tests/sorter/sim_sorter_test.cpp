/** @file End-to-end tests of the cycle-level simulated sorter. */

#include <gtest/gtest.h>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "model/perf_model.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/sim_sorter.hpp"

namespace bonsai
{
namespace
{

sorter::SimSorter<Record>::Options
options(unsigned p, unsigned ell, unsigned unroll = 1)
{
    sorter::SimSorter<Record>::Options opts;
    opts.config = amt::AmtConfig{p, ell, unroll, 1};
    opts.mem.numBanks = 4;
    opts.mem.bankBytesPerCycle = 32.0;
    opts.mem.interleaveBytes = 1024;
    opts.mem.requestLatency = 8;
    opts.batchBytes = 1024;
    opts.recordBytes = 4;
    opts.presortRun = 16;
    return opts;
}

void
checkSimSort(std::size_t n, const sorter::SimSorter<Record>::Options &o,
             Distribution dist = Distribution::UniformRandom)
{
    auto data = makeRecords(n, dist);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    sorter::SimSorter<Record> sorter(o);
    const auto stats = sorter.sort(data);
    ASSERT_TRUE(stats.completed)
        << "cycle budget exceeded (deadlock?) n=" << n;
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
    if (n > 1) {
        EXPECT_GT(stats.totalCycles, 0u);
    }
}

struct SimShape
{
    unsigned p;
    unsigned ell;
    std::size_t n;
};

class SimShapes : public ::testing::TestWithParam<SimShape>
{
};

TEST_P(SimShapes, SortsRandomInput)
{
    checkSimSort(GetParam().n,
                 options(GetParam().p, GetParam().ell));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimShapes,
    ::testing::Values(SimShape{1, 2, 300}, SimShape{2, 4, 1000},
                      SimShape{4, 4, 4096}, SimShape{4, 16, 5000},
                      SimShape{8, 8, 10'000}, SimShape{8, 64, 20'000},
                      SimShape{16, 16, 30'000},
                      SimShape{32, 64, 50'000},
                      SimShape{32, 4, 10'000},
                      SimShape{1, 16, 2000}),
    [](const ::testing::TestParamInfo<SimShape> &param_info) {
        return "p" + std::to_string(param_info.param.p) + "_ell" +
            std::to_string(param_info.param.ell) + "_n" +
            std::to_string(param_info.param.n);
    });

TEST(SimSorter, SortsAdversarialDistributions)
{
    for (Distribution dist :
         {Distribution::Sorted, Distribution::Reverse,
          Distribution::AllEqual, Distribution::FewDistinct}) {
        checkSimSort(3000, options(4, 8), dist);
    }
}

TEST(SimSorter, TinyInputs)
{
    for (std::size_t n : {0u, 1u, 2u, 15u, 16u, 17u}) {
        checkSimSort(n, options(4, 4));
    }
}

TEST(SimSorter, NonPowerOfTwoSize)
{
    checkSimSort(12'345, options(8, 16));
}

TEST(SimSorter, WithoutPresorter)
{
    auto o = options(4, 8);
    o.presortRun = 1;
    checkSimSort(2000, o);
}

TEST(SimSorter, UnrolledAddressRangeSorting)
{
    // 4 trees, each sorting a region, then the halving combine.
    checkSimSort(20'000, options(4, 4, /*unroll=*/4));
}

TEST(SimSorter, UnrolledHbmStyle16Trees)
{
    checkSimSort(16'000, options(4, 2, /*unroll=*/16));
}

TEST(SimSorter, CycleCountIsDataOblivious)
{
    // Merge trees stream every record through every stage regardless
    // of key distribution; with alternating tie-breaks in the
    // mergers, cycle counts across distributions stay within a few
    // percent (this is what lets Equation 1 omit a distribution
    // term).
    const std::size_t n = 200'000;
    std::uint64_t min_cycles = ~0ULL, max_cycles = 0;
    for (Distribution dist :
         {Distribution::UniformRandom, Distribution::Sorted,
          Distribution::Reverse, Distribution::AllEqual,
          Distribution::FewDistinct}) {
        auto data = makeRecords(n, dist);
        sorter::SimSorter<Record> sim(options(8, 16));
        const auto stats = sim.sort(data);
        ASSERT_TRUE(stats.completed);
        min_cycles = std::min(min_cycles, stats.totalCycles);
        max_cycles = std::max(max_cycles, stats.totalCycles);
    }
    // A small residual remains (tuple-granular tie alternation is
    // not perfectly balanced at run boundaries): allow 15%.
    EXPECT_LT(static_cast<double>(max_cycles - min_cycles) /
                  static_cast<double>(min_cycles),
              0.15);
}

TEST(SimSorter, RangePartitionedUnrolling)
{
    auto o = options(4, 4, /*unroll=*/4);
    o.unrollMode = sorter::UnrollMode::RangePartitioned;
    checkSimSort(20'000, o);
}

TEST(SimSorter, RangePartitionedManyTrees)
{
    auto o = options(4, 2, /*unroll=*/16);
    o.unrollMode = sorter::UnrollMode::RangePartitioned;
    checkSimSort(30'000, o);
}

TEST(SimSorter, RangePartitionedSkewedKeys)
{
    auto o = options(4, 4, /*unroll=*/4);
    o.unrollMode = sorter::UnrollMode::RangePartitioned;
    checkSimSort(10'000, o, Distribution::FewDistinct);
    checkSimSort(10'000, o, Distribution::AllEqual);
}

TEST(SimSorter, RangeModeSkipsCombineStages)
{
    // Address-range unrolling pays combining stages; range
    // partitioning does not.
    const std::size_t n = 40'000;
    auto addr = options(4, 4, 4);
    auto range = options(4, 4, 4);
    range.unrollMode = sorter::UnrollMode::RangePartitioned;
    auto d1 = makeRecords(n, Distribution::UniformRandom);
    auto d2 = d1;
    sorter::SimSorter<Record> s_addr(addr);
    sorter::SimSorter<Record> s_range(range);
    const auto st_addr = s_addr.sort(d1);
    const auto st_range = s_range.sort(d2);
    ASSERT_TRUE(st_addr.completed);
    ASSERT_TRUE(st_range.completed);
    EXPECT_LT(st_range.stages, st_addr.stages);
    EXPECT_LT(st_range.totalCycles, st_addr.totalCycles);
    EXPECT_TRUE(isSorted(std::span<const Record>(d2)));
}

TEST(SimSorter, MatchesBehavioralResult)
{
    auto data = makeRecords(8000, Distribution::UniformRandom, 3);
    auto behavioral = data;
    sorter::SimSorter<Record> sim(options(8, 16));
    sim.sort(data);
    sorter::BehavioralSorter<Record> soft(16, 16);
    soft.sort(behavioral);
    ASSERT_EQ(data.size(), behavioral.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(data[i].key, behavioral[i].key) << i;
}

TEST(SimSorter, StageCountMatchesModel)
{
    auto data = makeRecords(20'000, Distribution::UniformRandom);
    sorter::SimSorter<Record> sim(options(8, 16));
    const auto stats = sim.sort(data);
    EXPECT_EQ(stats.stages, model::mergeStages(20'000, 16, 16));
}

TEST(SimSorter, MemoryTrafficIsTwoPassesPerStage)
{
    const std::size_t n = 10'000;
    auto data = makeRecords(n, Distribution::UniformRandom);
    sorter::SimSorter<Record> sim(options(8, 16));
    const auto stats = sim.sort(data);
    const std::uint64_t per_stage = n * 4;
    EXPECT_EQ(stats.bytesWritten, per_stage * stats.stages);
    EXPECT_GE(stats.bytesRead, per_stage * stats.stages);
    // Reads may exceed by at most the final partial batches.
    EXPECT_LE(stats.bytesRead,
              per_stage * stats.stages + stats.stages * 1024 * 16);
}

} // namespace
} // namespace bonsai
