/** @file Unit tests for the sampling range partitioner. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "sorter/range_partitioner.hpp"

namespace bonsai
{
namespace
{

TEST(RangePartitioner, RangesAreDisjointAndOrdered)
{
    const auto input =
        makeRecords(100'000, Distribution::UniformRandom);
    sorter::RangePartitioner<Record> partitioner(8);
    const auto part = partitioner.partition(input);
    ASSERT_EQ(part.offsets.size(), 9u);
    ASSERT_EQ(part.data.size(), input.size());
    // Every key in range i must be <= every key in range i+1.
    for (unsigned r = 0; r + 1 < 8; ++r) {
        if (part.rangeSize(r) == 0 || part.rangeSize(r + 1) == 0)
            continue;
        std::uint64_t max_here = 0;
        for (std::uint64_t i = part.offsets[r];
             i < part.offsets[r + 1]; ++i)
            max_here = std::max(max_here, part.data[i].key);
        std::uint64_t min_next = ~0ULL;
        for (std::uint64_t i = part.offsets[r + 1];
             i < part.offsets[r + 2]; ++i)
            min_next = std::min(min_next, part.data[i].key);
        EXPECT_LE(max_here, min_next) << "range " << r;
    }
}

TEST(RangePartitioner, PreservesMultiset)
{
    const auto input =
        makeRecords(50'000, Distribution::FewDistinct);
    sorter::RangePartitioner<Record> partitioner(16);
    const auto part = partitioner.partition(input);
    EXPECT_EQ(fingerprint(std::span<const Record>(input)),
              fingerprint(std::span<const Record>(part.data)));
}

TEST(RangePartitioner, SkewIsSmallOnUniformKeys)
{
    const auto input =
        makeRecords(200'000, Distribution::UniformRandom);
    for (unsigned ranges : {2u, 4u, 16u}) {
        sorter::RangePartitioner<Record> partitioner(ranges);
        const auto part = partitioner.partition(input);
        EXPECT_GE(part.skew, 1.0);
        EXPECT_LE(part.skew, 1.5) << ranges << " ranges";
    }
}

TEST(RangePartitioner, SortingRangesSortsWhole)
{
    auto input = makeRecords(30'000, Distribution::NearlySorted);
    sorter::RangePartitioner<Record> partitioner(4);
    auto part = partitioner.partition(input);
    for (unsigned r = 0; r < 4; ++r) {
        std::sort(part.data.begin() + part.offsets[r],
                  part.data.begin() + part.offsets[r + 1]);
    }
    EXPECT_TRUE(isSorted(std::span<const Record>(part.data)));
}

TEST(RangePartitioner, DegenerateCases)
{
    // Single range: identity.
    const auto input = makeRecords(100, Distribution::UniformRandom);
    sorter::RangePartitioner<Record> one(1);
    const auto part1 = one.partition(input);
    EXPECT_EQ(part1.data, input);
    EXPECT_DOUBLE_EQ(part1.skew, 1.0);

    // Fewer records than ranges: identity.
    sorter::RangePartitioner<Record> wide(256);
    const auto part2 = wide.partition(input);
    EXPECT_EQ(part2.data, input);
}

TEST(RangePartitioner, AllEqualKeysCollapseToOneRange)
{
    const auto input = makeRecords(10'000, Distribution::AllEqual);
    sorter::RangePartitioner<Record> partitioner(8);
    const auto part = partitioner.partition(input);
    // Everything lands in one range; skew = ranges.
    std::uint64_t biggest = 0;
    for (unsigned r = 0; r < 8; ++r)
        biggest = std::max(biggest, part.rangeSize(r));
    EXPECT_EQ(biggest, input.size());
    EXPECT_NEAR(part.skew, 8.0, 1e-9);
}

} // namespace
} // namespace bonsai
