/** @file Unit tests for the stage-level streaming simulator. */

#include <gtest/gtest.h>

#include "model/perf_model.hpp"
#include "sorter/stage_sim.hpp"

namespace bonsai
{
namespace
{

sorter::StageSimulator::Options
options(std::uint64_t n, unsigned p, unsigned ell, unsigned unroll = 1)
{
    sorter::StageSimulator::Options o;
    o.config = amt::AmtConfig{p, ell, unroll, 1};
    o.array = {n, 4};
    o.frequencyHz = 250e6;
    o.betaDram = 32e9;
    o.presortRun = 16;
    return o;
}

model::BonsaiInputs
modelInputs(std::uint64_t n)
{
    model::BonsaiInputs in;
    in.array = {n, 4};
    in.hw.betaDram = 32e9;
    return in;
}

TEST(StageSim, StageCountMatchesModel)
{
    for (std::uint64_t n : {1ULL << 20, 1ULL << 28, 1ULL << 32}) {
        for (unsigned ell : {4u, 16u, 64u, 256u}) {
            const auto result =
                sorter::StageSimulator(options(n, 32, ell)).run();
            EXPECT_EQ(result.stages, model::mergeStages(n, ell, 16))
                << "n=" << n << " ell=" << ell;
        }
    }
}

TEST(StageSim, WithinTenPercentOfEquation1AtScale)
{
    // 512 MB - 16 GB of 32-bit records (the Figure 8/9 range): the
    // streaming simulation must sit within 10% of the closed-form
    // model (the paper's measured-vs-model bound).
    for (std::uint64_t bytes :
         {512 * kMB, 1 * kGB, 4 * kGB, 16 * kGB}) {
        const std::uint64_t n = bytes / 4;
        for (unsigned p : {8u, 16u, 32u}) {
            for (unsigned ell : {64u, 256u}) {
                const auto sim =
                    sorter::StageSimulator(options(n, p, ell)).run();
                const auto eq1 = model::latencyEstimate(
                    modelInputs(n), amt::AmtConfig{p, ell, 1, 1});
                EXPECT_NEAR(sim.totalSeconds, eq1.latencySeconds,
                            0.10 * eq1.latencySeconds)
                    << "bytes=" << bytes << " p=" << p
                    << " ell=" << ell;
            }
        }
    }
}

TEST(StageSim, FlushOverheadVisibleForSmallArrays)
{
    // For small arrays the per-group flush makes the simulated time
    // strictly exceed the ideal streaming time.
    const std::uint64_t n = 1 << 16;
    const auto sim = sorter::StageSimulator(options(n, 32, 16)).run();
    const auto eq1 = model::latencyEstimate(
        modelInputs(n), amt::AmtConfig{32, 16, 1, 1});
    EXPECT_GT(sim.totalSeconds, eq1.latencySeconds);
}

TEST(StageSim, UnrollingSpeedsUpUntilBandwidthBound)
{
    const std::uint64_t n = (4 * kGB) / 4;
    sorter::StageSimulator::Options o8 = options(n, 8, 16, 1);
    sorter::StageSimulator::Options o8x4 = options(n, 8, 16, 4);
    const double t1 = sorter::StageSimulator(o8).run().totalSeconds;
    const double t4 = sorter::StageSimulator(o8x4).run().totalSeconds;
    // 4 trees at 8 GB/s each exactly consume the 32 GB/s DRAM:
    // at-least-linear speedup (per-tree stage counts also shrink).
    EXPECT_GE(t1 / t4, 3.5);
    EXPECT_LE(t1 / t4, 5.5);
    // 16 trees would need 128 GB/s: bandwidth-bound, little gain.
    sorter::StageSimulator::Options o8x16 = options(n, 8, 16, 16);
    const double t16 = sorter::StageSimulator(o8x16).run().totalSeconds;
    EXPECT_GT(t4 / t16, 0.8);
    EXPECT_LT(t4 / t16, 1.6);
}

TEST(StageSim, HbmHalvingScheduleAddsCombineStages)
{
    // 16 unrolled ell = 2 trees: log2(16) = 4 combining stages after
    // the regional sort (Section IV-B).
    const std::uint64_t n = (1 * kGB) / 4;
    sorter::StageSimulator::Options o = options(n, 32, 2, 16);
    o.rangePartitioned = false; // address-range mode (Section IV-B)
    const auto unrolled = sorter::StageSimulator(o).run();
    const std::uint64_t regional =
        model::mergeStages(n / 16, 2, 16);
    EXPECT_EQ(unrolled.stages, regional + 4);
}

TEST(StageSim, BytesMovedCountsBothDirectionsPerStage)
{
    const std::uint64_t n = 1 << 20;
    const auto result = sorter::StageSimulator(options(n, 32, 64)).run();
    EXPECT_EQ(result.bytesMoved,
              2ULL * n * 4 * result.stages);
}

} // namespace
} // namespace bonsai
