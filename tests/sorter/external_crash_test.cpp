/** @file
 * Crash-consistency tests for the durable out-of-core sort: a
 * fork-based harness sweeps _exit(137) crash points across phase-1
 * spills, the manifest-commit window (temp write + fdatasync), group
 * merges and resume read-back, then resumes each crashed job
 * in-process and asserts the output is byte-identical to an
 * uninterrupted run — with the resume telemetry proving committed
 * work was actually skipped.  The corruption half of the suite checks
 * the other promise: a torn, tampered or mismatched checkpoint is
 * never silently resumed — ResumeOrFresh restarts loudly, ResumeStrict
 * fails with the validation reason.
 *
 * Fork discipline: the parent only forks between sorts (no live
 * pools), children never return through gtest — they _exit.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/random.hpp"
#include "common/record.hpp"
#include "io/byte_io.hpp"
#include "io/fault_injection.hpp"
#include "io/manifest.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/checkpoint.hpp"
#include "sorter/external.hpp"

namespace bonsai::sorter
{
namespace
{

/** Same geometry as the fault tests: 24 chunks of 1000 records,
 *  4-way merges — two non-final passes (24 -> 6 -> 2) plus the final
 *  2-way splitter pass, so every journaled phase has crash points. */
StreamEngine<Record>::Options
crashOptions(unsigned threads)
{
    StreamEngine<Record>::Options opt;
    opt.phase1Ell = 4;
    opt.phase2Ell = 4;
    opt.presortRun = 16;
    opt.chunkRecords = 1000;
    opt.batchRecords = 128;
    opt.bufferBudgetBytes = 64 * 128 * sizeof(Record);
    opt.threads = threads;
    return opt;
}

io::RetryPolicy
fastRetries()
{
    io::RetryPolicy r;
    r.backoffBaseMicros = 1;
    return r;
}

/** Job directory scoped to one test, artifacts removed on exit. */
class JobDir
{
  public:
    explicit JobDir(const std::string &name)
        : dir_(::testing::TempDir() + name)
    {
        io::createDirectories(dir_);
    }
    ~JobDir()
    {
        io::removeJobArtifacts(dir_);
        ::rmdir(dir_.c_str());
    }
    const std::string &str() const { return dir_; }

  private:
    std::string dir_;
};

/** The ground truth: the classic (non-durable) streamed sort. */
std::vector<Record>
referenceSort(const std::vector<Record> &data, unsigned threads)
{
    io::MemorySource<Record> source{std::span<const Record>(data)};
    std::vector<Record> out;
    out.reserve(data.size());
    io::MemorySink<Record> sink(out);
    io::FileRunStore<Record> front;
    io::FileRunStore<Record> back;
    StreamEngine<Record>(crashOptions(threads))
        .sortStream(source, sink, front, back);
    return out;
}

/** One durable attempt against @p dir; source and sink recreated per
 *  attempt, exactly as the resume contract requires. */
std::vector<Record>
durableSort(const std::vector<Record> &data, unsigned threads,
            const std::string &dir, ResumePolicy policy,
            StreamStats *stats = nullptr,
            const std::shared_ptr<io::FaultPolicy> &policy_io = nullptr)
{
    io::MemorySource<Record> source{std::span<const Record>(data)};
    std::vector<Record> out;
    out.reserve(data.size());
    io::MemorySink<Record> sink(out);
    typename StreamEngine<Record>::DurableOptions durable;
    durable.dir = dir;
    durable.policy = policy;
    durable.faultPolicy = policy_io;
    durable.retryPolicy = fastRetries();
    const StreamStats s =
        StreamEngine<Record>(crashOptions(threads))
            .sortStreamDurable(source, sink, durable);
    if (stats)
        *stats = s;
    return out;
}

/** Child body of one crash-sweep cell: run the durable sort with a
 *  crash point armed and never return through gtest. */
[[noreturn]] void
crashChild(const std::vector<Record> &data, unsigned threads,
           const std::string &dir, const io::FaultPlan &plan)
{
    try {
        durableSort(data, threads, dir, ResumePolicy::ResumeOrFresh,
                    nullptr,
                    std::make_shared<io::FaultInjector>(plan));
        ::_exit(42); // crash point beyond this run's attempts
    } catch (...) {
        ::_exit(99); // a crash seam must kill, not throw
    }
}

/** Total I/O attempts of one uninterrupted durable run, for sizing
 *  the sweep (deterministic in the geometry, not the thread count). */
struct AttemptTotals
{
    std::uint64_t writes = 0;
    std::uint64_t syncs = 0;
    std::uint64_t reads = 0;
};

AttemptTotals
countAttempts(const std::vector<Record> &data, unsigned threads)
{
    JobDir job("crash_counting_job/");
    auto injector =
        std::make_shared<io::FaultInjector>(io::FaultPlan{});
    durableSort(data, threads, job.str(),
                ResumePolicy::ResumeOrFresh, nullptr, injector);
    return {injector->writeAttempts(), injector->syncAttempts(),
            injector->readAttempts()};
}

TEST(StreamEngineCrash, UninterruptedDurableRunMatchesClassicSort)
{
    const auto data = makeRecords(24'000, Distribution::UniformRandom);
    const auto reference = referenceSort(data, 1);
    for (const unsigned threads : {1u, 4u}) {
        JobDir job("crash_clean_job/");
        StreamStats stats;
        const auto out = durableSort(data, threads, job.str(),
                                     ResumePolicy::ResumeOrFresh,
                                     &stats);
        EXPECT_EQ(out, reference);
        // One commit per chunk plus one per non-final pass; the
        // final splitter pass (counted in mergePasses) is never
        // journaled.
        ASSERT_GE(stats.mergePasses, 2u);
        EXPECT_EQ(stats.manifestCommits,
                  24u + (stats.mergePasses - 1));
        EXPECT_EQ(stats.resumedChunks, 0u);
        EXPECT_EQ(stats.resumedPasses, 0u);
        EXPECT_EQ(stats.resumeFallback, "");
        // Artifacts persist past success; the directory owner (the
        // file_sorter tool) deletes them, not the engine.
        EXPECT_TRUE(io::fileExists(io::manifestPath(job.str())));
    }
}

TEST(StreamEngineCrash, ResumingACompletedJobSkipsAllJournaledWork)
{
    const auto data = makeRecords(24'000, Distribution::UniformRandom);
    const auto reference = referenceSort(data, 1);
    JobDir job("crash_completed_job/");
    durableSort(data, 1, job.str(), ResumePolicy::ResumeOrFresh);

    // Second invocation: everything journaled is adopted, only the
    // (never-journaled) final pass is redone.
    StreamStats stats;
    const auto out = durableSort(data, 4, job.str(),
                                 ResumePolicy::ResumeStrict, &stats);
    EXPECT_EQ(out, reference);
    EXPECT_EQ(stats.resumedChunks, 24u);
    EXPECT_GT(stats.resumedPasses, 0u);
    EXPECT_EQ(stats.manifestCommits, 0u);
    EXPECT_EQ(stats.phase1Chunks, 24u);
}

TEST(StreamEngineCrash, CrashSweepResumesByteIdentically)
{
    const auto data = makeRecords(24'000, Distribution::UniformRandom);
    const auto reference = referenceSort(data, 1);
    const AttemptTotals totals = countAttempts(data, 1);
    ASSERT_GT(totals.writes, 0u);
    ASSERT_GT(totals.syncs, 0u);
    ASSERT_GT(totals.reads, 0u);

    // Crash points spread across the whole attempt space: early and
    // late phase-1 spills, the manifest-commit window (every commit
    // is one temp-file write + one fdatasync, so both write- and
    // sync-indexed points land inside it), the group merges near the
    // end of the write sequence, and the checksum read-back.
    struct Point
    {
        io::FaultPlan plan;
        const char *what;
    };
    std::vector<Point> points;
    for (const std::uint64_t frac : {1u, 4u, 8u, 12u, 15u}) {
        io::FaultPlan p;
        p.crashOnWriteAttempt =
            std::max<std::uint64_t>(1, totals.writes * frac / 16);
        points.push_back({p, "write"});
    }
    for (const std::uint64_t frac : {1u, 8u, 15u}) {
        io::FaultPlan p;
        p.crashOnSyncAttempt =
            std::max<std::uint64_t>(1, totals.syncs * frac / 16);
        points.push_back({p, "sync"});
    }
    {
        io::FaultPlan p;
        p.crashOnReadAttempt =
            std::max<std::uint64_t>(1, totals.reads / 2);
        points.push_back({p, "read"});
    }

    for (const unsigned threads : {1u, 4u}) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            SCOPED_TRACE(std::string("crash point ") +
                         points[i].what + " #" + std::to_string(i) +
                         ", threads " + std::to_string(threads));
            JobDir job("crash_sweep_job_" + std::to_string(threads) +
                       "_" + std::to_string(i) + "/");

            const pid_t pid = ::fork();
            ASSERT_GE(pid, 0);
            if (pid == 0)
                crashChild(data, threads, job.str(), points[i].plan);
            int status = 0;
            ASSERT_EQ(::waitpid(pid, &status, 0), pid);
            ASSERT_TRUE(WIFEXITED(status));
            const int code = WEXITSTATUS(status);
            ASSERT_TRUE(code == 137 || code == 42)
                << "child exited " << code;

            // Whether the manifest survived decides what the resume
            // may claim, not whether it must succeed.
            const bool committed =
                io::loadManifest(job.str()).status ==
                io::ManifestStatus::Ok;

            StreamStats stats;
            const auto out =
                durableSort(data, threads, job.str(),
                            ResumePolicy::ResumeOrFresh, &stats);
            EXPECT_EQ(out, reference);
            if (committed) {
                // Any committed manifest records real work (the
                // first commit happens after the first chunk).
                EXPECT_GT(stats.resumedChunks + stats.resumedPasses,
                          0u);
                EXPECT_EQ(stats.resumeFallback, "");
            }
        }
    }
}

TEST(StreamEngineCrash, CorruptManifestFallsBackFreshButLoudly)
{
    const auto data = makeRecords(24'000, Distribution::UniformRandom);
    const auto reference = referenceSort(data, 1);
    JobDir job("crash_corrupt_job/");
    durableSort(data, 1, job.str(), ResumePolicy::ResumeOrFresh);

    // Flip a body byte: CRC catches it, resume restarts fresh and
    // says why.
    {
        io::ByteFile f = io::ByteFile::openReadWrite(
            io::manifestPath(job.str()));
        unsigned char b = 0;
        f.readAt(30, &b, 1, "test read");
        b ^= 0x10u;
        f.writeAt(30, &b, 1, "test corrupt");
    }
    StreamStats stats;
    const auto out = durableSort(data, 1, job.str(),
                                 ResumePolicy::ResumeOrFresh, &stats);
    EXPECT_EQ(out, reference);
    EXPECT_EQ(stats.resumedChunks + stats.resumedPasses, 0u);
    EXPECT_NE(stats.resumeFallback.find("checksum"),
              std::string::npos)
        << stats.resumeFallback;
}

TEST(StreamEngineCrash, CorruptManifestFailsAStrictResume)
{
    const auto data = makeRecords(24'000, Distribution::UniformRandom);
    JobDir job("crash_strict_job/");
    durableSort(data, 1, job.str(), ResumePolicy::ResumeOrFresh);
    {
        io::ByteFile f = io::ByteFile::openReadWrite(
            io::manifestPath(job.str()));
        unsigned char b = 0;
        f.readAt(30, &b, 1, "test read");
        b ^= 0x10u;
        f.writeAt(30, &b, 1, "test corrupt");
    }

    std::string msg;
    try {
        durableSort(data, 1, job.str(), ResumePolicy::ResumeStrict);
    } catch (const std::runtime_error &e) {
        msg = e.what();
    }
    EXPECT_NE(msg.find("cannot resume"), std::string::npos) << msg;
    EXPECT_NE(msg.find("checksum"), std::string::npos) << msg;
}

TEST(StreamEngineCrash, ParameterDriftRefusesTheCheckpoint)
{
    const auto data = makeRecords(24'000, Distribution::UniformRandom);
    JobDir job("crash_params_job/");
    durableSort(data, 1, job.str(), ResumePolicy::ResumeOrFresh);

    // Same job directory, different chunk geometry: the echo check
    // must name the drifted parameter before any run data is read.
    io::MemorySource<Record> source{std::span<const Record>(data)};
    std::vector<Record> out;
    io::MemorySink<Record> sink(out);
    auto opt = crashOptions(1);
    opt.chunkRecords = 2000;
    typename StreamEngine<Record>::DurableOptions durable;
    durable.dir = job.str();
    durable.policy = ResumePolicy::ResumeStrict;
    std::string msg;
    try {
        StreamEngine<Record>(opt).sortStreamDurable(source, sink,
                                                    durable);
    } catch (const std::runtime_error &e) {
        msg = e.what();
    }
    EXPECT_NE(msg.find("parameter mismatch"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("chunk records"), std::string::npos) << msg;
}

TEST(StreamEngineCrash, TamperedRunDataIsCaughtByReadBack)
{
    const auto data = makeRecords(24'000, Distribution::UniformRandom);
    const auto reference = referenceSort(data, 1);
    JobDir job("crash_tamper_job/");
    durableSort(data, 1, job.str(), ResumePolicy::ResumeOrFresh);

    // Flip one byte inside the first recorded run of the live store:
    // the manifest itself is intact, only the data checksum can tell.
    const io::ManifestLoadResult m = io::loadManifest(job.str());
    ASSERT_EQ(m.status, io::ManifestStatus::Ok) << m.error;
    ASSERT_FALSE(m.manifest.runs.empty());
    const std::string store_path =
        job.str() + "/" +
        (m.manifest.currentStore == 0 ? io::kFrontStoreFileName
                                      : io::kBackStoreFileName);
    {
        io::ByteFile f = io::ByteFile::openReadWrite(store_path);
        const std::uint64_t at =
            m.manifest.runs[0].offset * sizeof(Record) + 5;
        unsigned char b = 0;
        f.readAt(at, &b, 1, "test read");
        b ^= 0x01u;
        f.writeAt(at, &b, 1, "test tamper");
    }

    StreamStats stats;
    const auto out = durableSort(data, 1, job.str(),
                                 ResumePolicy::ResumeOrFresh, &stats);
    EXPECT_EQ(out, reference);
    EXPECT_EQ(stats.resumedChunks + stats.resumedPasses, 0u);
    EXPECT_NE(stats.resumeFallback.find(
                  "checksum mismatch for recorded run"),
              std::string::npos)
        << stats.resumeFallback;
}

TEST(StreamEngineCrash, FreshStartDeletesOrphanSpills)
{
    // Orphans from a newer aborted attempt — spill files and a torn
    // temp manifest but no committed manifest — must not survive
    // into a fresh job.
    JobDir job("crash_orphan_job/");
    for (const char *name :
         {io::kManifestTempFileName, io::kFrontStoreFileName,
          io::kBackStoreFileName}) {
        io::ByteFile f = io::ByteFile::create(job.str() + "/" + name);
        const char junk[32] = "orphaned by an aborted attempt";
        f.writeAt(0, junk, sizeof(junk), "test orphan");
    }

    typename Checkpointer<Record>::Config cfg;
    cfg.dir = job.str();
    cfg.policy = ResumePolicy::ResumeOrFresh;
    cfg.params.recordBytes = sizeof(Record);
    cfg.params.recordsIn = 1000;
    cfg.params.chunkRecords = 100;
    Checkpointer<Record> ckpt(cfg);

    EXPECT_FALSE(ckpt.resumed());
    EXPECT_EQ(ckpt.fallbackReason(), ""); // NotFound is not a fallback
    EXPECT_FALSE(io::fileExists(job.str() + "/" +
                                io::kManifestTempFileName));
    // The stores were recreated empty, not adopted.
    EXPECT_EQ(ckpt.front().sizeBytes(), 0u);
    EXPECT_EQ(ckpt.back().sizeBytes(), 0u);
}

} // namespace
} // namespace bonsai::sorter
