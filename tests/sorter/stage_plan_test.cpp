/** @file Unit tests for the shared stage planner. */

#include <gtest/gtest.h>

#include "sorter/stage_plan.hpp"

namespace bonsai
{
namespace
{

TEST(StagePlan, GroupCountIsCeilRunsOverEll)
{
    sorter::StagePlan plan(chunkRuns(100, 10), 4); // 10 runs, ell 4
    EXPECT_EQ(plan.groups(), 3u);
}

TEST(StagePlan, LeavesOwnContiguousRunBlocks)
{
    // 8 runs of 4 records, ell = 4 -> G = 2; leaf j owns runs
    // [2j, 2j+2).
    sorter::StagePlan plan(chunkRuns(32, 4), 4);
    ASSERT_EQ(plan.groups(), 2u);
    for (unsigned j = 0; j < 4; ++j) {
        const auto runs = plan.leafRuns(j);
        ASSERT_EQ(runs.size(), 2u);
        EXPECT_EQ(runs[0].offset, 8u * j);
        EXPECT_EQ(runs[1].offset, 8u * j + 4);
    }
}

TEST(StagePlan, GroupsTakeOneRunPerLeaf)
{
    sorter::StagePlan plan(chunkRuns(32, 4), 4);
    const auto g0 = plan.groupRuns(0);
    ASSERT_EQ(g0.size(), 4u);
    EXPECT_EQ(g0[0].offset, 0u);
    EXPECT_EQ(g0[1].offset, 8u);
    EXPECT_EQ(g0[2].offset, 16u);
    EXPECT_EQ(g0[3].offset, 24u);
}

TEST(StagePlan, PaddedLeavesGetEmptyRuns)
{
    // 5 runs, ell = 4 -> G = 2; leaves 2..3 are partially/fully empty.
    sorter::StagePlan plan(chunkRuns(50, 10), 4);
    ASSERT_EQ(plan.groups(), 2u);
    const auto leaf3 = plan.leafRuns(3);
    ASSERT_EQ(leaf3.size(), 2u);
    EXPECT_EQ(leaf3[0].length, 0u);
    EXPECT_EQ(leaf3[1].length, 0u);
}

TEST(StagePlan, OutputRunsAreSequentialAndConserveRecords)
{
    sorter::StagePlan plan(chunkRuns(103, 7), 4, 200);
    const auto out = plan.outputRuns();
    ASSERT_EQ(out.size(), plan.groups());
    std::uint64_t expect_offset = 200;
    std::uint64_t total = 0;
    for (const RunSpan &run : out) {
        EXPECT_EQ(run.offset, expect_offset);
        expect_offset += run.length;
        total += run.length;
    }
    EXPECT_EQ(total, 103u);
    EXPECT_EQ(plan.totalRecords(), 103u);
}

TEST(StagePlan, SingleRunPassThrough)
{
    sorter::StagePlan plan({RunSpan{0, 42}}, 8);
    EXPECT_EQ(plan.groups(), 1u);
    const auto out = plan.outputRuns();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].length, 42u);
}

TEST(StagePlan, EmptyRunListTerminates)
{
    // Regression: spreadStride() looped forever on an empty run list
    // (2 * stride * 0 <= ell never fails), hanging leafRuns() for any
    // plan built from zero runs.
    sorter::StagePlan plan({}, 8);
    EXPECT_EQ(plan.groups(), 1u);
    EXPECT_EQ(plan.spreadStride(), 1u);
    for (unsigned j = 0; j < 8; ++j) {
        const auto runs = plan.leafRuns(j);
        ASSERT_EQ(runs.size(), 1u);
        EXPECT_EQ(runs[0].length, 0u);
    }
    EXPECT_TRUE(plan.groupRuns(0).empty());
    const auto out = plan.outputRuns();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].length, 0u);
    EXPECT_EQ(plan.totalRecords(), 0u);
}

TEST(StagePlan, EveryInputRunAppearsInExactlyOneGroup)
{
    const auto runs = chunkRuns(1000, 13); // 77 runs
    sorter::StagePlan plan(runs, 16);
    std::vector<int> seen(runs.size(), 0);
    for (std::uint64_t g = 0; g < plan.groups(); ++g) {
        for (const RunSpan &run : plan.groupRuns(g)) {
            for (std::size_t i = 0; i < runs.size(); ++i) {
                if (runs[i] == run)
                    ++seen[i];
            }
        }
    }
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "run " << i;
}

} // namespace
} // namespace bonsai
