/** @file Unit tests for the out-of-core streaming sort engine. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/contract.hpp"
#include "common/random.hpp"
#include "common/record.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/external.hpp"

namespace bonsai::sorter
{
namespace
{

/** Small engine: 1000-record chunks, 4-way merges, 128-record batches
 *  with a budget comfortably above 2*ell + 2 buffers. */
StreamEngine<Record>::Options
smallOptions()
{
    StreamEngine<Record>::Options opt;
    opt.phase1Ell = 4;
    opt.phase2Ell = 4;
    opt.presortRun = 16;
    opt.chunkRecords = 1000;
    opt.batchRecords = 128;
    opt.bufferBudgetBytes = 64 * 128 * sizeof(Record);
    opt.threads = 2;
    return opt;
}

std::vector<Record>
streamSort(const StreamEngine<Record> &engine,
           const std::vector<Record> &data, StreamStats *stats = nullptr)
{
    io::MemorySource<Record> source{std::span<const Record>(data)};
    std::vector<Record> out;
    out.reserve(data.size());
    io::MemorySink<Record> sink(out);
    io::FileRunStore<Record> front;
    io::FileRunStore<Record> back;
    const StreamStats s = engine.sortStream(source, sink, front, back);
    if (stats)
        *stats = s;
    return out;
}

TEST(StreamEngine, SortInPlaceMatchesStdSort)
{
    auto data = makeRecords(20'000, Distribution::UniformRandom);
    auto expected = data;
    std::sort(expected.begin(), expected.end(),
              [](const Record &a, const Record &b) {
                  return a.key < b.key ||
                      (a.key == b.key && a.value < b.value);
              });

    const StreamEngine<Record> engine(smallOptions());
    const StreamStats stats = engine.sortInPlace(data);
    EXPECT_EQ(data, expected);
    EXPECT_EQ(stats.recordsIn, 20'000u);
    EXPECT_EQ(stats.phase1Chunks, 20u); // ceil(20000 / 1000)
    EXPECT_GT(stats.mergePasses, 0u);
    EXPECT_GT(stats.phase1RecordsMoved, 0u);
    EXPECT_GT(stats.recordsMoved, stats.phase1RecordsMoved);
}

TEST(StreamEngine, StreamedOutputIsByteIdenticalToInPlace)
{
    // FewDistinct floods the merge with equal keys; values carry the
    // original index, so equality of the full record sequences proves
    // the streamed cursors follow the exact augmented merge order of
    // the in-memory Merge Path kernel — not just "both are sorted".
    auto in_place = makeRecords(30'000, Distribution::FewDistinct);
    const auto original = in_place;

    const StreamEngine<Record> engine(smallOptions());
    engine.sortInPlace(in_place);

    StreamStats stats;
    const auto streamed = streamSort(engine, original, &stats);
    EXPECT_EQ(streamed, in_place);

    // 30 chunk runs at fan-in 4 need 3 passes (30 -> 8 -> 2 -> 1);
    // phase 1 spills n records, every non-final pass another n, and
    // every pass reads n back.  Writes are exact for any thread
    // count; reads gain a little splitter-probe traffic when the
    // final pass runs sliced, so they are only bounded here (the
    // serial engine's reads are exact — see the accounting test).
    EXPECT_EQ(stats.effectiveEll, 4u);
    EXPECT_EQ(stats.mergePasses, 3u);
    const std::uint64_t n_bytes = 30'000u * sizeof(Record);
    EXPECT_EQ(stats.spillBytesWritten, n_bytes * stats.mergePasses);
    EXPECT_GE(stats.spillBytesRead, n_bytes * stats.mergePasses);
    EXPECT_LT(stats.spillBytesRead,
              n_bytes * stats.mergePasses + n_bytes / 10);
}

TEST(StreamEngine, SerialStreamSpillAccountingIsExact)
{
    // threads = 1 forces one lane and a serial final pass: no
    // splitter probes, so spill traffic is exactly one full round
    // trip per merge pass.
    auto opt = smallOptions();
    opt.threads = 1;
    const StreamEngine<Record> engine(opt);

    const auto data = makeRecords(30'000, Distribution::FewDistinct);
    StreamStats stats;
    streamSort(engine, data, &stats);
    EXPECT_EQ(stats.concurrentGroups, 1u);
    EXPECT_EQ(stats.finalSlices, 1u);
    EXPECT_EQ(stats.mergePasses, 3u);
    const std::uint64_t n_bytes = 30'000u * sizeof(Record);
    EXPECT_EQ(stats.spillBytesWritten, n_bytes * stats.mergePasses);
    EXPECT_EQ(stats.spillBytesRead, n_bytes * stats.mergePasses);
}

/** Heavy skew: 90% of the keys collide on one hot value, the rest
 *  rise monotonically — adversarial for splitter balance. */
std::vector<Record>
makeSkewedRecords(std::uint64_t n)
{
    std::vector<Record> data(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t key = (i % 10 != 0) ? 5 : 5 + i;
        data[i] = Record{key, i};
    }
    return data;
}

TEST(StreamEngine, ParallelStreamIsByteIdenticalAcrossThreadCounts)
{
    // The tentpole invariant: the streamed sort emits the identical
    // byte sequence for any thread count — concurrent non-final
    // groups and the splitter-partitioned final pass included —
    // even under equal-key floods where only the augmented (key,
    // run index, position) order disambiguates.
    std::vector<std::vector<Record>> inputs;
    inputs.push_back(makeRecords(30'000, Distribution::FewDistinct));
    inputs.push_back(makeRecords(30'000, Distribution::AllEqual));
    inputs.push_back(makeRecords(30'000, Distribution::UniformRandom));
    inputs.push_back(makeSkewedRecords(30'000));

    for (const auto &data : inputs) {
        auto in_place = data;
        auto opt = smallOptions();
        opt.threads = 1;
        StreamEngine<Record>(opt).sortInPlace(in_place);

        for (const unsigned threads : {1u, 2u, 8u}) {
            opt.threads = threads;
            const StreamEngine<Record> engine(opt);
            StreamStats stats;
            const auto streamed = streamSort(engine, data, &stats);
            ASSERT_EQ(streamed, in_place)
                << "thread count " << threads
                << " changed the output bytes";
            if (threads >= 2) {
                EXPECT_GE(stats.concurrentGroups, 2u);
                EXPECT_GE(stats.finalSlices, 2u);
            }
        }
    }
}

TEST(StreamEngine, SingletonGroupIsBatchCopiedNotMerged)
{
    // 3 runs at fan-in 2 leave a 1-member group; the bypass must
    // batch-copy it with the same moved-records accounting as the
    // in-place backend (which charges every pass its full total).
    auto opt = smallOptions();
    opt.phase2Ell = 2;
    const StreamEngine<Record> engine(opt);

    const auto data = makeRecords(3'000, Distribution::UniformRandom);
    auto in_place = data;
    const StreamStats mem = engine.sortInPlace(in_place);

    StreamStats stats;
    const auto streamed = streamSort(engine, data, &stats);
    EXPECT_EQ(streamed, in_place);
    EXPECT_EQ(stats.phase1Chunks, 3u);
    EXPECT_EQ(stats.mergePasses, 2u); // 3 -> 2 -> 1
    EXPECT_EQ(stats.recordsMoved, mem.recordsMoved);
}

TEST(StreamEngine, BudgetAdmittingOneLaneFallsBackToSerial)
{
    // 10 buffers hold exactly one fan-in-4 lane (2*4 + 2); the shape
    // derivation must admit a single lane no matter how many threads
    // were requested, and the output must not change.
    auto opt = smallOptions();
    opt.bufferBudgetBytes = 10 * opt.batchRecords * sizeof(Record);
    opt.threads = 8;
    const StreamEngine<Record> engine(opt);

    const auto data = makeRecords(20'000, Distribution::FewDistinct);
    auto in_place = data;
    engine.sortInPlace(in_place);

    StreamStats stats;
    const auto streamed = streamSort(engine, data, &stats);
    EXPECT_EQ(streamed, in_place);
    EXPECT_EQ(stats.effectiveEll, 4u);
    EXPECT_EQ(stats.concurrentGroups, 1u);
    EXPECT_EQ(stats.finalSlices, 1u);
}

TEST(StreamEngine, PoolPeakStaysWithinTheBudget)
{
    auto opt = smallOptions();
    opt.threads = 8;
    const StreamEngine<Record> engine(opt);
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    StreamStats stats;
    streamSort(engine, data, &stats);
    EXPECT_GT(stats.bufferPoolPeakBytes, 0u);
    EXPECT_LE(stats.bufferPoolPeakBytes, stats.bufferPoolBytes);
}

TEST(StreamEngine, InPlaceAndStreamedReportUnifiedTelemetry)
{
    // The in-memory adapter must fill the same telemetry fields the
    // streamed path does, so benches compare backends like for like.
    const auto opt = smallOptions();
    const StreamEngine<Record> engine(opt);

    auto data = makeRecords(10'000, Distribution::UniformRandom);
    const StreamStats mem = engine.sortInPlace(data);
    StreamStats streamed;
    streamSort(engine, makeRecords(10'000, Distribution::UniformRandom),
               &streamed);

    EXPECT_EQ(mem.batchRecords, opt.batchRecords);
    EXPECT_EQ(mem.batchRecords, streamed.batchRecords);
    EXPECT_EQ(mem.bufferPoolBytes, streamed.bufferPoolBytes);
    EXPECT_GT(mem.bufferPoolBytes, 0u);
    EXPECT_GT(mem.effectiveEll, 0u);
    EXPECT_GT(mem.concurrentGroups, 0u);
    EXPECT_GT(mem.finalSlices, 0u);
}

TEST(StreamEngine, EmptySourceProducesEmptyOutput)
{
    const StreamEngine<Record> engine(smallOptions());
    StreamStats stats;
    const auto out = streamSort(engine, {}, &stats);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(stats.recordsIn, 0u);
    EXPECT_EQ(stats.mergePasses, 0u);
    EXPECT_EQ(stats.spillBytesWritten, 0u);
}

TEST(StreamEngine, SingleRunStreamsStraightToTheSink)
{
    // Fewer records than one chunk: phase 1 produces a single run and
    // the one merge "pass" is a streamed copy into the sink.
    const auto data = makeRecords(500, Distribution::Reverse);
    const StreamEngine<Record> engine(smallOptions());
    StreamStats stats;
    const auto out = streamSort(engine, data, &stats);

    auto expected = data;
    engine.sortInPlace(expected);
    EXPECT_EQ(out, expected);
    EXPECT_EQ(stats.phase1Chunks, 1u);
    EXPECT_EQ(stats.mergePasses, 1u);
}

TEST(StreamEngine, RunCountExactlyEllMergesInOnePass)
{
    const auto data = makeRecords(4000, Distribution::UniformRandom);
    const StreamEngine<Record> engine(smallOptions());
    StreamStats stats;
    const auto out = streamSort(engine, data, &stats);

    auto expected = data;
    engine.sortInPlace(expected);
    EXPECT_EQ(out, expected);
    EXPECT_EQ(stats.phase1Chunks, 4u); // exactly ell runs
    EXPECT_EQ(stats.mergePasses, 1u);  // one group, straight to sink
}

TEST(StreamEngine, FanInIsCappedByTheBufferBudget)
{
    auto opt = smallOptions();
    opt.phase2Ell = 16;
    // Room for exactly 10 buffers: 2 for write-back, 2 per cursor ->
    // fan-in 4 despite the requested 16.
    opt.bufferBudgetBytes = 10 * opt.batchRecords * sizeof(Record);
    const StreamEngine<Record> engine(opt);

    const auto data = makeRecords(20'000, Distribution::UniformRandom);
    StreamStats stats;
    const auto out = streamSort(engine, data, &stats);
    EXPECT_EQ(stats.effectiveEll, 4u);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end(),
                               [](const Record &a, const Record &b) {
                                   return a.key < b.key;
                               }));
    EXPECT_EQ(out.size(), data.size());
}

TEST(StreamEngine, BudgetSmallerThanOneBatchFailsLoudly)
{
    auto opt = smallOptions();
    opt.batchRecords = 4096;
    opt.bufferBudgetBytes = 1024; // less than one batch buffer
    const StreamEngine<Record> engine(opt);
    const auto data = makeRecords(100, Distribution::UniformRandom);
    EXPECT_THROW(streamSort(engine, data), ContractViolation);
}

TEST(StreamEngine, BudgetBelowTwoWayMergeFailsLoudly)
{
    auto opt = smallOptions();
    // Five buffers fit — one short of the 2-cursor + write-back
    // minimum.  Must throw up front, not deadlock in acquire().
    opt.bufferBudgetBytes = 5 * opt.batchRecords * sizeof(Record);
    const StreamEngine<Record> engine(opt);
    const auto data = makeRecords(100, Distribution::UniformRandom);
    EXPECT_THROW(streamSort(engine, data), ContractViolation);
}

TEST(StreamEngine, TerminalRecordInTheStreamIsRejected)
{
    auto data = makeRecords(2000, Distribution::UniformRandom);
    data[1234] = Record::terminal();
    const StreamEngine<Record> engine(smallOptions());
    EXPECT_THROW(streamSort(engine, data), ContractViolation);
}

TEST(StreamEngine, SourceEndingEarlyFailsLoudly)
{
    /** A source that claims more records than it can deliver. */
    class ShortSource : public io::RecordSource<Record>
    {
      public:
        std::uint64_t totalRecords() const override { return 1000; }
        std::uint64_t
        read(Record *dst, std::uint64_t max) override
        {
            const std::uint64_t n = std::min<std::uint64_t>(
                max, left_ > 0 ? left_ : 0);
            for (std::uint64_t i = 0; i < n; ++i)
                dst[i] = Record{i + 1, i};
            left_ -= n;
            return n;
        }

      private:
        std::uint64_t left_ = 700;
    };

    ShortSource source;
    std::vector<Record> out;
    io::MemorySink<Record> sink(out);
    io::FileRunStore<Record> front;
    io::FileRunStore<Record> back;
    const StreamEngine<Record> engine(smallOptions());
    EXPECT_THROW(engine.sortStream(source, sink, front, back),
                 ContractViolation);
}

} // namespace
} // namespace bonsai::sorter
