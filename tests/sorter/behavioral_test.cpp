/** @file Unit tests for the behavioral multistage sorter. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/checks.hpp"
#include "common/gensort.hpp"
#include "common/random.hpp"
#include "model/perf_model.hpp"
#include "sorter/behavioral.hpp"

namespace bonsai
{
namespace
{

void
checkSort(std::size_t n, unsigned ell, Distribution dist,
          std::uint64_t presort = 16)
{
    auto data = makeRecords(n, dist);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    sorter::BehavioralSorter<Record> sorter(ell, presort);
    sorter.sort(data);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)))
        << "n=" << n << " ell=" << ell;
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
}

TEST(Behavioral, SortsAllDistributions)
{
    for (Distribution dist :
         {Distribution::UniformRandom, Distribution::Sorted,
          Distribution::Reverse, Distribution::AllEqual,
          Distribution::FewDistinct, Distribution::NearlySorted}) {
        checkSort(10'000, 16, dist);
    }
}

class BehavioralSizes
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(BehavioralSizes, SortsRandomInput)
{
    const auto [n, ell] = GetParam();
    checkSort(static_cast<std::size_t>(n),
              static_cast<unsigned>(ell),
              Distribution::UniformRandom);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BehavioralSizes,
    ::testing::Combine(::testing::Values(0, 1, 2, 15, 16, 17, 255,
                                         4096, 100'000),
                       ::testing::Values(2, 4, 16, 64, 256)));

TEST(Behavioral, StageCountMatchesModel)
{
    for (std::size_t n : {1000u, 65536u, 1'000'000u}) {
        for (unsigned ell : {4u, 16u, 64u}) {
            auto data =
                makeRecords(n, Distribution::UniformRandom);
            sorter::BehavioralSorter<Record> sorter(ell, 16);
            const auto stats = sorter.sort(data);
            EXPECT_EQ(stats.stages, model::mergeStages(n, ell, 16))
                << "n=" << n << " ell=" << ell;
        }
    }
}

TEST(Behavioral, NoPresortUsesSingleRecordRuns)
{
    auto data = makeRecords(512, Distribution::Reverse);
    sorter::BehavioralSorter<Record> sorter(4, 1);
    const auto stats = sorter.sort(data);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(stats.stages, model::mergeStages(512, 4, 1));
}

TEST(Behavioral, RecordsMovedIsNTimesStages)
{
    auto data = makeRecords(4096, Distribution::UniformRandom);
    sorter::BehavioralSorter<Record> sorter(16, 16);
    const auto stats = sorter.sort(data);
    EXPECT_EQ(stats.recordsMoved,
              static_cast<std::uint64_t>(4096) * stats.stages);
}

TEST(Behavioral, SortsWideGensortRecords)
{
    GensortGenerator gen(11);
    auto packed = packGensort(gen.generate(0, 20'000));
    const Fingerprint before =
        fingerprint(std::span<const Record128>(packed));
    sorter::BehavioralSorter<Record128> sorter(64, 16);
    sorter.sort(packed);
    EXPECT_TRUE(isSorted(std::span<const Record128>(packed)));
    EXPECT_EQ(before, fingerprint(std::span<const Record128>(packed)));
}

TEST(Behavioral, ParallelExecutionMatchesSerial)
{
    auto serial = makeRecords(120'000, Distribution::UniformRandom, 8);
    auto parallel = serial;
    sorter::BehavioralSorter<Record>(64, 16, 1).sort(serial);
    sorter::BehavioralSorter<Record>(64, 16, 4).sort(parallel);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i].key, parallel[i].key);
    EXPECT_TRUE(isSorted(std::span<const Record>(parallel)));
}

TEST(Behavioral, UmbrellaHeaderCompiles)
{
    // bonsai.hpp is validated by inclusion in sorters_test; here we
    // only assert the parallel path on an adversarial distribution.
    auto data = makeRecords(50'000, Distribution::AllEqual);
    sorter::BehavioralSorter<Record>(16, 16, 8).sort(data);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
}

/** Serial and threaded sorts must agree byte-for-byte (records, not
 *  just keys) and report identical statistics — the Merge Path
 *  determinism guarantee. */
void
checkThreadDeterminism(std::size_t n, unsigned ell, Distribution dist,
                       std::uint64_t presort = 16)
{
    const auto input = makeRecords(n, dist, 17);
    auto serial = input;
    const auto serial_stats =
        sorter::BehavioralSorter<Record>(ell, presort, 1).sort(serial);
    for (unsigned threads : {2u, 3u, 8u}) {
        auto parallel = input;
        const auto stats =
            sorter::BehavioralSorter<Record>(ell, presort, threads)
                .sort(parallel);
        EXPECT_EQ(stats, serial_stats) << "threads=" << threads;
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            ASSERT_EQ(parallel[i], serial[i])
                << "record " << i << " threads=" << threads;
        }
    }
    EXPECT_TRUE(isSorted(std::span<const Record>(serial)));
}

TEST(Behavioral, ThreadCountNeverChangesOutput)
{
    checkThreadDeterminism(120'000, 64, Distribution::UniformRandom);
}

TEST(Behavioral, ThreadDeterminismNonPowerOfTwoN)
{
    checkThreadDeterminism(100'003, 16, Distribution::UniformRandom);
}

TEST(Behavioral, ThreadDeterminismAllEqualKeys)
{
    // All-equal keys with distinct payloads is the adversarial case
    // for merge partitioning: any tie-break drift across slices shows
    // up as reordered payloads.
    checkThreadDeterminism(50'000, 16, Distribution::AllEqual);
}

TEST(Behavioral, ThreadDeterminismFewDistinctKeys)
{
    checkThreadDeterminism(60'000, 16, Distribution::FewDistinct);
}

TEST(Behavioral, ThreadDeterminismWithoutPresorter)
{
    checkThreadDeterminism(30'000, 16, Distribution::UniformRandom,
                           /*presort=*/1);
}

TEST(Behavioral, MatchesStdSort)
{
    auto data = makeRecords(33'333, Distribution::UniformRandom, 5);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    sorter::BehavioralSorter<Record> sorter(16, 16);
    sorter.sort(data);
    ASSERT_EQ(data.size(), expect.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(data[i].key, expect[i].key);
}

} // namespace
} // namespace bonsai
