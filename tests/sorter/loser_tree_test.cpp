/** @file Unit tests for the tournament loser tree. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"
#include "sorter/loser_tree.hpp"

namespace bonsai
{
namespace
{

std::vector<Record>
drain(sorter::LoserTree<Record> &tree)
{
    std::vector<Record> out;
    while (!tree.done())
        out.push_back(tree.pop());
    return out;
}

void
checkMerge(const std::vector<std::vector<Record>> &runs)
{
    std::vector<std::span<const Record>> spans;
    std::vector<Record> expect;
    for (const auto &run : runs) {
        spans.emplace_back(run);
        expect.insert(expect.end(), run.begin(), run.end());
    }
    std::sort(expect.begin(), expect.end());
    sorter::LoserTree<Record> tree(std::move(spans));
    const auto got = drain(tree);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].key, expect[i].key);
}

std::vector<Record>
sortedRun(std::size_t n, std::uint64_t seed)
{
    auto run = makeRecords(n, Distribution::UniformRandom, seed);
    std::sort(run.begin(), run.end());
    return run;
}

TEST(LoserTree, TwoWays)
{
    checkMerge({sortedRun(10, 1), sortedRun(13, 2)});
}

TEST(LoserTree, NonPowerOfTwoWays)
{
    checkMerge({sortedRun(5, 1), sortedRun(9, 2), sortedRun(2, 3)});
}

TEST(LoserTree, ManyWays)
{
    std::vector<std::vector<Record>> runs;
    for (int i = 0; i < 64; ++i)
        runs.push_back(sortedRun(29 + (i % 7), 100 + i));
    checkMerge(runs);
}

TEST(LoserTree, EmptyRunsAmongInputs)
{
    checkMerge({{}, sortedRun(7, 1), {}, sortedRun(3, 2), {}});
}

TEST(LoserTree, SingleInput)
{
    checkMerge({sortedRun(20, 5)});
}

TEST(LoserTree, AllEmpty)
{
    std::vector<std::span<const Record>> spans(3);
    sorter::LoserTree<Record> tree(std::move(spans));
    EXPECT_TRUE(tree.done());
}

TEST(LoserTree, DuplicateKeysAcrossRuns)
{
    std::vector<Record> a(15, Record{7, 1});
    std::vector<Record> b(9, Record{7, 2});
    std::vector<Record> c = {{5, 0}, {7, 3}, {9, 0}};
    checkMerge({a, b, c});
}

TEST(LoserTree, SkewedRunLengths)
{
    checkMerge({sortedRun(1000, 1), sortedRun(1, 2), sortedRun(1, 3),
                sortedRun(500, 4)});
}

class LoserTreeWays : public ::testing::TestWithParam<int>
{
};

TEST_P(LoserTreeWays, RandomRuns)
{
    std::vector<std::vector<Record>> runs;
    for (int i = 0; i < GetParam(); ++i)
        runs.push_back(sortedRun(50, 200 + i));
    checkMerge(runs);
}

INSTANTIATE_TEST_SUITE_P(Fanins, LoserTreeWays,
                         ::testing::Values(2, 3, 4, 7, 8, 15, 16, 31,
                                           33, 256));

} // namespace
} // namespace bonsai
