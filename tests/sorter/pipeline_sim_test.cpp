/** @file Cycle-level tests for the pipelined AMT configuration
 *  (Figure 4 / Section III-A3). */

#include <gtest/gtest.h>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "model/perf_model.hpp"
#include "sorter/pipeline_sim.hpp"

namespace bonsai
{
namespace
{

sorter::PipelineSimSorter<Record>::Options
options(unsigned p, unsigned ell, unsigned pipe,
        double io_bytes_per_cycle)
{
    sorter::PipelineSimSorter<Record>::Options o;
    o.config = amt::AmtConfig{p, ell, 1, pipe};
    o.dram.numBanks = 4;
    o.dram.bankBytesPerCycle = 32.0;
    o.io.numBanks = 1;
    o.io.bankBytesPerCycle = io_bytes_per_cycle;
    o.batchBytes = 1024;
    o.presortRun = 16;
    return o;
}

std::vector<std::vector<Record>>
makeChunks(std::size_t count, std::size_t n)
{
    std::vector<std::vector<Record>> chunks;
    for (std::size_t c = 0; c < count; ++c) {
        chunks.push_back(
            makeRecords(n, Distribution::UniformRandom, 600 + c));
    }
    return chunks;
}

TEST(PipelineSim, SortsEveryChunk)
{
    auto chunks = makeChunks(5, 8000);
    std::vector<Fingerprint> before;
    for (const auto &chunk : chunks)
        before.push_back(fingerprint(std::span<const Record>(chunk)));
    // 8000 records: runs = 500, ell = 8: 8^3 = 512 >= 500 -> 3 stages.
    sorter::PipelineSimSorter<Record> sim(options(4, 8, 3, 16.0));
    const auto stats = sim.sortChunks(chunks);
    ASSERT_TRUE(stats.completed);
    for (std::size_t c = 0; c < chunks.size(); ++c) {
        EXPECT_TRUE(isSorted(std::span<const Record>(chunks[c])))
            << "chunk " << c;
        EXPECT_EQ(before[c],
                  fingerprint(std::span<const Record>(chunks[c])));
    }
    EXPECT_EQ(stats.slots, 5u + 3 - 1);
}

TEST(PipelineSim, SingleChunkSingleStage)
{
    auto chunks = makeChunks(1, 100);
    // 100 records, runs = 7, ell = 8: one stage suffices.
    sorter::PipelineSimSorter<Record> sim(options(4, 8, 1, 16.0));
    const auto stats = sim.sortChunks(chunks);
    ASSERT_TRUE(stats.completed);
    EXPECT_TRUE(isSorted(std::span<const Record>(chunks[0])));
}

TEST(PipelineSim, ThroughputMatchesEquation3)
{
    // Configuration where the I/O bus binds: p = 4 (16 B/cycle tree),
    // DRAM share 128 B/cycle over interior stages, I/O 16 B/cycle ->
    // Equation 3 gives 16 B/cycle sustained.  With enough chunks the
    // pipeline fill amortizes and measured throughput approaches it.
    const std::size_t n = 32'000; // runs = 2000, ell = 8: 4 stages
    auto chunks = makeChunks(8, n);
    sorter::PipelineSimSorter<Record> sim(options(4, 8, 4, 16.0));
    const auto stats = sim.sortChunks(chunks);
    ASSERT_TRUE(stats.completed);
    const double bytes_per_cycle =
        static_cast<double>(stats.bytesIn) / stats.totalCycles;
    // Ideal = 16 B/cycle x (chunks / (chunks + depth - 1)) pipeline
    // occupancy = 16 * 8/11 = 11.6; allow 15% for flush/fill effects.
    EXPECT_GT(bytes_per_cycle, 11.6 * 0.85);
    EXPECT_LT(bytes_per_cycle, 16.5);
}

TEST(PipelineSim, DramShareBindsWhenPipelineDeep)
{
    // Deep pipeline: DRAM share beta/lambda binds below the bus.
    // dram 128 B/cycle over 6 interior stage-slots ~ 21 B/cycle per
    // stage; with p = 8 trees (32 B/cycle) and io = 32 B/cycle, the
    // sustained rate must stay clearly below the 32 B/cycle bus.
    const std::size_t n = 50'000; // runs=3125, ell=8: needs 4 stages
    auto chunks = makeChunks(6, n);
    sorter::PipelineSimSorter<Record> sim(options(8, 8, 4, 32.0));
    const auto stats = sim.sortChunks(chunks);
    ASSERT_TRUE(stats.completed);
    for (const auto &chunk : chunks)
        EXPECT_TRUE(isSorted(std::span<const Record>(chunk)));
    const double bytes_per_cycle =
        static_cast<double>(stats.bytesIn) / stats.totalCycles;
    EXPECT_LT(bytes_per_cycle, 32.0);
}

TEST(PipelineSim, ChunksOfUnequalSizes)
{
    std::vector<std::vector<Record>> chunks;
    for (std::size_t n : {100u, 5000u, 17u, 8000u, 1u}) {
        chunks.push_back(
            makeRecords(n, Distribution::UniformRandom, n));
    }
    sorter::PipelineSimSorter<Record> sim(options(4, 8, 3, 16.0));
    const auto stats = sim.sortChunks(chunks);
    ASSERT_TRUE(stats.completed);
    for (const auto &chunk : chunks)
        EXPECT_TRUE(isSorted(std::span<const Record>(chunk)));
}

TEST(PipelineSim, MatchesPaperPhase1Shape)
{
    // Scaled-down Figure 4: 4-deep pipeline of AMT(8, 64) with the
    // I/O bus at 32 B/cycle (8 GB/s at 250 MHz) and 4 DRAM banks.
    // 4 chunks of 64K records (256 KB each).
    const std::size_t n = 1 << 16;
    auto chunks = makeChunks(4, n);
    auto o = options(8, 64, 4, 32.0);
    const auto capacity = 16ULL * 64 * 64 * 64 * 64;
    ASSERT_GE(capacity, n); // Equation 5 satisfied
    sorter::PipelineSimSorter<Record> sim(o);
    const auto stats = sim.sortChunks(chunks);
    ASSERT_TRUE(stats.completed);
    for (const auto &chunk : chunks)
        EXPECT_TRUE(isSorted(std::span<const Record>(chunk)));
    // Sustained rate bounded by the 32 B/cycle bus, and not by much
    // less once the pipeline is full.
    const double occupancy = 4.0 / (4 + 4 - 1);
    const double bytes_per_cycle =
        static_cast<double>(stats.bytesIn) / stats.totalCycles;
    EXPECT_GT(bytes_per_cycle, 32.0 * occupancy * 0.75);
    EXPECT_LT(bytes_per_cycle, 32.5);
}

} // namespace
} // namespace bonsai
