/** @file
 * Fault-injection tests for the out-of-core streaming sort: a fault
 * in any lane — phase-1 spill, phase-2 group merge, final splitter
 * pass, or the output sink — must surface as exactly one clean
 * std::runtime_error from sortStream, with every pool buffer returned
 * (no deadlocked gate, no leak), and a transient fault that heals
 * within the retry budget must not change a single output byte.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/random.hpp"
#include "common/record.hpp"
#include "io/fault_injection.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"
#include "sorter/external.hpp"

namespace bonsai::sorter
{
namespace
{

/** Same shape as the main external tests: 1000-record chunks, 4-way
 *  merges, lanes for up to 4 threads within the budget. */
StreamEngine<Record>::Options
faultOptions(unsigned threads)
{
    StreamEngine<Record>::Options opt;
    opt.phase1Ell = 4;
    opt.phase2Ell = 4;
    opt.presortRun = 16;
    opt.chunkRecords = 1000;
    opt.batchRecords = 128;
    opt.bufferBudgetBytes = 64 * 128 * sizeof(Record);
    opt.threads = threads;
    return opt;
}

/** Retries resolve in microseconds so failure tests don't sleep. */
io::RetryPolicy
fastRetries()
{
    io::RetryPolicy r;
    r.backoffBaseMicros = 1;
    return r;
}

/** Streamed sort against caller-provided (possibly faulty) stores. */
std::vector<Record>
streamSort(const StreamEngine<Record> &engine,
           const std::vector<Record> &data,
           io::FileRunStore<Record> &front,
           io::FileRunStore<Record> &back, StreamStats *stats = nullptr)
{
    io::MemorySource<Record> source{std::span<const Record>(data)};
    std::vector<Record> out;
    out.reserve(data.size());
    io::MemorySink<Record> sink(out);
    const StreamStats s = engine.sortStream(source, sink, front, back);
    if (stats)
        *stats = s;
    return out;
}

/** Run the sort expecting a runtime_error; assert the unwind left the
 *  buffer pool whole.  Returns the error text for content checks. */
std::string
expectCleanFailure(const StreamEngine<Record> &engine,
                   const std::vector<Record> &data,
                   io::FileRunStore<Record> &front,
                   io::FileRunStore<Record> &back)
{
    std::string msg;
    try {
        streamSort(engine, data, front, back);
    } catch (const std::runtime_error &e) {
        msg = e.what();
    }
    EXPECT_FALSE(msg.empty())
        << "injected fault did not surface from sortStream";
    EXPECT_EQ(engine.lastPoolOutstanding(), 0u)
        << "buffer pool leaked buffers during the unwind";
    return msg;
}

TEST(StreamEngineFaults, HardSpillWriteErrorUnwindsCleanly)
{
    // Phase 1: the spill worker's writeAt hits unhealing EIO while
    // the main thread is still filling the other chunk buffer.
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.eioOnWriteAttempt = 2;
        plan.eioFailures = 1'000'000; // never heals
        front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        front.setRetryPolicy(fastRetries());

        const StreamEngine<Record> engine(faultOptions(threads));
        const std::string msg =
            expectCleanFailure(engine, data, front, back);
        EXPECT_NE(msg.find("pwrite failed"), std::string::npos) << msg;
        EXPECT_NE(msg.find("phase-1 spill"), std::string::npos) << msg;
    }
}

TEST(StreamEngineFaults, SpillEnospcAtAByteOffsetUnwindsCleanly)
{
    // A full spill device partway through phase 1: ENOSPC is not
    // retried, the first failing lane wins, nothing leaks.
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.enospcAtWriteByte = 100'000; // of ~480 KiB spilled
        front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        front.setRetryPolicy(fastRetries());

        const StreamEngine<Record> engine(faultOptions(threads));
        const std::string msg =
            expectCleanFailure(engine, data, front, back);
        EXPECT_NE(msg.find("pwrite failed"), std::string::npos) << msg;
    }
}

TEST(StreamEngineFaults, HardMergeReadErrorUnwindsCleanly)
{
    // Phase 2: a run cursor's prefetch read dies mid-group-merge.
    // Attempt 40 lands past phase 1 (writes only) and past the cursor
    // constructors' initial fills, squarely in streamed prefetch.
    const auto data = makeRecords(30'000, Distribution::FewDistinct);
    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.eioOnReadAttempt = 40;
        plan.eioFailures = 1'000'000;
        front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        front.setRetryPolicy(fastRetries());

        const StreamEngine<Record> engine(faultOptions(threads));
        const std::string msg =
            expectCleanFailure(engine, data, front, back);
        EXPECT_NE(msg.find("pread failed"), std::string::npos) << msg;
        EXPECT_NE(msg.find("streaming run"), std::string::npos) << msg;
    }
}

TEST(StreamEngineFaults, CursorConstructionErrorDoesNotLeakBuffers)
{
    // The very first read of phase 2 fails: the cursor is mid-
    // construction holding two freshly acquired buffers, the exact
    // spot where a throwing constructor used to leak pool accounting.
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.eioOnReadAttempt = 1;
        plan.eioFailures = 1'000'000;
        front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        front.setRetryPolicy(fastRetries());

        const StreamEngine<Record> engine(faultOptions(threads));
        const std::string msg =
            expectCleanFailure(engine, data, front, back);
        EXPECT_NE(msg.find("pread failed"), std::string::npos) << msg;
    }
}

TEST(StreamEngineFaults, FinalSplitterPassFaultUnwindsCleanly)
{
    // Exactly ell runs: phase 2 is a single final pass, so the first
    // failing read happens under the splitter-partitioned drain (the
    // probe reads at threads >= 2, the slice cursors at threads = 1).
    const auto data = makeRecords(4'000, Distribution::UniformRandom);
    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.eioOnReadAttempt = 1;
        plan.eioFailures = 1'000'000;
        front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        front.setRetryPolicy(fastRetries());

        const StreamEngine<Record> engine(faultOptions(threads));
        const std::string msg =
            expectCleanFailure(engine, data, front, back);
        EXPECT_NE(msg.find("pread failed"), std::string::npos) << msg;
    }
}

TEST(StreamEngineFaults, MergePassWriteBackErrorUnwindsCleanly)
{
    // The destination store of a non-final merge pass rejects the
    // write-back: the StreamWriter's background flush carries the
    // error to the draining lane.
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.eioOnWriteAttempt = 3;
        plan.eioFailures = 1'000'000;
        back.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        back.setRetryPolicy(fastRetries());

        const StreamEngine<Record> engine(faultOptions(threads));
        const std::string msg =
            expectCleanFailure(engine, data, front, back);
        EXPECT_NE(msg.find("pwrite failed"), std::string::npos) << msg;
        EXPECT_NE(msg.find("merge group"), std::string::npos) << msg;
    }
}

TEST(StreamEngineFaults, SinkEnospcDuringTheFinalPassUnwindsCleanly)
{
    // The *output* device fills up mid-final-pass: positioned segment
    // writes from the slice workers hit the ENOSPC cliff.
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    for (const unsigned threads : {1u, 4u}) {
        io::MemorySource<Record> source{std::span<const Record>(data)};
        io::FileSink<Record> sink(
            io::ByteFile::create(::testing::TempDir() +
                                 "bonsai_enospc_sink_" +
                                 std::to_string(threads) + ".bin"));
        io::FaultPlan plan;
        plan.enospcAtWriteByte = 200'000; // of ~480 KiB of output
        sink.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        sink.setRetryPolicy(fastRetries());
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;

        const StreamEngine<Record> engine(faultOptions(threads));
        std::string msg;
        try {
            engine.sortStream(source, sink, front, back);
        } catch (const std::runtime_error &e) {
            msg = e.what();
        }
        EXPECT_FALSE(msg.empty())
            << "sink ENOSPC did not surface from sortStream";
        EXPECT_NE(msg.find("pwrite failed"), std::string::npos) << msg;
        EXPECT_EQ(engine.lastPoolOutstanding(), 0u)
            << "buffer pool leaked buffers during the unwind";
    }
}

TEST(StreamEngineFaults, HealedTransientFaultIsByteIdentical)
{
    // Transient EIO within the retry budget: the sort must succeed
    // with the exact bytes of a fault-free run, and the retries must
    // show up in the engine telemetry.
    const auto data = makeRecords(30'000, Distribution::FewDistinct);
    auto expected = data;
    StreamEngine<Record>(faultOptions(1)).sortInPlace(expected);

    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.eioOnReadAttempt = 5;
        plan.eioFailures = 2; // heals within maxAttempts = 4
        plan.eioOnWriteAttempt = 7;
        front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        front.setRetryPolicy(fastRetries());

        const StreamEngine<Record> engine(faultOptions(threads));
        StreamStats stats;
        const auto out = streamSort(engine, data, front, back, &stats);
        ASSERT_EQ(out, expected)
            << "healed transient fault changed the output bytes";
        EXPECT_GT(stats.ioTransientRetries, 0u);
        EXPECT_EQ(stats.secondaryErrors, 0u);
        EXPECT_EQ(engine.lastPoolOutstanding(), 0u);
    }
}

TEST(StreamEngineFaults, ShortTransfersAndEintrAreInvisible)
{
    // A storm of short transfers and EINTR on the spill device: no
    // retries burned, no error, identical bytes — just telemetry.
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    auto expected = data;
    StreamEngine<Record>(faultOptions(1)).sortInPlace(expected);

    for (const unsigned threads : {1u, 4u}) {
        io::FileRunStore<Record> front;
        io::FileRunStore<Record> back;
        io::FaultPlan plan;
        plan.seed = 7;
        plan.shortEveryReads = 3;
        plan.shortEveryWrites = 3;
        plan.eintrEvery = 11;
        front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
        back.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));

        const StreamEngine<Record> engine(faultOptions(threads));
        StreamStats stats;
        const auto out = streamSort(engine, data, front, back, &stats);
        ASSERT_EQ(out, expected);
        EXPECT_GT(stats.ioShortTransfers, 0u);
        EXPECT_GT(stats.ioEintrRetries, 0u);
        EXPECT_EQ(stats.ioTransientRetries, 0u);
    }
}

TEST(StreamEngineFaults, FailureTelemetryCountsSecondaryErrors)
{
    // When every read on the spill device dies, multiple lanes and
    // cleanup paths fail behind the primary; they must be absorbed
    // into the secondary tally, never thrown.
    const auto data = makeRecords(30'000, Distribution::UniformRandom);
    io::FileRunStore<Record> front;
    io::FileRunStore<Record> back;
    io::FaultPlan plan;
    plan.eioOnReadAttempt = 1;
    plan.eioFailures = 1'000'000;
    front.setFaultPolicy(std::make_shared<io::FaultInjector>(plan));
    front.setRetryPolicy(fastRetries());

    const StreamEngine<Record> engine(faultOptions(4));
    EXPECT_THROW(streamSort(engine, data, front, back),
                 std::runtime_error);
    EXPECT_EQ(engine.lastPoolOutstanding(), 0u);
    // Zero or more are possible depending on scheduling; the accessor
    // itself must be consistent with a clean unwind (no crash, and a
    // value that was actually published).
    (void)engine.lastSecondaryErrors();
}

} // namespace
} // namespace bonsai::sorter
