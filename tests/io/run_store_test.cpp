/** @file Unit tests for memory- and file-backed run stores. */

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/record.hpp"
#include "common/run.hpp"
#include "io/run_store.hpp"

namespace bonsai::io
{
namespace
{

template <typename StoreT>
void
roundTrip(StoreT &store)
{
    std::vector<Record> recs(256);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};

    store.writeAt(0, recs.data(), 100);
    store.writeAt(100, recs.data() + 100, 156);

    std::vector<Record> got(recs.size());
    store.readAt(128, got.data() + 128, 128); // out of order reads
    store.readAt(0, got.data(), 128);
    EXPECT_EQ(got, recs);

    EXPECT_EQ(store.bytesWritten(), 256 * sizeof(Record));
    EXPECT_EQ(store.bytesRead(), 256 * sizeof(Record));
}

TEST(MemoryRunStore, RoundTripsAndCountsTraffic)
{
    std::vector<Record> backing(256);
    MemoryRunStore<Record> store(
        std::span<Record>(backing.data(), backing.size()));
    roundTrip(store);
    EXPECT_EQ(store.memorySpan().data(), backing.data());
}

TEST(FileRunStore, RoundTripsAndCountsTraffic)
{
    FileRunStore<Record> store; // anonymous spill in $TMPDIR
    roundTrip(store);
    EXPECT_TRUE(store.memorySpan().empty());
}

TEST(RunStore, RunMetadataLivesOnTheStore)
{
    FileRunStore<Record> store;
    EXPECT_TRUE(store.runs().empty());
    store.setRuns({RunSpan{0, 10}, RunSpan{10, 20}});
    ASSERT_EQ(store.runs().size(), 2u);
    EXPECT_EQ(store.runs()[1].offset, 10u);
    EXPECT_EQ(store.runs()[1].length, 20u);
}

TEST(RunStoreSink, WritesSequentiallyFromItsBaseOffset)
{
    std::vector<Record> backing(16);
    MemoryRunStore<Record> store(
        std::span<Record>(backing.data(), backing.size()));
    RunStoreSink<Record> sink(store, 4);

    std::vector<Record> recs(8);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};
    sink.write(recs.data(), 3);
    sink.write(recs.data() + 3, 5);
    sink.finish();

    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(backing[4 + i], recs[i]) << "record " << i;
}

} // namespace
} // namespace bonsai::io
