/** @file Unit tests for memory- and file-backed run stores, including
 *  the named PersistentRunStore that crash-consistent sorts spill to:
 *  reopen-for-resume must keep every byte, fresh open must truncate,
 *  and a full device must name the spill file and the spilling chunk
 *  in its error. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/record.hpp"
#include "common/run.hpp"
#include "io/fault_injection.hpp"
#include "io/run_store.hpp"

namespace bonsai::io
{
namespace
{

/** Temp file path scoped to one test, removed on destruction. */
class TempSpill
{
  public:
    explicit TempSpill(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
    }
    ~TempSpill() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

template <typename StoreT>
void
roundTrip(StoreT &store)
{
    std::vector<Record> recs(256);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};

    store.writeAt(0, recs.data(), 100);
    store.writeAt(100, recs.data() + 100, 156);

    std::vector<Record> got(recs.size());
    store.readAt(128, got.data() + 128, 128); // out of order reads
    store.readAt(0, got.data(), 128);
    EXPECT_EQ(got, recs);

    EXPECT_EQ(store.bytesWritten(), 256 * sizeof(Record));
    EXPECT_EQ(store.bytesRead(), 256 * sizeof(Record));
}

TEST(MemoryRunStore, RoundTripsAndCountsTraffic)
{
    std::vector<Record> backing(256);
    MemoryRunStore<Record> store(
        std::span<Record>(backing.data(), backing.size()));
    roundTrip(store);
    EXPECT_EQ(store.memorySpan().data(), backing.data());
}

TEST(FileRunStore, RoundTripsAndCountsTraffic)
{
    FileRunStore<Record> store; // anonymous spill in $TMPDIR
    roundTrip(store);
    EXPECT_TRUE(store.memorySpan().empty());
}

TEST(PersistentRunStore, RoundTripsAndCountsTraffic)
{
    TempSpill spill("persistent_roundtrip.spill");
    PersistentRunStore<Record> store(spill.str());
    roundTrip(store);
    EXPECT_TRUE(store.memorySpan().empty());
    EXPECT_EQ(store.path(), spill.str());
    EXPECT_EQ(store.sizeBytes(), 256 * sizeof(Record));
}

TEST(PersistentRunStore, ResumeReopenKeepsBytesFreshOpenTruncates)
{
    TempSpill spill("persistent_reopen.spill");
    std::vector<Record> recs(200);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};
    {
        PersistentRunStore<Record> store(spill.str());
        store.writeAt(0, recs.data(), recs.size());
        store.flush("test flush");
    } // close: the named file outlives the store object

    {
        PersistentRunStore<Record> store(spill.str(),
                                         /*resume=*/true);
        EXPECT_EQ(store.sizeBytes(), recs.size() * sizeof(Record));
        std::vector<Record> got(recs.size());
        store.readAt(0, got.data(), got.size());
        EXPECT_EQ(got, recs);
    }

    // A fresh (non-resume) open is a new attempt: the previous
    // attempt's bytes must not bleed through.
    PersistentRunStore<Record> store(spill.str(), /*resume=*/false);
    EXPECT_EQ(store.sizeBytes(), 0u);
}

TEST(PersistentRunStore, FullDeviceNamesTheSpillFileAndTheChunk)
{
    // The ENOSPC contract from the I/O hardening work: a full job
    // directory surfaces the spill path, the failing offset and the
    // caller's chunk context — named spills must not regress it.
    TempSpill spill("persistent_enospc.spill");
    PersistentRunStore<Record> store(spill.str());
    FaultPlan plan;
    plan.enospcAtWriteByte = 64 * sizeof(Record);
    store.setFaultPolicy(std::make_shared<FaultInjector>(plan));

    std::vector<Record> recs(128);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};
    std::string msg;
    try {
        store.writeAt(0, recs.data(), recs.size(),
                      "phase-1 spill of chunk 0");
    } catch (const std::runtime_error &e) {
        msg = e.what();
    }
    ASSERT_FALSE(msg.empty()) << "full device did not surface";
    EXPECT_NE(msg.find(spill.str()), std::string::npos) << msg;
    EXPECT_NE(msg.find("phase-1 spill of chunk 0"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("pwrite failed"), std::string::npos) << msg;
}

TEST(RunStore, RunMetadataLivesOnTheStore)
{
    FileRunStore<Record> store;
    EXPECT_TRUE(store.runs().empty());
    store.setRuns({RunSpan{0, 10}, RunSpan{10, 20}});
    ASSERT_EQ(store.runs().size(), 2u);
    EXPECT_EQ(store.runs()[1].offset, 10u);
    EXPECT_EQ(store.runs()[1].length, 20u);
}

TEST(RunStoreSink, WritesSequentiallyFromItsBaseOffset)
{
    std::vector<Record> backing(16);
    MemoryRunStore<Record> store(
        std::span<Record>(backing.data(), backing.size()));
    RunStoreSink<Record> sink(store, 4);

    std::vector<Record> recs(8);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};
    sink.write(recs.data(), 3);
    sink.write(recs.data() + 3, 5);
    sink.finish();

    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(backing[4 + i], recs[i]) << "record " << i;
}

} // namespace
} // namespace bonsai::io
