/** @file
 * Unit tests for the I/O fault-injection seam and the hardened
 * ByteFile transfer loop: short transfers, EINTR storms, transient
 * EIO with bounded retry/backoff, hard ENOSPC, fdatasync failures,
 * rich error messages, and createTemp's directory handling.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "common/record.hpp"
#include "io/byte_io.hpp"
#include "io/fault_injection.hpp"
#include "io/run_store.hpp"
#include "io/stream.hpp"

namespace bonsai::io
{
namespace
{

/** Temp file path scoped to one test, removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** Fast retries so exhausted-retry tests don't sleep for real. */
RetryPolicy
fastRetries(unsigned max_attempts = 4)
{
    RetryPolicy r;
    r.maxAttempts = max_attempts;
    r.backoffBaseMicros = 1;
    return r;
}

std::vector<unsigned char>
patternBytes(std::uint64_t n)
{
    std::vector<unsigned char> bytes(n);
    for (std::uint64_t i = 0; i < n; ++i)
        bytes[i] = static_cast<unsigned char>((i * 131) ^ (i >> 8));
    return bytes;
}

/** What the throwing call reported, for message-content checks. */
std::string
messageOf(const std::function<void()> &fn)
{
    try {
        fn();
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

TEST(FaultInjection, ShortTransfersResumeByteIdentically)
{
    ByteFile file = ByteFile::createTemp();
    FaultPlan plan;
    plan.seed = 42;
    plan.shortEveryWrites = 1; // cap every attempt to a random prefix
    plan.shortEveryReads = 1;
    auto injector = std::make_shared<FaultInjector>(plan);
    file.setFaultPolicy(injector);

    const auto bytes = patternBytes(64 * 1024);
    file.writeAt(0, bytes.data(), bytes.size());
    std::vector<unsigned char> got(bytes.size());
    file.readAt(0, got.data(), got.size());
    EXPECT_EQ(got, bytes);
    EXPECT_GT(injector->injectedShort(), 0u);
    EXPECT_GE(file.retryStats().shortTransfers,
              injector->injectedShort());
    EXPECT_EQ(file.retryStats().transientRetries, 0u);
}

TEST(FaultInjection, EintrStormsAreRetriedTransparently)
{
    ByteFile file = ByteFile::createTemp();
    FaultPlan plan;
    plan.eintrEvery = 5;
    plan.eintrBurst = 3;
    auto injector = std::make_shared<FaultInjector>(plan);
    file.setFaultPolicy(injector);

    const auto bytes = patternBytes(16 * 1024);
    // Several transfers so the attempt index crosses the storm cadence.
    for (std::uint64_t off = 0; off < bytes.size(); off += 1024)
        file.writeAt(off, bytes.data() + off, 1024);
    std::vector<unsigned char> got(bytes.size());
    for (std::uint64_t off = 0; off < bytes.size(); off += 1024)
        file.readAt(off, got.data() + off, 1024);
    EXPECT_EQ(got, bytes);
    EXPECT_GT(injector->injectedEintr(), 0u);
    EXPECT_EQ(file.retryStats().eintrRetries, injector->injectedEintr());
}

TEST(FaultInjection, TransientEioHealsWithinTheRetryBudget)
{
    ByteFile file = ByteFile::createTemp();
    file.setRetryPolicy(fastRetries());
    const auto bytes = patternBytes(4096);
    file.writeAt(0, bytes.data(), bytes.size());

    FaultPlan plan;
    plan.eioOnReadAttempt = 1;
    plan.eioFailures = 2; // heals on the third attempt
    auto injector = std::make_shared<FaultInjector>(plan);
    file.setFaultPolicy(injector);

    std::vector<unsigned char> got(bytes.size());
    file.readAt(0, got.data(), got.size());
    EXPECT_EQ(got, bytes);
    EXPECT_EQ(injector->injectedEio(), 2u);
    EXPECT_EQ(file.retryStats().transientRetries, 2u);
}

TEST(FaultInjection, ExhaustedTransientRetriesThrowWithFullContext)
{
    ByteFile file = ByteFile::createTemp();
    file.setRetryPolicy(fastRetries(2));
    const auto bytes = patternBytes(4096);
    file.writeAt(0, bytes.data(), bytes.size());

    FaultPlan plan;
    plan.eioOnReadAttempt = 1;
    plan.eioFailures = 100; // never heals within 2 retries
    file.setFaultPolicy(std::make_shared<FaultInjector>(plan));

    std::vector<unsigned char> got(bytes.size());
    const std::string msg = messageOf([&] {
        file.readAt(512, got.data(), 1024, "unit-test stream of run 7");
    });
    EXPECT_NE(msg.find("pread failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset 512"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1024 of 1024 bytes outstanding"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unit-test stream of run 7"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("unlinked spill"), std::string::npos) << msg;
}

TEST(FaultInjection, EnospcIsPermanentAndReportsTheWriteOffset)
{
    ByteFile file = ByteFile::createTemp();
    file.setRetryPolicy(fastRetries());
    FaultPlan plan;
    plan.enospcAtWriteByte = 4096;
    auto injector = std::make_shared<FaultInjector>(plan);
    file.setFaultPolicy(injector);

    const auto bytes = patternBytes(8192);
    file.writeAt(0, bytes.data(), 4096); // below the cliff: fine
    const std::string msg = messageOf([&] {
        file.writeAt(4096, bytes.data(), 4096, "mid-merge write-back");
    });
    EXPECT_NE(msg.find("pwrite failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset 4096"), std::string::npos) << msg;
    EXPECT_NE(msg.find("mid-merge write-back"), std::string::npos)
        << msg;
    EXPECT_GT(injector->injectedEnospc(), 0u);
    // ENOSPC is not transient: no retry was burned on it.
    EXPECT_EQ(file.retryStats().transientRetries, 0u);
}

TEST(FaultInjection, ReadPastEndOfFileReportsOffsetAndContext)
{
    ByteFile file = ByteFile::createTemp();
    const auto bytes = patternBytes(1024);
    file.writeAt(0, bytes.data(), bytes.size());
    std::vector<unsigned char> got(2048);
    const std::string msg = messageOf(
        [&] { file.readAt(0, got.data(), 2048, "torn-tail probe"); });
    EXPECT_NE(msg.find("end of file"), std::string::npos) << msg;
    EXPECT_NE(msg.find("offset 1024"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1024 of 2048 bytes outstanding"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("torn-tail probe"), std::string::npos) << msg;
}

TEST(FaultInjection, SyncFailuresSurfaceFromFinish)
{
    TempPath out("bonsai_fault_sink.bin");
    FileSink<Record> sink(ByteFile::create(out.str()));
    FaultPlan plan;
    plan.failSyncWith = ENOSPC;
    sink.setFaultPolicy(std::make_shared<FaultInjector>(plan));
    sink.setRetryPolicy(fastRetries());

    std::vector<Record> recs(16);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};
    sink.write(recs.data(), recs.size());
    const std::string msg = messageOf([&] { sink.finish(); });
    EXPECT_NE(msg.find("fdatasync failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("finishing output sink"), std::string::npos)
        << msg;
}

TEST(FaultInjection, TransientSyncFailureHealsWithinTheRetryBudget)
{
    // EIO from fdatasync is retried like any transient error; the
    // injector heals nothing (failSyncWith fires every attempt), so
    // use a policy that stops injecting after the budget is probed.
    ByteFile file = ByteFile::createTemp();
    file.setRetryPolicy(fastRetries());
    const auto bytes = patternBytes(512);
    file.writeAt(0, bytes.data(), bytes.size());
    file.sync(); // no policy: plain fdatasync must succeed
    EXPECT_EQ(file.retryStats().transientRetries, 0u);
}

TEST(FaultInjection, FileRunStoreSurfacesRetryTelemetry)
{
    FileRunStore<Record> store;
    store.setRetryPolicy(fastRetries());
    FaultPlan plan;
    plan.eioOnWriteAttempt = 1;
    plan.eioFailures = 1;
    store.setFaultPolicy(std::make_shared<FaultInjector>(plan));

    std::vector<Record> recs(256);
    for (std::uint64_t i = 0; i < recs.size(); ++i)
        recs[i] = Record{i + 1, i};
    store.writeAt(0, recs.data(), recs.size());
    store.flush();
    std::vector<Record> got(recs.size());
    store.readAt(0, got.data(), got.size());
    EXPECT_EQ(got, recs);
    EXPECT_EQ(store.retryStats().transientRetries, 1u);
}

TEST(FaultInjection, CreateTempNormalizesTrailingSlashes)
{
    // A trailing slash used to produce "//bonsai-spill-XXXXXX"
    // templates; normalized, the spill works like any other.
    ByteFile file = ByteFile::createTemp(::testing::TempDir() + "///");
    const auto bytes = patternBytes(1024);
    file.writeAt(0, bytes.data(), bytes.size());
    std::vector<unsigned char> got(bytes.size());
    file.readAt(0, got.data(), got.size());
    EXPECT_EQ(got, bytes);
}

TEST(FaultInjection, CreateTempInUnusableDirFailsWithClearError)
{
    const std::string msg = messageOf([&] {
        ByteFile::createTemp("/nonexistent-bonsai-spill-dir");
    });
    EXPECT_NE(msg.find("spill directory"), std::string::npos) << msg;
    EXPECT_NE(msg.find("/nonexistent-bonsai-spill-dir"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("pass a writable spill directory"),
              std::string::npos)
        << msg;
}

TEST(FaultInjection, CreateTempFallsBackToTmpWhenTmpdirIsUnusable)
{
    // A stale $TMPDIR (trailing slash included) must degrade to /tmp
    // instead of failing the sort.
    const char *saved = std::getenv("TMPDIR"); // NOLINT(concurrency-mt-unsafe): single-threaded test
    const std::string restore = saved ? saved : "";
    ::setenv("TMPDIR", "/nonexistent-bonsai-tmpdir/", 1); // NOLINT(concurrency-mt-unsafe): single-threaded test
    std::string msg;
    try {
        ByteFile file = ByteFile::createTemp();
        const auto bytes = patternBytes(256);
        file.writeAt(0, bytes.data(), bytes.size());
    } catch (const std::runtime_error &e) {
        msg = e.what();
    }
    if (saved != nullptr)
        ::setenv("TMPDIR", restore.c_str(), 1); // NOLINT(concurrency-mt-unsafe): single-threaded test
    else
        ::unsetenv("TMPDIR"); // NOLINT(concurrency-mt-unsafe): single-threaded test
    EXPECT_EQ(msg, "") << msg;
}

TEST(FaultInjection, AttemptCountersSeeEveryIoAttempt)
{
    // The crash-sweep tests size their sweep from a counting run:
    // the injector must tally every read, write and sync attempt
    // even when it injects nothing.
    ByteFile file = ByteFile::createTemp();
    auto injector = std::make_shared<FaultInjector>(FaultPlan{});
    file.setFaultPolicy(injector);

    const auto bytes = patternBytes(4096);
    file.writeAt(0, bytes.data(), bytes.size());
    file.writeAt(4096, bytes.data(), bytes.size());
    file.sync();
    std::vector<unsigned char> got(bytes.size());
    file.readAt(0, got.data(), got.size());

    EXPECT_EQ(injector->writeAttempts(), 2u);
    EXPECT_EQ(injector->readAttempts(), 1u);
    EXPECT_EQ(injector->syncAttempts(), 1u);
}

TEST(FaultInjection, CrashPointKillsTheProcessAtTheExactAttempt)
{
    // The crash seam is _exit(137) — only observable across fork().
    // The child must survive attempt 1 and die inside attempt 2
    // without the write landing.
    TempPath spill("crash_point.bin");
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: no gtest, no exceptions out — just the crash.
        ByteFile file = ByteFile::create(spill.str());
        FaultPlan plan;
        plan.crashOnWriteAttempt = 2;
        file.setFaultPolicy(std::make_shared<FaultInjector>(plan));
        const auto bytes = patternBytes(512);
        file.writeAt(0, bytes.data(), bytes.size());
        file.writeAt(512, bytes.data(), bytes.size());
        ::_exit(0); // not reached: attempt 2 crashed
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 137);

    // Attempt 1 landed before the crash; attempt 2 never did.
    ByteFile file = ByteFile::openRead(spill.str());
    EXPECT_EQ(file.sizeBytes(), 512u);
}

} // namespace
} // namespace bonsai::io
