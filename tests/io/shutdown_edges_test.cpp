/** @file
 * Shutdown-edge tests for TaskGate and BackgroundWorker: the
 * lifecycle corners the streamed merge leans on when a pass ends or
 * an error unwinds — destruction with work still queued, repeated
 * waits, gate reuse across arm cycles, and contract enforcement on
 * misuse.  These run under the default, BONSAI_CHECKED, ASan and TSan
 * jobs; the TSan run is what certifies the notify-under-lock
 * destruction protocol.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/contract.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"

namespace bonsai::io
{
namespace
{

TEST(TaskGateShutdown, WaitTwiceAfterCompletionIsIdempotent)
{
    TaskGate gate;
    BackgroundWorker worker;
    gate.arm();
    worker.post([&] { gate.open(); });
    EXPECT_GE(gate.wait(), 0.0);
    // A second wait on the already-open gate must return immediately
    // (the stream writer waits again on reuse paths).
    EXPECT_GE(gate.wait(), 0.0);
}

TEST(TaskGateShutdown, ReArmCyclesAfterCompletion)
{
    // One gate shepherds many tasks over its lifetime (each lane
    // reuses its gates for every batch of a pass): arm -> open ->
    // wait must be repeatable indefinitely, including after a failed
    // cycle consumed an error.
    TaskGate gate;
    BackgroundWorker worker;
    std::atomic<int> runs{0};
    for (int cycle = 0; cycle < 100; ++cycle) {
        gate.arm();
        worker.post([&] {
            runs.fetch_add(1, std::memory_order_relaxed);
            gate.open();
        });
        EXPECT_GE(gate.wait(), 0.0);
    }
    EXPECT_EQ(runs.load(std::memory_order_relaxed), 100);

    gate.arm();
    worker.post([&] {
        try {
            throw std::runtime_error("cycle failed");
        } catch (...) {
            gate.fail(std::current_exception());
        }
    });
    EXPECT_THROW(gate.wait(), std::runtime_error);
    gate.arm(); // the consumed failure must not poison the next cycle
    worker.post([&] { gate.open(); });
    EXPECT_GE(gate.wait(), 0.0);
}

TEST(TaskGateShutdown, DestroyImmediatelyAfterWait)
{
    // The waiter may destroy the gate the instant wait() returns
    // while the opener is still inside open() — the reason open()
    // notifies under the lock.  Hammer that window; TSan certifies
    // the absence of a use-after-free on the condition variable.
    BackgroundWorker worker;
    for (int i = 0; i < 200; ++i) {
        TaskGate gate;
        gate.arm();
        worker.post([&] { gate.open(); });
        EXPECT_GE(gate.wait(), 0.0);
        // gate dies here; the worker may still be returning from
        // open().
    }
    worker.drain();
}

TEST(TaskGateShutdown, DoubleArmViolatesContractWhenChecked)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contract checks compiled out "
                        "(BONSAI_CHECKED=OFF)";
    TaskGate gate;
    gate.arm();
    // Arming with a task already in flight would let two tasks share
    // one completion signal; the contract must trip immediately.
    EXPECT_THROW(gate.arm(), ContractViolation);
    gate.open(); // the failed arm must not have wedged the gate
    EXPECT_GE(gate.wait(), 0.0);
}

TEST(BackgroundWorkerShutdown, DestructionRunsEveryQueuedTask)
{
    // Shutdown contract: the destructor drains the queue before
    // joining — a task posted is a task run, even when the worker is
    // destroyed the moment after the posts.  The first task blocks on
    // a gate so the queue piles up; a second worker opens the gate
    // concurrently with the destruction.
    std::atomic<int> ran{0};
    TaskGate start;
    BackgroundWorker opener;
    {
        BackgroundWorker worker;
        start.arm();
        worker.post([&] { start.wait(); });
        for (int i = 0; i < 32; ++i)
            worker.post(
                [&] { ran.fetch_add(1, std::memory_order_relaxed); });
        opener.post([&] { start.open(); });
        // worker's destructor runs here, with (up to) 32 tasks queued.
    }
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 32);
}

TEST(BackgroundWorkerShutdown, DestructionDiscardsATrappedError)
{
    // Without a drain(), a leaked task exception has nowhere to go;
    // the destructor must swallow it rather than terminate.
    std::atomic<int> ran{0};
    {
        BackgroundWorker worker;
        worker.post([] { throw std::runtime_error("leaked at exit"); });
        worker.post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 1);
}

TEST(BackgroundWorkerShutdown, DrainTwiceAndWhileIdle)
{
    BackgroundWorker worker;
    worker.drain(); // idle drain returns immediately
    std::atomic<int> ran{0};
    worker.post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    worker.drain();
    worker.drain(); // second drain has nothing to wait for
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 1);
    // The worker must still accept work after repeated drains.
    worker.post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    worker.drain();
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 2);
}

TEST(BackgroundWorkerShutdown, ErrorConsumedByDrainDoesNotRecur)
{
    BackgroundWorker worker;
    worker.post([] { throw std::runtime_error("first"); });
    EXPECT_THROW(worker.drain(), std::runtime_error);
    // drain() consumed the error: subsequent drains are clean.
    worker.drain();
    std::atomic<int> ran{0};
    worker.post([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    worker.drain();
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 1);
}

} // namespace
} // namespace bonsai::io
