/** @file Unit tests for the record stream boundary (io/stream.hpp). */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/contract.hpp"
#include "common/record.hpp"
#include "io/byte_io.hpp"
#include "io/stream.hpp"

namespace bonsai::io
{
namespace
{

std::vector<Record>
makeRecords(std::uint64_t n)
{
    std::vector<Record> recs(n);
    for (std::uint64_t i = 0; i < n; ++i)
        recs[i] = Record{n - i, i};
    return recs;
}

/** Temp file path scoped to one test, removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

TEST(MemoryStreams, SourceYieldsAllRecordsInBatches)
{
    const auto recs = makeRecords(10);
    MemorySource<Record> source{std::span<const Record>(recs)};
    EXPECT_EQ(source.totalRecords(), 10u);

    std::vector<Record> got(recs.size());
    EXPECT_EQ(source.read(got.data(), 4), 4u);
    EXPECT_EQ(source.read(got.data() + 4, 4), 4u);
    EXPECT_EQ(source.read(got.data() + 8, 4), 2u); // clamped tail
    EXPECT_EQ(source.read(got.data(), 4), 0u);     // exhausted
    EXPECT_EQ(got, recs);
}

TEST(MemoryStreams, SinkAppendsAcrossWrites)
{
    const auto recs = makeRecords(6);
    std::vector<Record> out;
    MemorySink<Record> sink(out);
    sink.write(recs.data(), 2);
    sink.write(recs.data() + 2, 4);
    sink.finish();
    EXPECT_EQ(out, recs);
}

TEST(MemoryStreams, SegmentWritesLandAtTheirDeclaredOffsets)
{
    // Out-of-order positioned writes must reassemble the sequential
    // byte sequence — the property the parallel final merge pass
    // stitches its slices with.
    const auto recs = makeRecords(10);
    std::vector<Record> out;
    MemorySink<Record> sink(out);
    ASSERT_TRUE(sink.supportsSegments());
    sink.write(recs.data(), 2); // sequential prefix
    sink.beginSegments(8);
    sink.writeSegment(5, recs.data() + 7, 3); // tail first
    sink.writeSegment(0, recs.data() + 2, 5);
    sink.finish();
    EXPECT_EQ(out, recs);
}

TEST(MemoryStreams, SegmentSinkForwardsAsPositionedWrites)
{
    const auto recs = makeRecords(6);
    std::vector<Record> out;
    MemorySink<Record> sink(out);
    sink.beginSegments(6);
    // Two segment views draining in reverse creation order: the
    // offsets, not the call order, decide placement.
    SegmentSink<Record> hi(sink, 4);
    SegmentSink<Record> lo(sink, 0);
    hi.write(recs.data() + 4, 2);
    lo.write(recs.data(), 3);
    lo.write(recs.data() + 3, 1);
    sink.finish();
    EXPECT_EQ(out, recs);
}

TEST(MemoryStreams, SegmentWriteBeyondTheWindowIsRejected)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    const auto recs = makeRecords(4);
    std::vector<Record> out;
    MemorySink<Record> sink(out);
    sink.beginSegments(2);
    EXPECT_THROW(sink.writeSegment(1, recs.data(), 2),
                 ContractViolation);
}

TEST(RecordSinkDefaults, SegmentCallsOnAPlainSinkFailLoudly)
{
    /** Minimal sequential-only sink. */
    class PlainSink : public RecordSink<Record>
    {
      public:
        void write(const Record *, std::uint64_t) override {}
    };
    PlainSink sink;
    Record rec{1, 1};
    EXPECT_FALSE(sink.supportsSegments());
    EXPECT_THROW(sink.beginSegments(4), ContractViolation);
    EXPECT_THROW(sink.writeSegment(0, &rec, 1), ContractViolation);
}

TEST(FileStreams, SegmentWritesMatchASequentialSink)
{
    const auto recs = makeRecords(1000);
    TempPath seq("stream_seq.bin");
    TempPath seg("stream_seg.bin");
    {
        FileSink<Record> sink(ByteFile::create(seq.str()));
        sink.write(recs.data(), 1000);
        sink.finish();
    }
    {
        FileSink<Record> sink(ByteFile::create(seg.str()));
        ASSERT_TRUE(sink.supportsSegments());
        sink.write(recs.data(), 100);
        sink.beginSegments(900);
        sink.writeSegment(500, recs.data() + 600, 400);
        sink.writeSegment(0, recs.data() + 100, 500);
        sink.finish();
        EXPECT_EQ(sink.recordsWritten(), 1000u);
    }
    FileSource<Record> a(ByteFile::openRead(seq.str()));
    FileSource<Record> b(ByteFile::openRead(seg.str()));
    ASSERT_EQ(a.totalRecords(), b.totalRecords());
    std::vector<Record> ra(1000), rb(1000);
    ASSERT_EQ(a.read(ra.data(), 1000), 1000u);
    ASSERT_EQ(b.read(rb.data(), 1000), 1000u);
    EXPECT_EQ(ra, rb);
}

TEST(FileStreams, SinkThenSourceRoundTrips)
{
    const auto recs = makeRecords(1000);
    TempPath path("stream_roundtrip.bin");
    {
        FileSink<Record> sink(ByteFile::create(path.str()));
        sink.write(recs.data(), 300);
        sink.write(recs.data() + 300, 700);
        sink.finish();
        EXPECT_EQ(sink.recordsWritten(), 1000u);
    }
    FileSource<Record> source(ByteFile::openRead(path.str()));
    EXPECT_EQ(source.totalRecords(), 1000u);
    std::vector<Record> got(recs.size());
    std::uint64_t pos = 0;
    for (std::uint64_t n;
         (n = source.read(got.data() + pos, 128)) != 0;)
        pos += n;
    EXPECT_EQ(pos, 1000u);
    EXPECT_EQ(got, recs);
}

TEST(FileStreams, EmptyFileIsAnEmptySource)
{
    TempPath path("stream_empty.bin");
    { FileSink<Record> sink(ByteFile::create(path.str())); }
    FileSource<Record> source(ByteFile::openRead(path.str()));
    EXPECT_EQ(source.totalRecords(), 0u);
    Record rec;
    EXPECT_EQ(source.read(&rec, 1), 0u);
}

TEST(FileStreams, TornTailFailsLoudlyInEveryBuildType)
{
    // A file whose size is not a whole number of records is not the
    // file the caller thinks it is — the source must refuse it.
    TempPath path("stream_torn.bin");
    {
        ByteFile file = ByteFile::create(path.str());
        const char junk[sizeof(Record) + 3] = {};
        file.writeAt(0, junk, sizeof(junk));
    }
    EXPECT_THROW(FileSource<Record>(ByteFile::openRead(path.str())),
                 ContractViolation);
}

TEST(TerminalBoundary, CleanInputPasses)
{
    const auto recs = makeRecords(64);
    EXPECT_NO_THROW(
        requireNoTerminals(recs.data(), recs.size()));
}

TEST(TerminalBoundary, TerminalRecordIsRejectedWithItsIndex)
{
    auto recs = makeRecords(8);
    recs[5] = Record::terminal();
    try {
        requireNoTerminals(recs.data(), recs.size(), 100);
        FAIL() << "terminal record was not rejected";
    } catch (const ContractViolation &err) {
        // The message must name the absolute record index so a user
        // can find the offending record in a terabyte input.
        EXPECT_NE(std::string(err.what()).find("105"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace bonsai::io
