/** @file Unit tests for the bounded buffer pool and task gate. */

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/contract.hpp"
#include "common/record.hpp"
#include "common/thread_pool.hpp"
#include "io/buffer_pool.hpp"

namespace bonsai::io
{
namespace
{

TEST(BufferPool, HandsOutBudgetedBatchBuffers)
{
    // 1024 records of 16 bytes per batch, 64 KiB budget -> 4 buffers.
    BufferPool<Record> pool(1024, 64 << 10);
    EXPECT_EQ(pool.batchRecords(), 1024u);
    EXPECT_EQ(pool.buffers(), 4u);
    EXPECT_EQ(pool.budgetBytes(), 64u << 10);

    std::vector<std::vector<Record>> held;
    for (unsigned i = 0; i < 4; ++i) {
        held.push_back(pool.acquire());
        EXPECT_EQ(held.back().size(), 1024u);
    }
    for (auto &buf : held)
        pool.release(std::move(buf));
}

TEST(BufferPool, RecyclesReleasedBuffers)
{
    BufferPool<Record> pool(16, 16 * sizeof(Record));
    ASSERT_EQ(pool.buffers(), 1u);
    std::vector<Record> buf = pool.acquire();
    buf[0] = Record{7, 7};
    pool.release(std::move(buf));
    // The single-buffer pool must satisfy the next acquire from the
    // free list (a blocking re-allocation would deadlock here).
    std::vector<Record> again = pool.acquire();
    EXPECT_EQ(again.size(), 16u);
    pool.release(std::move(again));
}

TEST(BufferPool, TracksOutstandingAndPeakAcquires)
{
    BufferPool<Record> pool(16, 4 * 16 * sizeof(Record));
    ASSERT_EQ(pool.buffers(), 4u);
    EXPECT_EQ(pool.outstanding(), 0u);
    EXPECT_EQ(pool.peakOutstanding(), 0u);

    std::vector<Record> a = pool.acquire();
    std::vector<Record> b = pool.acquire();
    std::vector<Record> c = pool.acquire();
    EXPECT_EQ(pool.outstanding(), 3u);
    EXPECT_EQ(pool.peakOutstanding(), 3u);

    pool.release(std::move(c));
    pool.release(std::move(b));
    EXPECT_EQ(pool.outstanding(), 1u);
    // The peak is a high-water mark: releases must not lower it.
    EXPECT_EQ(pool.peakOutstanding(), 3u);

    std::vector<Record> d = pool.acquire();
    EXPECT_EQ(pool.outstanding(), 2u);
    EXPECT_EQ(pool.peakOutstanding(), 3u);
    pool.release(std::move(d));
    pool.release(std::move(a));
    EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(BufferPool, ConcurrentAcquiresNeverExceedTheBudget)
{
    // 8 tasks hammer a 4-buffer pool; the peak accounting must show
    // that blocking acquire() kept concurrent holdings at or below
    // the budget (the invariant the phase-2 lane derivation rests
    // on).
    BufferPool<Record> pool(16, 4 * 16 * sizeof(Record));
    ThreadPool workers(8);
    workers.parallelFor(64, [&pool](std::uint64_t) {
        std::vector<Record> buf = pool.acquire();
        buf[0] = Record{1, 1};
        pool.release(std::move(buf));
    });
    EXPECT_EQ(pool.outstanding(), 0u);
    EXPECT_GE(pool.peakOutstanding(), 1u);
    EXPECT_LE(pool.peakOutstanding(), pool.buffers());
}

TEST(BufferPool, BudgetSmallerThanOneBatchFailsLoudly)
{
    // A pool that cannot hold one batch would block the first
    // acquire() forever; the constructor must throw in every build
    // type, not deadlock at some later point mid-sort.
    EXPECT_THROW(BufferPool<Record>(1024, 1024), ContractViolation);
}

TEST(BufferPool, ZeroBatchFailsLoudly)
{
    EXPECT_THROW(BufferPool<Record>(0, 1 << 20), ContractViolation);
}

TEST(TaskGate, StartsOpenAndWaitsReturnImmediately)
{
    TaskGate gate;
    EXPECT_GE(gate.wait(), 0.0);
    EXPECT_GE(gate.wait(), 0.0); // wait is idempotent while open
}

TEST(TaskGate, WaitBlocksUntilTheTaskOpensIt)
{
    TaskGate gate;
    BackgroundWorker worker;
    int done = 0;
    gate.arm();
    worker.post([&] {
        done = 1;
        gate.open();
    });
    EXPECT_GE(gate.wait(), 0.0);
    EXPECT_EQ(done, 1); // wait() is the happens-before edge
}

TEST(TaskGate, FailRethrowsTheTaskErrorAtWait)
{
    TaskGate gate;
    BackgroundWorker worker;
    gate.arm();
    worker.post([&] {
        try {
            throw std::runtime_error("disk on fire");
        } catch (...) {
            gate.fail(std::current_exception());
        }
    });
    EXPECT_THROW(gate.wait(), std::runtime_error);
    // The error is consumed; the gate is usable again.
    EXPECT_GE(gate.wait(), 0.0);
}

TEST(BackgroundWorker, RunsTasksInPostOrder)
{
    // The stream writer relies on FIFO execution for sink ordering.
    BackgroundWorker worker;
    std::vector<int> order;
    for (int i = 0; i < 100; ++i)
        worker.post([&order, i] { order.push_back(i); });
    worker.drain();
    ASSERT_EQ(order.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(BackgroundWorker, DrainRethrowsALeakedException)
{
    BackgroundWorker worker;
    worker.post([] { throw std::runtime_error("leaked"); });
    EXPECT_THROW(worker.drain(), std::runtime_error);
    worker.post([] {}); // still alive after the failure
    worker.drain();
}

} // namespace
} // namespace bonsai::io
