/** @file
 * Unit tests for the durable job manifest: the crc32 primitive, the
 * save/load round trip, and — most importantly — the corruption
 * matrix.  Every way a manifest can be wrong (missing, torn tail,
 * foreign magic, future version, flipped body bits, checksummed-but-
 * inconsistent body, parameter drift) must map to its own distinct
 * status and one-line message, because the resume path's "fall back
 * loudly" contract is only as good as the diagnosis.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "io/byte_io.hpp"
#include "io/manifest.hpp"

namespace bonsai::io
{
namespace
{

/** Job directory scoped to one test: created on construction, known
 *  artifacts removed and the directory unlinked on destruction. */
class JobDir
{
  public:
    explicit JobDir(const std::string &name)
        : dir_(::testing::TempDir() + name)
    {
        createDirectories(dir_);
    }
    ~JobDir()
    {
        removeJobArtifacts(dir_);
        ::rmdir(dir_.c_str());
    }
    const std::string &str() const { return dir_; }

  private:
    std::string dir_;
};

ManifestParams
sampleParams()
{
    ManifestParams p;
    p.recordBytes = 16;
    p.recordsIn = 24'000;
    p.chunkRecords = 1'000;
    p.batchRecords = 128;
    p.phase1Ell = 4;
    p.phase2Ell = 4;
    p.bufferBudgetBytes = 1 << 20;
    return p;
}

JobManifest
sampleManifest()
{
    JobManifest m;
    m.params = sampleParams();
    m.chunksDone = 3;
    m.phase1Complete = false;
    m.currentStore = 1;
    m.passesDone = 2;
    m.runs = {{0, 1'000, 0xdeadbeefu},
              {1'000, 1'000, 0x12345678u},
              {2'000, 777, 0x0u}};
    return m;
}

/** Overwrite one byte of the live manifest at @p offset. */
void
patchManifestByte(const std::string &dir, std::uint64_t offset,
                  unsigned char value)
{
    ByteFile f = ByteFile::openReadWrite(manifestPath(dir));
    f.writeAt(offset, &value, 1, "test patch");
}

TEST(Manifest, Crc32MatchesTheIeeeCheckValue)
{
    // The canonical CRC-32 check value: crc of "123456789".
    const char *s = "123456789";
    EXPECT_EQ(crc32Of(s, 9), 0xcbf43926u);

    // Chained blocks finish to the same value as one shot.
    std::uint32_t chained = crc32(s, 4);
    chained = crc32(s + 4, 5, chained);
    EXPECT_EQ(crc32Finish(chained), crc32Of(s, 9));
}

TEST(Manifest, SaveLoadRoundTripPreservesEveryField)
{
    JobDir job("manifest_roundtrip");
    const JobManifest m = sampleManifest();
    saveManifest(job.str(), m);

    const ManifestLoadResult r = loadManifest(job.str());
    ASSERT_EQ(r.status, ManifestStatus::Ok) << r.error;
    EXPECT_TRUE(r.manifest.params == m.params);
    EXPECT_EQ(r.manifest.chunksDone, m.chunksDone);
    EXPECT_EQ(r.manifest.phase1Complete, m.phase1Complete);
    EXPECT_EQ(r.manifest.currentStore, m.currentStore);
    EXPECT_EQ(r.manifest.passesDone, m.passesDone);
    ASSERT_EQ(r.manifest.runs.size(), m.runs.size());
    for (std::size_t i = 0; i < m.runs.size(); ++i) {
        EXPECT_EQ(r.manifest.runs[i].offset, m.runs[i].offset);
        EXPECT_EQ(r.manifest.runs[i].length, m.runs[i].length);
        EXPECT_EQ(r.manifest.runs[i].crc, m.runs[i].crc);
    }
}

TEST(Manifest, CommitReplacesTheLiveManifestAtomically)
{
    JobDir job("manifest_replace");
    JobManifest m = sampleManifest();
    saveManifest(job.str(), m);
    m.chunksDone = 9;
    m.runs.clear();
    saveManifest(job.str(), m);

    const ManifestLoadResult r = loadManifest(job.str());
    ASSERT_EQ(r.status, ManifestStatus::Ok) << r.error;
    EXPECT_EQ(r.manifest.chunksDone, 9u);
    EXPECT_TRUE(r.manifest.runs.empty());
    // The rename consumed the temp file — no journal debris.
    EXPECT_FALSE(
        fileExists(job.str() + "/" + kManifestTempFileName));
}

TEST(Manifest, MissingManifestIsNotFoundNotAnError)
{
    JobDir job("manifest_missing");
    const ManifestLoadResult r = loadManifest(job.str());
    EXPECT_EQ(r.status, ManifestStatus::NotFound);
    EXPECT_NE(r.error.find("no job manifest"), std::string::npos)
        << r.error;
}

TEST(Manifest, TailTruncationIsDetectedAsTorn)
{
    JobDir job("manifest_torn");
    saveManifest(job.str(), sampleManifest());
    const std::uint64_t full =
        ByteFile::openRead(manifestPath(job.str())).sizeBytes();

    // Torn mid-body: the header survives but claims more bytes than
    // the file holds.
    ASSERT_EQ(
        ::truncate(manifestPath(job.str()).c_str(),
                   static_cast<off_t>(full - 7)),
        0);
    ManifestLoadResult r = loadManifest(job.str());
    EXPECT_EQ(r.status, ManifestStatus::TornTail);
    EXPECT_NE(r.error.find("torn"), std::string::npos) << r.error;

    // Torn inside the header itself.
    ASSERT_EQ(::truncate(manifestPath(job.str()).c_str(), 10), 0);
    r = loadManifest(job.str());
    EXPECT_EQ(r.status, ManifestStatus::TornTail);
    EXPECT_NE(r.error.find("header"), std::string::npos) << r.error;
}

TEST(Manifest, FlippedBodyBitFailsTheChecksum)
{
    JobDir job("manifest_bitflip");
    saveManifest(job.str(), sampleManifest());

    // Byte 24 is the first body byte (24-byte header); flip it.
    ByteFile f = ByteFile::openRead(manifestPath(job.str()));
    unsigned char original = 0;
    f.readAt(24, &original, 1, "test read");
    patchManifestByte(job.str(), 24,
                      static_cast<unsigned char>(original ^ 0x40u));

    const ManifestLoadResult r = loadManifest(job.str());
    EXPECT_EQ(r.status, ManifestStatus::CrcMismatch);
    EXPECT_NE(r.error.find("checksum"), std::string::npos) << r.error;
}

TEST(Manifest, ForeignVersionIsRefusedByName)
{
    JobDir job("manifest_version");
    saveManifest(job.str(), sampleManifest());

    // The version field is the u32 right after the 8-byte magic.
    patchManifestByte(job.str(), 8,
                      static_cast<unsigned char>(kManifestVersion + 7));

    const ManifestLoadResult r = loadManifest(job.str());
    EXPECT_EQ(r.status, ManifestStatus::WrongVersion);
    EXPECT_NE(r.error.find("version"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find(std::to_string(kManifestVersion + 7)),
              std::string::npos)
        << r.error;
}

TEST(Manifest, ForeignFileIsBadMagic)
{
    JobDir job("manifest_magic");
    {
        ByteFile f = ByteFile::create(manifestPath(job.str()));
        const char junk[64] = "definitely not a job manifest";
        f.writeAt(0, junk, sizeof(junk), "test junk");
    }
    const ManifestLoadResult r = loadManifest(job.str());
    EXPECT_EQ(r.status, ManifestStatus::BadMagic);
    EXPECT_NE(r.error.find("magic"), std::string::npos) << r.error;
}

TEST(Manifest, ChecksummedButInconsistentBodyIsMalformed)
{
    JobDir job("manifest_malformed");
    // currentStore admits only 0 or 1; saveManifest checksums
    // whatever it is given, so the CRC passes and only the
    // structural check can catch it.
    JobManifest m = sampleManifest();
    m.currentStore = 2;
    saveManifest(job.str(), m);

    const ManifestLoadResult r = loadManifest(job.str());
    EXPECT_EQ(r.status, ManifestStatus::Malformed);
    EXPECT_NE(r.error.find("inconsistent"), std::string::npos)
        << r.error;
}

TEST(Manifest, ParamMismatchNamesTheFirstDifferingField)
{
    const ManifestParams expected = sampleParams();
    EXPECT_EQ(describeParamMismatch(expected, expected), "");

    ManifestParams got = expected;
    got.recordBytes = 32;
    std::string msg = describeParamMismatch(expected, got);
    EXPECT_NE(msg.find("record width"), std::string::npos) << msg;
    EXPECT_NE(msg.find("was 32"), std::string::npos) << msg;
    EXPECT_NE(msg.find("request has 16"), std::string::npos) << msg;

    got = expected;
    got.chunkRecords = 500;
    msg = describeParamMismatch(expected, got);
    EXPECT_NE(msg.find("chunk records"), std::string::npos) << msg;

    got = expected;
    got.recordsIn += 1;
    msg = describeParamMismatch(expected, got);
    EXPECT_NE(msg.find("input records"), std::string::npos) << msg;

    got = expected;
    got.phase2Ell = 8;
    msg = describeParamMismatch(expected, got);
    EXPECT_NE(msg.find("phase-2 fan-in"), std::string::npos) << msg;
}

TEST(Manifest, RemoveJobArtifactsClearsEveryFixedName)
{
    JobDir job("manifest_remove");
    saveManifest(job.str(), sampleManifest());
    for (const char *name :
         {kManifestTempFileName, kFrontStoreFileName,
          kBackStoreFileName}) {
        ByteFile f = ByteFile::create(job.str() + "/" + name);
        const char b = 'x';
        f.writeAt(0, &b, 1, "test artifact");
    }

    removeJobArtifacts(job.str());
    for (const char *name :
         {kManifestFileName, kManifestTempFileName,
          kFrontStoreFileName, kBackStoreFileName})
        EXPECT_FALSE(fileExists(job.str() + "/" + name)) << name;
    // Removing an already-clean directory is a no-op, not an error.
    removeJobArtifacts(job.str());
}

} // namespace
} // namespace bonsai::io
