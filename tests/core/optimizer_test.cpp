/** @file Unit tests: the Bonsai optimizer reproduces the paper's
 *  published optimal configurations. */

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "core/platforms.hpp"

namespace bonsai
{
namespace
{

model::BonsaiInputs
inputs(std::uint64_t bytes, model::HardwareParams hw = core::awsF1(),
       std::uint64_t record_bytes = 4)
{
    model::BonsaiInputs in;
    in.array = {bytes / record_bytes, record_bytes};
    in.hw = hw;
    return in;
}

TEST(Optimizer, F1LatencyOptimalIsAmt32_256)
{
    // Section IV-A: "the latency-optimized configuration for this
    // setup uses a single AMT(32, 256)".
    core::Optimizer opt(inputs(16 * kGB));
    const auto best = opt.best(core::Objective::Latency);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->config.p, 32u);
    EXPECT_EQ(best->config.ell, 256u);
    EXPECT_EQ(best->config.lambdaPipe, 1u);
}

TEST(Optimizer, LatencyOptimalSaturatesDramBandwidth)
{
    // "optimal single-AMT configurations always have throughput p
    // exactly high enough to saturate DRAM bandwidth" (VI-B2).
    for (double bw : {8.0, 16.0, 32.0}) {
        model::HardwareParams hw = core::awsF1();
        hw.betaDram = bw * kGB;
        core::Optimizer opt(inputs(16 * kGB, hw));
        const auto best = opt.best(core::Objective::Latency);
        ASSERT_TRUE(best.has_value()) << bw;
        const double tree_rate = best->config.p * 250e6 * 4;
        EXPECT_GE(tree_rate * best->config.lambdaUnrl, bw * 1e9) << bw;
    }
}

TEST(Optimizer, ThroughputOptimalMatchesPaperPhase1)
{
    // Section IV-C: 8 GB chunks, pipeline of 4 AMT(8, 64) saturating
    // the 8 GB/s I/O bus.
    model::BonsaiInputs in = inputs(8 * kGB);
    in.arch.presortRunLength = 256;
    core::Optimizer opt(in);
    const auto best = opt.best(core::Objective::Throughput);
    ASSERT_TRUE(best.has_value());
    EXPECT_DOUBLE_EQ(best->perf.throughputBytesPerSec, 8e9);
    EXPECT_EQ(best->config.lambdaPipe, 4u);
    EXPECT_EQ(best->config.p, 8u);
    EXPECT_EQ(best->config.ell, 64u);
}

TEST(Optimizer, SsdPhase2LatencyOptimalIsAmt8_256)
{
    // Section IV-C phase 2: SSD as off-chip memory (8 GB/s), chunked
    // 8 GB runs -> AMT(8, 256).
    model::HardwareParams hw = core::awsF1();
    hw.betaDram = 8.0 * kGB;
    model::BonsaiInputs in = inputs(2 * kTB, hw);
    in.arch.presortRunLength = 2ULL * kGB; // 8 GB runs of 4 B records
    core::Optimizer opt(in);
    const auto best = opt.best(core::Objective::Latency);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->config.p, 8u);
    EXPECT_EQ(best->config.ell, 256u);
    EXPECT_EQ(best->perf.stages, 1u);
}

TEST(Optimizer, HbmPicksWideUnrolling)
{
    // Section IV-B: on a 512 GB/s HBM the optimizer unrolls many
    // p=32 trees to saturate the bandwidth (paper: 16x AMT(32, 2)).
    model::BonsaiInputs in = inputs(16 * kGB, core::hbmU50());
    core::SearchSpace space;
    space.withPresorter = false; // per-tree presorters exceed C_LUT
    core::Optimizer opt(in, space);
    const auto best = opt.best(core::Objective::Latency);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->config.p, 32u);
    EXPECT_GE(best->config.lambdaUnrl, 8u);
    EXPECT_LE(best->config.ell, 4u);
}

TEST(Optimizer, RanksFeasibleConfigsBestFirst)
{
    core::Optimizer opt(inputs(4 * kGB));
    const auto ranked = opt.rank(core::Objective::Latency);
    ASSERT_GT(ranked.size(), 10u);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_LE(ranked[i - 1].perf.latencySeconds,
                  ranked[i].perf.latencySeconds);
    }
    // Every ranked design must actually fit.
    for (const auto &rc : ranked) {
        EXPECT_LE(rc.resources.totalLut(), core::awsF1().cLut);
        EXPECT_GT(rc.batchBytes, 0u);
    }
}

TEST(Optimizer, InfeasibleWhenChipTooSmall)
{
    model::HardwareParams hw = core::awsF1();
    hw.cLut = 100; // tiny FPGA
    core::Optimizer opt(inputs(1 * kGB, hw));
    EXPECT_FALSE(opt.best(core::Objective::Latency).has_value());
}

TEST(Optimizer, ThroughputObjectiveRejectsUndersizedPipelines)
{
    // A pipeline that cannot hold the array (Equation 5) must not be
    // returned.
    model::BonsaiInputs in = inputs(32 * kGB);
    core::Optimizer opt(in);
    const auto ranked = opt.rank(core::Objective::Throughput);
    for (const auto &rc : ranked) {
        EXPECT_GE(model::pipelineCapacityRecords(in, rc.config),
                  in.array.n);
    }
}

TEST(Optimizer, WideRecordsStillHaveFeasibleConfigs)
{
    // 16-byte records (the gensort path).
    core::Optimizer opt(inputs(16 * kGB, core::awsF1(), 16));
    const auto best = opt.best(core::Objective::Latency);
    ASSERT_TRUE(best.has_value());
    // 128-bit records reach 32 GB/s with p = 8 (Table VI(b)).
    EXPECT_LE(best->config.p, 16u);
    EXPECT_GE(best->config.p * 250e6 * 16.0, 32e9);
}

} // namespace
} // namespace bonsai
