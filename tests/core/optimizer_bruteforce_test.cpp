/** @file Brute-force reference check of the optimizer: an independent
 *  exhaustive enumeration (written against the equations, not the
 *  optimizer's code paths) must find the same optimum. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "core/platforms.hpp"

namespace bonsai
{
namespace
{

/** Independent latency evaluation straight from Section III-A. */
double
referenceLatency(const model::BonsaiInputs &in, unsigned p,
                 unsigned ell, unsigned unrl)
{
    const double n_per_tree = std::ceil(
        static_cast<double>(in.array.n) / unrl);
    // ceil(log_ell(runs)) via repeated multiplication.
    const double runs = std::ceil(
        n_per_tree /
        static_cast<double>(in.arch.presortRunLength));
    unsigned stages = 0;
    double reach = 1.0;
    while (reach < runs) {
        reach *= ell;
        ++stages;
    }
    const double r = static_cast<double>(in.array.recordBytes);
    const double rate = std::min(p * in.arch.frequencyHz * r,
                                 in.hw.betaDram / unrl);
    return n_per_tree * r * stages / rate;
}

TEST(OptimizerBruteForce, LatencyOptimumMatchesReference)
{
    for (std::uint64_t bytes : {1 * kGB, 16 * kGB, 64 * kGB}) {
        for (double bw : {8.0, 32.0, 128.0}) {
            model::BonsaiInputs in;
            in.array = {bytes / 4, 4};
            in.hw = core::awsF1();
            in.hw.betaDram = bw * kGB;
            core::Optimizer opt(in);
            const auto best = opt.best(core::Objective::Latency);
            ASSERT_TRUE(best.has_value());

            // Reference: enumerate everything, keep the minimum over
            // configurations that the resource model admits.
            double ref_best = 1e300;
            for (unsigned p = 1; p <= 32; p *= 2) {
                for (unsigned ell = 2; ell <= 1024; ell *= 2) {
                    for (unsigned u = 1; u <= 64; u *= 2) {
                        amt::AmtConfig cfg{p, ell, u, 1};
                        if (!model::fits(in, cfg))
                            continue;
                        const double lat =
                            referenceLatency(in, p, ell, u);
                        if (lat <= 0.0) // degenerate zero-stage
                            continue;
                        ref_best = std::min(ref_best, lat);
                    }
                }
            }
            EXPECT_NEAR(best->perf.latencySeconds, ref_best,
                        1e-9 * ref_best)
                << bytes << " bytes at " << bw << " GB/s";
        }
    }
}

TEST(OptimizerBruteForce, ThroughputOptimumMatchesReference)
{
    model::BonsaiInputs in;
    in.array = {8ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    in.arch.presortRunLength = 256;
    core::Optimizer opt(in);
    const auto best = opt.best(core::Objective::Throughput);
    ASSERT_TRUE(best.has_value());

    double ref_best = 0.0;
    for (unsigned p = 1; p <= 32; p *= 2) {
        for (unsigned ell = 2; ell <= 1024; ell *= 2) {
            for (unsigned u = 1; u <= 64; u *= 2) {
                for (unsigned pipe = 1; pipe <= 8; pipe *= 2) {
                    amt::AmtConfig cfg{p, ell, u, pipe};
                    if (!model::fits(in, cfg))
                        continue;
                    if (model::pipelineCapacityRecords(in, cfg) <
                        in.array.n)
                        continue;
                    const double r = 4.0;
                    const double per_pipe = std::min(
                        {p * in.arch.frequencyHz * r,
                         in.hw.betaDram / (pipe * u), in.hw.betaIo});
                    ref_best = std::max(ref_best, u * per_pipe);
                }
            }
        }
    }
    EXPECT_DOUBLE_EQ(best->perf.throughputBytesPerSec, ref_best);
}

} // namespace
} // namespace bonsai
