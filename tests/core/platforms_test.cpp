/** @file Unit tests for the platform presets. */

#include <gtest/gtest.h>

#include "core/platforms.hpp"
#include "model/resource_model.hpp"

namespace bonsai
{
namespace
{

TEST(Platforms, AwsF1MatchesPaperSection6A)
{
    const auto hw = core::awsF1();
    EXPECT_DOUBLE_EQ(hw.betaDram, 32e9); // 4 banks x 8 GB/s
    EXPECT_EQ(hw.dramBanks, 4u);
    EXPECT_EQ(hw.cDram, 64 * kGB);
    EXPECT_EQ(hw.cLut, 862'128u);                    // Table IV
    EXPECT_EQ(model::bramBlockCapacity(hw), 1600u);  // Table IV
    EXPECT_EQ(hw.batchBytes, 4096u); // 1-4 KB batching (Section II)
}

TEST(Platforms, SingleBankIsOneQuarter)
{
    const auto hw = core::awsF1SingleBank();
    EXPECT_DOUBLE_EQ(hw.betaDram, 8e9);
    EXPECT_EQ(hw.dramBanks, 1u);
    // Same chip otherwise.
    EXPECT_EQ(hw.cLut, core::awsF1().cLut);
}

TEST(Platforms, HbmMatchesSection4B)
{
    const auto hw = core::hbmU50();
    EXPECT_DOUBLE_EQ(hw.betaDram, 512e9);
    EXPECT_EQ(hw.cDram, 16 * kGB);
    EXPECT_EQ(hw.dramBanks, 32u);
    const auto hw256 = core::hbmU50(256.0);
    EXPECT_DOUBLE_EQ(hw256.betaDram, 256e9);
}

TEST(Platforms, SsdDefaultsMatchSection4C)
{
    const core::SsdParams ssd;
    EXPECT_DOUBLE_EQ(ssd.ioBandwidth, 8e9);
    EXPECT_EQ(ssd.capacity, 2 * kTB);
    EXPECT_DOUBLE_EQ(core::kReprogramSeconds, 4.3);
}

} // namespace
} // namespace bonsai
