/** @file Unit tests: two-phase SSD plan reproduces Table V. */

#include <gtest/gtest.h>

#include "core/ssd_planner.hpp"

namespace bonsai
{
namespace
{

core::SsdPlan
planFor(std::uint64_t bytes)
{
    model::ArrayParams array{bytes / 4, 4};
    model::MergerArchParams arch;
    const auto plan = core::planSsdSort(array, core::awsF1(), arch,
                                        core::SsdParams{});
    EXPECT_TRUE(plan.has_value());
    return *plan;
}

TEST(SsdPlanner, TableVTwoTerabyteBreakdown)
{
    // Table V: phase one 256 s, reprogramming 4.3 s, phase two 256 s,
    // total 516.3 s (paper used 2 TB at 8 GB/s; decimal units give
    // 250 + 4.3 + 250).
    const core::SsdPlan plan = planFor(2 * kTB);
    EXPECT_NEAR(plan.phase1Seconds, 250.0, 5.0);
    EXPECT_NEAR(plan.phase2Seconds, 250.0, 5.0);
    EXPECT_DOUBLE_EQ(plan.reprogramSeconds, 4.3);
    EXPECT_NEAR(plan.totalSeconds(), 504.3, 10.0);
    EXPECT_EQ(plan.phase2Stages, 1u);
}

TEST(SsdPlanner, PhaseConfigsMatchPaper)
{
    const core::SsdPlan plan = planFor(2 * kTB);
    // Phase 1: pipeline of 4 AMT(8, 64) at 8 GB/s (Figure 4).
    EXPECT_EQ(plan.phase1.config.lambdaPipe, 4u);
    EXPECT_EQ(plan.phase1.config.p, 8u);
    EXPECT_EQ(plan.phase1.config.ell, 64u);
    EXPECT_DOUBLE_EQ(plan.phase1.perf.throughputBytesPerSec, 8e9);
    // Phase 2: one AMT(8, 256) (Figure 6).
    EXPECT_EQ(plan.phase2.config.p, 8u);
    EXPECT_EQ(plan.phase2.config.ell, 256u);
    // 8 GB phase-1 chunks.
    EXPECT_EQ(plan.chunkRecords, 2ULL * kGB);
}

TEST(SsdPlanner, SingleRoundTripUpToTwoTerabytes)
{
    // 256 chunks x 8 GB = 2 TB in one phase-2 round trip (IV-C).
    EXPECT_EQ(planFor(512 * kGB).phase2Stages, 1u);
    EXPECT_EQ(planFor(2 * kTB).phase2Stages, 1u);
}

TEST(SsdPlanner, SecondRoundTripBeyondTwoTerabytes)
{
    EXPECT_EQ(planFor(16 * kTB).phase2Stages, 2u);
    // Up to 512 TB with two round trips (256 * 2 TB).
    EXPECT_EQ(planFor(500 * kTB).phase2Stages, 2u);
}

TEST(SsdPlanner, ThroughputAtScaleMatchesPaperProjection)
{
    // "sort 2 TB of data in 512 s (4 GB/s)": total rate is half the
    // 8 GB/s line rate because the data makes two full trips.
    const core::SsdPlan plan = planFor(2 * kTB);
    const double rate =
        static_cast<double>(2 * kTB) / plan.totalSeconds();
    EXPECT_NEAR(rate / 1e9, 4.0, 0.1);
}

TEST(SsdPlanner, SeventeenXOverTerabyteSort)
{
    // Paper: 17.3x lower latency than TerabyteSort [29] on 1 TB
    // (4,347 ms/GB vs Bonsai's ~250 ms/GB + reprogram).
    const core::SsdPlan plan = planFor(1 * kTB);
    const double ms_per_gb =
        plan.totalSeconds() * 1e3 / (1 * kTB / kGB);
    EXPECT_NEAR(4347.0 / ms_per_gb, 17.3, 0.7);
}

} // namespace
} // namespace bonsai
