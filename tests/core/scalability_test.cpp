/** @file Unit tests: Figure 13 / Table I scalability curve. */

#include <gtest/gtest.h>

#include "core/scalability.hpp"

namespace bonsai
{
namespace
{

TEST(Scalability, Figure13StepAtTwoGb)
{
    // First step: 3 -> 4 DRAM stages between 1 GB and 2 GB (1.33x).
    core::ScalabilityParams params;
    const auto at_1gb = core::scalabilityAt(params, 1 * kGB);
    const auto at_2gb = core::scalabilityAt(params, 2 * kGB);
    EXPECT_EQ(at_1gb.stages, 3u);
    EXPECT_EQ(at_2gb.stages, 4u);
    EXPECT_NEAR(at_2gb.msPerGb / at_1gb.msPerGb, 4.0 / 3.0, 1e-6);
}

TEST(Scalability, Figure13SwitchToSsdAt128Gb)
{
    core::ScalabilityParams params;
    EXPECT_FALSE(core::scalabilityAt(params, 64 * kGB).usesSsd);
    EXPECT_TRUE(core::scalabilityAt(params, 128 * kGB).usesSsd);
}

TEST(Scalability, Figure13ExtraPhase2StageAt32Tb)
{
    // 64 GB chunks x 256 = 16 TB in one round trip; 32 TB needs two.
    core::ScalabilityParams params;
    EXPECT_EQ(core::scalabilityAt(params, 16 * kTB).stages, 2u);
    EXPECT_EQ(core::scalabilityAt(params, 32 * kTB).stages, 3u);
    const double ratio = core::scalabilityAt(params, 32 * kTB).msPerGb /
        core::scalabilityAt(params, 16 * kTB).msPerGb;
    EXPECT_NEAR(ratio, 1.5, 1e-6);
}

TEST(Scalability, Figure13FourthStepAt4096Tb)
{
    // 256^2 x 64 GB = 4096 TB: one more round trip past it (1.33x).
    core::ScalabilityParams params;
    EXPECT_EQ(core::scalabilityAt(params, 4096 * kTB).stages, 3u);
    EXPECT_EQ(core::scalabilityAt(params, 8192 * kTB).stages, 4u);
    const double ratio =
        core::scalabilityAt(params, 8192 * kTB).msPerGb /
        core::scalabilityAt(params, 4096 * kTB).msPerGb;
    EXPECT_NEAR(ratio, 4.0 / 3.0, 1e-6);
}

TEST(Scalability, TableOneBonsaiRowDramRange)
{
    // The as-implemented DRAM sorter (ell = 64, measured 29 GB/s)
    // gives Table I's 172 ms/GB across 4-64 GB.
    core::ScalabilityParams params;
    params.dramEll = 64;
    for (std::uint64_t gb : {4u, 8u, 16u, 32u, 64u}) {
        const auto pt = core::scalabilityAt(params, gb * kGB);
        EXPECT_EQ(pt.stages, 5u) << gb;
        EXPECT_NEAR(pt.msPerGb, 172.0, 2.5) << gb;
    }
}

TEST(Scalability, TableOneBonsaiRowSsdRange)
{
    // 128 GB - 2 TB: 250 ms/GB (two 8 GB/s passes);
    // 100 TB: 375 ms/GB (three passes).
    core::ScalabilityParams params;
    params.dramEll = 64;
    for (auto bytes : {128 * kGB, 512 * kGB, 2 * kTB}) {
        const auto pt = core::scalabilityAt(params, bytes);
        EXPECT_NEAR(pt.msPerGb, 250.0, 1.0);
    }
    EXPECT_NEAR(core::scalabilityAt(params, 100 * kTB).msPerGb, 375.0,
                1.0);
}

TEST(Scalability, LatencyScalesLinearlyWithinRegime)
{
    core::ScalabilityParams params;
    const auto a = core::scalabilityAt(params, 4 * kGB);
    const auto b = core::scalabilityAt(params, 8 * kGB);
    EXPECT_EQ(a.stages, b.stages);
    EXPECT_NEAR(b.latencySeconds / a.latencySeconds, 2.0, 1e-9);
}

} // namespace
} // namespace bonsai
