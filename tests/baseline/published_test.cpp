/** @file Unit tests for the published-results tables. */

#include <gtest/gtest.h>

#include "baseline/published.hpp"

namespace bonsai
{
namespace
{

TEST(Published, Table1LookupExactColumns)
{
    EXPECT_EQ(baseline::publishedMsPerGb("PARADIS [20]", 4 * kGB),
              436.0);
    EXPECT_EQ(baseline::publishedMsPerGb("HRS [18]", 32 * kGB), 224.0);
    EXPECT_EQ(baseline::publishedMsPerGb("SampleSort [19]", 16 * kGB),
              220.0);
    EXPECT_EQ(
        baseline::publishedMsPerGb("TerabyteSort [29]", 2 * kTB),
        4347.0);
}

TEST(Published, DashesReturnNullopt)
{
    EXPECT_FALSE(
        baseline::publishedMsPerGb("PARADIS [20]", 2 * kTB)
            .has_value());
    EXPECT_FALSE(
        baseline::publishedMsPerGb("SampleSort [19]", 100 * kTB)
            .has_value());
    EXPECT_FALSE(
        baseline::publishedMsPerGb("HRS [18]", 2 * kTB).has_value());
}

TEST(Published, UnknownSystemReturnsNullopt)
{
    EXPECT_FALSE(
        baseline::publishedMsPerGb("NoSuchSorter", 4 * kGB)
            .has_value());
}

TEST(Published, NearestColumnLookup)
{
    // 6 GB is nearest (in log space) to 8 GB... log2(6/4)=0.58,
    // log2(8/6)=0.415 -> 8 GB column.
    EXPECT_EQ(baseline::publishedMsPerGb("PARADIS [20]", 6 * kGB),
              436.0);
    EXPECT_EQ(baseline::publishedMsPerGb("HRS [18]", 48 * kGB),
              260.0); // nearest 64 GB
}

TEST(Published, BonsaiRowBeatsAllComparatorsInTable1)
{
    // The headline claim: Bonsai's row is the minimum of every
    // column where any system reports a result.
    for (std::size_t col = 0; col < baseline::kTable1Sizes.size();
         ++col) {
        for (const auto &row : baseline::kTable1Rows) {
            if (row.msPerGb[col] == baseline::kNoResult)
                continue;
            EXPECT_LT(baseline::kTable1Bonsai[col], row.msPerGb[col])
                << row.name << " col " << col;
        }
    }
}

TEST(Published, Figure12BonsaiHasBestEfficiency)
{
    // Bonsai 8 (single 8 GB/s bank, 5-stage ell = 64 sorter):
    // efficiency (1/5) = 0.2; every comparator must be well below.
    for (const auto &entry : baseline::figure12Comparators()) {
        EXPECT_LT(entry.efficiency(), 0.1) << entry.name;
        EXPECT_GT(entry.efficiency(), 0.0) << entry.name;
    }
}

} // namespace
} // namespace bonsai
