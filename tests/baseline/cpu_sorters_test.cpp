/** @file Unit tests for the CPU baseline sorters. */

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/cpu_sorters.hpp"
#include "common/checks.hpp"
#include "common/random.hpp"

namespace bonsai
{
namespace
{

using SortFn = void (*)(std::vector<Record> &);

void
lsd(std::vector<Record> &data)
{
    baseline::lsdRadixSort(data);
}

void
paradis(std::vector<Record> &data)
{
    baseline::parallelMsdRadixSort(data, 4);
}

void
sample(std::vector<Record> &data)
{
    baseline::sampleSortCpu(data, 32, 4);
}

class CpuSorters : public ::testing::TestWithParam<SortFn>
{
};

TEST_P(CpuSorters, SortsAllDistributions)
{
    for (Distribution dist :
         {Distribution::UniformRandom, Distribution::Sorted,
          Distribution::Reverse, Distribution::AllEqual,
          Distribution::FewDistinct, Distribution::NearlySorted}) {
        auto data = makeRecords(20'000, dist);
        const Fingerprint before =
            fingerprint(std::span<const Record>(data));
        GetParam()(data);
        EXPECT_TRUE(isSorted(std::span<const Record>(data)));
        EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
    }
}

TEST_P(CpuSorters, SortsEdgeSizes)
{
    for (std::size_t n : {0u, 1u, 2u, 3u, 63u, 64u, 65u, 1000u}) {
        auto data = makeRecords(n, Distribution::UniformRandom);
        GetParam()(data);
        EXPECT_TRUE(isSorted(std::span<const Record>(data))) << n;
        EXPECT_EQ(data.size(), n);
    }
}

TEST_P(CpuSorters, MatchesStdSortKeys)
{
    auto data = makeRecords(50'000, Distribution::UniformRandom, 77);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    GetParam()(data);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(data[i].key, expect[i].key);
}

INSTANTIATE_TEST_SUITE_P(All, CpuSorters,
                         ::testing::Values(&baseline::stdSort, &lsd,
                                           &paradis, &sample),
                         [](const auto &param_info) -> std::string {
                             switch (param_info.index) {
                               case 0: return "stdSort";
                               case 1: return "lsdRadix";
                               case 2: return "parallelMsdRadix";
                               default: return "sampleSort";
                             }
                         });

TEST(LsdRadix, KeysWithHighBytesSet)
{
    std::vector<Record> data;
    SplitMix64 rng(1);
    for (int i = 0; i < 5000; ++i)
        data.push_back(Record{rng.next() | (1ULL << 63), 0});
    baseline::lsdRadixSort(data);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
}

TEST(ParallelMsdRadix, SingleThreadFallback)
{
    auto data = makeRecords(10'000, Distribution::UniformRandom);
    baseline::parallelMsdRadixSort(data, 1);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
}

TEST(SampleSort, ManyBucketsFewRecords)
{
    auto data = makeRecords(100, Distribution::UniformRandom);
    baseline::sampleSortCpu(data, 64, 2);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
}

} // namespace
} // namespace bonsai
