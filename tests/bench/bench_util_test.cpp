/** @file Unit tests for the shared bench helpers. */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "bench_util.hpp"

namespace bonsai
{
namespace
{

TEST(SizeLabel, SubMegabyteUsesBytes)
{
    EXPECT_EQ(bench::sizeLabel(0), "0 B");
    EXPECT_EQ(bench::sizeLabel(999'999), "999999 B");
}

TEST(SizeLabel, MegabyteRange)
{
    EXPECT_EQ(bench::sizeLabel(kMB), "1 MB");
    EXPECT_EQ(bench::sizeLabel(512 * kMB), "512 MB");
    // Non-multiple gigabytes truncate to MB (display-only helper).
    EXPECT_EQ(bench::sizeLabel(1500 * kMB), "1500 MB");
}

TEST(SizeLabel, GigabyteMultiples)
{
    EXPECT_EQ(bench::sizeLabel(kGB), "1 GB");
    EXPECT_EQ(bench::sizeLabel(4 * kGB), "4 GB");
    EXPECT_EQ(bench::sizeLabel(999 * kGB), "999 GB");
}

TEST(SizeLabel, TerabyteMultiplesStayIntegral)
{
    EXPECT_EQ(bench::sizeLabel(kTB), "1 TB");
    EXPECT_EQ(bench::sizeLabel(2 * kTB), "2 TB");
    EXPECT_EQ(bench::sizeLabel(9 * kTB), "9 TB");
}

TEST(SizeLabel, FractionalTerabytesBelowTenKeepOneDecimal)
{
    // Regression: these used to fall through to a GB label
    // ("1500 GB") because the >= 10 TB branch shadowed them.
    EXPECT_EQ(bench::sizeLabel(1500 * kGB), "1.5 TB");
    EXPECT_EQ(bench::sizeLabel(2500 * kGB), "2.5 TB");
    EXPECT_EQ(bench::sizeLabel(9900 * kGB), "9.9 TB");
}

TEST(SizeLabel, TenTerabytesAndAboveRoundToWholeTB)
{
    // Regression: the >= 10 TB rounding branch must be reachable for
    // exact multiples and near-multiples alike.
    EXPECT_EQ(bench::sizeLabel(10 * kTB), "10 TB");
    EXPECT_EQ(bench::sizeLabel(10 * kTB + 100 * kGB), "10 TB");
    EXPECT_EQ(bench::sizeLabel(12 * kTB), "12 TB");
    EXPECT_EQ(bench::sizeLabel(100 * kTB), "100 TB");
}

TEST(JsonReporter, WritesConfigAndPoints)
{
    bench::JsonReporter report("util_test");
    report.config("p", std::uint64_t{16});
    report.config("label", std::string("a \"quoted\" name"));
    report.config("bandwidth_gbs", 12.5);
    report.beginPoint();
    report.field("cycles", std::uint64_t{123456});
    report.field("seconds", 0.0005);
    report.field("residual", -0.03);
    report.beginPoint();
    report.field("cycles", std::uint64_t{654321});

    ASSERT_TRUE(report.write(::testing::TempDir()));
    std::ifstream in(::testing::TempDir() + "/BENCH_util_test.json");
    ASSERT_TRUE(in.good());
    std::stringstream body;
    body << in.rdbuf();
    const std::string text = body.str();

    EXPECT_NE(text.find("\"bench\": \"util_test\""), std::string::npos);
    EXPECT_NE(text.find("\"p\": 16"), std::string::npos);
    EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(text.find("\"bandwidth_gbs\": 12.5"), std::string::npos);
    EXPECT_NE(text.find("\"cycles\": 123456"), std::string::npos);
    EXPECT_NE(text.find("\"seconds\": 0.0005"), std::string::npos);
    EXPECT_NE(text.find("\"residual\": -0.03"), std::string::npos);
    EXPECT_NE(text.find("\"cycles\": 654321"), std::string::npos);
    // Exactly two point objects.
    std::size_t count = 0;
    for (std::size_t at = text.find("\"cycles\"");
         at != std::string::npos; at = text.find("\"cycles\"", at + 1))
        ++count;
    EXPECT_EQ(count, 2u);
}

TEST(JsonReporter, EmptyPointsStillValid)
{
    bench::JsonReporter report("empty_test");
    report.config("note", std::string("no points"));
    ASSERT_TRUE(report.write(::testing::TempDir()));
    std::ifstream in(::testing::TempDir() + "/BENCH_empty_test.json");
    std::stringstream body;
    body << in.rdbuf();
    EXPECT_NE(body.str().find("\"points\": []"), std::string::npos);
}

} // namespace
} // namespace bonsai
