/** @file Unit tests for the record types. */

#include <gtest/gtest.h>

#include "common/record.hpp"

namespace bonsai
{
namespace
{

TEST(Record, TerminalIsAllZero)
{
    EXPECT_TRUE(Record::terminal().isTerminal());
    EXPECT_EQ(Record::terminal().key, 0u);
    EXPECT_EQ(Record::terminal().value, 0u);
}

TEST(Record, NonZeroIsNotTerminal)
{
    EXPECT_FALSE((Record{1, 0}).isTerminal());
    EXPECT_FALSE((Record{0, 1}).isTerminal());
    EXPECT_FALSE((Record{5, 7}).isTerminal());
}

TEST(Record, OrderingComparesKeyOnly)
{
    const Record a{1, 99};
    const Record b{2, 0};
    const Record c{2, 123};
    EXPECT_TRUE(a < b);
    EXPECT_FALSE(b < a);
    EXPECT_FALSE(b < c);
    EXPECT_FALSE(c < b);
    EXPECT_TRUE(b <= c);
    EXPECT_TRUE(c <= b);
}

TEST(Record, EqualityComparesBothFields)
{
    EXPECT_EQ((Record{1, 2}), (Record{1, 2}));
    EXPECT_NE((Record{1, 2}), (Record{1, 3}));
    EXPECT_NE((Record{1, 2}), (Record{2, 2}));
}

TEST(Record128, LexicographicKeyOrdering)
{
    const Record128 a{1, 100, 0};
    const Record128 b{2, 0, 0};
    const Record128 c{2, 1, 0};
    EXPECT_TRUE(a < b);
    EXPECT_TRUE(b < c);
    EXPECT_TRUE(a < c);
    EXPECT_FALSE(c < a);
    EXPECT_TRUE(a <= a);
}

TEST(Record128, TerminalDetection)
{
    EXPECT_TRUE(Record128::terminal().isTerminal());
    EXPECT_FALSE((Record128{0, 0, 1}).isTerminal());
    EXPECT_FALSE((Record128{0, 1, 0}).isTerminal());
    EXPECT_FALSE((Record128{1, 0, 0}).isTerminal());
}

} // namespace
} // namespace bonsai
