/** @file Unit tests for the gensort-compatible generator. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/gensort.hpp"

namespace bonsai
{
namespace
{

TEST(Gensort, RecordSizeMatchesSortBenchmark)
{
    EXPECT_EQ(GensortRecord::kBytes, 100u);
    EXPECT_EQ(GensortRecord::kKeyBytes, 10u);
    EXPECT_EQ(GensortRecord::kValueBytes, 90u);
}

TEST(Gensort, DeterministicAndSkipAheadConsistent)
{
    GensortGenerator gen(1234);
    const auto all = gen.generate(0, 100);
    const auto tail = gen.generate(50, 50);
    ASSERT_EQ(tail.size(), 50u);
    for (std::size_t i = 0; i < 50; ++i)
        EXPECT_EQ(all[50 + i].bytes, tail[i].bytes);
}

TEST(Gensort, PackPreservesKeyOrdering)
{
    GensortGenerator gen(99);
    auto recs = gen.generate(0, 2000);
    auto packed = packGensort(recs);
    std::sort(recs.begin(), recs.end());
    std::sort(packed.begin(), packed.end());
    const auto repacked = packGensort(recs);
    for (std::size_t i = 0; i < packed.size(); ++i) {
        EXPECT_EQ(packed[i].keyHi, repacked[i].keyHi);
        EXPECT_EQ(packed[i].keyLo, repacked[i].keyLo);
    }
}

TEST(Gensort, PackedRecordsAreNeverTerminal)
{
    GensortGenerator gen(5);
    for (const auto &rec : gen.generate(0, 500))
        EXPECT_FALSE(packGensort(rec).isTerminal());
}

TEST(Gensort, Hash48Is48Bits)
{
    GensortGenerator gen(8);
    for (const auto &rec : gen.generate(0, 100)) {
        const std::uint64_t h = hash48(
            rec.bytes.data() + GensortRecord::kKeyBytes,
            GensortRecord::kValueBytes);
        EXPECT_EQ(h >> 48, 0u);
    }
}

TEST(Gensort, Hash48SensitiveToEveryBytePosition)
{
    std::array<std::uint8_t, 16> base{};
    const std::uint64_t h0 = hash48(base.data(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        auto copy = base;
        copy[i] ^= 0x5A;
        EXPECT_NE(hash48(copy.data(), copy.size()), h0)
            << "byte " << i;
    }
}

TEST(Gensort, ValsortSummaryDetectsUnsortedInput)
{
    GensortGenerator gen(3);
    auto recs = gen.generate(0, 1000);
    const ValsortSummary before = valsortSummary(recs);
    EXPECT_EQ(before.records, 1000u);
    EXPECT_FALSE(before.sorted); // random input
    std::sort(recs.begin(), recs.end());
    const ValsortSummary after = valsortSummary(recs);
    EXPECT_TRUE(after.sorted);
    EXPECT_EQ(after.unorderedAt, 0u);
    // Checksum is order-independent: sorted output must match input.
    EXPECT_EQ(after.checksum, before.checksum);
    EXPECT_EQ(after.records, before.records);
}

TEST(Gensort, ValsortSummaryChecksumDetectsCorruption)
{
    GensortGenerator gen(4);
    auto recs = gen.generate(0, 200);
    const ValsortSummary before = valsortSummary(recs);
    recs[100].bytes[50] ^= 0xFF;
    EXPECT_NE(valsortSummary(recs).checksum, before.checksum);
}

TEST(Gensort, ValsortSummaryCountsDuplicates)
{
    GensortGenerator gen(5);
    auto recs = gen.generate(0, 100);
    recs[10] = recs[11] = recs[12]; // three equal keys
    std::sort(recs.begin(), recs.end());
    const ValsortSummary summary = valsortSummary(recs);
    EXPECT_GE(summary.duplicateKeys, 2u);
}

TEST(Gensort, KeysLookUniform)
{
    GensortGenerator gen(77);
    const auto recs = gen.generate(0, 4000);
    // First key byte should span most of the byte range.
    std::array<int, 256> seen{};
    for (const auto &rec : recs)
        ++seen[rec.bytes[0]];
    int nonzero = 0;
    for (int c : seen)
        nonzero += (c > 0);
    EXPECT_GT(nonzero, 200);
}

} // namespace
} // namespace bonsai
