/** @file
 * Behavioral tests for the annotated sync primitives.  The static
 * half of the contract (unlocked access, double-acquire, wrong-order)
 * is pinned at compile time by tests/static/; these tests cover the
 * runtime half — mutual exclusion, wakeups, relocking and the
 * first-error latch — and give TSan real schedules to chew on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/sync.hpp"
#include "common/thread_pool.hpp"

namespace bonsai
{
namespace
{

TEST(SyncPrimitives, ScopedLockProvidesMutualExclusion)
{
    // A non-atomic counter bumped from many tasks: only the lock
    // keeps the final count exact (and TSan honest).
    Mutex mutex;
    std::uint64_t count = 0;
    ThreadPool pool(8);
    pool.parallelFor(10000, [&](std::uint64_t) {
        ScopedLock lock(mutex);
        ++count;
    });
    EXPECT_EQ(count, 10000u);
}

TEST(SyncPrimitives, ScopedLockRelocksMidScope)
{
    // The BackgroundWorker::loop pattern: open the critical section
    // around outside work, then re-enter it on the same ScopedLock.
    Mutex mutex;
    std::uint64_t inside = 0;
    std::atomic<std::uint64_t> outside{0};
    ThreadPool pool(4);
    pool.parallelFor(1000, [&](std::uint64_t) {
        ScopedLock lock(mutex);
        ++inside;
        lock.unlock();
        outside.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
        ++inside;
    });
    EXPECT_EQ(inside, 2000u);
    EXPECT_EQ(outside.load(std::memory_order_relaxed), 1000u);
}

TEST(SyncPrimitives, CondVarWakesPredicateLoopWaiters)
{
    // Producer/consumer handshake across two threads, repeated enough
    // to exercise both the fast path (already signaled) and the slow
    // path (waiter actually sleeps).
    Mutex mutex;
    CondVar cv;
    int token = 0; // +1 by producer, -1 by consumer; bounded by 1
    BackgroundWorker producer;
    producer.post([&] {
        for (int i = 0; i < 500; ++i) {
            ScopedLock lock(mutex);
            while (token != 0)
                cv.wait(mutex);
            ++token;
            cv.notifyAll();
        }
    });
    int consumed = 0;
    for (int i = 0; i < 500; ++i) {
        ScopedLock lock(mutex);
        while (token != 1)
            cv.wait(mutex);
        --token;
        ++consumed;
        cv.notifyAll();
    }
    producer.drain();
    EXPECT_EQ(consumed, 500);
    EXPECT_EQ(token, 0);
}

TEST(SyncPrimitives, ErrorTrapKeepsTheFirstError)
{
    ErrorTrap trap;
    try {
        throw std::runtime_error("first");
    } catch (...) {
        trap.store(std::current_exception());
    }
    try {
        throw std::logic_error("second");
    } catch (...) {
        trap.store(std::current_exception());
    }
    EXPECT_THROW(trap.rethrowIfSet(), std::runtime_error);
}

TEST(SyncPrimitives, ErrorTrapConsumesOnRethrow)
{
    ErrorTrap trap;
    trap.rethrowIfSet(); // empty trap is a no-op
    try {
        throw std::runtime_error("boom");
    } catch (...) {
        trap.store(std::current_exception());
    }
    EXPECT_THROW(trap.rethrowIfSet(), std::runtime_error);
    trap.rethrowIfSet(); // consumed: second call is a no-op
}

TEST(SyncPrimitives, ErrorTrapUnderConcurrentStores)
{
    // The parallelFor catch-block usage: many tasks fail at once, the
    // submitting thread sees exactly one error afterwards.
    ErrorTrap trap;
    ThreadPool pool(8);
    pool.parallelFor(256, [&](std::uint64_t i) {
        try {
            throw std::runtime_error("task " + std::to_string(i));
        } catch (...) {
            trap.store(std::current_exception());
        }
    });
    EXPECT_THROW(trap.rethrowIfSet(), std::runtime_error);
    trap.rethrowIfSet();
}

TEST(SyncPrimitives, ErrorTrapCountsSecondaryErrors)
{
    // Unwind errors behind a primary failure are counted, not kept:
    // first error wins, the tally is telemetry.
    ErrorTrap trap;
    try {
        throw std::runtime_error("primary");
    } catch (...) {
        trap.store(std::current_exception());
    }
    for (int i = 0; i < 3; ++i) {
        try {
            throw std::logic_error("cleanup");
        } catch (...) {
            trap.storeSecondary(std::current_exception());
        }
    }
    EXPECT_EQ(trap.secondaryCount(), 3u);
    EXPECT_THROW(trap.rethrowIfSet(), std::runtime_error);
}

TEST(SyncPrimitives, ErrorTrapHoldsLoneCleanupError)
{
    // A cleanup failure with no primary behind it still fails the
    // operation — it must not vanish into a counter.
    ErrorTrap trap;
    try {
        throw std::runtime_error("cleanup-only");
    } catch (...) {
        trap.storeSecondary(std::current_exception());
    }
    EXPECT_EQ(trap.secondaryCount(), 0u);
    EXPECT_THROW(trap.rethrowIfSet(), std::runtime_error);
}

TEST(SyncPrimitives, ErrorTrapDemotesHeldCleanupErrorToSecondary)
{
    // Destructors can observe their error before the thrower's catch
    // block stores the primary; the primary must still win.
    ErrorTrap trap;
    try {
        throw std::logic_error("cleanup, observed first");
    } catch (...) {
        trap.storeSecondary(std::current_exception());
    }
    try {
        throw std::runtime_error("the real failure");
    } catch (...) {
        trap.store(std::current_exception());
    }
    EXPECT_EQ(trap.secondaryCount(), 1u);
    EXPECT_THROW(trap.rethrowIfSet(), std::runtime_error);
}

} // namespace
} // namespace bonsai
