/** @file Unit tests for the output-validation helpers. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/checks.hpp"
#include "common/random.hpp"

namespace bonsai
{
namespace
{

TEST(IsSorted, DetectsSortedAndUnsorted)
{
    std::vector<Record> recs = {{1, 0}, {2, 0}, {2, 1}, {5, 0}};
    EXPECT_TRUE(isSorted(std::span<const Record>(recs)));
    recs.push_back({4, 0});
    EXPECT_FALSE(isSorted(std::span<const Record>(recs)));
}

TEST(IsSorted, EmptyAndSingleton)
{
    std::vector<Record> empty;
    EXPECT_TRUE(isSorted(std::span<const Record>(empty)));
    std::vector<Record> one = {{9, 0}};
    EXPECT_TRUE(isSorted(std::span<const Record>(one)));
}

TEST(Fingerprint, InvariantUnderPermutation)
{
    auto recs = makeRecords(4096, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(recs));
    std::sort(recs.begin(), recs.end());
    const Fingerprint after =
        fingerprint(std::span<const Record>(recs));
    EXPECT_EQ(before, after);
}

TEST(Fingerprint, DetectsSubstitution)
{
    auto recs = makeRecords(128, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(recs));
    recs[64].key ^= 1;
    EXPECT_NE(before, fingerprint(std::span<const Record>(recs)));
}

TEST(Fingerprint, DetectsDuplicationOfOneRecord)
{
    auto recs = makeRecords(128, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(recs));
    recs[10] = recs[11];
    EXPECT_NE(before, fingerprint(std::span<const Record>(recs)));
}

TEST(Fingerprint, DetectsCountChange)
{
    auto recs = makeRecords(128, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(recs));
    recs.pop_back();
    const Fingerprint after =
        fingerprint(std::span<const Record>(recs));
    EXPECT_NE(before, after);
    EXPECT_EQ(after.count + 1, before.count);
}

TEST(Fingerprint, WorksForRecord128)
{
    auto recs = makeRecords128(512, 3);
    const Fingerprint before =
        fingerprint(std::span<const Record128>(recs));
    std::sort(recs.begin(), recs.end());
    EXPECT_EQ(before, fingerprint(std::span<const Record128>(recs)));
}

} // namespace
} // namespace bonsai
