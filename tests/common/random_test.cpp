/** @file Unit tests for the deterministic generators. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.hpp"

namespace bonsai
{
namespace
{

TEST(SplitMix64, DeterministicForSeed)
{
    SplitMix64 a(7);
    SplitMix64 b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, KnownFirstValue)
{
    // Reference value of SplitMix64 with seed 0 (Vigna's test vector).
    SplitMix64 rng(0);
    EXPECT_EQ(rng.next(), 0xE220A8397B1DCDAFULL);
}

TEST(SplitMix64, NextDoubleInUnitInterval)
{
    SplitMix64 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(MakeRecords, NeverProducesTerminal)
{
    for (Distribution dist :
         {Distribution::UniformRandom, Distribution::Sorted,
          Distribution::Reverse, Distribution::AllEqual,
          Distribution::FewDistinct, Distribution::NearlySorted}) {
        const auto recs = makeRecords(512, dist);
        for (const Record &r : recs)
            EXPECT_FALSE(r.isTerminal());
    }
}

TEST(MakeRecords, SortedIsSorted)
{
    const auto recs = makeRecords(1000, Distribution::Sorted);
    EXPECT_TRUE(std::is_sorted(recs.begin(), recs.end()));
}

TEST(MakeRecords, ReverseIsReverseSorted)
{
    auto recs = makeRecords(1000, Distribution::Reverse);
    EXPECT_TRUE(std::is_sorted(recs.rbegin(), recs.rend()));
}

TEST(MakeRecords, AllEqualHasOneKey)
{
    const auto recs = makeRecords(100, Distribution::AllEqual);
    for (const Record &r : recs)
        EXPECT_EQ(r.key, recs[0].key);
}

TEST(MakeRecords, FewDistinctHasAtMost16Keys)
{
    const auto recs = makeRecords(4096, Distribution::FewDistinct);
    std::set<std::uint64_t> keys;
    for (const Record &r : recs)
        keys.insert(r.key);
    EXPECT_LE(keys.size(), 16u);
    EXPECT_GT(keys.size(), 1u);
}

TEST(MakeRecords, ValuesCarryOriginalIndex)
{
    const auto recs = makeRecords(64, Distribution::UniformRandom);
    for (std::size_t i = 0; i < recs.size(); ++i)
        EXPECT_EQ(recs[i].value, i);
}

TEST(MakeRecords128, NonTerminalAndDeterministic)
{
    const auto a = makeRecords128(128, 9);
    const auto b = makeRecords128(128, 9);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]);
        EXPECT_FALSE(a[i].isTerminal());
    }
}

} // namespace
} // namespace bonsai
