/** @file Unit tests for byte/time unit helpers. */

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace bonsai
{
namespace
{

TEST(Units, DecimalConstants)
{
    EXPECT_EQ(kKB, 1000u);
    EXPECT_EQ(kMB, 1000'000u);
    EXPECT_EQ(kGB, 1000'000'000u);
    EXPECT_EQ(kTB, 1000'000'000'000u);
}

TEST(Units, BinaryConstants)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024);
    EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
}

TEST(Units, Conversions)
{
    EXPECT_EQ(gb(4), 4u * kGB);
    EXPECT_EQ(gb(0.5), kGB / 2);
    EXPECT_EQ(tb(2), 2u * kTB);
    EXPECT_DOUBLE_EQ(toGb(16 * kGB), 16.0);
    EXPECT_DOUBLE_EQ(toMs(1.5), 1500.0);
}

TEST(Units, PaperThroughputIdentity)
{
    // The convention that makes the paper's numbers exact: a p = 32
    // tree at 250 MHz on 4-byte records is exactly 32 (decimal) GB/s.
    EXPECT_DOUBLE_EQ(32.0 * 250e6 * 4.0, 32.0 * kGB);
}

} // namespace
} // namespace bonsai
