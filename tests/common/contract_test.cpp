/** @file Unit tests for the contract-checking macros. */

#include <gtest/gtest.h>

#include "common/contract.hpp"
#include "sim/fifo.hpp"

namespace bonsai
{
namespace
{

TEST(Contract, PassingChecksAreSilent)
{
    // These must be no-ops in every build configuration.
    BONSAI_REQUIRE(1 + 1 == 2, "arithmetic works");
    BONSAI_ENSURE(true, "trivially true");
    BONSAI_INVARIANT(2 > 1, "ordering works");
}

TEST(Contract, FailCarriesFullContext)
{
    // contracts::fail is unconditional (it backs the macros but also
    // release-mode violations), so its payload is testable in every
    // build.
    try {
        contracts::fail("invariant", "x == y", "somefile.hpp", 42,
                        "the message");
        FAIL() << "fail() must not return";
    } catch (const ContractViolation &e) {
        EXPECT_STREQ(e.kind(), "invariant");
        EXPECT_STREQ(e.expression(), "x == y");
        EXPECT_STREQ(e.file(), "somefile.hpp");
        EXPECT_EQ(e.line(), 42);
        const std::string what = e.what();
        EXPECT_NE(what.find("invariant violated"), std::string::npos);
        EXPECT_NE(what.find("the message"), std::string::npos);
        EXPECT_NE(what.find("x == y"), std::string::npos);
        EXPECT_NE(what.find("somefile.hpp:42"), std::string::npos);
    }
}

TEST(Contract, ViolationIsALogicError)
{
    // Pre-contract code threw std::logic_error from release-mode
    // checks; callers catching that must keep working.
    EXPECT_THROW(
        contracts::fail("precondition", "false", __FILE__, __LINE__,
                        "compat"),
        std::logic_error);
}

TEST(Contract, RequireThrowsWithKind)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    try {
        BONSAI_REQUIRE(false, "require fires");
        FAIL() << "BONSAI_REQUIRE(false) must throw";
    } catch (const ContractViolation &e) {
        EXPECT_STREQ(e.kind(), "precondition");
        EXPECT_STREQ(e.expression(), "false");
    }
}

TEST(Contract, EnsureThrowsWithKind)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    try {
        BONSAI_ENSURE(false, "ensure fires");
        FAIL() << "BONSAI_ENSURE(false) must throw";
    } catch (const ContractViolation &e) {
        EXPECT_STREQ(e.kind(), "postcondition");
    }
}

TEST(Contract, InvariantThrowsWithKind)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    try {
        BONSAI_INVARIANT(false, "invariant fires");
        FAIL() << "BONSAI_INVARIANT(false) must throw";
    } catch (const ContractViolation &e) {
        EXPECT_STREQ(e.kind(), "invariant");
    }
}

TEST(Contract, DisabledChecksDoNotEvaluateCondition)
{
    if (contracts::enabled())
        GTEST_SKIP() << "only meaningful when contracts are off";
    int evaluations = 0;
    BONSAI_REQUIRE((++evaluations, true), "must not run");
    BONSAI_REQUIRE((++evaluations, false), "must not run or throw");
    EXPECT_EQ(evaluations, 0);
}

TEST(Contract, FifoPushFullViolatesPrecondition)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    sim::Fifo<int> f(2);
    f.push(1);
    f.push(2);
    EXPECT_THROW(f.push(3), ContractViolation);
    // The failed push must not have corrupted the channel.
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.pop(), 1);
}

TEST(Contract, FifoPopEmptyViolatesPrecondition)
{
    if (!contracts::enabled())
        GTEST_SKIP() << "contracts compiled out of this build";
    sim::Fifo<int> f(2);
    EXPECT_THROW(f.pop(), ContractViolation);
    EXPECT_THROW(f.front(), ContractViolation);
    f.push(7);
    EXPECT_EQ(f.pop(), 7);
    EXPECT_THROW(f.pop(), ContractViolation);
}

} // namespace
} // namespace bonsai
