/** @file Unit tests for the persistent work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"

namespace bonsai
{
namespace
{

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::uint64_t kCount = 10'000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallelFor(kCount, [&](std::uint64_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint64_t i = 0; i < kCount; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::uint64_t sum = 0; // unsynchronized: must run on the caller
    pool.parallelFor(100, [&](std::uint64_t i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ZeroThreadsIsTreatedAsOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
    bool ran = false;
    pool.parallelFor(1, [&](std::uint64_t) { ran = true; });
    EXPECT_TRUE(ran);
}

TEST(ThreadPool, ZeroCountIsANoOp)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [&](std::uint64_t) { FAIL(); });
}

TEST(ThreadPool, PersistsAcrossManyJobs)
{
    // The sorter reuses one pool for every stage; back-to-back jobs
    // must not lose tasks or deadlock on stale generations.
    ThreadPool pool(8);
    std::atomic<std::uint64_t> total{0};
    for (int job = 0; job < 200; ++job) {
        pool.parallelFor(job % 17 + 1, [&](std::uint64_t) {
            total.fetch_add(1, std::memory_order_relaxed);
        });
    }
    std::uint64_t expect = 0;
    for (int job = 0; job < 200; ++job)
        expect += job % 17 + 1;
    EXPECT_EQ(total.load(), expect);
}

TEST(ThreadPool, MoreTasksThanThreadsBalances)
{
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    pool.parallelFor(1000, [&](std::uint64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ThreadPool, FewerTasksThanThreads)
{
    ThreadPool pool(16);
    std::atomic<int> count{0};
    pool.parallelFor(2, [&](std::uint64_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, StaleWorkerCannotClaimIntoNextJob)
{
    // Regression: a worker that read a job but was preempted before
    // its first claim must not survive into the next job's index
    // space (running the retired fn against the new job's indices).
    // Tiny back-to-back jobs maximize that window; each job's fn
    // writes to a fresh per-job counter, so a stale claim shows up
    // as a lost index (or a use-after-scope the sanitizers catch).
    ThreadPool pool(8);
    for (int job = 0; job < 3000; ++job) {
        const std::uint64_t count = job % 3 + 1;
        std::atomic<std::uint64_t> hits{0};
        pool.parallelFor(count, [&](std::uint64_t) {
            hits.fetch_add(1, std::memory_order_relaxed);
        });
        ASSERT_EQ(hits.load(), count) << "job " << job;
    }
}

TEST(ThreadPool, DestructionWithNoJobsIsClean)
{
    ThreadPool pool(8); // construct + destruct with idle workers
}

} // namespace
} // namespace bonsai
