/** @file Unit tests for run-span helpers. */

#include <gtest/gtest.h>

#include "common/run.hpp"

namespace bonsai
{
namespace
{

TEST(ChunkRuns, ExactDivision)
{
    const auto runs = chunkRuns(64, 16);
    ASSERT_EQ(runs.size(), 4u);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].offset, 16 * i);
        EXPECT_EQ(runs[i].length, 16u);
    }
}

TEST(ChunkRuns, RaggedTail)
{
    const auto runs = chunkRuns(70, 16);
    ASSERT_EQ(runs.size(), 5u);
    EXPECT_EQ(runs.back().offset, 64u);
    EXPECT_EQ(runs.back().length, 6u);
}

TEST(ChunkRuns, SingleRecordRuns)
{
    const auto runs = chunkRuns(5, 1);
    ASSERT_EQ(runs.size(), 5u);
    EXPECT_EQ(runs[3].offset, 3u);
    EXPECT_EQ(runs[3].length, 1u);
}

TEST(ChunkRuns, EmptyInputYieldsOneEmptyRun)
{
    const auto runs = chunkRuns(0, 16);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].length, 0u);
}

TEST(ChunkRuns, TotalLengthPreserved)
{
    for (std::uint64_t total : {1u, 15u, 16u, 17u, 255u, 1000u}) {
        std::uint64_t sum = 0;
        for (const RunSpan &run : chunkRuns(total, 16))
            sum += run.length;
        EXPECT_EQ(sum, total);
    }
}

} // namespace
} // namespace bonsai
