/** @file Tests for the routing-congestion frequency derate
 *  (Section VI-C1: why the as-built DRAM sorter uses ell = 64). */

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "model/perf_model.hpp"

namespace bonsai
{
namespace
{

TEST(RoutingDerate, IdentityWhenDisabled)
{
    model::MergerArchParams arch;
    EXPECT_DOUBLE_EQ(model::effectiveFrequency(arch, 256), 250e6);
    EXPECT_DOUBLE_EQ(model::effectiveFrequency(arch, 2), 250e6);
}

TEST(RoutingDerate, FreeRegionAndDecay)
{
    model::MergerArchParams arch;
    arch.routingDerate = true;
    EXPECT_DOUBLE_EQ(model::effectiveFrequency(arch, 64), 250e6);
    const double f128 = model::effectiveFrequency(arch, 128);
    const double f256 = model::effectiveFrequency(arch, 256);
    EXPECT_NEAR(f128, 250e6 / 1.30, 1.0);
    EXPECT_NEAR(f256, 250e6 / (1.30 * 1.30), 1.0);
    EXPECT_LT(f128, 200e6); // below the 4-vs-5-stage break-even
    EXPECT_LT(f256, 200e6); // below the 4-vs-5-stage break-even
}

TEST(RoutingDerate, OptimizerReproducesAsBuiltEll64)
{
    // Without the derate Bonsai picks the model-optimal AMT(32, 256);
    // with it, the extra stage at 250 MHz beats 4 stages at ~189 MHz
    // and the paper's implemented AMT(32, 64) wins (Section VI-C1:
    // "We limit ell to 64 because designs with more leaves have lower
    // frequency due to FPGA routing congestion").
    model::BonsaiInputs in;
    in.array = {16ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    // The paper's DRAM sorter is a single AMT (Figure 2); unrolled
    // alternatives near 100% LUT would be unroutable in practice.
    core::SearchSpace single_tree;
    single_tree.maxUnroll = 1;

    core::Optimizer plain(in, single_tree);
    const auto ideal = plain.best(core::Objective::Latency);
    ASSERT_TRUE(ideal.has_value());
    EXPECT_EQ(ideal->config.ell, 256u);

    in.arch.routingDerate = true;
    core::Optimizer derated(in, single_tree);
    const auto built = derated.best(core::Objective::Latency);
    ASSERT_TRUE(built.has_value());
    EXPECT_EQ(built->config.p, 32u);
    EXPECT_EQ(built->config.ell, 64u);
}

TEST(RoutingDerate, DeratedLatencyMatchesTable1Row)
{
    // The as-built sorter's 5 stages at full clock: at the measured
    // 29 GB/s this is Table I's 172 ms/GB (see scalability tests);
    // here at nominal 32 GB/s it is 156 ms/GB.
    model::BonsaiInputs in;
    in.array = {16ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    in.arch.routingDerate = true;
    const auto est = model::latencyEstimate(
        in, amt::AmtConfig{32, 64, 1, 1});
    EXPECT_EQ(est.stages, 5u);
    EXPECT_NEAR(toMs(est.latencySeconds) / 16.0, 156.25, 0.1);
}

} // namespace
} // namespace bonsai
