/** @file Unit tests for the resource model (Equations 8-10). */

#include <gtest/gtest.h>

#include "core/platforms.hpp"
#include "model/resource_model.hpp"

namespace bonsai
{
namespace
{

model::BonsaiInputs
f1Inputs()
{
    model::BonsaiInputs in;
    in.array = {4ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    return in;
}

TEST(PredictTreeLut, Equation8HandComputed)
{
    // AMT(32, 64) with Table VI 32-bit costs, level by level:
    // n=0: m32 + 2 c32 = 18853 + 4158          = 23011
    // n=1: 2 (m16 + 2 c16) = 2 (8500 + 2094)   = 21188
    // n=2: 4 (m8 + 2 c8) = 4 (3620 + 1060)     = 18720
    // n=3: 8 (m4 + 2 c4) = 8 (1555 + 546)      = 16808
    // n=4: 16 (m2 + 2 c2) = 16 (622 + 284)     = 14496
    // n=5: 32 (m1 + 2 fifo) = 32 (300 + 100)   = 12800
    const std::uint64_t lut =
        model::predictTreeLut(32, 64, model::costs32());
    EXPECT_EQ(lut, 23011u + 21188 + 18720 + 16808 + 14496 + 12800);
}

TEST(PredictTreeLut, CloseToPaperTableIv)
{
    // Paper Table IV reports 102,158 synthesized LUTs for the
    // AMT(32,64) merge tree; Equation 8 should land within ~7%.
    const std::uint64_t lut =
        model::predictTreeLut(32, 64, model::costs32());
    EXPECT_NEAR(static_cast<double>(lut), 102158.0, 0.07 * 102158.0);
}

TEST(PredictTreeLut, MonotonicInPAndEll)
{
    const auto costs = model::costs32();
    EXPECT_LT(model::predictTreeLut(8, 64, costs),
              model::predictTreeLut(16, 64, costs));
    EXPECT_LT(model::predictTreeLut(16, 32, costs),
              model::predictTreeLut(16, 64, costs));
}

TEST(PredictResources, TableIvBreakdownShape)
{
    // The full DRAM sorter (AMT(32,64) + presorter + loader) uses
    // about 288k LUTs / 769k FFs / 960 BRAM on the F1 (Table IV).
    model::BonsaiInputs in = f1Inputs();
    const auto est =
        model::predictResources(in, amt::AmtConfig{32, 64, 1, 1});
    EXPECT_NEAR(static_cast<double>(est.totalLut()), 287672.0,
                0.10 * 287672.0);
    EXPECT_NEAR(static_cast<double>(est.totalFf()), 768906.0,
                0.10 * 768906.0);
    EXPECT_EQ(est.bramBlocks, 960u);
    EXPECT_NEAR(static_cast<double>(est.presorterLut), 75412.0,
                0.02 * 75412.0);
    EXPECT_NEAR(static_cast<double>(est.dataLoaderLut), 110102.0,
                0.02 * 110102.0);
}

TEST(Fits, PaperFeasibilityWall)
{
    // On the F1, AMT(32, 256) fits (the model optimum) but ell = 512
    // does not — "ell cannot be made larger than 256".
    model::BonsaiInputs in = f1Inputs();
    EXPECT_TRUE(model::fits(in, amt::AmtConfig{32, 256, 1, 1}));
    EXPECT_FALSE(model::fits(in, amt::AmtConfig{32, 512, 1, 1}));
}

TEST(Fits, UnrollingMultipliesCost)
{
    model::BonsaiInputs in = f1Inputs();
    // 16 unrolled AMT(32, 2) fit only without per-tree presorters
    // (16 presorters alone would exceed the chip).
    EXPECT_TRUE(model::fits(in, amt::AmtConfig{32, 2, 16, 1}, false));
    EXPECT_FALSE(model::fits(in, amt::AmtConfig{32, 2, 16, 1}, true));
    EXPECT_FALSE(model::fits(in, amt::AmtConfig{32, 64, 16, 1}, false));
}

TEST(FeasibleBatchBytes, ShrinksWithEll)
{
    model::BonsaiInputs in = f1Inputs();
    EXPECT_EQ(model::feasibleBatchBytes(in, amt::AmtConfig{32, 64, 1, 1}),
              4096u);
    // ell = 256 only fits with a reduced batch.
    const std::uint64_t b256 =
        model::feasibleBatchBytes(in, amt::AmtConfig{32, 256, 1, 1});
    EXPECT_GT(b256, 0u);
    EXPECT_LT(b256, 4096u);
}

TEST(BramBlocks, TableIvCalibration)
{
    EXPECT_EQ(amt::dataLoaderBramBlocks(64, 4096), 960u);
    EXPECT_EQ(amt::dataLoaderBramBlocks(64, 1024), 64u * 4);
}

TEST(ResourceEstimate, ScalesLinearlyWithTreeCount)
{
    model::BonsaiInputs in = f1Inputs();
    const auto one =
        model::predictResources(in, amt::AmtConfig{8, 16, 1, 1});
    const auto four =
        model::predictResources(in, amt::AmtConfig{8, 16, 4, 1});
    EXPECT_EQ(four.treeLut, 4 * one.treeLut);
    EXPECT_EQ(four.dataLoaderLut, 4 * one.dataLoaderLut);
    EXPECT_EQ(four.bramBlocks, 4 * one.bramBlocks);
}

} // namespace
} // namespace bonsai
