/** @file Unit tests for the performance model (Equations 1-7). */

#include <gtest/gtest.h>

#include "core/platforms.hpp"
#include "model/perf_model.hpp"

namespace bonsai
{
namespace
{

model::BonsaiInputs
f1Inputs(std::uint64_t bytes, std::uint64_t record_bytes = 4)
{
    model::BonsaiInputs in;
    in.array = {bytes / record_bytes, record_bytes};
    in.hw = core::awsF1();
    return in;
}

TEST(MergeStages, BasicLogEll)
{
    EXPECT_EQ(model::mergeStages(256, 2, 1), 8u);
    EXPECT_EQ(model::mergeStages(256, 4, 1), 4u);
    EXPECT_EQ(model::mergeStages(256, 16, 1), 2u);
    EXPECT_EQ(model::mergeStages(257, 16, 1), 3u); // ceil
    EXPECT_EQ(model::mergeStages(1, 16, 1), 0u);
    EXPECT_EQ(model::mergeStages(0, 16, 1), 0u);
}

TEST(MergeStages, PresortedRunsReduceStages)
{
    // 4096 records: log_16(4096) = 3 stages from run length 1,
    // but only 2 from presorted 16-record runs.
    EXPECT_EQ(model::mergeStages(4096, 16, 1), 3u);
    EXPECT_EQ(model::mergeStages(4096, 16, 16), 2u);
    EXPECT_EQ(model::mergeStages(16, 16, 16), 0u);
}

TEST(MergeStages, TerabyteScaleNoOverflow)
{
    // 2 TB of 4-byte records = 5e11 records; log_256(...) small.
    const std::uint64_t n = 500'000'000'000ULL;
    EXPECT_EQ(model::mergeStages(n, 256, 16), 5u);
    EXPECT_GT(model::mergeStages(n, 2, 1), 30u);
}

TEST(TreeThroughput, MatchesPaperNumbers)
{
    // p=32 at 250 MHz on 32-bit records = exactly 32 GB/s (IV-A).
    EXPECT_DOUBLE_EQ(model::treeThroughput(32, 250e6, 4), 32e9);
    EXPECT_DOUBLE_EQ(model::treeThroughput(8, 250e6, 4), 8e9);
    // 128-bit records: 4-merger = 16 GB/s (Table VI(b)).
    EXPECT_DOUBLE_EQ(model::treeThroughput(4, 250e6, 16), 16e9);
}

TEST(LatencyEstimate, BandwidthBoundStageTime)
{
    // 16 GB with AMT(32, 256): 4 stages at 32 GB/s = 2.0 s.
    model::BonsaiInputs in = f1Inputs(16 * kGB);
    const auto est =
        model::latencyEstimate(in, amt::AmtConfig{32, 256, 1, 1});
    EXPECT_EQ(est.stages, 4u);
    EXPECT_NEAR(est.stageSeconds, 0.5, 1e-9);
    EXPECT_NEAR(est.latencySeconds, 2.0, 1e-9);
}

TEST(LatencyEstimate, ComputeBoundWhenPSmall)
{
    // p=4 -> 4 GB/s < beta: stage time = bytes / (p f r).
    model::BonsaiInputs in = f1Inputs(8 * kGB);
    const auto est =
        model::latencyEstimate(in, amt::AmtConfig{4, 256, 1, 1});
    EXPECT_NEAR(est.stageSeconds, 2.0, 1e-9);
}

TEST(LatencyEstimate, UnrollingSharesBandwidth)
{
    // 2 trees: per-tree bandwidth 16 GB/s, each sorts half the data;
    // stage time unchanged, stage count may shrink.
    model::BonsaiInputs in = f1Inputs(16 * kGB);
    const auto single =
        model::latencyEstimate(in, amt::AmtConfig{32, 256, 1, 1});
    const auto dual =
        model::latencyEstimate(in, amt::AmtConfig{32, 256, 2, 1});
    EXPECT_NEAR(dual.stageSeconds, single.stageSeconds, 1e-9);
    EXPECT_LE(dual.stages, single.stages);
}

TEST(LatencyEstimate, ExtraStageAtTwoGb)
{
    // Figure 13's first step: AMT(32,256) needs 3 stages at 1 GB and
    // 4 at 2 GB (16-record presort).
    const auto at_1gb = model::latencyEstimate(
        f1Inputs(1 * kGB), amt::AmtConfig{32, 256, 1, 1});
    const auto at_2gb = model::latencyEstimate(
        f1Inputs(2 * kGB), amt::AmtConfig{32, 256, 1, 1});
    EXPECT_EQ(at_1gb.stages, 3u);
    EXPECT_EQ(at_2gb.stages, 4u);
    EXPECT_NEAR(at_2gb.latencySeconds / 2 / (at_1gb.latencySeconds),
                4.0 / 3.0, 1e-9);
}

TEST(PipelineEstimate, PaperPhaseOneConfig)
{
    // 4-deep pipeline of AMT(8, 64) on F1: throughput =
    // min(8 GB/s, 32/4 GB/s, 8 GB/s) = 8 GB/s (Section IV-C).
    model::BonsaiInputs in = f1Inputs(8 * kGB);
    const auto est =
        model::pipelineEstimate(in, amt::AmtConfig{8, 64, 1, 4});
    EXPECT_DOUBLE_EQ(est.throughputBytesPerSec, 8e9);
    EXPECT_NEAR(est.latencySeconds, 4.0, 1e-9);
}

TEST(PipelineEstimate, PipeliningDividesDramBandwidth)
{
    model::BonsaiInputs in = f1Inputs(8 * kGB);
    // 8-deep pipeline: DRAM share 4 GB/s binds below the I/O's 8.
    const auto est =
        model::pipelineEstimate(in, amt::AmtConfig{8, 64, 1, 8});
    EXPECT_DOUBLE_EQ(est.throughputBytesPerSec, 4e9);
}

TEST(PipelineCapacity, Equation5)
{
    model::BonsaiInputs in = f1Inputs(8 * kGB);
    in.arch.presortRunLength = 256;
    // lambda_pipe = 4 of AMT(8, 64): min(64GB/4 / 4B, 256 * 64^4).
    const std::uint64_t cap = model::pipelineCapacityRecords(
        in, amt::AmtConfig{8, 64, 1, 4});
    EXPECT_EQ(cap, std::min<std::uint64_t>(
                       64 * kGB / (4 * 4),
                       256ULL * 64 * 64 * 64 * 64));
    // The paper's 8 GB chunk (2G records) must fit.
    EXPECT_GE(cap, 2'000'000'000ULL);
}

TEST(PipelineCapacity, StageLimitBindsForShallowPipelines)
{
    model::BonsaiInputs in = f1Inputs(8 * kGB);
    in.arch.presortRunLength = 16;
    const std::uint64_t cap = model::pipelineCapacityRecords(
        in, amt::AmtConfig{8, 16, 1, 2});
    EXPECT_EQ(cap, 16ULL * 16 * 16); // ell^2 * presort
}

} // namespace
} // namespace bonsai
