/** @file Unit tests for the Table VI cost tables. */

#include <gtest/gtest.h>

#include "model/merger_costs.hpp"

namespace bonsai
{
namespace
{

TEST(MergerCosts, Table6aValues)
{
    const auto c = model::costs32();
    EXPECT_EQ(c.mergerLut(1), 300u);
    EXPECT_EQ(c.mergerLut(2), 622u);
    EXPECT_EQ(c.mergerLut(4), 1555u);
    EXPECT_EQ(c.mergerLut(8), 3620u);
    EXPECT_EQ(c.mergerLut(16), 8500u);
    EXPECT_EQ(c.mergerLut(32), 18853u);
    EXPECT_EQ(c.couplerLut(2), 142u);
    EXPECT_EQ(c.couplerLut(32), 2079u);
    EXPECT_EQ(c.couplerLut(1), 50u); // FIFO
}

TEST(MergerCosts, Table6bValues)
{
    const auto c = model::costs128();
    EXPECT_EQ(c.mergerLut(1), 1016u);
    EXPECT_EQ(c.mergerLut(32), 77732u);
    EXPECT_EQ(c.couplerLut(16), 4142u);
    EXPECT_EQ(c.fifo, 134u);
}

TEST(MergerCosts, WiderRecordsAreCheaperPerThroughput)
{
    // Paper VI-F: a 128-bit 4-merger (16 GB/s) uses ~50% fewer LUTs
    // than a 32-bit 16-merger (16 GB/s).
    const auto narrow = model::costs32();
    const auto wide = model::costs128();
    EXPECT_LT(wide.mergerLut(4), narrow.mergerLut(16));
    EXPECT_LT(static_cast<double>(wide.mergerLut(4)),
              0.75 * static_cast<double>(narrow.mergerLut(16)));
}

TEST(MergerCosts, CalibrationTablesReturnedExactly)
{
    EXPECT_EQ(model::costsForWidth(32).mergerLut(8), 3620u);
    EXPECT_EQ(model::costsForWidth(128).mergerLut(8), 13051u);
}

TEST(MergerCosts, InterpolatedWidthIsMonotonic)
{
    const auto c64 = model::costsForWidth(64);
    const auto c32 = model::costsForWidth(32);
    const auto c128 = model::costsForWidth(128);
    for (unsigned k = 1; k <= 32; k *= 2) {
        EXPECT_GT(c64.mergerLut(k), c32.mergerLut(k));
        EXPECT_LT(c64.mergerLut(k), c128.mergerLut(k));
    }
    EXPECT_GT(c64.couplerLut(8), c32.couplerLut(8));
    EXPECT_GT(c64.fifo, c32.fifo);
}

} // namespace
} // namespace bonsai
