/**
 * @file
 * Paper-number regression suite: pins every headline quantity the
 * benchmark harness reproduces, so a refactor that silently changes a
 * reproduced result fails CI.  Each expectation cites the paper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/published.hpp"
#include "bonsai.hpp"

namespace bonsai
{
namespace
{

TEST(PaperNumbers, Table1BonsaiRowExact)
{
    // Table I: 172 ms/GB (4-64 GB), 250 (128 GB-2 TB), 375 (100 TB).
    core::ScalabilityParams params;
    params.dramEll = 64;
    for (std::size_t i = 0; i < baseline::kTable1Sizes.size(); ++i) {
        const auto pt =
            core::scalabilityAt(params, baseline::kTable1Sizes[i]);
        EXPECT_NEAR(pt.msPerGb, baseline::kTable1Bonsai[i],
                    0.015 * baseline::kTable1Bonsai[i])
            << "column " << i;
    }
}

TEST(PaperNumbers, Figure11SpeedupsAt32Gb)
{
    // Abstract / VI-C1: "2.3x, 3.7x, and 1.3x lower sorting time than
    // the best designs on CPUs, FPGAs, and GPUs".
    core::ScalabilityParams params;
    params.dramEll = 64;
    const double bonsai =
        core::scalabilityAt(params, 32 * kGB).msPerGb;
    EXPECT_NEAR(*baseline::publishedMsPerGb("PARADIS [20]", 32 * kGB) /
                    bonsai,
                2.3, 0.05);
    EXPECT_NEAR(
        *baseline::publishedMsPerGb("SampleSort [19]", 32 * kGB) /
            bonsai,
        3.7, 0.05);
    EXPECT_NEAR(*baseline::publishedMsPerGb("HRS [18]", 32 * kGB) /
                    bonsai,
                1.3, 0.05);
}

TEST(PaperNumbers, PublishedOptimaAllFour)
{
    // IV-A: single AMT(32, 256) latency-optimal on the F1.
    {
        model::BonsaiInputs in;
        in.array = {16ULL * kGB / 4, 4};
        in.hw = core::awsF1();
        const auto best =
            core::Optimizer(in).best(core::Objective::Latency);
        ASSERT_TRUE(best);
        EXPECT_EQ(best->config.p, 32u);
        EXPECT_EQ(best->config.ell, 256u);
    }
    // IV-C phase 1: 4-deep pipeline of AMT(8, 64) at 8 GB/s.
    {
        const auto plan = core::planSsdSort(
            {2 * kTB / 4, 4}, core::awsF1(), {}, core::SsdParams{});
        ASSERT_TRUE(plan);
        EXPECT_EQ(plan->phase1.config.lambdaPipe, 4u);
        EXPECT_EQ(plan->phase1.config.p, 8u);
        EXPECT_EQ(plan->phase1.config.ell, 64u);
        // IV-C phase 2: AMT(8, 256), one SSD round trip for 2 TB.
        EXPECT_EQ(plan->phase2.config.p, 8u);
        EXPECT_EQ(plan->phase2.config.ell, 256u);
        EXPECT_EQ(plan->phase2Stages, 1u);
    }
    // VI-C1: as-built ell = 64 under routing congestion.
    {
        model::BonsaiInputs in;
        in.array = {16ULL * kGB / 4, 4};
        in.hw = core::awsF1();
        in.arch.routingDerate = true;
        core::SearchSpace single_tree;
        single_tree.maxUnroll = 1;
        const auto built = core::Optimizer(in, single_tree)
                               .best(core::Objective::Latency);
        ASSERT_TRUE(built);
        EXPECT_EQ(built->config.ell, 64u);
    }
}

TEST(PaperNumbers, Figure10ModelBound)
{
    // VI-B1: resource predictions within ~5% of synthesis across
    // p <= 32, ell <= 256 (our structural estimator: within 6%).
    const auto costs = model::costs32();
    double worst = 0.0;
    for (unsigned p = 1; p <= 32; p *= 2) {
        for (unsigned ell = 4; ell <= 256; ell *= 2) {
            const auto shape = amt::makeTreeShape(p, ell);
            const double synth = static_cast<double>(
                amt::treeStructLut(shape, 32));
            const double predicted = static_cast<double>(
                model::predictTreeLut(p, ell, costs));
            worst = std::max(worst,
                             std::abs(synth - predicted) / predicted);
        }
    }
    EXPECT_LE(worst, 0.065);
}

TEST(PaperNumbers, Figure8And9ModelBound)
{
    // VI-B2: "All sorting time results are within 10% of those
    // predicted by our performance model."
    for (unsigned p : {4u, 8u, 16u, 32u}) {
        for (unsigned ell : {16u, 64u, 256u}) {
            for (std::uint64_t bytes : {512 * kMB, 16 * kGB}) {
                sorter::StageSimulator::Options o;
                o.config = amt::AmtConfig{p, ell, 1, 1};
                o.array = {bytes / 4, 4};
                o.betaDram = core::awsF1().betaDram;
                const double measured =
                    sorter::StageSimulator(o).run().totalSeconds;
                model::BonsaiInputs in;
                in.array = o.array;
                in.hw = core::awsF1();
                const double predicted =
                    model::latencyEstimate(
                        in, amt::AmtConfig{p, ell, 1, 1})
                        .latencySeconds;
                EXPECT_NEAR(measured, predicted, 0.10 * predicted)
                    << "p=" << p << " ell=" << ell
                    << " bytes=" << bytes;
            }
        }
    }
}

TEST(PaperNumbers, TableIvTotalsWithinTolerance)
{
    model::BonsaiInputs in;
    in.array = {4ULL * kGB / 4, 4};
    in.hw = core::awsF1();
    const auto est =
        model::predictResources(in, amt::AmtConfig{32, 64, 1, 1});
    EXPECT_NEAR(static_cast<double>(est.totalLut()), 287672.0,
                0.02 * 287672.0);
    EXPECT_NEAR(static_cast<double>(est.totalFf()), 768906.0,
                0.02 * 768906.0);
    EXPECT_EQ(est.bramBlocks, 960u);
}

TEST(PaperNumbers, TableVBreakdown)
{
    // Table V shape: two ~equal phases + 4.3 s reprogram, ~4 GB/s.
    const auto plan = core::planSsdSort({2 * kTB / 4, 4},
                                        core::awsF1(), {},
                                        core::SsdParams{});
    ASSERT_TRUE(plan);
    EXPECT_NEAR(plan->phase1Seconds, plan->phase2Seconds, 1.0);
    EXPECT_NEAR(plan->totalSeconds(), 504.3, 1.0);
    EXPECT_NEAR(2e12 / plan->totalSeconds() / 1e9, 4.0, 0.05);
}

TEST(PaperNumbers, SeventeenXClaim)
{
    // VI-E: "17.3x lower latency on sorting 1 TB ... compared to the
    // best previous single server node terabyte-scale sorter".
    const auto plan = core::planSsdSort({1 * kTB / 4, 4},
                                        core::awsF1(), {},
                                        core::SsdParams{});
    ASSERT_TRUE(plan);
    const double ours_ms_per_gb = plan->totalSeconds() * 1e3 / 1000.0;
    const double theirs =
        *baseline::publishedMsPerGb("TerabyteSort [29]", 2 * kTB);
    EXPECT_NEAR(theirs / ours_ms_per_gb, 17.3, 0.5);
}

TEST(PaperNumbers, Figure13StepRatios)
{
    core::ScalabilityParams params;
    const double r1 = core::scalabilityAt(params, 2 * kGB).msPerGb /
        core::scalabilityAt(params, 1 * kGB).msPerGb;
    EXPECT_NEAR(r1, 4.0 / 3.0, 1e-9); // "1.33x performance penalty"
    const double r3 = core::scalabilityAt(params, 32 * kTB).msPerGb /
        core::scalabilityAt(params, 16 * kTB).msPerGb;
    EXPECT_NEAR(r3, 1.5, 1e-9); // "1.5x performance penalty"
}

} // namespace
} // namespace bonsai
