/**
 * @file
 * Wide-record path tests (Section II: any key/value width up to 512
 * bits without overhead; wider via bit-serial comparators, charged a
 * serialization factor by the model).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "hw/merger.hpp"
#include "model/perf_model.hpp"
#include "sim/engine.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/sim_sorter.hpp"

namespace bonsai
{
namespace
{

using Wide = WideRecord<8>; // 512-bit key + 64-bit value

std::vector<Wide>
makeWide(std::size_t n, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<Wide> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (unsigned w = 0; w < 8; ++w)
            out[i].key[w] = rng.next();
        out[i].key[7] |= 1; // never terminal
        out[i].value = i;
    }
    return out;
}

TEST(WideRecord, OrderingIsLexicographic)
{
    Wide a, b;
    a.key = {1, 0, 0, 0, 0, 0, 0, 5};
    b.key = {1, 0, 0, 0, 0, 0, 0, 6};
    EXPECT_TRUE(a < b);
    b.key[0] = 0;
    EXPECT_TRUE(b < a); // most-significant word dominates
    EXPECT_TRUE(a <= a);
    EXPECT_FALSE(a < a);
}

TEST(WideRecord, TerminalDetection)
{
    EXPECT_TRUE(Wide::terminal().isTerminal());
    Wide w;
    w.key[3] = 1;
    EXPECT_FALSE(w.isTerminal());
    w.key[3] = 0;
    w.value = 1;
    EXPECT_FALSE(w.isTerminal());
}

TEST(WideRecord, MergerHandles512BitKeys)
{
    auto run_a = makeWide(37, 1);
    auto run_b = makeWide(49, 2);
    std::sort(run_a.begin(), run_a.end());
    std::sort(run_b.begin(), run_b.end());
    sim::Fifo<Wide> in_a(64), in_b(64), out(32);
    hw::Merger<Wide> merger("m", 4, in_a, in_b, out);
    for (const Wide &r : run_a)
        in_a.push(r);
    in_a.push(Wide::terminal());
    for (const Wide &r : run_b)
        in_b.push(r);
    in_b.push(Wide::terminal());

    std::vector<Wide> expect;
    std::merge(run_a.begin(), run_a.end(), run_b.begin(), run_b.end(),
               std::back_inserter(expect));
    std::vector<Wide> got;
    sim::SimEngine engine;
    engine.add(&merger);
    const auto result = engine.run(
        [&] {
            while (!out.empty()) {
                const Wide r = out.pop();
                if (!r.isTerminal())
                    got.push_back(r);
            }
            return got.size() >= expect.size();
        },
        10000);
    ASSERT_TRUE(result.finished);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(got[i], expect[i]);
}

TEST(WideRecord, FullSimSortEndToEnd)
{
    auto data = makeWide(5000, 3);
    auto expect = data;
    std::sort(expect.begin(), expect.end());
    sorter::SimSorter<Wide>::Options o;
    o.config = amt::AmtConfig{4, 8, 1, 1};
    o.recordBytes = 72; // 512-bit key + 64-bit value
    o.batchBytes = 72 * 16;
    sorter::SimSorter<Wide> sim(o);
    ASSERT_TRUE(sim.sort(data).completed);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_EQ(data[i], expect[i]);
}

TEST(WideRecord, BehavioralSortWorks)
{
    auto data = makeWide(20'000, 4);
    sorter::BehavioralSorter<Wide> sorter(16, 16);
    sorter.sort(data);
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(SerialFactor, Below512BitsIsFree)
{
    EXPECT_EQ(model::serialFactor(4, 512), 1u);
    EXPECT_EQ(model::serialFactor(16, 512), 1u);
    EXPECT_EQ(model::serialFactor(64, 512), 1u); // exactly 512 bits
}

TEST(SerialFactor, WideRecordsSerialize)
{
    EXPECT_EQ(model::serialFactor(65, 512), 2u);
    EXPECT_EQ(model::serialFactor(128, 512), 2u);  // 1024 bits
    EXPECT_EQ(model::serialFactor(256, 512), 4u);  // 2048 bits
}

TEST(SerialFactor, ModelChargesWideRecords)
{
    // 128-byte records: serialization factor 2 halves tree throughput.
    model::MergerArchParams arch;
    EXPECT_DOUBLE_EQ(
        model::effectiveTreeThroughput(8, arch, 64),
        8.0 * 250e6 * 64);
    EXPECT_DOUBLE_EQ(
        model::effectiveTreeThroughput(8, arch, 128),
        8.0 * 250e6 * 128 / 2.0);
}

TEST(SerialFactor, OptimizerStillFindsConfigsForHugeRecords)
{
    // 128-byte (1024-bit) records on the F1: feasible, and the chosen
    // p must compensate for the serialization factor to saturate the
    // 32 GB/s DRAM (p * f * r / 2 >= beta).
    model::BonsaiInputs in;
    in.array = {16ULL * kGB / 128, 128};
    in.hw = core::awsF1();
    core::Optimizer opt(in);
    const auto best = opt.best(core::Objective::Latency);
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(model::effectiveTreeThroughput(best->config.p, in.arch,
                                             128),
              in.hw.betaDram);
}

} // namespace
} // namespace bonsai
