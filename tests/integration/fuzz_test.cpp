/**
 * @file
 * Randomized property tests across the whole stack: random
 * configuration x size x distribution combinations, run end to end
 * on the cycle simulator and cross-checked for sortedness and
 * multiset preservation, plus a merger-level fuzz against std::merge
 * with adversarial run structures.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/checks.hpp"
#include "common/random.hpp"
#include "hw/merger.hpp"
#include "sim/engine.hpp"
#include "sorter/behavioral.hpp"
#include "sorter/sim_sorter.hpp"

namespace bonsai
{
namespace
{

class SimFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SimFuzz, RandomConfigSortsCorrectly)
{
    SplitMix64 rng(GetParam());
    const unsigned p = 1u << rng.nextBounded(6);        // 1..32
    const unsigned ell = 2u << rng.nextBounded(5);      // 2..32
    const unsigned unroll = 1u << rng.nextBounded(3);   // 1..4
    const std::size_t n = 100 + rng.nextBounded(20'000);
    const auto dist = static_cast<Distribution>(rng.nextBounded(6));
    const std::uint64_t presort = rng.nextBounded(2) ? 16 : 1;

    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{p, ell, unroll, 1};
    o.mem.numBanks = 1 + static_cast<unsigned>(rng.nextBounded(4));
    o.mem.bankBytesPerCycle = 8.0 * (1 + rng.nextBounded(4));
    o.mem.requestLatency = rng.nextBounded(32);
    o.batchBytes = 256u << rng.nextBounded(3);
    o.presortRun = presort;
    o.unrollMode = rng.nextBounded(2)
        ? sorter::UnrollMode::AddressRange
        : sorter::UnrollMode::RangePartitioned;

    auto data = makeRecords(n, dist, GetParam());
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    sorter::SimSorter<Record> sim(o);
    const auto stats = sim.sort(data);
    ASSERT_TRUE(stats.completed)
        << "p=" << p << " ell=" << ell << " unroll=" << unroll
        << " n=" << n << " dist=" << static_cast<int>(dist);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

class MergerFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MergerFuzz, RandomRunStructuresMatchStdMerge)
{
    SplitMix64 rng(GetParam() * 77);
    const unsigned k = 1u << rng.nextBounded(6);
    const unsigned pairs = 1 + rng.nextBounded(8);

    std::vector<std::vector<Record>> runs_a(pairs), runs_b(pairs);
    std::size_t stream_len = 2 * pairs;
    for (unsigned i = 0; i < pairs; ++i) {
        // Adversarial lengths: empty, single, k-aligned, prime.
        const std::size_t choices[] = {0, 1, k, 2 * k, 7, 13, 97};
        auto fill = [&](std::vector<Record> &run) {
            const std::size_t len = choices[rng.nextBounded(7)];
            run = makeRecords(len, Distribution::UniformRandom,
                              rng.next());
            std::sort(run.begin(), run.end());
            stream_len += len;
        };
        fill(runs_a[i]);
        fill(runs_b[i]);
    }

    sim::Fifo<Record> in_a(stream_len + 2);
    sim::Fifo<Record> in_b(stream_len + 2);
    sim::Fifo<Record> out(4 * (k + 1));
    hw::Merger<Record> merger("m", k, in_a, in_b, out);
    std::size_t expected_records = 0;
    std::vector<Record> expect;
    for (unsigned i = 0; i < pairs; ++i) {
        for (const Record &r : runs_a[i])
            in_a.push(r);
        in_a.push(Record::terminal());
        for (const Record &r : runs_b[i])
            in_b.push(r);
        in_b.push(Record::terminal());
        std::merge(runs_a[i].begin(), runs_a[i].end(),
                   runs_b[i].begin(), runs_b[i].end(),
                   std::back_inserter(expect));
        expected_records += runs_a[i].size() + runs_b[i].size();
    }

    std::vector<Record> got;
    std::size_t terminals = 0;
    sim::SimEngine engine;
    engine.add(&merger);
    const auto result = engine.run(
        [&] {
            while (!out.empty()) {
                const Record r = out.pop();
                if (r.isTerminal())
                    ++terminals;
                else
                    got.push_back(r);
            }
            return terminals >= pairs;
        },
        500'000);
    ASSERT_TRUE(result.finished) << "k=" << k << " pairs=" << pairs;
    ASSERT_EQ(got.size(), expected_records);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].key, expect[i].key);
    EXPECT_EQ(terminals, pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergerFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(StatsFuzz, StageReportsAreConsistent)
{
    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{8, 16, 1, 1};
    o.mem.numBanks = 4;
    o.mem.bankBytesPerCycle = 32.0;
    auto data = makeRecords(30'000, Distribution::UniformRandom);
    sorter::SimSorter<Record> sim(o);
    const auto stats = sim.sort(data);
    ASSERT_TRUE(stats.completed);
    ASSERT_EQ(stats.stageReports.size(), stats.stages);
    std::uint64_t cycles = 0, read = 0, written = 0;
    for (const auto &report : stats.stageReports) {
        cycles += report.cycles;
        read += report.bytesRead;
        written += report.bytesWritten;
        EXPECT_GT(report.groups, 0u);
        EXPECT_GE(report.readUtilization, 0.0);
        EXPECT_LE(report.readUtilization, 1.0);
    }
    EXPECT_EQ(cycles, stats.totalCycles);
    EXPECT_EQ(read, stats.bytesRead);
    EXPECT_EQ(written, stats.bytesWritten);
}

} // namespace
} // namespace bonsai
