/** @file End-to-end integration tests across the whole stack. */

#include <gtest/gtest.h>

#include "baseline/cpu_sorters.hpp"
#include "common/checks.hpp"
#include "common/gensort.hpp"
#include "common/random.hpp"
#include "core/optimizer.hpp"
#include "core/platforms.hpp"
#include "sorter/sim_sorter.hpp"
#include "sorter/sorters.hpp"

namespace bonsai
{
namespace
{

TEST(EndToEnd, OptimizerConfigDrivesCycleSimCorrectly)
{
    // Pick the Bonsai-optimal config for a small array, then run the
    // full cycle-accurate datapath with it.
    model::BonsaiInputs in;
    in.array = {60'000, 4};
    in.hw = core::awsF1();
    core::Optimizer opt(in);
    const auto best = opt.best(core::Objective::Latency);
    ASSERT_TRUE(best.has_value());

    sorter::SimSorter<Record>::Options o;
    o.config = best->config;
    o.config.lambdaUnrl = 1; // cycle sim at unit unrolling
    o.batchBytes = best->batchBytes;
    o.recordBytes = 4;
    o.presortRun = in.arch.presortRunLength;
    o.mem.numBanks = in.hw.dramBanks;
    o.mem.bankBytesPerCycle =
        in.hw.betaDram / in.hw.dramBanks / in.arch.frequencyHz;

    auto data = makeRecords(60'000, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    sorter::SimSorter<Record> sim(o);
    const auto stats = sim.sort(data);
    ASSERT_TRUE(stats.completed);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
}

TEST(EndToEnd, GensortPipelineSortsAndValidates)
{
    // gensort -> pack -> Bonsai sort -> valsort-style check.
    GensortGenerator gen(42);
    const auto raw = gen.generate(0, 100'000);
    auto packed = packGensort(raw);
    const Fingerprint before =
        fingerprint(std::span<const Record128>(packed));

    sorter::DramSorter sorter;
    sorter.sort(packed, 16);
    EXPECT_TRUE(isSorted(std::span<const Record128>(packed)));
    EXPECT_EQ(before, fingerprint(std::span<const Record128>(packed)));
}

TEST(EndToEnd, GensortRecordsThroughCycleAccurateDatapath)
{
    // The 16-byte gensort path (10-byte key + 6-byte hash) through
    // the full cycle-level simulator with r = 16 timing.
    GensortGenerator gen(7);
    auto packed = packGensort(gen.generate(0, 20'000));
    const Fingerprint before =
        fingerprint(std::span<const Record128>(packed));
    sorter::SimSorter<Record128>::Options o;
    o.config = amt::AmtConfig{8, 16, 1, 1};
    o.recordBytes = 16;
    o.batchBytes = 1024;
    o.mem.numBanks = 4;
    o.mem.bankBytesPerCycle = 32.0;
    sorter::SimSorter<Record128> sim(o);
    const auto stats = sim.sort(packed);
    ASSERT_TRUE(stats.completed);
    EXPECT_TRUE(isSorted(std::span<const Record128>(packed)));
    EXPECT_EQ(before, fingerprint(std::span<const Record128>(packed)));
    // r = 16 makes the tree 32 GB/s at p = 8: stage time tracks the
    // record-width-aware model.
    model::BonsaiInputs in;
    in.array = {packed.size(), 16};
    in.hw = core::awsF1();
    const auto predicted =
        model::latencyEstimate(in, amt::AmtConfig{8, 16, 1, 1});
    EXPECT_EQ(stats.stages, predicted.stages);
}

TEST(EndToEnd, AllSortersAgreeOnTheSameInput)
{
    const auto input =
        makeRecords(30'000, Distribution::FewDistinct, 123);

    auto via_std = input;
    baseline::stdSort(via_std);

    auto via_behavioral = input;
    sorter::BehavioralSorter<Record>(64, 16).sort(via_behavioral);

    auto via_sim = input;
    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{8, 16, 1, 1};
    sorter::SimSorter<Record> sim(o);
    ASSERT_TRUE(sim.sort(via_sim).completed);

    auto via_radix = input;
    baseline::parallelMsdRadixSort(via_radix, 2);

    for (std::size_t i = 0; i < input.size(); ++i) {
        EXPECT_EQ(via_behavioral[i].key, via_std[i].key);
        EXPECT_EQ(via_sim[i].key, via_std[i].key);
        EXPECT_EQ(via_radix[i].key, via_std[i].key);
    }
}

TEST(EndToEnd, SsdTwoPhaseAtScaledDownCapacity)
{
    model::HardwareParams hw = core::awsF1();
    hw.cDram = 1'000'000; // 125 K-record chunks
    sorter::SsdSorter sorter(hw);
    auto data = makeRecords(1'000'000, Distribution::UniformRandom, 9);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    const auto report = sorter.sort(data, 4);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
    EXPECT_GE(report.plan.phase2Stages, 1u);
}

} // namespace
} // namespace bonsai
