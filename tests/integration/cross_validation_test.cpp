/**
 * @file
 * Cross-validation: the paper's Section VI-B exercise, reproduced
 * between our three fidelity levels.  The cycle-accurate simulator
 * plays the role of the FPGA measurement; the closed-form model
 * (Equation 1) and the stage-level simulator must track it closely
 * (the paper reports all measurements within 10% of the model).
 */

#include <gtest/gtest.h>

#include "common/random.hpp"
#include "model/perf_model.hpp"
#include "sorter/sim_sorter.hpp"
#include "sorter/stage_sim.hpp"

namespace bonsai
{
namespace
{

constexpr double kFrequency = 250e6;

struct Config
{
    unsigned p;
    unsigned ell;
    double bankBytesPerCycle; // per bank, 4 banks
};

class CrossValidation : public ::testing::TestWithParam<Config>
{
};

/** Cycle-sim seconds for n records under the given config. */
double
cycleSimSeconds(const Config &cfg, std::size_t n, unsigned &stages)
{
    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{cfg.p, cfg.ell, 1, 1};
    o.mem.numBanks = 4;
    o.mem.bankBytesPerCycle = cfg.bankBytesPerCycle;
    o.mem.interleaveBytes = 1024;
    o.mem.requestLatency = 8;
    o.batchBytes = 1024;
    o.recordBytes = 4;
    o.presortRun = 16;
    auto data = makeRecords(n, Distribution::UniformRandom);
    sorter::SimSorter<Record> sim(o);
    const auto stats = sim.sort(data);
    EXPECT_TRUE(stats.completed);
    stages = stats.stages;
    return stats.seconds(kFrequency);
}

TEST_P(CrossValidation, CycleSimWithinModelBound)
{
    const Config cfg = GetParam();
    const std::size_t n = 1 << 20; // 4 MB of 32-bit records
    unsigned stages = 0;
    const double measured = cycleSimSeconds(cfg, n, stages);

    model::BonsaiInputs in;
    in.array = {n, 4};
    in.hw.betaDram = 4 * cfg.bankBytesPerCycle * kFrequency;
    const auto predicted = model::latencyEstimate(
        in, amt::AmtConfig{cfg.p, cfg.ell, 1, 1});

    EXPECT_EQ(stages, predicted.stages);
    // The paper's bound: measurements within 10% of the model; we
    // allow 18% at this small scale where per-group flush overhead is
    // proportionally largest and address-interleaved banking exposes
    // transient bank conflicts the model's ideal-bandwidth term
    // (Equation 1) does not account for.
    EXPECT_NEAR(measured, predicted.latencySeconds,
                0.18 * predicted.latencySeconds)
        << "p=" << cfg.p << " ell=" << cfg.ell;
}

TEST_P(CrossValidation, StageSimTracksCycleSim)
{
    const Config cfg = GetParam();
    const std::size_t n = 1 << 20;
    unsigned stages = 0;
    const double measured = cycleSimSeconds(cfg, n, stages);

    sorter::StageSimulator::Options o;
    o.config = amt::AmtConfig{cfg.p, cfg.ell, 1, 1};
    o.array = {n, 4};
    o.frequencyHz = kFrequency;
    o.betaDram = 4 * cfg.bankBytesPerCycle * kFrequency;
    o.presortRun = 16;
    const auto staged = sorter::StageSimulator(o).run();

    EXPECT_EQ(staged.stages, stages);
    EXPECT_NEAR(staged.totalSeconds, measured, 0.15 * measured)
        << "p=" << cfg.p << " ell=" << cfg.ell;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossValidation,
    ::testing::Values(Config{8, 16, 32.0},   // compute-bound
                      Config{8, 64, 32.0},   // compute-bound, wide
                      Config{16, 16, 32.0},  // balanced
                      Config{32, 16, 16.0},  // bandwidth-bound
                      Config{4, 16, 32.0}),  // deeply compute-bound
    [](const ::testing::TestParamInfo<Config> &param_info) {
        return "p" + std::to_string(param_info.param.p) + "_ell" +
            std::to_string(param_info.param.ell) + "_bw" +
            std::to_string(
                   static_cast<int>(param_info.param.bankBytesPerCycle));
    });

} // namespace
} // namespace bonsai
