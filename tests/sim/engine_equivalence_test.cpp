/**
 * @file
 * Equivalence harness for the activity-driven engine: FastForward mode
 * must be observationally identical to the naive Reference loop —
 * cycle-identical RunResults and stall statistics, byte-identical
 * sorted output — across the AMT/merger/loader/writer matrix, in both
 * unchecked and checked (ProtocolChecker-wired) configurations.
 *
 * Also pins the fast-forward edge cases: a predicate that is true at
 * cycle 0, a cycle budget exhausted mid-jump (no overshoot), and a
 * component waking exactly at its hinted cycle.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "common/random.hpp"
#include "sim/engine.hpp"
#include "sorter/pipeline_sim.hpp"
#include "sorter/sim_sorter.hpp"

namespace bonsai
{
namespace
{

// ---------------------------------------------------------------------
// Engine edge cases (toy components with explicit wake hints).
// ---------------------------------------------------------------------

/** Dormant until a fixed cycle, then ticks (and records) every cycle.
 *  tick() is a no-op before the wake cycle, as the contract requires,
 *  so Reference and FastForward runs observe the same history. */
class Sleeper : public sim::Component
{
  public:
    explicit Sleeper(sim::Cycle wake) : Component("sleeper"), wake_(wake)
    {
    }

    sim::Cycle
    nextWake(sim::Cycle now) const override
    {
        return std::max(now, wake_);
    }

    void
    tick(sim::Cycle now) override
    {
        if (now >= wake_)
            tickCycles.push_back(now);
    }

    void
    onIdleCycles(sim::Cycle, sim::Cycle count) override
    {
        idleCredited += count;
    }

    std::vector<sim::Cycle> tickCycles;
    sim::Cycle idleCredited = 0;

  private:
    sim::Cycle wake_;
};

TEST(EngineFastForward, PredicateTrueAtCycleZero)
{
    // The completion predicate is checked after the very first cycle
    // even when every component (including the declared completion
    // source) is dormant: both engines must return {1, finished}.
    for (const auto mode :
         {sim::EngineMode::Reference, sim::EngineMode::FastForward}) {
        sim::SimEngine engine;
        Sleeper sleeper(1000);
        engine.add(&sleeper);
        engine.addCompletionSource(&sleeper);
        const auto result = engine.run([] { return true; }, 500, mode);
        EXPECT_TRUE(result.finished);
        EXPECT_EQ(result.cycles, 1u);
        EXPECT_EQ(engine.now(), 1u);
    }
}

TEST(EngineFastForward, BudgetExhaustedMidJumpDoesNotOvershoot)
{
    // Wake hint far beyond the budget: the jump target must clamp to
    // start + max_cycles exactly, and every skipped cycle must be
    // credited to the component's idle bookkeeping.
    sim::SimEngine engine;
    Sleeper sleeper(1000);
    engine.add(&sleeper);
    engine.addCompletionSource(&sleeper);
    const auto result =
        engine.run([] { return false; }, 100, sim::EngineMode::FastForward);
    EXPECT_FALSE(result.finished);
    EXPECT_EQ(result.cycles, 100u);
    EXPECT_EQ(engine.now(), 100u);
    EXPECT_TRUE(sleeper.tickCycles.empty());
    EXPECT_EQ(sleeper.idleCredited, 100u);
    EXPECT_EQ(engine.idleCyclesSkipped(), 99u);
}

TEST(EngineFastForward, ComponentWakesExactlyAtHintedCycle)
{
    // The first real tick after a jump must land exactly on the hinted
    // cycle, and the run must match the Reference loop cycle for
    // cycle.
    sim::SimEngine ff;
    Sleeper ff_sleeper(50);
    ff.add(&ff_sleeper);
    ff.addCompletionSource(&ff_sleeper);
    const auto ff_result = ff.run(
        [&] { return !ff_sleeper.tickCycles.empty(); }, 1000,
        sim::EngineMode::FastForward);

    sim::SimEngine ref;
    Sleeper ref_sleeper(50);
    ref.add(&ref_sleeper);
    ref.addCompletionSource(&ref_sleeper);
    const auto ref_result = ref.run(
        [&] { return !ref_sleeper.tickCycles.empty(); }, 1000,
        sim::EngineMode::Reference);

    EXPECT_TRUE(ff_result.finished);
    EXPECT_EQ(ff_result.cycles, ref_result.cycles);
    EXPECT_EQ(ff_result.cycles, 51u);
    ASSERT_EQ(ff_sleeper.tickCycles.size(), 1u);
    EXPECT_EQ(ff_sleeper.tickCycles.front(), 50u);
    EXPECT_EQ(ff_sleeper.tickCycles, ref_sleeper.tickCycles);
    // Cycles 1..49 were jumped in one step; cycle 0 was skipped
    // per-cycle (the engine only jumps once all components idle).
    EXPECT_EQ(ff.idleCyclesSkipped(), 49u);
    EXPECT_EQ(ff_sleeper.idleCredited, 50u);
}

TEST(EngineFastForward, NoCompletionSourceNeverJumps)
{
    // Without a declared completion source the engine must preserve
    // exact naive semantics (side-effecting predicates rely on being
    // evaluated every cycle) — no cycles may be skipped.
    sim::SimEngine engine;
    Sleeper sleeper(40);
    engine.add(&sleeper);
    const auto result = engine.run(
        [&] { return !sleeper.tickCycles.empty(); }, 1000,
        sim::EngineMode::FastForward);
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.cycles, 41u);
    EXPECT_EQ(engine.idleCyclesSkipped(), 0u);
}

// ---------------------------------------------------------------------
// Full-sorter equivalence matrix.
// ---------------------------------------------------------------------

struct SorterCase
{
    unsigned p;
    unsigned ell;
    unsigned lambdaUnrl;
    double bankBytesPerCycle;
    std::uint64_t requestLatency;
    bool checked;
    const char *label;
};

class SorterEquivalence : public ::testing::TestWithParam<SorterCase>
{
};

sorter::SimSorter<Record>::Options
sorterOptions(const SorterCase &c, sim::EngineMode mode)
{
    sorter::SimSorter<Record>::Options o;
    o.config = amt::AmtConfig{c.p, c.ell, c.lambdaUnrl, 1};
    o.mem.numBanks = 4;
    o.mem.bankBytesPerCycle = c.bankBytesPerCycle;
    o.mem.interleaveBytes = 1024;
    o.mem.requestLatency = c.requestLatency;
    o.batchBytes = 256;
    o.recordBytes = 4;
    o.presortRun = 16;
    o.checked = c.checked;
    o.engine = mode;
    return o;
}

TEST_P(SorterEquivalence, FastForwardMatchesReferenceExactly)
{
    const SorterCase c = GetParam();
    const auto input =
        makeRecords(1 << 13, Distribution::UniformRandom, 7);

    auto ref_data = input;
    const auto ref_stats =
        sorter::SimSorter<Record>(
            sorterOptions(c, sim::EngineMode::Reference))
            .sort(ref_data);

    auto ff_data = input;
    const auto ff_stats =
        sorter::SimSorter<Record>(
            sorterOptions(c, sim::EngineMode::FastForward))
            .sort(ff_data);

    ASSERT_TRUE(ref_stats.completed);
    ASSERT_TRUE(ff_stats.completed);

    // Cycle-identical aggregate and per-stage statistics.
    EXPECT_EQ(ff_stats.totalCycles, ref_stats.totalCycles);
    EXPECT_EQ(ff_stats.stages, ref_stats.stages);
    EXPECT_EQ(ff_stats.stageCycles, ref_stats.stageCycles);
    EXPECT_EQ(ff_stats.mergerStallCycles, ref_stats.mergerStallCycles);
    EXPECT_EQ(ff_stats.bytesRead, ref_stats.bytesRead);
    EXPECT_EQ(ff_stats.bytesWritten, ref_stats.bytesWritten);
    ASSERT_EQ(ff_stats.stageReports.size(),
              ref_stats.stageReports.size());
    for (std::size_t s = 0; s < ff_stats.stageReports.size(); ++s) {
        const auto &ff_report = ff_stats.stageReports[s];
        const auto &ref_report = ref_stats.stageReports[s];
        EXPECT_EQ(ff_report.cycles, ref_report.cycles) << "stage " << s;
        EXPECT_EQ(ff_report.mergerStallCycles,
                  ref_report.mergerStallCycles)
            << "stage " << s;
        EXPECT_EQ(ff_report.bytesRead, ref_report.bytesRead)
            << "stage " << s;
        EXPECT_EQ(ff_report.bytesWritten, ref_report.bytesWritten)
            << "stage " << s;
        EXPECT_EQ(ff_report.groups, ref_report.groups) << "stage " << s;
    }

    // Byte-identical output (and actually sorted).
    ASSERT_EQ(ff_data.size(), ref_data.size());
    EXPECT_TRUE(std::equal(ff_data.begin(), ff_data.end(),
                           ref_data.begin(),
                           [](const Record &a, const Record &b) {
                               return a.key == b.key &&
                                   a.value == b.value;
                           }));
    EXPECT_TRUE(std::is_sorted(ff_data.begin(), ff_data.end(),
                               [](const Record &a, const Record &b) {
                                   return a.key < b.key;
                               }));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SorterEquivalence,
    ::testing::Values(
        SorterCase{4, 4, 1, 32.0, 8, false, "balanced"},
        SorterCase{8, 16, 1, 32.0, 8, false, "wide"},
        // Bandwidth-starved: long memory stalls are where fast-forward
        // jumps dominate, so the stall-credit bookkeeping is stressed.
        SorterCase{8, 16, 1, 2.0, 32, false, "stall_heavy"},
        SorterCase{4, 4, 2, 16.0, 8, false, "unrolled"},
        // Checked: ChannelMonitors and quiescence watches must observe
        // the same per-cycle history under both engines.
        SorterCase{4, 4, 1, 8.0, 8, true, "checked"},
        SorterCase{8, 16, 1, 2.0, 32, true, "checked_stall_heavy"}),
    [](const ::testing::TestParamInfo<SorterCase> &param_info) {
        return param_info.param.label;
    });

TEST(PipelineEquivalence, FastForwardMatchesReferenceExactly)
{
    sorter::PipelineSimSorter<Record>::Options o;
    o.config = amt::AmtConfig{4, 4, 1, 2};
    o.dram.numBanks = 4;
    o.dram.bankBytesPerCycle = 8.0;
    o.dram.requestLatency = 16;
    o.io.numBanks = 1;
    o.io.bankBytesPerCycle = 4.0; // slow bus => stall-heavy
    o.io.requestLatency = 32;
    o.batchBytes = 256;
    o.recordBytes = 4;
    o.presortRun = 16;

    auto make_chunks = [] {
        std::vector<std::vector<Record>> chunks;
        for (std::uint64_t seed = 0; seed < 3; ++seed)
            chunks.push_back(makeRecords(
                256, Distribution::UniformRandom, seed + 11));
        return chunks;
    };

    o.engine = sim::EngineMode::Reference;
    auto ref_chunks = make_chunks();
    const auto ref_stats =
        sorter::PipelineSimSorter<Record>(o).sortChunks(ref_chunks);

    o.engine = sim::EngineMode::FastForward;
    auto ff_chunks = make_chunks();
    const auto ff_stats =
        sorter::PipelineSimSorter<Record>(o).sortChunks(ff_chunks);

    ASSERT_TRUE(ref_stats.completed);
    ASSERT_TRUE(ff_stats.completed);
    EXPECT_EQ(ff_stats.totalCycles, ref_stats.totalCycles);
    EXPECT_EQ(ff_stats.slots, ref_stats.slots);
    EXPECT_EQ(ff_stats.bytesIn, ref_stats.bytesIn);
    ASSERT_EQ(ff_chunks.size(), ref_chunks.size());
    for (std::size_t c = 0; c < ff_chunks.size(); ++c) {
        ASSERT_EQ(ff_chunks[c].size(), ref_chunks[c].size());
        EXPECT_TRUE(std::equal(
            ff_chunks[c].begin(), ff_chunks[c].end(),
            ref_chunks[c].begin(),
            [](const Record &a, const Record &b) {
                return a.key == b.key && a.value == b.value;
            }))
            << "chunk " << c;
    }
}

TEST(PipelineEquivalence, CheckedPipelineMatches)
{
    sorter::PipelineSimSorter<Record>::Options o;
    o.config = amt::AmtConfig{4, 4, 1, 2};
    o.dram.numBanks = 2;
    o.dram.bankBytesPerCycle = 16.0;
    o.io.numBanks = 1;
    o.io.bankBytesPerCycle = 16.0;
    o.batchBytes = 256;
    o.recordBytes = 4;
    o.presortRun = 16;
    o.checked = true;

    auto chunk = makeRecords(512, Distribution::FewDistinct, 3);

    o.engine = sim::EngineMode::Reference;
    std::vector<std::vector<Record>> ref_chunks{chunk};
    const auto ref_stats =
        sorter::PipelineSimSorter<Record>(o).sortChunks(ref_chunks);

    o.engine = sim::EngineMode::FastForward;
    std::vector<std::vector<Record>> ff_chunks{chunk};
    const auto ff_stats =
        sorter::PipelineSimSorter<Record>(o).sortChunks(ff_chunks);

    ASSERT_TRUE(ref_stats.completed);
    ASSERT_TRUE(ff_stats.completed);
    EXPECT_EQ(ff_stats.totalCycles, ref_stats.totalCycles);
    EXPECT_TRUE(std::equal(
        ff_chunks[0].begin(), ff_chunks[0].end(), ref_chunks[0].begin(),
        [](const Record &a, const Record &b) {
            return a.key == b.key && a.value == b.value;
        }));
}

} // namespace
} // namespace bonsai
