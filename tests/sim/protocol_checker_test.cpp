/** @file Tests for the stream-protocol monitor (checked simulation). */

#include <gtest/gtest.h>

#include "common/record.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/protocol_checker.hpp"
#include "sorter/sim_sorter.hpp"

#include "common/checks.hpp"
#include "common/random.hpp"

namespace bonsai
{
namespace
{

using sim::ChannelKind;
using sim::CheckedFifo;
using sim::ProtocolChecker;
using sim::ProtocolViolation;

TEST(CheckedFifo, WellBehavedTrafficPasses)
{
    CheckedFifo<Record> f("ch", 8, ChannelKind::SortedRuns);
    f.monitor().expectTerminals(2);
    f.push(Record{1, 0});
    f.push(Record{3, 0});
    f.push(Record{3, 1}); // equal keys are fine within a run
    f.push(Record::terminal());
    f.push(Record{2, 0}); // next run restarts the ordering
    f.push(Record::terminal());
    while (!f.empty())
        f.pop();
    EXPECT_EQ(f.monitor().pushes(), 6u);
    EXPECT_EQ(f.monitor().pops(), 6u);
    EXPECT_EQ(f.monitor().terminalsSeen(), 2u);
    EXPECT_NO_THROW(f.monitor().finalize());
}

TEST(CheckedFifo, OverfullPushFires)
{
    CheckedFifo<Record> f("ch", 2, ChannelKind::SortedRuns);
    f.push(Record{1, 0});
    f.push(Record{2, 0});
    try {
        f.push(Record{3, 0});
        FAIL() << "push on a full channel must fire";
    } catch (const ProtocolViolation &e) {
        EXPECT_EQ(e.channel(), "ch");
        EXPECT_NE(std::string(e.what()).find("full channel"),
                  std::string::npos);
    }
    // The violation fired before the mutation: channel intact.
    EXPECT_EQ(f.size(), 2u);
}

TEST(CheckedFifo, PopFromEmptyFires)
{
    CheckedFifo<Record> f("ch", 2, ChannelKind::SortedRuns);
    EXPECT_THROW(f.pop(), ProtocolViolation);
    f.push(Record{1, 0});
    EXPECT_NO_THROW(f.pop());
    EXPECT_THROW(f.pop(), ProtocolViolation);
}

TEST(CheckedFifo, KeyDecreaseWithinRunFires)
{
    CheckedFifo<Record> f("ch", 8, ChannelKind::SortedRuns);
    f.push(Record{5, 0});
    try {
        f.push(Record{4, 0});
        FAIL() << "descending key within a run must fire";
    } catch (const ProtocolViolation &e) {
        EXPECT_NE(std::string(e.what()).find("not sorted"),
                  std::string::npos);
    }
}

TEST(CheckedFifo, TerminalResetsOrdering)
{
    CheckedFifo<Record> f("ch", 8, ChannelKind::SortedRuns);
    f.push(Record{5, 0});
    f.push(Record::terminal());
    // A smaller key after the terminal starts a new run: legal.
    EXPECT_NO_THROW(f.push(Record{1, 0}));
    // ...but within that run order is enforced again.
    EXPECT_NO_THROW(f.push(Record{2, 0}));
    EXPECT_THROW(f.push(Record{1, 5}), ProtocolViolation);
}

TEST(CheckedFifo, RawChannelsSkipOrdering)
{
    CheckedFifo<int> f("raw", 4, ChannelKind::Raw);
    f.push(9);
    f.push(1); // out of order, but Raw channels carry anything
    f.push(5);
    EXPECT_EQ(f.monitor().pushes(), 3u);
    f.pop();
    f.pop();
    f.pop();
    EXPECT_NO_THROW(f.monitor().finalize());
}

TEST(CheckedFifo, ExcessTerminalFiresAtThePush)
{
    CheckedFifo<Record> f("ch", 8, ChannelKind::SortedRuns);
    f.monitor().expectTerminals(1);
    f.push(Record::terminal());
    f.pop();
    EXPECT_THROW(f.push(Record::terminal()), ProtocolViolation);
}

TEST(CheckedFifo, ExcessTerminalFiresRetroactively)
{
    CheckedFifo<Record> f("ch", 8, ChannelKind::SortedRuns);
    f.push(Record::terminal());
    f.push(Record::terminal());
    // The expectation arrives after the damage: still reported.
    EXPECT_THROW(f.monitor().expectTerminals(1), ProtocolViolation);
}

TEST(CheckedFifo, MissingTerminalFiresAtFinalize)
{
    CheckedFifo<Record> f("ch", 8, ChannelKind::SortedRuns);
    f.monitor().expectTerminals(2);
    f.push(Record{1, 0});
    f.push(Record::terminal());
    f.pop();
    f.pop();
    try {
        f.monitor().finalize();
        FAIL() << "missing terminal must fire at finalize";
    } catch (const ProtocolViolation &e) {
        EXPECT_NE(std::string(e.what()).find("expected 2"),
                  std::string::npos);
    }
}

TEST(CheckedFifo, UndrainedChannelFiresAtFinalize)
{
    CheckedFifo<Record> f("ch", 8, ChannelKind::SortedRuns);
    f.push(Record{1, 0});
    EXPECT_THROW(f.monitor().finalize(), ProtocolViolation);
    f.pop();
    EXPECT_NO_THROW(f.monitor().finalize());
}

/** Pushes onto its (already full) output at a chosen cycle. */
class BadPusher final : public sim::Component
{
  public:
    BadPusher(sim::Fifo<Record> &out, sim::Cycle when)
        : Component("bad_pusher"), out_(out), when_(when)
    {
    }

    void
    tick(sim::Cycle now) override
    {
        if (now == when_)
            out_.push(Record{9, 9});
    }

    bool quiescent() const override { return true; }

  private:
    sim::Fifo<Record> &out_;
    const sim::Cycle when_;
};

TEST(ProtocolChecker, ViolationCarriesTheOffendingCycle)
{
    ProtocolChecker checker("check");
    sim::Fifo<Record> fifo(1);
    checker.watch<Record>("tree.out0_0", fifo,
                          ChannelKind::SortedRuns);
    fifo.push(Record{1, 0}); // now full
    BadPusher bad(fifo, 3);

    sim::SimEngine engine;
    engine.add(&checker); // first: its clock leads the components
    engine.add(&bad);
    try {
        engine.run([] { return false; }, 10);
        FAIL() << "the cycle-3 push must fire";
    } catch (const ProtocolViolation &e) {
        EXPECT_EQ(e.channel(), "tree.out0_0");
        EXPECT_EQ(e.cycle(), 3u);
    }
}

/**
 * Claims quiescent() unconditionally but secretly holds a record it
 * emits later — the understatement that would let the engine's
 * convergence predicate end a run while data is still in flight.
 */
class LyingComponent final : public sim::Component
{
  public:
    LyingComponent(sim::Fifo<Record> &in, sim::Fifo<Record> &out,
                   sim::Cycle emit_at)
        : Component("liar"), in_(in), out_(out), emitAt_(emit_at)
    {
    }

    void
    tick(sim::Cycle now) override
    {
        if (now == emitAt_)
            out_.push(Record{1, 0});
    }

    bool quiescent() const override { return true; } // the lie

  private:
    sim::Fifo<Record> &in_;
    sim::Fifo<Record> &out_;
    const sim::Cycle emitAt_;
};

TEST(ProtocolChecker, LyingQuiescenceIsDetected)
{
    ProtocolChecker checker("check");
    sim::Fifo<Record> in(4);
    sim::Fifo<Record> out(4);
    auto &out_monitor = checker.watch<Record>(
        "liar.out", out, ChannelKind::SortedRuns);
    LyingComponent liar(in, out, 1);
    checker.watchQuiescence<Record>(liar, {&in}, {&out_monitor});

    sim::SimEngine engine;
    engine.add(&checker);
    engine.add(&liar);
    // Cycle 0: liar settles (quiescent + empty input).  Cycle 1: it
    // pushes anyway.  Cycle 2: the checker sees output growth while
    // settled and fires.
    try {
        engine.run([] { return false; }, 10);
        FAIL() << "quiescence lie must fire";
    } catch (const ProtocolViolation &e) {
        EXPECT_EQ(e.channel(), "liar");
        EXPECT_EQ(e.cycle(), 2u);
        EXPECT_NE(std::string(e.what()).find("quiescent"),
                  std::string::npos);
    }
}

TEST(ProtocolChecker, HonestTrafficRunsCleanToFinalize)
{
    ProtocolChecker checker("check");
    sim::Fifo<Record> fifo(8);
    auto &monitor = checker.watch<Record>("ch", fifo,
                                          ChannelKind::SortedRuns);
    monitor.expectTerminals(1);
    EXPECT_EQ(checker.watchedChannels(), 1u);

    fifo.push(Record{1, 0});
    fifo.push(Record{2, 0});
    fifo.push(Record::terminal());
    while (!fifo.empty())
        fifo.pop();
    EXPECT_NO_THROW(checker.finalize());
}

TEST(ProtocolChecker, FinalizeRejectsNonQuiescentComponent)
{
    /** Honest component that still holds buffered state. */
    class Busy final : public sim::Component
    {
      public:
        Busy() : Component("busy") {}
        void tick(sim::Cycle) override {}
        bool quiescent() const override { return false; }
    };

    ProtocolChecker checker("check");
    sim::Fifo<Record> in(4);
    Busy busy;
    checker.watchQuiescence<Record>(busy, {&in}, {});
    try {
        checker.finalize();
        FAIL() << "non-quiescent component at end of run must fire";
    } catch (const ProtocolViolation &e) {
        EXPECT_EQ(e.channel(), "busy");
    }
}

TEST(ProtocolChecker, CheckedSimSorterSortsClean)
{
    // End to end: a full simulated sort with every channel monitored
    // and per-stage finalize checks must behave exactly like an
    // unchecked run.
    sorter::SimSorter<Record>::Options opts;
    opts.config = amt::AmtConfig{4, 8, 1, 1};
    opts.mem.numBanks = 4;
    opts.mem.bankBytesPerCycle = 32.0;
    opts.mem.interleaveBytes = 1024;
    opts.mem.requestLatency = 8;
    opts.batchBytes = 1024;
    opts.recordBytes = 4;
    opts.presortRun = 16;
    opts.checked = true;

    auto data = makeRecords(5000, Distribution::UniformRandom);
    const Fingerprint before =
        fingerprint(std::span<const Record>(data));
    sorter::SimSorter<Record> sorter(opts);
    const auto stats = sorter.sort(data);
    ASSERT_TRUE(stats.completed);
    EXPECT_TRUE(isSorted(std::span<const Record>(data)));
    EXPECT_EQ(before, fingerprint(std::span<const Record>(data)));
}

} // namespace
} // namespace bonsai
