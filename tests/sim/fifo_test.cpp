/** @file Unit tests for the bounded FIFO channel. */

#include <gtest/gtest.h>

#include "common/record.hpp"
#include "sim/fifo.hpp"

namespace bonsai
{
namespace
{

TEST(Fifo, StartsEmpty)
{
    sim::Fifo<int> f(4);
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.full());
    EXPECT_EQ(f.size(), 0u);
    EXPECT_EQ(f.freeSpace(), 4u);
    EXPECT_EQ(f.capacity(), 4u);
}

TEST(Fifo, FifoOrdering)
{
    sim::Fifo<int> f(8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(f.pop(), i);
    EXPECT_TRUE(f.empty());
}

TEST(Fifo, FullAtCapacity)
{
    sim::Fifo<int> f(2);
    f.push(1);
    EXPECT_FALSE(f.full());
    f.push(2);
    EXPECT_TRUE(f.full());
    EXPECT_EQ(f.freeSpace(), 0u);
}

TEST(Fifo, PeekDoesNotConsume)
{
    sim::Fifo<int> f(4);
    f.push(10);
    f.push(20);
    f.push(30);
    EXPECT_EQ(f.peek(0), 10);
    EXPECT_EQ(f.peek(1), 20);
    EXPECT_EQ(f.peek(2), 30);
    EXPECT_EQ(f.front(), 10);
    EXPECT_EQ(f.size(), 3u);
}

TEST(Fifo, InterleavedPushPop)
{
    sim::Fifo<int> f(3);
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 50; ++round) {
        while (!f.full())
            f.push(next_in++);
        f.pop();
        EXPECT_EQ(f.front(), ++next_out);
    }
}

TEST(Fifo, HoldsRecords)
{
    sim::Fifo<Record> f(2);
    f.push(Record{5, 6});
    f.push(Record::terminal());
    EXPECT_FALSE(f.front().isTerminal());
    f.pop();
    EXPECT_TRUE(f.front().isTerminal());
}

} // namespace
} // namespace bonsai
