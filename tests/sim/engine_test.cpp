/** @file Unit tests for the cycle-driven engine. */

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

/** Counts its own ticks. */
class TickCounter : public sim::Component
{
  public:
    TickCounter() : Component("counter") {}

    void tick(sim::Cycle) override { ++ticks; }

    sim::Cycle ticks = 0;
};

/** Records the cycle number of each tick to verify monotonic time. */
class CycleRecorder : public sim::Component
{
  public:
    CycleRecorder() : Component("recorder") {}

    void
    tick(sim::Cycle now) override
    {
        cycles.push_back(now);
    }

    std::vector<sim::Cycle> cycles;
};

TEST(SimEngine, RunsUntilPredicate)
{
    sim::SimEngine engine;
    TickCounter counter;
    engine.add(&counter);
    const auto result =
        engine.run([&] { return counter.ticks >= 10; }, 1000);
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.cycles, 10u);
    EXPECT_EQ(counter.ticks, 10u);
    EXPECT_EQ(engine.now(), 10u);
}

TEST(SimEngine, BudgetExceededReportsUnfinished)
{
    sim::SimEngine engine;
    TickCounter counter;
    engine.add(&counter);
    const auto result = engine.run([] { return false; }, 25);
    EXPECT_FALSE(result.finished);
    EXPECT_EQ(result.cycles, 25u);
}

TEST(SimEngine, TimeIsMonotonicAcrossRuns)
{
    sim::SimEngine engine;
    CycleRecorder rec;
    engine.add(&rec);
    engine.run([&] { return rec.cycles.size() >= 3; }, 100);
    engine.run([&] { return rec.cycles.size() >= 6; }, 100);
    ASSERT_EQ(rec.cycles.size(), 6u);
    for (std::size_t i = 0; i < rec.cycles.size(); ++i)
        EXPECT_EQ(rec.cycles[i], i);
}

TEST(SimEngine, ComponentsTickInRegistrationOrder)
{
    sim::SimEngine engine;
    std::vector<int> order;
    class Probe : public sim::Component
    {
      public:
        Probe(std::vector<int> &order, int id)
            : Component("probe"), order_(order), id_(id)
        {
        }
        void tick(sim::Cycle) override { order_.push_back(id_); }

      private:
        std::vector<int> &order_;
        int id_;
    };
    Probe a(order, 1), b(order, 2), c(order, 3);
    engine.add(&a);
    engine.add(&b);
    engine.add(&c);
    engine.run([] { return true; }, 10);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

} // namespace
} // namespace bonsai
