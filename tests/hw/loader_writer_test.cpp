/** @file Unit tests for the data loader and data writer. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"
#include "hw/data_loader.hpp"
#include "hw/data_writer.hpp"
#include "mem/timing.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

mem::MemTimingConfig
fastMem()
{
    mem::MemTimingConfig cfg;
    cfg.numBanks = 4;
    cfg.bankBytesPerCycle = 32.0;
    cfg.interleaveBytes = 1024;
    cfg.requestLatency = 4;
    return cfg;
}

TEST(DataLoader, DeliversRunsWithTerminals)
{
    const auto source = makeRecords(100, Distribution::Sorted);
    mem::MemoryTiming memory("m", fastMem());
    sim::Fifo<Record> leaf0(600);
    sim::Fifo<Record> leaf1(600);

    std::vector<hw::DataLoader<Record>::LeafFeed> feeds(2);
    feeds[0].buffer = &leaf0;
    feeds[0].runs = {{0, 30}, {30, 20}};
    feeds[1].buffer = &leaf1;
    feeds[1].runs = {{50, 50}, {0, 0}}; // second run empty (padding)

    hw::DataLoader<Record> loader(
        "dl", std::span<const Record>(source), std::move(feeds), memory,
        /*batch_records=*/64, /*presort_chunk=*/0, 0, 4);

    sim::SimEngine engine;
    engine.add(&memory);
    engine.add(&loader);
    const auto result =
        engine.run([&] { return loader.finished(); }, 100000);
    ASSERT_TRUE(result.finished);

    // Leaf 0: 30 records, terminal, 20 records, terminal.
    ASSERT_EQ(leaf0.size(), 52u);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(leaf0.pop().key, source[i].key);
    EXPECT_TRUE(leaf0.pop().isTerminal());
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(leaf0.pop().key, source[30 + i].key);
    EXPECT_TRUE(leaf0.pop().isTerminal());

    // Leaf 1: 50 records, terminal, then a bare terminal (empty run).
    ASSERT_EQ(leaf1.size(), 52u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(leaf1.pop().key, source[50 + i].key);
    EXPECT_TRUE(leaf1.pop().isTerminal());
    EXPECT_TRUE(leaf1.pop().isTerminal());
}

TEST(DataLoader, PresortsChunksDuringFirstStage)
{
    auto source = makeRecords(64, Distribution::Reverse);
    mem::MemoryTiming memory("m", fastMem());
    sim::Fifo<Record> leaf(600);
    std::vector<hw::DataLoader<Record>::LeafFeed> feeds(1);
    feeds[0].buffer = &leaf;
    feeds[0].runs = chunkRuns(64, 16);

    hw::DataLoader<Record> loader(
        "dl", std::span<const Record>(source), std::move(feeds), memory,
        64, /*presort_chunk=*/16, 0, 4);

    sim::SimEngine engine;
    engine.add(&memory);
    engine.add(&loader);
    ASSERT_TRUE(engine.run([&] { return loader.finished(); }, 100000)
                    .finished);

    ASSERT_EQ(leaf.size(), 64u + 4u);
    for (int run = 0; run < 4; ++run) {
        std::vector<Record> chunk;
        for (int i = 0; i < 16; ++i)
            chunk.push_back(leaf.pop());
        EXPECT_TRUE(std::is_sorted(chunk.begin(), chunk.end()));
        EXPECT_TRUE(leaf.pop().isTerminal());
    }
}

TEST(DataLoader, RespectsBufferBackPressure)
{
    const auto source = makeRecords(512, Distribution::Sorted);
    mem::MemoryTiming memory("m", fastMem());
    // Capacity buffer: 2 batches of 32 + headroom per canIssue().
    sim::Fifo<Record> leaf(2 * (2 * 32 + 2));
    std::vector<hw::DataLoader<Record>::LeafFeed> feeds(1);
    feeds[0].buffer = &leaf;
    feeds[0].runs = {{0, 512}};
    hw::DataLoader<Record> loader(
        "dl", std::span<const Record>(source), std::move(feeds), memory,
        32, 0, 0, 4);

    sim::SimEngine engine;
    engine.add(&memory);
    engine.add(&loader);
    std::vector<Record> drained;
    const auto result = engine.run(
        [&] {
            // Drain slowly: 8 records per cycle.
            for (int i = 0; i < 8 && !leaf.empty(); ++i)
                drained.push_back(leaf.pop());
            return drained.size() >= 513;
        },
        100000);
    ASSERT_TRUE(result.finished);
    EXPECT_TRUE(drained.back().isTerminal());
    drained.pop_back();
    for (std::size_t i = 0; i < drained.size(); ++i)
        EXPECT_EQ(drained[i].key, source[i].key);
    EXPECT_EQ(loader.batchesIssued(), 16u);
}

TEST(DataWriter, WritesRunsAndRecordsBoundaries)
{
    mem::MemoryTiming memory("m", fastMem());
    sim::Fifo<Record> in(256);
    std::vector<Record> dest(100);
    hw::DataWriter<Record> writer("dw", in,
                                  std::span<Record>(dest), memory,
                                  /*width=*/8, /*expected_records=*/60,
                                  /*expected_runs=*/3, 32, 0, 4);

    // Three runs of 20, each with a terminal.
    for (int run = 0; run < 3; ++run) {
        for (std::uint64_t i = 0; i < 20; ++i)
            in.push(Record{run * 100 + i + 1, 0});
        in.push(Record::terminal());
    }

    sim::SimEngine engine;
    engine.add(&memory);
    engine.add(&writer);
    const auto result =
        engine.run([&] { return writer.finished(); }, 100000);
    ASSERT_TRUE(result.finished);

    const auto &runs = writer.runs();
    ASSERT_EQ(runs.size(), 3u);
    for (int r = 0; r < 3; ++r) {
        EXPECT_EQ(runs[r].offset, 20u * r);
        EXPECT_EQ(runs[r].length, 20u);
    }
    EXPECT_EQ(writer.recordsWritten(), 60u);
    for (int r = 0; r < 3; ++r) {
        for (int i = 0; i < 20; ++i)
            EXPECT_EQ(dest[20 * r + i].key,
                      static_cast<std::uint64_t>(r * 100 + i + 1));
    }
}

TEST(DataWriter, HandlesEmptyRuns)
{
    mem::MemoryTiming memory("m", fastMem());
    sim::Fifo<Record> in(64);
    std::vector<Record> dest(16);
    hw::DataWriter<Record> writer("dw", in, std::span<Record>(dest),
                                  memory, 4, 8, 3, 16, 0, 4);
    // Run of 8, empty run, empty run.
    for (std::uint64_t i = 1; i <= 8; ++i)
        in.push(Record{i, 0});
    in.push(Record::terminal());
    in.push(Record::terminal());
    in.push(Record::terminal());

    sim::SimEngine engine;
    engine.add(&memory);
    engine.add(&writer);
    ASSERT_TRUE(
        engine.run([&] { return writer.finished(); }, 10000).finished);
    const auto &runs = writer.runs();
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].length, 8u);
    EXPECT_EQ(runs[1].length, 0u);
    EXPECT_EQ(runs[2].length, 0u);
}

TEST(LoaderWriterRoundTrip, CopiesThroughMemoryModels)
{
    // loader -> FIFO -> writer moves a buffer intact, with the memory
    // model accounting both directions.
    const auto source = makeRecords(300, Distribution::UniformRandom);
    mem::MemoryTiming memory("m", fastMem());
    sim::Fifo<Record> pipe(2 * (2 * 64 + 2));
    std::vector<hw::DataLoader<Record>::LeafFeed> feeds(1);
    feeds[0].buffer = &pipe;
    feeds[0].runs = {{0, 300}};
    hw::DataLoader<Record> loader("dl",
                                  std::span<const Record>(source),
                                  std::move(feeds), memory, 64, 0, 0, 4);
    std::vector<Record> dest(300);
    hw::DataWriter<Record> writer("dw", pipe, std::span<Record>(dest),
                                  memory, 8, 300, 1, 64,
                                  300 * 4, 4);
    sim::SimEngine engine;
    engine.add(&memory);
    engine.add(&writer);
    engine.add(&loader);
    ASSERT_TRUE(
        engine.run([&] { return writer.finished(); }, 100000).finished);
    for (std::size_t i = 0; i < source.size(); ++i)
        EXPECT_EQ(dest[i], source[i]);
    EXPECT_EQ(memory.bytesRead(), 1200u);
    EXPECT_EQ(memory.bytesWritten(), 1200u);
}

} // namespace
} // namespace bonsai
