/** @file Unit tests for the k-merger component. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"
#include "common/record.hpp"
#include "hw/merger.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

using Runs = std::vector<std::vector<Record>>;

/** Push runs into a FIFO, one terminal after each run. */
void
feed(sim::Fifo<Record> &fifo, const Runs &runs)
{
    for (const auto &run : runs) {
        for (const Record &r : run)
            fifo.push(r);
        fifo.push(Record::terminal());
    }
}

std::size_t
streamLength(const Runs &runs)
{
    std::size_t n = runs.size(); // terminals
    for (const auto &run : runs)
        n += run.size();
    return n;
}

/** Expected output stream: pairwise-merged runs, each + terminal. */
std::vector<Record>
expectedStream(const Runs &a, const Runs &b)
{
    std::vector<Record> out;
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::vector<Record> merged;
        std::merge(a[i].begin(), a[i].end(), b[i].begin(), b[i].end(),
                   std::back_inserter(merged));
        for (const Record &r : merged)
            out.push_back(r);
        out.push_back(Record::terminal());
    }
    return out;
}

/** Drive one merger to completion; returns the raw output stream. */
std::vector<Record>
runMerger(unsigned k, const Runs &a, const Runs &b,
          std::size_t out_capacity = 0, unsigned drain_rate = 0)
{
    sim::Fifo<Record> in_a(streamLength(a) + 1);
    sim::Fifo<Record> in_b(streamLength(b) + 1);
    if (out_capacity == 0)
        out_capacity = 4 * (k + 1);
    sim::Fifo<Record> out(out_capacity);
    hw::Merger<Record> merger("m", k, in_a, in_b, out);
    feed(in_a, a);
    feed(in_b, b);

    const std::size_t expected =
        streamLength(a) + streamLength(b) - a.size();
    std::vector<Record> got;
    sim::SimEngine engine;
    engine.add(&merger);
    const auto result = engine.run(
        [&] {
            // Drain the output FIFO (optionally rate-limited to
            // exercise back-pressure).
            unsigned budget =
                drain_rate == 0 ? static_cast<unsigned>(-1)
                                : drain_rate;
            while (!out.empty() && budget-- > 0)
                got.push_back(out.pop());
            return got.size() >= expected;
        },
        200000);
    EXPECT_TRUE(result.finished) << "merger deadlocked (k=" << k << ")";
    return got;
}

void
check(unsigned k, const Runs &a, const Runs &b,
      std::size_t out_capacity = 0, unsigned drain_rate = 0)
{
    ASSERT_EQ(a.size(), b.size());
    const auto got = runMerger(k, a, b, out_capacity, drain_rate);
    const auto expect = expectedStream(a, b);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].isTerminal(), expect[i].isTerminal())
            << "position " << i;
        EXPECT_EQ(got[i].key, expect[i].key) << "position " << i;
    }
}

std::vector<Record>
sortedRun(std::size_t n, std::uint64_t seed)
{
    auto run = makeRecords(n, Distribution::UniformRandom, seed);
    std::sort(run.begin(), run.end());
    return run;
}

class MergerWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MergerWidths, MergesSingleRunPair)
{
    const unsigned k = GetParam();
    check(k, {sortedRun(40, 1)}, {sortedRun(52, 2)});
}

TEST_P(MergerWidths, MergesRunsOfTupleAlignedLength)
{
    const unsigned k = GetParam();
    check(k, {sortedRun(4 * k, 3)}, {sortedRun(8 * k, 4)});
}

TEST_P(MergerWidths, MergesManyBackToBackRunPairs)
{
    const unsigned k = GetParam();
    Runs a, b;
    for (int i = 0; i < 6; ++i) {
        a.push_back(sortedRun(10 + 3 * i, 10 + i));
        b.push_back(sortedRun(17 - 2 * i, 20 + i));
    }
    check(k, a, b);
}

TEST_P(MergerWidths, HandlesEmptyRuns)
{
    const unsigned k = GetParam();
    check(k, {{}, sortedRun(9, 5), {}},
          {sortedRun(7, 6), {}, {}});
}

TEST_P(MergerWidths, HandlesAllEqualKeys)
{
    const unsigned k = GetParam();
    std::vector<Record> run_a(30, Record{7, 1});
    std::vector<Record> run_b(41, Record{7, 2});
    check(k, {run_a}, {run_b});
}

TEST_P(MergerWidths, HandlesDisjointRanges)
{
    const unsigned k = GetParam();
    std::vector<Record> low, high;
    for (std::uint64_t i = 1; i <= 33; ++i)
        low.push_back(Record{i, 0});
    for (std::uint64_t i = 100; i < 149; ++i)
        high.push_back(Record{i, 0});
    check(k, {low}, {high});
    check(k, {high}, {low});
}

TEST_P(MergerWidths, SurvivesBackPressure)
{
    const unsigned k = GetParam();
    // Minimal legal output FIFO and a slow drain of 1 record/cycle.
    check(k, {sortedRun(64, 8)}, {sortedRun(64, 9)}, 2 * (k + 1), 1);
}

TEST_P(MergerWidths, SingleRecordRuns)
{
    const unsigned k = GetParam();
    Runs a, b;
    for (std::uint64_t i = 0; i < 8; ++i) {
        a.push_back({Record{2 * i + 1, 0}});
        b.push_back({Record{2 * i + 2, 0}});
    }
    check(k, a, b);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, MergerWidths,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(Merger, ThroughputApproachesKPerCycle)
{
    // A long tuple-aligned merge should take about n/k cycles plus
    // pipeline latency and the run flush.
    const unsigned k = 8;
    const std::size_t n = 4096; // per input
    sim::Fifo<Record> in_a(n + 2);
    sim::Fifo<Record> in_b(n + 2);
    sim::Fifo<Record> out(4 * (k + 1));
    hw::Merger<Record> merger("m", k, in_a, in_b, out);
    feed(in_a, {sortedRun(n, 1)});
    feed(in_b, {sortedRun(n, 2)});
    std::size_t drained = 0;
    sim::SimEngine engine;
    engine.add(&merger);
    const auto result = engine.run(
        [&] {
            while (!out.empty()) {
                out.pop();
                ++drained;
            }
            return drained >= 2 * n + 1;
        },
        100000);
    ASSERT_TRUE(result.finished);
    const double ideal = 2.0 * n / k;
    EXPECT_LT(static_cast<double>(result.cycles), ideal * 1.15 + 50);
    EXPECT_GE(static_cast<double>(result.cycles), ideal);
}

TEST(Merger, TransientOutputStallCostsOnlyStalledCycles)
{
    // Regression: after a downstream stall cleared, the merger
    // refused intake until its entire ready backlog had drained,
    // instead of accepting one tuple per drained group — so every
    // transient stall also cost a full pipeline-drain of dead cycles.
    constexpr unsigned k = 16;
    constexpr std::uint64_t n = 4000; // records per input
    constexpr sim::Cycle kFirstStall = 50;
    constexpr sim::Cycle kSpacing = 40;
    constexpr sim::Cycle kStallLen = 10;
    constexpr unsigned kStalls = 10;

    const auto run = [&](bool inject) {
        sim::Fifo<Record> in_a(n + 1), in_b(n + 1);
        sim::Fifo<Record> out(2 * (k + 1)); // minimum legal capacity
        hw::Merger<Record> merger("m", k, in_a, in_b, out);
        for (std::uint64_t i = 0; i < n; ++i)
            in_a.push(Record{2 * i + 1, 0});
        in_a.push(Record::terminal());
        for (std::uint64_t i = 0; i < n; ++i)
            in_b.push(Record{2 * i + 2, 0});
        in_b.push(Record::terminal());

        sim::SimEngine engine;
        engine.add(&merger);
        std::uint64_t prev = 0;
        std::uint64_t got = 0;
        const auto result = engine.run(
            [&] {
                const sim::Cycle now = engine.now();
                if (inject && now >= kFirstStall) {
                    const sim::Cycle since = now - kFirstStall;
                    if (since / kSpacing < kStalls &&
                        since % kSpacing < kStallLen)
                        return false; // downstream refuses to pop
                }
                while (!out.empty()) {
                    const Record r = out.pop();
                    if (!r.isTerminal()) {
                        EXPECT_GT(r.key, prev);
                        prev = r.key;
                        ++got;
                    }
                }
                return got == 2 * n;
            },
            100'000);
        EXPECT_TRUE(result.finished) << "merger deadlocked";
        return result.cycles;
    };

    const sim::Cycle baseline = run(false);
    const sim::Cycle stalled = run(true);
    EXPECT_GE(stalled, baseline);
    // Each stall may cost its stalled cycles (+1 for the edge) but
    // not an additional backlog drain on top.
    EXPECT_LE(stalled, baseline + kStalls * (kStallLen + 1))
        << "post-stall recovery paused intake beyond the stall";
}

TEST(Merger, FlushCountMatchesRunPairs)
{
    const unsigned k = 4;
    Runs a, b;
    for (int i = 0; i < 5; ++i) {
        a.push_back(sortedRun(12, 30 + i));
        b.push_back(sortedRun(12, 40 + i));
    }
    sim::Fifo<Record> in_a(streamLength(a) + 1);
    sim::Fifo<Record> in_b(streamLength(b) + 1);
    sim::Fifo<Record> out(64);
    hw::Merger<Record> merger("m", k, in_a, in_b, out);
    feed(in_a, a);
    feed(in_b, b);
    std::size_t drained = 0;
    sim::SimEngine engine;
    engine.add(&merger);
    engine.run(
        [&] {
            while (!out.empty()) {
                out.pop();
                ++drained;
            }
            return drained >= 125;
        },
        100000);
    EXPECT_EQ(merger.flushes(), 5u);
    EXPECT_EQ(merger.recordsOut(), 120u);
    EXPECT_TRUE(merger.quiescent());
}

} // namespace
} // namespace bonsai
