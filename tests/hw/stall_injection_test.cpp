/**
 * @file
 * Failure/stall injection tests (paper Section V-A: "In case one
 * input buffer becomes empty, the AMT will automatically stall until
 * the data loader feeds the buffer with more data.  ... we were
 * pausing the data loader in order to ensure the AMT behaves
 * correctly with empty input buffers").
 *
 * A jittery feeder starves random leaf buffers for random intervals
 * and delivers data in random bursts; a lazy drain randomly refuses to
 * pop the root FIFO.  The tree must stall and resume without ever
 * corrupting or reordering output.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "amt/instance.hpp"
#include "common/random.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

/** Pushes a run + terminal into one leaf with random pauses. */
class JitteryFeeder : public sim::Component
{
  public:
    JitteryFeeder(sim::Fifo<Record> &leaf, std::vector<Record> run,
                  std::uint64_t seed)
        : Component("feeder"), leaf_(leaf), run_(std::move(run)),
          rng_(seed)
    {
    }

    void
    tick(sim::Cycle) override
    {
        if (pause_ > 0) {
            --pause_;
            return;
        }
        // Random burst of 0-4 records per cycle.
        const std::uint64_t burst = rng_.nextBounded(5);
        for (std::uint64_t i = 0; i < burst; ++i) {
            if (leaf_.full())
                return;
            if (pos_ < run_.size()) {
                leaf_.push(run_[pos_++]);
            } else if (!terminalSent_) {
                leaf_.push(Record::terminal());
                terminalSent_ = true;
            }
        }
        if (rng_.nextBounded(10) == 0)
            pause_ = rng_.nextBounded(30); // starve for a while
    }

    bool done() const { return terminalSent_; }

  private:
    sim::Fifo<Record> &leaf_;
    std::vector<Record> run_;
    std::size_t pos_ = 0;
    bool terminalSent_ = false;
    std::uint64_t pause_ = 0;
    SplitMix64 rng_;
};

struct Shape
{
    unsigned p;
    unsigned ell;
};

class StallInjection : public ::testing::TestWithParam<Shape>
{
};

TEST_P(StallInjection, JitteryFeedsAndLazyDrainStayCorrect)
{
    const auto [p, ell] = GetParam();
    const amt::TreeShape shape = amt::makeTreeShape(p, ell);
    amt::AmtInstance<Record> tree("amt", shape, 64);

    sim::SimEngine engine;
    std::vector<std::unique_ptr<JitteryFeeder>> feeders;
    std::vector<Record> all;
    for (unsigned j = 0; j < ell; ++j) {
        auto run = makeRecords(37 + 11 * j, Distribution::UniformRandom,
                               500 + j);
        std::sort(run.begin(), run.end());
        all.insert(all.end(), run.begin(), run.end());
        feeders.push_back(std::make_unique<JitteryFeeder>(
            *tree.leafBuffers()[j], std::move(run), 900 + j));
    }
    std::sort(all.begin(), all.end());
    for (auto &f : feeders)
        engine.add(f.get());
    tree.registerWith(engine);

    SplitMix64 drain_rng(31337);
    std::vector<Record> got;
    bool terminal_seen = false;
    const auto result = engine.run(
        [&] {
            // Lazy drain: sometimes refuse to pop at all.
            if (drain_rng.nextBounded(4) == 0)
                return terminal_seen;
            while (!tree.rootOutput().empty()) {
                const Record r = tree.rootOutput().pop();
                if (r.isTerminal())
                    terminal_seen = true;
                else
                    got.push_back(r);
            }
            return terminal_seen;
        },
        2'000'000);
    ASSERT_TRUE(result.finished) << "tree deadlocked under jitter";
    ASSERT_EQ(got.size(), all.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].key, all[i].key) << i;
    EXPECT_TRUE(tree.quiescent());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StallInjection,
    ::testing::Values(Shape{1, 2}, Shape{2, 4}, Shape{4, 8},
                      Shape{8, 16}, Shape{16, 4}, Shape{32, 8}),
    [](const ::testing::TestParamInfo<Shape> &param_info) {
        return "p" + std::to_string(param_info.param.p) + "_ell" +
            std::to_string(param_info.param.ell);
    });

TEST(StallInjection, MergerResumesAfterLongStarvation)
{
    // One input stops mid-run for a long time; the merger must stall
    // (not emit) and resume exactly where it left off.
    sim::Fifo<Record> in_a(128), in_b(128), out(64);
    hw::Merger<Record> merger("m", 4, in_a, in_b, out);
    // Feed half of A now, all of B now.
    std::vector<Record> run_a, run_b;
    for (std::uint64_t i = 0; i < 40; ++i)
        run_a.push_back(Record{2 * i + 1, 0});
    for (std::uint64_t i = 0; i < 40; ++i)
        run_b.push_back(Record{2 * i + 2, 0});
    for (std::size_t i = 0; i < 20; ++i)
        in_a.push(run_a[i]);
    for (const Record &r : run_b)
        in_b.push(r);
    in_b.push(Record::terminal());

    sim::SimEngine engine;
    engine.add(&merger);
    std::vector<Record> got;
    // Phase 1: run 500 cycles with A starved after 20 records.
    engine.run(
        [&] {
            while (!out.empty()) {
                const Record r = out.pop();
                if (!r.isTerminal())
                    got.push_back(r);
            }
            return false;
        },
        500);
    const std::size_t drained_during_starvation = got.size();
    // The merger cannot overtake A's missing data.
    EXPECT_LT(drained_during_starvation, 45u);
    // Phase 2: deliver the rest of A.
    for (std::size_t i = 20; i < run_a.size(); ++i)
        in_a.push(run_a[i]);
    in_a.push(Record::terminal());
    const auto result = engine.run(
        [&] {
            while (!out.empty()) {
                const Record r = out.pop();
                if (!r.isTerminal())
                    got.push_back(r);
            }
            return got.size() >= 80;
        },
        5000);
    ASSERT_TRUE(result.finished);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].key, i + 1);
}

} // namespace
} // namespace bonsai
