/** @file Unit tests for the bitonic networks (0-1 principle based). */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"
#include "common/record.hpp"
#include "hw/bitonic.hpp"

namespace bonsai
{
namespace
{

std::vector<Record>
fromBits(unsigned bits, unsigned n)
{
    std::vector<Record> recs(n);
    for (unsigned i = 0; i < n; ++i)
        recs[i] = Record{((bits >> i) & 1) + 1, i};
    return recs;
}

TEST(Bitonic, IsPow2)
{
    EXPECT_TRUE(hw::isPow2(1));
    EXPECT_TRUE(hw::isPow2(2));
    EXPECT_TRUE(hw::isPow2(1024));
    EXPECT_FALSE(hw::isPow2(0));
    EXPECT_FALSE(hw::isPow2(3));
    EXPECT_FALSE(hw::isPow2(1023));
}

TEST(Bitonic, Log2Exact)
{
    EXPECT_EQ(hw::log2Exact(1), 0u);
    EXPECT_EQ(hw::log2Exact(2), 1u);
    EXPECT_EQ(hw::log2Exact(256), 8u);
}

/**
 * 0-1 principle: a comparison network sorts all inputs iff it sorts
 * all 0-1 sequences.  Exhaustive over every 0-1 input for n <= 16.
 */
TEST(Bitonic, SortNetworkZeroOnePrincipleExhaustive)
{
    for (unsigned n : {2u, 4u, 8u, 16u}) {
        for (unsigned bits = 0; bits < (1u << n); ++bits) {
            auto recs = fromBits(bits, n);
            hw::bitonicSortNetwork(std::span<Record>(recs));
            EXPECT_TRUE(std::is_sorted(recs.begin(), recs.end()))
                << "n=" << n << " bits=" << bits;
        }
    }
}

TEST(Bitonic, SortNetworkRandomSweep)
{
    for (unsigned n : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        for (std::uint64_t seed = 0; seed < 20; ++seed) {
            auto recs = makeRecords(n, Distribution::UniformRandom,
                                    seed);
            auto expect = recs;
            std::sort(expect.begin(), expect.end());
            hw::bitonicSortNetwork(std::span<Record>(recs));
            for (unsigned i = 0; i < n; ++i)
                EXPECT_EQ(recs[i].key, expect[i].key);
        }
    }
}

/**
 * Half-merger: merging two sorted halves must equal std::merge,
 * exhaustively over 0-1 sequences.
 */
TEST(Bitonic, MergeSortedHalvesZeroOneExhaustive)
{
    for (unsigned n : {2u, 4u, 8u, 16u}) {
        const unsigned half = n / 2;
        for (unsigned bits = 0; bits < (1u << n); ++bits) {
            auto recs = fromBits(bits, n);
            std::sort(recs.begin(), recs.begin() + half);
            std::sort(recs.begin() + half, recs.end());
            auto expect = recs;
            std::inplace_merge(expect.begin(), expect.begin() + half,
                               expect.end());
            hw::mergeSortedHalves(std::span<Record>(recs));
            for (unsigned i = 0; i < n; ++i)
                EXPECT_EQ(recs[i].key, expect[i].key)
                    << "n=" << n << " bits=" << bits;
        }
    }
}

TEST(Bitonic, MergeSortedHalvesRandomWide)
{
    for (unsigned n : {32u, 64u, 128u}) {
        for (std::uint64_t seed = 0; seed < 10; ++seed) {
            auto recs = makeRecords(n, Distribution::UniformRandom,
                                    seed);
            std::sort(recs.begin(), recs.begin() + n / 2);
            std::sort(recs.begin() + n / 2, recs.end());
            auto expect = recs;
            std::inplace_merge(expect.begin(),
                               expect.begin() + n / 2, expect.end());
            hw::mergeSortedHalves(std::span<Record>(recs));
            for (unsigned i = 0; i < n; ++i)
                EXPECT_EQ(recs[i].key, expect[i].key);
        }
    }
}

TEST(Bitonic, CasCounts)
{
    // 2k-record half-merger: log2(2k) stages x k CAS.
    EXPECT_EQ(hw::casCountHalfMerger(1), 1u);
    EXPECT_EQ(hw::casCountHalfMerger(2), 4u);
    EXPECT_EQ(hw::casCountHalfMerger(4), 12u);
    EXPECT_EQ(hw::casCountHalfMerger(32), 192u);
    // n-record sorter: n/2 CAS x log(n)(log(n)+1)/2 stages.
    EXPECT_EQ(hw::casCountSorter(2), 1u);
    EXPECT_EQ(hw::casCountSorter(4), 6u);
    EXPECT_EQ(hw::casCountSorter(16), 80u);
}

TEST(Bitonic, MergerLatencyIsTwoHalfMergers)
{
    EXPECT_EQ(hw::mergerLatency(1), 2u);
    EXPECT_EQ(hw::mergerLatency(2), 4u);
    EXPECT_EQ(hw::mergerLatency(16), 10u);
    EXPECT_EQ(hw::mergerLatency(32), 12u);
}

TEST(Bitonic, SortNetworkHandlesDuplicates)
{
    auto recs = makeRecords(64, Distribution::AllEqual);
    hw::bitonicSortNetwork(std::span<Record>(recs));
    EXPECT_TRUE(std::is_sorted(recs.begin(), recs.end()));
}

} // namespace
} // namespace bonsai
