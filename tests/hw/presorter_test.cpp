/** @file Unit tests for the presorter component. */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.hpp"
#include "hw/presorter.hpp"
#include "sim/engine.hpp"

namespace bonsai
{
namespace
{

std::vector<Record>
runPresorter(unsigned width, unsigned chunk,
             const std::vector<Record> &input, bool terminals)
{
    sim::Fifo<Record> in(input.size() + 1);
    sim::Fifo<Record> out(input.size() + input.size() / chunk + 8);
    hw::Presorter<Record> pre("pre", width, chunk, in, out, terminals);
    for (const Record &r : input)
        in.push(r);

    const std::size_t expect = input.size() +
        (terminals ? (input.size() + chunk - 1) / chunk : 0);
    sim::SimEngine engine;
    engine.add(&pre);
    engine.run(
        [&] {
            if (in.empty() && !pre.quiescent() &&
                out.size() < expect) {
                pre.flushTail();
            }
            return out.size() >= expect;
        },
        100000);
    std::vector<Record> got;
    while (!out.empty())
        got.push_back(out.pop());
    return got;
}

TEST(Presorter, Forms16RecordSortedRuns)
{
    const auto input = makeRecords(64, Distribution::UniformRandom);
    const auto got = runPresorter(4, 16, input, true);
    ASSERT_EQ(got.size(), 64u + 4u);
    for (int run = 0; run < 4; ++run) {
        const auto begin = got.begin() + run * 17;
        EXPECT_TRUE(std::is_sorted(begin, begin + 16));
        EXPECT_TRUE(got[run * 17 + 16].isTerminal());
    }
}

TEST(Presorter, PreservesMultiset)
{
    const auto input = makeRecords(128, Distribution::Reverse);
    auto got = runPresorter(8, 16, input, false);
    ASSERT_EQ(got.size(), input.size());
    auto sorted_in = input;
    std::sort(sorted_in.begin(), sorted_in.end());
    std::sort(got.begin(), got.end());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].key, sorted_in[i].key);
}

TEST(Presorter, HandlesNonPow2Tail)
{
    const auto input = makeRecords(20, Distribution::UniformRandom);
    const auto got = runPresorter(4, 16, input, true);
    ASSERT_EQ(got.size(), 20u + 2u);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.begin() + 16));
    EXPECT_TRUE(got[16].isTerminal());
    EXPECT_TRUE(std::is_sorted(got.begin() + 17, got.begin() + 21));
    EXPECT_TRUE(got[21].isTerminal());
}

} // namespace
} // namespace bonsai
